(* uxsm: command-line front end for the library.

   Subcommands cover the whole pipeline: generate standard schemas and
   documents, run the matcher, derive top-h possible mappings, build block
   trees, and answer probabilistic twig queries. *)

open Cmdliner
module Executor = Uxsm_exec.Executor
module Schema = Uxsm_schema.Schema
module Doc = Uxsm_xml.Doc
module Matching = Uxsm_mapping.Matching
module Mapping = Uxsm_mapping.Mapping
module Mapping_set = Uxsm_mapping.Mapping_set
module Block_tree = Uxsm_blocktree.Block_tree
module Ptq = Uxsm_ptq.Ptq
module Dataset = Uxsm_workload.Dataset
module Standards = Uxsm_workload.Standards
module Gen_doc = Uxsm_workload.Gen_doc
module Queries = Uxsm_workload.Queries
module Loadgen = Uxsm_workload.Loadgen

let style_conv =
  let parse s =
    match Standards.by_name s with
    | Some st -> Ok st
    | None -> Error (`Msg (Printf.sprintf "unknown style %S (try XCBL, Apertum, OT, Excel, Noris, Paragon, CIDX)" s))
  in
  Arg.conv (parse, fun fmt st -> Format.pp_print_string fmt (Standards.style_name st))

let dataset_conv =
  let parse s =
    match Dataset.find s with
    | Some d -> Ok d
    | None -> Error (`Msg (Printf.sprintf "unknown dataset %S (D1..D10)" s))
  in
  Arg.conv (parse, fun fmt (d : Dataset.t) -> Format.pp_print_string fmt d.id)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic generation seed.")

let h_arg =
  Arg.(value & opt int 100 & info [ "h"; "top-h" ] ~docv:"H" ~doc:"Number of possible mappings to derive.")

let tau_arg =
  Arg.(value & opt float 0.2 & info [ "tau" ] ~docv:"TAU" ~doc:"c-block confidence threshold.")

let jobs_arg =
  let jobs_conv =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | _ -> Error (`Msg "expected an integer >= 1")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  (* The default comes from UXSM_JOBS so every subcommand honors the
     variable; an explicit --jobs always wins. *)
  Arg.(value & opt jobs_conv (Executor.jobs_of_env ()) & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for matcher scoring, per-component ranking and PTQ evaluation \
               (1 = sequential; results are identical for every N). Defaults to the \
               $(b,UXSM_JOBS) environment variable when set.")

(* ------------------------------- schema --------------------------- *)

let schema_cmd =
  let run style seed xsd =
    let s = Standards.generate ~seed style in
    if xsd then print_string (Uxsm_schema.Xsd.to_xsd_string s)
    else print_string (Schema.to_string s)
  in
  let style =
    Arg.(required & pos 0 (some style_conv) None & info [] ~docv:"STYLE" ~doc:"Standard name.")
  in
  let xsd = Arg.(value & flag & info [ "xsd" ] ~doc:"Print as an XML Schema document.") in
  Cmd.v
    (Cmd.info "schema"
       ~doc:"Generate a standard's schema and print it (indented text or --xsd).")
    Term.(const run $ style $ seed_arg $ xsd)

(* ------------------------------ datasets -------------------------- *)

let datasets_cmd =
  let run () =
    Printf.printf "%-4s %-8s %-8s %-4s %5s %8s\n" "ID" "source" "target" "opt" "Cap." "o-ratio*";
    List.iter
      (fun (d : Dataset.t) ->
        Printf.printf "%-4s %-8s %-8s %-4s %5d %8.2f\n" d.id
          (Standards.style_name d.source)
          (Standards.style_name d.target)
          (match d.strategy with
          | Uxsm_matcher.Coma.Context -> "c"
          | Uxsm_matcher.Coma.Fragment -> "f")
          d.capacity d.paper_o_ratio)
      Dataset.all;
    print_endline "(*paper-reported o-ratio; run the bench to measure this build's)"
  in
  Cmd.v (Cmd.info "datasets" ~doc:"List the Table II matching datasets.") Term.(const run $ const ())

(* ------------------------------- match ---------------------------- *)

let match_cmd =
  let run d seed jobs =
    let m = Dataset.matching ~seed ~exec:(Executor.of_jobs jobs) d in
    let source = Matching.source m and target = Matching.target m in
    List.iter
      (fun (c : Matching.corr) ->
        Printf.printf "%.2f  %s ~ %s\n" c.score
          (Schema.path_string source c.source)
          (Schema.path_string target c.target))
      (Matching.correspondences m)
  in
  let d =
    Arg.(required & pos 0 (some dataset_conv) None & info [] ~docv:"DATASET" ~doc:"D1..D10.")
  in
  Cmd.v
    (Cmd.info "match" ~doc:"Run the matcher on a dataset and print the scored correspondences.")
    Term.(const run $ d $ seed_arg $ jobs_arg)

(* ------------------------------ mappings -------------------------- *)

let method_arg =
  let method_conv =
    Arg.enum [ ("partition", Mapping_set.Partitioned); ("murty", Mapping_set.Murty) ]
  in
  Arg.(value & opt method_conv Mapping_set.Partitioned & info [ "method" ] ~docv:"METHOD"
         ~doc:"Top-h generation algorithm: $(b,partition) (Algorithm 5) or $(b,murty).")

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_mapping_set path =
  match Uxsm_mapping.Serialize.mapping_set_of_string (read_file path) with
  | Ok mset -> mset
  | Error e ->
    Printf.eprintf "cannot load mapping set from %s: %s\n" path e;
    exit 1

let mappings_cmd =
  let run d seed h method_ jobs verbose save =
    let t0 = Uxsm_util.Timing.now_mono () in
    let mset = Dataset.mapping_set ~seed ~method_ ~exec:(Executor.of_jobs jobs) ~h d in
    Printf.printf "derived %d mappings in %.3fs; average o-ratio %.3f\n"
      (Mapping_set.size mset)
      (Uxsm_util.Timing.now_mono () -. t0)
      (Mapping_set.average_o_ratio mset);
    (match save with
    | Some path ->
      write_file path (Uxsm_mapping.Serialize.mapping_set_to_string mset);
      Printf.printf "saved to %s\n" path
    | None -> ());
    let source = Mapping_set.source mset and target = Mapping_set.target mset in
    List.iteri
      (fun i (m, p) ->
        Printf.printf "m%-3d p=%.4f score=%.2f size=%d\n" (i + 1) p (Mapping.score m)
          (Mapping.size m);
        if verbose then
          List.iter
            (fun (x, y) ->
              Printf.printf "      %s ~ %s\n" (Schema.path_string source x)
                (Schema.path_string target y))
            (Mapping.pairs m))
      (Mapping_set.mappings mset)
  in
  let d =
    Arg.(required & pos 0 (some dataset_conv) None & info [] ~docv:"DATASET" ~doc:"D1..D10.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every correspondence of every mapping.")
  in
  let save =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE"
           ~doc:"Also write the mapping set to FILE (uxsm-mappings v1 format).")
  in
  Cmd.v
    (Cmd.info "mappings" ~doc:"Derive the top-h possible mappings of a dataset.")
    Term.(const run $ d $ seed_arg $ h_arg $ method_arg $ jobs_arg $ verbose $ save)

(* ------------------------------ blocktree ------------------------- *)

let blocktree_cmd =
  let run d seed h tau max_b max_f verbose =
    let mset = Dataset.mapping_set ~seed ~h d in
    let t0 = Uxsm_util.Timing.now_mono () in
    let tree = Block_tree.build ~params:{ Block_tree.tau; max_b; max_f } mset in
    Printf.printf "built in %.3fs\n%s\n" (Uxsm_util.Timing.now_mono () -. t0)
      (Format.asprintf "%a" Block_tree.pp_stats tree);
    (match Block_tree.validate tree with
    | Ok () -> print_endline "validation: ok"
    | Error e -> Printf.printf "validation FAILED: %s\n" e);
    if verbose then begin
      let source = Mapping_set.source mset and target = Mapping_set.target mset in
      List.iter
        (fun b -> Format.printf "%a@." (Uxsm_blocktree.Block.pp ~source ~target) b)
        (Block_tree.all_blocks tree)
    end
  in
  let d =
    Arg.(required & pos 0 (some dataset_conv) None & info [] ~docv:"DATASET" ~doc:"D1..D10.")
  in
  let max_b =
    Arg.(value & opt int 500 & info [ "max-b" ] ~docv:"N" ~doc:"MAX_B: cap on non-leaf c-blocks.")
  in
  let max_f =
    Arg.(value & opt int 500 & info [ "max-f" ] ~docv:"N" ~doc:"MAX_F: cap on failed attempts.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every c-block.") in
  Cmd.v
    (Cmd.info "blocktree" ~doc:"Build and validate the block tree of a dataset's mapping set.")
    Term.(const run $ d $ seed_arg $ h_arg $ tau_arg $ max_b $ max_f $ verbose)

(* -------------------------------- query --------------------------- *)

(* Shared by query/stats: evaluator selection and plan printing. [--basic]
   predates [--evaluator] and stays as an alias for [--evaluator basic]. *)
let evaluator_arg =
  let ev_conv = Arg.enum [ ("basic", `Basic); ("tree", `Tree); ("auto", `Auto) ] in
  Arg.(value & opt ev_conv `Auto
       & info [ "evaluator" ] ~docv:"EV"
           ~doc:"Physical evaluator: $(b,basic) (Algorithm 3), $(b,tree) (Algorithm 4), or \
                 $(b,auto) (cost-based choice; the default).")

let plan_flag =
  Arg.(value & flag & info [ "plan" ] ~doc:"Print the compiled query plan before the answers.")

let force_of ~basic ~evaluator = if basic then `Basic else evaluator

let query_cmd =
  let run d seed h tau k basic evaluator show_plan from jobs query_str =
    let exec = Executor.of_jobs jobs in
    let query =
      match query_str with
      | Some s -> Uxsm_twig.Pattern_parser.parse_exn s
      | None -> Queries.q7
    in
    let mset =
      match from with
      | Some path -> load_mapping_set path
      | None -> Dataset.mapping_set ~seed ~exec ~h d
    in
    let doc = Gen_doc.generate (Mapping_set.source mset) in
    let tree = Block_tree.build ~params:{ Block_tree.tau; max_b = 500; max_f = 500 } mset in
    let ctx = Ptq.context ~exec ~tree ~mset ~doc () in
    let t0 = Uxsm_util.Timing.now_mono () in
    let plan = Ptq.compile ~force:(force_of ~basic ~evaluator) ?k ctx query in
    let answers = Ptq.execute plan in
    let dt = Uxsm_util.Timing.now_mono () -. t0 in
    Printf.printf "query: %s\n" (Uxsm_twig.Pattern.to_string query);
    if show_plan then print_endline (Uxsm_plan.Plan.describe (Ptq.physical plan));
    Printf.printf "%d relevant mappings; evaluated in %.4fs\n" (List.length answers) dt;
    List.iter
      (fun (bindings, p) ->
        Printf.printf "p=%.3f  %s\n" p
          (match bindings with
          | [] -> "(no match)"
          | _ -> Printf.sprintf "%d matches" (List.length bindings)))
      (Ptq.consolidate answers)
  in
  let d =
    Arg.(required & pos 0 (some dataset_conv) None & info [] ~docv:"DATASET" ~doc:"D1..D10.")
  in
  let query_str =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Twig query (Table III syntax); defaults to Q7.")
  in
  let k =
    Arg.(value & opt (some int) None & info [ "k" ] ~docv:"K" ~doc:"Evaluate as a top-k PTQ.")
  in
  let basic =
    Arg.(value & flag & info [ "basic" ] ~doc:"Use Algorithm 3 instead of the block tree.")
  in
  let from =
    Arg.(value & opt (some string) None & info [ "mappings" ] ~docv:"FILE"
           ~doc:"Load the mapping set from FILE (see $(b,mappings --save)) instead of generating it.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Answer a probabilistic twig query on a dataset.")
    Term.(const run $ d $ seed_arg $ h_arg $ tau_arg $ k $ basic $ evaluator_arg $ plan_flag
          $ from $ jobs_arg $ query_str)

(* -------------------------------- stats --------------------------- *)

let stats_cmd =
  let run d seed h tau k basic evaluator show_plan from jobs query_str =
    let module Obs = Uxsm_obs.Obs in
    let exec = Executor.of_jobs jobs in
    Obs.reset ();
    let query =
      match query_str with
      | Some s -> Uxsm_twig.Pattern_parser.parse_exn s
      | None -> Queries.q7
    in
    let mset =
      match from with
      | Some path -> load_mapping_set path
      | None -> Dataset.mapping_set ~seed ~exec ~h d
    in
    let doc = Gen_doc.generate (Mapping_set.source mset) in
    let tree = Block_tree.build ~params:{ Block_tree.tau; max_b = 500; max_f = 500 } mset in
    let ctx = Ptq.context ~exec ~tree ~mset ~doc () in
    let plan = Ptq.compile ~force:(force_of ~basic ~evaluator) ?k ctx query in
    let answers = Ptq.execute plan in
    Printf.printf "query: %s\n" (Uxsm_twig.Pattern.to_string query);
    if show_plan then print_endline (Uxsm_plan.Plan.describe (Ptq.physical plan));
    Printf.printf "%d relevant mappings\n\n" (List.length answers);
    Format.printf "%a@." Obs.pp_snapshot (Obs.nonzero (Obs.snapshot ()))
  in
  let d =
    Arg.(required & pos 0 (some dataset_conv) None & info [] ~docv:"DATASET" ~doc:"D1..D10.")
  in
  let query_str =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Twig query (Table III syntax); defaults to Q7.")
  in
  let k =
    Arg.(value & opt (some int) None & info [ "k" ] ~docv:"K" ~doc:"Evaluate as a top-k PTQ.")
  in
  let basic =
    Arg.(value & flag & info [ "basic" ] ~doc:"Use Algorithm 3 instead of the block tree.")
  in
  let from =
    Arg.(value & opt (some string) None & info [ "mappings" ] ~docv:"FILE"
           ~doc:"Load the mapping set from FILE instead of generating it.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Answer a query like $(b,query), then print the metrics-layer snapshot (counters and \
             spans of mapping generation, block-tree construction and PTQ evaluation).")
    Term.(const run $ d $ seed_arg $ h_arg $ tau_arg $ k $ basic $ evaluator_arg $ plan_flag
          $ from $ jobs_arg $ query_str)

(* --------------------------------- doc ---------------------------- *)

let doc_cmd =
  let run style seed nodes xml =
    let schema = Standards.generate ~seed style in
    let doc = Gen_doc.generate ~seed ~target_nodes:nodes schema in
    if xml then
      print_string
        (Uxsm_xml.Printer.to_string ~indent:2 (Doc.subtree doc (Doc.root doc)))
    else
      Printf.printf "document: %d element nodes, %d distinct labels, depth %d\n" (Doc.size doc)
        (List.length (Doc.labels doc))
        (List.fold_left (fun acc n -> max acc (Doc.level doc n)) 0
           (List.init (Doc.size doc) Fun.id))
  in
  let style =
    Arg.(required & pos 0 (some style_conv) None & info [] ~docv:"STYLE" ~doc:"Standard name.")
  in
  let nodes =
    Arg.(value & opt int 3473 & info [ "nodes" ] ~docv:"N" ~doc:"Target element-node count.")
  in
  let xml = Arg.(value & flag & info [ "xml" ] ~doc:"Print the document as XML.") in
  Cmd.v
    (Cmd.info "doc" ~doc:"Generate an instance document for a standard's schema.")
    Term.(const run $ style $ seed_arg $ nodes $ xml)

(* ------------------------------ xsd-match ------------------------- *)

let xsd_match_cmd =
  let run source_path target_path h jobs query_str =
    let exec = Executor.of_jobs jobs in
    let load path =
      match Uxsm_schema.Xsd.of_xsd_string (read_file path) with
      | Ok s -> s
      | Error e ->
        Printf.eprintf "cannot load %s: %s\n" path e;
        exit 1
    in
    let source = load source_path and target = load target_path in
    let matching = Uxsm_matcher.Coma.run ~exec ~source ~target () in
    Printf.printf "%d correspondences between %d and %d elements\n"
      (Matching.capacity matching) (Schema.size source) (Schema.size target);
    List.iter
      (fun (c : Matching.corr) ->
        Printf.printf "%.2f  %s ~ %s\n" c.score
          (Schema.path_string source c.source)
          (Schema.path_string target c.target))
      (Matching.correspondences matching);
    let mset = Mapping_set.generate ~exec ~h matching in
    Printf.printf "\ntop-%d mappings, o-ratio %.2f\n" (Mapping_set.size mset)
      (Mapping_set.average_o_ratio mset);
    match query_str with
    | None -> ()
    | Some qs ->
      let q = Uxsm_twig.Pattern_parser.parse_exn qs in
      let doc = Gen_doc.generate ~target_nodes:(4 * Schema.size source) source in
      let tree = Block_tree.build mset in
      let ctx = Ptq.context ~exec ~tree ~mset ~doc () in
      Printf.printf "\nPTQ %s over a generated %d-node instance:\n" qs
        (Uxsm_xml.Doc.size doc);
      List.iter
        (fun (bindings, p) ->
          Printf.printf "  p=%.3f  %s\n" p
            (match bindings with
            | [] -> "(no match)"
            | _ -> Printf.sprintf "%d matches" (List.length bindings)))
        (Ptq.consolidate (Ptq.query_tree ctx q))
  in
  let source_path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE.xsd" ~doc:"Source schema file.")
  in
  let target_path =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"TARGET.xsd" ~doc:"Target schema file.")
  in
  let query_str =
    Arg.(value & pos 2 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Optional twig query on the target schema.")
  in
  Cmd.v
    (Cmd.info "xsd-match"
       ~doc:"Match two XSD files, derive possible mappings, optionally answer a PTQ.")
    Term.(const run $ source_path $ target_path $ h_arg $ jobs_arg $ query_str)

(* ------------------------------- analyze -------------------------- *)

let analyze_cmd =
  let run d seed h tau query_str =
    let mset = Dataset.mapping_set ~seed ~h d in
    let module Metrics = Uxsm_mapping.Metrics in
    Printf.printf "mapping set: |M|=%d, o-ratio=%.3f\n" (Mapping_set.size mset)
      (Mapping_set.average_o_ratio mset);
    Printf.printf "entropy: %.2f bits (normalized %.2f), expected mapping size %.1f\n"
      (Metrics.entropy mset)
      (Metrics.normalized_entropy mset)
      (Metrics.expected_mapping_size mset);
    Printf.printf "target-element ambiguity histogram (choices -> #elements):\n";
    List.iter
      (fun (a, c) -> Printf.printf "  %d -> %d\n" a c)
      (Metrics.ambiguity_histogram mset);
    let tree = Block_tree.build ~params:{ Block_tree.tau; max_b = 500; max_f = 500 } mset in
    Printf.printf "block tree: %s\n" (Format.asprintf "%a" Block_tree.pp_stats tree);
    match query_str with
    | None -> ()
    | Some qs ->
      let q = Uxsm_twig.Pattern_parser.parse_exn qs in
      let doc = Gen_doc.generate (Mapping_set.source mset) in
      let ctx = Ptq.context ~tree ~mset ~doc () in
      let stats, answers = Ptq.explain ctx q in
      Printf.printf "query %s:\n" qs;
      print_endline (Uxsm_plan.Plan.describe stats.Ptq.plan);
      Printf.printf
        "  resolutions=%d relevant=%d blocks_used=%d shared_evals=%d direct_evals=%d decompositions=%d joins=%d\n"
        stats.Ptq.resolutions stats.Ptq.relevant_mappings stats.Ptq.blocks_used
        stats.Ptq.shared_evaluations stats.Ptq.direct_evaluations stats.Ptq.decompositions
        stats.Ptq.joins;
      Printf.printf "  distinct answer sets: %d\n" (List.length (Ptq.consolidate answers))
  in
  let d =
    Arg.(required & pos 0 (some dataset_conv) None & info [] ~docv:"DATASET" ~doc:"D1..D10.")
  in
  let query_str =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Optional twig query to EXPLAIN.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Report uncertainty metrics of a dataset's mapping set, and optionally EXPLAIN a query.")
    Term.(const run $ d $ seed_arg $ h_arg $ tau_arg $ query_str)

(* ------------------------------- keyword -------------------------- *)

let keyword_cmd =
  let run d seed h jobs terms =
    let exec = Executor.of_jobs jobs in
    let mset = Dataset.mapping_set ~seed ~exec ~h d in
    let doc = Gen_doc.generate (Mapping_set.source mset) in
    let tree = Block_tree.build mset in
    let ctx = Ptq.context ~exec ~tree ~mset ~doc () in
    let hits = Uxsm_ptq.Keyword.search ctx terms in
    if hits = [] then print_endline "no interpretation has answers"
    else
      List.iter
        (fun (hit : Uxsm_ptq.Keyword.hit) ->
          Printf.printf "interpretation: %s\n"
            (Uxsm_twig.Pattern.to_string hit.Uxsm_ptq.Keyword.pattern);
          List.iteri
            (fun i (bindings, p) ->
              if i < 3 then
                Printf.printf "  p=%.3f  %s\n" p
                  (match bindings with
                  | [] -> "(no match)"
                  | _ -> Printf.sprintf "%d matches" (List.length bindings)))
            hit.Uxsm_ptq.Keyword.answers)
        hits
  in
  let d =
    Arg.(required & pos 0 (some dataset_conv) None & info [] ~docv:"DATASET" ~doc:"D1..D10.")
  in
  let terms =
    Arg.(non_empty & pos_right 0 string [] & info [] ~docv:"TERM" ~doc:"Keywords.")
  in
  Cmd.v
    (Cmd.info "keyword" ~doc:"Keyword search over a dataset's uncertain matching.")
    Term.(const run $ d $ seed_arg $ h_arg $ jobs_arg $ terms)

(* ------------------------------- serve ---------------------------- *)

(* [HOST:]PORT — plain PORT listens on 127.0.0.1. *)
let tcp_endpoint_of_string s =
  let host, port_s =
    match String.rindex_opt s ':' with
    | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> ("127.0.0.1", s)
  in
  match int_of_string_opt port_s with
  | Some p when p >= 0 && p < 65536 && host <> "" -> Ok (host, p)
  | _ -> Error (`Msg (Printf.sprintf "expected [HOST:]PORT, got %S" s))

let tcp_conv =
  Arg.conv
    (tcp_endpoint_of_string, fun fmt (h, p) -> Format.fprintf fmt "%s:%d" h p)

let serve_cmd =
  let run socket tcp stdio max_queue jobs cache_entries corpora seed =
    let module Server = Uxsm_server.Server in
    let module Protocol = Uxsm_server.Protocol in
    let srv = Server.create ~cache_entries ~exec:(Executor.of_jobs jobs) () in
    let register (name, d) =
      match
        Uxsm_server.Catalog.register (Server.catalog srv) ~name ~doc_seed:7
          (Protocol.From_dataset (d, seed))
      with
      | Ok _ -> Printf.eprintf "registered corpus %s from dataset %s\n%!" name d.Dataset.id
      | Error e ->
        Printf.eprintf "cannot register %s: %s\n" name e;
        exit 1
    in
    List.iter register corpora;
    if stdio then Server.serve_channels srv stdin stdout
    else
      let endpoints =
        (match socket with None -> [] | Some p -> [ Server.Unix_socket p ])
        @ match tcp with None -> [] | Some (h, p) -> [ Server.Tcp (h, p) ]
      in
      match endpoints with
      | [] ->
        prerr_endline "serve: need --socket PATH and/or --tcp [HOST:]PORT (or --stdio)";
        exit 2
      | _ ->
        let ready addrs =
          List.iter
            (fun addr ->
              let where =
                match addr with
                | Unix.ADDR_UNIX path -> path
                | Unix.ADDR_INET (host, port) ->
                  Printf.sprintf "%s:%d" (Unix.string_of_inet_addr host) port
              in
              Printf.eprintf "uxsm serve: listening on %s (--jobs %d)\n%!" where jobs)
            addrs
        in
        Server.serve ~max_queue ~ready srv endpoints;
        Printf.eprintf "uxsm serve: drained, shutting down\n%!"
  in
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix domain socket to listen on (created; removed on shutdown).")
  in
  let tcp =
    Arg.(value & opt (some tcp_conv) None & info [ "tcp" ] ~docv:"[HOST:]PORT"
           ~doc:"TCP endpoint to listen on (default host 127.0.0.1; port 0 picks an \
                 ephemeral port, printed on stderr). May be combined with \
                 $(b,--socket) to serve both transports.")
  in
  let max_queue =
    Arg.(value & opt int 256 & info [ "max-queue" ] ~docv:"N"
           ~doc:"Admission-queue bound shared by all connections; a request arriving \
                 when the queue is full is rejected immediately with a structured \
                 'overloaded' error instead of being executed.")
  in
  let stdio =
    Arg.(value & flag & info [ "stdio" ]
           ~doc:"Serve one request line per stdin line on stdout instead of a socket \
                 (scripting and tests).")
  in
  let cache_entries =
    Arg.(value & opt int 64 & info [ "cache-entries" ] ~docv:"K"
           ~doc:"Capacity of the prepared-artifact LRU cache.")
  in
  let corpora =
    let corpus_conv =
      let parse s =
        match String.index_opt s '=' with
        | Some i -> (
          let name = String.sub s 0 i
          and id = String.sub s (i + 1) (String.length s - i - 1) in
          match Dataset.find id with
          | Some d when name <> "" -> Ok (name, d)
          | Some _ -> Error (`Msg "empty corpus name")
          | None -> Error (`Msg (Printf.sprintf "unknown dataset %S (D1..D10)" id)))
        | None -> Error (`Msg "expected NAME=DATASET")
      in
      Arg.conv (parse, fun fmt (n, (d : Dataset.t)) -> Format.fprintf fmt "%s=%s" n d.id)
    in
    Arg.(value & opt_all corpus_conv [] & info [ "corpus" ] ~docv:"NAME=DATASET"
           ~doc:"Register a corpus from a Table II dataset at startup (repeatable); more \
                 can be registered later via the $(b,register) request.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the long-lived query service: line-delimited JSON requests over a Unix \
             domain socket and/or TCP (or stdio), serving many connections \
             concurrently over one bounded dispatch queue and the warm domain pool, \
             with a per-corpus LRU cache of prepared artifacts so repeated queries \
             skip matching, ranking and block-tree construction. See DESIGN.md \
             sections 10 and 13 for the protocol and the connection model.")
    Term.(const run $ socket $ tcp $ stdio $ max_queue $ jobs_arg $ cache_entries
          $ corpora $ seed_arg)

(* ------------------------------- client --------------------------- *)

(* Shared by `client` and `update`: connect to a running server over
   exactly one of --socket/--tcp, or die with a usage error. *)
let connect_client ~cmd socket tcp =
  let target =
    match (socket, tcp) with
    | Some path, None -> `Unix path
    | None, Some (host, port) -> `Tcp (host, port)
    | _ ->
      Printf.eprintf "%s: need exactly one of --socket PATH or --tcp HOST:PORT\n" cmd;
      exit 2
  in
  let fd =
    match target with
    | `Unix _ -> Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
    | `Tcp _ -> Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0
  in
  let addr, shown =
    match target with
    | `Unix path -> (Unix.ADDR_UNIX path, path)
    | `Tcp (host, port) -> (
      let resolved =
        match Unix.inet_addr_of_string host with
        | a -> Some a
        | exception Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> Some addrs.(0)
          | _ | (exception Not_found) -> None)
      in
      match resolved with
      | Some a -> (Unix.ADDR_INET (a, port), Printf.sprintf "%s:%d" host port)
      | None ->
        Printf.eprintf "cannot resolve host %S\n" host;
        exit 1)
  in
  (try Unix.connect fd addr
   with Unix.Unix_error (e, _, _) ->
     Printf.eprintf "cannot connect to %s: %s\n" shown (Unix.error_message e);
     exit 1);
  fd

let client_cmd =
  let run socket tcp requests =
    let requests =
      match requests with
      | [ "-" ] ->
        let rec slurp acc =
          match input_line stdin with
          | line -> slurp (if String.trim line = "" then acc else line :: acc)
          | exception End_of_file -> List.rev acc
        in
        slurp []
      | rs -> rs
    in
    if requests = [] then begin
      prerr_endline "client: no requests";
      exit 2
    end;
    let fd = connect_client ~cmd:"client" socket tcp in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    List.iter
      (fun r ->
        output_string oc r;
        output_char oc '\n')
      requests;
    flush oc;
    let failures = ref 0 in
    (try
       List.iter
         (fun _ ->
           let reply = input_line ic in
           print_endline reply;
           match Uxsm_util.Json.of_string reply with
           | Ok j when Uxsm_util.Json.member "ok" j = Some (Uxsm_util.Json.Bool true) -> ()
           | _ -> incr failures)
         requests
     with End_of_file ->
       prerr_endline "client: server closed the connection early";
       exit 1);
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if !failures > 0 then exit 3
  in
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix domain socket of a running $(b,uxsm serve).")
  in
  let tcp =
    Arg.(value & opt (some tcp_conv) None & info [ "tcp" ] ~docv:"HOST:PORT"
           ~doc:"TCP endpoint of a running $(b,uxsm serve) (alternative to \
                 $(b,--socket)).")
  in
  let requests =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"REQUEST"
           ~doc:"JSON request objects, one per argument (or a single $(b,-) to read one \
                 request per stdin line).")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send requests to a running $(b,uxsm serve) and print one JSON reply per \
             line. Exits non-zero if any reply is an error.")
    Term.(const run $ socket $ tcp $ requests)

(* ------------------------------- update --------------------------- *)

let update_cmd =
  let module Json = Uxsm_util.Json in
  let module Protocol = Uxsm_server.Protocol in
  let run socket tcp corpus set remove add_source add_target =
    let delta =
      {
        Matching.set_scores = set;
        remove_corrs = remove;
        add_source;
        add_target;
      }
    in
    if Matching.delta_is_empty delta then begin
      prerr_endline
        "update: need at least one of --set, --remove, --add-source, --add-target";
      exit 2
    end;
    let fd = connect_client ~cmd:"update" socket tcp in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let req =
      Protocol.to_json { Protocol.id = None; req = Protocol.Update { corpus; delta } }
    in
    output_string oc (Json.to_string req);
    output_char oc '\n';
    flush oc;
    let ok =
      match input_line ic with
      | reply ->
        print_endline reply;
        (match Json.of_string reply with
        | Ok j -> Json.member "ok" j = Some (Json.Bool true)
        | Error _ -> false)
      | exception End_of_file ->
        prerr_endline "update: server closed the connection early";
        false
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if not ok then exit 3
  in
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix domain socket of a running $(b,uxsm serve).")
  in
  let tcp =
    Arg.(value & opt (some tcp_conv) None & info [ "tcp" ] ~docv:"HOST:PORT"
           ~doc:"TCP endpoint of a running $(b,uxsm serve) (alternative to \
                 $(b,--socket)).")
  in
  let corpus =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CORPUS"
           ~doc:"Name of the registered corpus to update.")
  in
  let set_conv =
    let parse s =
      match String.split_on_char '=' s with
      | [ src; tgt; score ] when src <> "" && tgt <> "" -> (
        match float_of_string_opt score with
        | Some w -> Ok (src, tgt, w)
        | None -> Error (`Msg (Printf.sprintf "bad score %S" score)))
      | _ -> Error (`Msg "expected SOURCE=TARGET=SCORE")
    in
    Arg.conv (parse, fun fmt (s, t, w) -> Format.fprintf fmt "%s=%s=%g" s t w)
  in
  let pair_conv what =
    let parse s =
      match String.split_on_char '=' s with
      | [ a; b ] when a <> "" && b <> "" -> Ok (a, b)
      | _ -> Error (`Msg (Printf.sprintf "expected %s" what))
    in
    Arg.conv (parse, fun fmt (a, b) -> Format.fprintf fmt "%s=%s" a b)
  in
  let set =
    Arg.(value & opt_all set_conv [] & info [ "set" ] ~docv:"SRC=TGT=SCORE"
           ~doc:"Re-score (or add) the correspondence between the '.'-joined source \
                 path $(i,SRC) and target path $(i,TGT); score in (0, 1]. Repeatable.")
  in
  let remove =
    Arg.(value & opt_all (pair_conv "SOURCE=TARGET") [] & info [ "remove" ]
           ~docv:"SRC=TGT" ~doc:"Remove an existing correspondence. Repeatable.")
  in
  let add_source =
    Arg.(value & opt_all (pair_conv "PARENT=NAME") [] & info [ "add-source" ]
           ~docv:"PARENT=NAME"
           ~doc:"Append an element named $(i,NAME) under the source-schema element at \
                 path $(i,PARENT) (append-only: the parent must lie on the rightmost \
                 root-to-leaf spine). Repeatable.")
  in
  let add_target =
    Arg.(value & opt_all (pair_conv "PARENT=NAME") [] & info [ "add-target" ]
           ~docv:"PARENT=NAME"
           ~doc:"Append an element to the target schema (same rules as \
                 $(b,--add-source)). Repeatable.")
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:"Apply an incremental delta to a corpus on a running $(b,uxsm serve): \
             re-score, add or remove correspondences, or append schema elements. The \
             server patches its cached artifacts in place (delta re-ranking, subtree \
             block rebuilds) instead of rebuilding the corpus. Prints the server's \
             JSON reply; exits non-zero on error.")
    Term.(const run $ socket $ tcp $ corpus $ set $ remove $ add_source $ add_target)

(* ------------------------------ loadgen --------------------------- *)

let loadgen_target socket tcp =
  match (socket, tcp) with
  | Some path, None -> Loadgen.Runner.Unix_socket path
  | None, Some (host, port) -> Loadgen.Runner.Tcp (host, port)
  | _ ->
    prerr_endline "loadgen: need exactly one of --socket PATH or --tcp [HOST:]PORT";
    exit 2

let loadgen_cmd =
  let run profile socket tcp json_out seed duration clients quiet =
    match Loadgen.Profile.load profile with
    | Error e ->
      Printf.eprintf "%s: %s\n" profile e;
      exit 2
    | Ok p ->
      (* Command-line overrides keep one committed profile reusable for
         quick variations (a different seed, a shorter smoke window). *)
      let p = match seed with None -> p | Some s -> { p with Loadgen.Profile.p_seed = s } in
      let p =
        match duration with
        | None -> p
        | Some d when d > 0.0 -> { p with Loadgen.Profile.p_duration_s = d }
        | Some _ ->
          prerr_endline "loadgen: --duration must be positive";
          exit 2
      in
      let p =
        match clients with
        | None -> p
        | Some n when n >= 1 ->
          {
            p with
            Loadgen.Profile.p_arrival =
              (match p.Loadgen.Profile.p_arrival with
              | Loadgen.Profile.Closed _ -> Loadgen.Profile.Closed { clients = n }
              | Loadgen.Profile.Open o -> Loadgen.Profile.Open { o with clients = n });
          }
        | Some _ ->
          prerr_endline "loadgen: --clients must be >= 1";
          exit 2
      in
      let log = if quiet then fun _ -> () else prerr_endline in
      (match Loadgen.Runner.run ~log p (loadgen_target socket tcp) with
      | Error e ->
        Printf.eprintf "loadgen: %s\n" e;
        exit 1
      | Ok lg ->
        List.iter print_endline (Loadgen.Runner.summary_lines lg);
        (match json_out with
        | None -> ()
        | Some path ->
          let run = Loadgen.Runner.record ~argv:(List.tl (Array.to_list Sys.argv)) lg in
          Uxsm_obs.Bench_json.append_to_file ~path run;
          Printf.printf "appended loadgen record to %s\n" path))
  in
  let profile =
    Arg.(required & opt (some string) None & info [ "profile" ] ~docv:"FILE.json"
           ~doc:"Workload profile (see bench/profiles/ for committed examples and \
                 DESIGN.md section 14 for the schema).")
  in
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix domain socket of a running $(b,uxsm serve).")
  in
  let tcp =
    Arg.(value & opt (some tcp_conv) None & info [ "tcp" ] ~docv:"[HOST:]PORT"
           ~doc:"TCP endpoint of a running $(b,uxsm serve) (alternative to \
                 $(b,--socket)).")
  in
  let json_out =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Append the run record (kind \"loadgen\") to FILE; $(b,uxsm ab) and \
                 bench/validate.exe read these.")
  in
  let seed =
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N"
           ~doc:"Override the profile's sampler seed.")
  in
  let duration =
    Arg.(value & opt (some float) None & info [ "duration" ] ~docv:"SECONDS"
           ~doc:"Override the profile's measurement-window length.")
  in
  let clients =
    Arg.(value & opt (some int) None & info [ "clients" ] ~docv:"N"
           ~doc:"Override the profile's client-connection count.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress phase progress on stderr.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Replay a workload profile against a running $(b,uxsm serve): seeded \
             deterministic request sampling (zipfian corpus popularity, weighted query \
             templates), closed- or open-loop arrivals, warmup then a stats_reset \
             measurement window, client-side latency histograms. Prints a summary and \
             optionally appends a \"loadgen\" record to a BENCH_*.json trajectory.")
    Term.(const run $ profile $ socket $ tcp $ json_out $ seed $ duration $ clients $ quiet)

(* -------------------------------- ab ------------------------------ *)

let ab_cmd =
  let run file_a file_b tolerance profile =
    let pick label path =
      let runs =
        match open_in path with
        | exception Sys_error e ->
          Printf.eprintf "ab: %s\n" e;
          exit 2
        | ic ->
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          (match Uxsm_obs.Bench_json.runs_of_lines s with
          | Ok runs -> runs
          | Error e ->
            Printf.eprintf "ab: %s: %s\n" path e;
            exit 2)
      in
      match Loadgen.Ab.pick ?profile runs with
      | Ok lg -> lg
      | Error e ->
        Printf.eprintf "ab: %s (%s): %s\n" path label e;
        exit 2
    in
    let a = pick "baseline" file_a in
    let b = pick "candidate" file_b in
    match Loadgen.Ab.compare_loadgen ~tolerance a b with
    | Error e ->
      Printf.eprintf "ab: %s\n" e;
      exit 2
    | Ok report ->
      List.iter print_endline (Loadgen.Ab.report_lines report);
      if Loadgen.Ab.regressed report then begin
        prerr_endline "ab: REGRESSION beyond tolerance";
        exit 1
      end
  in
  let file_a =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BASELINE.json"
           ~doc:"Trajectory file holding the baseline loadgen record (the last \
                 matching record is used).")
  in
  let file_b =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"CANDIDATE.json"
           ~doc:"Trajectory file holding the candidate loadgen record.")
  in
  let tolerance =
    Arg.(value & opt float 0.10 & info [ "tolerance" ] ~docv:"FRACTION"
           ~doc:"Noise tolerance as a fraction (0.10 = 10%). Throughput may drop and \
                 latency quantiles may rise by up to this much without tripping the \
                 gate; the error rate may grow by this fraction of requests.")
  in
  let profile =
    Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"ID"
           ~doc:"Only compare records of this profile id (default: the last loadgen \
                 record in each file, whatever its profile).")
  in
  Cmd.v
    (Cmd.info "ab"
       ~doc:"Compare two loadgen records (same profile) and exit non-zero when the \
             candidate regresses beyond the tolerance: lower achieved throughput, \
             higher p50/p95/p99 latency, or a higher error rate. CI runs this as a \
             smoke gate.")
    Term.(const run $ file_a $ file_b $ tolerance $ profile)

let () =
  let info =
    Cmd.info "uxsm" ~version:"1.0.0"
      ~doc:"Managing uncertainty of XML schema matching (ICDE 2010 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ schema_cmd; datasets_cmd; match_cmd; mappings_cmd; blocktree_cmd; query_cmd; stats_cmd; keyword_cmd; analyze_cmd; xsd_match_cmd; doc_cmd; serve_cmd; client_cmd; update_cmd; loadgen_cmd; ab_cmd ]))
