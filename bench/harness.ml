(* Thin wrapper over Bechamel: one Test.make per measured point, OLS over
   the monotonic clock, returning seconds per run. Expensive points (whole
   PTQ evaluations over hundreds of mappings, Murty runs) get a small run
   budget; Bechamel's sampling keeps cheap points precise. *)

open Bechamel
open Toolkit
module Obs = Uxsm_obs.Obs
module Bench_json = Uxsm_obs.Bench_json
module Json = Uxsm_util.Json

(* lint: allow domain-unsafe — bench driver state, set once from Arg before any fan-out *)
let default_quota = ref 0.3

(* JSON recording. [start_recording] arms it; each [section] then closes the
   previous experiment record (stamping the Obs counter snapshot it
   accumulated) and opens a new one; [seconds_per_run] logs every measured
   point; [finalize] appends the whole run to the JSONL trajectory file. *)

type partial = {
  p_id : string;
  p_title : string;
  mutable p_params : (string * Json.t) list;  (* reversed *)
  p_t0 : float;
  mutable p_measurements : Bench_json.measurement list;  (* reversed *)
}

(* lint: allow domain-unsafe — recording state, only touched by the single driver domain *)
let out_path = ref None

(* lint: allow domain-unsafe — recording state, only touched by the single driver domain *)
let completed : Bench_json.experiment list ref = ref []

(* lint: allow domain-unsafe — recording state, only touched by the single driver domain *)
let current : partial option ref = ref None

let start_recording path = out_path := Some path

let close_current () =
  match !current with
  | None -> ()
  | Some p ->
    let e =
      Bench_json.experiment ~params:(List.rev p.p_params)
        ~measurements:(List.rev p.p_measurements)
        ~snapshot:(Obs.snapshot ()) ~id:p.p_id ~title:p.p_title
        ~wall_seconds:(Uxsm_util.Timing.now_mono () -. p.p_t0)
        ()
    in
    completed := e :: !completed;
    current := None

let json_param name v =
  match !current with
  | None -> ()
  | Some p -> p.p_params <- (name, v) :: p.p_params

let record_measurement name seconds =
  match !current with
  | None -> ()
  | Some p ->
    p.p_measurements <-
      { Bench_json.m_name = name; m_seconds_per_run = seconds } :: p.p_measurements

let finalize ~argv ?(jobs = 1) ?(executor = "sequential") () =
  close_current ();
  match !out_path with
  | None -> ()
  | Some path ->
    let run =
      {
        Bench_json.r_git_rev = Bench_json.git_rev ();
        r_unix_time = Unix.time ();
        r_argv = argv;
        r_jobs = jobs;
        r_executor = executor;
        r_experiments = List.rev !completed;
        r_kind = "bench";
        r_loadgen = None;
      }
    in
    Bench_json.append_to_file ~path run;
    Printf.printf "\nappended %d experiment records to %s\n%!"
      (List.length run.r_experiments) path

let seconds_per_run ?quota ~name f =
  let quota =
    match quota with
    | Some q -> q
    | None -> !default_quota
  in
  let test = Test.make ~name (Staged.stage f) in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second quota)
      ~kde:None ~stabilize:false ()
  in
  let elt =
    match Test.elements test with
    | [ e ] -> e
    | _ -> assert false
  in
  let raw = Benchmark.run cfg Instance.[ monotonic_clock ] elt in
  let ols =
    Analyze.one
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  let seconds =
    match Analyze.OLS.estimates ols with
    | Some [ ns ] when Float.is_finite ns -> ns *. 1e-9
    | _ ->
      (* Degenerate sample (e.g. a single very slow run): fall back to one
         timed execution. *)
      let t0 = Uxsm_util.Timing.now_mono () in
      ignore (f ());
      Uxsm_util.Timing.now_mono () -. t0
  in
  record_measurement name seconds;
  seconds

(* Output helpers: every experiment prints a titled section with aligned
   rows so the bench output reads like the paper's tables. *)

let section id title =
  close_current ();
  (* Per-experiment counter attribution: every section starts from zero. *)
  Obs.reset ();
  current :=
    Some
      {
        p_id = id;
        p_title = title;
        p_params = [];
        p_t0 = Uxsm_util.Timing.now_mono ();
        p_measurements = [];
      };
  Printf.printf "\n=== %s: %s ===\n%!" id title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "    %s\n%!" s) fmt

let row fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n%!" s) fmt
