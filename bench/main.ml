(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section VI). Each experiment prints one labelled section;
   run with ids as arguments to restrict, e.g.
   [dune exec bench/main.exe -- fig9f fig10e]. *)

module Schema = Uxsm_schema.Schema
module Doc = Uxsm_xml.Doc
module Matching = Uxsm_mapping.Matching
module Mapping_set = Uxsm_mapping.Mapping_set
module Bipartite = Uxsm_assignment.Bipartite
module Murty = Uxsm_assignment.Murty
module Partition = Uxsm_assignment.Partition
module Block_tree = Uxsm_blocktree.Block_tree
module Plan = Uxsm_plan.Plan
module Ptq = Uxsm_ptq.Ptq
module Dataset = Uxsm_workload.Dataset
module Standards = Uxsm_workload.Standards
module Gen_doc = Uxsm_workload.Gen_doc
module Queries = Uxsm_workload.Queries
module Json = Uxsm_util.Json
module Executor = Uxsm_exec.Executor

(* Execution backend for the parallelized sites (PTQ contexts, partitioned
   ranking), set once from --jobs before any experiment runs. *)
(* lint: allow domain-unsafe — set once from --jobs before any experiment runs *)
let exec = ref Executor.sequential

let float_list xs = Json.List (List.map (fun x -> Json.Float x) xs)
let int_list xs = Json.List (List.map (fun x -> Json.Int x) xs)

let params ?(tau = 0.2) ?(max_b = 500) ?(max_f = 500) () = { Block_tree.tau; max_b; max_f }

(* Shared, lazily-built state: D7's mapping sets, document and contexts. *)

(* lint: allow domain-unsafe — filled by the single driver domain between experiments *)
let d7_mset_cache : (int, Mapping_set.t) Hashtbl.t = Hashtbl.create 8

let d7_mset h =
  match Hashtbl.find_opt d7_mset_cache h with
  | Some s -> s
  | None ->
    let s = Dataset.mapping_set ~h Dataset.d7 in
    Hashtbl.add d7_mset_cache h s;
    s

let d7_doc =
  lazy (Gen_doc.generate (Matching.source (Dataset.matching Dataset.d7)))

let context ?tree h = Ptq.context ~exec:!exec ?tree ~mset:(d7_mset h) ~doc:(Lazy.force d7_doc) ()

let ms t = t *. 1000.0

(* ---------------------------- Table II ---------------------------- *)

let table2 () =
  Harness.section "table2" "Schema matching datasets (|S|, |T|, opt, Cap., o-ratio)";
  Harness.json_param "h" (Json.Int 100);
  Harness.row "%-4s %-8s %5s %-8s %5s %-4s %5s %8s %8s" "ID" "S" "|S|" "T" "|T|" "opt" "Cap."
    "o-ratio" "(paper)";
  List.iter
    (fun (d : Dataset.t) ->
      let m = Dataset.matching d in
      let mset = Dataset.mapping_set ~h:100 d in
      Harness.row "%-4s %-8s %5d %-8s %5d %-4s %5d %8.2f %8.2f" d.id
        (Standards.style_name d.source)
        (Schema.size (Matching.source m))
        (Standards.style_name d.target)
        (Schema.size (Matching.target m))
        (match d.strategy with
        | Uxsm_matcher.Coma.Context -> "c"
        | Uxsm_matcher.Coma.Fragment -> "f")
        (Matching.capacity m)
        (Mapping_set.average_o_ratio mset)
        d.paper_o_ratio)
    Dataset.all;
  Harness.note "paper: o-ratios between 0.53 and 0.91 -- high overlap among mappings"

(* ------------------------- Figures 9(a)(b) ------------------------ *)

let taus_9ab = [ 0.02; 0.05; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ]

let fig9a () =
  Harness.section "fig9a" "Compression ratio vs tau (D7, |M|=100)";
  Harness.json_param "h" (Json.Int 100);
  Harness.json_param "taus" (float_list taus_9ab);
  let mset = d7_mset 100 in
  Harness.row "%6s %18s" "tau" "compression-ratio";
  List.iter
    (fun tau ->
      let tree = Block_tree.build ~params:(params ~tau ()) mset in
      Harness.row "%6.2f %17.2f%%" tau (100.0 *. Block_tree.compression_ratio tree))
    taus_9ab;
  Harness.note "paper: 14.64%% at tau=0.2, decreasing as tau grows"

let fig9b () =
  Harness.section "fig9b" "Number of c-blocks vs tau (D7, |M|=100)";
  let mset = d7_mset 100 in
  Harness.row "%6s %10s" "tau" "#c-blocks";
  List.iter
    (fun tau ->
      let tree = Block_tree.build ~params:(params ~tau ()) mset in
      Harness.row "%6.2f %10d" tau (Block_tree.n_blocks tree))
    taus_9ab;
  Harness.note "paper: fast drop until tau~0.1, then slow decline"

(* --------------------------- Figure 9(c) -------------------------- *)

let fig9c () =
  Harness.section "fig9c" "Distribution of c-block sizes (D7, defaults)";
  let mset = d7_mset 100 in
  let tree = Block_tree.build ~params:(params ()) mset in
  let sizes = Block_tree.block_sizes tree in
  let n = List.length sizes in
  let target_n = Schema.size (Mapping_set.target mset) in
  let buckets = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let prev = try Hashtbl.find buckets s with Not_found -> 0 in
      Hashtbl.replace buckets s (prev + 1))
    sizes;
  Harness.row "%7s %18s %10s" "#corrs" "% of target nodes" "#c-blocks";
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) buckets []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.iter (fun (size, count) ->
         Harness.row "%7d %17.1f%% %10d" size
           (100.0 *. float_of_int size /. float_of_int target_n)
           count);
  let larger_than_one = List.length (List.filter (fun s -> s > 1) sizes) in
  let largest = List.fold_left max 0 sizes in
  let avg = float_of_int (List.fold_left ( + ) 0 sizes) /. float_of_int (max 1 n) in
  Harness.row "total=%d  size>1: %.0f%%  largest=%d (%.1f%% of target)  avg=%.2f" n
    (100.0 *. float_of_int larger_than_one /. float_of_int (max 1 n))
    largest
    (100.0 *. float_of_int largest /. float_of_int target_n)
    avg;
  Harness.note
    "paper: ~50%% of c-blocks larger than one corr; largest=41 (24.7%% of targets); avg=5.33"

(* --------------------------- Figure 9(d) -------------------------- *)

let fig9d () =
  Harness.section "fig9d" "Block-tree construction time Tc per dataset (|M|=100, 200)";
  Harness.row "%-4s %12s %12s" "ID" "Tc(|M|=100)" "Tc(|M|=200)";
  List.iter
    (fun (d : Dataset.t) ->
      let time h =
        let mset = Dataset.mapping_set ~h d in
        Harness.seconds_per_run ~name:(d.id ^ "-tc")
          (fun () -> Block_tree.build ~params:(params ()) mset)
      in
      Harness.row "%-4s %10.2fms %10.2fms" d.id (ms (time 100)) (ms (time 200)))
    Dataset.all;
  Harness.note "paper: a few seconds at most per tree; shape: grows with |M| and |T|"

(* --------------------------- Figure 9(e) -------------------------- *)

let fig9e () =
  Harness.section "fig9e" "Tc vs MAX_B (D7, |M|=100)";
  Harness.json_param "h" (Json.Int 100);
  Harness.json_param "max_b" (int_list [ 20; 60; 100; 160; 200; 260; 300 ]);
  let mset = d7_mset 100 in
  Harness.row "%7s %10s %10s" "MAX_B" "Tc" "#c-blocks";
  List.iter
    (fun max_b ->
      let t =
        Harness.seconds_per_run ~name:"tc-maxb"
          (fun () -> Block_tree.build ~params:(params ~max_b ()) mset)
      in
      let tree = Block_tree.build ~params:(params ~max_b ()) mset in
      Harness.row "%7d %8.2fms %10d" max_b (ms t) (Block_tree.n_blocks tree))
    [ 20; 60; 100; 160; 200; 260; 300 ];
  Harness.note "paper: Tc grows with MAX_B and saturates once all blocks fit (~180)"

(* ------------------------ Figures 9(f), 10(a) --------------------- *)

let query_times h =
  let tree = Block_tree.build ~params:(params ()) (d7_mset h) in
  let ctx_basic = context h in
  let ctx_tree = context ~tree h in
  List.map
    (fun (id, q) ->
      let tb =
        Harness.seconds_per_run ~quota:1.0 ~name:(id ^ "-basic")
          (fun () -> Ptq.query_basic ctx_basic q)
      in
      let tt =
        Harness.seconds_per_run ~quota:1.0 ~name:(id ^ "-tree")
          (fun () -> Ptq.query_tree ctx_tree q)
      in
      (id, tb, tt))
    Queries.table3

let print_query_times rows =
  Harness.row "%-4s %12s %12s %12s" "Q" "basic" "block-tree" "improvement";
  let total_gain = ref 0.0 in
  List.iter
    (fun (id, tb, tt) ->
      total_gain := !total_gain +. ((tb -. tt) /. tb);
      Harness.row "%-4s %10.2fms %10.2fms %11.1f%%" id (ms tb) (ms tt)
        (100.0 *. (tb -. tt) /. tb))
    rows;
  Harness.row "average improvement: %.1f%%"
    (100.0 *. !total_gain /. float_of_int (List.length rows))

let fig9f () =
  Harness.section "fig9f" "PTQ time Tq per query, basic vs block-tree (D7, |M|=100)";
  print_query_times (query_times 100);
  Harness.note "paper: block-tree wins on all ten queries; average improvement 54.60%%"

let fig10a () =
  Harness.section "fig10a" "PTQ time Tq per query, basic vs block-tree (D7, |M|=500)";
  print_query_times (query_times 500);
  Harness.note "paper: same shape as Fig 9(f) at |M|=500"

(* --------------------------- Figure 10(b) ------------------------- *)

let fig10b () =
  Harness.section "fig10b" "Tq vs tau (D7, Q10, block-tree, |M|=100)";
  Harness.row "%6s %10s %10s %8s %8s %8s" "tau" "Tq" "#c-blocks" "shared" "direct" "joins";
  List.iter
    (fun tau ->
      let tree = Block_tree.build ~params:(params ~tau ()) (d7_mset 100) in
      let ctx = context ~tree 100 in
      let t =
        Harness.seconds_per_run ~name:"tq-tau" (fun () -> Ptq.query_tree ctx Queries.q10)
      in
      let stats, _ = Ptq.explain ctx Queries.q10 in
      Harness.row "%6.2f %8.2fms %10d %8d %8d %8d" tau (ms t) (Block_tree.n_blocks tree)
        stats.Ptq.shared_evaluations stats.Ptq.direct_evaluations stats.Ptq.joins)
    [ 0.02; 0.12; 0.22; 0.32; 0.42; 0.52; 0.65 ];
  Harness.note
    "paper: Tq rises while blocks vanish (tau up to ~0.2-0.3), then falls again for large tau"

(* --------------------------- Figure 10(c) ------------------------- *)

let fig10c () =
  Harness.section "fig10c" "Tq vs |M| (D7, Q10), basic vs block-tree";
  Harness.row "%6s %12s %12s" "|M|" "basic" "block-tree";
  List.iter
    (fun h ->
      let tree = Block_tree.build ~params:(params ()) (d7_mset h) in
      let cb = context h in
      let ct = context ~tree h in
      let tb =
        Harness.seconds_per_run ~name:"tq-m-basic" (fun () -> Ptq.query_basic cb Queries.q10)
      in
      let tt =
        Harness.seconds_per_run ~name:"tq-m-tree" (fun () -> Ptq.query_tree ct Queries.q10)
      in
      Harness.row "%6d %10.2fms %10.2fms" h (ms tb) (ms tt))
    [ 30; 40; 50; 60; 70; 80; 90; 100; 120; 140; 160; 180; 200 ];
  Harness.note "paper: block-tree consistently below basic; average improvement 47.05%%"

(* --------------------------- Figure 10(d) ------------------------- *)

let fig10d () =
  Harness.section "fig10d" "top-k PTQ: Tq vs k (D7, Q10, |M|=100)";
  Harness.json_param "h" (Json.Int 100);
  Harness.json_param "ks" (int_list [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ]);
  let tree = Block_tree.build ~params:(params ()) (d7_mset 100) in
  let ctx = context ~tree 100 in
  let normal =
    Harness.seconds_per_run ~name:"tq-normal" (fun () -> Ptq.query_tree ctx Queries.q10)
  in
  Harness.row "%6s %10s %10s" "k" "top-k" "normal";
  List.iter
    (fun k ->
      let t =
        Harness.seconds_per_run ~name:"tq-topk" (fun () -> Ptq.query_topk ctx ~k Queries.q10)
      in
      Harness.row "%6d %8.2fms %8.2fms" k (ms t) (ms normal))
    [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ];
  Harness.note
    "paper: top-k well below normal for small k (90.31%% faster at k=10), converging as k -> |M|"

(* --------------------------- Figure 10(e) ------------------------- *)

let fig10e () =
  Harness.section "fig10e"
    "Top-h mapping generation Tg per dataset: murty vs partition (h=100)";
  Harness.row "%-4s %12s %12s %12s %11s" "ID" "murty" "partition" "#partitions" "improvement";
  List.iter
    (fun (d : Dataset.t) ->
      let g = Matching.to_bipartite (Dataset.matching d) in
      let n_parts = List.length (Partition.components g) in
      let tm =
        Harness.seconds_per_run ~quota:1.0 ~name:(d.id ^ "-murty")
          (fun () -> Murty.top ~h:100 g)
      in
      let tp =
        Harness.seconds_per_run ~quota:1.0 ~name:(d.id ^ "-partition")
          (fun () -> Partition.top ~exec:!exec ~h:100 g)
      in
      Harness.row "%-4s %10.2fms %10.2fms %12d %10.1f%%" d.id (ms tm) (ms tp) n_parts
        (100.0 *. (tm -. tp) /. tm))
    Dataset.all;
  Harness.note "paper: partition consistently wins (log-scale plot); 23..966 partitions per dataset"

(* --------------------------- Figure 10(f) ------------------------- *)

let fig10f () =
  Harness.section "fig10f" "Tg vs h on D1: murty vs partition";
  let g = Matching.to_bipartite (Dataset.matching (Option.get (Dataset.find "D1"))) in
  Harness.row "%6s %12s %12s %12s" "h" "murty" "partition" "improvement";
  List.iter
    (fun h ->
      let tm =
        Harness.seconds_per_run ~quota:0.5 ~name:"tg-murty" (fun () -> Murty.top ~h g)
      in
      let tp =
        Harness.seconds_per_run ~quota:0.5 ~name:"tg-partition"
          (fun () -> Partition.top ~exec:!exec ~h g)
      in
      Harness.row "%6d %10.2fms %10.2fms %11.1f%%" h (ms tm) (ms tp)
        (100.0 *. (tm -. tp) /. tm))
    [ 100; 200; 300; 400; 500; 600; 700; 800; 900; 1000 ];
  Harness.note "paper: improvement always above 87.97%%"


(* ----------------------------- Ablations -------------------------- *)
(* Beyond the paper's figures: each ablation isolates one design choice
   DESIGN.md calls out. *)

let abl_warm () =
  Harness.section "abl_warm" "ABLATION: Murty warm restart vs cold re-solve (h=50)";
  Harness.row "%-4s %12s %12s %10s" "ID" "cold" "warm" "speedup";
  List.iter
    (fun id ->
      let d = Option.get (Dataset.find id) in
      let g = Matching.to_bipartite (Dataset.matching d) in
      let tc =
        Harness.seconds_per_run ~quota:0.5 ~name:"cold"
          (fun () -> Murty.top ~resolve:`Cold ~h:50 g)
      in
      let tw =
        Harness.seconds_per_run ~quota:0.5 ~name:"warm"
          (fun () -> Murty.top ~resolve:`Warm ~h:50 g)
      in
      Harness.row "%-4s %10.2fms %10.2fms %9.1fx" id (ms tc) (ms tw) (tc /. tw))
    [ "D1"; "D3"; "D4"; "D6" ];
  Harness.note "the single-augmentation warm restart is what makes plain murty usable at all"

let abl_order () =
  Harness.section "abl_order" "ABLATION: Murty partition order `Index vs `Degree (h=100)";
  Harness.row "%-4s %12s %12s" "ID" "`Index" "`Degree";
  List.iter
    (fun id ->
      let d = Option.get (Dataset.find id) in
      let g = Matching.to_bipartite (Dataset.matching d) in
      let ti =
        Harness.seconds_per_run ~quota:0.5 ~name:"index"
          (fun () -> Murty.top ~order:`Index ~h:100 g)
      in
      let td =
        Harness.seconds_per_run ~quota:0.5 ~name:"degree"
          (fun () -> Murty.top ~order:`Degree ~h:100 g)
      in
      Harness.row "%-4s %10.2fms %10.2fms" id (ms ti) (ms td))
    [ "D1"; "D3"; "D4"; "D6" ];
  Harness.note "branching constrained elements first narrows the subproblem tree"

let abl_engine () =
  Harness.section "abl_engine"
    "ABLATION: twig engines on rewritten D7 queries (memoized top-down vs join plan)";
  let mset = d7_mset 100 in
  let doc = Lazy.force d7_doc in
  let source = Mapping_set.source mset in
  let target_doc = Doc.of_tree (Schema.to_xml_tree (Mapping_set.target mset)) in
  let top_mapping = Mapping_set.mapping mset 0 in
  Harness.row "%-4s %12s %12s %12s %9s" "Q" "top-down" "join-plan" "twiglist" "matches";
  List.iter
    (fun (id, q) ->
      match Uxsm_ptq.Resolve.against_doc q target_doc with
      | [] -> Harness.row "%-4s (no resolution)" id
      | resolution :: _ -> (
        match
          Uxsm_ptq.Rewrite.through ~source ~pattern:q ~resolution ~at_top:true
            ~lookup:(Uxsm_mapping.Mapping.source_of top_mapping)
        with
        | None -> Harness.row "%-4s (not rewritable under the top mapping)" id
        | Some q_s ->
          let tm =
            Harness.seconds_per_run ~name:"matcher"
              (fun () -> Uxsm_twig.Matcher.matches q_s doc)
          in
          let tj =
            Harness.seconds_per_run ~name:"join"
              (fun () -> Uxsm_twig.Join_matcher.matches q_s doc)
          in
          let tl =
            Harness.seconds_per_run ~name:"twiglist"
              (fun () -> Uxsm_twig.Twiglist.matches q_s doc)
          in
          Harness.row "%-4s %10.3fms %10.3fms %10.3fms %9d" id (ms tm) (ms tj) (ms tl)
            (Uxsm_twig.Matcher.count q_s doc)))
    Queries.table3;
  Harness.note "identical results (tested property); cost profiles differ with selectivity"

let abl_compress () =
  Harness.section "abl_compress" "ABLATION: storage, naive vs block tree, vs |M| (D7)";
  Harness.row "%6s %12s %12s %12s" "|M|" "naive" "block tree" "ratio";
  List.iter
    (fun h ->
      let mset = d7_mset h in
      let tree = Block_tree.build ~params:(params ()) mset in
      let naive = Mapping_set.storage_bytes_naive mset in
      let compressed = Block_tree.storage_bytes tree in
      Harness.row "%6d %11db %11db %11.1f%%" h naive compressed
        (100.0 *. Block_tree.compression_ratio tree))
    [ 50; 100; 200; 500 ];
  Harness.note "compression improves with |M|: more mappings share each c-block"

let abl_relational () =
  Harness.section "abl_relational"
    "ABLATION (future work): top-h generation on relational schemas";
  let m = Uxsm_workload.Relational.matching () in
  let g = Matching.to_bipartite m in
  let comps = Partition.components g in
  let tm =
    Harness.seconds_per_run ~quota:0.5 ~name:"rel-murty" (fun () -> Murty.top ~h:100 g)
  in
  let tp =
    Harness.seconds_per_run ~quota:0.5 ~name:"rel-partition"
      (fun () -> Partition.top ~exec:!exec ~h:100 g)
  in
  Harness.row "capacity=%d partitions=%d murty=%.2fms partition=%.2fms improvement=%.1f%%"
    (Matching.capacity m) (List.length comps) (ms tm) (ms tp)
    (100.0 *. (tm -. tp) /. tm);
  Harness.note "flat (2-level) schemas are even sparser; the partitioning advantage persists"

let abl_exec_pool () =
  Harness.section "abl_exec_pool"
    "ABLATION: executor dispatch overhead, sequential vs warm-pool fan-out";
  Harness.json_param "threshold" (Json.Float (Executor.parallel_threshold ()));
  let sizes = [ 1_000; 10_000; 100_000 ] in
  Harness.json_param "sizes" (int_list sizes);
  (* Near-trivial payload, so the pool side measures almost pure scheduling
     cost. The calls carry no [cost_hint] on purpose: hint-less calls bypass
     the cost gate, so at jobs>1 every iteration really wakes the warm
     workers — this section is what CI greps to prove the pool spawns at
     most (jobs - 1) domains for the whole run instead of per call. *)
  let f x = (x * 31) lxor (x lsr 3) in
  Harness.row "%8s %14s %14s %8s" "items" "sequential" "warm-pool" "ratio";
  List.iter
    (fun n ->
      let arr = Array.init n Fun.id in
      let ts =
        Harness.seconds_per_run ~name:(Printf.sprintf "seq-%d" n)
          (fun () -> Executor.map_array Executor.sequential f arr)
      in
      let tp =
        Harness.seconds_per_run ~name:(Printf.sprintf "pool-%d" n)
          (fun () -> Executor.map_array !exec f arr)
      in
      Harness.row "%8d %12.4fms %12.4fms %7.2fx" n (ms ts) (ms tp) (tp /. ts))
    sizes;
  Harness.json_param "pool_width" (Json.Int (Executor.pool_width ()));
  (* Park-and-join: idle pool domains still take part in every GC
     stop-the-world handshake, which on a host with few spare cores taxes
     the *sequential* sections that run after this one. Joining here keeps
     each record's timings attributable to its own section. *)
  Executor.shutdown ();
  Harness.note
    "exec.domains_spawned in this record must stay below the pool width (workers are reused)";
  Harness.note
    "with few cores the ratio is pure dispatch overhead -- the cost gate exists to dodge exactly that"

(* ------------------ ablation: incremental updates ------------------ *)

let abl_update () =
  Harness.section "abl_update"
    "ABLATION: single-component re-score, incremental update vs full rebuild (h=100)";
  Harness.json_param "h" (Json.Int 100);
  Harness.row "%-4s %5s %10s %12s %12s %9s" "ID" "comps" "reranked" "full" "incr" "speedup";
  List.iter
    (fun (d : Dataset.t) ->
      let u = Dataset.matching ~exec:!exec d in
      let src = Matching.source u and tgt = Matching.target u in
      let comps = Partition.components (Matching.to_bipartite u) in
      (* A single-component delta: re-score the first edge of the median
         component in merge order, nudged by 0.25 so the new score stays
         in (0, 1]. The median is the representative placement — the
         merge-prefix cache replays the fold up to the touched component,
         so earlier placements re-merge more and later ones less. *)
      let x, y, w =
        match List.nth_opt comps (List.length comps / 2) with
        | Some { Partition.edges = e :: _; _ } -> e
        | _ -> failwith "dataset with no correspondences"
      in
      let delta =
        {
          Matching.set_scores =
            [
              ( Schema.path_string src x,
                Schema.path_string tgt y,
                if w > 0.5 then w -. 0.25 else w +. 0.25 );
            ];
          remove_corrs = [];
          add_source = [];
          add_target = [];
        }
      in
      let u' =
        match Matching.apply_delta delta u with
        | Ok u' -> u'
        | Error e -> failwith e
      in
      let mset = Mapping_set.generate ~exec:!exec ~h:100 u in
      let tree = Block_tree.build ~params:(params ()) mset in
      (* How much of the ranking one incremental pass actually redoes. *)
      let reranked_c = Uxsm_obs.Obs.counter "partition.components_reranked" in
      let r0 = Uxsm_obs.Obs.value reranked_c in
      let mset' = Mapping_set.update ~exec:!exec u' mset in
      let reranked = Uxsm_obs.Obs.value reranked_c - r0 in
      ignore (Block_tree.update ~old:tree mset');
      let t_full =
        Harness.seconds_per_run ~quota:0.5 ~name:(d.id ^ "-full") (fun () ->
            Block_tree.build ~params:(params ())
              (Mapping_set.generate ~exec:!exec ~h:100 u'))
      in
      let t_incr =
        Harness.seconds_per_run ~quota:0.5 ~name:(d.id ^ "-incr") (fun () ->
            Block_tree.update ~old:tree (Mapping_set.update ~exec:!exec u' mset))
      in
      Harness.json_param (d.id ^ "_components") (Json.Int (List.length comps));
      Harness.json_param (d.id ^ "_reranked") (Json.Int reranked);
      Harness.row "%-4s %5d %10d %10.2fms %10.2fms %8.1fx" d.id (List.length comps) reranked
        (ms t_full) (ms t_incr) (t_full /. t_incr))
    Dataset.all;
  Harness.note
    "a delta confined to one connected component re-ranks only that component and rebuilds \
     only the dirty block subtrees";
  Harness.note
    "the <ID>_reranked params must stay below <ID>_components (checked by the record validator)"

(* ------------------- ablation: concurrent serving ------------------ *)

let abl_serve () =
  let module Server = Uxsm_server.Server in
  let module Protocol = Uxsm_server.Protocol in
  let module Catalog = Uxsm_server.Catalog in
  Harness.section "abl_serve"
    "ABLATION: concurrent TCP service vs sequential dispatch of the same load";
  let n_clients = 4 and per_client = 50 in
  Harness.json_param "clients" (Json.Int n_clients);
  Harness.json_param "requests_per_client" (Json.Int per_client);
  let srv = Server.create ~cache_entries:32 ~exec:!exec () in
  (match
     Catalog.register (Server.catalog srv) ~name:"demo" ~doc_seed:7
       (Protocol.From_dataset (Option.get (Dataset.find "D7"), 42))
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  let requests ci =
    List.init per_client (fun j ->
        let id = Printf.sprintf {|"b%d-%d"|} ci j in
        match j mod 3 with
        | 0 -> Printf.sprintf {|{"op":"ping","id":%s}|} id
        | 1 ->
          Printf.sprintf
            {|{"op":"query","corpus":"demo","query":"Order/POLine[./LineNo]//UnitPrice","h":20,"id":%s}|}
            id
        | _ -> Printf.sprintf {|{"op":"mappings","corpus":"demo","h":20,"id":%s}|} id)
  in
  (* Sequential floor first: the same request stream through dispatch
     alone. This also warms the artifact cache, so both measurements see
     the steady serving state rather than one paying the block-tree
     build. *)
  let all = List.concat_map requests (List.init n_clients Fun.id) in
  let t0 = Uxsm_util.Timing.now_mono () in
  List.iter (fun l -> ignore (Server.handle_line srv l)) all;
  let seq = Uxsm_util.Timing.now_mono () -. t0 in
  Harness.record_measurement "sequential-dispatch" seq;
  (* The same load as a real service: N pipelining TCP clients over the
     shared bounded queue and the dispatcher's pool fan-out. *)
  let port_box = ref 0 in
  let m = Uxsm_util.Locks.create ~name:"bench.ready" ~rank:Uxsm_util.Locks.rank_latch in
  let c = Uxsm_util.Locks.cond () and up = ref false in
  let th =
    Thread.create
      (fun () ->
        Server.serve_tcp
          ~ready:(fun p ->
            Uxsm_util.Locks.lock m;
            port_box := p;
            up := true;
            Uxsm_util.Locks.signal c;
            Uxsm_util.Locks.unlock m)
          srv ~host:"127.0.0.1" ~port:0)
      ()
  in
  Uxsm_util.Locks.lock m;
  while not !up do
    Uxsm_util.Locks.wait c m
  done;
  Uxsm_util.Locks.unlock m;
  let port = !port_box in
  let burst () =
    let clients =
      List.init n_clients (fun ci ->
          Thread.create
            (fun () ->
              let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
              Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
              let oc = Unix.out_channel_of_descr fd
              and ic = Unix.in_channel_of_descr fd in
              let reqs = requests ci in
              List.iter
                (fun l ->
                  output_string oc l;
                  output_char oc '\n')
                reqs;
              flush oc;
              List.iter (fun _ -> ignore (input_line ic)) reqs;
              Unix.close fd)
            ())
    in
    List.iter Thread.join clients
  in
  let t0 = Uxsm_util.Timing.now_mono () in
  burst ();
  let conc = Uxsm_util.Timing.now_mono () -. t0 in
  Harness.record_measurement "concurrent-tcp" conc;
  Server.request_stop srv;
  Thread.join th;
  let total = n_clients * per_client in
  Harness.json_param "total_requests" (Json.Int total);
  Harness.row "%-20s %10.0f req/s  (%8.3fms total)" "sequential" (float_of_int total /. seq)
    (ms seq);
  Harness.row "%-20s %10.0f req/s  (%8.3fms total)" "concurrent-tcp"
    (float_of_int total /. conc) (ms conc);
  Harness.note "this record's histograms carry server.<op>.latency p50/p95/p99 per op";
  Harness.note
    "the concurrent path adds transport + admission queue; at --jobs 1 parity with \
     sequential dispatch is the bar, at --jobs >1 pure requests overlap"

let abl_plan_choice () =
  Harness.section "abl_plan_choice"
    "ABLATION: cost-based evaluator choice vs forced basic/tree (D7, |M|=100)";
  Harness.json_param "h" (Json.Int 100);
  let queries =
    List.filter (fun (id, _) -> List.mem id [ "Q1"; "Q7"; "Q10" ]) Queries.table3
  in
  (* Sharing regimes: low τ packs many mappings per c-block (Algorithm 4
     territory), high τ leaves few blocks, and no tree at all leaves only
     Algorithm 3. The JSONL record keeps every pick next to both forced
     timings so the acceptance check "auto matches the faster evaluator"
     is machine-readable. *)
  let configs =
    [ ("tau0.05", Some 0.05); ("tau0.2", Some 0.2); ("tau0.6", Some 0.6); ("no-tree", None) ]
  in
  let picks = ref [] in
  Harness.row "%-8s %-4s %-12s %-7s %11s %11s %6s" "config" "Q" "auto-choice" "why"
    "basic" "tree" "agree";
  List.iter
    (fun (cname, tau) ->
      let tree =
        Option.map (fun tau -> Block_tree.build ~params:(params ~tau ()) (d7_mset 100)) tau
      in
      let ctx = context ?tree 100 in
      List.iter
        (fun (qid, q) ->
          let phys = Ptq.physical (Ptq.compile ctx q) in
          let chosen = Plan.evaluator_name phys.Plan.evaluator in
          let tb =
            Harness.seconds_per_run ~quota:0.4
              ~name:(Printf.sprintf "%s/%s/basic" cname qid)
              (fun () -> Ptq.query ~force:`Basic ctx q)
          in
          let tt =
            Option.map
              (fun _ ->
                Harness.seconds_per_run ~quota:0.4
                  ~name:(Printf.sprintf "%s/%s/tree" cname qid)
                  (fun () -> Ptq.query ~force:`Tree ctx q))
              tree
          in
          let faster =
            match tt with
            | Some tt when tt < tb -> "per_block"
            | _ -> "per_mapping"
          in
          (* Relative gap between the forced runs: when the two evaluators
             time within 10% of each other, either pick is "the faster
             one" up to measurement noise, and the choice counts as
             agreeing. *)
          let margin =
            match tt with
            | None -> 1.0
            | Some tt -> Float.abs (tt -. tb) /. Float.max tt tb
          in
          let agree = String.equal chosen faster || margin < 0.10 in
          picks :=
            Json.Assoc
              [
                ("config", Json.String cname);
                ("query", Json.String qid);
                ("chosen", Json.String chosen);
                ("reason", Json.String (Plan.reason_name phys.Plan.reason));
                ("cost_per_mapping", Json.Float phys.Plan.cost.Plan.per_mapping);
                ( "cost_per_block",
                  match phys.Plan.cost.Plan.per_block with
                  | None -> Json.Null
                  | Some c -> Json.Float c );
                ("basic_ms", Json.Float (ms tb));
                ("tree_ms", match tt with None -> Json.Null | Some t -> Json.Float (ms t));
                ("faster", Json.String faster);
                ("margin", Json.Float margin);
                ("agree", Json.Bool agree);
              ]
            :: !picks;
          Harness.row "%-8s %-4s %-12s %-7s %9.3fms %11s %6s" cname qid chosen
            (Plan.reason_name phys.Plan.reason) (ms tb)
            (match tt with None -> "-" | Some t -> Printf.sprintf "%.3fms" (ms t))
            (if agree then "yes" else "NO"))
        queries)
    configs;
  Harness.json_param "picks" (Json.List (List.rev !picks));
  Harness.note
    "auto must pick the faster forced evaluator (ties within 10%% count as agreement)";
  Harness.note "at least for low tau (high sharing) and no-tree the picks must agree"

(* ------------------------------ main ------------------------------ *)

let experiments =
  [
    ("table2", table2);
    ("fig9a", fig9a);
    ("fig9b", fig9b);
    ("fig9c", fig9c);
    ("fig9d", fig9d);
    ("fig9e", fig9e);
    ("fig9f", fig9f);
    ("fig10a", fig10a);
    ("fig10b", fig10b);
    ("fig10c", fig10c);
    ("fig10d", fig10d);
    ("fig10e", fig10e);
    ("fig10f", fig10f);
    ("abl_warm", abl_warm);
    ("abl_order", abl_order);
    ("abl_engine", abl_engine);
    ("abl_compress", abl_compress);
    ("abl_relational", abl_relational);
    ("abl_exec_pool", abl_exec_pool);
    ("abl_plan_choice", abl_plan_choice);
    ("abl_update", abl_update);
    ("abl_serve", abl_serve);
  ]

let () =
  let argv = List.tl (Array.to_list Sys.argv) in
  let json_path = ref None in
  let jobs = ref (Executor.jobs_of_env ()) in
  let ids = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse rest
    | [ "--json" ] ->
      prerr_endline "--json requires a path";
      exit 2
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        jobs := n;
        parse rest
      | _ ->
        prerr_endline "--jobs requires an integer >= 1";
        exit 2)
    | [ "--jobs" ] ->
      prerr_endline "--jobs requires an integer >= 1";
      exit 2
    | id :: rest ->
      ids := id :: !ids;
      parse rest
  in
  parse argv;
  exec := Executor.of_jobs !jobs;
  let selected =
    match List.rev !ids with
    | [] -> List.map fst experiments
    | ids -> ids
  in
  (* Every run appends one machine-readable record; default file keyed by
     the measured revision so baselines of different commits never mix. *)
  let path =
    match !json_path with
    | Some p -> p
    | None -> Printf.sprintf "BENCH_%s.json" (Uxsm_obs.Bench_json.git_rev ())
  in
  Harness.start_recording path;
  Printf.printf "uxsm benchmark harness -- reproduction of Cheng/Gong/Cheung, ICDE 2010\n";
  Printf.printf
    "defaults: |M|=100, tau=0.2, MAX_B=500, MAX_F=500, dataset D7, source doc 3473 nodes\n";
  Printf.printf "executor: %s (--jobs %d)\n%!" (Executor.backend_name !exec) !jobs;
  let t0 = Uxsm_util.Timing.now_mono () in
  List.iter
    (fun id ->
      match List.assoc_opt id experiments with
      | Some f -> f ()
      | None ->
        Printf.printf "unknown experiment %s (available: %s)\n" id
          (String.concat ", " (List.map fst experiments)))
    selected;
  Harness.finalize ~argv ~jobs:!jobs ~executor:(Executor.backend_name !exec) ();
  Printf.printf "\ntotal bench wall time: %.1fs\n" (Uxsm_util.Timing.now_mono () -. t0)
