(* Standalone load-generator driver: replay a workload profile against a
   live `uxsm serve` and append the resulting loadgen record to a
   BENCH_*.json trajectory file. A thin wrapper over
   Uxsm_workload.Loadgen — `uxsm loadgen` offers the same thing behind
   cmdliner; this binary exists so bench/ is self-contained. *)

module Loadgen = Uxsm_workload.Loadgen
module Bench_json = Uxsm_obs.Bench_json

let usage = "usage: loadgen --profile FILE.json (--tcp [HOST:]PORT | --socket PATH) [--json OUT.json]"

let () =
  let profile = ref "" in
  let tcp = ref "" in
  let socket = ref "" in
  let json_out = ref "" in
  let spec =
    [
      ("--profile", Arg.Set_string profile, "FILE.json workload profile");
      ("--tcp", Arg.Set_string tcp, "[HOST:]PORT connect over TCP (default host 127.0.0.1)");
      ("--socket", Arg.Set_string socket, "PATH connect over a Unix socket");
      ("--json", Arg.Set_string json_out, "FILE append the run record to FILE");
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a))) usage;
  let die msg =
    prerr_endline msg;
    exit 2
  in
  if !profile = "" then die usage;
  let target =
    match (!tcp, !socket) with
    | "", "" -> die usage
    | t, "" -> (
      match String.rindex_opt t ':' with
      | None -> (
        match int_of_string_opt t with
        | Some port -> Loadgen.Runner.Tcp ("127.0.0.1", port)
        | None -> die (Printf.sprintf "--tcp %S: not [HOST:]PORT" t))
      | Some i -> (
        match int_of_string_opt (String.sub t (i + 1) (String.length t - i - 1)) with
        | Some port -> Loadgen.Runner.Tcp (String.sub t 0 i, port)
        | None -> die (Printf.sprintf "--tcp %S: not [HOST:]PORT" t)))
    | "", s -> Loadgen.Runner.Unix_socket s
    | _ -> die "--tcp and --socket are exclusive"
  in
  match Loadgen.Profile.load !profile with
  | Error e -> die (Printf.sprintf "%s: %s" !profile e)
  | Ok p -> (
    match Loadgen.Runner.run ~log:prerr_endline p target with
    | Error e -> die e
    | Ok lg ->
      List.iter print_endline (Loadgen.Runner.summary_lines lg);
      if !json_out <> "" then begin
        let run = Loadgen.Runner.record ~argv:(List.tl (Array.to_list Sys.argv)) lg in
        Bench_json.append_to_file ~path:!json_out run;
        Printf.printf "appended loadgen record to %s\n" !json_out
      end)
