(* Validate BENCH_*.json record files: every line must parse as a run
   record (old records without executor fields are accepted with their
   documented defaults). Prints a one-line summary per file; a malformed
   file is reported with the line number and offending field of its first
   bad record, and the checker exits 1 once all files were examined. Used
   by CI and handy after hand-editing or merging baseline files. *)

module Bench_json = Uxsm_obs.Bench_json

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let validate path =
  match Bench_json.runs_of_lines (read_file path) with
  | Error e ->
    Printf.eprintf "%s: INVALID: %s\n" path e;
    false
  | Ok runs ->
    (* Parsing is necessary but not sufficient: run the per-record
       invariant checks too (loadgen payload consistency, histogram
       bucket arity, non-negative counts). *)
    let bad =
      List.filteri
        (fun i r ->
          match Bench_json.check_run r with
          | Ok () -> false
          | Error e ->
            Printf.eprintf "%s: record %d INVALID: %s\n" path (i + 1) e;
            true)
        runs
    in
    if bad <> [] then false
    else begin
      let by_executor =
        List.sort_uniq
          (fun (e1, j1) (e2, j2) ->
            match String.compare e1 e2 with 0 -> Int.compare j1 j2 | c -> c)
          (List.map (fun (r : Bench_json.run) -> (r.r_executor, r.r_jobs)) runs)
      in
      Printf.printf "%s: %d run records ok (%s)\n" path (List.length runs)
        (String.concat ", "
           (List.map (fun (e, j) -> Printf.sprintf "%s/%d" e j) by_executor));
      true
    end

let () =
  match List.tl (Array.to_list Sys.argv) with
  | [] ->
    prerr_endline "usage: validate FILE.json [FILE.json ...]";
    exit 2
  | paths ->
    (* Examine every file even after a failure so one run reports them all. *)
    if not (List.fold_left (fun acc p -> validate p && acc) true paths) then exit 1
