module Json = Uxsm_util.Json

type severity = Error | Warning
type scope = Lib | Bin | Bench | Tools | Test | Other

let scope_of_path p =
  if String.starts_with ~prefix:"lib/" p then Lib
  else if String.starts_with ~prefix:"bin/" p then Bin
  else if String.starts_with ~prefix:"bench/" p then Bench
  else if String.starts_with ~prefix:"tools/" p then Tools
  else if String.starts_with ~prefix:"test/" p then Test
  else Other

type context = {
  file : string;
  scope : scope;
  executor_reachable : bool;
}

type finding = {
  rule : string;
  file : string;
  line : int;
  col : int;
  severity : severity;
  message : string;
  suppressed : string option;
  baselined : bool;
}

let severity_name = function Error -> "error" | Warning -> "warning"

(* R1/R2 structural rules are errors where the invariants are load-bearing
   (library code runs under executor workers) and warnings in driver
   executables, whose top-level Arg state never crosses a domain. *)
let r12_severity scope =
  match scope with Lib -> Error | Bin | Bench | Tools | Test | Other -> Warning

(* ------------------------------------------------------------------ *)
(* Annotations                                                        *)
(* ------------------------------------------------------------------ *)

type annotation = { a_line : int; a_rule : string; a_reason : string }

(* Built by concatenation so this module's own source never contains the
   literal marker: the scanner is line-textual, and under self-linting the
   occurrences here (pattern and messages) would read as malformed
   annotations. *)
let allow_marker = "lint:" ^ " allow"

let is_rule_char c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

let find_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

(* Bytes accepted as the rule/reason separator: '-' and ':' cover the
   ASCII spellings, and the three bytes of the UTF-8 em dash cover the
   grammar's canonical form. *)
let is_sep_byte c = c = '-' || c = ':' || c = '\xe2' || c = '\x80' || c = '\x94'

let parse_annotation_line ~lineno line =
  match find_substring line allow_marker with
  | None -> None
  | Some i ->
    let rest = String.sub line (i + 11) (String.length line - i - 11) in
    let rest = String.trim rest in
    let n = String.length rest in
    let j = ref 0 in
    while !j < n && is_rule_char rest.[!j] do incr j done;
    let rule = String.sub rest 0 !j in
    let after = String.sub rest !j (n - !j) in
    let after = String.trim after in
    let m = String.length after in
    let k = ref 0 in
    while !k < m && is_sep_byte after.[!k] do incr k done;
    let had_sep = !k > 0 in
    let reason = String.trim (String.sub after !k (m - !k)) in
    let reason =
      match find_substring reason "*)" with
      | Some p -> String.trim (String.sub reason 0 p)
      | None -> reason
    in
    if rule = "" || not had_sep || reason = "" then Some (Result.Error lineno)
    else Some (Ok { a_line = lineno; a_rule = rule; a_reason = reason })

let annotations_of_source src =
  let lines = String.split_on_char '\n' src in
  let anns = ref [] and bad = ref [] in
  List.iteri
    (fun i line ->
      match parse_annotation_line ~lineno:(i + 1) line with
      | None -> ()
      | Some (Ok a) -> anns := a :: !anns
      | Some (Result.Error l) -> bad := l :: !bad)
    lines;
  (List.rev !anns, List.rev !bad)

let suppression anns ~rule ~line =
  List.find_map
    (fun a ->
      if String.equal a.a_rule rule && (a.a_line = line || a.a_line = line - 1) then
        Some a.a_reason
      else None)
    anns

(* ------------------------------------------------------------------ *)
(* AST helpers                                                        *)
(* ------------------------------------------------------------------ *)

open Parsetree

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> flatten_lid p @ [ s ]
  | Longident.Lapply (a, b) -> flatten_lid a @ flatten_lid b

let path_of lid =
  match flatten_lid lid with "Stdlib" :: rest -> rest | p -> p

let ident_path e =
  match e.pexp_desc with Pexp_ident { txt; _ } -> Some (path_of txt) | _ -> None

let line_col (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let ends_with2 path a b =
  match List.rev path with
  | y :: x :: _ -> String.equal x a && String.equal y b
  | _ -> false

(* ------------------------------------------------------------------ *)
(* R1: top-level mutable state                                        *)
(* ------------------------------------------------------------------ *)

(* Field names declared [mutable] anywhere in the file; a top-level record
   literal assigning one of them is shared mutable state. *)
let mutable_fields_of_structure str =
  let fields = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun self td ->
          (match td.ptype_kind with
          | Ptype_record labels ->
            List.iter
              (fun l -> if l.pld_mutable = Mutable then fields := l.pld_name.txt :: !fields)
              labels
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration self td);
    }
  in
  it.structure it str;
  !fields

(* Classify a top-level binding's right-hand side. Returns a description
   and a severity override ([None] means the scope default applies). *)
let rec mutable_creator mutable_fields e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> mutable_creator mutable_fields e
  | Pexp_apply (f, _) -> (
    match ident_path f with
    | Some [ "ref" ] -> Some ("ref cell", None)
    | Some p when ends_with2 p "Hashtbl" "create" || ends_with2 p "Hashtbl" "of_seq"
                  || ends_with2 p "Hashtbl" "copy" ->
      Some ("Hashtbl", None)
    | Some p when ends_with2 p "Buffer" "create" -> Some ("Buffer", None)
    | Some p when ends_with2 p "Queue" "create" || ends_with2 p "Stack" "create" ->
      Some ("Queue/Stack", None)
    | Some p
      when ends_with2 p "Array" "make" || ends_with2 p "Array" "init"
           || ends_with2 p "Array" "create_float" || ends_with2 p "Array" "of_list"
           || ends_with2 p "Array" "copy" || ends_with2 p "Array" "make_matrix" ->
      (* Arrays are often de-facto read-only lookup tables, so this stays a
         warning even in lib/. *)
      Some ("array", Some Warning)
    | Some p when ends_with2 p "Bytes" "create" || ends_with2 p "Bytes" "make" ->
      Some ("Bytes", None)
    | _ -> None)
  | Pexp_array _ -> Some ("array literal", Some Warning)
  | Pexp_record (fields, _) ->
    if
      List.exists
        (fun ({ Location.txt; _ }, _) ->
          match List.rev (flatten_lid txt) with
          | name :: _ -> List.mem name mutable_fields
          | [] -> false)
        fields
    then Some ("record with mutable fields", None)
    else None
  | _ -> None

let binding_name pat =
  match pat.ppat_desc with Ppat_var { txt; _ } -> txt | _ -> "_"

let r1_findings (ctx : context) mutable_fields str =
  if not ctx.executor_reachable then []
  else begin
    let acc = ref [] in
    let emit loc name what sev_override =
      let line, col = line_col loc in
      let severity = match sev_override with Some s -> s | None -> r12_severity ctx.scope in
      acc :=
        {
          rule = "domain-unsafe";
          file = ctx.file;
          line;
          col;
          severity;
          message =
            Printf.sprintf
              "top-level mutable state: `%s` is a %s in an executor-reachable module; \
               use Atomic/Domain.DLS, guard it and annotate, or create it per call"
              name what;
          suppressed = None;
          baselined = false;
        }
        :: !acc
    in
    let rec scan_structure s = List.iter scan_item s
    and scan_item item =
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match mutable_creator mutable_fields vb.pvb_expr with
            | Some (what, sev) -> emit vb.pvb_loc (binding_name vb.pvb_pat) what sev
            | None -> ())
          vbs
      | Pstr_module mb -> scan_module_expr mb.pmb_expr
      | Pstr_recmodule mbs -> List.iter (fun mb -> scan_module_expr mb.pmb_expr) mbs
      | Pstr_include i -> scan_module_expr i.pincl_mod
      | _ -> ()
    and scan_module_expr me =
      match me.pmod_desc with
      | Pmod_structure s -> scan_structure s
      | Pmod_constraint (me, _) -> scan_module_expr me
      (* Functor bodies create their state per application — not global. *)
      | _ -> ()
    in
    scan_structure str;
    !acc
  end

(* ------------------------------------------------------------------ *)
(* Expression rules (R1 Random, R2, R3)                               *)
(* ------------------------------------------------------------------ *)

let sort_functions = [ "sort"; "sort_uniq"; "stable_sort"; "fast_sort" ]

let is_sort_head e =
  let head =
    match e.pexp_desc with
    | Pexp_apply (f, _) -> ident_path f
    | Pexp_ident _ -> ident_path e
    | _ -> None
  in
  match head with
  | Some p -> List.exists (fun s -> ends_with2 p "List" s) sort_functions
  | None -> false

let is_list_or_array_init e =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident ("[]" | "::"); _ }, _) -> true
  | Pexp_array _ -> true
  | _ -> false

(* [fold_expr] is sanitized when its immediate parent hands the result to a
   sort: [… |> List.sort cmp], [List.sort cmp @@ …] or
   [List.sort cmp (Hashtbl.fold …)]. *)
let sorted_immediately parents fold_expr =
  match parents with
  | { pexp_desc = Pexp_apply (f, args); _ } :: _ -> (
    let arg_exprs = List.map snd args in
    match ident_path f with
    | Some [ "|>" ] -> (
      match arg_exprs with
      | [ lhs; rhs ] -> lhs == fold_expr && is_sort_head rhs
      | _ -> false)
    | Some [ "@@" ] -> (
      match arg_exprs with
      | [ lhs; rhs ] -> rhs == fold_expr && is_sort_head lhs
      | _ -> false)
    | Some p when List.exists (fun s -> ends_with2 p "List" s) sort_functions ->
      List.memq fold_expr arg_exprs
    | _ -> false)
  | _ -> false

let is_float_literal e =
  match e.pexp_desc with Pexp_constant (Pconst_float _) -> true | _ -> false

let rec pattern_has_catch_all p =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_or (a, b) -> pattern_has_catch_all a || pattern_has_catch_all b
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> pattern_has_catch_all p
  | _ -> false

let stdout_printers = [ "print_string"; "print_endline"; "print_newline"; "print_char";
                        "print_int"; "print_float"; "print_bytes" ]

let expr_findings (ctx : context) str =
  let acc = ref [] in
  let emit ?severity loc rule message =
    let line, col = line_col loc in
    let severity = match severity with Some s -> s | None -> r12_severity ctx.scope in
    acc :=
      { rule; file = ctx.file; line; col; severity; message; suppressed = None;
        baselined = false }
      :: !acc
  in
  let parents = ref [] in
  let check_expr e =
    (match e.pexp_desc with
    | Pexp_apply (f, args) -> (
      let arg_exprs = List.map snd args in
      match ident_path f with
      | Some p when ends_with2 p "Hashtbl" "fold" ->
        (match arg_exprs with
        | [ _; _; init ] when is_list_or_array_init init ->
          if not (sorted_immediately !parents e) then
            emit e.pexp_loc "unsorted-fold"
              "Hashtbl.fold builds a list in hash-traversal order; pipe it straight \
               into List.sort with a total comparator, or annotate why order cannot \
               matter"
        | _ -> ())
      | Some p when ends_with2 p "Hashtbl" "iter" ->
        emit ~severity:Warning e.pexp_loc "nondet-iter"
          "Hashtbl.iter visits entries in hash-traversal order; the effect must be \
           order-independent (sort the keys first, or annotate with the reason)"
      | Some p
        when List.exists
               (fun s -> ends_with2 p "List" s || ends_with2 p "Array" s)
               sort_functions
             || ends_with2 p "List" "merge" -> (
        match arg_exprs with
        | cmp :: _ when ident_path cmp = Some [ "compare" ] ->
          emit e.pexp_loc "poly-compare"
            "polymorphic compare as a sort comparator is slow and orders by \
             representation (NaN and cyclic values can even raise); use a typed \
             comparator (String.compare, Int.compare, a field comparator) or \
             annotate why structural order is intended"
        | _ -> ())
      | Some [ ("=" | "<>" | "==" | "!=") ] ->
        if List.exists is_float_literal arg_exprs then
          emit ~severity:Warning e.pexp_loc "float-eq"
            "float compared with =/<>; use Float.equal, compare against an epsilon, \
             or annotate if exact equality is intended"
      | _ -> ())
    | Pexp_ident { txt; _ } -> (
      match path_of txt with
      | ("Mutex" | "Condition") :: op :: _
        when ctx.scope <> Tools && ctx.file <> "lib/util/locks.ml" ->
        (* The one permitted home of raw primitives is the Locks wrapper
           itself; the linter's own sources only mention them in analysis
           tables, never as synchronization. *)
        emit ~severity:Error e.pexp_loc "raw-mutex"
          (Printf.sprintf
             "raw %s.%s bypasses the lock-rank discipline (no rank check, no \
              runtime witness); create the lock with Uxsm_util.Locks.create \
              ~name ~rank instead — see DESIGN.md §15"
             (List.hd (path_of txt)) op)
      | [ "Obj"; "magic" ] ->
        emit ~severity:Error e.pexp_loc "obj-magic" "Obj.magic defeats the type system"
      | "Random" :: next :: _ when next <> "State" && ctx.executor_reachable ->
        emit e.pexp_loc "domain-unsafe"
          (Printf.sprintf
             "Random.%s uses the global PRNG state, which is shared across domains \
              and makes runs irreproducible; thread a Random.State or Uxsm_util.Prng \
              value instead"
             next)
      | [ name ] when ctx.scope = Lib && List.mem name stdout_printers ->
        emit ~severity:Error e.pexp_loc "stdout-print"
          (Printf.sprintf
             "library code must not print to stdout (%s); return data or take a \
              Format formatter from the caller"
             name)
      | [ "Printf"; "printf" ] | [ "Format"; "printf" ] when ctx.scope = Lib ->
        emit ~severity:Error e.pexp_loc "stdout-print"
          "library code must not print to stdout; use eprintf or a caller-supplied \
           formatter"
      | _ -> ())
    | Pexp_try (_, cases) ->
      List.iter
        (fun c ->
          if c.pc_guard = None && pattern_has_catch_all c.pc_lhs then
            emit ~severity:Error c.pc_lhs.ppat_loc "catch-all"
              "catch-all exception handler also swallows Sys.Break and Out_of_memory; \
               list the exceptions this code can actually raise")
        cases
    | _ -> ())
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          check_expr e;
          parents := e :: !parents;
          Ast_iterator.default_iterator.expr self e;
          parents := List.tl !parents);
    }
  in
  it.structure it str;
  !acc

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)
(* ------------------------------------------------------------------ *)

let parse_impl ~file src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  Location.input_name := file;
  Parse.implementation lexbuf

let compare_findings a b =
  match compare (a.file, a.line, a.col) (b.file, b.line, b.col) with
  | 0 -> compare a.rule b.rule
  | c -> c

(* Findings with no annotations applied — the driver merges in the
   interprocedural lock findings before applying suppressions, so a
   lock-order allow annotation can cover a finding this module never
   produced. *)
let analyze_raw (ctx : context) src =
  let _, bad_anns = annotations_of_source src in
  let bad =
    List.map
      (fun line ->
        {
          rule = "bad-annotation";
          file = ctx.file;
          line;
          col = 0;
          severity = Warning;
          message =
            Printf.sprintf
              "malformed lint annotation; expected `(* %s <rule-id> — <reason> *)`"
              allow_marker;
          suppressed = None;
          baselined = false;
        })
      bad_anns
  in
  let findings =
    match parse_impl ~file:ctx.file src with
    | exception e ->
      [
        {
          rule = "parse-error";
          file = ctx.file;
          line = 1;
          col = 0;
          severity = Error;
          message = Printf.sprintf "cannot parse: %s" (Printexc.to_string e);
          suppressed = None;
          baselined = false;
        };
      ]
    | str ->
      let mutable_fields = mutable_fields_of_structure str in
      r1_findings ctx mutable_fields str @ expr_findings ctx str
  in
  List.sort compare_findings (findings @ bad)

let apply_suppressions anns findings =
  List.map
    (fun f -> { f with suppressed = suppression anns ~rule:f.rule ~line:f.line })
    findings

(* An annotation that matches no finding is itself a defect: it either
   outlived the code it justified or names the wrong rule, and it would
   silently swallow the next real finding on its line. Same for baseline
   entries. Matching runs against pre-suppression findings of the whole
   merged report, so driver-level rules count. *)
let stale_annotation_findings ~file anns findings =
  List.filter_map
    (fun a ->
      let matched =
        List.exists
          (fun f ->
            f.file = file && String.equal f.rule a.a_rule
            && (f.line = a.a_line || f.line = a.a_line + 1))
          findings
      in
      if matched then None
      else
        Some
          {
            rule = "stale-suppression";
            file;
            line = a.a_line;
            col = 0;
            severity = Error;
            message =
              Printf.sprintf
                "annotation `%s %s` suppresses nothing (no %s finding on this \
                 line or the next); delete it, or fix the rule id"
                allow_marker a.a_rule a.a_rule;
            suppressed = None;
            baselined = false;
          })
    anns

let stale_baseline_findings entries findings =
  List.filter_map
    (fun (rule, file, line) ->
      let matched =
        List.exists (fun f -> f.rule = rule && f.file = file && f.line = line) findings
      in
      if matched then None
      else
        Some
          {
            rule = "stale-suppression";
            file;
            line;
            col = 0;
            severity = Error;
            message =
              Printf.sprintf
                "baseline entry (%s, %s:%d) matches no finding; remove it from \
                 the baseline"
                rule file line;
            suppressed = None;
            baselined = false;
          })
    entries

let analyze (ctx : context) src =
  let anns, _ = annotations_of_source src in
  apply_suppressions anns (analyze_raw ctx src)

let mli_finding ~ml_file ~has_mli ~scope =
  if scope <> Lib || has_mli then None
  else
    Some
      {
        rule = "missing-mli";
        file = ml_file;
        line = 1;
        col = 0;
        severity = Error;
        message = "library module has no .mli; add one to pin the public surface";
        suppressed = None;
        baselined = false;
      }

let apply_baseline entries findings =
  List.map
    (fun f ->
      if List.exists (fun (r, file, line) -> r = f.rule && file = f.file && line = f.line)
           entries
      then { f with baselined = true }
      else f)
    findings

let baseline_of_json json =
  match Json.member "findings" json with
  | None -> Result.Error "baseline: missing \"findings\" field"
  | Some j -> (
    match Json.to_list j with
    | None -> Result.Error "baseline: \"findings\" is not a list"
    | Some items ->
      let decode item =
        match
          ( Option.bind (Json.member "rule" item) Json.to_string_opt,
            Option.bind (Json.member "file" item) Json.to_string_opt,
            Option.bind (Json.member "line" item) Json.to_int )
        with
        | Some r, Some f, Some l -> Ok (r, f, l)
        | _ -> Result.Error "baseline: entry needs string rule/file and int line"
      in
      List.fold_left
        (fun acc item ->
          match (acc, decode item) with
          | Result.Error e, _ | _, Result.Error e -> Result.Error e
          | Ok xs, Ok x -> Ok (x :: xs))
        (Ok []) items
      |> Result.map List.rev)

let is_active_error f = f.severity = Error && f.suppressed = None && not f.baselined
let is_active f = f.suppressed = None && not f.baselined
let exit_code findings = if List.exists is_active_error findings then 1 else 0

let to_json findings =
  let finding_json f =
    Json.Assoc
      ([
         ("rule", Json.String f.rule);
         ("file", Json.String f.file);
         ("line", Json.Int f.line);
         ("col", Json.Int f.col);
         ("severity", Json.String (severity_name f.severity));
         ("message", Json.String f.message);
       ]
      @ (match f.suppressed with
        | Some reason -> [ ("suppressed", Json.String reason) ]
        | None -> [])
      @ if f.baselined then [ ("baselined", Json.Bool true) ] else [])
  in
  let count p = List.length (List.filter p findings) in
  Json.Assoc
    [
      ("version", Json.Int 1);
      ("findings", Json.List (List.map finding_json findings));
      ( "summary",
        Json.Assoc
          [
            ("errors", Json.Int (count is_active_error));
            ( "warnings",
              Json.Int (count (fun f -> f.severity = Warning && is_active f)) );
            ("suppressed", Json.Int (count (fun f -> f.suppressed <> None)));
            ("baselined", Json.Int (count (fun f -> f.baselined)));
          ] );
    ]

let pp_report fmt findings =
  let active = List.filter is_active findings in
  List.iter
    (fun f ->
      Format.fprintf fmt "%s:%d:%d: %s [%s] %s@." f.file f.line f.col
        (severity_name f.severity) f.rule f.message)
    active;
  let n_err = List.length (List.filter is_active_error findings) in
  let n_warn = List.length (List.filter (fun f -> f.severity = Warning) active) in
  let n_sup = List.length (List.filter (fun f -> f.suppressed <> None) findings) in
  let n_base = List.length (List.filter (fun f -> f.baselined) findings) in
  if active = [] then
    Format.fprintf fmt "lint: clean (%d suppressed by annotation, %d baselined)@."
      n_sup n_base
  else
    Format.fprintf fmt "lint: %d error%s, %d warning%s (%d suppressed, %d baselined)@."
      n_err (if n_err = 1 then "" else "s")
      n_warn (if n_warn = 1 then "" else "s")
      n_sup n_base
