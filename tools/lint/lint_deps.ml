let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let rec walk_dir acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
    Array.fold_left
      (fun acc entry ->
        if entry = "" || entry.[0] = '.' || entry.[0] = '_' then acc
        else
          let path = Filename.concat dir entry in
          if Sys.is_directory path then walk_dir acc path
          else if Filename.check_suffix entry ".ml" then path :: acc
          else acc)
      acc entries

let ml_files ~dirs = List.sort String.compare (List.fold_left walk_dir [] dirs)

(* Wrapper module name of the dune library living in [dir], if any:
   [(library (name uxsm_util) …)] gives ["Uxsm_util"]. A crude token scan
   is enough for this repo's short stanzas. *)
let library_wrapper dir =
  let dune = Filename.concat dir "dune" in
  if not (Sys.file_exists dune) then None
  else
    let src = read_file dune in
    let contains_at needle i =
      i + String.length needle <= String.length src
      && String.sub src i (String.length needle) = needle
    in
    let rec contains needle i =
      contains_at needle i
      || (i + String.length needle <= String.length src && contains needle (i + 1))
    in
    if not (contains "(library" 0) then None
    else
      let rec find_name i =
        if i + 5 > String.length src then None
        else if contains_at "(name" i then begin
          let j = ref (i + 5) in
          while
            !j < String.length src && (src.[!j] = ' ' || src.[!j] = '\n' || src.[!j] = '\t')
          do
            incr j
          done;
          let k = ref !j in
          while
            !k < String.length src
            &&
            match src.[!k] with
            | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
            | _ -> false
          do
            incr k
          done;
          if !k > !j then Some (String.sub src !j (!k - !j)) else None
        end
        else find_name (i + 1)
      in
      Option.map String.capitalize_ascii (find_name 0)

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> flatten_lid p @ [ s ]
  | Longident.Lapply (a, b) -> flatten_lid a @ flatten_lid b

(* Every module path mentioned in a structure, as string lists. *)
let module_paths_of_structure str =
  let open Parsetree in
  let acc = ref [] in
  let push lid = acc := flatten_lid lid :: !acc in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ }
          | Pexp_construct ({ txt; _ }, _)
          | Pexp_field (_, { txt; _ })
          | Pexp_setfield (_, { txt; _ }, _)
          | Pexp_new { txt; _ } ->
            push txt
          | Pexp_record (fields, _) ->
            List.iter (fun ({ Location.txt; _ }, _) -> push txt) fields
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
      typ =
        (fun self t ->
          (match t.ptyp_desc with
          | Ptyp_constr ({ txt; _ }, _) | Ptyp_class ({ txt; _ }, _) -> push txt
          | _ -> ());
          Ast_iterator.default_iterator.typ self t);
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_construct ({ txt; _ }, _) -> push txt
          | Ppat_record (fields, _) ->
            List.iter (fun ({ Location.txt; _ }, _) -> push txt) fields
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
      module_expr =
        (fun self me ->
          (match me.pmod_desc with Pmod_ident { txt; _ } -> push txt | _ -> ());
          Ast_iterator.default_iterator.module_expr self me);
      module_type =
        (fun self mt ->
          (match mt.pmty_desc with
          | Pmty_ident { txt; _ } | Pmty_alias { txt; _ } -> push txt
          | _ -> ());
          Ast_iterator.default_iterator.module_type self mt);
    }
  in
  it.structure it str;
  !acc

module SS = Set.Make (String)

let parse_structure ~file src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  Location.input_name := file;
  match Parse.implementation lexbuf with
  | str -> Some str
  | exception _ -> None

let executor_reachable ~files =
  let file_set = SS.of_list files in
  (* directory -> wrapper; wrapper -> files of that library *)
  let wrapper_of_dir = Hashtbl.create 16 in
  let files_of_wrapper = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let dir = Filename.dirname f in
      let w =
        match Hashtbl.find_opt wrapper_of_dir dir with
        | Some w -> w
        | None ->
          let w = library_wrapper dir in
          Hashtbl.add wrapper_of_dir dir w;
          w
      in
      match w with
      | Some w ->
        let prev = try Hashtbl.find files_of_wrapper w with Not_found -> [] in
        Hashtbl.replace files_of_wrapper w (f :: prev)
      | None -> ())
    files;
  let file_of_module_in_dir dir m =
    let candidate = Filename.concat dir (String.uncapitalize_ascii m ^ ".ml") in
    if SS.mem candidate file_set then Some candidate else None
  in
  let deps_of f =
    match parse_structure ~file:f (read_file f) with
    | None -> None (* unparseable: conservatively reachable *)
    | Some str ->
      let dir = Filename.dirname f in
      let deps = ref SS.empty in
      let resolve_segments path =
        let rec go = function
          | [] -> ()
          | seg :: rest ->
            (match Hashtbl.find_opt files_of_wrapper seg with
            | Some lib_files -> (
              let lib_dir = Filename.dirname (List.hd lib_files) in
              match rest with
              | sub :: _ when sub <> "" && sub.[0] >= 'A' && sub.[0] <= 'Z' -> (
                match file_of_module_in_dir lib_dir sub with
                | Some dep -> deps := SS.add dep !deps
                | None -> List.iter (fun d -> deps := SS.add d !deps) lib_files)
              | _ -> List.iter (fun d -> deps := SS.add d !deps) lib_files)
            | None -> (
              match file_of_module_in_dir dir seg with
              | Some dep when dep <> f -> deps := SS.add dep !deps
              | _ -> ()));
            go rest
        in
        go path
      in
      List.iter resolve_segments (module_paths_of_structure str);
      Some !deps
  in
  let dep_table = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace dep_table f (deps_of f)) files;
  let exec_files =
    match Hashtbl.find_opt files_of_wrapper "Uxsm_exec" with Some fs -> fs | None -> []
  in
  let exec_set = SS.of_list exec_files in
  let unparseable f = Hashtbl.find_opt dep_table f = Some None in
  let seeds =
    List.filter
      (fun f ->
        SS.mem f exec_set
        || unparseable f
        ||
        match Hashtbl.find dep_table f with
        | Some deps -> not (SS.is_empty (SS.inter deps exec_set))
        | None -> false)
      files
  in
  let reachable = ref (SS.of_list seeds) in
  let rec grow = function
    | [] -> ()
    | f :: rest ->
      let next =
        match Hashtbl.find_opt dep_table f with
        | Some (Some deps) -> SS.elements (SS.diff deps !reachable)
        | _ -> []
      in
      reachable := SS.union !reachable (SS.of_list next);
      grow (next @ rest)
  in
  grow seeds;
  fun f -> SS.mem f !reachable || unparseable f
