(** Core of [uxsm-lint]: a compiler-libs static analysis over this repo's
    sources that enforces the domain-safety and determinism invariants the
    parallel executor (and the Domains ≡ Sequential differential suites)
    rely on, plus a few hygiene rules.

    Rules (ids are what annotations and the baseline refer to):

    - R1 [domain-unsafe] — top-level mutable state ([ref], [Hashtbl.create],
      [Buffer.create], mutable-record literals, arrays, global [Random]) in
      a module reachable from the executor fan-out call graph. Exempt when
      the state is created through [Atomic], [Domain.DLS] or [Mutex], or
      when the site carries an allow annotation.
    - R2 [unsorted-fold] — [Hashtbl.fold] that builds a list/array (its
      accumulator seed is a list or array literal) without being
      immediately piped into a [List.sort]-family call: the result order is
      hash-traversal order.
    - R2 [nondet-iter] — any [Hashtbl.iter]: entries are visited in
      hash-traversal order, so the effect must be order-independent.
    - R2 [float-eq] — [=] / [<>] / [==] / [!=] against a float literal.
    - R3 [catch-all] — [try … with _ ->] (unguarded wildcard handler),
      which swallows [Sys.Break] and [Out_of_memory].
    - R3 [obj-magic] — any use of [Obj.magic].
    - R3 [stdout-print] — [print_*] / [Printf.printf] / [Format.printf]
      inside [lib/].
    - R3 [missing-mli] — a [lib/] module without an interface file.
    - R4 [raw-mutex] — any direct [Mutex.*] / [Condition.*] reference
      outside the [Uxsm_util.Locks] implementation and [tools/]: raw
      primitives carry no rank and escape the runtime lock witness.
    - [stale-suppression] — an allow annotation or baseline entry that
      suppresses nothing (driver-level; see {!stale_annotation_findings}).
    - [bad-annotation] — a [lint: allow] comment that does not parse.
    - [parse-error] — a source file compiler-libs cannot parse.

    The interprocedural [lock-order] and [blocking-under-lock] rules live
    in {!Lint_locks}; the driver merges their findings with this module's
    before applying suppressions.

    Annotation grammar (one comment, same line as the offending site or the
    line directly above it):

    {v (* lint: allow <rule-id> — <reason> *) v}

    The separator may be an em dash, ["--"], ["-"] or [":"]; the reason is
    mandatory. An annotation suppresses matching findings on its own line
    and the next one. *)

type severity =
  | Error  (** fails the build (non-zero exit) unless suppressed/baselined *)
  | Warning  (** reported, never fails the build *)

type scope = Lib | Bin | Bench | Tools | Test | Other

val scope_of_path : string -> scope
(** From a root-relative path: [lib/…] is [Lib], [bin/…] is [Bin],
    [bench/…] is [Bench], [tools/…] is [Tools], [test/…] is [Test],
    anything else [Other]. Severities depend on it: R1/R2 findings are
    errors in [Lib] and warnings elsewhere (driver executables
    legitimately keep CLI state in top-level refs). *)

type context = {
  file : string;  (** path findings are reported under *)
  scope : scope;
  executor_reachable : bool;
      (** whether R1 applies: the module is reachable from an
          [Uxsm_exec.Executor] fan-out closure (see {!Lint_deps}) *)
}

type finding = {
  rule : string;
  file : string;
  line : int;
  col : int;
  severity : severity;
  message : string;
  suppressed : string option;
      (** [Some reason] when an in-source annotation justifies the site *)
  baselined : bool;  (** grandfathered by the checked-in baseline *)
}

val analyze : context -> string -> finding list
(** Parse one module's source text and run every syntactic rule, returning
    findings sorted by position with annotations already applied. A file
    that fails to parse yields a single [parse-error] finding. *)

type annotation = { a_line : int; a_rule : string; a_reason : string }

val annotations_of_source : string -> annotation list * int list
(** Well-formed allow annotations of one source text, plus the line
    numbers of malformed ones. *)

val analyze_raw : context -> string -> finding list
(** {!analyze} without suppressions applied: what the driver merges with
    the interprocedural findings before calling
    {!apply_suppressions}. *)

val apply_suppressions : annotation list -> finding list -> finding list
(** Mark findings covered by an annotation (same rule, annotation on the
    finding's line or the line above) as {!finding.suppressed}. *)

val stale_annotation_findings :
  file:string -> annotation list -> finding list -> finding list
(** One [stale-suppression] error per annotation of [file] matching no
    finding in the (pre-suppression, merged) list. *)

val stale_baseline_findings :
  (string * string * int) list -> finding list -> finding list
(** One [stale-suppression] error per baseline entry matching no
    finding. *)

val mli_finding : ml_file:string -> has_mli:bool -> scope:scope -> finding option
(** The [missing-mli] rule; [None] outside [Lib] or when the interface
    exists. *)

val apply_baseline : (string * string * int) list -> finding list -> finding list
(** Mark findings matching a [(rule, file, line)] baseline entry as
    {!finding.baselined}. *)

val baseline_of_json :
  Uxsm_util.Json.t -> ((string * string * int) list, string) result
(** Decode [{"findings": [{"rule": …, "file": …, "line": …}, …]}]. *)

val is_active_error : finding -> bool
(** An [Error] finding that is neither suppressed nor baselined. *)

val exit_code : finding list -> int
(** [1] when any active error remains, else [0]. *)

val severity_name : severity -> string

val to_json : finding list -> Uxsm_util.Json.t
(** Machine-readable report: every finding (suppressed and baselined ones
    flagged as such) plus a summary object. *)

val pp_report : Format.formatter -> finding list -> unit
(** Human report: one [file:line:col: severity [rule] message] line per
    active finding, then a summary counting suppressions and baselined
    entries. *)
