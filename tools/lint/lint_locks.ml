(* Interprocedural lock analysis: the static half of the Uxsm_util.Locks
   discipline (the runtime witness is the other half; DESIGN.md §15).

   The analysis builds a value-level call graph over every analyzed file —
   dune-wrapper aware, so [Uxsm_exec.Executor.map_list], a same-library
   [Catalog.register] and a same-file call all resolve to their defining
   binding — then propagates *held-lock sets* along it to a fixed point:

   - Walking each top-level binding in evaluation order tracks the locks
     held locally through [Locks.lock]/[unlock]/[try_lock]/[with_lock],
     including the [Fun.protect ~finally:unlock] idiom and the
     [if Locks.try_lock l then … else …] contended-submitter shape (the
     then-branch holds [l], the else-branch does not).
   - Every internal call contributes the caller's entry set plus the
     locally-held set to the callee's entry set.
   - Lambdas passed to internal callees become sub-nodes that additionally
     inherit what the callee holds around that parameter's invocations (a
     one-level higher-order summary: it is what makes
     [Catalog.with_shard t name (fun sh -> …)] put the shard lock into the
     callback's entry set without leaking one call site's context into
     another's callback).
   - Lambdas passed to unknown external functions ([List.iter], [Obs.time],
     [Fun.protect]) are assumed invoked in place, under the current held
     set; lambdas passed to [Domain.spawn]/[Thread.create] start a fresh
     thread and are walked with an empty held set.

   On the propagated sets three things are checked:

   - [lock-order]: a blocking acquisition of rank r while any lock of rank
     >= r may be held — the runtime witness's check, applied to every path
     of the call graph instead of only executed ones. [try_lock] is exempt
     (a non-blocking acquire cannot be the blocking edge of a deadlock
     cycle) but its success still extends the held set.
   - a [Locks.wait] whose lock is not held, or is not the highest-ranked
     (= innermost legal) held lock.
   - [blocking-under-lock]: a call reachable with any lock held into the
     blocking blocklist — [Unix.read/write/select/connect/accept/…],
     [Thread.join]/[Domain.join], raw [Condition.wait] — or into an
     [Executor.map_*] fan-out, which parks on worker mailboxes and runs
     arbitrarily long jobs while the lock stays held.

   Soundness posture: held sets are over-approximate (branch exits union,
   assumed-invoked closures), so a rule can report a path that never
   executes — such sites carry a reasoned allow annotation. Local
   helper functions defined before a lock region but invoked inside it are
   the known under-approximation; the runtime witness covers that gap. *)

open Parsetree

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ------------------------------ lock keys --------------------------- *)

(* A lock is identified by the name it is reached through: a (top-level or
   local) value binding, or a record field. That is coarser than object
   identity — all catalog shards share [KField "sh_lock"] — but every lock
   of one name carries one rank, which is all the order check compares. *)
type key =
  | KVar of string
  | KField of string

let key_name = function
  | KVar s -> s
  | KField s -> "." ^ s

(* (key, acquisition line), innermost first, no duplicate keys. *)
type held = (key * int) list

let held_add h k line = if List.mem_assoc k h then h else (k, line) :: h
let held_remove h k = List.filter (fun (k', _) -> k' <> k) h
let union_held a b = List.fold_left (fun acc (k, l) -> held_add acc k l) a b

(* ------------------------------- nodes ------------------------------ *)

type event =
  | Acquire of key * int * int * held  (* blocking acquire: line, col, local held *)
  | Wait of key * int * int * held
  | Block of string * int * int * held  (* blocking primitive / fan-out *)

type node = {
  nd_file : string;
  nd_name : string;
  nd_params : (string option * string) list;  (* (label, var) in order *)
  mutable nd_events : event list;
  mutable nd_calls : call list;
  mutable nd_pinvokes : (string * held) list;  (* param invoked under local held *)
  mutable nd_entry : (key * string) list;  (* may-be-held on entry, with provenance *)
}

and call = {
  c_target : node;
  c_held : held;
  c_subs : (string * node) list;  (* callee param name -> lambda sub-node *)
}

(* --------------------------- per-run context ------------------------ *)

type rank_info =
  | Rank of int
  | Ambiguous  (* one name registered with two different ranks *)

type env = {
  structures : (string, structure) Hashtbl.t;
  aliases : (string, (string, string list) Hashtbl.t) Hashtbl.t;
  locks_aliases : (string * string, string) Hashtbl.t;  (* (file, var) -> Locks fn *)
  nodes : (string * string, node) Hashtbl.t;  (* (file, name) -> node *)
  all_nodes : node Queue.t;
  rank_consts : (string, int) Hashtbl.t;  (* rank_pool -> 10, from locks.ml *)
  var_ranks : (string, rank_info) Hashtbl.t;
  field_ranks : (string, rank_info) Hashtbl.t;
  wrapper_dirs : (string, string) Hashtbl.t;  (* "Uxsm_exec" -> "lib/exec" *)
  file_set : (string, unit) Hashtbl.t;
  mutable findings : Lint_core.finding list;
}

let rank_of env = function
  | KVar v -> (
    match Hashtbl.find_opt env.var_ranks v with Some (Rank r) -> Some r | _ -> None)
  | KField f -> (
    match Hashtbl.find_opt env.field_ranks f with Some (Rank r) -> Some r | _ -> None)

let line_col (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> flatten_lid p @ [ s ]
  | Longident.Lapply (a, b) -> flatten_lid a @ flatten_lid b

let path_of lid =
  match flatten_lid lid with "Stdlib" :: rest -> rest | p -> p

let rec strip e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> strip e
  | _ -> e

let ident_path e =
  match (strip e).pexp_desc with Pexp_ident { txt; _ } -> Some (path_of txt) | _ -> None

let unit_expr =
  {
    pexp_desc =
      Pexp_construct ({ txt = Longident.Lident "()"; loc = Location.none }, None);
    pexp_loc = Location.none;
    pexp_loc_stack = [];
    pexp_attributes = [];
  }

(* ----------------------- pass A: files and facts -------------------- *)

let parse_structure ~file src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf file;
  Location.input_name := file;
  match Parse.implementation lexbuf with
  | str -> Some str
  | exception _ -> None

let is_locks_path env file p =
  (* [Locks.fn] / [Uxsm_util.Locks.fn] / a same-file alias binding. *)
  match p with
  | [ v ] -> Hashtbl.find_opt env.locks_aliases (file, v)
  | _ -> (
    match List.rev p with
    | fn :: "Locks" :: _ -> Some fn
    | _ -> None)

let register_rank tbl name info =
  match (Hashtbl.find_opt tbl name, info) with
  | None, _ -> Hashtbl.replace tbl name info
  | Some (Rank a), Rank b when a = b -> ()
  | Some _, _ -> Hashtbl.replace tbl name Ambiguous

(* The ~rank argument of a [Locks.create] call: an int literal or a
   [rank_*] constant from locks.ml. *)
let rank_of_expr env e =
  match (strip e).pexp_desc with
  | Pexp_constant (Pconst_integer (s, _)) -> (
    match int_of_string_opt s with Some n -> Rank n | None -> Ambiguous)
  | _ -> (
    match ident_path e with
    | Some p -> (
      match List.rev p with
      | c :: _ -> (
        match Hashtbl.find_opt env.rank_consts c with
        | Some n -> Rank n
        | None -> Ambiguous)
      | [] -> Ambiguous)
    | None -> Ambiguous)

let locks_create_rank env e =
  match (strip e).pexp_desc with
  | Pexp_apply (f, args) -> (
    match ident_path f with
    | Some p
      when (match List.rev p with "create" :: "Locks" :: _ -> true | _ -> false) -> (
      match List.assoc_opt (Asttypes.Labelled "rank") args with
      | Some r -> Some (rank_of_expr env r)
      | None -> Some Ambiguous)
    | _ -> None)
  | _ -> None

(* Lock definitions: [let v = Locks.create …] (at any nesting) and
   [{ field = Locks.create …; … }] record fields. *)
let collect_lock_defs env str =
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          (match (vb.pvb_pat.ppat_desc, locks_create_rank env vb.pvb_expr) with
          | Ppat_var { txt; _ }, Some info -> register_rank env.var_ranks txt info
          | _ -> ());
          Ast_iterator.default_iterator.value_binding self vb);
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_record (fields, _) ->
            List.iter
              (fun ({ Location.txt; _ }, value) ->
                match (List.rev (flatten_lid txt), locks_create_rank env value) with
                | name :: _, Some info -> register_rank env.field_ranks name info
                | _ -> ())
              fields
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str

let collect_rank_consts env str =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match (vb.pvb_pat.ppat_desc, (strip vb.pvb_expr).pexp_desc) with
            | Ppat_var { txt; _ }, Pexp_constant (Pconst_integer (s, _))
              when String.starts_with ~prefix:"rank_" txt -> (
              match int_of_string_opt s with
              | Some n -> Hashtbl.replace env.rank_consts txt n
              | None -> ())
            | _ -> ())
          vbs
      | _ -> ())
    str

let collect_aliases str =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_module { pmb_name = { txt = Some m; _ }; pmb_expr; _ } -> (
        match pmb_expr.pmod_desc with
        | Pmod_ident { txt; _ } -> Hashtbl.replace tbl m (flatten_lid txt)
        | _ -> ())
      | _ -> ())
    str;
  tbl

let params_of_expr e =
  let rec go acc e =
    match (strip e).pexp_desc with
    | Pexp_fun (lbl, _, pat, body) ->
      let name =
        match pat.ppat_desc with Ppat_var { txt; _ } -> txt | _ -> "_"
      in
      let lbl =
        match lbl with
        | Asttypes.Nolabel -> None
        | Asttypes.Labelled s | Asttypes.Optional s -> Some s
      in
      go ((lbl, name) :: acc) body
    | Pexp_newtype (_, body) -> go acc body
    | _ -> List.rev acc
  in
  go [] e

let fresh_node env ~file ~name ~params =
  let nd =
    {
      nd_file = file;
      nd_name = name;
      nd_params = params;
      nd_events = [];
      nd_calls = [];
      nd_pinvokes = [];
      nd_entry = [];
    }
  in
  Queue.add nd env.all_nodes;
  nd

(* Top-level bindings, flattened through plain nested modules; the node
   name is the binding name (last registration wins on shadowing, as in
   scope). A binding that merely aliases a Locks function
   ([let with_lock = Locks.with_lock]) is recorded as an alias, so calls
   through it get the special-form treatment. *)
let collect_nodes env file str =
  let rec scan_structure s = List.iter scan_item s
  and scan_item item =
    match item.pstr_desc with
    | Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ } -> (
            match ident_path vb.pvb_expr with
            | Some p
              when (match List.rev p with _ :: "Locks" :: _ -> true | _ -> false)
              ->
              Hashtbl.replace env.locks_aliases (file, txt) (List.hd (List.rev p))
            | _ ->
              let nd =
                fresh_node env ~file ~name:txt ~params:(params_of_expr vb.pvb_expr)
              in
              Hashtbl.replace env.nodes (file, txt) nd)
          | _ -> ())
        vbs
    | Pstr_module mb -> scan_module_expr mb.pmb_expr
    | Pstr_recmodule mbs -> List.iter (fun mb -> scan_module_expr mb.pmb_expr) mbs
    | Pstr_include i -> scan_module_expr i.pincl_mod
    | _ -> ()
  and scan_module_expr me =
    match me.pmod_desc with
    | Pmod_structure s -> scan_structure s
    | Pmod_constraint (me, _) -> scan_module_expr me
    | _ -> ()
  in
  scan_structure str

(* --------------------------- path resolution ------------------------ *)

let expand_alias env file p =
  match p with
  | head :: rest -> (
    match Hashtbl.find_opt env.aliases file with
    | Some tbl -> (
      match Hashtbl.find_opt tbl head with
      | Some target -> target @ rest
      | None -> p)
    | None -> p)
  | [] -> p

(* Resolve a value path to its defining node: same-file [name], same-dir
   [Module.name] (intra-library references under a dune wrapper), or
   cross-library [Wrapper.Module.name]. *)
let resolve_node env ~file p =
  let find_in_file f name =
    if Hashtbl.mem env.file_set f then Hashtbl.find_opt env.nodes (f, name) else None
  in
  match p with
  | [ name ] -> find_in_file file name
  | [ m; name ] ->
    let dir = Filename.dirname file in
    find_in_file (Filename.concat dir (String.uncapitalize_ascii m ^ ".ml")) name
  | [ w; m; name ] -> (
    match Hashtbl.find_opt env.wrapper_dirs w with
    | Some dir ->
      find_in_file (Filename.concat dir (String.uncapitalize_ascii m ^ ".ml")) name
    | None -> None)
  | _ -> None

let is_executor_fanout nd =
  Filename.basename nd.nd_file = "executor.ml"
  && (match nd.nd_name with
     | "map_array" | "map_list" | "map_reduce" -> true
     | _ -> false)

(* Calls that can block the calling thread for an unbounded time. *)
let blocklisted p =
  match p with
  | [ "Unix"; f ] ->
    List.mem f
      [ "read"; "write"; "write_substring"; "single_write"; "select"; "connect";
        "accept"; "recv"; "send"; "sleep"; "sleepf"; "waitpid" ]
  | [ "Thread"; ("join" | "delay") ] -> true
  | [ "Domain"; "join" ] -> true
  | [ "Condition"; "wait" ] -> true
  | _ -> false

let fanout_path p =
  match List.rev p with
  | ("map_array" | "map_list" | "map_reduce") :: "Executor" :: _ ->
    Some (List.hd (List.rev p))
  | _ -> None

(* Entry points whose callback does NOT run here: a fresh thread, or the
   process-exit hook. Both start with an empty held stack, whatever the
   registering caller holds. *)
let is_thread_entry p =
  match p with
  | [ "Domain"; "spawn" ] | [ "Thread"; "create" ] | [ "at_exit" ] -> true
  | _ -> false

(* ------------------------ pass B: the walker ------------------------ *)

type wstate = {
  env : env;
  node : node;  (* events accumulate here *)
  mutable held : held;
  sub_count : int ref;  (* per-file lambda sub-node counter *)
}

let key_of_lock_expr e =
  match (strip e).pexp_desc with
  | Pexp_ident { txt; _ } -> (
    match List.rev (path_of txt) with v :: _ -> Some (KVar v) | [] -> None)
  | Pexp_field (_, { txt; _ }) -> (
    match List.rev (flatten_lid txt) with f :: _ -> Some (KField f) | [] -> None)
  | _ -> None

(* Flatten [f @@ x] and [x |> f] into direct application, merging the
   argument lists of curried heads: [Locks.with_lock l @@ fun () -> …]. *)
let rec normalize_apply f args =
  match ident_path f with
  | Some [ "@@" ] -> (
    match args with
    | [ (_, lhs); (_, rhs) ] -> (
      match (strip lhs).pexp_desc with
      | Pexp_apply (f', args') -> normalize_apply f' (args' @ [ (Asttypes.Nolabel, rhs) ])
      | _ -> (lhs, [ (Asttypes.Nolabel, rhs) ]))
    | _ -> (f, args))
  | Some [ "|>" ] -> (
    match args with
    | [ (_, lhs); (_, rhs) ] -> (
      match (strip rhs).pexp_desc with
      | Pexp_apply (f', args') -> normalize_apply f' (args' @ [ (Asttypes.Nolabel, lhs) ])
      | _ -> (rhs, [ (Asttypes.Nolabel, lhs) ]))
    | _ -> (f, args))
  | _ -> (f, args)

let unlabelled args =
  List.filter_map
    (fun (l, e) -> match l with Asttypes.Nolabel -> Some e | _ -> None)
    args

let is_lambda e =
  match (strip e).pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | _ -> false

(* Match call-site arguments to callee parameters: labelled by name,
   unlabelled positionally. Returns (param name, argument) pairs. *)
let match_args params args =
  let pos = ref (List.filter_map (fun (l, n) -> if l = None then Some n else None) params) in
  List.filter_map
    (fun (lbl, e) ->
      match lbl with
      | Asttypes.Labelled l | Asttypes.Optional l ->
        if List.exists (fun (pl, _) -> pl = Some l) params then Some (l, e) else None
      | Asttypes.Nolabel -> (
        match !pos with
        | p :: rest ->
          pos := rest;
          Some (p, e)
        | [] -> None))
    args

(* Keys unlocked anywhere inside a [~finally] closure. *)
let unlocks_in env file e =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (f, args) -> (
            match ident_path f with
            | Some p when is_locks_path env file p = Some "unlock" -> (
              match unlabelled args with
              | lk :: _ -> (
                match key_of_lock_expr lk with
                | Some k -> acc := k :: !acc
                | None -> ())
              | [] -> ())
            | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e;
  !acc

let rec walk st e =
  match e.pexp_desc with
  | Pexp_apply (f, args) ->
    let f, args = normalize_apply f args in
    handle_apply st f args e.pexp_loc
  | Pexp_ident { txt; _ } -> ident_occurrence st (path_of txt) e.pexp_loc
  | Pexp_fun (_, default, _, body) ->
    Option.iter (walk st) default;
    walk_confined st body
  | Pexp_function cases -> List.iter (walk_case st) cases
  | Pexp_newtype (_, body) -> walk_confined st body
  | Pexp_ifthenelse (cond, then_, else_) -> (
    (* [if Locks.try_lock l then A else B]: A holds [l], B does not. *)
    match try_lock_cond st cond with
    | Some (k, line, negated) ->
      let base = st.held in
      let with_l = if negated then Option.value else_ ~default:unit_expr else then_ in
      let without_l = if negated then then_ else Option.value else_ ~default:unit_expr in
      st.held <- held_add base k line;
      walk st with_l;
      let h1 = st.held in
      st.held <- base;
      walk st without_l;
      st.held <- union_held h1 st.held
    | None ->
      walk st cond;
      let base = st.held in
      walk st then_;
      let h1 = st.held in
      st.held <- base;
      Option.iter (walk st) else_;
      st.held <- union_held h1 st.held)
  | Pexp_match (scrut, cases) ->
    walk st scrut;
    walk_cases st cases
  | Pexp_try (body, cases) ->
    let before = st.held in
    walk st body;
    (* Handlers can be entered from any point of the body. *)
    st.held <- union_held before st.held;
    walk_cases st cases
  | Pexp_while (cond, body) ->
    walk st cond;
    let base = st.held in
    walk st body;
    st.held <- union_held base st.held
  | _ -> walk_children st e

(* A stored closure or function body: walk under the current held set, but
   confine its net lock effect. *)
and walk_confined st e =
  let base = st.held in
  walk st e;
  st.held <- base

and walk_case st c =
  Option.iter (walk st) c.pc_guard;
  walk_confined st c.pc_rhs

and walk_cases st cases =
  let base = st.held in
  let exits =
    List.map
      (fun c ->
        st.held <- base;
        Option.iter (walk st) c.pc_guard;
        walk st c.pc_rhs;
        st.held)
      cases
  in
  st.held <- List.fold_left union_held base exits

and try_lock_cond st cond =
  let direct e =
    match (strip e).pexp_desc with
    | Pexp_apply (f, args) -> (
      match ident_path f with
      | Some p when is_locks_path st.env st.node.nd_file p = Some "try_lock" -> (
        match unlabelled args with
        | lk :: _ -> (
          match key_of_lock_expr lk with
          | Some k -> Some (k, fst (line_col e.pexp_loc))
          | None -> None)
        | [] -> None)
      | _ -> None)
    | _ -> None
  in
  match direct cond with
  | Some (k, l) -> Some (k, l, false)
  | None -> (
    match (strip cond).pexp_desc with
    | Pexp_apply (f, [ (_, inner) ]) when ident_path f = Some [ "not" ] -> (
      match direct inner with
      | Some (k, l) -> Some (k, l, true)
      | None -> None)
    | _ -> None)

and walk_children st e =
  let it = { Ast_iterator.default_iterator with expr = (fun _ c -> walk st c) } in
  Ast_iterator.default_iterator.expr it e

and emit st ev = st.node.nd_events <- ev :: st.node.nd_events

and record_call st target subs =
  st.node.nd_calls <-
    { c_target = target; c_held = st.held; c_subs = subs } :: st.node.nd_calls

(* An identifier outside call position: a blocklisted primitive passed as
   a value, or an internal function passed as a callback — assumed invoked
   under the current held set. *)
and ident_occurrence st p loc =
  let line, col = line_col loc in
  let expanded = expand_alias st.env st.node.nd_file p in
  if blocklisted p || blocklisted expanded then
    emit st (Block (String.concat "." expanded, line, col, st.held))
  else
    match resolve_node st.env ~file:st.node.nd_file expanded with
    | Some target when target != st.node -> record_call st target []
    | _ -> (
      match p with
      | [ v ] when List.exists (fun (_, n) -> n = v) st.node.nd_params ->
        st.node.nd_pinvokes <- (v, st.held) :: st.node.nd_pinvokes
      | _ -> ())

(* Walk a callback that runs in place: its body under the current held set
   plus [extra]; net lock effects stay confined. *)
and walk_callback st ?(extra = []) e =
  let base = st.held in
  st.held <- List.fold_left (fun h (k, l) -> held_add h k l) st.held extra;
  (match (strip e).pexp_desc with
  | Pexp_fun (_, _, _, body) -> walk st body
  | Pexp_newtype (_, body) -> walk st body
  | Pexp_function cases ->
    List.iter
      (fun c ->
        Option.iter (walk st) c.pc_guard;
        walk st c.pc_rhs)
      cases
  | _ -> walk st e);
  st.held <- base

(* A function-position argument that is not a literal lambda: a parameter
   (record the invocation), an internal function (record the call edge),
   or an arbitrary expression (walk it). *)
and apply_function_value st ?(extra = []) e =
  let held = List.fold_left (fun h (k, l) -> held_add h k l) st.held extra in
  match ident_path e with
  | Some [ v ] when List.exists (fun (_, n) -> n = v) st.node.nd_params ->
    st.node.nd_pinvokes <- (v, held) :: st.node.nd_pinvokes
  | Some p -> (
    let p = expand_alias st.env st.node.nd_file p in
    match resolve_node st.env ~file:st.node.nd_file p with
    | Some target ->
      st.node.nd_calls <-
        { c_target = target; c_held = held; c_subs = [] } :: st.node.nd_calls
    | None -> ())
  | None -> walk_confined st e

and handle_apply st f args loc =
  let line, col = line_col loc in
  match ident_path f with
  | None ->
    (* Immediately-applied lambda or computed function. *)
    List.iter (fun (_, a) -> walk st a) args;
    walk_confined st f
  | Some raw_path -> (
    let file = st.node.nd_file in
    let locks_fn =
      match is_locks_path st.env file raw_path with
      | Some fn -> Some fn
      | None -> is_locks_path st.env file (expand_alias st.env file raw_path)
    in
    match locks_fn with
    | Some fn -> handle_locks st fn args line col
    | None -> (
      let p = expand_alias st.env file raw_path in
      match List.rev p with
      | "protect" :: "Fun" :: _ -> handle_fun_protect st args
      | _ -> (
        let target = resolve_node st.env ~file p in
        (* Fan-out and blocklist events fire at the call site — except the
           executor's own internal plumbing (map_list delegating to
           map_array), which would double-report every external site. *)
        let internal_plumbing = Filename.basename file = "executor.ml" in
        (match target with
        | Some nd when is_executor_fanout nd && not internal_plumbing ->
          emit st
            (Block (Printf.sprintf "Executor.%s fan-out" nd.nd_name, line, col, st.held))
        | Some _ -> ()
        | None -> (
          match fanout_path p with
          | Some m when not internal_plumbing ->
            emit st (Block (Printf.sprintf "Executor.%s fan-out" m, line, col, st.held))
          | _ -> ()));
        if blocklisted p then
          emit st (Block (String.concat "." p, line, col, st.held));
        match target with
        | Some nd ->
          (* Lambda arguments matched to callee params become sub-nodes;
             everything else is walked generically. *)
          let matched = match_args nd.nd_params args in
          let subs = ref [] in
          List.iter
            (fun (_, a) ->
              if is_lambda a then begin
                match
                  List.find_opt (fun (_, a') -> a' == a) matched |> Option.map fst
                with
                | Some pname ->
                  incr st.sub_count;
                  let sub =
                    fresh_node st.env ~file
                      ~name:(Printf.sprintf "%s/fn%d" st.node.nd_name !(st.sub_count))
                      ~params:(params_of_expr a)
                  in
                  let sub_st = { st with node = sub } in
                  sub_st.held <- st.held;
                  walk_callback sub_st a;
                  subs := (pname, sub) :: !subs
                | None -> walk_callback st a
              end
              else walk st a)
            args;
          record_call st nd !subs
        | None ->
          if is_thread_entry p then
            (* The callback begins a fresh stack on another thread (or at
               process exit): walk lambdas as isolated sub-nodes — no held
               set, no entry propagation from this caller — and record no
               edge for function values (their nodes are walked on their
               own, gathering entries only from same-stack callers). *)
            List.iter
              (fun (_, a) ->
                if is_lambda a then begin
                  incr st.sub_count;
                  let sub =
                    fresh_node st.env ~file
                      ~name:
                        (Printf.sprintf "%s/spawn%d" st.node.nd_name !(st.sub_count))
                      ~params:(params_of_expr a)
                  in
                  let sub_st = { st with node = sub } in
                  sub_st.held <- [];
                  walk_callback sub_st a
                end
                else if ident_path a = None then walk st a)
              args
          else
            (* External call: closures are assumed to run in place. *)
            List.iter
              (fun (_, a) -> if is_lambda a then walk_callback st a else walk st a)
              args)))

and handle_fun_protect st args =
  let fin = List.assoc_opt (Asttypes.Labelled "finally") args in
  let unlocked =
    match fin with
    | Some f -> unlocks_in st.env st.node.nd_file f
    | None -> []
  in
  (match fin with Some f -> walk_confined st f | None -> ());
  (match unlabelled args with
  | body :: _ ->
    if is_lambda body then walk_callback st body else apply_function_value st body
  | []  -> ());
  (* [Fun.protect ~finally:(fun () -> Locks.unlock l) …] releases [l] on
     every exit path of the protected body. *)
  List.iter (fun k -> st.held <- held_remove st.held k) unlocked

and handle_locks st fn args line col =
  let u = unlabelled args in
  let key_of i = Option.bind (List.nth_opt u i) key_of_lock_expr in
  match fn with
  | "lock" -> (
    match key_of 0 with
    | Some k ->
      emit st (Acquire (k, line, col, st.held));
      st.held <- held_add st.held k line
    | None -> unresolved_lock st line col)
  | "unlock" -> (
    match key_of 0 with
    | Some k -> st.held <- held_remove st.held k
    | None -> ())
  | "try_lock" -> (
    (* Outside the [if] shape: over-approximate as held from here on. *)
    match key_of 0 with
    | Some k -> st.held <- held_add st.held k line
    | None -> ())
  | "with_lock" -> (
    match key_of 0 with
    | None -> unresolved_lock st line col
    | Some k -> (
      emit st (Acquire (k, line, col, st.held));
      match List.nth_opt u 1 with
      | None -> ()  (* partial application *)
      | Some body ->
        if is_lambda body then walk_callback st ~extra:[ (k, line) ] body
        else apply_function_value st ~extra:[ (k, line) ] body))
  | "wait" -> (
    match key_of 1 with
    | Some k -> emit st (Wait (k, line, col, st.held))
    | None -> unresolved_lock st line col)
  | _ ->
    (* signal / broadcast / create / cond / name / rank / held / mode … *)
    List.iter (fun (_, a) -> walk st a) args

and unresolved_lock st line col =
  st.env.findings <-
    {
      Lint_core.rule = "lock-order";
      file = st.node.nd_file;
      line;
      col;
      severity = Lint_core.Warning;
      message =
        "cannot resolve the lock expression to a named binding or record field; \
         the rank check is skipped here — bind the lock to a name";
      suppressed = None;
      baselined = false;
    }
    :: st.env.findings

(* ------------------------- fixed-point and rules -------------------- *)

let entry_add nd k prov =
  if List.mem_assoc k nd.nd_entry then false
  else begin
    nd.nd_entry <- (k, prov) :: nd.nd_entry;
    true
  end

(* Locks the callee itself acquires around invocations of parameter [p] —
   local acquisitions only, so one call site's context never leaks into
   another site's callback. *)
let param_held_local callee p =
  List.concat_map
    (fun (name, h) -> if name = p then List.map fst h else [])
    callee.nd_pinvokes

let fix_point env =
  let changed = ref true in
  while !changed do
    changed := false;
    Queue.iter
      (fun nd ->
        List.iter
          (fun c ->
            let add_to target (k, prov) =
              if entry_add target k prov then changed := true
            in
            (* Caller entry + locally-held flow into the callee. *)
            List.iter (add_to c.c_target) nd.nd_entry;
            List.iter
              (fun (k, _) ->
                add_to c.c_target
                  (k, Printf.sprintf "held across the call from %s in %s" nd.nd_name nd.nd_file))
              c.c_held;
            (* Lambda sub-nodes inherit the caller's entry plus what the
               callee holds around that parameter. *)
            List.iter
              (fun (pname, sub) ->
                List.iter (add_to sub) nd.nd_entry;
                List.iter
                  (fun k ->
                    add_to sub
                      ( k,
                        Printf.sprintf "held by %s around its %s callback"
                          c.c_target.nd_name pname ))
                  (param_held_local c.c_target pname))
              c.c_subs)
          nd.nd_calls)
      env.all_nodes
  done

(* The union of locally-held and may-be-held-on-entry, each with a note on
   where it came from. *)
let full_held nd (local : held) =
  let local' = List.map (fun (k, l) -> (k, Printf.sprintf "held since line %d" l)) local in
  List.fold_left
    (fun acc (k, prov) -> if List.mem_assoc k acc then acc else acc @ [ (k, prov) ])
    local' nd.nd_entry

let render_one env (k, how) =
  let r =
    match rank_of env k with
    | Some r -> Printf.sprintf " (rank %d)" r
    | None -> ""
  in
  Printf.sprintf "%s%s [%s]" (key_name k) r how

let render_held env all = String.concat ", " (List.map (render_one env) all)

let finding ~rule ~file ~line ~col ~severity message =
  { Lint_core.rule; file; line; col; severity; message; suppressed = None;
    baselined = false }

let check_node env nd acc =
  List.fold_left
    (fun acc ev ->
      match ev with
      | Acquire (k, line, col, local) -> (
        let all = full_held nd local in
        match rank_of env k with
        | None ->
          if all = [] then acc
          else
            finding ~rule:"lock-order" ~file:nd.nd_file ~line ~col
              ~severity:Lint_core.Warning
              (Printf.sprintf "acquiring %s, whose rank is unknown, while %s may be held"
                 (key_name k) (render_held env all))
            :: acc
        | Some rk ->
          List.fold_left
            (fun acc (h, prov) ->
              match rank_of env h with
              | Some rh when rh >= rk ->
                finding ~rule:"lock-order" ~file:nd.nd_file ~line ~col
                  ~severity:Lint_core.Error
                  (if h = k then
                     Printf.sprintf
                       "re-acquiring %s (rank %d), already %s — self-deadlock"
                       (key_name k) rk prov
                   else
                     Printf.sprintf
                       "acquiring %s (rank %d) while %s (rank %d) may be held \
                        [%s]; blocking acquisitions must be in strictly \
                        ascending rank order — see DESIGN.md §15"
                       (key_name k) rk (key_name h) rh prov)
                :: acc
              | _ -> acc)
            acc all)
      | Wait (k, line, col, local) -> (
        let all = full_held nd local in
        if not (List.mem_assoc k all) then
          finding ~rule:"lock-order" ~file:nd.nd_file ~line ~col
            ~severity:Lint_core.Error
            (Printf.sprintf
               "Locks.wait on %s, which is not held on any path reaching this \
                wait — waiting requires holding the lock"
               (key_name k))
          :: acc
        else
          match rank_of env k with
          | None -> acc
          | Some rk ->
            List.fold_left
              (fun acc (h, prov) ->
                match rank_of env h with
                | Some rh when h <> k && rh > rk ->
                  finding ~rule:"lock-order" ~file:nd.nd_file ~line ~col
                    ~severity:Lint_core.Error
                    (Printf.sprintf
                       "Locks.wait on %s (rank %d) while %s (rank %d) may be \
                        held [%s]; the signalled re-acquisition would run \
                        beneath a higher rank — wait only on the innermost lock"
                       (key_name k) rk (key_name h) rh prov)
                  :: acc
                | _ -> acc)
              acc all)
      | Block (what, line, col, local) ->
        let all = full_held nd local in
        if all = [] then acc
        else
          finding ~rule:"blocking-under-lock" ~file:nd.nd_file ~line ~col
            ~severity:Lint_core.Error
            (Printf.sprintf
               "%s may block indefinitely while %s is held — release the lock \
                first, or annotate why the hold is bounded"
               what (render_held env all))
          :: acc)
    acc nd.nd_events

(* ------------------------------ driver ------------------------------ *)

let locks_impl_file files =
  List.find_opt
    (fun f ->
      Filename.basename f = "locks.ml"
      && Filename.basename (Filename.dirname f) = "util")
    files

(* Run the whole analysis over [files]. locks.ml (the wrapper's own
   implementation) contributes its rank constants but is not itself a
   subject of the lock rules. *)
let analyze ~files =
  let env =
    {
      structures = Hashtbl.create 64;
      aliases = Hashtbl.create 64;
      locks_aliases = Hashtbl.create 16;
      nodes = Hashtbl.create 512;
      all_nodes = Queue.create ();
      rank_consts = Hashtbl.create 16;
      var_ranks = Hashtbl.create 16;
      field_ranks = Hashtbl.create 16;
      wrapper_dirs = Hashtbl.create 16;
      file_set = Hashtbl.create 64;
      findings = [];
    }
  in
  let locks_ml = locks_impl_file files in
  (match locks_ml with
  | Some f -> (
    match parse_structure ~file:f (read_file f) with
    | Some str -> collect_rank_consts env str
    | None -> ())
  | None -> ());
  let files = List.filter (fun f -> Some f <> locks_ml) files in
  (* Pass A: parse; aliases, wrappers, nodes, lock definitions. *)
  List.iter
    (fun f ->
      match parse_structure ~file:f (read_file f) with
      | None -> ()
      | Some str ->
        Hashtbl.replace env.structures f str;
        Hashtbl.replace env.file_set f ();
        Hashtbl.replace env.aliases f (collect_aliases str);
        (match Lint_deps.library_wrapper (Filename.dirname f) with
        | Some w ->
          Hashtbl.replace env.wrapper_dirs
            (String.capitalize_ascii w)
            (Filename.dirname f)
        | None -> ());
        collect_nodes env f str)
    files;
  (* lint: allow nondet-iter — per-file fact collection into keyed tables; no order dependence *)
  Hashtbl.iter (fun _ str -> collect_lock_defs env str) env.structures;
  (* Pass B: event extraction per node. *)
  let walk_file f str =
    let counter = ref 0 in
    let rec scan_structure s = List.iter scan_item s
    and scan_item item =
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt; _ } -> (
              match Hashtbl.find_opt env.nodes (f, txt) with
              | Some nd ->
                let st = { env; node = nd; held = []; sub_count = counter } in
                walk st vb.pvb_expr
              | None -> () (* a Locks alias binding *))
            | _ ->
              (* Anonymous top-level effects ([let () = …]) run at init. *)
              let nd = fresh_node env ~file:f ~name:"(init)" ~params:[] in
              let st = { env; node = nd; held = []; sub_count = counter } in
              walk st vb.pvb_expr)
          vbs
      | Pstr_module mb -> scan_module_expr mb.pmb_expr
      | Pstr_recmodule mbs -> List.iter (fun mb -> scan_module_expr mb.pmb_expr) mbs
      | Pstr_include i -> scan_module_expr i.pincl_mod
      | _ -> ()
    and scan_module_expr me =
      match me.pmod_desc with
      | Pmod_structure s -> scan_structure s
      | Pmod_constraint (me, _) -> scan_module_expr me
      | _ -> ()
    in
    scan_structure str
  in
  (* lint: allow nondet-iter — files walk independently; the fixed point and the final sort_uniq make the result order-free *)
  Hashtbl.iter walk_file env.structures;
  fix_point env;
  let findings =
    Queue.fold (fun acc nd -> check_node env nd acc) env.findings env.all_nodes
  in
  (* Propagation can surface one site through several contexts; report each
     (rule, site, message) once. *)
  (* lint: allow poly-compare — findings are records of scalars; structural order is the dedup key *)
  List.sort_uniq compare findings
