(** Module-level dependency scan for the R1 [domain-unsafe] rule.

    The executor's fan-out closures can call anything their enclosing
    module can, so the set of modules whose top-level mutable state can be
    touched concurrently is the forward dependency closure of every module
    that references [Uxsm_exec.Executor] (the seeds), plus the executor
    library itself.

    The scan is syntactic: each [.ml] file is parsed and every module path
    occurring in it is resolved against (a) the wrapper names of the
    repo's dune libraries — [Uxsm_util.Json] resolves to
    [lib/util/json.ml]; a bare wrapper reference conservatively depends on
    the whole library — and (b) sibling files of the same directory
    ([Bipartite] inside [lib/assignment] resolves to [bipartite.ml]).
    Aliases like [module Obs = Uxsm_obs.Obs] need no special handling:
    the alias declaration itself contributes the edge. *)

val ml_files : dirs:string list -> string list
(** Every [*.ml] under [dirs] (recursive, skipping dot- and [_]-prefixed
    directories), as sorted relative paths. *)

val library_wrapper : string -> string option
(** Wrapper module name of the dune library living in a directory:
    [(library (name uxsm_util) …)] gives [Some "Uxsm_util"]. *)

val executor_reachable : files:string list -> string -> bool
(** [executor_reachable ~files] scans [files] once and returns the
    predicate "this file is reachable from an executor fan-out closure".
    Files that fail to parse are conservatively treated as reachable. *)
