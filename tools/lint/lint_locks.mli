(** Interprocedural lock analysis: the static half of the
    [Uxsm_util.Locks] rank discipline (the runtime witness is the other
    half; DESIGN.md §15).

    Builds a dune-wrapper-aware value-level call graph over the analyzed
    files, propagates may-be-held lock sets along it to a fixed point —
    including into lambdas passed to known higher-order callees, via
    one-level parameter summaries — and reports:

    - [lock-order] (error): a blocking acquisition whose rank is not
      strictly above every rank that may already be held, a [Locks.wait]
      on a lock that is not held, or a wait that is not on the
      highest-ranked held lock. Unresolvable lock expressions and
      unknown-rank acquisitions under held locks degrade to warnings.
    - [blocking-under-lock] (error): a call that can block indefinitely
      ([Unix.read]/[write]/[select]/…, [Thread.join], [Domain.join], raw
      [Condition.wait], or an [Executor.map_*] fan-out) reachable with
      any lock held.

    Held sets are over-approximate (branch exits union, closures passed
    to unknown functions assumed invoked in place), so a finding can name
    a path that never executes at runtime — such sites carry a reasoned
    [lint: allow] annotation rather than a code change. *)

val analyze : files:string list -> Lint_core.finding list
(** Run the whole-program analysis over [files] (root-relative [.ml]
    paths, typically lib/bin/bench). [lib/util/locks.ml] contributes its
    rank constants but is exempt from the rules; files that fail to parse
    are skipped (the per-file pass already reports [parse-error]).
    Findings are deduplicated and unsuppressed — the driver applies
    annotations. *)
