(* uxsm-lint: static domain-safety / determinism / hygiene analysis over
   this repo's OCaml sources. See Lint_core for the rule catalogue and
   DESIGN.md §11 for the workflow. *)

module Lint_core = Uxsm_lint_core.Lint_core
module Lint_deps = Uxsm_lint_core.Lint_deps
module Json = Uxsm_util.Json

let usage =
  "uxsm_lint [--json] [--baseline FILE] [--root DIR] [DIR...]\n\
   Analyze every .ml under the given directories (default: lib bin bench)\n\
   and exit non-zero on unsuppressed, unbaselined errors."

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let json_out = ref false in
  let baseline_path = ref None in
  let root = ref "." in
  let dirs = ref [] in
  Arg.parse
    [
      ("--json", Arg.Set json_out, " emit the machine-readable report on stdout");
      ( "--baseline",
        Arg.String (fun s -> baseline_path := Some s),
        "FILE grandfather the findings listed in FILE (JSON)" );
      ("--root", Arg.Set_string root, "DIR interpret directories relative to DIR");
    ]
    (fun d -> dirs := d :: !dirs)
    usage;
  (try Sys.chdir !root
   with Sys_error e ->
     prerr_endline ("uxsm_lint: cannot chdir to root: " ^ e);
     exit 2);
  let dirs = match List.rev !dirs with [] -> [ "lib"; "bin"; "bench" ] | ds -> ds in
  let files = Lint_deps.ml_files ~dirs in
  if files = [] then begin
    prerr_endline "uxsm_lint: no .ml files found under the given directories";
    exit 2
  end;
  let reachable = Lint_deps.executor_reachable ~files in
  let findings =
    List.concat_map
      (fun f ->
        let scope = Lint_core.scope_of_path f in
        let ctx =
          { Lint_core.file = f; scope; executor_reachable = reachable f }
        in
        let mli =
          Lint_core.mli_finding ~ml_file:f
            ~has_mli:(Sys.file_exists (Filename.remove_extension f ^ ".mli"))
            ~scope
        in
        Option.to_list mli @ Lint_core.analyze ctx (read_file f))
      files
  in
  let findings =
    match !baseline_path with
    | None -> findings
    | Some path -> (
      match Json.of_string (read_file path) with
      | exception Sys_error e ->
        prerr_endline ("uxsm_lint: cannot read baseline: " ^ e);
        exit 2
      | Error e ->
        prerr_endline ("uxsm_lint: baseline is not valid JSON: " ^ e);
        exit 2
      | Ok j -> (
        match Lint_core.baseline_of_json j with
        | Error e ->
          prerr_endline ("uxsm_lint: " ^ e);
          exit 2
        | Ok entries -> Lint_core.apply_baseline entries findings))
  in
  if !json_out then print_endline (Json.to_string (Lint_core.to_json findings))
  else Format.printf "%a" Lint_core.pp_report findings;
  exit (Lint_core.exit_code findings)
