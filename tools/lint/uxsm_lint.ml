(* uxsm-lint: static domain-safety / determinism / concurrency / hygiene
   analysis over this repo's OCaml sources. See Lint_core for the
   syntactic rule catalogue, Lint_locks for the interprocedural lock
   rules, and DESIGN.md §11/§15 for the workflow.

   The driver owns the report assembly, in this order:
   1. per-file syntactic findings (Lint_core.analyze_raw) over every
      directory, plus missing-mli;
   2. interprocedural lock findings (Lint_locks.analyze) over the
      executable code (lib/bin/bench — tools and test are hygiene-only);
   3. suppression annotations, applied to the merged list, so an
      annotation can cover an interprocedural finding;
   4. stale-suppression findings for annotations and baseline entries
      that matched nothing;
   5. the baseline. *)

module Lint_core = Uxsm_lint_core.Lint_core
module Lint_deps = Uxsm_lint_core.Lint_deps
module Lint_locks = Uxsm_lint_core.Lint_locks
module Json = Uxsm_util.Json

let usage =
  "uxsm_lint [--json] [--baseline FILE] [--root DIR] [DIR...]\n\
   Analyze every .ml under the given directories (default: lib bin bench\n\
   tools test) and exit non-zero on unsuppressed, unbaselined errors."

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let json_out = ref false in
  let baseline_path = ref None in
  let root = ref "." in
  let dirs = ref [] in
  Arg.parse
    [
      ("--json", Arg.Set json_out, " emit the machine-readable report on stdout");
      ( "--baseline",
        Arg.String (fun s -> baseline_path := Some s),
        "FILE grandfather the findings listed in FILE (JSON)" );
      ("--root", Arg.Set_string root, "DIR interpret directories relative to DIR");
    ]
    (fun d -> dirs := d :: !dirs)
    usage;
  (try Sys.chdir !root
   with Sys_error e ->
     prerr_endline ("uxsm_lint: cannot chdir to root: " ^ e);
     exit 2);
  let dirs =
    match List.rev !dirs with
    | [] -> [ "lib"; "bin"; "bench"; "tools"; "test" ]
    | ds -> ds
  in
  let files = Lint_deps.ml_files ~dirs in
  if files = [] then begin
    prerr_endline "uxsm_lint: no .ml files found under the given directories";
    exit 2
  end;
  let reachable = Lint_deps.executor_reachable ~files in
  let annotations : (string, Lint_core.annotation list) Hashtbl.t =
    Hashtbl.create 64
  in
  let file_findings =
    List.concat_map
      (fun f ->
        let scope = Lint_core.scope_of_path f in
        let src = read_file f in
        let anns, _ = Lint_core.annotations_of_source src in
        Hashtbl.replace annotations f anns;
        let ctx =
          {
            Lint_core.file = f;
            scope;
            (* R1 concerns state shared across executor fan-out; the lint
               and test harness processes never run under the executor. *)
            executor_reachable =
              (match scope with
              | Lint_core.Tools | Lint_core.Test -> false
              | _ -> reachable f);
          }
        in
        let mli =
          Lint_core.mli_finding ~ml_file:f
            ~has_mli:(Sys.file_exists (Filename.remove_extension f ^ ".mli"))
            ~scope
        in
        Option.to_list mli @ Lint_core.analyze_raw ctx src)
      files
  in
  (* The lock rules target code the ranked-lock discipline governs; tools/
     and test/ use no Locks and stay out of the call graph. *)
  let lock_files =
    List.filter
      (fun f ->
        match Lint_core.scope_of_path f with
        | Lint_core.Lib | Lint_core.Bin | Lint_core.Bench -> true
        | _ -> false)
      files
  in
  let raw = file_findings @ Lint_locks.analyze ~files:lock_files in
  let findings =
    List.map
      (fun f ->
        match Hashtbl.find_opt annotations f.Lint_core.file with
        | Some anns -> List.hd (Lint_core.apply_suppressions anns [ f ])
        | None -> f)
      raw
  in
  let stale =
    (* lint: allow unsorted-fold — the merged report is position-sorted below *)
    Hashtbl.fold
      (fun file anns acc ->
        Lint_core.stale_annotation_findings ~file anns raw @ acc)
      annotations []
  in
  let baseline_entries =
    match !baseline_path with
    | None -> []
    | Some path -> (
      match Json.of_string (read_file path) with
      | exception Sys_error e ->
        prerr_endline ("uxsm_lint: cannot read baseline: " ^ e);
        exit 2
      | Error e ->
        prerr_endline ("uxsm_lint: baseline is not valid JSON: " ^ e);
        exit 2
      | Ok j -> (
        match Lint_core.baseline_of_json j with
        | Error e ->
          prerr_endline ("uxsm_lint: " ^ e);
          exit 2
        | Ok entries -> entries))
  in
  let findings =
    Lint_core.apply_baseline baseline_entries findings
    @ stale
    @ Lint_core.stale_baseline_findings baseline_entries raw
  in
  let findings =
    List.sort
      (fun a b ->
        compare
          (a.Lint_core.file, a.Lint_core.line, a.Lint_core.col, a.Lint_core.rule)
          (b.Lint_core.file, b.Lint_core.line, b.Lint_core.col, b.Lint_core.rule))
      findings
  in
  if !json_out then print_endline (Json.to_string (Lint_core.to_json findings))
  else Format.printf "%a" Lint_core.pp_report findings;
  exit (Lint_core.exit_code findings)
