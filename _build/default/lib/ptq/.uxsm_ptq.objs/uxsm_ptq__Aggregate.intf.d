lib/ptq/aggregate.mli: Ptq Uxsm_twig
