lib/ptq/keyword.ml: Hashtbl List Ptq String Uxsm_mapping Uxsm_schema Uxsm_twig
