lib/ptq/resolve.ml: List Option Uxsm_schema Uxsm_twig Uxsm_xml
