lib/ptq/rewrite.ml: Array List Option Uxsm_schema Uxsm_twig
