lib/ptq/rewrite.mli: Resolve Uxsm_schema Uxsm_twig
