lib/ptq/resolve.mli: Uxsm_schema Uxsm_twig Uxsm_xml
