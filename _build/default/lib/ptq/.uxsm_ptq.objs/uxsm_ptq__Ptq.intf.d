lib/ptq/ptq.mli: Uxsm_blocktree Uxsm_mapping Uxsm_twig Uxsm_xml
