lib/ptq/ptq.ml: Array Float Fun Hashtbl Int List Resolve Rewrite Uxsm_blocktree Uxsm_mapping Uxsm_schema Uxsm_twig Uxsm_xml
