lib/ptq/ptq_prob.mli: Ptq Uxsm_twig Uxsm_xml
