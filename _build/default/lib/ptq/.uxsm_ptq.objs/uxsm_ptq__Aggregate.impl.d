lib/ptq/aggregate.ml: Array Float Hashtbl List Ptq Uxsm_twig Uxsm_xml
