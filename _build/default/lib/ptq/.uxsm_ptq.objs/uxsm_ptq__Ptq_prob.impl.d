lib/ptq/ptq_prob.ml: Array Float Hashtbl List Ptq Uxsm_twig Uxsm_xml
