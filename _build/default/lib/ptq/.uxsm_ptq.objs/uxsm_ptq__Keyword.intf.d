lib/ptq/keyword.mli: Ptq Uxsm_schema Uxsm_twig
