(** Aggregate queries over possible mappings — the extension of Gal,
    Martinez, Simari and Subrahmanian (ICDE 2009), which the paper cites as
    [16], transplanted to PTQ.

    Under by-table semantics each mapping [m_i] yields one answer set
    [R_i]; an aggregate maps [R_i] to a number, so the query's result is a
    {e distribution} over aggregate values: value [v] carries the total
    probability of the mappings whose answers aggregate to [v]. *)

type t = {
  per_mapping : (int * float * float option) list;
      (** (mapping id, probability, aggregate value); [None] when the
          aggregate is undefined (min/max of an empty answer set) *)
  distribution : (float * float) list;
      (** distinct defined values with their total probability, sorted by
          decreasing probability *)
  undefined_mass : float;
      (** total probability of mappings with an undefined aggregate *)
  expected : float option;
      (** expectation over the defined part, renormalized; [None] when no
          mapping defines the aggregate *)
}

val count : Ptq.context -> Uxsm_twig.Pattern.t -> t
(** Number of matches per mapping (COUNT; always defined — empty answer
    sets count 0). *)

val sum : Ptq.context -> node:int -> Uxsm_twig.Pattern.t -> t
(** Sum over all matches of the numeric text of query node [node]
    (pre-order id). Matches with non-numeric text are skipped; an empty
    answer set sums to 0. *)

val minimum : Ptq.context -> node:int -> Uxsm_twig.Pattern.t -> t
(** Minimum over matches of the numeric text of query node [node];
    undefined when a mapping has no numeric match. *)

val maximum : Ptq.context -> node:int -> Uxsm_twig.Pattern.t -> t

val average : Ptq.context -> node:int -> Uxsm_twig.Pattern.t -> t
(** Mean over matches; undefined on empty answer sets. *)
