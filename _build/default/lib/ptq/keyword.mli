(** Keyword queries over an uncertain schema matching — one of the paper's
    future-work directions ("how the block tree can facilitate ... keyword
    query").

    A keyword query is a bag of terms the user types without knowing the
    target schema. Each term is matched against target-schema element
    labels; for every way of picking one element per term, the minimal twig
    pattern connecting the picks (their lowest common ancestor with one
    descendant branch per pick) is built and evaluated as an ordinary PTQ.
    Results come back per candidate interpretation, most probable answers
    first. *)

val element_candidates : Uxsm_schema.Schema.t -> string -> Uxsm_schema.Schema.element list
(** Target elements whose label contains the term (case-insensitive
    substring over the label's tokens). *)

val lca : Uxsm_schema.Schema.t -> Uxsm_schema.Schema.element list -> Uxsm_schema.Schema.element
(** Lowest common ancestor; the schema root for an empty list. *)

val interpretations :
  ?limit:int -> Uxsm_schema.Schema.t -> string list -> Uxsm_twig.Pattern.t list
(** Candidate twig patterns for the keyword bag, deduplicated, at most
    [limit] (default 16). Empty when some term matches nothing. *)

type hit = {
  pattern : Uxsm_twig.Pattern.t;  (** the interpretation *)
  answers : (Uxsm_twig.Binding.t list * float) list;  (** consolidated PTQ result *)
}

val search : ?limit:int -> Ptq.context -> string list -> hit list
(** Evaluate every interpretation; interpretations whose answers are all
    empty are dropped. *)
