module Schema = Uxsm_schema.Schema
module Pattern = Uxsm_twig.Pattern

let relation schema a b =
  if Schema.parent schema b = Some a then `Parent
  else if Schema.is_ancestor schema a b then `Ancestor
  else `Unrelated

let axis_for schema ~parent_src ~child_src =
  match relation schema parent_src child_src with
  | `Parent -> Some Pattern.Child
  | `Ancestor -> Some Pattern.Descendant
  | `Unrelated -> None

exception Unrelated

let through ~source ~pattern ~resolution ~at_top ~lookup =
  let n = Pattern.size pattern in
  (* Pass 1: the source element of every query node under the mapping. *)
  let src = Array.make n (-1) in
  let all_mapped = ref true in
  for id = 0 to n - 1 do
    match lookup resolution.(id) with
    | Some x -> src.(id) <- x
    | None -> all_mapped := false
  done;
  if not !all_mapped then None
  else begin
    (* Pass 2: rebuild the pattern with source labels and re-derived axes,
       consuming ids in the same pre-order as Pattern.nodes/Resolve. *)
    let next = ref 0 in
    let rec go (node : Pattern.node) : Pattern.node =
      let id = !next in
      incr next;
      let x = src.(id) in
      let translate (_old_axis, c) =
        let cid = !next in
        let c' = go c in
        match axis_for source ~parent_src:x ~child_src:src.(cid) with
        | Some axis -> (axis, c')
        | None -> raise Unrelated
      in
      let preds = List.map translate node.Pattern.preds in
      let next_branch = Option.map translate node.Pattern.next in
      {
        Pattern.label = Schema.label source x;
        anchor = Some (Schema.path_string source x);
        value = node.Pattern.value;
        attrs = node.Pattern.attrs;
        preds;
        next = next_branch;
      }
    in
    match go pattern.Pattern.root with
    | exception Unrelated -> None
    | root ->
      let axis =
        if at_top && src.(0) = Schema.root source then Pattern.Child else Pattern.Descendant
      in
      Some { Pattern.axis; root }
  end
