module Schema = Uxsm_schema.Schema
module Doc = Uxsm_xml.Doc
module Pattern = Uxsm_twig.Pattern
module Binding = Uxsm_twig.Binding
module Matcher = Uxsm_twig.Matcher
module Structural_join = Uxsm_twig.Structural_join
module Mapping = Uxsm_mapping.Mapping
module Mapping_set = Uxsm_mapping.Mapping_set
module Block = Uxsm_blocktree.Block
module Block_tree = Uxsm_blocktree.Block_tree

type context = {
  mset : Mapping_set.t;
  doc : Doc.t;
  target_doc : Doc.t;  (* target schema, indexed for resolution *)
  tree : Block_tree.t option;
}

let context ?tree ~mset ~doc () =
  let target_doc = Doc.of_tree (Schema.to_xml_tree (Mapping_set.target mset)) in
  { mset; doc; target_doc; tree }

let mapping_set ctx = ctx.mset
let source_doc ctx = ctx.doc

type answer = {
  mapping_id : int;
  probability : float;
  bindings : Binding.t list;
}

(* Pre-indexed pattern: pre-order node arrays; a subquery rooted at id [q]
   occupies the contiguous id range [q, q + sizes.(q)). *)
type indexed = {
  pattern : Pattern.t;
  nodes : Pattern.node array;
  sizes : int array;
  branch_ids : (Pattern.axis * int) array array;
  n : int;
}

let index_pattern (p : Pattern.t) =
  let nodes = Array.of_list (Pattern.nodes p) in
  let n = Array.length nodes in
  let sizes = Array.make n 0 in
  let branch_ids = Array.make n [||] in
  let next = ref 0 in
  let rec go (node : Pattern.node) =
    let id = !next in
    incr next;
    let kids = List.map (fun (a, c) -> (a, go c)) (Pattern.branches node) in
    branch_ids.(id) <- Array.of_list kids;
    sizes.(id) <- !next - id;
    id
  in
  ignore (go p.Pattern.root);
  { pattern = p; nodes; sizes; branch_ids; n }

(* The subquery rooted at pattern node [q], as a standalone pattern. Its
   local pre-order ids are the global ids shifted by [q]. *)
let subpattern idx q = { Pattern.axis = Pattern.Descendant; root = idx.nodes.(q) }

let globalize idx q (local : Binding.t) =
  let g = Binding.unbound idx.n in
  Array.iteri (fun j v -> if v >= 0 then g.(q + j) <- v) local;
  g

let sub_resolution idx q (resolution : Resolve.t) = Array.sub resolution q idx.sizes.(q)

(* Rewrite the subquery rooted at [q] through [lookup] and match it on the
   source document, returning global bindings. *)
let rewrite_and_match ctx idx q resolution ~at_top ~lookup =
  let source = Mapping_set.source ctx.mset in
  let pat = subpattern idx q in
  let res = sub_resolution idx q resolution in
  match Rewrite.through ~source ~pattern:pat ~resolution:res ~at_top ~lookup with
  | None -> []
  | Some pat_s -> List.map (globalize idx q) (Matcher.matches pat_s ctx.doc)

let lookup_of_mapping m y = Mapping.source_of m y

(* Does mapping [m] cover every element of [resolution]? *)
let covers m (resolution : Resolve.t) =
  Array.for_all (fun y -> Mapping.source_of m y <> None) resolution

let resolutions_of ctx pattern = Resolve.against_doc pattern ctx.target_doc

let filter_mappings ctx pattern =
  let resolutions = resolutions_of ctx pattern in
  List.filter
    (fun i ->
      let m = Mapping_set.mapping ctx.mset i in
      List.exists (covers m) resolutions)
    (List.init (Mapping_set.size ctx.mset) Fun.id)

let dedupe_bindings l = List.sort_uniq Binding.compare l

let answers_of_table ctx per_mapping ids =
  List.map
    (fun i ->
      {
        mapping_id = i;
        probability = Mapping_set.probability ctx.mset i;
        bindings =
          (match Hashtbl.find_opt per_mapping i with
          | None -> []
          | Some l -> dedupe_bindings l);
      })
    ids

let in_restriction restrict i =
  match restrict with
  | None -> true
  | Some tbl -> Hashtbl.mem tbl i

(* Algorithm 3. *)
let query_basic_restricted ctx ~restrict pattern =
  let idx = index_pattern pattern in
  let resolutions = resolutions_of ctx pattern in
  let per_mapping : (int, Binding.t list) Hashtbl.t = Hashtbl.create 64 in
  let relevant = ref [] in
  for i = Mapping_set.size ctx.mset - 1 downto 0 do
    let m = Mapping_set.mapping ctx.mset i in
    let mine = if in_restriction restrict i then List.filter (covers m) resolutions else [] in
    if mine <> [] then begin
      relevant := i :: !relevant;
      let bindings =
        List.concat_map
          (fun resolution ->
            rewrite_and_match ctx idx 0 resolution ~at_top:true ~lookup:(lookup_of_mapping m))
          mine
      in
      Hashtbl.replace per_mapping i bindings
    end
  done;
  answers_of_table ctx per_mapping !relevant

let query_basic ctx pattern = query_basic_restricted ctx ~restrict:None pattern

type stats = {
  resolutions : int;
  relevant_mappings : int;
  blocks_used : int;
  shared_evaluations : int;
  direct_evaluations : int;
  decompositions : int;
  joins : int;
}

type stats_acc = {
  mutable s_blocks_used : int;
  mutable s_shared : int;
  mutable s_direct : int;
  mutable s_decomp : int;
  mutable s_joins : int;
}

let fresh_acc () =
  { s_blocks_used = 0; s_shared = 0; s_direct = 0; s_decomp = 0; s_joins = 0 }

(* Algorithm 4: one subtree evaluation per c-block; decomposition plus
   stack joins elsewhere. [eval] returns, per mapping id, the bindings of
   the subquery rooted at [q] (positions unconstrained unless [at_top]). *)
let eval_with_tree ?acc ctx tree idx resolution ~mids =
  let bump f =
    match acc with
    | Some a -> f a
    | None -> ()
  in
  let source = Mapping_set.source ctx.mset in
  let mapping i = Mapping_set.mapping ctx.mset i in
  let rec eval q ~at_top mids : (int, Binding.t list) Hashtbl.t =
    let out = Hashtbl.create (List.length mids) in
    let t_elem = resolution.(q) in
    let blocks = Block_tree.blocks_at tree t_elem in
    if blocks <> [] then begin
      (* query_subtree: one evaluation per block, shared by its mappings. *)
      let remaining = ref mids in
      List.iter
        (fun (b : Block.t) ->
          let mine, rest = List.partition (Block.mem_mapping b) !remaining in
          remaining := rest;
          if mine <> [] then begin
            bump (fun a ->
                a.s_blocks_used <- a.s_blocks_used + 1;
                a.s_shared <- a.s_shared + 1);
            let bindings =
              rewrite_and_match ctx idx q resolution ~at_top ~lookup:(Block.source_of b)
            in
            List.iter (fun i -> Hashtbl.replace out i bindings) mine
          end)
        blocks;
      List.iter
        (fun i ->
          bump (fun a -> a.s_direct <- a.s_direct + 1);
          let bindings =
            rewrite_and_match ctx idx q resolution ~at_top
              ~lookup:(lookup_of_mapping (mapping i))
          in
          Hashtbl.replace out i bindings)
        !remaining;
      out
    end
    else if Array.length idx.branch_ids.(q) = 0 then begin
      (* Leaf subquery: evaluate directly per mapping. *)
      List.iter
        (fun i ->
          bump (fun a -> a.s_direct <- a.s_direct + 1);
          let bindings =
            rewrite_and_match ctx idx q resolution ~at_top
              ~lookup:(lookup_of_mapping (mapping i))
          in
          Hashtbl.replace out i bindings)
        mids;
      out
    end
    else begin
      (* split_query: root-only subquery q0, then one subquery per branch,
         joined per mapping with the stack join. *)
      bump (fun a -> a.s_decomp <- a.s_decomp + 1);
      let root_value = idx.nodes.(q).Pattern.value in
      let root_attrs = idx.nodes.(q).Pattern.attrs in
      let child_tables =
        Array.map (fun (_, cid) -> (cid, eval cid ~at_top:false mids)) idx.branch_ids.(q)
      in
      List.iter
        (fun i ->
          let m = mapping i in
          let x_parent = Mapping.source_of m resolution.(q) in
          let r0 =
            match x_parent with
            | None -> []
            | Some x ->
              let pat0 =
                {
                  Pattern.axis =
                    (if at_top && x = Schema.root source then Pattern.Child
                     else Pattern.Descendant);
                  root =
                    {
                      Pattern.label = Schema.label source x;
                      anchor = Some (Schema.path_string source x);
                      value = root_value;
                      attrs = root_attrs;
                      preds = [];
                      next = None;
                    };
                }
              in
              List.map
                (fun (local : Binding.t) ->
                  let g = Binding.unbound idx.n in
                  g.(q) <- local.(0);
                  g)
                (Matcher.matches pat0 ctx.doc)
          in
          let join acc (cid, table) =
            match acc with
            | [] -> []
            | _ -> (
              let rj = try Hashtbl.find table i with Not_found -> [] in
              match (x_parent, Mapping.source_of m resolution.(cid)) with
              | Some xp, Some xc -> (
                match Rewrite.axis_for source ~parent_src:xp ~child_src:xc with
                | None -> []
                | Some axis ->
                  bump (fun a -> a.s_joins <- a.s_joins + 1);
                  Structural_join.join_bindings ctx.doc ~axis ~left:acc ~left_col:q
                    ~right:rj ~right_col:cid)
              | _, _ -> [])
          in
          let result = Array.fold_left join r0 child_tables in
          Hashtbl.replace out i result)
        mids;
      out
    end
  in
  eval 0 ~at_top:true mids

let query_tree_restricted ?acc ctx ~restrict pattern =
  let tree =
    match ctx.tree with
    | Some t -> t
    | None -> invalid_arg "Ptq.query_tree: context has no block tree"
  in
  let idx = index_pattern pattern in
  let resolutions = resolutions_of ctx pattern in
  let per_mapping : (int, Binding.t list) Hashtbl.t = Hashtbl.create 64 in
  let relevant = ref [] in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun resolution ->
      let mids =
        List.filter
          (fun i ->
            in_restriction restrict i && covers (Mapping_set.mapping ctx.mset i) resolution)
          (List.init (Mapping_set.size ctx.mset) Fun.id)
      in
      if mids <> [] then begin
        let table = eval_with_tree ?acc ctx tree idx resolution ~mids in
        List.iter
          (fun i ->
            if not (Hashtbl.mem seen i) then begin
              Hashtbl.add seen i ();
              relevant := i :: !relevant
            end;
            let bindings = try Hashtbl.find table i with Not_found -> [] in
            let prev = try Hashtbl.find per_mapping i with Not_found -> [] in
            Hashtbl.replace per_mapping i (bindings @ prev))
          mids
      end)
    resolutions;
  answers_of_table ctx per_mapping (List.sort Int.compare !relevant)

let query_tree ctx pattern = query_tree_restricted ctx ~restrict:None pattern

let take k l = List.filteri (fun i _ -> i < k) l

let query_topk ctx ~k pattern =
  if k <= 0 then invalid_arg "Ptq.query_topk: k must be positive";
  let relevant = filter_mappings ctx pattern in
  let by_prob =
    List.sort
      (fun i j -> Float.compare (Mapping_set.probability ctx.mset j) (Mapping_set.probability ctx.mset i))
      relevant
  in
  let keep = take k by_prob in
  let keep_set = Hashtbl.create k in
  List.iter (fun i -> Hashtbl.replace keep_set i ()) keep;
  match ctx.tree with
  | Some _ -> query_tree_restricted ctx ~restrict:(Some keep_set) pattern
  | None -> query_basic_restricted ctx ~restrict:(Some keep_set) pattern

let query ctx pattern =
  match ctx.tree with
  | Some _ -> query_tree ctx pattern
  | None -> query_basic ctx pattern

let marginals answers =
  let tbl : (Binding.t, float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let prev = try Hashtbl.find tbl b with Not_found -> 0.0 in
          Hashtbl.replace tbl b (prev +. a.probability))
        a.bindings)
    answers;
  Hashtbl.fold (fun b p acc -> (b, p) :: acc) tbl []
  |> List.sort (fun (b1, p1) (b2, p2) ->
         match Float.compare p2 p1 with
         | 0 -> Binding.compare b1 b2
         | c -> c)

let consolidate answers =
  let tbl : (Binding.t list, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let prev = try Hashtbl.find tbl a.bindings with Not_found -> 0.0 in
      Hashtbl.replace tbl a.bindings (prev +. a.probability))
    answers;
  Hashtbl.fold (fun b p acc -> (b, p) :: acc) tbl []
  |> List.sort (fun (_, p1) (_, p2) -> Float.compare p2 p1)

let explain ctx pattern =
  let n_resolutions = List.length (resolutions_of ctx pattern) in
  match ctx.tree with
  | Some _ ->
    let acc = fresh_acc () in
    let answers = query_tree_restricted ~acc ctx ~restrict:None pattern in
    ( {
        resolutions = n_resolutions;
        relevant_mappings = List.length answers;
        blocks_used = acc.s_blocks_used;
        shared_evaluations = acc.s_shared;
        direct_evaluations = acc.s_direct;
        decompositions = acc.s_decomp;
        joins = acc.s_joins;
      },
      answers )
  | None ->
    let resolutions = resolutions_of ctx pattern in
    let answers = query_basic ctx pattern in
    let direct =
      List.fold_left
        (fun n (a : answer) ->
          let m = Mapping_set.mapping ctx.mset a.mapping_id in
          n + List.length (List.filter (covers m) resolutions))
        0 answers
    in
    ( {
        resolutions = n_resolutions;
        relevant_mappings = List.length answers;
        blocks_used = 0;
        shared_evaluations = 0;
        direct_evaluations = direct;
        decompositions = 0;
        joins = 0;
      },
      answers )

let binding_texts ctx pattern (b : Binding.t) =
  let labels = Pattern.labels pattern in
  List.concat
    (List.mapi
       (fun i label -> if b.(i) >= 0 then [ (label, Doc.text ctx.doc b.(i)) ] else [])
       labels)
