(** PTQ over uncertain documents: the combination of an uncertain schema
    matching (possible mappings) with a probabilistic source document
    ({!Uxsm_xml.Prob_doc}) — a future-work item of the paper's conclusion.

    The two uncertainty sources are independent: the mapping distribution
    models which schema reading is right, the document distribution models
    which elements exist. For mapping [m_i] (probability [p_i]) and a match
    [b] of the rewritten query, the joint probability that [b] is an answer
    is [p_i ·] {!Uxsm_xml.Prob_doc.coexistence_prob}[ d (nodes of b)]. *)

type answer = {
  mapping_id : int;
  mapping_prob : float;  (** [p_i] *)
  matches : (Uxsm_twig.Binding.t * float) list;
      (** each match with its document-side existence probability *)
  expected_matches : float;
      (** expected number of surviving matches under this mapping *)
}

val query : Ptq.context -> Uxsm_xml.Prob_doc.t -> Uxsm_twig.Pattern.t -> answer list
(** Evaluate over every relevant mapping. The probabilistic document must
    wrap the context's document (physical equality is not required — the
    node ids must agree; it is the caller's responsibility). *)

val match_marginals :
  Ptq.context -> Uxsm_xml.Prob_doc.t -> Uxsm_twig.Pattern.t ->
  (Uxsm_twig.Binding.t * float) list
(** Joint marginal per distinct match: [Σ_i p_i · P(b exists)] over the
    mappings whose answers contain [b]; sorted by decreasing probability. *)
