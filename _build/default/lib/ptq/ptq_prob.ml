module Prob_doc = Uxsm_xml.Prob_doc
module Binding = Uxsm_twig.Binding

type answer = {
  mapping_id : int;
  mapping_prob : float;
  matches : (Binding.t * float) list;
  expected_matches : float;
}

let bound_nodes (b : Binding.t) =
  Array.to_list b |> List.filter (fun v -> v >= 0)

let query ctx pdoc pattern =
  List.map
    (fun (a : Ptq.answer) ->
      let matches =
        List.map (fun b -> (b, Prob_doc.coexistence_prob pdoc (bound_nodes b))) a.bindings
      in
      {
        mapping_id = a.mapping_id;
        mapping_prob = a.probability;
        matches;
        expected_matches = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 matches;
      })
    (Ptq.query ctx pattern)

let match_marginals ctx pdoc pattern =
  let tbl : (Binding.t, float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun a ->
      List.iter
        (fun (b, p_doc) ->
          let prev = try Hashtbl.find tbl b with Not_found -> 0.0 in
          Hashtbl.replace tbl b (prev +. (a.mapping_prob *. p_doc)))
        a.matches)
    (query ctx pdoc pattern);
  Hashtbl.fold (fun b p acc -> (b, p) :: acc) tbl []
  |> List.sort (fun (b1, p1) (b2, p2) ->
         match Float.compare p2 p1 with
         | 0 -> Binding.compare b1 b2
         | c -> c)
