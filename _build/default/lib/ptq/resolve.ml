module Pattern = Uxsm_twig.Pattern
module Matcher = Uxsm_twig.Matcher

type t = Uxsm_twig.Binding.t

let rec strip_node (n : Pattern.node) =
  {
    n with
    Pattern.value = None;
    attrs = [];
    preds = List.map (fun (a, c) -> (a, strip_node c)) n.Pattern.preds;
    next = Option.map (fun (a, c) -> (a, strip_node c)) n.Pattern.next;
  }

let strip (p : Pattern.t) = { p with Pattern.root = strip_node p.Pattern.root }

let against_doc p schema_doc = Matcher.matches (strip p) schema_doc

let against p schema =
  against_doc p (Uxsm_xml.Doc.of_tree (Uxsm_schema.Schema.to_xml_tree schema))
