(** Resolution of a twig pattern against the target schema.

    A target query names elements by label, which may be ambiguous (e.g. two
    [CONTACT_NAME] elements in Figure 1(b)). A {e resolution} fixes one
    target schema element per query node, consistent with the query's
    structure. PTQ evaluation unions the per-mapping results over all
    resolutions. Text-equality predicates are ignored during resolution
    (they constrain document values, not schema structure). *)

type t = Uxsm_twig.Binding.t
(** Query-node id (pre-order) → target schema element. *)

val against : Uxsm_twig.Pattern.t -> Uxsm_schema.Schema.t -> t list
(** All resolutions, in document order of the root element. *)

val against_doc : Uxsm_twig.Pattern.t -> Uxsm_xml.Doc.t -> t list
(** Same, but against a pre-indexed schema ({!Uxsm_schema.Schema.to_xml_tree}
    passed through {!Uxsm_xml.Doc.of_tree}); avoids re-indexing the schema on
    every query. *)
