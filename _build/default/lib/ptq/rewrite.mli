(** Query rewriting: translating a resolved target query into a source query
    through a mapping (the [rewrite(q_T, m_i)] of Algorithm 3).

    Each query node's target element is replaced by the source element the
    mapping assigns to it; target axes are re-derived from the source
    schema: a target edge maps to [/] when the two source elements are in a
    parent-child relation, to [//] when in a (strict) ancestor-descendant
    relation, and the rewrite fails (the mapping contributes no answers)
    when they are structurally unrelated. Text predicates carry over
    verbatim. *)

val relation :
  Uxsm_schema.Schema.t ->
  Uxsm_schema.Schema.element ->
  Uxsm_schema.Schema.element ->
  [ `Parent | `Ancestor | `Unrelated ]
(** Relation of the first element to the second: its parent, a strict
    non-parent ancestor, or neither. *)

val through :
  source:Uxsm_schema.Schema.t ->
  pattern:Uxsm_twig.Pattern.t ->
  resolution:Resolve.t ->
  at_top:bool ->
  lookup:(Uxsm_schema.Schema.element -> Uxsm_schema.Schema.element option) ->
  Uxsm_twig.Pattern.t option
(** [through ~source ~pattern ~resolution ~at_top ~lookup] rewrites
    [pattern] (resolved over the target schema by [resolution]) into a
    source-schema pattern. [lookup] maps a target element to its source
    element under the mapping (or block); [None] anywhere fails the rewrite.

    [at_top] controls the root step's axis: when true (rewriting a full
    query), the root binds the document root if its source element is the
    schema root and binds by label anywhere otherwise; when false (rewriting
    a subquery whose position is enforced by a later structural join), the
    root always binds anywhere. *)

val axis_for :
  Uxsm_schema.Schema.t ->
  parent_src:Uxsm_schema.Schema.element ->
  child_src:Uxsm_schema.Schema.element ->
  Uxsm_twig.Pattern.axis option
(** The rewritten axis between two source elements, or [None] if unrelated.
    Exposed for the per-branch joins of Algorithm 4. *)
