type element = int

type spec = {
  name : string;
  repeatable : bool;
  children : spec list;
}

type t = {
  labels : string array;
  parent : int array;
  children : int array array;
  repeat : bool array;
  level : int array;
  post : int array;
  sub_size : int array;
  paths : string array;  (* '.'-joined root-to-element path *)
  by_label : (string, int list) Hashtbl.t;  (* reversed *)
  by_path : (string, int) Hashtbl.t;
}

let spec ?(repeatable = false) name children = { name; repeatable; children }

let rec spec_count (s : spec) = 1 + List.fold_left (fun acc c -> acc + spec_count c) 0 s.children

let of_spec root_spec =
  let n = spec_count root_spec in
  let labels = Array.make n "" in
  let parent = Array.make n (-1) in
  let children = Array.make n [||] in
  let repeat = Array.make n false in
  let level = Array.make n 0 in
  let post = Array.make n 0 in
  let sub_size = Array.make n 1 in
  let paths = Array.make n "" in
  let by_label = Hashtbl.create 64 in
  let by_path = Hashtbl.create 64 in
  let next_pre = ref 0 in
  let next_post = ref 0 in
  let rec index parent_id depth prefix s =
    let id = !next_pre in
    incr next_pre;
    labels.(id) <- s.name;
    parent.(id) <- parent_id;
    repeat.(id) <- s.repeatable;
    level.(id) <- depth;
    let p = if prefix = "" then s.name else prefix ^ "." ^ s.name in
    paths.(id) <- p;
    let kids = List.map (index id (depth + 1) p) s.children in
    children.(id) <- Array.of_list kids;
    sub_size.(id) <- 1 + List.fold_left (fun acc k -> acc + sub_size.(k)) 0 kids;
    post.(id) <- !next_post;
    incr next_post;
    let prev = try Hashtbl.find by_label s.name with Not_found -> [] in
    Hashtbl.replace by_label s.name (id :: prev);
    if not (Hashtbl.mem by_path p) then Hashtbl.add by_path p id;
    id
  in
  ignore (index (-1) 0 "" root_spec);
  { labels; parent; children; repeat; level; post; sub_size; paths; by_label; by_path }

let root _ = 0
let size t = Array.length t.labels
let label t e = t.labels.(e)
let parent t e = if t.parent.(e) < 0 then None else Some t.parent.(e)
let children t e = Array.to_list t.children.(e)
let level t e = t.level.(e)
let repeatable t e = t.repeat.(e)
let is_leaf t e = Array.length t.children.(e) = 0
let subtree_size t e = t.sub_size.(e)

let subtree_elements t e =
  (* Pre-order ids of a subtree are contiguous. *)
  List.init t.sub_size.(e) (fun i -> e + i)

let is_ancestor t a b = a < b && t.post.(a) > t.post.(b)

let max_fanout t =
  Array.fold_left (fun acc kids -> max acc (Array.length kids)) 0 t.children

let height t =
  Array.fold_left max 0 t.level

let path_string t e = t.paths.(e)

let path t e = String.split_on_char '.' t.paths.(e)

let find_by_label t l =
  match Hashtbl.find_opt t.by_label l with
  | None -> []
  | Some ids -> List.rev ids

let find_by_path t p = Hashtbl.find_opt t.by_path p

let elements t = List.init (size t) Fun.id

let leaves t = List.filter (is_leaf t) (elements t)

let rec spec_of t e =
  {
    name = t.labels.(e);
    repeatable = t.repeat.(e);
    children = List.map (spec_of t) (children t e);
  }

let to_spec t = spec_of t 0

let to_xml_tree t =
  let rec go e =
    Uxsm_xml.Tree.element t.labels.(e) (List.map go (children t e))
  in
  go 0

let equal a b =
  size a = size b
  && a.labels = b.labels
  && a.parent = b.parent
  && a.repeat = b.repeat

let pp fmt t =
  let rec go e =
    Format.fprintf fmt "%s%s%s@\n"
      (String.make (2 * t.level.(e)) ' ')
      t.labels.(e)
      (if t.repeat.(e) then "*" else "");
    Array.iter go t.children.(e)
  in
  go 0

let to_string t = Format.asprintf "%a" pp t

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.trim l <> "")
  in
  let parse_line l =
    let indent = ref 0 in
    while !indent < String.length l && l.[!indent] = ' ' do
      incr indent
    done;
    if !indent mod 2 <> 0 then Error (Printf.sprintf "odd indentation in %S" l)
    else begin
      let body = String.trim l in
      let repeatable = String.length body > 0 && body.[String.length body - 1] = '*' in
      let name = if repeatable then String.sub body 0 (String.length body - 1) else body in
      if name = "" then Error (Printf.sprintf "empty element name in %S" l)
      else Ok (!indent / 2, name, repeatable)
    end
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
      match parse_line l with
      | Error _ as e -> e
      | Ok item -> collect (item :: acc) rest)
  in
  match collect [] lines with
  | Error e -> Error e
  | Ok [] -> Error "empty schema"
  | Ok ((d0, _, _) :: _ as items) ->
    if d0 <> 0 then Error "first element must be unindented"
    else begin
      (* Build the spec tree from the (depth, name, repeatable) list. *)
      let rec build depth items =
        match items with
        | (d, name, repeatable) :: rest when d = depth ->
          let children, rest' = build_children (depth + 1) rest in
          let node = { name; repeatable; children } in
          (Some node, rest')
        | _ -> (None, items)
      and build_children depth items =
        match build depth items with
        | Some node, rest ->
          let siblings, rest' = build_children depth rest in
          (node :: siblings, rest')
        | None, rest -> ([], rest)
      in
      match build 0 items with
      | Some root_node, [] -> Ok (of_spec root_node)
      | Some _, (_, name, _) :: _ -> Error (Printf.sprintf "dangling element %S after root subtree" name)
      | None, _ -> Error "malformed schema text"
    end
