lib/schema/schema.ml: Array Format Fun Hashtbl List Printf String Uxsm_xml
