lib/schema/schema.mli: Format Uxsm_xml
