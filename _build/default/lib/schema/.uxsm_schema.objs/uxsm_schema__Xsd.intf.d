lib/schema/xsd.mli: Schema Uxsm_xml
