lib/schema/xsd.ml: Hashtbl List Printf Schema String Uxsm_xml
