module Tree = Uxsm_xml.Tree

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* Accept both prefixed (xs:element, xsd:element) and unprefixed names. *)
let local_name qname =
  match String.rindex_opt qname ':' with
  | Some i -> String.sub qname (i + 1) (String.length qname - i - 1)
  | None -> qname

let is_elem tag (t : Tree.t) =
  match t with
  | Tree.Element e -> String.equal (local_name e.name) tag
  | Tree.Text _ -> false

let children_named tag (e : Tree.element) =
  List.filter_map
    (function
      | Tree.Element c when String.equal (local_name c.name) tag -> Some c
      | Tree.Element _ | Tree.Text _ -> None)
    e.children

let attr name (e : Tree.element) =
  List.find_map (fun (k, v) -> if String.equal (local_name k) name then Some v else None) e.attrs

let repeatable_of e =
  match attr "maxOccurs" e with
  | Some "unbounded" -> true
  | Some n -> (
    match int_of_string_opt n with
    | Some k -> k > 1
    | None -> fail "invalid maxOccurs %S" n)
  | None -> false

(* Collect global element declarations by name for ref= resolution. *)
let globals_of_schema (schema : Tree.element) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (g : Tree.element) ->
      match attr "name" g with
      | Some n ->
        if Hashtbl.mem tbl n then fail "duplicate global element %S" n;
        Hashtbl.add tbl n g
      | None -> fail "global xs:element without a name")
    (children_named "element" schema);
  tbl

(* Translate one xs:element declaration into a Schema.spec, resolving refs
   against the global table and rejecting cycles. *)
let rec spec_of_element globals ~in_progress (e : Tree.element) : Schema.spec =
  match (attr "name" e, attr "ref" e) with
  | None, Some r -> (
    if List.mem r in_progress then fail "recursive element reference %S" r;
    match Hashtbl.find_opt globals r with
    | Some g ->
      let s = spec_of_element globals ~in_progress:(r :: in_progress) g in
      { s with Schema.repeatable = s.Schema.repeatable || repeatable_of e }
    | None -> fail "unresolved element reference %S" r)
  | Some name, _ ->
    let kids =
      List.concat_map
        (fun (ct : Tree.element) ->
          List.concat_map
            (fun group_tag ->
              List.concat_map
                (fun (grp : Tree.element) ->
                  List.map
                    (spec_of_element globals ~in_progress)
                    (children_named "element" grp))
                (children_named group_tag ct))
            [ "sequence"; "choice"; "all" ])
        (children_named "complexType" e)
    in
    Schema.spec ~repeatable:(repeatable_of e) name kids
  | None, None -> fail "xs:element needs name= or ref="

let of_xsd ?root tree =
  match tree with
  | Tree.Text _ -> Error "not an XML element"
  | Tree.Element schema_elem -> (
    if not (is_elem "schema" tree) then Error "root element is not xs:schema"
    else
      try
        let globals = globals_of_schema schema_elem in
        let chosen =
          match root with
          | Some name -> (
            match Hashtbl.find_opt globals name with
            | Some g -> g
            | None -> fail "no global element named %S" name)
          | None -> (
            match children_named "element" schema_elem with
            | g :: _ -> g
            | [] -> fail "xs:schema has no global element")
        in
        Ok (Schema.of_spec (spec_of_element globals ~in_progress:[] chosen))
      with Bad msg -> Error msg)

let of_xsd_string ?root s =
  match Uxsm_xml.Parser.parse s with
  | Error e -> Error (Uxsm_xml.Parser.error_to_string e)
  | Ok tree -> of_xsd ?root tree

let rec element_of_spec (s : Schema.spec) : Tree.t =
  let attrs =
    ("name", s.Schema.name)
    :: (if s.Schema.repeatable then [ ("maxOccurs", "unbounded") ] else [])
  in
  let children =
    match s.Schema.children with
    | [] -> []
    | kids ->
      [
        Tree.element "xs:complexType"
          [ Tree.element "xs:sequence" (List.map element_of_spec kids) ];
      ]
  in
  Tree.element ~attrs "xs:element" children

let to_xsd schema =
  Tree.element
    ~attrs:[ ("xmlns:xs", "http://www.w3.org/2001/XMLSchema") ]
    "xs:schema"
    [ element_of_spec (Schema.to_spec schema) ]

let to_xsd_string schema = Uxsm_xml.Printer.to_string ~indent:2 (to_xsd schema)
