(** XML schema trees.

    Following the paper, a schema is a rooted tree of named elements (the
    hierarchical element structure extracted from an XSD). Elements are
    identified by their pre-order rank. Each element additionally carries a
    [repeatable] flag (maxOccurs > 1), used by the document generator, and
    leaves carry an optional value kind used to synthesize text content. *)

type t

type element = int
(** Pre-order rank in [\[0, size t)]; the root is [0]. *)

(** Construction-time description of an element subtree. *)
type spec = {
  name : string;
  repeatable : bool;  (** may occur more than once in an instance *)
  children : spec list;
}

val spec : ?repeatable:bool -> string -> spec list -> spec

val of_spec : spec -> t

val root : t -> element
val size : t -> int

val label : t -> element -> string
val parent : t -> element -> element option
val children : t -> element -> element list
val level : t -> element -> int
val repeatable : t -> element -> bool
val is_leaf : t -> element -> bool

val subtree_size : t -> element -> int
(** Number of elements in the subtree rooted at the element, itself included. *)

val subtree_elements : t -> element -> element list
(** Pre-order list of the subtree's elements (the element itself first). *)

val is_ancestor : t -> element -> element -> bool
(** Strict ancestorship. *)

val max_fanout : t -> int

val height : t -> int
(** Longest root-to-leaf path, counted in edges. *)

val path : t -> element -> string list
(** Root-to-element label path. *)

val path_string : t -> element -> string
(** [path t e] joined with ['.'], e.g. ["ORDER.IP.ICN"] — the hash key format
    used by the block tree. *)

val find_by_label : t -> string -> element list
(** Elements carrying the label, in document order. *)

val find_by_path : t -> string -> element option
(** Look up an element by its ['.']-joined path. *)

val elements : t -> element list
(** All elements in pre-order. *)

val leaves : t -> element list

val to_spec : t -> spec
(** Inverse of {!of_spec}. *)

val to_xml_tree : t -> Uxsm_xml.Tree.t
(** The schema's element hierarchy as an (empty) XML tree. Because both
    sides number nodes in pre-order, indexing this tree with
    {!Uxsm_xml.Doc.of_tree} yields document node ids equal to the schema's
    element ids — which is how twig patterns are resolved against a
    schema. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Indented textual rendering (one element per line, ["*"] marks
    repeatable elements). *)

val of_string : string -> (t, string) result
(** Parse the {!pp} format: each line is an element name indented by two
    spaces per depth, with an optional ["*"] suffix for repeatable. *)

val to_string : t -> string
