(** Import/export of the XML Schema (XSD) subset the paper's model uses.

    The paper treats a schema as the hierarchical element structure
    extracted from an XSD. This module maps that subset both ways:

    - {!of_xsd} reads [xs:schema] documents with global and local element
      declarations, inline [xs:complexType]/[xs:sequence]/[xs:choice]/
      [xs:all] content, [ref=] references to global elements, and
      [maxOccurs] (["unbounded"] or > 1 becomes {!Schema.repeatable}).
      Attributes, simple-type details, namespaces other than the [xs:]
      prefix, and substitution groups are out of scope and ignored or
      rejected as noted.
    - {!to_xsd} writes a schema back as a single nested global element
      declaration; [of_xsd (to_xsd s)] equals [s] (a tested property).

    Recursive element references are rejected ({!Schema.t} is a finite
    tree, as in the paper). *)

val of_xsd : ?root:string -> Uxsm_xml.Tree.t -> (Schema.t, string) result
(** [of_xsd tree] interprets a parsed [xs:schema] document. The tree of the
    global element named [root] (default: the first global element) becomes
    the schema. *)

val of_xsd_string : ?root:string -> string -> (Schema.t, string) result
(** Parse then {!of_xsd}. *)

val to_xsd : Schema.t -> Uxsm_xml.Tree.t
(** Render as an [xs:schema] document with one nested global element. *)

val to_xsd_string : Schema.t -> string
(** {!to_xsd} pretty-printed. *)
