module Schema = Uxsm_schema.Schema

type verdict =
  | Confirmed of Schema.element
  | Unmapped

let consistent verdict m y =
  match (verdict, Mapping.source_of m y) with
  | Confirmed x, Some x' -> x = x'
  | Unmapped, None -> true
  | Confirmed _, None | Unmapped, Some _ -> false

let condition mset ~target verdict =
  let survivors =
    List.filter (fun (m, _) -> consistent verdict m target) (Mapping_set.mappings mset)
  in
  match survivors with
  | [] -> None
  | _ -> Some (Mapping_set.of_mappings (Mapping_set.matching mset) survivors)

let log2 x = Float.log x /. Float.log 2.0

let entropy_of_probs probs =
  List.fold_left (fun acc p -> if p > 0.0 then acc -. (p *. log2 p) else acc) 0.0 probs

(* Group the mapping probabilities by the choice they make for [target];
   the expected posterior entropy is sum over answers a of
   P(a) * H(distribution | a). *)
let expected_entropy_after mset ~target =
  let groups : (int, float list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (m, p) ->
      let key =
        match Mapping.source_of m target with
        | Some x -> x
        | None -> -1
      in
      let prev = try Hashtbl.find groups key with Not_found -> [] in
      Hashtbl.replace groups key (p :: prev))
    (Mapping_set.mappings mset);
  Hashtbl.fold
    (fun _ probs acc ->
      let mass = List.fold_left ( +. ) 0.0 probs in
      if mass <= 0.0 then acc
      else begin
        let conditional = List.map (fun p -> p /. mass) probs in
        acc +. (mass *. entropy_of_probs conditional)
      end)
    groups 0.0

let questions mset =
  let target = Mapping_set.target mset in
  List.filter_map
    (fun y ->
      if Metrics.target_ambiguity mset y < 2 then None
      else Some (y, expected_entropy_after mset ~target:y))
    (Schema.elements target)
  |> List.sort (fun (y1, h1) (y2, h2) ->
         match Float.compare h1 h2 with
         | 0 -> Int.compare y1 y2
         | c -> c)
