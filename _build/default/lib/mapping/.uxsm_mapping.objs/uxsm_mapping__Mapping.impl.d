lib/mapping/mapping.ml: Array Format List Uxsm_schema
