lib/mapping/matching.mli: Uxsm_assignment Uxsm_schema
