lib/mapping/matching.ml: Hashtbl List Uxsm_assignment Uxsm_schema
