lib/mapping/metrics.mli: Mapping_set Uxsm_schema
