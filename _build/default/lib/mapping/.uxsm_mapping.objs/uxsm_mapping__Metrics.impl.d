lib/mapping/metrics.ml: Float Fun Hashtbl List Mapping Mapping_set Option Uxsm_schema
