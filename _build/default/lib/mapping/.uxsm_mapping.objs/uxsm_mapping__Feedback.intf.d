lib/mapping/feedback.mli: Mapping_set Uxsm_schema
