lib/mapping/mapping_set.ml: Array Float List Mapping Matching Uxsm_assignment Uxsm_schema
