lib/mapping/serialize.ml: Buffer List Mapping Mapping_set Matching Printf String Uxsm_schema
