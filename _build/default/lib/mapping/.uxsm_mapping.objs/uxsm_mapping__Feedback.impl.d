lib/mapping/feedback.ml: Float Hashtbl Int List Mapping Mapping_set Metrics Uxsm_schema
