lib/mapping/serialize.mli: Mapping_set Matching
