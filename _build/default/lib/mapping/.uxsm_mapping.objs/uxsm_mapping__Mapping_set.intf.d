lib/mapping/mapping_set.mli: Mapping Matching Uxsm_schema
