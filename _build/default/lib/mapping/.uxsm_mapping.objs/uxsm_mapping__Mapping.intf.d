lib/mapping/mapping.mli: Format Uxsm_schema
