(** Expert feedback over an uncertain matching.

    The paper's introduction observes that uncertainty can be resolved by
    consulting domain experts, at a cost. This module makes that loop
    concrete: condition the mapping distribution on a confirmed (or
    rejected) correspondence — Bayesian update by filtering and
    renormalizing — and rank the questions worth asking by expected
    entropy reduction. Downstream structures (block trees, PTQ contexts)
    are rebuilt from the conditioned set. *)

type verdict =
  | Confirmed of Uxsm_schema.Schema.element
      (** the expert says the target element corresponds to this source
          element *)
  | Unmapped  (** the expert says the target element corresponds to nothing *)

val condition :
  Mapping_set.t -> target:Uxsm_schema.Schema.element -> verdict ->
  Mapping_set.t option
(** Keep only the mappings consistent with the verdict, renormalized.
    [None] when no mapping survives (the expert contradicted every
    hypothesis — the matching itself needs revisiting). *)

val questions : Mapping_set.t -> (Uxsm_schema.Schema.element * float) list
(** Target elements worth asking about, ranked by the expected entropy (in
    bits) of the mapping distribution {e after} asking — lower is better,
    the element whose answer prunes the most mass first. Elements the
    mappings already agree on are omitted. Assumes the expert answers
    according to the current distribution. *)

val expected_entropy_after :
  Mapping_set.t -> target:Uxsm_schema.Schema.element -> float
(** The value {!questions} ranks by, for one element. *)
