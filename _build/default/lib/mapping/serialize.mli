(** Textual serialization of matchings and mapping sets.

    A self-contained, line-oriented format: both schemas are embedded (in
    {!Uxsm_schema.Schema.to_string}'s indented form), so a saved matching
    or mapping set reloads without external context. Floats round-trip
    exactly ([%.17g]). Useful for caching matcher output, shipping mapping
    sets between the CLI's subcommands, and regression fixtures. *)

val matching_to_string : Matching.t -> string

val matching_of_string : string -> (Matching.t, string) result
(** Inverse of {!matching_to_string}: correspondences, scores and both
    schemas are restored exactly. *)

val mapping_set_to_string : Mapping_set.t -> string

val mapping_set_of_string : string -> (Mapping_set.t, string) result
(** Restores the matching, every mapping (pairs and score) and the
    probabilities (renormalized by construction, which is the identity for
    a saved set). *)
