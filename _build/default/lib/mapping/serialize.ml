module Schema = Uxsm_schema.Schema

let float_str f = Printf.sprintf "%.17g" f

(* Indent a schema text block by two spaces so section parsing can rely on
   unindented keywords. *)
let indent_block text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun l -> "  " ^ l)
  |> String.concat "\n"

let dedent_block lines =
  List.map
    (fun l -> if String.length l >= 2 && String.sub l 0 2 = "  " then String.sub l 2 (String.length l - 2) else l)
    lines
  |> String.concat "\n"

let matching_body buf m =
  Buffer.add_string buf "source-schema\n";
  Buffer.add_string buf (indent_block (Schema.to_string (Matching.source m)));
  Buffer.add_string buf "\ntarget-schema\n";
  Buffer.add_string buf (indent_block (Schema.to_string (Matching.target m)));
  Buffer.add_string buf "\ncorrespondences\n";
  List.iter
    (fun (c : Matching.corr) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s %d %d\n" (float_str c.score) c.source c.target))
    (Matching.correspondences m)

let matching_to_string m =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "uxsm-matching v1\n";
  matching_body buf m;
  Buffer.contents buf

exception Fail of string

let failf fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

(* Split into sections: a line without leading spaces starts a section;
   indented lines belong to the current one. *)
let sections_of_lines lines =
  let out = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | Some (name, body) -> out := (name, List.rev body) :: !out
    | None -> ()
  in
  List.iter
    (fun line ->
      if String.trim line = "" then ()
      else if line.[0] <> ' ' then begin
        flush ();
        current := Some (String.trim line, [])
      end
      else
        match !current with
        | Some (name, body) -> current := Some (name, line :: body)
        | None -> failf "content before any section: %s" line)
    lines;
  flush ();
  List.rev !out

let find_section name sections =
  match List.assoc_opt name sections with
  | Some body -> body
  | None -> failf "missing section %S" name

let schema_of_section body =
  match Schema.of_string (dedent_block body) with
  | Ok s -> s
  | Error e -> failf "bad schema block: %s" e

let parse_matching_sections sections =
  let source = schema_of_section (find_section "source-schema" sections) in
  let target = schema_of_section (find_section "target-schema" sections) in
  let corrs =
    List.map
      (fun line ->
        match String.split_on_char ' ' (String.trim line) with
        | [ score; x; y ] -> (
          match (float_of_string_opt score, int_of_string_opt x, int_of_string_opt y) with
          | Some score, Some source, Some target -> { Matching.source; target; score }
          | _ -> failf "bad correspondence line: %s" line)
        | _ -> failf "bad correspondence line: %s" line)
      (find_section "correspondences" sections)
  in
  Matching.create ~source ~target corrs

let matching_of_string text =
  match String.split_on_char '\n' text with
  | header :: rest when String.trim header = "uxsm-matching v1" -> (
    try Ok (parse_matching_sections (sections_of_lines rest)) with
    | Fail msg -> Error msg
    | Invalid_argument msg -> Error msg)
  | _ -> Error "expected header 'uxsm-matching v1'"

let mapping_set_to_string mset =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "uxsm-mappings v1\n";
  matching_body buf (Mapping_set.matching mset);
  Buffer.add_string buf "mappings\n";
  List.iter
    (fun (m, p) ->
      let pairs =
        String.concat " "
          (List.map (fun (x, y) -> Printf.sprintf "%d:%d" x y) (Mapping.pairs m))
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s %s %s\n" (float_str p) (float_str (Mapping.score m)) pairs))
    (Mapping_set.mappings mset);
  Buffer.contents buf

let mapping_set_of_string text =
  match String.split_on_char '\n' text with
  | header :: rest when String.trim header = "uxsm-mappings v1" -> (
    try
      let sections = sections_of_lines rest in
      let matching = parse_matching_sections sections in
      let source = Matching.source matching and target = Matching.target matching in
      let parse_pair token =
        match String.split_on_char ':' token with
        | [ x; y ] -> (
          match (int_of_string_opt x, int_of_string_opt y) with
          | Some x, Some y -> (x, y)
          | _ -> failf "bad pair %S" token)
        | _ -> failf "bad pair %S" token
      in
      let mappings =
        List.map
          (fun line ->
            match String.split_on_char ' ' (String.trim line) with
            | prob :: score :: pair_tokens -> (
              match (float_of_string_opt prob, float_of_string_opt score) with
              | Some prob, Some score ->
                let pairs = List.map parse_pair pair_tokens in
                (Mapping.of_pairs ~source ~target ~score pairs, prob)
              | _ -> failf "bad mapping line: %s" line)
            | [] | [ _ ] -> failf "bad mapping line: %s" line)
          (find_section "mappings" sections)
      in
      Ok (Mapping_set.of_mappings matching mappings)
    with
    | Fail msg -> Error msg
    | Invalid_argument msg -> Error msg)
  | _ -> Error "expected header 'uxsm-mappings v1'"
