module Schema = Uxsm_schema.Schema

type corr = {
  source : Schema.element;
  target : Schema.element;
  score : float;
}

type t = {
  source : Schema.t;
  target : Schema.t;
  corrs : corr list;
  by_pair : (int * int, float) Hashtbl.t;
  by_target : (int, corr list) Hashtbl.t;  (* reversed *)
  by_source : (int, corr list) Hashtbl.t;  (* reversed *)
}

let create ~source ~target corrs =
  let by_pair = Hashtbl.create (List.length corrs) in
  let by_target = Hashtbl.create 64 in
  let by_source = Hashtbl.create 64 in
  let check_and_index (c : corr) =
    if c.source < 0 || c.source >= Schema.size source then
      invalid_arg "Matching.create: source element out of range";
    if c.target < 0 || c.target >= Schema.size target then
      invalid_arg "Matching.create: target element out of range";
    if c.score <= 0.0 || c.score > 1.0 then
      invalid_arg "Matching.create: score must be in (0, 1]";
    if Hashtbl.mem by_pair (c.source, c.target) then
      invalid_arg "Matching.create: duplicate correspondence";
    Hashtbl.add by_pair (c.source, c.target) c.score;
    let prev_t = try Hashtbl.find by_target c.target with Not_found -> [] in
    Hashtbl.replace by_target c.target (c :: prev_t);
    let prev_s = try Hashtbl.find by_source c.source with Not_found -> [] in
    Hashtbl.replace by_source c.source (c :: prev_s)
  in
  List.iter check_and_index corrs;
  { source; target; corrs; by_pair; by_target; by_source }

let source t = t.source
let target t = t.target
let correspondences t = t.corrs
let capacity t = List.length t.corrs
let score t x y = Hashtbl.find_opt t.by_pair (x, y)

let corrs_of_target t y =
  match Hashtbl.find_opt t.by_target y with
  | None -> []
  | Some l -> List.rev l

let corrs_of_source t x =
  match Hashtbl.find_opt t.by_source x with
  | None -> []
  | Some l -> List.rev l

let to_bipartite t =
  Uxsm_assignment.Bipartite.create
    ~n_left:(Schema.size t.source)
    ~n_right:(Schema.size t.target)
    (List.map (fun (c : corr) -> (c.source, c.target, c.score)) t.corrs)
