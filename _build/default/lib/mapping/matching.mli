(** Schema matchings: the scored correspondences produced by an automatic
    matcher (the paper's [U]).

    A correspondence [(x, y, score)] links source element [x] to target
    element [y] with a similarity in [(0, 1]]. A matching is the full edge
    set between one source and one target schema. *)

type corr = {
  source : Uxsm_schema.Schema.element;
  target : Uxsm_schema.Schema.element;
  score : float;
}

type t

val create :
  source:Uxsm_schema.Schema.t -> target:Uxsm_schema.Schema.t -> corr list -> t
(** Validates element ranges, scores in [(0, 1]], and uniqueness of
    [(source, target)] pairs; raises [Invalid_argument] otherwise. *)

val source : t -> Uxsm_schema.Schema.t
val target : t -> Uxsm_schema.Schema.t

val correspondences : t -> corr list
(** In creation order. *)

val capacity : t -> int
(** Number of correspondences (Table II's "Cap."). *)

val score : t -> Uxsm_schema.Schema.element -> Uxsm_schema.Schema.element -> float option
(** [score m x y] — similarity of the [(x, y)] correspondence, if present. *)

val corrs_of_target : t -> Uxsm_schema.Schema.element -> corr list
(** All correspondences whose target is the given element. *)

val corrs_of_source : t -> Uxsm_schema.Schema.element -> corr list

val to_bipartite : t -> Uxsm_assignment.Bipartite.t
(** The correspondence graph: left = source elements, right = target
    elements, one weighted edge per correspondence. *)
