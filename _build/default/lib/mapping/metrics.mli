(** Uncertainty metrics over a set of possible mappings.

    Quantifies {e how} uncertain a schema matching is, beyond the paper's
    o-ratio: distribution entropy, per-target ambiguity, and the consensus
    mapping with its support. Useful for deciding whether human feedback is
    worth asking for (the paper's introduction: "a possible way is to
    consult domain experts") and for reporting in the CLI. *)

val entropy : Mapping_set.t -> float
(** Shannon entropy (bits) of the mapping probability distribution; 0 when
    one mapping holds all mass, [log2 |M|] when uniform. *)

val normalized_entropy : Mapping_set.t -> float
(** [entropy / log2 |M|], in [\[0, 1\]]; 0 for singleton sets. *)

val target_ambiguity : Mapping_set.t -> Uxsm_schema.Schema.element -> int
(** Number of distinct choices the mappings make for a target element:
    distinct corresponding source elements, plus one if some mapping leaves
    it unmapped. 1 means consensus; larger means contested. *)

val ambiguity_histogram : Mapping_set.t -> (int * int) list
(** [(ambiguity, how many target elements)] pairs, ascending, over target
    elements mapped by at least one mapping. *)

val consensus : Mapping_set.t -> (Uxsm_schema.Schema.element * Uxsm_schema.Schema.element * float) list
(** Per target element (that at least one mapping maps): the most probable
    source choice and its support (total probability of the mappings
    agreeing on it). The "pick the majority" baseline the paper argues can
    lose information. *)

val expected_mapping_size : Mapping_set.t -> float
(** Probability-weighted mean number of correspondences per mapping. *)
