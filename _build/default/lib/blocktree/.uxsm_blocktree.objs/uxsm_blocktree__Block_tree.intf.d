lib/blocktree/block_tree.mli: Block Format Uxsm_mapping Uxsm_schema
