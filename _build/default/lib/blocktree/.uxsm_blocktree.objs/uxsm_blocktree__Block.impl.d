lib/blocktree/block.ml: Array Format Int List Printf String Uxsm_mapping Uxsm_schema
