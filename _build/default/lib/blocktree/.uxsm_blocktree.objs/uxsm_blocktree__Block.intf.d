lib/blocktree/block.mli: Format Uxsm_mapping Uxsm_schema
