lib/blocktree/block_tree.ml: Array Block Format Fun Hashtbl List Printf Uxsm_mapping Uxsm_schema
