(** Blocks and c-blocks (Definitions 1 and 2).

    A block is a set of correspondences [b.C] shared by a set of mappings
    [b.M]. A {e constrained} block (c-block) is additionally anchored at a
    target element [b.a] whose complete subtree is covered by [b.C], with
    [|b.M| >= τ·|M|]. *)

type t = {
  anchor : Uxsm_schema.Schema.element;  (** [b.a], a target schema element *)
  corrs : (Uxsm_schema.Schema.element * Uxsm_schema.Schema.element) array;
      (** [b.C] as [(source, target)] pairs, sorted by target element; covers
          exactly the subtree rooted at [anchor] *)
  mappings : int array;  (** [b.M]: ids into the mapping set, sorted *)
}

val create :
  anchor:Uxsm_schema.Schema.element ->
  corrs:(Uxsm_schema.Schema.element * Uxsm_schema.Schema.element) list ->
  mappings:int list ->
  t

val source_of : t -> Uxsm_schema.Schema.element -> Uxsm_schema.Schema.element option
(** [source_of b y] — the source element [b.C] assigns to target element
    [y], if [y] is covered by the block (binary search). *)

val n_corrs : t -> int
val n_mappings : t -> int

val mem_mapping : t -> int -> bool
(** Whether a mapping id belongs to [b.M] (binary search). *)

val subset_of_mapping : t -> Uxsm_mapping.Mapping.t -> bool
(** Whether [b.C ⊆ m] — every correspondence of the block appears in the
    mapping (Definition 1's requirement, used by validation). *)

val validate :
  target:Uxsm_schema.Schema.t ->
  mset:Uxsm_mapping.Mapping_set.t ->
  threshold:int ->
  t ->
  (unit, string) result
(** Check Definition 2: [corrs] covers exactly the subtree of [anchor], the
    block has at least [threshold] mappings, and [b.C ⊆ m_i] for every
    [i ∈ b.M]. *)

val pp : source:Uxsm_schema.Schema.t -> target:Uxsm_schema.Schema.t -> Format.formatter -> t -> unit
