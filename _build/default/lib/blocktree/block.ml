module Schema = Uxsm_schema.Schema
module Mapping = Uxsm_mapping.Mapping
module Mapping_set = Uxsm_mapping.Mapping_set

type t = {
  anchor : Schema.element;
  corrs : (Schema.element * Schema.element) array;
  mappings : int array;
}

let create ~anchor ~corrs ~mappings =
  let corrs =
    List.sort (fun (_, t1) (_, t2) -> Int.compare t1 t2) corrs |> Array.of_list
  in
  let mappings = List.sort_uniq Int.compare mappings |> Array.of_list in
  { anchor; corrs; mappings }

let source_of b y =
  let lo = ref 0 and hi = ref (Array.length b.corrs - 1) in
  let found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let s, t = b.corrs.(mid) in
    if t = y then begin
      found := Some s;
      lo := !hi + 1
    end
    else if t < y then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let n_corrs b = Array.length b.corrs
let n_mappings b = Array.length b.mappings

let mem_mapping b id =
  let lo = ref 0 and hi = ref (Array.length b.mappings - 1) in
  let found = ref false in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if b.mappings.(mid) = id then begin
      found := true;
      lo := !hi + 1
    end
    else if b.mappings.(mid) < id then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let subset_of_mapping b m =
  Array.for_all (fun (s, t) -> Mapping.source_of m t = Some s) b.corrs

let validate ~target ~mset ~threshold b =
  let expected = Schema.subtree_elements target b.anchor in
  let covered = Array.to_list (Array.map snd b.corrs) in
  if List.sort Int.compare covered <> List.sort Int.compare expected then
    Error
      (Printf.sprintf "block at %s does not cover exactly the anchor subtree"
         (Schema.path_string target b.anchor))
  else if Array.length b.mappings < threshold then
    Error
      (Printf.sprintf "block at %s has %d mappings, below threshold %d"
         (Schema.path_string target b.anchor)
         (Array.length b.mappings) threshold)
  else begin
    let bad =
      Array.exists
        (fun id -> not (subset_of_mapping b (Mapping_set.mapping mset id)))
        b.mappings
    in
    if bad then
      Error
        (Printf.sprintf "block at %s is not a subset of all its mappings"
           (Schema.path_string target b.anchor))
    else Ok ()
  end

let pp ~source ~target fmt b =
  Format.fprintf fmt "@[<v 2>c-block @ %s:@ C: %s@ M: %s@]"
    (Schema.path_string target b.anchor)
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun (s, t) -> Schema.label source s ^ "~" ^ Schema.label target t)
             b.corrs)))
    (String.concat ", " (Array.to_list (Array.map (fun i -> "m" ^ string_of_int (i + 1)) b.mappings)))
