(** Parser for the twig query syntax of Table III.

    Grammar (whitespace-free):
    {v
      query  ::= ("/" | "//")? step ( ("/" | "//") step )*
      step   ::= name ("=" '"' text '"')? pred*
      pred   ::= "[" "." ( ("/" | "//") step )+ "]"
               | "[" "." "=" '"' text '"' "]"
    v}
    A leading [//] makes the root step bind anywhere; otherwise the root
    step is absolute (binds the document root). *)

val parse : string -> (Pattern.t, string) result
val parse_exn : string -> Pattern.t
