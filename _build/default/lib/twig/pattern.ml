type axis =
  | Child
  | Descendant

type node = {
  label : string;
  anchor : string option;
  value : string option;
  attrs : (string * string) list;
  preds : (axis * node) list;
  next : (axis * node) option;
}

let wildcard = "*"
let is_wildcard n = String.equal n.label wildcard

type t = {
  axis : axis;
  root : node;
}

let node ?anchor ?value ?(attrs = []) ?(preds = []) ?next label =
  { label; anchor; value; attrs; preds; next }
let pattern ?(axis = Child) root = { axis; root }

let branches n =
  n.preds
  @
  match n.next with
  | None -> []
  | Some b -> [ b ]

let rec node_size n = 1 + List.fold_left (fun acc (_, c) -> acc + node_size c) 0 (branches n)
let size t = node_size t.root

let rec node_list n = n :: List.concat_map (fun (_, c) -> node_list c) (branches n)
let nodes t = node_list t.root
let labels t = List.map (fun n -> n.label) (nodes t)

let axis_str = function
  | Child -> "/"
  | Descendant -> "//"

let rec node_to_buf buf n =
  Buffer.add_string buf n.label;
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf "[@";
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf v;
      Buffer.add_string buf "\"]")
    n.attrs;
  (match n.value with
  | Some v ->
    Buffer.add_string buf "=\"";
    Buffer.add_string buf v;
    Buffer.add_char buf '"'
  | None -> ());
  List.iter
    (fun (a, c) ->
      Buffer.add_string buf "[.";
      Buffer.add_string buf (axis_str a);
      node_to_buf buf c;
      Buffer.add_char buf ']')
    n.preds;
  match n.next with
  | None -> ()
  | Some (a, c) ->
    Buffer.add_string buf (axis_str a);
    node_to_buf buf c

let to_string t =
  let buf = Buffer.create 64 in
  if t.axis = Descendant then Buffer.add_string buf "//";
  node_to_buf buf t.root;
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)

let rec node_equal a b =
  String.equal a.label b.label
  && Option.equal String.equal a.anchor b.anchor
  && Option.equal String.equal a.value b.value
  && a.attrs = b.attrs
  && List.length a.preds = List.length b.preds
  && List.for_all2 (fun (x1, c1) (x2, c2) -> x1 = x2 && node_equal c1 c2) a.preds b.preds
  &&
  match (a.next, b.next) with
  | None, None -> true
  | Some (x1, c1), Some (x2, c2) -> x1 = x2 && node_equal c1 c2
  | None, Some _ | Some _, None -> false

let equal a b = a.axis = b.axis && node_equal a.root b.root
