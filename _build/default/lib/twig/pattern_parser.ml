exception Fail of string

type state = {
  input : string;
  mutable pos : int;
}

let fail st msg = raise (Fail (Printf.sprintf "at offset %d: %s" st.pos msg))
let eof st = st.pos >= String.length st.input
let peek st = if eof st then '\000' else st.input.[st.pos]

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = s

let eat st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else fail st (Printf.sprintf "expected %S" s)

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '-'

let parse_name st =
  if looking_at st "*" then begin
    eat st "*";
    Pattern.wildcard
  end
  else begin
    let start = st.pos in
    while (not (eof st)) && is_name_char (peek st) do
      st.pos <- st.pos + 1
    done;
    if st.pos = start then fail st "expected an element name";
    String.sub st.input start (st.pos - start)
  end

let parse_axis st =
  if looking_at st "//" then begin
    eat st "//";
    Some Pattern.Descendant
  end
  else if looking_at st "/" then begin
    eat st "/";
    Some Pattern.Child
  end
  else None

let parse_quoted st =
  eat st "\"";
  let start = st.pos in
  while (not (eof st)) && peek st <> '"' do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.input start (st.pos - start) in
  eat st "\"";
  text

(* step ::= name ("=" quoted)? pred*  followed by an optional axis chain,
   which the caller decides how to attach. *)
let rec parse_chain st : Pattern.node =
  let label = parse_name st in
  let value =
    if looking_at st "=" then begin
      eat st "=";
      Some (parse_quoted st)
    end
    else None
  in
  let preds = ref [] in
  let attrs = ref [] in
  while looking_at st "[" do
    if looking_at st "[@" then begin
      eat st "[@";
      let key = parse_name st in
      eat st "=";
      let v = parse_quoted st in
      eat st "]";
      attrs := (key, v) :: !attrs
    end
    else preds := parse_pred st :: !preds
  done;
  let next =
    match parse_axis st with
    | None -> None
    | Some a -> Some (a, parse_chain st)
  in
  { Pattern.label; anchor = None; value; attrs = List.rev !attrs; preds = List.rev !preds; next }

and parse_pred st : Pattern.axis * Pattern.node =
  eat st "[";
  eat st ".";
  let branch =
    match parse_axis st with
    | Some a -> (a, parse_chain st)
    | None ->
      (* [.="text"] — a value predicate on the current node is expressed as
         a self branch; we reject it here because the grammar attaches text
         predicates directly to steps (City="HK"). *)
      fail st "expected '/' or '//' after '.'"
  in
  eat st "]";
  branch

let parse_exn input =
  if String.trim input <> input || input = "" then invalid_arg "Pattern_parser.parse_exn";
  let st = { input; pos = 0 } in
  let axis =
    match parse_axis st with
    | Some Pattern.Descendant -> Pattern.Descendant
    | Some Pattern.Child | None -> Pattern.Child
  in
  let root = parse_chain st in
  if not (eof st) then fail st "trailing characters after query";
  { Pattern.axis; root }

let parse input =
  match parse_exn input with
  | p -> Ok p
  | exception Fail msg -> Error msg
  | exception Invalid_argument msg -> Error msg
