lib/twig/matcher.mli: Binding Pattern Uxsm_xml
