lib/twig/binding.mli: Format Uxsm_xml
