lib/twig/twiglist.mli: Binding Pattern Uxsm_xml
