lib/twig/pattern_parser.ml: List Pattern Printf String
