lib/twig/pattern.mli: Format
