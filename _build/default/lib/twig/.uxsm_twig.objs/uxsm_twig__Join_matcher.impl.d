lib/twig/join_matcher.ml: Array Binding Fun List Pattern String Structural_join Uxsm_xml
