lib/twig/structural_join.ml: Array Binding Hashtbl Int List Pattern Uxsm_xml
