lib/twig/pattern.ml: Buffer Format List Option String
