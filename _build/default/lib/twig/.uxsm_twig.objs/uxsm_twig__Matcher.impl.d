lib/twig/matcher.ml: Array Binding Fun Hashtbl List Pattern String Uxsm_xml
