lib/twig/binding.ml: Array Format Stdlib String
