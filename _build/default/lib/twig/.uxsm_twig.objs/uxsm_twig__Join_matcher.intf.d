lib/twig/join_matcher.mli: Binding Pattern Uxsm_xml
