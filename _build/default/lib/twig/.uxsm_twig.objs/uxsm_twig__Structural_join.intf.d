lib/twig/structural_join.mli: Binding Pattern Uxsm_xml
