lib/twig/pattern_parser.mli: Pattern
