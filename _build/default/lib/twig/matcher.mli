(** Twig pattern matching over indexed documents.

    A match binds every pattern node to a document element such that labels
    and text predicates hold and the structural relationships ([/], [//])
    are satisfied (the paper's Section IV-A definition). The engine is a
    memoized top-down enumerator over the label-indexed document; it is the
    [match(d, q_S)] primitive of Algorithms 3–4. *)

val matches : Pattern.t -> Uxsm_xml.Doc.t -> Binding.t list
(** All matches, in document order of the root binding (then lexicographic).
    With [Pattern.axis = Child] the root step binds only the document root;
    with [Descendant] it binds any element with the right label. *)

val count : Pattern.t -> Uxsm_xml.Doc.t -> int
(** Number of matches (no binding materialization). *)

val exists : Pattern.t -> Uxsm_xml.Doc.t -> bool
