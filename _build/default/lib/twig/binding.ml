type t = int array

let compare = Stdlib.compare
let equal a b = compare a b = 0
let root_node (b : t) = b.(0)

let merge a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Binding.merge: size mismatch";
  Array.init n (fun i ->
      match (a.(i), b.(i)) with
      | v, -1 -> v
      | -1, v -> v
      | _, _ -> invalid_arg "Binding.merge: overlapping bindings")

let unbound l = Array.make l (-1)

let pp fmt (b : t) =
  Format.fprintf fmt "[%s]"
    (String.concat "; " (Array.to_list (Array.map string_of_int b)))
