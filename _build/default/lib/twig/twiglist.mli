(** TwigList-style holistic twig matching (Qin, Yu, Ding, DASFAA 2007 —
    the paper's [9], which its [match(d, q_S)] primitive builds on).

    All candidate streams are scanned once in document order with a stack
    of open elements; each query node accumulates a {e list} of surviving
    candidates, and every list entry keeps, per query branch, the interval
    of child-list entries that lie inside its subtree. Matches are then
    enumerated directly from the interval structure. Compared to the
    memoized top-down {!Matcher} and the join-plan {!Join_matcher}, this
    engine does one pass over the candidates regardless of query shape.

    Produces exactly {!Matcher.matches} (a tested property). *)

val matches : Pattern.t -> Uxsm_xml.Doc.t -> Binding.t list
(** Same contract as {!Matcher.matches}. *)

val count : Pattern.t -> Uxsm_xml.Doc.t -> int
