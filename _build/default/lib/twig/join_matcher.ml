module Doc = Uxsm_xml.Doc

let matches (p : Pattern.t) doc =
  let n = Pattern.size p in
  (* Pre-order ids assigned on the fly; children are always evaluated (even
     under an empty parent set) to keep the numbering aligned with
     Pattern.nodes. *)
  let counter = ref 0 in
  let rec eval (node : Pattern.node) ~is_root : Binding.t list =
    let q = !counter in
    incr counter;
    let pool =
      match node.Pattern.anchor with
      | Some path -> Doc.nodes_with_path doc path
      | None ->
        if Pattern.is_wildcard node then List.init (Doc.size doc) Fun.id
        else Doc.nodes_with_label doc node.Pattern.label
    in
    let pool =
      if is_root && p.Pattern.axis = Pattern.Child then
        List.filter (fun v -> v = Doc.root doc) pool
      else pool
    in
    let candidates =
      List.filter
        (fun v ->
          (match node.Pattern.value with
          | Some t -> String.equal (Doc.text doc v) t
          | None -> true)
          && List.for_all
               (fun (k, want) -> Doc.attr doc v k = Some want)
               node.Pattern.attrs)
        pool
    in
    let base =
      List.map
        (fun v ->
          let b = Binding.unbound n in
          b.(q) <- v;
          b)
        candidates
    in
    List.fold_left
      (fun acc (axis, child) ->
        let child_col = !counter in
        let child_bindings = eval child ~is_root:false in
        Structural_join.join_bindings doc ~axis ~left:acc ~left_col:q ~right:child_bindings
          ~right_col:child_col)
      base (Pattern.branches node)
  in
  eval p.Pattern.root ~is_root:true |> List.sort Binding.compare

let count p doc = List.length (matches p doc)
