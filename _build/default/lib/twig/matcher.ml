module Doc = Uxsm_xml.Doc

type indexed = {
  labels : string array;
  anchors : string option array;
  values : string option array;
  attr_preds : (string * string) list array;
  branches : (Pattern.axis * int) array array;
  n : int;
}

let index (p : Pattern.t) =
  let nodes = Pattern.nodes p in
  let n = List.length nodes in
  let labels = Array.make n "" in
  let anchors = Array.make n None in
  let values = Array.make n None in
  let attr_preds = Array.make n [] in
  let branches = Array.make n [||] in
  (* Assign pre-order ids exactly as Pattern.nodes does. *)
  let next = ref 0 in
  let rec go (node : Pattern.node) =
    let id = !next in
    incr next;
    labels.(id) <- node.Pattern.label;
    anchors.(id) <- node.Pattern.anchor;
    values.(id) <- node.Pattern.value;
    attr_preds.(id) <- node.Pattern.attrs;
    let kids = List.map (fun (a, c) -> (a, go c)) (Pattern.branches node) in
    branches.(id) <- Array.of_list kids;
    id
  in
  ignore (go p.Pattern.root);
  { labels; anchors; values; attr_preds; branches; n }

let candidates doc axis v label anchor =
  match (anchor, axis) with
  | Some path, Pattern.Child ->
    List.filter (fun u -> Doc.is_parent doc v u) (Doc.nodes_with_path doc path)
  | Some path, Pattern.Descendant ->
    let e = Doc.subtree_end doc v in
    List.filter (fun u -> u > v && u <= e) (Doc.nodes_with_path doc path)
  | None, Pattern.Child ->
    if String.equal label Pattern.wildcard then Doc.children doc v
    else List.filter (fun u -> String.equal (Doc.label doc u) label) (Doc.children doc v)
  | None, Pattern.Descendant ->
    let e = Doc.subtree_end doc v in
    if String.equal label Pattern.wildcard then List.init (e - v) (fun i -> v + 1 + i)
    else List.filter (fun u -> u > v && u <= e) (Doc.nodes_with_label doc label)

(* Enumerate the bindings of the pattern subtree rooted at [pid] when it is
   bound to document node [v]; memoized on (pid, v). *)
let enum_with idx doc =
  let memo : (int * int, Binding.t list) Hashtbl.t = Hashtbl.create 256 in
  let rec enum pid v =
    match Hashtbl.find_opt memo (pid, v) with
    | Some r -> r
    | None ->
      let r = compute pid v in
      Hashtbl.add memo (pid, v) r;
      r
  and compute pid v =
    if
      (not (String.equal idx.labels.(pid) Pattern.wildcard))
      && not (String.equal idx.labels.(pid) (Doc.label doc v))
    then []
    else if
      not
        (List.for_all
           (fun (k, want) -> Doc.attr doc v k = Some want)
           idx.attr_preds.(pid))
    then []
    else if
      match idx.anchors.(pid) with
      | Some path -> not (String.equal path (String.concat "." (Doc.path doc v)))
      | None -> false
    then []
    else if
      match idx.values.(pid) with
      | Some value -> not (String.equal (Doc.text doc v) value)
      | None -> false
    then []
    else begin
      let base = Binding.unbound idx.n in
      base.(pid) <- v;
      let step acc (axis, cid) =
        match acc with
        | [] -> []
        | _ ->
          let subs =
            List.concat_map (enum cid)
              (candidates doc axis v idx.labels.(cid) idx.anchors.(cid))
          in
          if subs = [] then []
          else List.concat_map (fun a -> List.map (Binding.merge a) subs) acc
      in
      Array.fold_left step [ base ] idx.branches.(pid)
    end
  in
  enum

let root_candidates (p : Pattern.t) doc =
  match (p.Pattern.root.Pattern.anchor, p.Pattern.axis) with
  | Some path, _ -> Doc.nodes_with_path doc path
  | None, Pattern.Child -> [ Doc.root doc ]
  | None, Pattern.Descendant ->
    if Pattern.is_wildcard p.Pattern.root then List.init (Doc.size doc) Fun.id
    else Doc.nodes_with_label doc p.Pattern.root.Pattern.label

let matches p doc =
  let idx = index p in
  let enum = enum_with idx doc in
  List.concat_map (enum 0) (root_candidates p doc) |> List.sort Binding.compare

let count p doc = List.length (matches p doc)
let exists p doc = matches p doc <> []
