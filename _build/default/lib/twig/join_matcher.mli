(** A second twig evaluator built entirely from binary structural joins —
    the classical join-plan approach of Al-Khalifa et al. that the paper's
    [stack_join] primitive comes from.

    Each query node's candidate list (by label, anchor and value predicate)
    is joined bottom-up along the pattern's edges with the stack-based
    structural join. Produces exactly {!Matcher.matches} (a tested
    property); exists both as an algorithmic cross-check and because its
    cost profile differs: {!Matcher} enumerates top-down with memoization
    (good when the root is selective), this engine is join-at-a-time (good
    when intermediate results are small). *)

val matches : Pattern.t -> Uxsm_xml.Doc.t -> Binding.t list
(** Same contract as {!Matcher.matches}. *)

val count : Pattern.t -> Uxsm_xml.Doc.t -> int
