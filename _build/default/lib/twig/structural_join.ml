module Doc = Uxsm_xml.Doc

let node_pairs doc ~axis ~left ~right =
  let la = Array.of_list left and ra = Array.of_list right in
  let nl = Array.length la and nr = Array.length ra in
  let stack = ref [] in
  let out = ref [] in
  let ai = ref 0 in
  let pop_ended_before pre =
    while
      match !stack with
      | top :: _ -> Doc.subtree_end doc top < pre
      | [] -> false
    do
      stack := List.tl !stack
    done
  in
  for di = 0 to nr - 1 do
    let d = ra.(di) in
    (* Push every left node starting at or before d; the stack keeps only
       the chain of intervals still open at d. *)
    while !ai < nl && la.(!ai) <= d do
      pop_ended_before la.(!ai);
      stack := la.(!ai) :: !stack;
      incr ai
    done;
    pop_ended_before d;
    (* Stack now holds exactly the left nodes whose interval contains d. *)
    List.iter
      (fun a ->
        if a <> d then
          match axis with
          | Pattern.Descendant -> out := (a, d) :: !out
          | Pattern.Child -> if Doc.level doc d = Doc.level doc a + 1 then out := (a, d) :: !out)
      !stack
  done;
  List.rev !out

let group_by_column col bindings =
  let tbl : (int, Binding.t list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (b : Binding.t) ->
      let v = b.(col) in
      let prev = try Hashtbl.find tbl v with Not_found -> [] in
      Hashtbl.replace tbl v (b :: prev))
    bindings;
  tbl

let join_bindings doc ~axis ~left ~left_col ~right ~right_col =
  match (left, right) with
  | [], _ | _, [] -> []
  | _ ->
    let left_tbl = group_by_column left_col left in
    let right_tbl = group_by_column right_col right in
    let sorted tbl = List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl []) in
    let pairs = node_pairs doc ~axis ~left:(sorted left_tbl) ~right:(sorted right_tbl) in
    List.concat_map
      (fun (a, d) ->
        let ls = Hashtbl.find left_tbl a and rs = Hashtbl.find right_tbl d in
        List.concat_map (fun l -> List.map (Binding.merge l) rs) ls)
      pairs
