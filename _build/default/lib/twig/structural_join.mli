(** Stack-based binary structural join (Al-Khalifa et al., ICDE 2002).

    Joins two lists of document nodes on an ancestor-descendant (or
    parent-child) relationship in a single merge pass over their pre-order
    intervals, with a stack holding the current chain of nested ancestors.
    This is the [stack_join] primitive of Algorithm 4. *)

val node_pairs :
  Uxsm_xml.Doc.t ->
  axis:Pattern.axis ->
  left:Uxsm_xml.Doc.node list ->
  right:Uxsm_xml.Doc.node list ->
  (Uxsm_xml.Doc.node * Uxsm_xml.Doc.node) list
(** [node_pairs doc ~axis ~left ~right] — all [(a, d)] with [a ∈ left],
    [d ∈ right] and [a] a strict ancestor ([Descendant]) or the parent
    ([Child]) of [d]. Inputs must be sorted ascending (document order);
    duplicates are allowed and join independently. Output is sorted by
    descendant, then ancestor. *)

val join_bindings :
  Uxsm_xml.Doc.t ->
  axis:Pattern.axis ->
  left:Binding.t list ->
  left_col:int ->
  right:Binding.t list ->
  right_col:int ->
  Binding.t list
(** Join two binding sets on a structural relationship between the document
    nodes in their respective columns: the result contains
    [Binding.merge l r] for every pair where [l.(left_col)] is an ancestor
    ([Descendant]) or the parent ([Child]) of [r.(right_col)]. This is the
    binding-level wrapper every twig evaluator shares. *)
