(** Bindings: one match of a twig pattern in a document.

    Pattern nodes are numbered in pre-order ({!Pattern.nodes} order); a
    binding maps each pattern-node id to the document element it matched. *)

type t = int array
(** [t.(i)] is the document node bound to pattern node [i]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val root_node : t -> Uxsm_xml.Doc.node
(** The document node bound to the pattern root (id 0). *)

val merge : t -> t -> t
(** Combine two bindings over disjoint pattern-node sets (entries are [-1]
    where unbound); raises [Invalid_argument] if both bind the same id. *)

val unbound : int -> t
(** [unbound l] — a fresh binding of size [l] with no assignments. *)

val pp : Format.formatter -> t -> unit
