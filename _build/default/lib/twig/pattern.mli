(** Twig patterns: small tree-shaped XPath queries with child ([/]) and
    descendant ([//]) axes, existence predicates ([\[./City\]]) and text
    equality predicates ([\[./City="HK"\]]).

    A node's [preds] and [next] links are semantically identical (every
    branch must match); they are kept apart only to preserve the original
    bracket syntax when printing. *)

type axis =
  | Child  (** [/] — parent-child *)
  | Descendant  (** [//] — ancestor-descendant (strict) *)

type node = {
  label : string;
      (** element name, or {!wildcard} ([*]) to match any element *)
  anchor : string option;
      (** optional schema anchor: when present, the node binds only document
          elements whose root-to-node label path equals this ['.']-joined
          path. Queries produced by rewriting through a mapping are anchored
          to the source elements the mapping names, which disambiguates
          repeated labels (a document conforming to the source schema has
          one path per schema element). The parser never sets it. *)
  value : string option;  (** text-equality predicate on this node *)
  attrs : (string * string) list;
      (** attribute-equality predicates ([\[@key="v"\]]), all must hold *)
  preds : (axis * node) list;  (** bracketed branches *)
  next : (axis * node) option;  (** main-path continuation *)
}

val wildcard : string
(** The wildcard label ["*"]. *)

val is_wildcard : node -> bool

type t = {
  axis : axis;
      (** axis of the root step relative to the document root: [Child] means
          the root step must bind the document's root element (an absolute
          path like [Order/...]); [Descendant] a [//...] query *)
  root : node;
}

val node :
  ?anchor:string ->
  ?value:string ->
  ?attrs:(string * string) list ->
  ?preds:(axis * node) list ->
  ?next:axis * node ->
  string ->
  node
val pattern : ?axis:axis -> node -> t

val branches : node -> (axis * node) list
(** [preds @ next] — all sub-branches, in syntax order. *)

val size : t -> int
(** Number of query nodes ([l] in Definition 4). *)

val labels : t -> string list
(** Labels of all query nodes, in pre-order. *)

val nodes : t -> node list
(** All query nodes in pre-order (the root first). *)

val to_string : t -> string
(** Render back to query syntax, e.g.
    ["Order\[./Buyer/Contact\]//BPID"]. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
