type t =
  | Element of element
  | Text of string

and element = {
  name : string;
  attrs : (string * string) list;
  children : t list;
}

let element ?(attrs = []) name children = Element { name; attrs; children }
let text s = Text s
let leaf name value = element name [ text value ]

let name = function
  | Element e -> e.name
  | Text _ -> invalid_arg "Tree.name: text node"

let rec node_count = function
  | Text _ -> 0
  | Element e -> 1 + List.fold_left (fun acc c -> acc + node_count c) 0 e.children

let text_content t =
  let buf = Buffer.create 32 in
  let rec go = function
    | Text s -> Buffer.add_string buf s
    | Element e -> List.iter go e.children
  in
  go t;
  Buffer.contents buf

let rec equal a b =
  match (a, b) with
  | Text x, Text y -> String.equal x y
  | Element x, Element y ->
    String.equal x.name y.name
    && List.length x.attrs = List.length y.attrs
    && List.for_all2 (fun (k, v) (k', v') -> String.equal k k' && String.equal v v') x.attrs y.attrs
    && List.length x.children = List.length y.children
    && List.for_all2 equal x.children y.children
  | Text _, Element _ | Element _, Text _ -> false

let rec map_names f = function
  | Text s -> Text s
  | Element e -> Element { e with name = f e.name; children = List.map (map_names f) e.children }
