(** Serialization of {!Tree.t} back to XML text. *)

val escape_text : string -> string
(** Escape ampersand and angle brackets for character data. *)

val escape_attr : string -> string
(** Escape ampersand, left angle bracket and double quote for double-quoted
    attribute values. *)

val to_string : ?indent:int -> Tree.t -> string
(** Serialize a tree. With [indent] (spaces per level), element-only content
    is pretty-printed; mixed content is kept inline so that a parse/print
    round-trip preserves text exactly. Default: compact (no indentation). *)

val to_buffer : ?indent:int -> Buffer.t -> Tree.t -> unit

val pp : Format.formatter -> Tree.t -> unit
(** Pretty-printer with 2-space indentation, for debugging and tests. *)
