let escape gen s =
  if String.for_all (fun c -> gen c = None) s then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match gen c with
        | Some rep -> Buffer.add_string buf rep
        | None -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let escape_text =
  escape (function
    | '&' -> Some "&amp;"
    | '<' -> Some "&lt;"
    | '>' -> Some "&gt;"
    | _ -> None)

let escape_attr =
  escape (function
    | '&' -> Some "&amp;"
    | '<' -> Some "&lt;"
    | '"' -> Some "&quot;"
    | _ -> None)

let add_attrs buf attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape_attr v);
      Buffer.add_char buf '"')
    attrs

let has_text_child children =
  List.exists
    (function
      | Tree.Text _ -> true
      | Tree.Element _ -> false)
    children

let to_buffer ?indent buf tree =
  let rec go depth t =
    match t with
    | Tree.Text s -> Buffer.add_string buf (escape_text s)
    | Tree.Element { name; attrs; children } ->
      let pad n =
        match indent with
        | Some w -> Buffer.add_string buf (String.make (n * w) ' ')
        | None -> ()
      in
      let newline () = if indent <> None then Buffer.add_char buf '\n' in
      pad depth;
      Buffer.add_char buf '<';
      Buffer.add_string buf name;
      add_attrs buf attrs;
      if children = [] then Buffer.add_string buf "/>"
      else if has_text_child children then begin
        (* Mixed or text content: keep inline to preserve whitespace. *)
        Buffer.add_char buf '>';
        List.iter go_inline children;
        Buffer.add_string buf "</";
        Buffer.add_string buf name;
        Buffer.add_char buf '>'
      end
      else begin
        Buffer.add_char buf '>';
        newline ();
        List.iter
          (fun c ->
            go (depth + 1) c;
            newline ())
          children;
        pad depth;
        Buffer.add_string buf "</";
        Buffer.add_string buf name;
        Buffer.add_char buf '>'
      end
  and go_inline t =
    match t with
    | Tree.Text s -> Buffer.add_string buf (escape_text s)
    | Tree.Element { name; attrs; children } ->
      Buffer.add_char buf '<';
      Buffer.add_string buf name;
      add_attrs buf attrs;
      if children = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        List.iter go_inline children;
        Buffer.add_string buf "</";
        Buffer.add_string buf name;
        Buffer.add_char buf '>'
      end
  in
  go 0 tree

let to_string ?indent tree =
  let buf = Buffer.create 256 in
  to_buffer ?indent buf tree;
  Buffer.contents buf

let pp fmt tree = Format.pp_print_string fmt (to_string ~indent:2 tree)
