(** Probabilistic XML documents, in the independent-existence model
    (ProTDB-style "ind" nodes; cf. Kimelfeld et al., the paper's [20]).

    Each element node carries the probability that it exists {e given} its
    parent exists; the root always exists. Node existences are independent
    conditioned on ancestors, so the probability that a set of nodes
    coexists is the product of the conditional probabilities over the
    ancestor closure of the set. This is the document-uncertainty substrate
    for evaluating PTQs over uncertain documents {e and} uncertain
    mappings, one of the paper's future-work combinations. *)

type t

val deterministic : Doc.t -> t
(** Every node exists with probability 1 — queries over it coincide with
    ordinary evaluation. *)

val randomize : prng:Uxsm_util.Prng.t -> ?p_min:float -> ?p_max:float -> Doc.t -> t
(** Independent conditional probabilities drawn uniformly from
    [\[p_min, p_max\]] (defaults 0.7, 1.0); the root is kept at 1. *)

val of_probs : Doc.t -> float array -> t
(** Explicit conditional probabilities, indexed by document node. Raises
    [Invalid_argument] on wrong length, probabilities outside [\[0, 1\]],
    or a root probability other than 1. *)

val doc : t -> Doc.t

val cond_prob : t -> Doc.node -> float
(** Existence probability given the parent exists. *)

val marginal_prob : t -> Doc.node -> float
(** Unconditional existence probability: product along the root path. *)

val coexistence_prob : t -> Doc.node list -> float
(** Probability that all listed nodes exist simultaneously: the product of
    conditional probabilities over the union of their root paths. 1 for the
    empty list. *)
