(** Plain XML trees: the construction / interchange representation.

    A [Tree.t] is what the parser produces and the printer consumes. For
    query evaluation it is converted to the indexed {!Doc.t} form. *)

type t =
  | Element of element
  | Text of string

and element = {
  name : string;  (** tag name *)
  attrs : (string * string) list;  (** attributes in document order *)
  children : t list;  (** child nodes in document order *)
}

val element : ?attrs:(string * string) list -> string -> t list -> t
(** [element name children] builds an element node. *)

val text : string -> t
(** Text node. *)

val leaf : string -> string -> t
(** [leaf name value] is [element name [text value]]. *)

val name : t -> string
(** Tag name of an element; [Invalid_argument] on text nodes. *)

val node_count : t -> int
(** Number of element nodes in the tree (text nodes not counted). *)

val text_content : t -> string
(** Concatenation of all descendant text, in document order. *)

val equal : t -> t -> bool
(** Structural equality (attribute order significant). *)

val map_names : (string -> string) -> t -> t
(** Rename every element via the given function. *)
