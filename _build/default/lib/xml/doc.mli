(** Indexed XML documents.

    A [Doc.t] numbers the element nodes of a {!Tree.t} in pre-order and
    carries the region encoding [(pre, post, level)] used by structural joins
    (Al-Khalifa et al., ICDE 2002): node [a] is an ancestor of node [b] iff
    [pre a < pre b && post a > post b]. Text content is materialized per
    element for predicate evaluation. *)

type t

type node = int
(** Element-node identifier: the pre-order rank, in [\[0, size t)]. *)

val of_tree : Tree.t -> t
(** Index a tree. The root must be an element node. *)

val root : t -> node
val size : t -> int

val label : t -> node -> string
val parent : t -> node -> node option
val children : t -> node -> node list
val level : t -> node -> int
(** Depth; the root has level 0. *)

val post : t -> node -> int
(** Post-order rank. *)

val subtree_end : t -> node -> int
(** Largest pre-order id inside the node's subtree; with the node id itself
    this forms the interval encoding used by structural joins:
    [is_ancestor t a b  <=>  a < b && b <= subtree_end t a]. *)

val text : t -> node -> string
(** Concatenated descendant text of the element. *)

val attrs : t -> node -> (string * string) list
(** The element's attributes, in document order. *)

val attr : t -> node -> string -> string option
(** One attribute's value. *)

val is_ancestor : t -> node -> node -> bool
(** [is_ancestor t a b] — strict ancestorship. *)

val is_parent : t -> node -> node -> bool
(** [is_parent t a b] — [a] is the parent of [b]. *)

val nodes_with_label : t -> string -> node list
(** All element nodes carrying the given tag name, in document order. *)

val nodes_with_path : t -> string -> node list
(** All element nodes whose root-to-node label path equals the given
    ['.']-joined path, in document order. For a document conforming to a
    schema, these are exactly the instances of the schema element with that
    path. *)

val labels : t -> string list
(** Distinct tag names occurring in the document, sorted. *)

val subtree : t -> node -> Tree.t
(** Re-extract the subtree rooted at a node as a plain tree. *)

val path : t -> node -> string list
(** Root-to-node label path, e.g. [\["Order"; "DeliverTo"; "City"\]]. *)
