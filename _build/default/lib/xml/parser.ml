type error = {
  position : int;
  line : int;
  column : int;
  message : string;
}

let error_to_string e = Printf.sprintf "XML parse error at line %d, column %d: %s" e.line e.column e.message

exception Parse_error of error

type state = {
  input : string;
  mutable pos : int;
}

let line_col input pos =
  let line = ref 1 and col = ref 1 in
  for i = 0 to min (pos - 1) (String.length input - 1) do
    if input.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let fail st message =
  let line, column = line_col st.input st.pos in
  raise (Parse_error { position = st.pos; line; column; message })

let eof st = st.pos >= String.length st.input
let peek st = if eof st then '\000' else st.input.[st.pos]
let advance st = st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = s

let expect st s = if looking_at st s then st.pos <- st.pos + String.length s else fail st (Printf.sprintf "expected %S" s)

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_spaces st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

(* Decode an entity or character reference starting after '&'. *)
let parse_reference st buf =
  if looking_at st "#x" || looking_at st "#X" then begin
    st.pos <- st.pos + 2;
    let start = st.pos in
    while (not (eof st)) && peek st <> ';' do
      advance st
    done;
    let hex = String.sub st.input start (st.pos - start) in
    expect st ";";
    match int_of_string_opt ("0x" ^ hex) with
    | Some code when code > 0 && code < 128 -> Buffer.add_char buf (Char.chr code)
    | Some code ->
      (* Encode non-ASCII as UTF-8. *)
      let b = Buffer.create 4 in
      Buffer.add_utf_8_uchar b (Uchar.of_int code);
      Buffer.add_buffer buf b
    | None -> fail st "invalid hexadecimal character reference"
  end
  else if looking_at st "#" then begin
    advance st;
    let start = st.pos in
    while (not (eof st)) && peek st <> ';' do
      advance st
    done;
    let dec = String.sub st.input start (st.pos - start) in
    expect st ";";
    match int_of_string_opt dec with
    | Some code when code > 0 && code < 128 -> Buffer.add_char buf (Char.chr code)
    | Some code ->
      let b = Buffer.create 4 in
      Buffer.add_utf_8_uchar b (Uchar.of_int code);
      Buffer.add_buffer buf b
    | None -> fail st "invalid decimal character reference"
  end
  else begin
    let name = parse_name st in
    expect st ";";
    match name with
    | "lt" -> Buffer.add_char buf '<'
    | "gt" -> Buffer.add_char buf '>'
    | "amp" -> Buffer.add_char buf '&'
    | "quot" -> Buffer.add_char buf '"'
    | "apos" -> Buffer.add_char buf '\''
    | other -> fail st (Printf.sprintf "unknown entity &%s;" other)
  end

let parse_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted attribute value";
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then fail st "unterminated attribute value"
    else
      let c = peek st in
      if c = quote then advance st
      else if c = '&' then begin
        advance st;
        parse_reference st buf;
        go ()
      end
      else if c = '<' then fail st "'<' in attribute value"
      else begin
        Buffer.add_char buf c;
        advance st;
        go ()
      end
  in
  go ();
  Buffer.contents buf

let skip_comment st =
  expect st "<!--";
  let rec go () =
    if eof st then fail st "unterminated comment"
    else if looking_at st "-->" then st.pos <- st.pos + 3
    else begin
      advance st;
      go ()
    end
  in
  go ()

let skip_pi st =
  expect st "<?";
  let rec go () =
    if eof st then fail st "unterminated processing instruction"
    else if looking_at st "?>" then st.pos <- st.pos + 2
    else begin
      advance st;
      go ()
    end
  in
  go ()

let skip_doctype st =
  expect st "<!DOCTYPE";
  (* Skip to the matching '>' (internal subsets in brackets are skipped too). *)
  let depth = ref 0 in
  let rec go () =
    if eof st then fail st "unterminated DOCTYPE"
    else begin
      let c = peek st in
      advance st;
      if c = '[' then begin
        incr depth;
        go ()
      end
      else if c = ']' then begin
        decr depth;
        go ()
      end
      else if c = '>' && !depth = 0 then ()
      else go ()
    end
  in
  go ()

let parse_cdata st buf =
  expect st "<![CDATA[";
  let rec go () =
    if eof st then fail st "unterminated CDATA section"
    else if looking_at st "]]>" then st.pos <- st.pos + 3
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ()

let rec parse_element st =
  expect st "<";
  let name = parse_name st in
  let rec parse_attrs acc =
    skip_spaces st;
    if looking_at st "/>" then begin
      st.pos <- st.pos + 2;
      (List.rev acc, true)
    end
    else if looking_at st ">" then begin
      advance st;
      (List.rev acc, false)
    end
    else begin
      let attr_name = parse_name st in
      skip_spaces st;
      expect st "=";
      skip_spaces st;
      let value = parse_attr_value st in
      parse_attrs ((attr_name, value) :: acc)
    end
  in
  let attrs, self_closing = parse_attrs [] in
  if self_closing then Tree.Element { name; attrs; children = [] }
  else begin
    let children = parse_content st in
    expect st "</";
    let close = parse_name st in
    if not (String.equal close name) then
      fail st (Printf.sprintf "mismatched closing tag </%s> for <%s>" close name);
    skip_spaces st;
    expect st ">";
    Tree.Element { name; attrs; children }
  end

and parse_content st =
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      let s = Buffer.contents buf in
      Buffer.clear buf;
      if String.exists (fun c -> not (is_space c)) s then out := Tree.Text s :: !out
    end
  in
  let rec go () =
    if eof st then fail st "unexpected end of input inside element"
    else if looking_at st "</" then flush_text ()
    else if looking_at st "<!--" then begin
      flush_text ();
      skip_comment st;
      go ()
    end
    else if looking_at st "<![CDATA[" then begin
      parse_cdata st buf;
      go ()
    end
    else if looking_at st "<?" then begin
      flush_text ();
      skip_pi st;
      go ()
    end
    else if looking_at st "<" then begin
      flush_text ();
      let child = parse_element st in
      out := child :: !out;
      go ()
    end
    else if looking_at st "&" then begin
      advance st;
      parse_reference st buf;
      go ()
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  List.rev !out

let skip_misc st =
  let rec go () =
    skip_spaces st;
    if looking_at st "<?" then begin
      skip_pi st;
      go ()
    end
    else if looking_at st "<!--" then begin
      skip_comment st;
      go ()
    end
    else if looking_at st "<!DOCTYPE" then begin
      skip_doctype st;
      go ()
    end
  in
  go ()

let parse_exn input =
  let st = { input; pos = 0 } in
  skip_misc st;
  if eof st then fail st "empty document";
  let root = parse_element st in
  skip_misc st;
  if not (eof st) then fail st "trailing content after root element";
  root

let parse input =
  match parse_exn input with
  | tree -> Ok tree
  | exception Parse_error e -> Error e
