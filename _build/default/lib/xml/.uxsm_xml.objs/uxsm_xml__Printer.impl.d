lib/xml/printer.ml: Buffer Format List String Tree
