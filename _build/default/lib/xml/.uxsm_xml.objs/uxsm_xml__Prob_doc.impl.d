lib/xml/prob_doc.ml: Array Doc Hashtbl List Uxsm_util
