lib/xml/doc.ml: Array Hashtbl List Tree
