lib/xml/printer.mli: Buffer Format Tree
