lib/xml/doc.mli: Tree
