lib/xml/prob_doc.mli: Doc Uxsm_util
