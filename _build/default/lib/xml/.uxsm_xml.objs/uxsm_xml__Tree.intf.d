lib/xml/tree.mli:
