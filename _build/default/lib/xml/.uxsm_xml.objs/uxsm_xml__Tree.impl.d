lib/xml/tree.ml: Buffer List String
