(** A small hand-written XML parser.

    Supports the subset needed for schema/document interchange: elements,
    attributes, character data, CDATA sections, comments, processing
    instructions and the XML declaration (skipped), and the five predefined
    entities plus decimal/hex character references. DTDs and namespaces are
    out of scope: qualified names are kept verbatim. *)

type error = {
  position : int;  (** byte offset into the input *)
  line : int;  (** 1-based line *)
  column : int;  (** 1-based column *)
  message : string;
}

val error_to_string : error -> string

exception Parse_error of error

val parse : string -> (Tree.t, error) result
(** Parse one document (a single root element, optionally preceded or
    followed by misc whitespace/comments/PIs). *)

val parse_exn : string -> Tree.t
(** Like {!parse} but raises {!Parse_error}. *)
