(* Square perfect-matching formulation (the paper's Figure 7):

     left side  = sources  s_0..s_{nl-1}  ++  target images t'_0..t'_{nr-1}
     right side = targets  t_0..t_{nr-1}  ++  source images s'_0..s'_{nl-1}

   Edges: real correspondences (s_i, t_j, w); zero-weight (s_i, s'_i) and
   (t'_j, t_j); and a zero-weight mirror (t'_j, s'_i) for every real edge so
   that a perfect matching exists for every injective partial real mapping.
   Perfect matchings keep the matching residual graph free of right-side
   slack, which is what makes Murty's one-augmentation warm restart sound. *)

type state = {
  match_l : int array;  (* extended left -> extended right, -1 = free *)
  match_r : int array;  (* extended right -> extended left, -1 = free *)
  pot : float array;  (* Johnson potentials: extended lefts then rights *)
}

type constraints = {
  forbidden : (int, unit) Hashtbl.t;
  committed_l : bool array;
  committed_r : bool array;
}

let n_side g = Bipartite.n_left g + Bipartite.n_right g
let image_of g i = Bipartite.n_right g + i
let encode g i extj = (i * n_side g) + extj

let no_constraints g =
  let n = n_side g in
  {
    forbidden = Hashtbl.create 16;
    committed_l = Array.make n false;
    committed_r = Array.make n false;
  }

let init g =
  let n = n_side g in
  { match_l = Array.make n (-1); match_r = Array.make n (-1); pot = Array.make (2 * n) 0.0 }

let copy st =
  { match_l = Array.copy st.match_l; match_r = Array.copy st.match_r; pot = Array.copy st.pot }

(* Iterate the out-edges of extended left node [i] as [f extj weight]. *)
let iter_edges g i f =
  let nl = Bipartite.n_left g in
  let nr = Bipartite.n_right g in
  if i < nl then begin
    (* source s_i: real edges + its own image *)
    Array.iter (fun (j, w) -> f j w) (Bipartite.adj g i);
    f (nr + i) 0.0
  end
  else begin
    (* target image t'_j: its target + mirrors of the target's real edges *)
    let j = i - nl in
    f j 0.0;
    Array.iter (fun (i', _) -> f (nr + i') 0.0) (Bipartite.radj g j)
  end

(* Weight of the edge from extended left [i] to extended right [extj];
   assumes the edge exists. Only real correspondences carry weight. *)
let edge_weight g i extj =
  let nl = Bipartite.n_left g in
  let nr = Bipartite.n_right g in
  if i < nl && extj < nr then
    match Bipartite.weight g i extj with
    | Some w -> w
    | None -> assert false
  else 0.0

let augment g cs st i0 =
  let n = n_side g in
  let shift = Bipartite.max_weight g in
  let inf = infinity in
  let dist = Array.make (2 * n) inf in
  let visited_r = Array.make n false in
  let prev_right = Array.make n (-1) in
  let heap = Uxsm_util.Fheap.create () in
  let allowed i extj =
    (not (Hashtbl.mem cs.forbidden (encode g i extj))) && not cs.committed_r.(extj)
  in
  let relax i di =
    iter_edges g i (fun extj w ->
        if (not visited_r.(extj)) && allowed i extj then begin
          let nd = di +. (shift -. w) +. st.pot.(i) -. st.pot.(n + extj) in
          if nd < dist.(n + extj) then begin
            dist.(n + extj) <- nd;
            prev_right.(extj) <- i;
            Uxsm_util.Fheap.push heap nd extj
          end
        end)
  in
  dist.(i0) <- 0.0;
  relax i0 0.0;
  (* Run Dijkstra to exhaustion: in warm restarts a freed right may keep a
     stale potential, so the correct exit minimizes [dist j + pot j], which
     is only known once every reachable node is finalized. *)
  let rec scan () =
    match Uxsm_util.Fheap.pop heap with
    | None -> ()
    | Some (d, extj) ->
      if visited_r.(extj) then scan ()
      else begin
        visited_r.(extj) <- true;
        if st.match_r.(extj) = -1 then scan ()
        else begin
          let i = st.match_r.(extj) in
          let w = edge_weight g i extj in
          let di = d -. (shift -. w) +. st.pot.(n + extj) -. st.pot.(i) in
          dist.(i) <- di;
          relax i di;
          scan ()
        end
      end
  in
  scan ();
  let found = ref (-1) in
  let best_exit = ref inf in
  for extj = 0 to n - 1 do
    if st.match_r.(extj) = -1 && dist.(n + extj) < inf then begin
      let exit_cost = dist.(n + extj) +. st.pot.(n + extj) in
      if exit_cost < !best_exit then begin
        best_exit := exit_cost;
        found := extj
      end
    end
  done;
  if !found = -1 then false
  else begin
    let d_final = dist.(n + !found) in
    for x = 0 to (2 * n) - 1 do
      st.pot.(x) <- st.pot.(x) +. min dist.(x) d_final
    done;
    (* Flip matched edges along the augmenting path. *)
    let rec walk extj =
      let i = prev_right.(extj) in
      let prev_match = st.match_l.(i) in
      st.match_l.(i) <- extj;
      st.match_r.(extj) <- i;
      if i <> i0 then walk prev_match
    in
    walk !found;
    true
  end

let force st i extj =
  st.match_l.(i) <- extj;
  st.match_r.(extj) <- i

let unmatch st i =
  let extj = st.match_l.(i) in
  if extj >= 0 then begin
    st.match_l.(i) <- -1;
    st.match_r.(extj) <- -1
  end

let solve g cs st =
  let n = n_side g in
  let rec go i =
    if i >= n then true
    else if cs.committed_l.(i) || st.match_l.(i) >= 0 then go (i + 1)
    else if augment g cs st i then go (i + 1)
    else false
  in
  go 0

let matched_ext st i = st.match_l.(i)

let assignment g st =
  let nl = Bipartite.n_left g in
  let nr = Bipartite.n_right g in
  Array.init nl (fun i ->
      let extj = st.match_l.(i) in
      if extj >= 0 && extj < nr then extj else -1)

let score g st =
  let nl = Bipartite.n_left g in
  let nr = Bipartite.n_right g in
  let total = ref 0.0 in
  for i = 0 to nl - 1 do
    let extj = st.match_l.(i) in
    if extj >= 0 && extj < nr then total := !total +. edge_weight g i extj
  done;
  !total
