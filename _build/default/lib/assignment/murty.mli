(** Murty's algorithm: rank assignments in decreasing order of total weight.

    Given the bipartite graph of a schema matching, enumerates the top-h
    injective partial assignments (possible mappings) by repeatedly
    partitioning the solution space of the best remaining subproblem
    (Murty 1968). Subproblems are re-solved with a single warm-started
    augmentation as in the Pascoal–Captivo–Clímaco variant the paper cites
    as "the advanced version of Murty's algorithm [13]". *)

type solution = {
  pairs : (int * int) list;  (** matched real [(left, right)] pairs, by left *)
  score : float;  (** sum of matched edge weights *)
}

val top :
  ?order:[ `Index | `Degree ] ->
  ?resolve:[ `Warm | `Cold ] ->
  h:int ->
  Bipartite.t ->
  solution list
(** [top ~h g] returns up to [h] distinct solutions in non-increasing score
    order (fewer when the whole solution space is smaller than [h]).

    [order] controls the order in which a popped solution's edges are used to
    partition its subproblem: [`Index] is the textbook left-index order;
    [`Degree] (default) partitions low-alternative left nodes first, which
    empirically narrows the subproblem tree — our stand-in for the
    reordering trick of Pascoal et al.

    [resolve] selects how child subproblems are solved: [`Warm] (default)
    reuses the parent's matching and potentials and runs one augmentation —
    the "advanced variant" the paper implements; [`Cold] re-solves each
    subproblem from scratch, the textbook baseline kept for the ablation
    bench. Results are identical for all option combinations; only running
    time differs. *)

val solutions_equal : solution -> solution -> bool
