lib/assignment/bipartite.ml: Array Hashtbl List
