lib/assignment/partition.ml: Array Bipartite Fun Hashtbl Int List Murty Set Uxsm_util
