lib/assignment/solver.mli: Bipartite Hashtbl
