lib/assignment/partition.mli: Bipartite Murty
