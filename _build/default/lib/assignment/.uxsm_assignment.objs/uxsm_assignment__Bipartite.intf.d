lib/assignment/bipartite.mli:
