lib/assignment/murty.mli: Bipartite
