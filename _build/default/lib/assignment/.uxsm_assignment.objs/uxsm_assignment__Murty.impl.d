lib/assignment/murty.ml: Array Bipartite Float Hashtbl Int List Set Solver
