lib/assignment/solver.ml: Array Bipartite Hashtbl Uxsm_util
