(** Successive-shortest-path solver for the max-weight assignment problem
    with optional non-assignment, on the paper's square image construction
    (Figure 7).

    The extended graph has [n_left + n_right] nodes on each side:

    - extended left [i < n_left] is source [s_i]; extended left
      [n_left + j] is the image [t'_j] of target [j];
    - extended right [j < n_right] is target [t_j]; extended right
      [n_right + i] is the image [s'_i] of source [i].

    Edges are the real correspondences plus zero-weight [(s_i, s'_i)],
    [(t'_j, t_j)], and a zero-weight mirror [(t'_j, s'_i)] for each real
    edge, so every injective partial real mapping extends to a perfect
    matching. Weights are maximized by minimizing shifted costs
    [max_weight - w]; augmenting paths use Dijkstra over Johnson-reduced
    costs, so warm restarts (as needed by Murty's ranking algorithm) cost a
    single augmentation.

    This module is exposed mainly for Murty's algorithm and for white-box
    testing; library users should call {!Murty} or {!Partition}. *)

type state
(** Mutable matching + potential state for one subproblem. *)

(** Constraints of a (Murty) subproblem. *)
type constraints = {
  forbidden : (int, unit) Hashtbl.t;
      (** keys are [encode g left extright] for excluded edges *)
  committed_l : bool array;  (** extended left nodes fixed by the subproblem *)
  committed_r : bool array;  (** extended right nodes fixed by the subproblem *)
}

val encode : Bipartite.t -> int -> int -> int
(** [encode g i extj] is the hash key for the edge from extended left [i] to
    extended right [extj]. *)

val image_of : Bipartite.t -> int -> int
(** Extended-right index of the image node [s'_i] of source [i]. *)

val no_constraints : Bipartite.t -> constraints
(** Fresh, empty constraints (nothing forbidden, nothing committed). *)

val init : Bipartite.t -> state
(** Fresh state: nothing matched, zero potentials. *)

val copy : state -> state

val augment : Bipartite.t -> constraints -> state -> int -> bool
(** [augment g cs st i] finds a shortest augmenting path from free extended
    left node [i]; returns [false] when the subproblem is infeasible for
    [i]. *)

val unmatch : state -> int -> unit
(** Free extended left node [i] (no-op if already free). *)

val force : state -> int -> int -> unit
(** [force st i extj] records the pair as matched without touching
    potentials. Safe only for pairs that the constraints also commit
    (committed nodes are never traversed, so their tightness does not
    matter); used by cold-start re-solves. *)

val solve : Bipartite.t -> constraints -> state -> bool
(** Augment every free, non-committed extended left node; [false] on
    infeasibility (state is then partially updated and should be
    discarded). *)

val matched_ext : state -> int -> int
(** Extended-right partner of extended left [i], or [-1]. *)

val assignment : Bipartite.t -> state -> int array
(** Per source node, the matched {e real} target or [-1] (image). *)

val score : Bipartite.t -> state -> float
(** Total weight of matched real edges. *)
