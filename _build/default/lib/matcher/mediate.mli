(** Pay-as-you-go mediated-schema bootstrapping, after Das Sarma, Dong and
    Halevy (SIGMOD 2008) — the paper's [15], which derives probabilistic
    mappings between a mediated schema and each source.

    A simplified but faithful pipeline: the first source seeds the mediated
    schema; every further source is matched against the current mediated
    schema and its unmatched subtrees are grafted in (under the mediated
    element their parent matched, or under the root). The result is one
    mediated schema that covers every source, plus a matching from it to
    each source — each of which can be fed to
    {!Uxsm_mapping.Mapping_set.generate} to obtain the probabilistic
    mediated-to-source mappings of the dataspace setting. *)

type t = {
  schema : Uxsm_schema.Schema.t;  (** the mediated schema *)
  matchings : (string * Uxsm_mapping.Matching.t) list;
      (** per source (by name): matching from the mediated schema (source
          side) to that source (target side) *)
}

val build :
  ?config:Coma.config ->
  ?graft_threshold:float ->
  (string * Uxsm_schema.Schema.t) list ->
  t
(** [build sources] — [sources] must be non-empty; the first one seeds the
    mediated schema. An element of a later source is considered covered
    when some mediated element scores at least [graft_threshold] (default
    0.75) against it; whole uncovered subtrees are grafted. Raises
    [Invalid_argument] on an empty source list. *)

val coverage : t -> string -> float
(** Fraction of the named source's elements with at least one
    correspondence in the final matching; raises [Not_found] for unknown
    names. *)
