lib/matcher/coma.mli: Name_sim Uxsm_mapping Uxsm_schema
