lib/matcher/name_sim.ml: Array Buffer Fun Hashtbl List String
