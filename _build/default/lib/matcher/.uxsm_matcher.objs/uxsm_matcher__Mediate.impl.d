lib/matcher/mediate.ml: Array Coma Hashtbl List Printf Uxsm_mapping Uxsm_schema
