lib/matcher/structure_sim.mli: Uxsm_schema
