lib/matcher/structure_sim.ml: List Uxsm_schema
