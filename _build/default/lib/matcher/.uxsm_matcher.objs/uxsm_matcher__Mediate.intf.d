lib/matcher/mediate.mli: Coma Uxsm_mapping Uxsm_schema
