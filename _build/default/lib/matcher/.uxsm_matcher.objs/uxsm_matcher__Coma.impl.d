lib/matcher/coma.ml: Array Float Hashtbl Int List Name_sim Structure_sim Uxsm_mapping Uxsm_schema
