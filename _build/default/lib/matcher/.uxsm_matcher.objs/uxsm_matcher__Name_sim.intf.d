lib/matcher/name_sim.mli:
