(** Name-based similarity measures, in the style of COMA++'s linguistic
    matchers: edit distance, character trigrams, and token-set similarity
    with synonym and abbreviation support. All similarities are in
    [\[0, 1\]]. *)

val tokenize : string -> string list
(** Split an element name into lowercase tokens at underscores, hyphens,
    digit boundaries and camelCase humps:
    [tokenize "BuyerPartID" = \["buyer"; "part"; "id"\]]. *)

val levenshtein : string -> string -> int
(** Classic edit distance (insert/delete/substitute, unit costs). *)

val edit_similarity : string -> string -> float
(** [1 - levenshtein a b / max |a| |b|], case-insensitive; 1 for two empty
    strings. *)

val trigram_similarity : string -> string -> float
(** Dice coefficient over padded character trigrams, case-insensitive. *)

type synonyms

val synonyms : ?extra:(string * string) list -> unit -> synonyms
(** A synonym/abbreviation table seeded with common e-commerce vocabulary
    (buyer/customer, seller/supplier/vendor, order/purchase, id/identifier,
    ...) plus [extra] pairs. Symmetric and reflexive. *)

val token_similarity : ?synonyms:synonyms -> string -> string -> float
(** Soft token-set similarity: average over each side's tokens of the best
    counterpart score (synonym = 1, otherwise max of edit and trigram),
    symmetrized. This is the primary linguistic measure. *)

val combined : ?synonyms:synonyms -> string -> string -> float
(** Weighted combination of token (0.8), trigram (0.1) and edit (0.1)
    similarities — the default name matcher. Token similarity dominates so
    that synonym renamings across standards (DeliverTo / ShipTo) stay close
    to exact-name matches. *)
