module Schema = Uxsm_schema.Schema
module Matching = Uxsm_mapping.Matching

type t = {
  schema : Schema.t;
  matchings : (string * Matching.t) list;
}

(* Mutable spec tree indexed by the schema's pre-order element ids, so graft
   points can be addressed by element. *)
type mnode = {
  name : string;
  repeatable : bool;
  mutable kids : mnode list;
}

let rec thaw (s : Schema.spec) =
  { name = s.Schema.name; repeatable = s.Schema.repeatable; kids = List.map thaw s.Schema.children }

let rec freeze (m : mnode) =
  Schema.spec ~repeatable:m.repeatable m.name (List.map freeze m.kids)

(* Nodes in pre-order, aligned with Schema element ids. *)
let nodes_in_preorder root =
  let out = ref [] in
  let rec go n =
    out := n :: !out;
    List.iter go n.kids
  in
  go root;
  Array.of_list (List.rev !out)

let rec uniquify_siblings (m : mnode) =
  let seen = Hashtbl.create 8 in
  m.kids <-
    List.map
      (fun k ->
        let c = try Hashtbl.find seen k.name + 1 with Not_found -> 1 in
        Hashtbl.replace seen k.name c;
        if c > 1 then { k with name = Printf.sprintf "%s%d" k.name c } else k)
      m.kids;
  List.iter uniquify_siblings m.kids

(* Spec of the subtree rooted at element [e] of [schema]. *)
let rec subtree_spec schema e =
  Schema.spec
    ~repeatable:(Schema.repeatable schema e)
    (Schema.label schema e)
    (List.map (subtree_spec schema) (Schema.children schema e))

let build ?config ?(graft_threshold = 0.75) sources =
  let cfg =
    match config with
    | Some c -> c
    | None -> Coma.default_config Coma.Context
  in
  match sources with
  | [] -> invalid_arg "Mediate.build: no sources"
  | (_, first) :: rest ->
    let mediated = ref first in
    let absorb (_, src) =
      let med = !mediated in
      let nm = Schema.size med and ns = Schema.size src in
      (* Best mediated counterpart per source element. *)
      let best_score = Array.make ns 0.0 in
      let best_elem = Array.make ns 0 in
      for m_el = 0 to nm - 1 do
        for s_el = 0 to ns - 1 do
          let score = Coma.pair_score cfg med m_el src s_el in
          if score > best_score.(s_el) then begin
            best_score.(s_el) <- score;
            best_elem.(s_el) <- m_el
          end
        done
      done;
      let covered e = best_score.(e) >= graft_threshold in
      (* Graft roots: the highest uncovered node on each root path (its
         whole subtree is copied, so deeper uncovered nodes are absorbed). *)
      let uncovered_above = Array.make ns false in
      List.iter
        (fun e ->
          match Schema.parent src e with
          | None -> ()
          | Some p -> uncovered_above.(e) <- uncovered_above.(p) || not (covered p))
        (Schema.elements src);
      let grafts = ref [] in
      List.iter
        (fun e ->
          if (not (covered e)) && not uncovered_above.(e) then begin
            let attach =
              match Schema.parent src e with
              | Some p when covered p -> best_elem.(p)
              | Some _ | None -> Schema.root med
            in
            grafts := (attach, subtree_spec src e) :: !grafts
          end)
        (Schema.elements src);
      if !grafts <> [] then begin
        let root = thaw (Schema.to_spec med) in
        let by_id = nodes_in_preorder root in
        List.iter
          (fun (attach, spec) -> by_id.(attach).kids <- by_id.(attach).kids @ [ thaw spec ])
          (List.rev !grafts);
        uniquify_siblings root;
        mediated := Schema.of_spec (freeze root)
      end
    in
    List.iter absorb rest;
    let matchings =
      List.map (fun (name, src) -> (name, Coma.run ~config:cfg ~source:!mediated ~target:src ())) sources
    in
    { schema = !mediated; matchings }

let coverage t name =
  match List.assoc_opt name t.matchings with
  | None -> raise Not_found
  | Some m ->
    let target = Matching.target m in
    let n = Schema.size target in
    let covered =
      List.length
        (List.filter (fun e -> Matching.corrs_of_target m e <> []) (Schema.elements target))
    in
    float_of_int covered /. float_of_int n
