(** Structural similarity measures between schema elements, in the style of
    COMA++'s structure-level matchers.

    Each measure takes the name-similarity function to use on labels
    ([name_sim]) so that callers can supply a memoized instance (the
    matcher scores |S|·|T| pairs and labels repeat heavily). *)

val path_similarity :
  name_sim:(string -> string -> float) ->
  Uxsm_schema.Schema.t ->
  Uxsm_schema.Schema.element ->
  Uxsm_schema.Schema.t ->
  Uxsm_schema.Schema.element ->
  float
(** Similarity of root-to-element contexts: the elements' own names weigh
    60%, a soft set comparison of their ancestor labels 40%. Soft ancestor
    matching keeps renamed hierarchies with extra wrapper levels (XCBL's
    [BuyerParty/Buyer]) comparable. Backbone of the {e context} strategy. *)

val soft_set_similarity :
  name_sim:(string -> string -> float) -> string list -> string list -> float
(** Symmetric average-best-match similarity of two label multisets; 1 when
    both are empty, 0 when exactly one is. *)

val children_similarity :
  name_sim:(string -> string -> float) ->
  Uxsm_schema.Schema.t ->
  Uxsm_schema.Schema.element ->
  Uxsm_schema.Schema.t ->
  Uxsm_schema.Schema.element ->
  float
(** Soft set similarity of direct child names; 1 when both are leaves. *)

val leaf_similarity :
  name_sim:(string -> string -> float) ->
  Uxsm_schema.Schema.t ->
  Uxsm_schema.Schema.element ->
  Uxsm_schema.Schema.t ->
  Uxsm_schema.Schema.element ->
  float
(** Soft set similarity of the leaf names of the two subtrees — the
    {e fragment} strategy's structural signal. *)

val parent_similarity :
  name_sim:(string -> string -> float) ->
  Uxsm_schema.Schema.t ->
  Uxsm_schema.Schema.element ->
  Uxsm_schema.Schema.t ->
  Uxsm_schema.Schema.element ->
  float
(** Name similarity of the two elements' parents (1 when both are roots,
    0 when only one is) — the local context of a fragment. *)
