module Schema = Uxsm_schema.Schema

let soft_set_similarity ~name_sim la lb =
  match (la, lb) with
  | [], [] -> 1.0
  | [], _ | _, [] -> 0.0
  | _ ->
    let best one other = List.fold_left (fun acc u -> max acc (name_sim one u)) 0.0 other in
    let avg side other =
      List.fold_left (fun acc x -> acc +. best x other) 0.0 side /. float_of_int (List.length side)
    in
    (avg la lb +. avg lb la) /. 2.0

let ancestors s e =
  match List.rev (Schema.path s e) with
  | [] -> []
  | _self :: rest -> rest

let path_similarity ~name_sim sa ea sb eb =
  let self = name_sim (Schema.label sa ea) (Schema.label sb eb) in
  let context = soft_set_similarity ~name_sim (ancestors sa ea) (ancestors sb eb) in
  (0.6 *. self) +. (0.4 *. context)

let child_names s e = List.map (Schema.label s) (Schema.children s e)

let children_similarity ~name_sim sa ea sb eb =
  soft_set_similarity ~name_sim (child_names sa ea) (child_names sb eb)

let leaf_names s e =
  List.filter (Schema.is_leaf s) (Schema.subtree_elements s e) |> List.map (Schema.label s)

let leaf_similarity ~name_sim sa ea sb eb =
  soft_set_similarity ~name_sim (leaf_names sa ea) (leaf_names sb eb)

let parent_similarity ~name_sim sa ea sb eb =
  match (Schema.parent sa ea, Schema.parent sb eb) with
  | None, None -> 1.0
  | Some pa, Some pb -> name_sim (Schema.label sa pa) (Schema.label sb pb)
  | None, Some _ | Some _, None -> 0.0
