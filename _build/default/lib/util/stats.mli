(** Small descriptive-statistics helpers for experiment reporting. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], nearest-rank on the sorted
    values. Raises [Invalid_argument] on the empty list. *)

val minimum : float list -> float
val maximum : float list -> float

val histogram : bins:int -> float list -> (float * float * int) array
(** [histogram ~bins xs] returns [(lo, hi, count)] triples of equal-width
    bins spanning the data range. *)
