type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = mix64 (bits64 t) }

(* Uniform int in [0, bound) by rejection on the top bits, avoiding modulo
   bias for bounds that do not divide 2^62. The raw 64-bit output is
   shifted down to 62 bits so it always fits OCaml's 63-bit native int. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then draw () else v
  in
  draw ()

let float t bound =
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r *. (1.0 /. 9007199254740992.0) *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let range t lo hi =
  if lo > hi then invalid_arg "Prng.range: lo > hi";
  lo + int t (hi - lo + 1)

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u <= 0.0 then nonzero () else u
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  (* Floyd's algorithm: k iterations, set of size <= k. *)
  let module IS = Set.Make (Int) in
  let chosen = ref IS.empty in
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    if IS.mem r !chosen then chosen := IS.add j !chosen
    else chosen := IS.add r !chosen
  done;
  IS.elements !chosen
