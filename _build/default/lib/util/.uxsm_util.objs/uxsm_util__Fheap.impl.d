lib/util/fheap.ml: Array
