lib/util/fheap.mli:
