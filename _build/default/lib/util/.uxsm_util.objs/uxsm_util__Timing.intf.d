lib/util/timing.mli:
