lib/util/prng.mli:
