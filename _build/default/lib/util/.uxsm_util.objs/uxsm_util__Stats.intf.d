lib/util/stats.mli:
