(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the library (workload generation, matcher
    tie-breaking, property-test corpora) draws from an explicit [Prng.t] so
    that datasets and experiments are reproducible bit-for-bit from a seed.
    The stdlib [Random] module is never used. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. Generators
    created from equal seeds produce equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]. Streams of the
    parent and child are statistically independent. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires [lo <= hi]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via Box–Muller. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct ints from
    [\[0, n)], in increasing order. Requires [0 <= k <= n]. *)
