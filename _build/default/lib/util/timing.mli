(** Wall-clock timing helpers used by the benchmark harness and the CLI. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock seconds. *)

val time_n : ?warmup:int -> int -> (unit -> 'a) -> float
(** [time_n ?warmup n f] runs [f] [warmup] times (default 1) unmeasured, then
    [n] times measured, and returns the mean seconds per run. *)

val repeat_until : min_runs:int -> min_seconds:float -> (unit -> 'a) -> float
(** [repeat_until ~min_runs ~min_seconds f] keeps running [f] until both at
    least [min_runs] runs have happened and at least [min_seconds] wall time
    has elapsed; returns mean seconds per run. Keeps fast benches precise and
    slow benches bounded. *)
