(** Mutable binary min-heap with [float] priorities.

    Used by the Dijkstra augmentation inside the assignment solver and by
    the top-h merge of the partitioning algorithm. Decrease-key is handled
    by lazy deletion: stale entries are skipped at pop time. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push h prio x] inserts [x] with priority [prio]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority entry. *)

val peek : 'a t -> (float * 'a) option
