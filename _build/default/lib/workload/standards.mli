(** Synthetic reproductions of the e-commerce XML standards used in the
    paper's evaluation (Table II): Excel, Noris, Paragon, OpenTrans (OT),
    Apertum, XCBL and CIDX.

    All standards instantiate one shared purchase-order {e concept tree},
    but each applies its own naming convention (casing, synonym choice,
    decorations), structural quirks (party wrappers) and size (padding with
    filler subtrees, or pruning, to the exact element count of Table II).
    Shared concepts plus divergent names is exactly what produces sparse,
    locally-ambiguous matcher output — the uncertainty the paper manages.

    The Apertum style fixes the labels appearing in the Table III queries
    ([Order/DeliverTo/Address/City], [POLine/LineNo], [BuyerPartID],
    [UnitPrice], ...), so D7's queries resolve against it. *)

type style

val style_name : style -> string
val style_size : style -> int
(** The Table II element count the style generates. *)

val excel : style  (** 48 elements, lowercase concatenated names *)

val noris : style  (** 66 elements *)

val paragon : style  (** 69 elements *)

val opentrans : style  (** 247 elements, UPPER_SNAKE names *)

val apertum : style  (** 166 elements; carries the query labels *)

val xcbl : style  (** 1076 elements, CamelCase, party wrappers *)

val cidx : style  (** 39 elements *)

val by_name : string -> style option

val generate : ?seed:int -> style -> Uxsm_schema.Schema.t
(** Generate the style's schema; deterministic in [seed] (default 42).
    The result has exactly {!style_size} elements, unique root-to-element
    paths, and the purchase-order core present (pruned smallest-last in the
    small styles, query-relevant concepts always kept). *)
