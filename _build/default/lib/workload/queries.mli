(** The ten PTQ workload queries of Table III, posed against the Apertum
    target schema of dataset D7.

    Per the paper's footnote 3, the abbreviations in the table are expanded
    — [BPID] to [BuyerPartID] and [UP] to [UnitPrice] — and the
    [LineNO]/[\[//UP\]] typos of Q6 are normalized to [LineNo]/[\[.//UP\]]. *)

val table3 : (string * Uxsm_twig.Pattern.t) list
(** [("Q1", pattern); ...; ("Q10", pattern)]. *)

val q : int -> Uxsm_twig.Pattern.t
(** [q 1] .. [q 10]; raises [Invalid_argument] out of range. *)

val q7 : Uxsm_twig.Pattern.t
(** The starred default query of Table III. *)

val q10 : Uxsm_twig.Pattern.t
(** The query used for the parameter sweeps of Figure 10(b)-(d). *)
