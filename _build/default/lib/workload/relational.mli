(** Relational schemas — the paper's final future-work item ("study the
    effectiveness of our mapping generation method in relational schemas").

    A relational schema is modeled as a two-level element tree
    (database → tables → columns), which is exactly the shape the matcher
    and the top-h generators consume; nothing else in the pipeline changes.
    Relational matchings are even sparser than XML ones (no nesting links
    tables together), so the partitioning algorithm's advantage is expected
    to persist — the [abl_relational] bench measures it. *)

val generate :
  ?seed:int -> ?tables:int -> ?columns:int -> variant:int -> name:string -> unit ->
  Uxsm_schema.Schema.t
(** A synthetic relational schema: [tables] tables (default 12) of up to
    [columns] columns (default 8) drawn from a business vocabulary, renamed
    through synonym [variant] like the XML standards. *)

val matching :
  ?seed:int -> ?tables:int -> ?columns:int -> unit -> Uxsm_mapping.Matching.t
(** Two relational schemas over the same concepts with different variants,
    matched with the context strategy. *)
