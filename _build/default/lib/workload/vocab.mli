(** Shared vocabulary for the synthetic e-commerce standards: canonical
    concept tokens, per-style synonym choices, and filler-subtree naming.
    Everything is deterministic given a {!Uxsm_util.Prng.t}. *)

type casing =
  | Camel  (** [BuyerPartID] *)
  | UpperSnake  (** [BUYER_PART_ID] *)
  | Lower  (** [buyerpartid] *)
  | LowerSnake  (** [buyer_part_id] *)

val render : casing -> string list -> string
(** Render canonical tokens under a casing convention. *)

val synonym_alternatives : string -> string list
(** Known alternatives of a canonical token (including itself, first).
    Mirrors the matcher's synonym table so that cross-style renamings stay
    discoverable. *)

val pick_synonym : variant:int -> string -> string
(** Deterministically pick the [variant]-th alternative (mod availability). *)

val filler_tokens : ?slice:int -> Uxsm_util.Prng.t -> string list
(** 2–3 tokens for a filler element name, drawn from a 35-token window of a
    shared pool of business terms; windows of different [slice]s overlap
    partially, so filler occasionally — but not overwhelmingly — matches
    across styles. *)

val city_names : string array
val person_names : string array
val street_names : string array
val country_names : string array
val words : string array
(** Generic word pool for free-text leaf values. *)
