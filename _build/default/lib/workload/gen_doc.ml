module Schema = Uxsm_schema.Schema
module Prng = Uxsm_util.Prng
module Tree = Uxsm_xml.Tree

let contains_token label token =
  List.mem token (Uxsm_matcher.Name_sim.tokenize label)

let leaf_value prng label =
  let has = contains_token label in
  if has "city" then Prng.pick prng Vocab.city_names
  else if has "name" || has "label" then Prng.pick prng Vocab.person_names
  else if has "street" || has "road" then Prng.pick prng Vocab.street_names
  else if has "country" || has "nation" then Prng.pick prng Vocab.country_names
  else if has "mail" || has "email" then
    String.lowercase_ascii (Prng.pick prng Vocab.person_names) ^ "@example.com"
  else if has "phone" || has "telephone" then Printf.sprintf "+852-%07d" (Prng.int prng 10000000)
  else if has "date" || has "day" then
    Printf.sprintf "2010-%02d-%02d" (1 + Prng.int prng 12) (1 + Prng.int prng 28)
  else if
    List.exists has
      [ "id"; "no"; "number"; "code"; "identifier"; "quantity"; "qty"; "value"; "price"; "cost"; "amount"; "total"; "rate"; "count"; "zip"; "postcode"; "postal" ]
  then string_of_int (1 + Prng.int prng 100000)
  else Prng.pick prng Vocab.words

(* Extra copies per repeatable element so that total element nodes come as
   close to [target] as possible: large subtrees first, then 1-node
   repeatables absorb the remainder. *)
let plan_copies schema target =
  let base = Schema.size schema in
  let extra = Array.make (Schema.size schema) 0 in
  let deficit = ref (target - base) in
  let repeatables =
    List.filter (Schema.repeatable schema) (Schema.elements schema)
    |> List.sort (fun a b -> Int.compare (Schema.subtree_size schema b) (Schema.subtree_size schema a))
  in
  List.iter
    (fun e ->
      let sz = Schema.subtree_size schema e in
      if sz <= !deficit then begin
        let copies = !deficit / sz in
        extra.(e) <- copies;
        deficit := !deficit - (copies * sz)
      end)
    repeatables;
  extra

let generate ?(seed = 7) ?(target_nodes = 3473) schema =
  let prng = Prng.create seed in
  let extra = plan_copies schema target_nodes in
  let rec instantiate e =
    let kids =
      List.concat_map
        (fun k -> List.init (1 + extra.(k)) (fun _ -> instantiate k))
        (Schema.children schema e)
    in
    let children =
      if kids = [] then [ Tree.text (leaf_value prng (Schema.label schema e)) ] else kids
    in
    Tree.element (Schema.label schema e) children
  in
  Uxsm_xml.Doc.of_tree (instantiate (Schema.root schema))
