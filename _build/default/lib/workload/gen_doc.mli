(** Source-document generation: the reproduction of the paper's
    [Order.xml] (an XCBL sample with 3473 nodes).

    A document instantiates every schema element once, then adds extra
    copies of repeatable subtrees (order lines first, then single-node
    repeatable leaves for the remainder) until the element-node count
    reaches [target_nodes] exactly when possible. Leaf values are drawn by
    label heuristics (cities for [City], person names for [Name], numbers
    for ids/quantities/prices, ...), deterministically from the seed. *)

val generate :
  ?seed:int -> ?target_nodes:int -> Uxsm_schema.Schema.t -> Uxsm_xml.Doc.t
(** [generate schema] — default [seed 7], [target_nodes 3473]. When the
    schema has no repeatable elements, or the target is below the schema
    size, the single-instance document is returned. *)

val leaf_value : Uxsm_util.Prng.t -> string -> string
(** The value heuristic, exposed for tests and examples. *)
