lib/workload/vocab.mli: Uxsm_util
