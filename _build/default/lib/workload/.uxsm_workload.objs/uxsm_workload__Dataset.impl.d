lib/workload/dataset.ml: Hashtbl List Standards String Uxsm_mapping Uxsm_matcher
