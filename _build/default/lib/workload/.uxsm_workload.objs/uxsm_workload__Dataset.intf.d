lib/workload/dataset.mli: Standards Uxsm_mapping Uxsm_matcher
