lib/workload/gen_doc.mli: Uxsm_schema Uxsm_util Uxsm_xml
