lib/workload/queries.mli: Uxsm_twig
