lib/workload/relational.mli: Uxsm_mapping Uxsm_schema
