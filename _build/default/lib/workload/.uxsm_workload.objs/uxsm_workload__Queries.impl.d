lib/workload/queries.ml: List Uxsm_twig
