lib/workload/relational.ml: Array List Uxsm_matcher Uxsm_schema Uxsm_util Vocab
