lib/workload/gen_doc.ml: Array Int List Printf String Uxsm_matcher Uxsm_schema Uxsm_util Uxsm_xml Vocab
