lib/workload/standards.ml: Hashtbl List Printf String Uxsm_schema Uxsm_util Vocab
