lib/workload/vocab.ml: Array Char List String Uxsm_util
