lib/workload/standards.mli: Uxsm_schema
