let sources =
  [
    ("Q1", "Order/DeliverTo/Address[./City][./Country]/Street");
    ("Q2", "Order/DeliverTo/Contact/EMail");
    ("Q3", "Order/DeliverTo[./Address/City]/Contact/EMail");
    ("Q4", "Order/POLine[./LineNo]//UnitPrice");
    ("Q5", "Order/POLine[./LineNo][.//UnitPrice]/Quantity");
    ("Q6", "Order/POLine[./BuyerPartID][./LineNo][.//UnitPrice]/Quantity");
    ("Q7", "Order[./DeliverTo//Street]/POLine[.//BuyerPartID][.//UnitPrice]/Quantity");
    ("Q8", "Order[./DeliverTo[.//EMail]//Street]/POLine[.//UnitPrice]/Quantity");
    ("Q9", "Order[./Buyer/Contact]/POLine[.//BuyerPartID]/Quantity");
    ("Q10", "Order[./Buyer/Contact][./DeliverTo//City]//BuyerPartID");
  ]

let table3 =
  List.map (fun (id, src) -> (id, Uxsm_twig.Pattern_parser.parse_exn src)) sources

let q i =
  match List.nth_opt table3 (i - 1) with
  | Some (_, p) -> p
  | None -> invalid_arg "Queries.q: expected 1..10"

let q7 = q 7
let q10 = q 10
