module Schema = Uxsm_schema.Schema
module Prng = Uxsm_util.Prng

(* ------------------------------------------------------------------ *)
(* The shared purchase-order concept tree                              *)
(* ------------------------------------------------------------------ *)

type concept = {
  key : string;
  tokens : string list;
  repeatable : bool;
  protected : bool;  (* survives pruning in every style *)
  rich_only : bool;  (* only instantiated by rich styles (XCBL, OpenTrans) *)
  kids : concept list;
}

let c ?(repeatable = false) ?(protected = false) ?(rich_only = false) key tokens kids =
  { key; tokens; repeatable; protected; rich_only; kids }

let contact_block ?(rich_only = false) ?(minimal = false) ?(suffix = "") prefix ~protected =
  let key part = prefix ^ ".contact" ^ suffix ^ "." ^ part in
  let full_kids =
    [
      c ~rich_only (key "name") [ "name" ] [];
      c ~rich_only (key "phone") [ "phone" ] [];
      c ~protected ~rich_only (key "email") [ "email" ] [];
    ]
  in
  let kids = if minimal then [ c ~protected ~rich_only (key "email") [ "email" ] [] ] else full_kids in
  c ~protected ~rich_only (prefix ^ ".contact" ^ suffix) [ "contact" ] kids

let address_block prefix ~protected =
  c ~protected (prefix ^ ".address") [ "address" ]
    [
      c ~protected (prefix ^ ".address.street") [ "street" ] [];
      (* Real standards carry second address/contact lines; these exist only
         in the rich styles and tie exactly with their primary siblings. *)
      c ~rich_only:true (prefix ^ ".address.street2") [ "street" ] [];
      c ~protected (prefix ^ ".address.city") [ "city" ] [];
      c (prefix ^ ".address.zip") [ "zip" ] [];
      c ~protected (prefix ^ ".address.country") [ "country" ] [];
      c (prefix ^ ".address.region") [ "region" ] [];
    ]

let party key tokens ~protected =
  c ~protected key tokens
    [
      contact_block key ~protected;
      contact_block ~rich_only:true ~minimal:true ~suffix:"2" key ~protected:false;
      address_block key ~protected;
    ]

let concept_tree =
  c ~protected:true "order" [ "order" ]
    [
      c "header" [ "header" ]
        [
          c "header.order_id" [ "order"; "id" ] [];
          c "header.order_date" [ "order"; "date" ] [];
          c "header.currency" [ "currency" ] [];
        ];
      party "buyer" [ "buyer" ] ~protected:true;
      party "seller" [ "seller" ] ~protected:false;
      party "deliver_to" [ "deliver"; "to" ] ~protected:true;
      party "bill_to" [ "invoice"; "to" ] ~protected:false;
      c "payment" [ "payment" ]
        [
          c "payment.terms" [ "terms" ] [];
          c "payment.method" [ "method" ] [];
          c "payment.due" [ "due"; "date" ] [];
        ];
      c "tax" [ "tax" ]
        [
          c "tax.rate" [ "rate" ] [];
          c "tax.amount" [ "amount" ] [];
          c "tax.category" [ "category" ] [];
        ];
      c ~repeatable:true ~protected:true "po_line" [ "order"; "line" ]
        [
          c ~protected:true "po_line.line_no" [ "line"; "id" ] [];
          c ~protected:true "po_line.buyer_part_id" [ "buyer"; "part"; "id" ] [];
          c "po_line.seller_part_id" [ "seller"; "part"; "id" ] [];
          c "po_line.description" [ "description" ] [];
          c ~protected:true "po_line.quantity" [ "quantity" ]
            [
              c "po_line.quantity.value" [ "value" ] [];
              c "po_line.quantity.uom" [ "unit"; "of"; "measure" ] [];
            ];
          c ~protected:true "po_line.pricing" [ "pricing" ]
            [
              c ~protected:true "po_line.pricing.unit_price" [ "unit"; "price" ] [];
              c "po_line.pricing.amount" [ "amount" ] [];
              c "po_line.pricing.discount" [ "discount" ] [];
              c "po_line.pricing.list_price" [ "list"; "price" ] [];
              c "po_line.pricing.currency" [ "currency" ] [];
            ];
          c "po_line.delivery" [ "delivery" ]
            [
              c "po_line.delivery.date" [ "date" ] [];
              c "po_line.delivery.location" [ "location" ] [];
            ];
          c "po_line.tax" [ "tax" ]
            [
              c "po_line.tax.rate" [ "rate" ] [];
              c "po_line.tax.amount" [ "amount" ] [];
            ];
          c "po_line.schedule" [ "schedule" ]
            [
              c "po_line.schedule.start" [ "start"; "date" ] [];
              c "po_line.schedule.end" [ "end"; "date" ] [];
              c "po_line.schedule.ship_quantity" [ "deliver"; "quantity" ] [];
            ];
          c "po_line.reference" [ "reference" ]
            [
              c "po_line.reference.contract" [ "contract"; "id" ] [];
              c "po_line.reference.quote" [ "quote"; "id" ] [];
            ];
          c "po_line.packaging" [ "packaging" ]
            [
              c "po_line.packaging.kind" [ "kind" ] [];
              c "po_line.packaging.weight" [ "weight" ] [];
              c "po_line.packaging.units" [ "units" ] [];
            ];
          c "po_line.comments" [ "comments" ] [];
        ];
      c "summary" [ "summary" ]
        [
          c "summary.total" [ "total"; "amount" ] [];
          c "summary.count" [ "line"; "count" ] [];
          c ~repeatable:true "summary.remarks" [ "remarks" ] [];
        ];
    ]

(* ------------------------------------------------------------------ *)
(* Styles                                                              *)
(* ------------------------------------------------------------------ *)

type style = {
  name : string;
  size : int;
  casing : Vocab.casing;
  variant : int;  (* synonym alternative selector *)
  wrap_parties : bool;  (* insert an extra <...Party> wrapper (XCBL-like) *)
  rich : bool;  (* instantiate rich-only concepts (secondary contacts/streets) *)
  fixed : (string * string) list;  (* concept key -> exact label *)
  default_seed_salt : int;
}

let style_name s = s.name
let style_size s = s.size

(* Labels the Table III queries need, fixed on the Apertum style. *)
let apertum_fixed =
  [
    ("order", "Order");
    ("buyer", "Buyer");
    ("buyer.contact", "Contact");
    ("buyer.contact.email", "EMail");
    ("seller.contact", "Contact");
    ("seller.contact.email", "EMail");
    ("deliver_to", "DeliverTo");
    ("deliver_to.contact", "Contact");
    ("deliver_to.contact.email", "EMail");
    ("bill_to.contact", "Contact");
    ("bill_to.contact.email", "EMail");
    ("deliver_to.address", "Address");
    ("deliver_to.address.street", "Street");
    ("deliver_to.address.city", "City");
    ("deliver_to.address.country", "Country");
    ("po_line", "POLine");
    ("po_line.line_no", "LineNo");
    ("po_line.buyer_part_id", "BuyerPartID");
    ("po_line.quantity", "Quantity");
    ("po_line.pricing.unit_price", "UnitPrice");
  ]

let excel =
  { name = "Excel"; size = 48; casing = Vocab.LowerSnake; variant = 0; wrap_parties = false; rich = false; fixed = []; default_seed_salt = 101 }

let noris =
  { name = "Noris"; size = 66; casing = Vocab.Camel; variant = 1; wrap_parties = false; rich = false; fixed = []; default_seed_salt = 102 }

let paragon =
  { name = "Paragon"; size = 69; casing = Vocab.UpperSnake; variant = 2; wrap_parties = false; rich = false; fixed = []; default_seed_salt = 103 }

let opentrans =
  { name = "OT"; size = 247; casing = Vocab.UpperSnake; variant = 3; wrap_parties = false; rich = true; fixed = []; default_seed_salt = 104 }

let apertum =
  { name = "Apertum"; size = 166; casing = Vocab.Camel; variant = 0; wrap_parties = false; rich = false; fixed = apertum_fixed; default_seed_salt = 105 }

let xcbl =
  { name = "XCBL"; size = 1076; casing = Vocab.Camel; variant = 1; wrap_parties = true; rich = true; fixed = []; default_seed_salt = 106 }

let cidx =
  { name = "CIDX"; size = 39; casing = Vocab.Camel; variant = 2; wrap_parties = false; rich = false; fixed = []; default_seed_salt = 107 }

let all = [ excel; noris; paragon; opentrans; apertum; xcbl; cidx ]
let by_name n = List.find_opt (fun s -> String.equal s.name n) all

(* ------------------------------------------------------------------ *)
(* Schema generation                                                   *)
(* ------------------------------------------------------------------ *)

let concept_label style concept =
  match List.assoc_opt concept.key style.fixed with
  | Some l -> l
  | None ->
    let tokens = List.map (Vocab.pick_synonym ~variant:style.variant) concept.tokens in
    Vocab.render style.casing tokens

let party_keys = [ "buyer"; "seller"; "deliver_to"; "bill_to" ]
let is_party concept = List.mem concept.key party_keys

(* Core spec from the concept tree under a style. *)
let rec spec_of_concept style concept =
  let kids =
    List.filter (fun k -> style.rich || not k.rich_only) concept.kids
    |> List.map (spec_of_concept style)
  in
  let label = concept_label style concept in
  let base = Schema.spec ~repeatable:concept.repeatable label kids in
  if style.wrap_parties && is_party concept then begin
    (* XCBL-like: <BuyerParty><Buyer>...</Buyer></BuyerParty> *)
    let wrapper_label = label ^ Vocab.render style.casing [ "party" ] in
    Schema.spec wrapper_label [ base ]
  end
  else base

let rec spec_count (s : Schema.spec) =
  1 + List.fold_left (fun acc k -> acc + spec_count k) 0 s.Schema.children

(* Prune unprotected leaf concepts, last-in-pre-order first, until the tree
   fits the budget. *)
let prune_to budget concept =
  let module M = struct
    type mnode = {
      src : concept;
      mutable mkids : mnode list;
    }
  end in
  let open M in
  let rec freeze n = { n.src with kids = List.map freeze n.mkids } in
  let rec thaw concept = { src = concept; mkids = List.map thaw concept.kids } in
  let root = thaw concept in
  let rec size n = 1 + List.fold_left (fun acc k -> acc + size k) 0 n.mkids in
  (* Remove the last (in pre-order) unprotected leaf under [n]; true if one
     was removed. *)
  let rec drop_last n =
    let rec scan_rev = function
      | [] -> false
      | k :: rest ->
        if k.mkids = [] && not k.src.protected then begin
          n.mkids <- List.filter (fun x -> x != k) n.mkids;
          true
        end
        else if drop_last k then true
        else scan_rev rest
    in
    scan_rev (List.rev n.mkids)
  in
  let continue_ = ref true in
  while size root > budget && !continue_ do
    if not (drop_last root) then continue_ := false
  done;
  freeze root

(* Unique-ify sibling labels by numeric suffixes so root-to-node paths are
   unique (the block-tree hash is keyed by path). *)
let uniquify spec =
  let rec go (s : Schema.spec) =
    let seen = Hashtbl.create 8 in
    let fix (k : Schema.spec) =
      let n = try Hashtbl.find seen k.Schema.name + 1 with Not_found -> 1 in
      Hashtbl.replace seen k.Schema.name n;
      let k' = go k in
      if n = 1 then k' else { k' with Schema.name = Printf.sprintf "%s%d" k.Schema.name n }
    in
    { s with Schema.children = List.map fix s.Schema.children }
  in
  go spec

(* Pad with filler subtrees (style-cased names from the shared pool) until
   the spec has exactly [size] elements. *)
let pad prng style size spec =
  let slice = style.variant in
  let current = ref (spec_count spec) in
  let extras = ref [] in
  while !current < size do
    let deficit = size - !current in
    let n_kids = min (deficit - 1) (Prng.int prng 5) in
    let kid _ = Schema.spec (Vocab.render style.casing (Vocab.filler_tokens ~slice prng)) [] in
    let sub =
      Schema.spec (Vocab.render style.casing (Vocab.filler_tokens ~slice prng))
        (List.init (max 0 n_kids) kid)
    in
    extras := sub :: !extras;
    current := !current + spec_count sub
  done;
  { spec with Schema.children = spec.Schema.children @ List.rev !extras }

let rec filter_rich style concept =
  {
    concept with
    kids =
      List.filter (fun k -> style.rich || not k.rich_only) concept.kids
      |> List.map (filter_rich style);
  }

let generate ?(seed = 42) style =
  let prng = Prng.create (seed + style.default_seed_salt) in
  (* Wrapping adds one element per party; leave room for it when pruning. *)
  let wrap_overhead = if style.wrap_parties then List.length party_keys else 0 in
  let core = prune_to (style.size - wrap_overhead) (filter_rich style concept_tree) in
  let spec = spec_of_concept style core in
  let n = spec_count spec in
  if n > style.size then
    invalid_arg
      (Printf.sprintf "Standards.generate: %s core (%d) exceeds size %d" style.name n style.size);
  let padded = pad prng style style.size spec in
  let unique = uniquify padded in
  let schema = Schema.of_spec unique in
  assert (Schema.size schema = style.size);
  schema
