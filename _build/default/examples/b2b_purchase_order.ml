(* B2B purchase-order integration: the paper's D7 scenario at full scale.

   A buyer's system speaks XCBL (1076 elements), a supplier's catalogue
   follows an Apertum-style schema (166 elements). COMA++-style matching
   yields 226 correspondences with plenty of ambiguity; we keep the top-100
   possible mappings, compress them into a block tree, and answer the
   Table III twig queries over a 3473-node order document — with
   probabilities instead of a single guessed answer.

   Run with: dune exec examples/b2b_purchase_order.exe *)

module Schema = Uxsm_schema.Schema
module Doc = Uxsm_xml.Doc
module Matching = Uxsm_mapping.Matching
module Mapping_set = Uxsm_mapping.Mapping_set
module Block_tree = Uxsm_blocktree.Block_tree
module Ptq = Uxsm_ptq.Ptq
module Dataset = Uxsm_workload.Dataset
module Gen_doc = Uxsm_workload.Gen_doc
module Queries = Uxsm_workload.Queries
module Pattern = Uxsm_twig.Pattern

let () =
  let d7 = Dataset.d7 in
  Printf.printf "building the D7 workload (XCBL -> Apertum)...\n%!";
  let matching = Dataset.matching d7 in
  Printf.printf "  matching: %d correspondences between %d and %d elements\n%!"
    (Matching.capacity matching)
    (Schema.size (Matching.source matching))
    (Schema.size (Matching.target matching));

  let mset = Dataset.mapping_set ~h:100 d7 in
  Printf.printf "  top-100 possible mappings, o-ratio %.2f\n%!"
    (Mapping_set.average_o_ratio mset);

  let tree = Block_tree.build mset in
  Printf.printf "  block tree: %d c-blocks, compression %.1f%%\n%!"
    (Block_tree.n_blocks tree)
    (100.0 *. Block_tree.compression_ratio tree);

  let doc = Gen_doc.generate (Matching.source matching) in
  Printf.printf "  source document: %d element nodes\n%!" (Doc.size doc);

  let ctx = Ptq.context ~tree ~mset ~doc () in
  List.iter
    (fun (id, q) ->
      let answers = Ptq.query_tree ctx q in
      let consolidated = Ptq.consolidate answers in
      let nonempty = List.filter (fun (bs, _) -> bs <> []) consolidated in
      Printf.printf "\n%s: %s\n" id (Pattern.to_string q);
      Printf.printf "  %d relevant mappings, %d distinct answer sets (%d non-empty)\n"
        (List.length answers) (List.length consolidated) (List.length nonempty);
      (* Show the two most probable distinct answer sets, by match count. *)
      List.iteri
        (fun i (bindings, p) ->
          if i < 2 then
            Printf.printf "  p=%.2f: %s\n" p
              (match bindings with
              | [] -> "no match in the document"
              | _ -> Printf.sprintf "%d matches" (List.length bindings)))
        consolidated)
    Queries.table3;

  (* Drill into one query: distribution of the buyer part ids returned. *)
  let q = Queries.q10 in
  Printf.printf "\n== drill-down: %s ==\n" (Pattern.to_string q);
  let per_answer = Ptq.consolidate (Ptq.query_tree ctx q) in
  List.iteri
    (fun i (bindings, p) ->
      if i < 3 then begin
        let texts =
          List.concat_map
            (fun b ->
              List.filter_map
                (fun (label, text) -> if label = "BuyerPartID" then Some text else None)
                (Ptq.binding_texts ctx q b))
            bindings
          |> List.sort_uniq compare
        in
        Printf.printf "  p=%.2f -> BuyerPartID in {%s}%s\n" p
          (String.concat ", " (List.filteri (fun j _ -> j < 5) texts))
          (if List.length texts > 5 then ", ..." else "")
      end)
    per_answer
