(* Quickstart: the paper's running example (Figures 1-3) end to end.

   Two purchase-order schemas disagree about structure; the matcher links
   their elements with close scores; the uncertainty is kept as a set of
   possible mappings; a block tree compresses the set; and a probabilistic
   twig query returns every plausible answer with its probability.

   Run with: dune exec examples/quickstart.exe *)

module Schema = Uxsm_schema.Schema
module Matching = Uxsm_mapping.Matching
module Mapping_set = Uxsm_mapping.Mapping_set
module Coma = Uxsm_matcher.Coma
module Block_tree = Uxsm_blocktree.Block_tree
module Parser = Uxsm_twig.Pattern_parser
module Ptq = Uxsm_ptq.Ptq

(* Figure 1(a): an XCBL-flavoured source schema. *)
let source =
  Schema.of_spec
    (Schema.spec "Order"
       [
         Schema.spec "BillToParty"
           [
             Schema.spec "OrderContact" [ Schema.spec "ContactName" [] ];
             Schema.spec "ReceivingContact" [ Schema.spec "ContactName" [] ];
             Schema.spec "OtherContact" [ Schema.spec "ContactName" [] ];
           ];
         Schema.spec "SupplierParty" [];
       ])

(* Figure 1(b): an OpenTrans-flavoured target schema. *)
let target =
  Schema.of_spec
    (Schema.spec "ORDER"
       [
         Schema.spec "SELLER_PARTY" [ Schema.spec "CONTACT_NAME" [] ];
         Schema.spec "INVOICE_PARTY" [ Schema.spec "CONTACT_NAME" [] ];
       ])

(* Figure 2: a source document. *)
let doc =
  let open Uxsm_xml.Tree in
  Uxsm_xml.Doc.of_tree
    (element "Order"
       [
         element "BillToParty"
           [
             element "OrderContact" [ leaf "ContactName" "Cathy" ];
             element "ReceivingContact" [ leaf "ContactName" "Bob" ];
             element "OtherContact" [ leaf "ContactName" "Alice" ];
           ];
         element "SupplierParty" [];
       ])

let () =
  (* 1. Automatic matching (COMA++-style): scored correspondences. *)
  let matching = Coma.run ~source ~target () in
  Printf.printf "== correspondences (%d) ==\n" (Matching.capacity matching);
  List.iter
    (fun (c : Matching.corr) ->
      Printf.printf "  %.2f  %s ~ %s\n"
        c.score
        (Schema.path_string source c.source)
        (Schema.path_string target c.target))
    (Matching.correspondences matching);

  (* 2. The uncertainty as possible mappings (top-5 by score). *)
  let mset = Mapping_set.generate ~h:5 matching in
  Printf.printf "\n== %d possible mappings, average o-ratio %.2f ==\n"
    (Mapping_set.size mset)
    (Mapping_set.average_o_ratio mset);
  List.iteri
    (fun i (m, p) ->
      Printf.printf "  m%d (p=%.2f): %s\n" (i + 1) p
        (String.concat ", "
           (List.map
              (fun (x, y) -> Schema.label source x ^ "~" ^ Schema.label target y)
              (Uxsm_mapping.Mapping.pairs m))))
    (Mapping_set.mappings mset);

  (* 3. The block tree: shared correspondences stored once. *)
  let tree = Block_tree.build ~params:{ Block_tree.tau = 0.4; max_b = 500; max_f = 500 } mset in
  Printf.printf "\n== block tree ==\n%s\n" (Format.asprintf "%a" Block_tree.pp_stats tree);

  (* 4. A probabilistic twig query: who is the invoice party's contact? *)
  let q = Parser.parse_exn "//INVOICE_PARTY//CONTACT_NAME" in
  let ctx = Ptq.context ~tree ~mset ~doc () in
  Printf.printf "\n== PTQ %s ==\n" "//INVOICE_PARTY//CONTACT_NAME";
  List.iter
    (fun (bindings, p) ->
      let render b =
        String.concat "+"
          (List.filter_map
             (fun (label, text) ->
               if label = "CONTACT_NAME" then Some text else None)
             (Ptq.binding_texts ctx q b))
      in
      let answer =
        match bindings with
        | [] -> "(no match)"
        | _ -> String.concat " | " (List.map render bindings)
      in
      Printf.printf "  p=%.2f  %s\n" p answer)
    (Ptq.consolidate (Ptq.query_tree ctx q))
