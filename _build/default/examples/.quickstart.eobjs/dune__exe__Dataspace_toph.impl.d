examples/dataspace_toph.ml: List Option Printf Unix Uxsm_assignment Uxsm_mapping Uxsm_schema Uxsm_workload
