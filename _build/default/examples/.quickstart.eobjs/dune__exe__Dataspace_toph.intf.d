examples/dataspace_toph.mli:
