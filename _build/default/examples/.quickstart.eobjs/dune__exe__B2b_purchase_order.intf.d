examples/b2b_purchase_order.mli:
