examples/uncertain_document.mli:
