examples/xsd_matching.mli:
