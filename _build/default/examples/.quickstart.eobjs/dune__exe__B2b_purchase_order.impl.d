examples/b2b_purchase_order.ml: List Printf String Uxsm_blocktree Uxsm_mapping Uxsm_ptq Uxsm_schema Uxsm_twig Uxsm_workload Uxsm_xml
