examples/uncertain_document.ml: List Printf Uxsm_blocktree Uxsm_mapping Uxsm_ptq Uxsm_twig Uxsm_util Uxsm_workload Uxsm_xml
