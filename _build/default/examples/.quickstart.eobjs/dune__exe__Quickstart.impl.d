examples/quickstart.ml: Format List Printf String Uxsm_blocktree Uxsm_mapping Uxsm_matcher Uxsm_ptq Uxsm_schema Uxsm_twig Uxsm_xml
