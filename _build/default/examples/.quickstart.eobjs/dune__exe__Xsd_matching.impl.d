examples/xsd_matching.ml: Filename List Printf String Sys Uxsm_blocktree Uxsm_mapping Uxsm_matcher Uxsm_ptq Uxsm_schema Uxsm_twig Uxsm_workload
