examples/query_rewriting.ml: Array List Printf String Uxsm_mapping Uxsm_ptq Uxsm_schema Uxsm_twig Uxsm_workload
