examples/quickstart.mli:
