(* Uncertainty on both sides, plus aggregates and keyword search.

   The paper's conclusion sketches two extensions implemented here: PTQ
   over *probabilistic XML documents* (the document's own elements may or
   may not exist) and other query types. This example runs the D7 workload
   with (1) an aggregate COUNT query, (2) per-match marginal probabilities,
   (3) keyword search, and (4) a PTQ over a randomized probabilistic
   version of the order document.

   Run with: dune exec examples/uncertain_document.exe *)

module Doc = Uxsm_xml.Doc
module Prob_doc = Uxsm_xml.Prob_doc
module Mapping_set = Uxsm_mapping.Mapping_set
module Block_tree = Uxsm_blocktree.Block_tree
module Pattern = Uxsm_twig.Pattern
module Ptq = Uxsm_ptq.Ptq
module Aggregate = Uxsm_ptq.Aggregate
module Keyword = Uxsm_ptq.Keyword
module Ptq_prob = Uxsm_ptq.Ptq_prob
module Dataset = Uxsm_workload.Dataset
module Gen_doc = Uxsm_workload.Gen_doc
module Queries = Uxsm_workload.Queries

let () =
  let mset = Dataset.mapping_set ~h:100 Dataset.d7 in
  let doc = Gen_doc.generate (Mapping_set.source mset) in
  let tree = Block_tree.build mset in
  let ctx = Ptq.context ~tree ~mset ~doc () in

  (* 1. Aggregate: how many order lines with a unit price does the order
     have, under schema-matching uncertainty? *)
  let q4 = Queries.q 4 in
  Printf.printf "== COUNT over %s ==\n" (Pattern.to_string q4);
  let c = Aggregate.count ctx q4 in
  List.iter
    (fun (v, p) -> Printf.printf "  P(count = %.0f) = %.2f\n" v p)
    c.Aggregate.distribution;
  (match c.Aggregate.expected with
  | Some e -> Printf.printf "  expected count: %.2f\n" e
  | None -> ());

  (* 2. Marginals: the most probable individual answers of Q1. *)
  let q1 = Queries.q 1 in
  Printf.printf "\n== per-match marginals of %s ==\n" (Pattern.to_string q1);
  List.iteri
    (fun i (b, p) ->
      if i < 3 then
        Printf.printf "  p=%.2f  street=%S\n" p
          (match Ptq.binding_texts ctx q1 b with
          | texts -> (
            match List.assoc_opt "Street" texts with
            | Some t -> t
            | None -> "?")))
    (Ptq.marginals (Ptq.query_tree ctx q1));

  (* 3. Keyword search: the user types terms, not paths. *)
  Printf.printf "\n== keyword search: quantity unitprice ==\n";
  List.iteri
    (fun i (hit : Keyword.hit) ->
      if i < 3 then begin
        Printf.printf "  interpretation: %s\n" (Pattern.to_string hit.Keyword.pattern);
        match hit.Keyword.answers with
        | (bindings, p) :: _ ->
          Printf.printf "    best answer set: %d matches with p=%.2f\n" (List.length bindings) p
        | [] -> ()
      end)
    (Keyword.search ctx [ "quantity"; "unitprice" ]);

  (* 4. A probabilistic document: 10% of the elements are only 70-100%
     certain to exist. *)
  Printf.printf "\n== PTQ over an uncertain document ==\n";
  let prng = Uxsm_util.Prng.create 11 in
  let pdoc = Prob_doc.randomize ~prng ~p_min:0.7 ~p_max:1.0 doc in
  let answers = Ptq_prob.query ctx pdoc q4 in
  let expected =
    List.fold_left
      (fun acc (a : Ptq_prob.answer) -> acc +. (a.mapping_prob *. a.expected_matches))
      0.0 answers
  in
  Printf.printf "  expected number of answers across both uncertainties: %.2f\n" expected;
  match Ptq_prob.match_marginals ctx pdoc q4 with
  | (_, p) :: _ -> Printf.printf "  most certain single answer: joint probability %.3f\n" p
  | [] -> print_endline "  no answers"
