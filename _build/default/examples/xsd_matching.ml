(* From real schema files to probabilistic answers.

   Loads two hand-written XSD excerpts (xCBL-style OrderRequest and
   openTRANS-style ORDER, under data/), matches them, derives the possible
   mappings, and answers a probabilistic twig query over a generated
   instance document — the full pipeline starting from schema files rather
   than from the synthetic workload.

   Run with: dune exec examples/xsd_matching.exe *)

module Schema = Uxsm_schema.Schema
module Xsd = Uxsm_schema.Xsd
module Matching = Uxsm_mapping.Matching
module Mapping_set = Uxsm_mapping.Mapping_set
module Coma = Uxsm_matcher.Coma
module Block_tree = Uxsm_blocktree.Block_tree
module Ptq = Uxsm_ptq.Ptq
module Gen_doc = Uxsm_workload.Gen_doc

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path =
  match Xsd.of_xsd_string (read_file path) with
  | Ok s -> s
  | Error e ->
    Printf.eprintf "cannot load %s: %s\n" path e;
    exit 1

let () =
  let dir = try Sys.getenv "UXSM_DATA" with Not_found -> "data" in
  let source = load (Filename.concat dir "xcbl_order.xsd") in
  let target = load (Filename.concat dir "opentrans_order.xsd") in
  Printf.printf "source: %d elements (OrderRequest), target: %d elements (ORDER)\n"
    (Schema.size source) (Schema.size target);

  let matching = Coma.run ~source ~target () in
  Printf.printf "\n%d correspondences; a few of them:\n" (Matching.capacity matching);
  List.iteri
    (fun i (c : Matching.corr) ->
      if i < 8 then
        Printf.printf "  %.2f %s ~ %s\n" c.score
          (Schema.path_string source c.source)
          (Schema.path_string target c.target))
    (Matching.correspondences matching);

  let mset = Mapping_set.generate ~h:20 matching in
  Printf.printf "\ntop-20 mappings, o-ratio %.2f\n" (Mapping_set.average_o_ratio mset);

  let doc = Gen_doc.generate ~target_nodes:200 source in
  let tree = Block_tree.build mset in
  let ctx = Ptq.context ~tree ~mset ~doc () in
  let query =
    Uxsm_twig.Pattern_parser.parse_exn
      "ORDER/ORDER_HEADER/DELIVERY_PARTY/CONTACT_NAME"
  in
  Printf.printf "\nPTQ %s:\n" (Uxsm_twig.Pattern.to_string query);
  List.iter
    (fun (bindings, p) ->
      let texts =
        List.concat_map
          (fun b ->
            List.filter_map
              (fun (label, text) -> if label = "CONTACT_NAME" then Some text else None)
              (Ptq.binding_texts ctx query b))
          bindings
      in
      Printf.printf "  p=%.2f  %s\n" p
        (match texts with
        | [] -> "(no match)"
        | _ -> String.concat " | " texts))
    (Ptq.consolidate (Ptq.query_tree ctx query))
