(* Query rewriting under uncertainty: how one target query becomes many
   source queries.

   A twig query posed on the Apertum-style target schema is rewritten
   through each possible mapping into a query over the XCBL-style source
   schema; different mappings yield different source queries (or none, when
   the mapped elements are structurally unrelated). This is the machinery
   behind Algorithm 3's rewrite step.

   Run with: dune exec examples/query_rewriting.exe *)

module Schema = Uxsm_schema.Schema
module Mapping = Uxsm_mapping.Mapping
module Mapping_set = Uxsm_mapping.Mapping_set
module Pattern = Uxsm_twig.Pattern
module Dataset = Uxsm_workload.Dataset
module Queries = Uxsm_workload.Queries
module Resolve = Uxsm_ptq.Resolve
module Rewrite = Uxsm_ptq.Rewrite

let () =
  let mset = Dataset.mapping_set ~h:8 Dataset.d7 in
  let source = Mapping_set.source mset and target = Mapping_set.target mset in
  let q = Queries.q 1 in
  Printf.printf "target query (on Apertum): %s\n\n" (Pattern.to_string q);
  let resolutions = Resolve.against q target in
  Printf.printf "%d resolution(s) against the target schema\n" (List.length resolutions);
  List.iter
    (fun resolution ->
      Printf.printf "\nresolution: %s\n"
        (String.concat ", "
           (Array.to_list (Array.map (Schema.path_string target) resolution)));
      List.iteri
        (fun i (m, p) ->
          let rewritten =
            Rewrite.through ~source ~pattern:q ~resolution ~at_top:true
              ~lookup:(Mapping.source_of m)
          in
          match rewritten with
          | Some q_s ->
            Printf.printf "  m%d (p=%.3f) -> %s\n" (i + 1) p (Pattern.to_string q_s)
          | None ->
            Printf.printf "  m%d (p=%.3f) -> (not rewritable: missing or unrelated elements)\n"
              (i + 1) p)
        (Mapping_set.mappings mset))
    resolutions
