(* Dataspace-style mapping generation: Section V at scale.

   Systems like Dataspace or GoogleBase maintain mappings for many user
   schemas, so deriving the top-h mappings from a matching must be fast.
   This example runs both generators — Murty's ranking over the whole
   bipartite graph, and the paper's divide-and-conquer partitioning — over
   all ten Table II matchings and reports timings and the number of
   partitions, then prints the top mappings of the smallest dataset.

   Run with: dune exec examples/dataspace_toph.exe *)

module Schema = Uxsm_schema.Schema
module Matching = Uxsm_mapping.Matching
module Mapping = Uxsm_mapping.Mapping
module Mapping_set = Uxsm_mapping.Mapping_set
module Partition = Uxsm_assignment.Partition
module Murty = Uxsm_assignment.Murty
module Dataset = Uxsm_workload.Dataset

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let () =
  Printf.printf "%-5s %12s %12s %12s %10s\n" "ID" "murty" "partition" "#partitions" "speedup";
  List.iter
    (fun (d : Dataset.t) ->
      let g = Matching.to_bipartite (Dataset.matching d) in
      let comps = Partition.components g in
      let _, tm = time (fun () -> Murty.top ~h:100 g) in
      let _, tp = time (fun () -> Partition.top ~h:100 g) in
      Printf.printf "%-5s %10.1fms %10.1fms %12d %9.1fx\n%!" d.id (tm *. 1000.0) (tp *. 1000.0)
        (List.length comps)
        (tm /. tp))
    Dataset.all;

  (* Show what the generated uncertainty actually looks like on D1. *)
  let d1 = Option.get (Dataset.find "D1") in
  let mset = Dataset.mapping_set ~h:5 d1 in
  let source = Mapping_set.source mset and target = Mapping_set.target mset in
  Printf.printf "\ntop-5 mappings of %s (Excel -> Noris):\n" d1.id;
  List.iteri
    (fun i (m, p) ->
      Printf.printf "  m%d: probability %.3f, %d correspondences\n" (i + 1) p (Mapping.size m);
      List.iteri
        (fun j (x, y) ->
          if j < 4 then
            Printf.printf "      %s ~ %s\n" (Schema.path_string source x)
              (Schema.path_string target y))
        (Mapping.pairs m);
      if Mapping.size m > 4 then Printf.printf "      ...\n")
    (Mapping_set.mappings mset)
