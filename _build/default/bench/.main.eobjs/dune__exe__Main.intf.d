bench/main.mli:
