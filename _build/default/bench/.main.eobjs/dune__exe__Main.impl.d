bench/main.ml: Array Harness Hashtbl Lazy List Option Printf String Sys Unix Uxsm_assignment Uxsm_blocktree Uxsm_mapping Uxsm_matcher Uxsm_ptq Uxsm_schema Uxsm_twig Uxsm_workload Uxsm_xml
