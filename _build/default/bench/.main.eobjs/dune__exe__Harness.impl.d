bench/harness.ml: Analyze Bechamel Benchmark Float Instance Measure Printf Staged Test Time Toolkit Unix
