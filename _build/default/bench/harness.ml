(* Thin wrapper over Bechamel: one Test.make per measured point, OLS over
   the monotonic clock, returning seconds per run. Expensive points (whole
   PTQ evaluations over hundreds of mappings, Murty runs) get a small run
   budget; Bechamel's sampling keeps cheap points precise. *)

open Bechamel
open Toolkit

let default_quota = ref 0.3

let seconds_per_run ?quota ~name f =
  let quota =
    match quota with
    | Some q -> q
    | None -> !default_quota
  in
  let test = Test.make ~name (Staged.stage f) in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second quota)
      ~kde:None ~stabilize:false ()
  in
  let elt =
    match Test.elements test with
    | [ e ] -> e
    | _ -> assert false
  in
  let raw = Benchmark.run cfg Instance.[ monotonic_clock ] elt in
  let ols =
    Analyze.one
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  match Analyze.OLS.estimates ols with
  | Some [ ns ] when Float.is_finite ns -> ns *. 1e-9
  | _ ->
    (* Degenerate sample (e.g. a single very slow run): fall back to one
       timed execution. *)
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0

(* Output helpers: every experiment prints a titled section with aligned
   rows so the bench output reads like the paper's tables. *)

let section id title =
  Printf.printf "\n=== %s: %s ===\n%!" id title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "    %s\n%!" s) fmt

let row fmt = Printf.ksprintf (fun s -> Printf.printf "  %s\n%!" s) fmt
