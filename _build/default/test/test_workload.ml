(* Workload tests: standard schema generation (sizes, query paths,
   determinism), document generation (node counts, conformance), and the
   Table III query set. *)

module Schema = Uxsm_schema.Schema
module Doc = Uxsm_xml.Doc
module Standards = Uxsm_workload.Standards
module Gen_doc = Uxsm_workload.Gen_doc
module Queries = Uxsm_workload.Queries
module Dataset = Uxsm_workload.Dataset
module Resolve = Uxsm_ptq.Resolve

let all_styles =
  [
    Standards.excel; Standards.noris; Standards.paragon; Standards.opentrans;
    Standards.apertum; Standards.xcbl; Standards.cidx;
  ]

let test_style_sizes () =
  List.iter
    (fun st ->
      let s = Standards.generate st in
      Alcotest.(check int) (Standards.style_name st) (Standards.style_size st) (Schema.size s))
    all_styles

let test_paths_unique () =
  List.iter
    (fun st ->
      let s = Standards.generate st in
      List.iter
        (fun e ->
          Alcotest.(check (option int))
            (Standards.style_name st ^ ": " ^ Schema.path_string s e)
            (Some e)
            (Schema.find_by_path s (Schema.path_string s e)))
        (Schema.elements s))
    [ Standards.apertum; Standards.cidx; Standards.xcbl ]

let test_apertum_query_paths () =
  let a = Standards.generate Standards.apertum in
  List.iter
    (fun p ->
      Alcotest.(check bool) p true (Schema.find_by_path a p <> None))
    [
      "Order"; "Order.Buyer.Contact"; "Order.DeliverTo.Address.City";
      "Order.DeliverTo.Address.Country"; "Order.DeliverTo.Address.Street";
      "Order.DeliverTo.Contact.EMail"; "Order.POLine.LineNo"; "Order.POLine.BuyerPartID";
      "Order.POLine.Quantity"; "Order.POLine.Pricing.UnitPrice";
    ]

let test_generation_deterministic () =
  let a = Standards.generate ~seed:5 Standards.apertum in
  let b = Standards.generate ~seed:5 Standards.apertum in
  Alcotest.(check bool) "same seed, same schema" true (Schema.equal a b);
  (* Apertum is padded with seed-dependent filler; Noris has no filler at
     all (its core already exceeds 66 elements), so seeds only matter for
     padded styles. *)
  let c = Standards.generate ~seed:6 Standards.apertum in
  Alcotest.(check bool) "different seed differs" true (not (Schema.equal a c))

let test_queries_parse_and_resolve () =
  let a = Standards.generate Standards.apertum in
  Alcotest.(check int) "ten queries" 10 (List.length Queries.table3);
  List.iter
    (fun (id, q) ->
      let rs = Resolve.against q a in
      Alcotest.(check bool) (id ^ " resolves") true (rs <> []))
    Queries.table3

let test_document_size_and_conformance () =
  let x = Standards.generate Standards.xcbl in
  let doc = Gen_doc.generate x in
  Alcotest.(check int) "3473 nodes like Order.xml" 3473 (Doc.size doc);
  (* Conformance: every document path is a schema path. *)
  let ok = ref true in
  for v = 0 to Doc.size doc - 1 do
    let p = String.concat "." (Doc.path doc v) in
    if Schema.find_by_path x p = None then ok := false
  done;
  Alcotest.(check bool) "document conforms to schema" true !ok

let test_document_leaf_values () =
  let x = Standards.generate Standards.xcbl in
  let doc = Gen_doc.generate x in
  (* Every leaf element carries non-empty text. *)
  let ok = ref true in
  for v = 0 to Doc.size doc - 1 do
    if Doc.children doc v = [] && String.length (Doc.text doc v) = 0 then ok := false
  done;
  Alcotest.(check bool) "leaves have values" true !ok;
  Alcotest.(check bool) "deterministic" true
    (Doc.size (Gen_doc.generate x) = Doc.size doc)

let test_leaf_value_heuristics () =
  let prng = Uxsm_util.Prng.create 1 in
  let is_int s = match int_of_string_opt s with Some _ -> true | None -> false in
  Alcotest.(check bool) "quantity numeric" true (is_int (Gen_doc.leaf_value prng "Quantity"));
  Alcotest.(check bool) "id numeric" true (is_int (Gen_doc.leaf_value prng "BuyerPartID"));
  let mail = Gen_doc.leaf_value prng "EMail" in
  Alcotest.(check bool) "email-ish" true (String.contains mail '@')

let test_small_document_fallback () =
  let s = Standards.generate Standards.cidx in
  (* target below schema size: single instance *)
  let doc = Gen_doc.generate ~target_nodes:10 s in
  Alcotest.(check int) "single instance" (Schema.size s) (Doc.size doc)

let test_dataset_capacities () =
  (* The small datasets are cheap enough to check exactly in tests; the
     XCBL-sized ones are covered by the bench. *)
  List.iter
    (fun id ->
      let d = Option.get (Dataset.find id) in
      let m = Dataset.matching d in
      Alcotest.(check int) (id ^ " capacity") d.capacity
        (Uxsm_mapping.Matching.capacity m))
    [ "D1"; "D2"; "D3"; "D4"; "D5" ]

let suite =
  [
    Alcotest.test_case "style sizes match Table II" `Quick test_style_sizes;
    Alcotest.test_case "paths unique" `Quick test_paths_unique;
    Alcotest.test_case "Apertum has the query paths" `Quick test_apertum_query_paths;
    Alcotest.test_case "generation deterministic" `Quick test_generation_deterministic;
    Alcotest.test_case "Table III queries parse and resolve" `Quick test_queries_parse_and_resolve;
    Alcotest.test_case "Order.xml size and conformance" `Slow test_document_size_and_conformance;
    Alcotest.test_case "document leaf values" `Slow test_document_leaf_values;
    Alcotest.test_case "leaf value heuristics" `Quick test_leaf_value_heuristics;
    Alcotest.test_case "small document fallback" `Quick test_small_document_fallback;
    Alcotest.test_case "small dataset capacities" `Slow test_dataset_capacities;
  ]
