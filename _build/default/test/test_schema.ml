(* Schema tree tests: construction, navigation, text format round trips,
   and the schema-as-XML bridge used by query resolution. *)

module Schema = Uxsm_schema.Schema
module Doc = Uxsm_xml.Doc

let fig1 = Fixtures.fig1_source

let test_navigation () =
  Alcotest.(check int) "size" 9 (Schema.size fig1);
  Alcotest.(check string) "root label" "Order" (Schema.label fig1 (Schema.root fig1));
  Alcotest.(check (option int)) "BP parent" (Some 0) (Schema.parent fig1 Fixtures.s_bp);
  Alcotest.(check (list int)) "BP children" [ 2; 4; 6 ] (Schema.children fig1 Fixtures.s_bp);
  Alcotest.(check int) "BP subtree size" 7 (Schema.subtree_size fig1 Fixtures.s_bp);
  Alcotest.(check bool) "BP ancestor of BCN" true (Schema.is_ancestor fig1 Fixtures.s_bp Fixtures.s_bcn);
  Alcotest.(check bool) "BCN not ancestor of BP" false
    (Schema.is_ancestor fig1 Fixtures.s_bcn Fixtures.s_bp);
  Alcotest.(check bool) "not self-ancestor" false (Schema.is_ancestor fig1 Fixtures.s_bp Fixtures.s_bp);
  Alcotest.(check int) "height" 3 (Schema.height fig1);
  Alcotest.(check int) "max fanout" 3 (Schema.max_fanout fig1);
  Alcotest.(check (list int)) "leaves" [ 3; 5; 7; 8 ] (Schema.leaves fig1)

let test_paths () =
  Alcotest.(check string) "path string" "Order.BP.ROC.RCN" (Schema.path_string fig1 Fixtures.s_rcn);
  Alcotest.(check (option int)) "find_by_path" (Some Fixtures.s_rcn)
    (Schema.find_by_path fig1 "Order.BP.ROC.RCN");
  Alcotest.(check (option int)) "missing path" None (Schema.find_by_path fig1 "Order.Nope");
  Alcotest.(check (list int)) "find_by_label multi" [ 2; 3; 4; 5; 6; 7 ]
    (List.concat_map (Schema.find_by_label fig1) [ "BOC"; "BCN"; "ROC"; "RCN"; "OOC"; "OCN" ])

let test_subtree_contiguity () =
  (* Pre-order ids of a subtree are contiguous, which the block tree and
     PTQ decomposition rely on. *)
  List.iter
    (fun e ->
      let elems = Schema.subtree_elements fig1 e in
      Alcotest.(check (list int)) "contiguous"
        (List.init (Schema.subtree_size fig1 e) (fun i -> e + i))
        elems)
    (Schema.elements fig1)

let test_text_round_trip () =
  let s = Schema.to_string fig1 in
  match Schema.of_string s with
  | Ok schema -> Alcotest.(check bool) "round trip" true (Schema.equal fig1 schema)
  | Error e -> Alcotest.fail e

let test_text_format_errors () =
  let fails s =
    match Schema.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected failure on %S" s
  in
  fails "";
  fails "  indented_root";
  fails "a\nb";  (* two roots *)
  fails "a\n   odd_indent"

let test_repeatable_marker () =
  let s = Schema.of_spec (Schema.spec "a" [ Schema.spec ~repeatable:true "b" [] ]) in
  Alcotest.(check bool) "b repeatable" true (Schema.repeatable s 1);
  let text = Schema.to_string s in
  Alcotest.(check bool) "star marker" true (String.length text > 0 && String.contains text '*');
  match Schema.of_string text with
  | Ok s' -> Alcotest.(check bool) "repeatable round trip" true (Schema.equal s s')
  | Error e -> Alcotest.fail e

let test_to_xml_tree_alignment () =
  (* Doc indexing of the schema tree must assign ids equal to element ids. *)
  let doc = Doc.of_tree (Schema.to_xml_tree fig1) in
  Alcotest.(check int) "same size" (Schema.size fig1) (Doc.size doc);
  List.iter
    (fun e ->
      Alcotest.(check string) "same label" (Schema.label fig1 e) (Doc.label doc e);
      Alcotest.(check (option int)) "same parent" (Schema.parent fig1 e) (Doc.parent doc e))
    (Schema.elements fig1)

let prop_random_schema_invariants =
  QCheck.Test.make ~count:150 ~name:"random schemas: paths unique, sizes consistent"
    QCheck.(pair (int_range 1 1000000) (int_range 1 60))
    (fun (seed, n) ->
      let prng = Uxsm_util.Prng.create seed in
      let s = Fixtures.random_schema prng ~n in
      Schema.size s = n
      && List.for_all
           (fun e -> Schema.find_by_path s (Schema.path_string s e) = Some e)
           (Schema.elements s)
      && Schema.subtree_size s (Schema.root s) = n)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "navigation" `Quick test_navigation;
    Alcotest.test_case "paths" `Quick test_paths;
    Alcotest.test_case "subtree contiguity" `Quick test_subtree_contiguity;
    Alcotest.test_case "text format round trip" `Quick test_text_round_trip;
    Alcotest.test_case "text format errors" `Quick test_text_format_errors;
    Alcotest.test_case "repeatable marker" `Quick test_repeatable_marker;
    Alcotest.test_case "to_xml_tree id alignment" `Quick test_to_xml_tree_alignment;
    q prop_random_schema_invariants;
  ]
