(* Shared PTQ context builders for suites. *)

let fig_ctx ?(tau = 0.4) () =
  let tree =
    Uxsm_blocktree.Block_tree.build
      ~params:{ Uxsm_blocktree.Block_tree.tau; max_b = 500; max_f = 500 }
      Fixtures.fig3_mset
  in
  Uxsm_ptq.Ptq.context ~tree ~mset:Fixtures.fig3_mset ~doc:Fixtures.fig2_doc ()
