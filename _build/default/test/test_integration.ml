(* Integration tests: the full pipeline (standards -> matcher -> top-h ->
   block tree -> PTQ) on the small Table II datasets, plus cross-algorithm
   agreement at workload scale. *)

module Schema = Uxsm_schema.Schema
module Matching = Uxsm_mapping.Matching
module Mapping = Uxsm_mapping.Mapping
module Mapping_set = Uxsm_mapping.Mapping_set
module Murty = Uxsm_assignment.Murty
module Partition = Uxsm_assignment.Partition
module Block_tree = Uxsm_blocktree.Block_tree
module Ptq = Uxsm_ptq.Ptq
module Dataset = Uxsm_workload.Dataset
module Standards = Uxsm_workload.Standards
module Gen_doc = Uxsm_workload.Gen_doc
module Queries = Uxsm_workload.Queries

let d1 = Option.get (Dataset.find "D1")
let d4 = Option.get (Dataset.find "D4")

let test_mapping_set_properties () =
  List.iter
    (fun d ->
      let mset = Dataset.mapping_set ~h:50 d in
      let probs = List.map snd (Mapping_set.mappings mset) in
      let total = List.fold_left ( +. ) 0.0 probs in
      Alcotest.(check (float 1e-9)) "probabilities sum to 1" 1.0 total;
      let scores = List.map (fun (m, _) -> Mapping.score m) (Mapping_set.mappings mset) in
      let sorted_desc = List.sort (fun a b -> Float.compare b a) scores in
      Alcotest.(check bool) "scores non-increasing" true
        (List.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) scores sorted_desc))
    [ d1; d4 ]

let test_murty_agrees_with_partition_on_datasets () =
  List.iter
    (fun d ->
      let g = Matching.to_bipartite (Dataset.matching d) in
      let a = Murty.top ~h:40 g and b = Partition.top ~h:40 g in
      Alcotest.(check int) (d.Dataset.id ^ " same count") (List.length a) (List.length b);
      List.iter2
        (fun (x : Murty.solution) (y : Murty.solution) ->
          Alcotest.(check bool)
            (d.Dataset.id ^ " same score sequence")
            true
            (Float.abs (x.score -. y.score) < 1e-9))
        a b)
    [ d1; d4 ]

let test_block_tree_on_dataset () =
  let mset = Dataset.mapping_set ~h:60 d4 in
  let tree = Block_tree.build mset in
  (match Block_tree.validate tree with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "some blocks exist" true (Block_tree.n_blocks tree > 0)

let test_ptq_pipeline_on_dataset () =
  (* Full PTQ on D4 (Noris -> Paragon) with a query built from the target
     schema so it resolves by construction. *)
  let mset = Dataset.mapping_set ~h:60 d4 in
  let target = Mapping_set.target mset in
  let doc = Gen_doc.generate ~target_nodes:400 (Mapping_set.source mset) in
  let tree = Block_tree.build mset in
  let ctx = Ptq.context ~tree ~mset ~doc () in
  (* query: the root with its first two children as branches *)
  let root = Schema.root target in
  let query =
    match Schema.children target root with
    | c1 :: c2 :: _ ->
      Uxsm_twig.Pattern.pattern
        (Uxsm_twig.Pattern.node
           ~preds:[ (Uxsm_twig.Pattern.Child, Uxsm_twig.Pattern.node (Schema.label target c1)) ]
           ~next:(Uxsm_twig.Pattern.Descendant, Uxsm_twig.Pattern.node (Schema.label target c2))
           (Schema.label target root))
    | _ -> Alcotest.fail "target root needs two children"
  in
  let basic = Ptq.query_basic ctx query in
  let tree_answers = Ptq.query_tree ctx query in
  Alcotest.(check int) "same answer count" (List.length basic) (List.length tree_answers);
  List.iter2
    (fun (a : Ptq.answer) (b : Ptq.answer) ->
      Alcotest.(check int) "same mapping" a.mapping_id b.mapping_id;
      Alcotest.(check bool) "same bindings" true (a.bindings = b.bindings))
    basic tree_answers

let test_d7_full_stack () =
  (* The headline configuration: D7, |M|=100, Order.xml-sized document, all
     ten queries answered identically by Algorithms 3 and 4. Slow. *)
  let mset = Dataset.mapping_set ~h:100 Dataset.d7 in
  let doc = Gen_doc.generate (Mapping_set.source mset) in
  let tree = Block_tree.build mset in
  (match Block_tree.validate tree with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let ctx = Ptq.context ~tree ~mset ~doc () in
  List.iter
    (fun (id, q) ->
      let basic = Ptq.query_basic ctx q in
      let fast = Ptq.query_tree ctx q in
      Alcotest.(check int) (id ^ ": all mappings relevant") 100 (List.length basic);
      Alcotest.(check bool) (id ^ ": tree = basic") true
        (List.for_all2
           (fun (a : Ptq.answer) (b : Ptq.answer) ->
             a.mapping_id = b.mapping_id && a.bindings = b.bindings)
           basic fast))
    Queries.table3

(* Regression pins: the deterministic D7 workload must keep producing the
   exact headline numbers EXPERIMENTS.md reports. A failure here means a
   generator or algorithm change silently altered the reproduction. *)
let test_d7_regression_pins () =
  let m = Dataset.matching Dataset.d7 in
  Alcotest.(check int) "capacity" 226 (Matching.capacity m);
  let mset = Dataset.mapping_set ~h:100 Dataset.d7 in
  let o = Mapping_set.average_o_ratio mset in
  Alcotest.(check bool) "o-ratio in [0.88, 0.96]" true (o >= 0.88 && o <= 0.96);
  let tree = Block_tree.build mset in
  Alcotest.(check int) "126 c-blocks at defaults" 126 (Block_tree.n_blocks tree);
  let sizes = Block_tree.block_sizes tree in
  Alcotest.(check int) "largest block 32 corrs" 32 (List.fold_left max 0 sizes);
  let ratio = Block_tree.compression_ratio tree in
  Alcotest.(check bool) "compression near 20%" true (ratio > 0.15 && ratio < 0.25);
  let doc = Gen_doc.generate (Mapping_set.source mset) in
  Alcotest.(check int) "Order.xml node count" 3473 (Uxsm_xml.Doc.size doc)

let suite =
  [
    Alcotest.test_case "mapping sets: probabilities and order" `Slow test_mapping_set_properties;
    Alcotest.test_case "murty = partition on datasets" `Slow test_murty_agrees_with_partition_on_datasets;
    Alcotest.test_case "block tree on D4" `Slow test_block_tree_on_dataset;
    Alcotest.test_case "PTQ pipeline on D4" `Slow test_ptq_pipeline_on_dataset;
    Alcotest.test_case "D7 full stack, ten queries" `Slow test_d7_full_stack;
    Alcotest.test_case "D7 regression pins" `Slow test_d7_regression_pins;
  ]
