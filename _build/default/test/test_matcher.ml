(* Matcher tests: name similarities, synonym closure, structural measures,
   and the COMA-style composite matcher with capacity tuning. *)

module Name_sim = Uxsm_matcher.Name_sim
module Structure_sim = Uxsm_matcher.Structure_sim
module Coma = Uxsm_matcher.Coma
module Schema = Uxsm_schema.Schema
module Matching = Uxsm_mapping.Matching

let test_tokenize () =
  let check name expect = Alcotest.(check (list string)) name expect (Name_sim.tokenize name) in
  check "BuyerPartID" [ "buyer"; "part"; "id" ];
  check "BUYER_PART_ID" [ "buyer"; "part"; "id" ];
  check "buyer-part.id" [ "buyer"; "part"; "id" ];
  check "POLine" [ "po"; "line" ];
  check "Item2" [ "item"; "2" ];
  check "EMail" [ "e"; "mail" ];
  Alcotest.(check (list string)) "empty" [] (Name_sim.tokenize "")

let test_levenshtein () =
  let check a b expect = Alcotest.(check int) (a ^ "/" ^ b) expect (Name_sim.levenshtein a b) in
  check "" "" 0;
  check "abc" "" 3;
  check "kitten" "sitting" 3;
  check "order" "order" 0;
  check "order" "odrer" 2

let test_similarity_ranges () =
  Alcotest.(check (float 1e-9)) "identical" 1.0 (Name_sim.edit_similarity "City" "city");
  Alcotest.(check (float 1e-9)) "identical trigram" 1.0 (Name_sim.trigram_similarity "City" "CITY");
  let s = Name_sim.combined "completely" "different" in
  Alcotest.(check bool) "in range" true (s >= 0.0 && s <= 1.0)

let test_synonym_closure () =
  let syn = Name_sim.synonyms () in
  (* order~purchase and order~po imply purchase~po (transitive closure) *)
  Alcotest.(check (float 1e-9)) "purchase~po" 1.0
    (Name_sim.token_similarity ~synonyms:syn "Purchase" "PO");
  Alcotest.(check (float 1e-9)) "deliver~ship" 1.0
    (Name_sim.token_similarity ~synonyms:syn "Deliver" "Ship");
  let custom = Name_sim.synonyms ~extra:[ ("foo", "bar") ] () in
  Alcotest.(check (float 1e-9)) "extra pair" 1.0
    (Name_sim.token_similarity ~synonyms:custom "foo" "bar")

let test_structure_sims () =
  let name_sim = Name_sim.combined ?synonyms:None in
  let s = Fixtures.fig1_source and t = Fixtures.fig1_target in
  (* identical leaf sets -> 1; disjoint -> below *)
  Alcotest.(check (float 1e-9)) "both leaves" 1.0
    (Structure_sim.children_similarity ~name_sim s Fixtures.s_bcn t Fixtures.t_icn);
  let ps = Structure_sim.path_similarity ~name_sim s Fixtures.s_bcn t Fixtures.t_icn in
  Alcotest.(check bool) "path sim in range" true (ps > 0.0 && ps < 1.0);
  Alcotest.(check (float 1e-9)) "soft set: both empty" 1.0
    (Structure_sim.soft_set_similarity ~name_sim [] []);
  Alcotest.(check (float 1e-9)) "soft set: one empty" 0.0
    (Structure_sim.soft_set_similarity ~name_sim [ "a" ] [])

let small_source =
  Schema.of_spec
    (Schema.spec "Order"
       [
         Schema.spec "Buyer" [ Schema.spec "City" []; Schema.spec "Street" [] ];
         Schema.spec "Lines" [ Schema.spec "Quantity" [] ];
       ])

let small_target =
  Schema.of_spec
    (Schema.spec "Purchase"
       [
         Schema.spec "Customer" [ Schema.spec "City" []; Schema.spec "Road" [] ];
         Schema.spec "Items" [ Schema.spec "Qty" [] ];
       ])

let test_matcher_finds_expected () =
  let m = Coma.run ~source:small_source ~target:small_target () in
  let has sp tp =
    let x = Option.get (Schema.find_by_path small_source sp) in
    let y = Option.get (Schema.find_by_path small_target tp) in
    Matching.score m x y <> None
  in
  Alcotest.(check bool) "Order~Purchase" true (has "Order" "Purchase");
  Alcotest.(check bool) "Buyer~Customer" true (has "Order.Buyer" "Purchase.Customer");
  Alcotest.(check bool) "City~City" true (has "Order.Buyer.City" "Purchase.Customer.City");
  Alcotest.(check bool) "Street~Road" true (has "Order.Buyer.Street" "Purchase.Customer.Road");
  Alcotest.(check bool) "Quantity~Qty" true (has "Order.Lines.Quantity" "Purchase.Items.Qty");
  Alcotest.(check bool) "no City~Qty" true (not (has "Order.Buyer.City" "Purchase.Items.Qty"))

let test_scores_quantized () =
  let m = Coma.run ~source:small_source ~target:small_target () in
  List.iter
    (fun (c : Matching.corr) ->
      let scaled = c.score *. 50.0 in
      Alcotest.(check (float 1e-6)) "multiple of 0.02" (Float.round scaled) scaled)
    (Matching.correspondences m)

let test_capacity_tuning () =
  List.iter
    (fun cap ->
      let m =
        Coma.run_with_capacity ~strategy:Coma.Context ~capacity:cap ~source:small_source
          ~target:small_target ()
      in
      Alcotest.(check int) (Printf.sprintf "capacity %d" cap) cap (Matching.capacity m))
    [ 1; 3; 5 ]

let test_both_direction_selection () =
  (* delta-band selection: kept pairs are within delta of both elements'
     best scores. *)
  let cfg = Coma.default_config Coma.Context in
  let m = Coma.run ~config:cfg ~source:small_source ~target:small_target () in
  let best tbl key v = Hashtbl.replace tbl key (max v (try Hashtbl.find tbl key with Not_found -> 0.0)) in
  let best_s = Hashtbl.create 8 and best_t = Hashtbl.create 8 in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          let s = Coma.pair_score cfg small_source x small_target y in
          best best_s x s;
          best best_t y s)
        (Schema.elements small_target))
    (Schema.elements small_source);
  List.iter
    (fun (c : Matching.corr) ->
      let raw = Coma.pair_score cfg small_source c.source small_target c.target in
      Alcotest.(check bool) "within delta of row best" true
        (raw >= Hashtbl.find best_s c.source -. cfg.delta -. 1e-9);
      Alcotest.(check bool) "within delta of col best" true
        (raw >= Hashtbl.find best_t c.target -. cfg.delta -. 1e-9))
    (Matching.correspondences m)

let test_mediate () =
  let sources =
    [
      ("excel", Uxsm_workload.Standards.generate Uxsm_workload.Standards.excel);
      ("noris", Uxsm_workload.Standards.generate Uxsm_workload.Standards.noris);
      ("cidx", Uxsm_workload.Standards.generate Uxsm_workload.Standards.cidx);
    ]
  in
  let mediated = Uxsm_matcher.Mediate.build sources in
  (* The mediated schema covers at least the seed source. *)
  Alcotest.(check bool) "mediated at least as large as the seed" true
    (Schema.size mediated.Uxsm_matcher.Mediate.schema >= 48);
  List.iter
    (fun (name, _) ->
      let m = List.assoc name mediated.Uxsm_matcher.Mediate.matchings in
      Alcotest.(check bool) (name ^ " has correspondences") true (Matching.capacity m > 0);
      let cov = Uxsm_matcher.Mediate.coverage mediated name in
      Alcotest.(check bool) (name ^ " coverage above half") true (cov > 0.5))
    sources;
  (* Paths must stay unique after grafting. *)
  let med = mediated.Uxsm_matcher.Mediate.schema in
  List.iter
    (fun e ->
      Alcotest.(check bool) "path unique" true
        (Schema.find_by_path med (Schema.path_string med e) = Some e))
    (Schema.elements med);
  (* Probabilistic mediated-to-source mappings come out of the usual
     pipeline. *)
  let mset =
    Uxsm_mapping.Mapping_set.generate ~h:10
      (List.assoc "cidx" mediated.Uxsm_matcher.Mediate.matchings)
  in
  Alcotest.(check bool) "mappings derived" true (Uxsm_mapping.Mapping_set.size mset >= 2)

let test_mediate_validation () =
  match Uxsm_matcher.Mediate.build [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty source list should fail"

let suite =
  [
    Alcotest.test_case "tokenize" `Quick test_tokenize;
    Alcotest.test_case "levenshtein" `Quick test_levenshtein;
    Alcotest.test_case "similarity ranges" `Quick test_similarity_ranges;
    Alcotest.test_case "synonym closure" `Quick test_synonym_closure;
    Alcotest.test_case "structure similarities" `Quick test_structure_sims;
    Alcotest.test_case "matcher finds expected pairs" `Quick test_matcher_finds_expected;
    Alcotest.test_case "scores quantized to 0.02" `Quick test_scores_quantized;
    Alcotest.test_case "capacity tuning" `Quick test_capacity_tuning;
    Alcotest.test_case "both-direction delta selection" `Quick test_both_direction_selection;
    Alcotest.test_case "mediated schema bootstrap" `Slow test_mediate;
    Alcotest.test_case "mediate validation" `Quick test_mediate_validation;
  ]
