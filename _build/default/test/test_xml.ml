(* XML substrate tests: parser, printer, and indexed-document invariants. *)

module Tree = Uxsm_xml.Tree
module Doc = Uxsm_xml.Doc
module Parser = Uxsm_xml.Parser
module Printer = Uxsm_xml.Printer

let parse s =
  match Parser.parse s with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse failed: %s" (Parser.error_to_string e)

let test_parse_basics () =
  let t = parse "<a><b>hi</b><c x=\"1\" y=\"two\"/></a>" in
  Alcotest.(check int) "two elements under a" 3 (Tree.node_count t);
  match t with
  | Tree.Element { name = "a"; children = [ Tree.Element b; Tree.Element c ]; _ } ->
    Alcotest.(check string) "b name" "b" b.name;
    Alcotest.(check (list (pair string string))) "c attrs" [ ("x", "1"); ("y", "two") ] c.attrs
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_entities_and_cdata () =
  let t = parse "<a>x &lt;&amp;&gt; y&#65;&#x42;<![CDATA[<raw>&amp;]]></a>" in
  Alcotest.(check string) "decoded text" "x <&> yAB<raw>&amp;" (Tree.text_content t)

let test_parse_misc () =
  let t = parse "<?xml version=\"1.0\"?><!-- hello --><!DOCTYPE a [<!ELEMENT a ANY>]><a/><!-- bye -->" in
  Alcotest.(check string) "root name" "a" (Tree.name t)

let test_parse_errors () =
  let fails s =
    match Parser.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected a parse error for %s" s
  in
  fails "";
  fails "<a>";
  fails "<a></b>";
  fails "<a>&unknown;</a>";
  fails "<a/><b/>";
  fails "just text"

let test_printer_escapes () =
  let t = Tree.element "a" ~attrs:[ ("k", "a\"b&c") ] [ Tree.text "1 < 2 & 3 > 2" ] in
  let s = Printer.to_string t in
  Alcotest.(check string) "escaped" "<a k=\"a&quot;b&amp;c\">1 &lt; 2 &amp; 3 &gt; 2</a>" s;
  Alcotest.(check bool) "round trip" true (Tree.equal t (parse s))

(* Random trees with text leaves for round-trip and indexing properties. *)
(* Canonical trees only: leaf elements hold a single text node, inner
   elements hold elements. (Adjacent text nodes cannot round-trip through
   any serializer, so the generator never produces them.) *)
let gen_tree =
  let open QCheck.Gen in
  let label = oneofl [ "a"; "b"; "c"; "node"; "Item" ] in
  let text = oneofl [ "x"; "hello world"; "<&>"; "42" ] in
  let rec tree budget =
    if budget <= 1 then
      let* l = label in
      let* txt = text in
      return (Tree.leaf l txt)
    else
      let* n_kids = int_range 0 3 in
      if n_kids = 0 then
        let* l = label in
        let* txt = text in
        return (Tree.leaf l txt)
      else
        let* l = label in
        let* kids = flatten_l (List.init n_kids (fun _ -> tree (budget / (n_kids + 1)))) in
        return (Tree.element l kids)
  in
  let* budget = int_range 2 40 in
  let* l = label in
  let* kids = flatten_l (List.init 3 (fun _ -> tree budget)) in
  return (Tree.element l kids)

let arb_tree = QCheck.make gen_tree ~print:(Printer.to_string ~indent:2)

let prop_print_parse_round_trip =
  QCheck.Test.make ~count:200 ~name:"parse (print t) = t" arb_tree (fun t ->
      Tree.equal t (parse (Printer.to_string t)))

let prop_pretty_print_parse_round_trip =
  QCheck.Test.make ~count:200 ~name:"parse (pretty-print t) = t (element structure)" arb_tree
    (fun t ->
      (* Indented printing preserves structure; whitespace-only text framing
         is dropped at parse time, which matches because text only occurs in
         leaf elements (printed inline). *)
      Tree.equal t (parse (Printer.to_string ~indent:2 t)))

let prop_doc_indexing =
  QCheck.Test.make ~count:200 ~name:"Doc invariants: pre/post/level/subtree_end" arb_tree
    (fun t ->
      let doc = Doc.of_tree t in
      let n = Doc.size doc in
      n = Tree.node_count t
      && List.for_all
           (fun v ->
             (* children have level + 1 and are within the parent interval *)
             List.for_all
               (fun u ->
                 Doc.level doc u = Doc.level doc v + 1
                 && Doc.is_parent doc v u && Doc.is_ancestor doc v u
                 && u > v
                 && u <= Doc.subtree_end doc v)
               (Doc.children doc v)
             (* ancestor test agrees with parent chain *)
             && List.for_all
                  (fun u ->
                    let rec chain x =
                      match Doc.parent doc x with
                      | None -> false
                      | Some p -> p = v || chain p
                    in
                    Doc.is_ancestor doc v u = chain u)
                  (List.init n Fun.id))
           (List.init n Fun.id))

let prop_doc_label_and_path_index =
  QCheck.Test.make ~count:200 ~name:"nodes_with_label/path are exact" arb_tree (fun t ->
      let doc = Doc.of_tree t in
      let n = Doc.size doc in
      List.for_all
        (fun l ->
          Doc.nodes_with_label doc l
          = List.filter (fun v -> Doc.label doc v = l) (List.init n Fun.id))
        (Doc.labels doc)
      && List.for_all
           (fun v ->
             let p = String.concat "." (Doc.path doc v) in
             List.mem v (Doc.nodes_with_path doc p))
           (List.init n Fun.id))

let test_doc_subtree_and_text () =
  let doc = Fixtures.fig2_doc in
  let bp = List.hd (Doc.nodes_with_label doc "BP") in
  Alcotest.(check string) "subtree text" "CathyBobAlice" (Doc.text doc bp);
  let sub = Doc.subtree doc bp in
  Alcotest.(check int) "subtree nodes" 7 (Tree.node_count sub)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "parse basics" `Quick test_parse_basics;
    Alcotest.test_case "entities and CDATA" `Quick test_parse_entities_and_cdata;
    Alcotest.test_case "prolog/comments/doctype" `Quick test_parse_misc;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "printer escaping" `Quick test_printer_escapes;
    Alcotest.test_case "doc subtree and text" `Quick test_doc_subtree_and_text;
    q prop_print_parse_round_trip;
    q prop_pretty_print_parse_round_trip;
    q prop_doc_indexing;
    q prop_doc_label_and_path_index;
  ]
