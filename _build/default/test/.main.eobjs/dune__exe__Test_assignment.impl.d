test/test_assignment.ml: Alcotest Array Float Fun Hashtbl List Printf QCheck QCheck_alcotest String Uxsm_assignment
