test/test_ptq.ml: Alcotest Fixtures Float Int List QCheck QCheck_alcotest Uxsm_blocktree Uxsm_mapping Uxsm_ptq Uxsm_schema Uxsm_twig Uxsm_util
