test/main.mli:
