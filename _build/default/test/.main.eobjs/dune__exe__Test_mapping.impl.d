test/test_mapping.ml: Alcotest Fixtures Float List Uxsm_mapping Uxsm_schema
