test/test_integration.ml: Alcotest Float List Option Uxsm_assignment Uxsm_blocktree Uxsm_mapping Uxsm_ptq Uxsm_schema Uxsm_twig Uxsm_workload Uxsm_xml
