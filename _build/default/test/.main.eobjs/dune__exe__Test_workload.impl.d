test/test_workload.ml: Alcotest List Option String Uxsm_mapping Uxsm_ptq Uxsm_schema Uxsm_util Uxsm_workload Uxsm_xml
