test/test_edge.ml: Alcotest Array List Ptq_helpers Uxsm_assignment Uxsm_blocktree Uxsm_ptq Uxsm_schema Uxsm_twig Uxsm_util Uxsm_workload Uxsm_xml
