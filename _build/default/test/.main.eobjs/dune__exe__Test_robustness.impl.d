test/test_robustness.ml: Fixtures Float Fun List Printf QCheck QCheck_alcotest String Uxsm_assignment Uxsm_blocktree Uxsm_mapping Uxsm_ptq Uxsm_schema Uxsm_twig Uxsm_util Uxsm_xml
