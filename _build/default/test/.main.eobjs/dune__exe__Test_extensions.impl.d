test/test_extensions.ml: Alcotest Array Fixtures Float List Option QCheck QCheck_alcotest Uxsm_blocktree Uxsm_mapping Uxsm_matcher Uxsm_ptq Uxsm_schema Uxsm_twig Uxsm_util Uxsm_workload Uxsm_xml
