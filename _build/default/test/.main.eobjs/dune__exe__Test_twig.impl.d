test/test_twig.ml: Alcotest Array Fixtures Fun List QCheck QCheck_alcotest String Uxsm_schema Uxsm_twig Uxsm_util Uxsm_xml
