test/test_schema.ml: Alcotest Fixtures List QCheck QCheck_alcotest String Uxsm_schema Uxsm_util Uxsm_xml
