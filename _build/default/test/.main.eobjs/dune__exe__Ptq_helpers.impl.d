test/ptq_helpers.ml: Fixtures Uxsm_blocktree Uxsm_ptq
