test/fixtures.ml: Array Hashtbl List Printf Uxsm_mapping Uxsm_schema Uxsm_twig Uxsm_util Uxsm_xml
