test/test_xml.ml: Alcotest Fixtures Fun List QCheck QCheck_alcotest String Uxsm_xml
