test/test_matcher.ml: Alcotest Fixtures Float Hashtbl List Option Printf Uxsm_mapping Uxsm_matcher Uxsm_schema Uxsm_workload
