test/test_blocktree.ml: Alcotest Array Fixtures Fun List QCheck QCheck_alcotest Uxsm_blocktree Uxsm_mapping Uxsm_schema Uxsm_util
