(* Tests for the extension modules: XSD import/export, the join-based twig
   engine, aggregates, marginals, keyword search, probabilistic documents,
   and serialization. *)

module Schema = Uxsm_schema.Schema
module Xsd = Uxsm_schema.Xsd
module Doc = Uxsm_xml.Doc
module Prob_doc = Uxsm_xml.Prob_doc
module Pattern = Uxsm_twig.Pattern
module Parser = Uxsm_twig.Pattern_parser
module Matcher = Uxsm_twig.Matcher
module Join_matcher = Uxsm_twig.Join_matcher
module Matching = Uxsm_mapping.Matching
module Mapping_set = Uxsm_mapping.Mapping_set
module Serialize = Uxsm_mapping.Serialize
module Block_tree = Uxsm_blocktree.Block_tree
module Ptq = Uxsm_ptq.Ptq
module Aggregate = Uxsm_ptq.Aggregate
module Keyword = Uxsm_ptq.Keyword
module Ptq_prob = Uxsm_ptq.Ptq_prob

(* ----------------------------- XSD ------------------------------- *)

let test_xsd_import () =
  let xsd =
    {|<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Order">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="Buyer">
          <xs:complexType><xs:all>
            <xs:element name="Name"/>
            <xs:element name="City"/>
          </xs:all></xs:complexType>
        </xs:element>
        <xs:element ref="Line" maxOccurs="unbounded"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:element name="Line">
    <xs:complexType><xs:sequence>
      <xs:element name="Qty" maxOccurs="3"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>|}
  in
  match Xsd.of_xsd_string xsd with
  | Error e -> Alcotest.fail e
  | Ok s ->
    Alcotest.(check int) "six elements" 6 (Schema.size s);
    Alcotest.(check (option int)) "Order.Buyer.City resolves" (Some 3)
      (Schema.find_by_path s "Order.Buyer.City");
    let line = Option.get (Schema.find_by_path s "Order.Line") in
    Alcotest.(check bool) "Line repeatable via ref" true (Schema.repeatable s line);
    let qty = Option.get (Schema.find_by_path s "Order.Line.Qty") in
    Alcotest.(check bool) "maxOccurs=3 repeatable" true (Schema.repeatable s qty)

let test_xsd_errors () =
  let fails s =
    match Xsd.of_xsd_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "expected an error"
  in
  fails "<not-a-schema/>";
  fails "<xs:schema xmlns:xs=\"x\"></xs:schema>";
  fails
    "<xs:schema xmlns:xs=\"x\"><xs:element name=\"a\"><xs:complexType><xs:sequence><xs:element ref=\"a\"/></xs:sequence></xs:complexType></xs:element></xs:schema>"

let prop_xsd_round_trip =
  QCheck.Test.make ~count:100 ~name:"of_xsd (to_xsd s) = s"
    QCheck.(pair (int_range 1 1000000) (int_range 1 40))
    (fun (seed, n) ->
      let prng = Uxsm_util.Prng.create seed in
      let s = Fixtures.random_schema prng ~n in
      match Xsd.of_xsd_string (Xsd.to_xsd_string s) with
      | Ok s' -> Schema.equal s s'
      | Error _ -> false)

let test_xsd_data_files () =
  let read path =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let load path =
    match Xsd.of_xsd_string (read path) with
    | Ok s -> s
    | Error e -> Alcotest.failf "cannot load %s: %s" path e
  in
  let source = load "../data/xcbl_order.xsd" in
  let target = load "../data/opentrans_order.xsd" in
  Alcotest.(check int) "xCBL excerpt size" 33 (Schema.size source);
  Alcotest.(check int) "openTRANS excerpt size" 28 (Schema.size target);
  (* ref= resolution and maxOccurs survived *)
  Alcotest.(check bool) "Party ref resolved" true
    (Schema.find_by_path source
       "OrderRequest.OrderRequestHeader.OrderParty.BuyerParty.Party.PartyName"
    <> None);
  let item =
    Option.get (Schema.find_by_path source "OrderRequest.OrderDetail.ItemDetail")
  in
  Alcotest.(check bool) "ItemDetail repeatable" true (Schema.repeatable source item);
  (* matching the two real files finds the obvious pairs *)
  let m = Uxsm_matcher.Coma.run ~source ~target () in
  Alcotest.(check bool) "currency pair found" true
    (Matching.score m
       (Option.get (Schema.find_by_path source "OrderRequest.OrderRequestHeader.Currency"))
       (Option.get (Schema.find_by_path target "ORDER.ORDER_HEADER.CURRENCY"))
    <> None)

let test_xsd_on_standards () =
  let s = Uxsm_workload.Standards.generate Uxsm_workload.Standards.apertum in
  match Xsd.of_xsd_string (Xsd.to_xsd_string s) with
  | Ok s' -> Alcotest.(check bool) "Apertum round trips" true (Schema.equal s s')
  | Error e -> Alcotest.fail e

(* ------------------------- Join matcher --------------------------- *)

let prop_join_matcher_equals_matcher =
  QCheck.Test.make ~count:200 ~name:"Join_matcher = Matcher on random patterns"
    QCheck.(pair (int_range 1 1000000) (int_range 2 25))
    (fun (seed, n) ->
      let prng = Uxsm_util.Prng.create seed in
      let schema = Fixtures.random_schema prng ~n in
      let doc = Fixtures.random_doc prng schema in
      let pattern = Fixtures.random_pattern prng schema in
      Join_matcher.matches pattern doc = Matcher.matches pattern doc)

let prop_twiglist_equals_matcher =
  QCheck.Test.make ~count:200 ~name:"Twiglist = Matcher on random patterns"
    QCheck.(pair (int_range 1 1000000) (int_range 2 25))
    (fun (seed, n) ->
      let prng = Uxsm_util.Prng.create seed in
      let schema = Fixtures.random_schema prng ~n in
      let doc = Fixtures.random_doc prng schema in
      let pattern = Fixtures.random_pattern prng schema in
      Uxsm_twig.Twiglist.matches pattern doc = Matcher.matches pattern doc)

let test_join_matcher_fig2 () =
  let q = Parser.parse_exn "Order/BP[./BOC/BCN]/ROC/RCN" in
  Alcotest.(check int) "same as Matcher" (Matcher.count q Fixtures.fig2_doc)
    (Join_matcher.count q Fixtures.fig2_doc)

(* ------------------------- Aggregates ----------------------------- *)

let fig_ctx () =
  let tree =
    Block_tree.build ~params:{ Block_tree.tau = 0.4; max_b = 500; max_f = 500 } Fixtures.fig3_mset
  in
  Ptq.context ~tree ~mset:Fixtures.fig3_mset ~doc:Fixtures.fig2_doc ()

let test_aggregate_count () =
  let ctx = fig_ctx () in
  let q = Parser.parse_exn "//IP//ICN" in
  let r = Aggregate.count ctx q in
  (* m1,m2,m4,m5 -> 1 match; m3 -> 0 matches. *)
  Alcotest.(check int) "two values" 2 (List.length r.Aggregate.distribution);
  let prob_of v = try List.assoc v r.Aggregate.distribution with Not_found -> 0.0 in
  Alcotest.(check (float 1e-9)) "P(count=1)" 0.8 (prob_of 1.0);
  Alcotest.(check (float 1e-9)) "P(count=0)" 0.2 (prob_of 0.0);
  Alcotest.(check (float 1e-9)) "no undefined" 0.0 r.Aggregate.undefined_mass;
  match r.Aggregate.expected with
  | Some e -> Alcotest.(check (float 1e-9)) "E[count]" 0.8 e
  | None -> Alcotest.fail "expected should be defined"

let numeric_doc =
  let open Uxsm_xml.Tree in
  Doc.of_tree
    (element "Order"
       [
         element "BP"
           [
             element "BOC" [ leaf "BCN" "10" ];
             element "ROC" [ leaf "RCN" "20" ];
             element "OOC" [ leaf "OCN" "30" ];
           ];
         element "SP" [];
       ])

let test_aggregate_sum_min_max () =
  let ctx = Ptq.context ~mset:Fixtures.fig3_mset ~doc:numeric_doc () in
  let q = Parser.parse_exn "//IP//ICN" in
  (* node 1 = ICN; values per mapping: m1/m2 -> 10, m4 -> 20, m5 -> 30,
     m3 -> none. *)
  let s = Aggregate.sum ctx ~node:1 q in
  let prob_of (r : Aggregate.t) v = try List.assoc v r.Aggregate.distribution with Not_found -> 0.0 in
  Alcotest.(check (float 1e-9)) "P(sum=10)" 0.4 (prob_of s 10.0);
  Alcotest.(check (float 1e-9)) "P(sum=0)" 0.2 (prob_of s 0.0);
  let mn = Aggregate.minimum ctx ~node:1 q in
  Alcotest.(check (float 1e-9)) "min undefined for m3" 0.2 mn.Aggregate.undefined_mass;
  (match mn.Aggregate.expected with
  | Some e -> Alcotest.(check (float 1e-9)) "E[min] over defined" 17.5 e
  | None -> Alcotest.fail "min expected defined");
  let mx = Aggregate.maximum ctx ~node:1 q in
  Alcotest.(check (float 1e-9)) "P(max=30)" 0.2 (prob_of mx 30.0);
  let avg = Aggregate.average ctx ~node:1 q in
  Alcotest.(check (float 1e-9)) "avg = min here" 17.5 (Option.get avg.Aggregate.expected)

(* -------------------------- Marginals ----------------------------- *)

let test_marginals () =
  let ctx = fig_ctx () in
  let q = Parser.parse_exn "//IP//ICN" in
  let ms = Ptq.marginals (Ptq.query_tree ctx q) in
  (* Cathy's binding appears in m1+m2 (0.4); Bob and Alice in one each. *)
  Alcotest.(check int) "three distinct matches" 3 (List.length ms);
  match ms with
  | (_, p) :: rest ->
    Alcotest.(check (float 1e-9)) "top marginal 0.4" 0.4 p;
    List.iter (fun (_, p') -> Alcotest.(check (float 1e-9)) "others 0.2" 0.2 p') rest
  | [] -> Alcotest.fail "no marginals"

(* ------------------------ Keyword search -------------------------- *)

let test_keyword_candidates_and_lca () =
  let t = Fixtures.fig1_target in
  Alcotest.(check (list int)) "SCN+ICN for 'scn'" [ Fixtures.t_scn ]
    (Keyword.element_candidates t "scn");
  Alcotest.(check int) "lca of SCN and ICN" Fixtures.t_order
    (Keyword.lca t [ Fixtures.t_scn; Fixtures.t_icn ]);
  Alcotest.(check int) "lca of single" Fixtures.t_icn (Keyword.lca t [ Fixtures.t_icn ]);
  Alcotest.(check int) "lca of nested" Fixtures.t_ip
    (Keyword.lca t [ Fixtures.t_ip; Fixtures.t_icn ])

let test_keyword_search () =
  let ctx = fig_ctx () in
  let hits = Keyword.search ctx [ "ICN" ] in
  Alcotest.(check bool) "some interpretation answers" true (hits <> []);
  let empty = Keyword.search ctx [ "nonexistent_term" ] in
  Alcotest.(check int) "unknown keyword: no interpretations" 0 (List.length empty)

(* --------------------- Probabilistic documents -------------------- *)

let test_prob_doc_basics () =
  let pd = Prob_doc.deterministic Fixtures.fig2_doc in
  Alcotest.(check (float 1e-9)) "deterministic marginal" 1.0
    (Prob_doc.marginal_prob pd (Doc.size Fixtures.fig2_doc - 1));
  let probs = Array.make (Doc.size Fixtures.fig2_doc) 1.0 in
  probs.(1) <- 0.5;
  (* BP *)
  probs.(3) <- 0.8;
  (* BCN *)
  let pd2 = Prob_doc.of_probs Fixtures.fig2_doc probs in
  Alcotest.(check (float 1e-9)) "marginal multiplies" 0.4 (Prob_doc.marginal_prob pd2 3);
  (* coexistence of BCN and RCN shares the BP ancestor: 0.5 * 0.8 * 1.0 *)
  Alcotest.(check (float 1e-9)) "coexistence shares ancestors" 0.4
    (Prob_doc.coexistence_prob pd2 [ 3; 5 ]);
  Alcotest.(check (float 1e-9)) "empty set" 1.0 (Prob_doc.coexistence_prob pd2 [])

let test_prob_doc_validation () =
  let fails f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  fails (fun () -> Prob_doc.of_probs Fixtures.fig2_doc [| 1.0 |]);
  let bad = Array.make (Doc.size Fixtures.fig2_doc) 1.0 in
  bad.(0) <- 0.5;
  fails (fun () -> Prob_doc.of_probs Fixtures.fig2_doc bad);
  let oob = Array.make (Doc.size Fixtures.fig2_doc) 1.0 in
  oob.(2) <- 1.5;
  fails (fun () -> Prob_doc.of_probs Fixtures.fig2_doc oob)

let test_ptq_prob () =
  let ctx = fig_ctx () in
  let q = Parser.parse_exn "//IP//ICN" in
  (* Deterministic document: joint = plain PTQ. *)
  let det = Prob_doc.deterministic Fixtures.fig2_doc in
  let answers = Ptq_prob.query ctx det q in
  List.iter
    (fun (a : Ptq_prob.answer) ->
      List.iter (fun (_, p) -> Alcotest.(check (float 1e-9)) "existence 1" 1.0 p) a.matches)
    answers;
  let plain = Ptq.marginals (Ptq.query_tree ctx q) in
  let joint = Ptq_prob.match_marginals ctx det q in
  Alcotest.(check int) "same matches" (List.length plain) (List.length joint);
  List.iter2
    (fun (_, p1) (_, p2) -> Alcotest.(check (float 1e-9)) "same marginals" p1 p2)
    plain joint;
  (* Uncertain document scales the marginals down. *)
  let probs = Array.make (Doc.size Fixtures.fig2_doc) 1.0 in
  probs.(1) <- 0.5;
  let pd = Prob_doc.of_probs Fixtures.fig2_doc probs in
  List.iter
    (fun (a : Ptq_prob.answer) ->
      List.iter
        (fun ((_ : Uxsm_twig.Binding.t), p) ->
          Alcotest.(check (float 1e-9)) "halved through BP" 0.5 p)
        a.matches)
    (Ptq_prob.query ctx pd q)

(* ------------------------- Serialization -------------------------- *)

let test_matching_round_trip () =
  let m = Fixtures.fig1_matching in
  match Serialize.matching_of_string (Serialize.matching_to_string m) with
  | Error e -> Alcotest.fail e
  | Ok m' ->
    Alcotest.(check int) "capacity" (Matching.capacity m) (Matching.capacity m');
    List.iter2
      (fun (a : Matching.corr) (b : Matching.corr) ->
        Alcotest.(check bool) "same corr" true (a.source = b.source && a.target = b.target);
        Alcotest.(check (float 0.0)) "exact score" a.score b.score)
      (Matching.correspondences m)
      (Matching.correspondences m')

let test_mapping_set_round_trip () =
  let mset = Fixtures.fig3_mset in
  match Serialize.mapping_set_of_string (Serialize.mapping_set_to_string mset) with
  | Error e -> Alcotest.fail e
  | Ok mset' ->
    Alcotest.(check int) "size" (Mapping_set.size mset) (Mapping_set.size mset');
    List.iter2
      (fun (m1, p1) (m2, p2) ->
        Alcotest.(check bool) "same mapping" true (Uxsm_mapping.Mapping.equal m1 m2);
        Alcotest.(check (float 1e-15)) "same probability" p1 p2)
      (Mapping_set.mappings mset) (Mapping_set.mappings mset')

let test_serialize_errors () =
  (match Serialize.matching_of_string "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage matched");
  match Serialize.mapping_set_of_string "uxsm-mappings v1\nmappings\n  nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nonsense parsed"

let prop_mapping_set_round_trip_random =
  QCheck.Test.make ~count:50 ~name:"mapping set serialization round trips"
    QCheck.(pair (int_range 1 1000000) (int_range 2 20))
    (fun (seed, h) ->
      let prng = Uxsm_util.Prng.create seed in
      let mset = Fixtures.random_mapping_set prng ~source_n:15 ~target_n:10 ~corrs:12 ~h in
      match Serialize.mapping_set_of_string (Serialize.mapping_set_to_string mset) with
      | Error _ -> false
      | Ok mset' ->
        Mapping_set.size mset = Mapping_set.size mset'
        && List.for_all2
             (fun (m1, p1) (m2, p2) ->
               Uxsm_mapping.Mapping.equal m1 m2 && Float.abs (p1 -. p2) < 1e-12)
             (Mapping_set.mappings mset) (Mapping_set.mappings mset'))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "XSD import" `Quick test_xsd_import;
    Alcotest.test_case "XSD errors" `Quick test_xsd_errors;
    Alcotest.test_case "XSD on standards" `Quick test_xsd_on_standards;
    Alcotest.test_case "XSD data files (xCBL/openTRANS excerpts)" `Quick test_xsd_data_files;
    Alcotest.test_case "join matcher on Figure 2" `Quick test_join_matcher_fig2;
    Alcotest.test_case "aggregate COUNT on the intro example" `Quick test_aggregate_count;
    Alcotest.test_case "aggregate SUM/MIN/MAX/AVG" `Quick test_aggregate_sum_min_max;
    Alcotest.test_case "per-match marginals" `Quick test_marginals;
    Alcotest.test_case "keyword candidates and LCA" `Quick test_keyword_candidates_and_lca;
    Alcotest.test_case "keyword search" `Quick test_keyword_search;
    Alcotest.test_case "probabilistic documents" `Quick test_prob_doc_basics;
    Alcotest.test_case "prob doc validation" `Quick test_prob_doc_validation;
    Alcotest.test_case "PTQ over uncertain documents" `Quick test_ptq_prob;
    Alcotest.test_case "matching serialization" `Quick test_matching_round_trip;
    Alcotest.test_case "mapping set serialization" `Quick test_mapping_set_round_trip;
    Alcotest.test_case "serialization errors" `Quick test_serialize_errors;
    q prop_xsd_round_trip;
    q prop_join_matcher_equals_matcher;
    q prop_twiglist_equals_matcher;
    q prop_mapping_set_round_trip_random;
  ]
