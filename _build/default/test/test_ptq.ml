(* PTQ tests: the introduction's //IP//ICN example, Algorithm 3 vs
   Algorithm 4 equivalence, top-k semantics. *)

module Schema = Uxsm_schema.Schema
module Mapping_set = Uxsm_mapping.Mapping_set
module Block_tree = Uxsm_blocktree.Block_tree
module Pattern = Uxsm_twig.Pattern
module Parser = Uxsm_twig.Pattern_parser
module Binding = Uxsm_twig.Binding
module Ptq = Uxsm_ptq.Ptq
module Resolve = Uxsm_ptq.Resolve
module Rewrite = Uxsm_ptq.Rewrite

let fig_context ?(tau = 0.4) () =
  let tree = Block_tree.build ~params:{ Block_tree.tau; max_b = 500; max_f = 500 } Fixtures.fig3_mset in
  Ptq.context ~tree ~mset:Fixtures.fig3_mset ~doc:Fixtures.fig2_doc ()

let answer_texts ctx pattern (a : Ptq.answer) =
  List.concat_map
    (fun b ->
      List.filter_map
        (fun (label, text) -> if label = "ICN" then Some text else None)
        (Ptq.binding_texts ctx pattern b))
    a.Ptq.bindings

let test_intro_example_basic () =
  let ctx = fig_context () in
  let q = Parser.parse_exn "//IP//ICN" in
  let answers = Ptq.query_basic ctx q in
  (* All five mappings are relevant (each maps IP and ICN). *)
  Alcotest.(check int) "five relevant mappings" 5 (List.length answers);
  let by_id i = List.find (fun (a : Ptq.answer) -> a.mapping_id = i) answers in
  Alcotest.(check (list string)) "m1 -> Cathy" [ "Cathy" ] (answer_texts ctx q (by_id 0));
  Alcotest.(check (list string)) "m2 -> Cathy" [ "Cathy" ] (answer_texts ctx q (by_id 1));
  (* m3 maps IP to the source's SUPPLIER_PARTY, unrelated to RCN: empty. *)
  Alcotest.(check (list string)) "m3 -> no match" [] (answer_texts ctx q (by_id 2));
  Alcotest.(check (list string)) "m4 -> Bob" [ "Bob" ] (answer_texts ctx q (by_id 3));
  Alcotest.(check (list string)) "m5 -> Alice" [ "Alice" ] (answer_texts ctx q (by_id 4))

let test_intro_example_consolidated () =
  let ctx = fig_context () in
  let q = Parser.parse_exn "//IP//ICN" in
  let consolidated = Ptq.consolidate (Ptq.query_basic ctx q) in
  (* Cathy via m1+m2 (0.4), then Bob / Alice / no-match at 0.2 each. *)
  Alcotest.(check int) "four distinct answer sets" 4 (List.length consolidated);
  match consolidated with
  | (_, p) :: rest ->
    Alcotest.(check (float 1e-9)) "top probability 0.4" 0.4 p;
    List.iter (fun (_, p') -> Alcotest.(check (float 1e-9)) "others 0.2" 0.2 p') rest
  | [] -> Alcotest.fail "no answers"

let test_tree_equals_basic_on_example () =
  let ctx = fig_context () in
  List.iter
    (fun qs ->
      let q = Parser.parse_exn qs in
      let a = Ptq.query_basic ctx q and b = Ptq.query_tree ctx q in
      Alcotest.(check int) (qs ^ ": same #answers") (List.length a) (List.length b);
      List.iter2
        (fun (x : Ptq.answer) (y : Ptq.answer) ->
          Alcotest.(check int) (qs ^ ": same mapping") x.mapping_id y.mapping_id;
          Alcotest.(check bool) (qs ^ ": same bindings") true (x.bindings = y.bindings))
        a b)
    [ "//IP//ICN"; "//IP"; "//SP/SCN"; "ORDER//ICN"; "ORDER[./SP/SCN]//ICN"; "//SCN" ]

let test_filter_mappings () =
  let ctx = fig_context () in
  (* Every mapping maps ORDER and ICN; only m3 maps SP (target). *)
  let q = Parser.parse_exn "//SP" in
  Alcotest.(check (list int)) "only m3 maps target SP" [ 2 ] (Ptq.filter_mappings ctx q);
  let q2 = Parser.parse_exn "ORDER//ICN" in
  Alcotest.(check (list int)) "all relevant" [ 0; 1; 2; 3; 4 ] (Ptq.filter_mappings ctx q2)

let test_topk () =
  let ctx = fig_context () in
  let q = Parser.parse_exn "//IP//ICN" in
  let top2 = Ptq.query_topk ctx ~k:2 q in
  Alcotest.(check int) "two answers" 2 (List.length top2);
  let all = Ptq.query_basic ctx q in
  let sorted =
    List.sort (fun (a : Ptq.answer) b -> Float.compare b.probability a.probability) all
  in
  let expected_ids =
    List.sort Int.compare
      (List.map (fun (a : Ptq.answer) -> a.mapping_id) (List.filteri (fun i _ -> i < 2) sorted))
  in
  let got_ids = List.sort Int.compare (List.map (fun (a : Ptq.answer) -> a.mapping_id) top2) in
  (* With uniform probabilities any two mappings are a valid top-2; check
     cardinality and that answers agree with the basic evaluation. *)
  Alcotest.(check int) "k answers" (List.length expected_ids) (List.length got_ids);
  List.iter
    (fun (a : Ptq.answer) ->
      let b = List.find (fun (x : Ptq.answer) -> x.mapping_id = a.mapping_id) all in
      Alcotest.(check bool) "top-k answer matches basic" true (a.bindings = b.bindings))
    top2

let test_resolution_ambiguity () =
  (* //SCN has one resolution; a label shared by two schema nodes resolves
     twice. The fig1 target has distinct labels, so build a tiny ambiguous
     schema here. *)
  let target =
    Schema.of_spec
      (Schema.spec "R"
         [ Schema.spec "A" [ Schema.spec "N" [] ]; Schema.spec "B" [ Schema.spec "N" [] ] ])
  in
  let q = Parser.parse_exn "//N" in
  Alcotest.(check int) "two resolutions" 2 (List.length (Resolve.against q target))

let test_rewrite_axis_derivation () =
  let source = Fixtures.fig1_source in
  Alcotest.(check bool) "BP parent of BOC" true
    (Rewrite.axis_for source ~parent_src:Fixtures.s_bp ~child_src:2 = Some Pattern.Child);
  Alcotest.(check bool) "BP ancestor of BCN" true
    (Rewrite.axis_for source ~parent_src:Fixtures.s_bp ~child_src:Fixtures.s_bcn
    = Some Pattern.Descendant);
  Alcotest.(check bool) "SP unrelated to BCN" true
    (Rewrite.axis_for source ~parent_src:Fixtures.s_sp ~child_src:Fixtures.s_bcn = None)

(* The central property: Algorithm 4 returns exactly Algorithm 3's answers
   on random schemas, mappings, documents, patterns and parameters. *)
let prop_tree_equals_basic =
  QCheck.Test.make ~count:120 ~name:"query_tree = query_basic (random end-to-end)"
    QCheck.(triple (int_range 1 1000000) (int_range 2 20) (QCheck.make (QCheck.Gen.float_range 0.05 0.8)))
    (fun (seed, h, tau) ->
      let prng = Uxsm_util.Prng.create seed in
      let mset = Fixtures.random_mapping_set prng ~source_n:14 ~target_n:10 ~corrs:14 ~h in
      let tree = Block_tree.build ~params:{ Block_tree.tau; max_b = 100; max_f = 100 } mset in
      let doc = Fixtures.random_doc prng (Mapping_set.source mset) in
      let ctx = Ptq.context ~tree ~mset ~doc () in
      let pattern = Fixtures.random_pattern prng (Mapping_set.target mset) in
      let a = Ptq.query_basic ctx pattern and b = Ptq.query_tree ctx pattern in
      List.length a = List.length b
      && List.for_all2
           (fun (x : Ptq.answer) (y : Ptq.answer) ->
             x.mapping_id = y.mapping_id && x.bindings = y.bindings)
           a b)

let prop_topk_consistent =
  QCheck.Test.make ~count:80 ~name:"top-k answers are the k most probable of basic"
    QCheck.(triple (int_range 1 1000000) (int_range 2 15) (int_range 1 6))
    (fun (seed, h, k) ->
      let prng = Uxsm_util.Prng.create seed in
      let mset = Fixtures.random_mapping_set prng ~source_n:12 ~target_n:8 ~corrs:10 ~h in
      let doc = Fixtures.random_doc prng (Mapping_set.source mset) in
      let ctx = Ptq.context ~mset ~doc () in
      let pattern = Fixtures.random_pattern prng (Mapping_set.target mset) in
      let all = Ptq.query_basic ctx pattern in
      let topk = Ptq.query_topk ctx ~k pattern in
      List.length topk = min k (List.length all)
      && List.for_all
           (fun (a : Ptq.answer) ->
             match List.find_opt (fun (x : Ptq.answer) -> x.mapping_id = a.mapping_id) all with
             | Some x -> x.bindings = a.bindings
             | None -> false)
           topk
      (* every kept mapping's probability is >= every dropped one's *)
      && List.for_all
           (fun (dropped : Ptq.answer) ->
             List.exists (fun (kept : Ptq.answer) -> kept.mapping_id = dropped.mapping_id) topk
             || List.for_all
                  (fun (kept : Ptq.answer) -> kept.probability >= dropped.probability)
                  topk)
           all)

let prop_consolidate_total_probability =
  QCheck.Test.make ~count:80 ~name:"consolidated probabilities sum to relevant mass"
    QCheck.(pair (int_range 1 1000000) (int_range 2 15))
    (fun (seed, h) ->
      let prng = Uxsm_util.Prng.create seed in
      let mset = Fixtures.random_mapping_set prng ~source_n:12 ~target_n:8 ~corrs:10 ~h in
      let doc = Fixtures.random_doc prng (Mapping_set.source mset) in
      let ctx = Ptq.context ~mset ~doc () in
      let pattern = Fixtures.random_pattern prng (Mapping_set.target mset) in
      let answers = Ptq.query_basic ctx pattern in
      let mass = List.fold_left (fun acc (a : Ptq.answer) -> acc +. a.probability) 0.0 answers in
      let consolidated = Ptq.consolidate answers in
      let mass' = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 consolidated in
      Float.abs (mass -. mass') < 1e-9)

let test_explain () =
  let ctx = fig_context () in
  let q = Parser.parse_exn "//IP//ICN" in
  let stats, answers = Ptq.explain ctx q in
  Alcotest.(check int) "one resolution" 1 stats.Ptq.resolutions;
  Alcotest.(check int) "five relevant" 5 stats.Ptq.relevant_mappings;
  (* IP carries block b5 ({BP~IP, BCN~ICN} for m1, m2): one shared
     evaluation covers two mappings; the rest evaluate directly. *)
  Alcotest.(check int) "one block used" 1 stats.Ptq.blocks_used;
  Alcotest.(check int) "one shared evaluation" 1 stats.Ptq.shared_evaluations;
  Alcotest.(check int) "three direct evaluations" 3 stats.Ptq.direct_evaluations;
  Alcotest.(check int) "no decomposition (IP has blocks)" 0 stats.Ptq.decompositions;
  Alcotest.(check bool) "answers = query_tree" true
    (List.for_all2
       (fun (a : Ptq.answer) (b : Ptq.answer) -> a.mapping_id = b.mapping_id && a.bindings = b.bindings)
       answers (Ptq.query_tree ctx q));
  (* Without a tree, all work is direct. *)
  let ctx_plain = Ptq.context ~mset:Fixtures.fig3_mset ~doc:Fixtures.fig2_doc () in
  let stats', _ = Ptq.explain ctx_plain q in
  Alcotest.(check int) "no blocks" 0 stats'.Ptq.blocks_used;
  Alcotest.(check int) "five direct" 5 stats'.Ptq.direct_evaluations

let prop_explain_consistent =
  QCheck.Test.make ~count:60 ~name:"explain answers = query_tree answers"
    QCheck.(pair (int_range 1 1000000) (int_range 2 15))
    (fun (seed, h) ->
      let prng = Uxsm_util.Prng.create seed in
      let mset = Fixtures.random_mapping_set prng ~source_n:14 ~target_n:10 ~corrs:14 ~h in
      let tree = Block_tree.build ~params:{ Block_tree.tau = 0.2; max_b = 100; max_f = 100 } mset in
      let doc = Fixtures.random_doc prng (Mapping_set.source mset) in
      let ctx = Ptq.context ~tree ~mset ~doc () in
      let pattern = Fixtures.random_pattern prng (Mapping_set.target mset) in
      let stats, answers = Ptq.explain ctx pattern in
      let plain = Ptq.query_tree ctx pattern in
      stats.Ptq.relevant_mappings = List.length answers
      && List.length answers = List.length plain
      && List.for_all2
           (fun (a : Ptq.answer) (b : Ptq.answer) ->
             a.mapping_id = b.mapping_id && a.bindings = b.bindings)
           answers plain)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "introduction example: per-mapping answers" `Quick test_intro_example_basic;
    Alcotest.test_case "introduction example: consolidated" `Quick test_intro_example_consolidated;
    Alcotest.test_case "Algorithm 4 = Algorithm 3 on the example" `Quick test_tree_equals_basic_on_example;
    Alcotest.test_case "filter_mappings" `Quick test_filter_mappings;
    Alcotest.test_case "top-k PTQ" `Quick test_topk;
    Alcotest.test_case "ambiguous label resolution" `Quick test_resolution_ambiguity;
    Alcotest.test_case "rewrite axis derivation" `Quick test_rewrite_axis_derivation;
    Alcotest.test_case "explain (EXPLAIN of Algorithm 4)" `Quick test_explain;
    q prop_explain_consistent;
    q prop_tree_equals_basic;
    q prop_topk_consistent;
    q prop_consolidate_total_probability;
  ]
