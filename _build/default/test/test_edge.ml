(* Edge-case batch: small contracts not covered by the per-module suites. *)

module Schema = Uxsm_schema.Schema
module Doc = Uxsm_xml.Doc
module Tree = Uxsm_xml.Tree
module Binding = Uxsm_twig.Binding
module Pattern = Uxsm_twig.Pattern
module Parser = Uxsm_twig.Pattern_parser
module Murty = Uxsm_assignment.Murty
module Partition = Uxsm_assignment.Partition
module Bipartite = Uxsm_assignment.Bipartite
module Block = Uxsm_blocktree.Block
module Timing = Uxsm_util.Timing

let test_binding_merge_conflict () =
  let a = Binding.unbound 3 and b = Binding.unbound 3 in
  a.(1) <- 5;
  b.(1) <- 6;
  (match Binding.merge a b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overlapping merge must fail");
  let c = Binding.unbound 2 in
  match Binding.merge a c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "size mismatch must fail"

let test_pattern_accessors () =
  let p = Parser.parse_exn "A[./B][./C/D]//E" in
  Alcotest.(check int) "size" 5 (Pattern.size p);
  Alcotest.(check (list string)) "labels in pre-order" [ "A"; "B"; "C"; "D"; "E" ]
    (Pattern.labels p);
  let root = p.Pattern.root in
  Alcotest.(check int) "three branches" 3 (List.length (Pattern.branches root));
  Alcotest.(check bool) "preds before next" true
    (match Pattern.branches root with
    | (_, b) :: (_, c) :: (_, e) :: [] ->
      b.Pattern.label = "B" && c.Pattern.label = "C" && e.Pattern.label = "E"
    | _ -> false)

let test_murty_h_zero () =
  let g = Bipartite.create ~n_left:2 ~n_right:2 [ (0, 0, 1.0) ] in
  Alcotest.(check int) "h=0 murty" 0 (List.length (Murty.top ~h:0 g));
  Alcotest.(check int) "h=0 partition" 0 (List.length (Partition.top ~h:0 g));
  Alcotest.(check int) "merge h=0" 0
    (List.length (Partition.merge ~h:0 [ { Murty.pairs = []; score = 0.0 } ]
                    [ { Murty.pairs = []; score = 0.0 } ]))

let test_block_source_of_misses () =
  let b = Block.create ~anchor:3 ~corrs:[ (1, 3); (5, 4) ] ~mappings:[ 0; 2; 7 ] in
  Alcotest.(check (option int)) "hit first" (Some 1) (Block.source_of b 3);
  Alcotest.(check (option int)) "hit second" (Some 5) (Block.source_of b 4);
  Alcotest.(check (option int)) "miss below" None (Block.source_of b 2);
  Alcotest.(check (option int)) "miss above" None (Block.source_of b 9);
  Alcotest.(check bool) "mem present" true (Block.mem_mapping b 7);
  Alcotest.(check bool) "mem absent" false (Block.mem_mapping b 3)

let test_timing () =
  let x, dt = Timing.time (fun () -> 41 + 1) in
  Alcotest.(check int) "result" 42 x;
  Alcotest.(check bool) "non-negative" true (dt >= 0.0);
  let per_run = Timing.time_n ~warmup:1 5 (fun () -> ()) in
  Alcotest.(check bool) "time_n sane" true (per_run >= 0.0 && per_run < 1.0);
  let per_run' = Timing.repeat_until ~min_runs:3 ~min_seconds:0.0 (fun () -> ()) in
  Alcotest.(check bool) "repeat_until sane" true (per_run' >= 0.0)

let test_printer_attrs_and_self_closing () =
  let t = Tree.element ~attrs:[ ("b", "2"); ("a", "1") ] "x" [] in
  let s = Uxsm_xml.Printer.to_string t in
  Alcotest.(check string) "attr order preserved" "<x b=\"2\" a=\"1\"/>" s;
  match Uxsm_xml.Parser.parse s with
  | Ok t' -> Alcotest.(check bool) "round trip" true (Tree.equal t t')
  | Error e -> Alcotest.fail (Uxsm_xml.Parser.error_to_string e)

let test_doc_attr_access () =
  let t = Tree.element ~attrs:[ ("k", "v") ] "x" [ Tree.leaf "y" "z" ] in
  let doc = Doc.of_tree t in
  Alcotest.(check (option string)) "attr hit" (Some "v") (Doc.attr doc 0 "k");
  Alcotest.(check (option string)) "attr miss" None (Doc.attr doc 0 "nope");
  Alcotest.(check (list (pair string string))) "attrs list" [ ("k", "v") ] (Doc.attrs doc 0);
  Alcotest.(check (list (pair string string))) "no attrs" [] (Doc.attrs doc 1)

let test_gen_doc_multiple_repeatables () =
  (* Two repeatable subtrees of different sizes: the planner fills the big
     one first, then absorbs the remainder with the 1-node one. *)
  let schema =
    Schema.of_spec
      (Schema.spec "r"
         [
           Schema.spec ~repeatable:true "big"
             [ Schema.spec "a" []; Schema.spec "b" []; Schema.spec "c" [] ];
           Schema.spec ~repeatable:true "note" [];
         ])
  in
  let doc = Uxsm_workload.Gen_doc.generate ~target_nodes:50 schema in
  Alcotest.(check int) "exact node count" 50 (Doc.size doc)

let test_aggregate_no_relevant () =
  (* A query naming an element no mapping covers: no relevant mappings. *)
  let ctx = Ptq_helpers.fig_ctx () in
  let q = Parser.parse_exn "ORDER/SP" in
  (* only m3 maps SP; a query on SP with unmatched child is unmatchable *)
  let r = Uxsm_ptq.Aggregate.count ctx (Parser.parse_exn "ORDER/SP/SCN/SCN") in
  ignore q;
  Alcotest.(check int) "empty distribution" 0 (List.length r.Uxsm_ptq.Aggregate.distribution);
  Alcotest.(check (option (float 0.0))) "no expectation" None r.Uxsm_ptq.Aggregate.expected

let test_schema_single_element () =
  let s = Schema.of_spec (Schema.spec "only" []) in
  Alcotest.(check int) "size 1" 1 (Schema.size s);
  Alcotest.(check int) "height 0" 0 (Schema.height s);
  Alcotest.(check int) "fanout 0" 0 (Schema.max_fanout s);
  Alcotest.(check (list int)) "root is leaf" [ 0 ] (Schema.leaves s)

let suite =
  [
    Alcotest.test_case "binding merge conflicts" `Quick test_binding_merge_conflict;
    Alcotest.test_case "pattern accessors" `Quick test_pattern_accessors;
    Alcotest.test_case "murty/partition h=0" `Quick test_murty_h_zero;
    Alcotest.test_case "block binary searches" `Quick test_block_source_of_misses;
    Alcotest.test_case "timing helpers" `Quick test_timing;
    Alcotest.test_case "printer attrs + self-closing" `Quick test_printer_attrs_and_self_closing;
    Alcotest.test_case "doc attribute access" `Quick test_doc_attr_access;
    Alcotest.test_case "doc generator with two repeatables" `Quick test_gen_doc_multiple_repeatables;
    Alcotest.test_case "aggregate with nothing relevant" `Quick test_aggregate_no_relevant;
    Alcotest.test_case "single-element schema" `Quick test_schema_single_element;
  ]
