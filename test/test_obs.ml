(* Tests for the observability layer: Obs counters/spans, the Json
   emitter/parser, and the Bench_json record round-trip the bench harness
   relies on. Obs state is process-global, so every test starts from
   [Obs.reset]. *)

module Obs = Uxsm_obs.Obs
module Bench_json = Uxsm_obs.Bench_json
module Json = Uxsm_util.Json

let test_counter_basics () =
  Obs.reset ();
  let c = Obs.counter "test.basics" in
  Alcotest.(check int) "starts at zero" 0 (Obs.value c);
  Obs.incr c;
  Obs.incr c;
  Obs.add c 5;
  Alcotest.(check int) "incr and add accumulate" 7 (Obs.value c);
  Alcotest.(check string) "name" "test.basics" (Obs.name c);
  let c' = Obs.counter "test.basics" in
  Obs.incr c';
  Alcotest.(check int) "same name aliases the same cell" 8 (Obs.value c)

let test_counter_monotone () =
  Obs.reset ();
  let c = Obs.counter "test.monotone" in
  let last = ref (Obs.value c) in
  for i = 0 to 19 do
    if i mod 3 = 0 then Obs.incr c else Obs.add c i;
    let v = Obs.value c in
    Alcotest.(check bool) "never decreases" true (v >= !last);
    last := v
  done;
  Alcotest.check_raises "add rejects negatives"
    (Invalid_argument "Obs.add: counters only count up") (fun () -> Obs.add c (-1))

let test_reset () =
  Obs.reset ();
  let c = Obs.counter "test.reset" in
  let s = Obs.span "test.reset_span" in
  Obs.add c 42;
  ignore (Obs.time s (fun () -> 1 + 1));
  Obs.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Obs.value c);
  Alcotest.(check int) "span count zeroed" 0 (Obs.span_count s);
  Alcotest.(check (float 0.0)) "span seconds zeroed" 0.0 (Obs.span_seconds s);
  Alcotest.(check bool) "registration survives reset" true
    (List.mem_assoc "test.reset" (Obs.counters ()))

(* Regression: a reset issued inside an active [time] used to zero the
   span's re-entrancy depth, so the matching [finish] drove the depth
   negative — the span then never accumulated seconds again, and counts
   were attributed to a broken state. Reset must leave the in-flight
   activation intact and only restart its clock. *)
let test_reset_inside_active_span () =
  Obs.reset ();
  let s = Obs.span "test.reset_mid_span" in
  Obs.time s (fun () -> Obs.reset ());
  Alcotest.(check int) "the interrupted activation still completes" 1 (Obs.span_count s);
  Alcotest.(check bool) "its duration is non-negative" true (Obs.span_seconds s >= 0.0);
  (* The span must keep working after the mid-span reset: a fresh [time]
     both counts and accumulates time. *)
  Obs.time s (fun () -> ignore (Sys.opaque_identity (Array.init 10000 Fun.id)));
  Alcotest.(check int) "subsequent activations count" 2 (Obs.span_count s);
  Alcotest.(check bool) "subsequent activations accumulate time" true
    (Obs.span_seconds s > 0.0);
  (* Nested variant: reset fires between the outer and inner activations of
     a recursive span; the outer finish must still see a sane depth. *)
  Obs.reset ();
  Obs.time s (fun () ->
      Obs.reset ();
      Obs.time s (fun () -> ()));
  Alcotest.(check int) "both activations complete after nested reset" 2 (Obs.span_count s);
  Obs.time s (fun () -> ());
  Alcotest.(check int) "depth is back to zero (outermost activations count)" 3
    (Obs.span_count s)

let test_nested_spans () =
  Obs.reset ();
  let outer = Obs.span "test.outer" in
  let inner = Obs.span "test.inner" in
  let x =
    Obs.time outer (fun () ->
        Obs.time inner (fun () -> ignore (Sys.opaque_identity (Array.init 1000 Fun.id)));
        17)
  in
  Alcotest.(check int) "result passes through" 17 x;
  Alcotest.(check int) "outer counted" 1 (Obs.span_count outer);
  Alcotest.(check int) "inner counted" 1 (Obs.span_count inner);
  Alcotest.(check bool) "outer covers inner" true
    (Obs.span_seconds outer >= Obs.span_seconds inner);
  (* Re-entering the same span recursively must not double-count time. *)
  let s = Obs.span "test.recursive" in
  let rec go n = Obs.time s (fun () -> if n > 0 then go (n - 1)) in
  go 4;
  Alcotest.(check int) "every entry counted" 5 (Obs.span_count s);
  Alcotest.(check bool) "recursive time attributed once (not 5x the wall time)" true
    (Obs.span_seconds outer +. Obs.span_seconds s < 10.0);
  (* An exception still closes the span. *)
  (try Obs.time s (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "exceptional exit counted" 6 (Obs.span_count s)

let test_snapshot_determinism () =
  Obs.reset ();
  Obs.add (Obs.counter "test.b") 2;
  Obs.add (Obs.counter "test.a") 1;
  Obs.add (Obs.counter "test.c") 0;
  let names l = List.map fst l in
  let snap1 = Obs.snapshot () in
  let snap2 = Obs.snapshot () in
  Alcotest.(check bool) "snapshots of unchanged state are equal" true (snap1 = snap2);
  Alcotest.(check (list string))
    "counters sorted by name"
    (List.sort String.compare (names snap1.Obs.snap_counters))
    (names snap1.Obs.snap_counters);
  let nz = Obs.nonzero snap1 in
  Alcotest.(check bool) "nonzero drops zero counters" true
    (not (List.mem_assoc "test.c" nz.Obs.snap_counters));
  Alcotest.(check bool) "nonzero keeps live counters" true
    (List.mem_assoc "test.a" nz.Obs.snap_counters)

(* ----------------------------- histograms ------------------------- *)

let test_histogram_basics () =
  Obs.reset ();
  let h = Obs.histogram "test.hist" in
  Alcotest.(check int) "starts empty" 0 (Obs.histogram_count h);
  Alcotest.(check string) "name" "test.hist" (Obs.histogram_name h);
  List.iter (Obs.observe h) [ 0.001; 0.002; 0.004; 0.008; 0.1; 2.0 ];
  Alcotest.(check int) "six observations" 6 (Obs.histogram_count h);
  let v = Obs.histogram_view h in
  Alcotest.(check int) "view count" 6 v.Obs.hv_count;
  Alcotest.(check (float 1e-9)) "view sum" 2.115 v.Obs.hv_sum;
  let total_bucketed =
    List.fold_left (fun acc (_, c) -> acc + c) v.Obs.hv_overflow v.Obs.hv_buckets
  in
  Alcotest.(check int) "every observation landed in a bucket" 6 total_bucketed;
  Alcotest.(check int) "nothing overflowed" 0 v.Obs.hv_overflow;
  (* Same name aliases the same cell, like counters. *)
  Obs.observe (Obs.histogram "test.hist") 0.5;
  Alcotest.(check int) "aliased observe lands" 7 (Obs.histogram_count h)

let test_histogram_quantiles () =
  Obs.reset ();
  let h = Obs.histogram "test.quant" in
  Alcotest.(check (float 0.0)) "empty histogram quantile is 0" 0.0
    (Obs.quantile (Obs.histogram_view h) 0.5);
  (* 90 fast observations and 10 slow ones: the median must sit near the
     fast mass and p99 near the slow mass, with quantiles monotone in q. *)
  for _ = 1 to 90 do Obs.observe h 0.001 done;
  for _ = 1 to 10 do Obs.observe h 1.0 done;
  let v = Obs.histogram_view h in
  let p50 = Obs.quantile v 0.50 in
  let p95 = Obs.quantile v 0.95 in
  let p99 = Obs.quantile v 0.99 in
  Alcotest.(check bool) "p50 <= p95" true (p50 <= p95);
  Alcotest.(check bool) "p95 <= p99" true (p95 <= p99);
  Alcotest.(check bool) "p50 near the fast mass" true (p50 < 0.01);
  Alcotest.(check bool) "p99 near the slow mass" true (p99 > 0.25);
  (* q is clamped, not rejected. *)
  Alcotest.(check bool) "q clamps low" true (Obs.quantile v (-1.0) <= p50);
  Alcotest.(check bool) "q clamps high" true (Obs.quantile v 2.0 >= p99);
  (* Out-of-range observations land in the overflow bucket and keep the
     top quantile finite. *)
  let o = Obs.histogram "test.quant_over" in
  Obs.observe o 1e9;
  let ov = Obs.histogram_view o in
  Alcotest.(check int) "overflow recorded" 1 ov.Obs.hv_overflow;
  let top = Obs.quantile ov 1.0 in
  Alcotest.(check bool) "overflow quantile is finite" true (Float.is_finite top)

let test_histogram_merge () =
  Obs.reset ();
  let a = Obs.histogram "test.merge_a" in
  let b = Obs.histogram "test.merge_b" in
  for _ = 1 to 40 do Obs.observe a 0.002 done;
  for _ = 1 to 60 do Obs.observe b 0.5 done;
  Obs.observe b 1e9;
  let va = Obs.histogram_view a and vb = Obs.histogram_view b in
  let m = Obs.merge_views va vb in
  Alcotest.(check int) "merged count" 101 m.Obs.hv_count;
  Alcotest.(check (float 1e-6)) "merged sum" (va.Obs.hv_sum +. vb.Obs.hv_sum) m.Obs.hv_sum;
  Alcotest.(check int) "merged overflow" 1 m.Obs.hv_overflow;
  (* The merged quantiles reflect the combined distribution: the median
     falls between the two component medians. *)
  let qm = Obs.quantile m 0.5 in
  Alcotest.(check bool) "merged median between component masses" true
    (qm >= Obs.quantile va 0.5 && qm <= Obs.quantile vb 0.5);
  (* Merge is commutative. *)
  let m' = Obs.merge_views vb va in
  Alcotest.(check bool) "commutative" true (m = m')

let test_histogram_concurrent_observe () =
  Obs.reset ();
  let h = Obs.histogram "test.hist_par" in
  let per_domain = 10_000 in
  let worker seed () =
    for i = 1 to per_domain do
      (* Spread observations across several buckets deterministically. *)
      Obs.observe h (0.001 *. float_of_int (1 + ((i + seed) mod 7)))
    done
  in
  let domains = List.init 4 (fun s -> Domain.spawn (worker s)) in
  List.iter Domain.join domains;
  let v = Obs.histogram_view h in
  Alcotest.(check int) "no observation lost across domains" (4 * per_domain)
    v.Obs.hv_count;
  let bucketed =
    List.fold_left (fun acc (_, c) -> acc + c) v.Obs.hv_overflow v.Obs.hv_buckets
  in
  Alcotest.(check int) "bucket totals agree with count" (4 * per_domain) bucketed

let test_histogram_reset_and_listing () =
  Obs.reset ();
  let h = Obs.histogram "test.hist_reset" in
  Obs.observe h 0.25;
  Alcotest.(check bool) "listed with data" true
    (match List.assoc_opt "test.hist_reset" (Obs.histograms ()) with
    | Some v -> v.Obs.hv_count = 1
    | None -> false);
  let snap = Obs.snapshot () in
  Alcotest.(check bool) "snapshot carries histograms" true
    (List.mem_assoc "test.hist_reset" snap.Obs.snap_histograms);
  Alcotest.(check bool) "nonzero keeps populated histograms" true
    (List.mem_assoc "test.hist_reset" (Obs.nonzero snap).Obs.snap_histograms);
  Obs.reset ();
  Alcotest.(check int) "reset zeroes observations" 0 (Obs.histogram_count h);
  let v = Obs.histogram_view h in
  Alcotest.(check (float 0.0)) "reset zeroes the sum" 0.0 v.Obs.hv_sum;
  Alcotest.(check bool) "registration survives reset" true
    (List.mem_assoc "test.hist_reset" (Obs.histograms ()));
  Alcotest.(check bool) "nonzero drops empty histograms" true
    (not (List.mem_assoc "test.hist_reset" (Obs.nonzero (Obs.snapshot ())).Obs.snap_histograms))

(* ------------------------------- Json ----------------------------- *)

let rec json_equal a b =
  match (a, b) with
  | Json.Float x, Json.Float y -> Float.equal x y
  | Json.List xs, Json.List ys ->
    List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | Json.Assoc xs, Json.Assoc ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && json_equal v1 v2) xs ys
  | a, b -> a = b

let check_roundtrip v =
  match Json.of_string (Json.to_string v) with
  | Ok v' ->
    Alcotest.(check bool) (Printf.sprintf "round-trip %s" (Json.to_string v)) true
      (json_equal v v')
  | Error e -> Alcotest.failf "parse of emitted %s failed: %s" (Json.to_string v) e

let test_json_roundtrip () =
  List.iter check_roundtrip
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Int 0;
      Json.Int (-42);
      Json.Int max_int;
      Json.Float 0.25;
      Json.Float 1e-9;
      Json.Float 27.927233934402466;
      Json.Float (-1.5e300);
      Json.String "plain";
      Json.String "esc \"quotes\" \\ back\n tab\t and \x01 control";
      Json.List [];
      Json.Assoc [];
      Json.List [ Json.Int 1; Json.Null; Json.String "x" ];
      Json.Assoc
        [
          ("a", Json.Int 1);
          ("nested", Json.Assoc [ ("l", Json.List [ Json.Float 3.5 ]) ]);
        ];
    ]

let test_json_parse_cases () =
  let ok text expect =
    match Json.of_string text with
    | Ok v -> Alcotest.(check bool) (Printf.sprintf "parse %s" text) true (json_equal expect v)
    | Error e -> Alcotest.failf "parse %s failed: %s" text e
  in
  ok "  [1, 2.5, \"a\\u0041b\"]  "
    (Json.List [ Json.Int 1; Json.Float 2.5; Json.String "aAb" ]);
  ok "{\"k\" : null}" (Json.Assoc [ ("k", Json.Null) ]);
  ok "-3e2" (Json.Float (-300.0));
  let bad text =
    match Json.of_string text with
    | Ok _ -> Alcotest.failf "expected failure on %s" text
    | Error _ -> ()
  in
  List.iter bad [ ""; "{"; "[1,]"; "tru"; "\"unterminated"; "1 2"; "{\"a\":}"; "nan" ]

(* ----------------------------- Bench_json ------------------------- *)

let sample_run () =
  Obs.reset ();
  Obs.add (Obs.counter "test.bench_counter") 9;
  ignore (Obs.time (Obs.span "test.bench_span") (fun () -> ()));
  List.iter (Obs.observe (Obs.histogram "test.bench_hist")) [ 0.001; 0.1; 1e9 ];
  let e1 =
    Bench_json.experiment
      ~params:[ ("h", Json.Int 100); ("taus", Json.List [ Json.Float 0.2 ]) ]
      ~measurements:
        [
          { Bench_json.m_name = "q1-basic"; m_seconds_per_run = 0.0123 };
          { Bench_json.m_name = "q1-tree"; m_seconds_per_run = 0.0045 };
        ]
      ~snapshot:(Obs.snapshot ()) ~id:"fig9f" ~title:"PTQ time" ~wall_seconds:1.5 ()
  in
  let e2 = Bench_json.experiment ~id:"table2" ~title:"datasets" ~wall_seconds:0.25 () in
  {
    Bench_json.r_git_rev = "abc1234";
    r_unix_time = 1786000000.0;
    r_argv = [ "--json"; "out.json"; "fig9f"; "table2" ];
    r_jobs = 4;
    r_executor = "domains";
    r_experiments = [ e1; e2 ];
    r_kind = "bench";
    r_loadgen = None;
  }

let test_bench_json_roundtrip () =
  let run = sample_run () in
  let line = Bench_json.run_to_string run in
  (match Json.of_string line with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "emitted record is not valid JSON: %s" e);
  match Bench_json.run_of_string line with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok run' ->
    Alcotest.(check string) "git rev" run.Bench_json.r_git_rev run'.Bench_json.r_git_rev;
    Alcotest.(check (list string)) "argv" run.Bench_json.r_argv run'.Bench_json.r_argv;
    Alcotest.(check int) "jobs" run.Bench_json.r_jobs run'.Bench_json.r_jobs;
    Alcotest.(check string) "executor" run.Bench_json.r_executor run'.Bench_json.r_executor;
    Alcotest.(check (list string))
      "every emitted experiment id survives"
      (List.map (fun e -> e.Bench_json.e_id) run.Bench_json.r_experiments)
      (List.map (fun e -> e.Bench_json.e_id) run'.Bench_json.r_experiments);
    let e1 = List.hd run.Bench_json.r_experiments in
    let e1' = List.hd run'.Bench_json.r_experiments in
    Alcotest.(check bool) "counters survive" true
      (e1.Bench_json.e_counters = e1'.Bench_json.e_counters);
    Alcotest.(check bool) "measurements survive" true
      (e1.Bench_json.e_measurements = e1'.Bench_json.e_measurements);
    Alcotest.(check bool) "spans survive" true (e1.Bench_json.e_spans = e1'.Bench_json.e_spans);
    Alcotest.(check bool) "params survive" true
      (List.map fst e1.Bench_json.e_params = List.map fst e1'.Bench_json.e_params);
    Alcotest.(check bool) "histograms survive (counts, buckets, overflow)" true
      (e1.Bench_json.e_histograms <> []
      && List.for_all2
           (fun (n, v) (n', v') ->
             n = n'
             && v.Obs.hv_count = v'.Obs.hv_count
             && v.Obs.hv_overflow = v'.Obs.hv_overflow
             && List.map fst v.Obs.hv_buckets = List.map fst v'.Obs.hv_buckets)
           e1.Bench_json.e_histograms e1'.Bench_json.e_histograms);
    (* An experiment with no histogram traffic keeps the pre-histogram
       record shape: the field is absent, not an empty list. *)
    let e2_json =
      List.find
        (fun j -> Json.member "id" j = Some (Json.String "table2"))
        (match Json.of_string line with
        | Ok j -> (
          match Json.member "experiments" j with
          | Some (Json.List es) -> es
          | _ -> [])
        | Error _ -> [])
    in
    Alcotest.(check bool) "empty histograms field omitted from the record" true
      (Json.member "histograms" e2_json = None)

(* Records written before the executor fields existed must keep parsing,
   with the only configuration they could have used. *)
let test_bench_json_old_shape () =
  let line =
    {|{"git_rev": "abc1234", "unix_time": 1786000000, "argv": ["table2"], "experiments": []}|}
  in
  (match Bench_json.run_of_string line with
  | Error e -> Alcotest.failf "old-shape record must keep parsing: %s" e
  | Ok r ->
    Alcotest.(check string) "rev survives" "abc1234" r.Bench_json.r_git_rev;
    Alcotest.(check int) "jobs defaults to 1" 1 r.Bench_json.r_jobs;
    Alcotest.(check string) "executor defaults to sequential" "sequential"
      r.Bench_json.r_executor);
  (* Present-but-mistyped executor fields are an error, not a default. *)
  (match
     Bench_json.run_of_string
       {|{"git_rev": "x", "unix_time": 0, "argv": [], "jobs": "four", "experiments": []}|}
   with
  | Ok _ -> Alcotest.fail "mistyped jobs field must not parse"
  | Error _ -> ());
  (* The committed pre-executor baseline is the real backward-compat
     fixture: it must parse and read as a sequential run. *)
  let ic = open_in "../BENCH_baseline.json" in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  match Bench_json.runs_of_lines content with
  | Error e -> Alcotest.failf "BENCH_baseline.json no longer parses: %s" e
  | Ok runs ->
    Alcotest.(check bool) "baseline has runs" true (runs <> []);
    List.iter
      (fun r ->
        Alcotest.(check int) "baseline ran sequentially" 1 r.Bench_json.r_jobs;
        Alcotest.(check string) "baseline backend" "sequential" r.Bench_json.r_executor)
      runs

let test_bench_json_file_append () =
  let path = Filename.temp_file "uxsm_bench" ".json" in
  let run = sample_run () in
  Bench_json.append_to_file ~path run;
  Bench_json.append_to_file ~path { run with Bench_json.r_git_rev = "def5678" };
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  Sys.remove path;
  match Bench_json.runs_of_lines content with
  | Error e -> Alcotest.failf "JSONL file did not parse: %s" e
  | Ok runs ->
    Alcotest.(check int) "two appended runs" 2 (List.length runs);
    Alcotest.(check (list string))
      "revisions in order" [ "abc1234"; "def5678" ]
      (List.map (fun r -> r.Bench_json.r_git_rev) runs);
    let ids =
      List.concat_map
        (fun r -> List.map (fun e -> e.Bench_json.e_id) r.Bench_json.r_experiments)
        runs
    in
    List.iter
      (fun id -> Alcotest.(check bool) (id ^ " present") true (List.mem id ids))
      [ "fig9f"; "table2" ]

let test_bench_jsonl_error_location () =
  let good = Bench_json.run_to_string (sample_run ()) in
  (* A record with a mistyped field fails with its line number (counting
     raw file lines, blanks included) and the offending field. *)
  let content =
    String.concat "\n"
      [ good; ""; {|{"git_rev": "x", "unix_time": 0, "argv": [], "jobs": "four", "executor": "s", "experiments": []}|}; good ]
  in
  (match Bench_json.runs_of_lines content with
  | Ok _ -> Alcotest.fail "mistyped record must not parse"
  | Error e ->
    Alcotest.(check bool) ("line number reported: " ^ e) true
      (String.length e >= 7 && String.sub e 0 7 = "line 3:");
    Alcotest.(check bool) ("offending field named: " ^ e) true
      (let needle = "\"jobs\"" in
       let rec mem i =
         i + String.length needle <= String.length e
         && (String.sub e i (String.length needle) = needle || mem (i + 1))
       in
       mem 0));
  (* Unparseable JSON is located the same way. *)
  match Bench_json.runs_of_lines (good ^ "\nnot json at all\n") with
  | Ok _ -> Alcotest.fail "garbage line must not parse"
  | Error e ->
    Alcotest.(check bool) ("line number reported: " ^ e) true
      (String.length e >= 7 && String.sub e 0 7 = "line 2:")

let sample_loadgen () =
  Obs.reset ();
  let h = Obs.histogram "test.loadgen_lat" in
  List.iter (Obs.observe h) [ 0.0012; 0.0034; 0.0100; 0.0450 ];
  {
    Bench_json.lg_profile = "smoke";
    lg_mode = "open";
    lg_clients = 4;
    lg_target_rps = Some 40.0;
    lg_warmup_seconds = 1.0;
    lg_window_seconds = 5.002;
    lg_plan_cache = "cold";
    lg_seed = 42;
    lg_sent = 198;
    lg_completed = 195;
    lg_errors = 2;
    lg_overloaded = 1;
    lg_late = 3;
    lg_offered_rps = 40.2;
    lg_achieved_rps = 38.99;
    lg_latency = [ ("all", Obs.histogram_view h) ];
    lg_server = [ ("server.requests", 195); ("server.errors", 0) ];
  }

let test_bench_json_loadgen_record () =
  let lg = sample_loadgen () in
  let run =
    {
      (sample_run ()) with
      Bench_json.r_kind = "loadgen";
      r_executor = "loadgen";
      r_experiments = [];
      r_loadgen = Some lg;
    }
  in
  (match Bench_json.check_run run with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid loadgen record rejected: %s" e);
  (match Bench_json.run_of_string (Bench_json.run_to_string run) with
  | Error e -> Alcotest.failf "loadgen record round-trip failed: %s" e
  | Ok run' -> (
    Alcotest.(check string) "kind survives" "loadgen" run'.Bench_json.r_kind;
    match run'.Bench_json.r_loadgen with
    | None -> Alcotest.fail "payload lost"
    | Some lg' ->
      Alcotest.(check string) "profile" "smoke" lg'.Bench_json.lg_profile;
      Alcotest.(check bool) "target rps survives" true
        (lg'.Bench_json.lg_target_rps = Some 40.0);
      Alcotest.(check int) "late count" 3 lg'.Bench_json.lg_late;
      Alcotest.(check bool) "histogram survives intact" true
        (lg'.Bench_json.lg_latency = lg.Bench_json.lg_latency);
      Alcotest.(check bool) "server counters survive" true
        (lg'.Bench_json.lg_server = lg.Bench_json.lg_server)));
  (* Bench-kind records do not even mention the new fields on the wire:
     files written before this record kind existed stay byte-stable. *)
  let bench_line = Bench_json.run_to_string (sample_run ()) in
  List.iter
    (fun needle ->
      let rec mem i =
        i + String.length needle <= String.length bench_line
        && (String.sub bench_line i (String.length needle) = needle || mem (i + 1))
      in
      Alcotest.(check bool) (needle ^ " absent from bench records") false (mem 0))
    [ "\"kind\""; "\"loadgen\"" ]

let test_bench_json_check_run_invariants () =
  let lg = sample_loadgen () in
  let run = sample_run () in
  let rejected what r =
    match Bench_json.check_run r with
    | Ok () -> Alcotest.failf "%s: expected rejection" what
    | Error _ -> ()
  in
  (match Bench_json.check_run run with
  | Ok () -> ()
  | Error e -> Alcotest.failf "plain bench record rejected: %s" e);
  rejected "loadgen kind without payload" { run with Bench_json.r_kind = "loadgen" };
  rejected "bench kind with payload" { run with Bench_json.r_loadgen = Some lg };
  rejected "unknown kind" { run with Bench_json.r_kind = "mystery" };
  let lg_run payload =
    { run with Bench_json.r_kind = "loadgen"; r_loadgen = Some payload }
  in
  rejected "empty profile id" (lg_run { lg with Bench_json.lg_profile = "" });
  rejected "unknown mode" (lg_run { lg with Bench_json.lg_mode = "burst" });
  rejected "unknown plan cache" (lg_run { lg with Bench_json.lg_plan_cache = "tepid" });
  rejected "zero clients" (lg_run { lg with Bench_json.lg_clients = 0 });
  rejected "negative errors" (lg_run { lg with Bench_json.lg_errors = -1 });
  rejected "completed exceeds sent" (lg_run { lg with Bench_json.lg_completed = 999 });
  rejected "non-positive window" (lg_run { lg with Bench_json.lg_window_seconds = 0.0 });
  rejected "negative throughput" (lg_run { lg with Bench_json.lg_achieved_rps = -1.0 });
  rejected "non-positive target rps" (lg_run { lg with Bench_json.lg_target_rps = Some 0.0 });
  let bad_hist =
    { Obs.hv_count = -1; hv_sum = 0.0; hv_buckets = []; hv_overflow = 0 }
  in
  rejected "negative histogram count"
    (lg_run { lg with Bench_json.lg_latency = [ ("all", bad_hist) ] });
  let too_many =
    {
      Obs.hv_count = 50;
      hv_sum = 1.0;
      hv_buckets = List.init 50 (fun i -> (float_of_int (i + 1), 1));
      hv_overflow = 0;
    }
  in
  rejected "histogram bucket arity"
    (lg_run { lg with Bench_json.lg_latency = [ ("all", too_many) ] })

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "counter monotonicity" `Quick test_counter_monotone;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "reset inside an active span" `Quick test_reset_inside_active_span;
    Alcotest.test_case "nested spans" `Quick test_nested_spans;
    Alcotest.test_case "snapshot determinism" `Quick test_snapshot_determinism;
    Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
    Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
    Alcotest.test_case "histogram concurrent observe" `Quick test_histogram_concurrent_observe;
    Alcotest.test_case "histogram reset and listing" `Quick test_histogram_reset_and_listing;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse cases" `Quick test_json_parse_cases;
    Alcotest.test_case "bench record round-trip" `Quick test_bench_json_roundtrip;
    Alcotest.test_case "bench record pre-executor shape" `Quick test_bench_json_old_shape;
    Alcotest.test_case "bench JSONL append + parse" `Quick test_bench_json_file_append;
    Alcotest.test_case "loadgen record kind round-trip" `Quick test_bench_json_loadgen_record;
    Alcotest.test_case "check_run invariants" `Quick test_bench_json_check_run_invariants;
    Alcotest.test_case "bench JSONL error location" `Quick test_bench_jsonl_error_location;
  ]
