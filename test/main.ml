let () =
  (* Disable the executor's cost gate for the whole suite: the Domains ≡
     Sequential differentials must exercise real pool fan-out even on a
     single-core machine (where the calibrated default gates every hinted
     call sequential) and even for small hinted jobs. Tests of the gate
     itself override this locally. *)
  Unix.putenv "UXSM_PAR_THRESHOLD" "0";
  Alcotest.run "uxsm"
    [
      ("util", Test_util.suite);
      ("locks", Test_locks.suite);
      ("obs", Test_obs.suite);
      ("exec", Test_exec.suite);
      ("xml", Test_xml.suite);
      ("schema", Test_schema.suite);
      ("matcher", Test_matcher.suite);
      ("assignment", Test_assignment.suite);
      ("mapping", Test_mapping.suite);
      ("blocktree", Test_blocktree.suite);
      ("twig", Test_twig.suite);
      ("plan", Test_plan.suite);
      ("ptq", Test_ptq.suite);
      ("workload", Test_workload.suite);
      ("loadgen", Test_loadgen.suite);
      ("server", Test_server.suite);
      ("lint", Test_lint.suite);
      ("extensions", Test_extensions.suite);
      ("robustness", Test_robustness.suite);
      ("edge", Test_edge.suite);
      ("integration", Test_integration.suite);
    ]
