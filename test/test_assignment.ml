(* Tests for the assignment substrate: Bipartite, Solver, Murty, Partition.
   The ground truth is a brute-force enumerator of all injective partial
   assignments; weights are dyadic rationals so float sums are exact. *)

module Bipartite = Uxsm_assignment.Bipartite
module Solver = Uxsm_assignment.Solver
module Murty = Uxsm_assignment.Murty
module Partition = Uxsm_assignment.Partition

let pair_compare (i1, j1) (i2, j2) =
  match Int.compare i1 i2 with 0 -> Int.compare j1 j2 | c -> c

let edge_compare (i1, j1, w1) (i2, j2, w2) =
  match Int.compare i1 i2 with
  | 0 -> ( match Int.compare j1 j2 with 0 -> Float.compare w1 w2 | c -> c)
  | c -> c

(* Enumerate every injective partial assignment (left -> right or none)
   restricted to the given edges; return scores sorted non-increasing. *)
let brute_force_solutions g =
  let nl = Bipartite.n_left g in
  let out = ref [] in
  let used = Hashtbl.create 16 in
  let rec go i pairs score =
    if i = nl then out := (score, List.rev pairs) :: !out
    else begin
      go (i + 1) pairs score;
      Array.iter
        (fun (j, w) ->
          if not (Hashtbl.mem used j) then begin
            Hashtbl.add used j ();
            go (i + 1) ((i, j) :: pairs) (score +. w);
            Hashtbl.remove used j
          end)
        (Bipartite.adj g i)
    end
  in
  go 0 [] 0.0;
  List.sort (fun (s1, _) (s2, _) -> Float.compare s2 s1) !out

let brute_force_scores g = List.map fst (brute_force_solutions g)

(* Random sparse bipartite graphs with dyadic weights. *)
let gen_graph =
  let open QCheck.Gen in
  let* nl = int_range 1 5 in
  let* nr = int_range 1 5 in
  let all_pairs = List.concat_map (fun i -> List.init nr (fun j -> (i, j))) (List.init nl Fun.id) in
  let* kept = flatten_l (List.map (fun p -> map (fun b -> (p, b)) bool) all_pairs) in
  let chosen = List.filter_map (fun (p, b) -> if b then Some p else None) kept in
  let* weights = flatten_l (List.map (fun _ -> int_range 1 16) chosen) in
  let edges = List.map2 (fun (i, j) k -> (i, j, float_of_int k /. 4.0)) chosen weights in
  return (Bipartite.create ~n_left:nl ~n_right:nr edges)

let arb_graph =
  QCheck.make gen_graph ~print:(fun g ->
      Printf.sprintf "nl=%d nr=%d edges=[%s]" (Bipartite.n_left g) (Bipartite.n_right g)
        (String.concat "; "
           (List.map (fun (i, j, w) -> Printf.sprintf "(%d,%d,%.2f)" i j w) (Bipartite.edges g))))

let valid_solution g (s : Murty.solution) =
  let lefts = List.map fst s.pairs and rights = List.map snd s.pairs in
  let distinct l = List.length (List.sort_uniq Int.compare l) = List.length l in
  distinct lefts && distinct rights
  && List.for_all
       (fun (i, j) ->
         match Bipartite.weight g i j with
         | Some _ -> true
         | None -> false)
       s.pairs
  && Float.equal s.score
       (List.fold_left
          (fun acc (i, j) ->
            match Bipartite.weight g i j with
            | Some w -> acc +. w
            | None -> acc)
          0.0 s.pairs)

let prop_optimal =
  QCheck.Test.make ~count:300 ~name:"Murty h=1 finds the optimum" arb_graph (fun g ->
      match (Murty.top ~h:1 g, brute_force_scores g) with
      | [ best ], expect :: _ -> valid_solution g best && Float.equal best.score expect
      | _ -> false)

let prop_murty_matches_brute_force =
  QCheck.Test.make ~count:200 ~name:"Murty top-h score sequence = brute force" arb_graph (fun g ->
      let h = 25 in
      let got = Murty.top ~h g in
      let expect = brute_force_scores g in
      let expect_h = List.filteri (fun k _ -> k < h) expect in
      List.length got = min h (List.length expect)
      && List.for_all (valid_solution g) got
      && List.for_all2 (fun (s : Murty.solution) e -> Float.equal s.score e) got expect_h)

let prop_murty_distinct =
  QCheck.Test.make ~count:200 ~name:"Murty solutions are pairwise distinct" arb_graph (fun g ->
      let got = Murty.top ~h:25 g in
      let keys = List.map (fun (s : Murty.solution) -> s.pairs) got in
      List.length (List.sort_uniq (List.compare pair_compare) keys) = List.length keys)

let prop_murty_cold_equals_warm =
  QCheck.Test.make ~count:150 ~name:"Murty cold re-solve = warm restart" arb_graph (fun g ->
      let scores resolve =
        List.map (fun (s : Murty.solution) -> s.score) (Murty.top ~resolve ~h:20 g)
      in
      scores `Cold = scores `Warm)

let prop_murty_order_invariant =
  QCheck.Test.make ~count:200 ~name:"Murty `Index and `Degree orders agree on scores" arb_graph
    (fun g ->
      let a = List.map (fun (s : Murty.solution) -> s.score) (Murty.top ~order:`Index ~h:20 g) in
      let b = List.map (fun (s : Murty.solution) -> s.score) (Murty.top ~order:`Degree ~h:20 g) in
      a = b)

let prop_partition_matches_murty =
  QCheck.Test.make ~count:200 ~name:"Partition.top score sequence = Murty.top" arb_graph (fun g ->
      let h = 20 in
      let a = List.map (fun (s : Murty.solution) -> s.score) (Murty.top ~h g) in
      let b = List.map (fun (s : Murty.solution) -> s.score) (Partition.top ~h g) in
      a = b && List.for_all (valid_solution g) (Partition.top ~h g))

let prop_components_partition_edges =
  QCheck.Test.make ~count:200 ~name:"components partition the edge set" arb_graph (fun g ->
      let comps = Partition.components g in
      let all = List.concat_map (fun (c : Partition.component) -> c.edges) comps in
      List.sort edge_compare all = List.sort edge_compare (Bipartite.edges g))

(* Differential test: Partition.top must equal Murty.top as a *solution
   set* — scores and pair sets — on sparse bipartites that stress its edge
   cases: isolated left/right nodes (which join no component in
   [Partition.components]), tied scores (the weight pool is tiny, so equal
   totals are common), and single-component graphs. Both sides are asked
   for every solution, so tie order cannot mask a divergence. *)

let gen_graph_with_isolated =
  let open QCheck.Gen in
  let* nl_core = int_range 1 4 in
  let* nr_core = int_range 1 4 in
  let* iso_l = int_range 0 2 in
  let* iso_r = int_range 0 2 in
  let all_pairs =
    List.concat_map (fun i -> List.init nr_core (fun j -> (i, j))) (List.init nl_core Fun.id)
  in
  let* kept = flatten_l (List.map (fun p -> map (fun b -> (p, b)) bool) all_pairs) in
  let chosen = List.filter_map (fun (p, b) -> if b then Some p else None) kept in
  (* Weights from {0.25, 0.5, 0.75, 1.0}: ties across solutions are common. *)
  let* weights = flatten_l (List.map (fun _ -> int_range 1 4) chosen) in
  let edges = List.map2 (fun (i, j) k -> (i, j, float_of_int k /. 4.0)) chosen weights in
  (* Nodes beyond the core are isolated by construction. *)
  return (Bipartite.create ~n_left:(nl_core + iso_l) ~n_right:(nr_core + iso_r) edges)

let arb_graph_with_isolated =
  QCheck.make gen_graph_with_isolated ~print:(fun g ->
      Printf.sprintf "nl=%d nr=%d edges=[%s]" (Bipartite.n_left g) (Bipartite.n_right g)
        (String.concat "; "
           (List.map (fun (i, j, w) -> Printf.sprintf "(%d,%d,%.2f)" i j w) (Bipartite.edges g))))

let normalized_solutions sols =
  List.map (fun (s : Murty.solution) -> (s.score, List.sort pair_compare s.pairs)) sols
  |> List.sort (fun (s1, p1) (s2, p2) ->
         match Float.compare s2 s1 with
         | 0 -> compare p1 p2
         | c -> c)

let partition_equals_murty g =
  let n_solutions = List.length (brute_force_solutions g) in
  let m = normalized_solutions (Murty.top ~h:n_solutions g) in
  let p = normalized_solutions (Partition.top ~h:n_solutions g) in
  m = p

let prop_partition_differential =
  QCheck.Test.make ~count:300
    ~name:"differential: Partition.top = Murty.top (scores AND pair sets, isolated nodes)"
    arb_graph_with_isolated partition_equals_murty

let test_partition_differential_cases () =
  let check name g =
    Alcotest.(check bool) name true (partition_equals_murty g)
  in
  (* Isolated nodes on both sides around a single tied pair of edges. *)
  check "isolated + tie"
    (Bipartite.create ~n_left:4 ~n_right:4 [ (1, 0, 0.5); (2, 3, 0.5) ]);
  (* Single component: a path s0-t0-s1-t1 with equal weights. *)
  check "single component, tied scores"
    (Bipartite.create ~n_left:2 ~n_right:2 [ (0, 0, 0.5); (1, 0, 0.5); (1, 1, 0.5) ]);
  (* Only isolated nodes: both sides must return exactly the empty solution. *)
  check "no edges at all" (Bipartite.create ~n_left:3 ~n_right:2 []);
  (* Two components of different sizes plus an isolated right node. *)
  check "two components + isolated right"
    (Bipartite.create ~n_left:3 ~n_right:4
       [ (0, 0, 1.0); (0, 1, 0.25); (1, 1, 0.25); (2, 2, 0.75) ])

let test_fig7_example () =
  (* The bipartite of Figure 7: s1..s4 vs t1..t3 with the drawn edges. *)
  let g =
    Bipartite.create ~n_left:4 ~n_right:3
      [ (0, 0, 0.8); (0, 1, 0.5); (2, 1, 0.9); (1, 2, 0.7); (3, 2, 0.6) ]
  in
  let comps = Partition.components g in
  Alcotest.(check int) "two partitions (Figure 8)" 2 (List.length comps);
  let best =
    match Murty.top ~h:1 g with
    | [ b ] -> b
    | _ -> Alcotest.fail "expected one solution"
  in
  (* Best: s1~t1 (.8), s3~t2 (.9), s2~t3 (.7) beats s4~t3 (.6). *)
  Alcotest.(check (float 1e-9)) "optimal score" 2.4 best.score

let test_merge_top_h () =
  let mk score = { Murty.pairs = []; score } in
  let a = List.map mk [ 5.0; 3.0; 1.0 ] and b = List.map mk [ 4.0; 2.0 ] in
  let merged = Partition.merge ~h:4 a b in
  Alcotest.(check (list (float 1e-9)))
    "top-4 of pairwise sums" [ 9.0; 7.0; 7.0; 5.0 ]
    (List.map (fun (s : Murty.solution) -> s.score) merged)

let test_empty_graph () =
  let g = Bipartite.create ~n_left:3 ~n_right:2 [] in
  (match Murty.top ~h:5 g with
  | [ only ] ->
    Alcotest.(check (float 0.0)) "only the empty solution" 0.0 only.score;
    Alcotest.(check int) "no pairs" 0 (List.length only.pairs)
  | l -> Alcotest.failf "expected exactly one solution, got %d" (List.length l));
  match Partition.top ~h:5 g with
  | [ only ] -> Alcotest.(check (float 0.0)) "partition: empty solution" 0.0 only.score
  | l -> Alcotest.failf "partition: expected one solution, got %d" (List.length l)

let test_create_validation () =
  let raises f = Alcotest.check_raises "invalid_arg" (Invalid_argument "Bipartite.create: duplicate edge") f in
  raises (fun () -> ignore (Bipartite.create ~n_left:2 ~n_right:2 [ (0, 0, 1.0); (0, 0, 2.0) ]))

(* ------------- incremental ranking (Partition.apply_delta) ------------ *)

(* Random deltas over a random graph: each existing edge is kept, re-scored,
   or removed; a few new edges land on existing or freshly-grown nodes. The
   invariant is exact equality with a from-scratch [rank] of the patched
   graph — scores, pair lists and order all included — because the catalog
   relies on incremental answers being byte-identical to rebuilt ones. *)
let gen_graph_and_delta =
  let open QCheck.Gen in
  let* g = gen_graph in
  let edges = Bipartite.edges g in
  let* grow_l = int_range 0 2 in
  let* grow_r = int_range 0 2 in
  let nl' = Bipartite.n_left g + grow_l and nr' = Bipartite.n_right g + grow_r in
  (* 0 = keep, 1 = re-score, 2 = remove *)
  let* fates = flatten_l (List.map (fun e -> map (fun f -> (e, f)) (int_range 0 2)) edges) in
  let* new_scores = flatten_l (List.map (fun _ -> int_range 1 16) fates) in
  let set_existing =
    List.concat
      (List.map2
         (fun ((i, j, _), fate) k ->
           if fate = 1 then [ (i, j, float_of_int k /. 4.0) ] else [])
         fates new_scores)
  in
  let removes =
    List.filter_map (fun ((i, j, _), fate) -> if fate = 2 then Some (i, j) else None) fates
  in
  (* A few brand-new pairs, biased toward the grown fringe. *)
  let* n_new = int_range 0 3 in
  let* new_edges =
    flatten_l
      (List.init n_new (fun _ ->
           let* i = int_range 0 (nl' - 1) in
           let* j = int_range 0 (nr' - 1) in
           let* k = int_range 1 16 in
           return (i, j, float_of_int k /. 4.0)))
  in
  let fresh =
    List.filter
      (fun (i, j, _) ->
        i >= Bipartite.n_left g || j >= Bipartite.n_right g || Bipartite.weight g i j = None)
      new_edges
  in
  return
    ( g,
      { Partition.d_set = set_existing @ fresh; d_remove = removes; d_n_left = nl'; d_n_right = nr' }
    )

let arb_graph_and_delta =
  QCheck.make gen_graph_and_delta ~print:(fun (g, (d : Partition.delta)) ->
      Printf.sprintf "nl=%d nr=%d edges=[%s] set=[%s] remove=[%s] nl'=%d nr'=%d"
        (Bipartite.n_left g) (Bipartite.n_right g)
        (String.concat "; "
           (List.map (fun (i, j, w) -> Printf.sprintf "(%d,%d,%.2f)" i j w) (Bipartite.edges g)))
        (String.concat "; "
           (List.map (fun (i, j, w) -> Printf.sprintf "(%d,%d,%.2f)" i j w) d.Partition.d_set))
        (String.concat "; "
           (List.map (fun (i, j) -> Printf.sprintf "(%d,%d)" i j) d.Partition.d_remove))
        d.Partition.d_n_left d.Partition.d_n_right)

let patched_graph g (d : Partition.delta) =
  Bipartite.create ~n_left:d.d_n_left ~n_right:d.d_n_right
    (Bipartite.apply_edge_delta ~set:d.d_set ~remove:d.d_remove (Bipartite.edges g))

let apply_delta_equals_rank ?exec (g, (d : Partition.delta)) =
  let h = 15 in
  let incr = Partition.apply_delta ?exec d (Partition.rank ?exec ~h g) in
  let fresh = Partition.rank ~h (patched_graph g d) in
  (* Exact equality, order included: scores are dyadic so [=] is sound. *)
  Partition.solutions incr = Partition.solutions fresh
  && Bipartite.edges (Partition.graph incr) = Bipartite.edges (Partition.graph fresh)

let prop_apply_delta_equals_rank =
  QCheck.Test.make ~count:300 ~name:"Partition.apply_delta = rank of the patched graph"
    arb_graph_and_delta apply_delta_equals_rank

let prop_apply_delta_equals_rank_domains =
  QCheck.Test.make ~count:60
    ~name:"Partition.apply_delta = rank, Domains executor"
    arb_graph_and_delta
    (apply_delta_equals_rank ~exec:(Uxsm_exec.Executor.domains 3))

let prop_delta_of_graphs_round_trips =
  QCheck.Test.make ~count:200 ~name:"delta_of_graphs reconstructs the new edge list exactly"
    arb_graph_and_delta (fun (g, d) ->
      let g' = patched_graph g d in
      let d' = Partition.delta_of_graphs ~old:g g' in
      Bipartite.apply_edge_delta ~set:d'.Partition.d_set ~remove:d'.Partition.d_remove
        (Bipartite.edges g)
      = Bipartite.edges g')

let test_apply_delta_reuses_untouched_components () =
  (* Two components; re-score an edge in the first and the second's Murty
     list must be reused, visible through the Obs counters. *)
  let g =
    Bipartite.create ~n_left:4 ~n_right:4
      [ (0, 0, 0.5); (1, 0, 0.75); (2, 2, 0.25); (3, 3, 1.0) ]
  in
  let r = Partition.rank ~h:10 g in
  let reranked = Uxsm_obs.Obs.counter "partition.components_reranked" in
  let reused = Uxsm_obs.Obs.counter "partition.components_reused" in
  let rr0 = Uxsm_obs.Obs.value reranked and ru0 = Uxsm_obs.Obs.value reused in
  let d =
    { Partition.d_set = [ (0, 0, 1.0) ]; d_remove = []; d_n_left = 4; d_n_right = 4 }
  in
  let r' = Partition.apply_delta d r in
  Alcotest.(check int) "one component re-ranked" 1 (Uxsm_obs.Obs.value reranked - rr0);
  Alcotest.(check int) "two components reused" 2 (Uxsm_obs.Obs.value reused - ru0);
  Alcotest.(check bool) "still equal to fresh rank" true
    (Partition.solutions r' = Partition.solutions (Partition.rank ~h:10 (patched_graph g d)))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "Figure 7/8 example" `Quick test_fig7_example;
    Alcotest.test_case "partition = murty, crafted edge cases" `Quick
      test_partition_differential_cases;
    q prop_partition_differential;
    Alcotest.test_case "merge top-h" `Quick test_merge_top_h;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    q prop_optimal;
    q prop_murty_matches_brute_force;
    q prop_murty_distinct;
    q prop_murty_order_invariant;
    q prop_murty_cold_equals_warm;
    q prop_partition_matches_murty;
    q prop_components_partition_edges;
    Alcotest.test_case "apply_delta reuses untouched components" `Quick
      test_apply_delta_reuses_untouched_components;
    q prop_apply_delta_equals_rank;
    q prop_apply_delta_equals_rank_domains;
    q prop_delta_of_graphs_round_trips;
  ]
