(* Tests for the query-plan IR: logical/physical op lists, the cost-based
   evaluator choice and its reasons, plan rendering, and the compile/execute
   path through Ptq staying equivalent to the direct query API. *)

module Plan = Uxsm_plan.Plan
module Block_tree = Uxsm_blocktree.Block_tree
module Mapping_set = Uxsm_mapping.Mapping_set
module Parser = Uxsm_twig.Pattern_parser
module Ptq = Uxsm_ptq.Ptq
module Obs = Uxsm_obs.Obs

let fig_context ?(tau = 0.4) () =
  let tree =
    Block_tree.build ~params:{ Block_tree.tau; max_b = 500; max_f = 500 } Fixtures.fig3_mset
  in
  Ptq.context ~tree ~mset:Fixtures.fig3_mset ~doc:Fixtures.fig2_doc ()

let op_names ops = List.map Plan.op_name ops

(* ------------------------------ logical ----------------------------- *)

let test_logical_ops () =
  Alcotest.(check (list string))
    "default logical plan"
    [ "resolve"; "coverage"; "relevance_filter"; "evaluate"; "ordered_merge"; "sink[answers]" ]
    (op_names (Plan.logical ()));
  Alcotest.(check (list string))
    "top-k plan prunes before evaluation"
    [
      "resolve";
      "coverage";
      "relevance_filter";
      "topk_prune(3)";
      "evaluate";
      "ordered_merge";
      "sink[consolidate]";
    ]
    (op_names (Plan.logical ~k:3 ~sink:Plan.Consolidate ()))

let test_names () =
  Alcotest.(check string) "per_mapping name" "per_mapping" (Plan.evaluator_name Plan.Per_mapping);
  Alcotest.(check string) "per_block wire word" "tree" (Plan.evaluator_wire Plan.Per_block);
  List.iter
    (fun f ->
      match Plan.force_of_string (Plan.force_to_string f) with
      | Some f' -> Alcotest.(check bool) "force round-trips" true (f = f')
      | None -> Alcotest.fail "force_to_string produced an unparsable word")
    [ `Auto; `Basic; `Tree ];
  Alcotest.(check bool) "unknown force rejected" true (Plan.force_of_string "fast" = None)

(* ------------------------------ choose ------------------------------ *)

let choose_no_tree force =
  Plan.choose ~force
    ~n_mappings:5
    ~pattern:(Parser.parse_exn "//IP//ICN")
    ~resolutions:[||] ~coverage:[] ~relevant:0 ()

let test_choose_reasons () =
  let p = choose_no_tree `Auto in
  Alcotest.(check bool) "auto without tree falls back" true (p.Plan.evaluator = Plan.Per_mapping);
  Alcotest.(check string) "reason no_tree" "no_tree" (Plan.reason_name p.Plan.reason);
  Alcotest.(check bool) "no per-block cost without a tree" true (p.Plan.cost.Plan.per_block = None);
  let p = choose_no_tree `Basic in
  Alcotest.(check string) "forced basic" "forced" (Plan.reason_name p.Plan.reason);
  Alcotest.(check bool) "forced basic evaluator" true (p.Plan.evaluator = Plan.Per_mapping);
  Alcotest.check_raises "forcing tree without a tree is impossible"
    (Invalid_argument "Plan.choose: cannot force the per-block evaluator without a block tree")
    (fun () -> ignore (choose_no_tree `Tree))

let test_fig3_cost_choice () =
  (* The introduction's example: five mappings sharing c-blocks at IP, so
     the cost model must pick Algorithm 4 on its own. *)
  let ctx = fig_context () in
  let plan = Ptq.compile ctx (Parser.parse_exn "//IP//ICN") in
  let phys = Ptq.physical plan in
  Alcotest.(check bool) "auto picks per_block" true (phys.Plan.evaluator = Plan.Per_block);
  Alcotest.(check string) "chosen by cost" "cost" (Plan.reason_name phys.Plan.reason);
  (match phys.Plan.cost.Plan.per_block with
  | None -> Alcotest.fail "expected a per-block estimate"
  | Some pb -> Alcotest.(check bool) "estimated cheaper" true (pb < phys.Plan.cost.Plan.per_mapping));
  Alcotest.(check int) "all five mappings relevant" 5 phys.Plan.relevant;
  let forced = Ptq.physical (Ptq.compile ~force:`Tree ctx (Parser.parse_exn "//IP//ICN")) in
  Alcotest.(check string) "forcing bumps the reason" "forced" (Plan.reason_name forced.Plan.reason)

let test_choose_counters () =
  Obs.reset ();
  let ctx = fig_context () in
  ignore (Ptq.compile ctx (Parser.parse_exn "//IP//ICN"));
  ignore (Ptq.compile ~force:`Basic ctx (Parser.parse_exn "//IP"));
  let v name = List.assoc_opt name (Obs.counters ()) in
  Alcotest.(check (option int)) "plan.compiled counts both" (Some 2) (v "plan.compiled");
  Alcotest.(check (option int)) "one auto per-block pick" (Some 1) (v "plan.auto_per_block");
  Alcotest.(check (option int)) "one forced pick" (Some 1) (v "plan.forced")

(* ----------------------------- rendering ---------------------------- *)

let contains text needle =
  let nl = String.length needle and tl = String.length text in
  let rec scan i = i + nl <= tl && (String.sub text i nl = needle || scan (i + 1)) in
  scan 0

let test_describe_and_json () =
  let ctx = fig_context () in
  let phys = Ptq.physical (Ptq.compile ctx (Parser.parse_exn "//IP//ICN")) in
  let text = Plan.describe phys in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "describe mentions %S" needle) true
        (contains text needle))
    [ "evaluator=per_block"; "(cost)"; "-> resolve"; "per_mapping=" ];
  (* Top-k pruning shows up as its own operator (the choice itself is made
     on the pruned coverage, so the evaluator may differ). *)
  let pruned = Ptq.physical (Ptq.compile ~k:2 ctx (Parser.parse_exn "//IP//ICN")) in
  Alcotest.(check bool) "describe mentions the prune" true
    (contains (Plan.describe pruned) "topk_prune(2)");
  match Plan.to_json phys with
  | Uxsm_util.Json.Assoc fields ->
    Alcotest.(check bool) "json carries evaluator" true
      (List.assoc_opt "evaluator" fields = Some (Uxsm_util.Json.String "per_block"));
    Alcotest.(check bool) "json carries reason" true
      (List.assoc_opt "reason" fields = Some (Uxsm_util.Json.String "cost"));
    (match List.assoc_opt "ops" fields with
    | Some (Uxsm_util.Json.List ops) ->
      Alcotest.(check int) "six ops without top-k" 6 (List.length ops)
    | _ -> Alcotest.fail "ops member missing")
  | _ -> Alcotest.fail "to_json must return an object"

(* ------------------------- compile / execute ------------------------ *)

let test_compile_execute_equals_query () =
  let ctx = fig_context () in
  List.iter
    (fun qs ->
      let q = Parser.parse_exn qs in
      let direct = Ptq.query_basic ctx q in
      List.iter
        (fun force ->
          let plan = Ptq.compile ~force ctx q in
          let got = Ptq.execute plan in
          Alcotest.(check bool)
            (Printf.sprintf "%s (%s) = query_basic" qs (Plan.force_to_string force))
            true
            (List.length got = List.length direct
            && List.for_all2
                 (fun (x : Ptq.answer) (y : Ptq.answer) ->
                   x.Ptq.mapping_id = y.Ptq.mapping_id
                   && Float.equal x.Ptq.probability y.Ptq.probability
                   && x.Ptq.bindings = y.Ptq.bindings)
                 got direct);
          let again = Ptq.execute plan in
          Alcotest.(check bool) "re-executing a plan is stable" true (got = again))
        [ `Auto; `Basic; `Tree ])
    [ "//IP//ICN"; "//IP"; "ORDER//ICN"; "ORDER[./SP/SCN]//ICN" ]

let test_compile_rejects_bad_k () =
  let ctx = fig_context () in
  Alcotest.check_raises "k must be positive"
    (Invalid_argument "Ptq.query_topk: k must be positive") (fun () ->
      ignore (Ptq.compile ~k:0 ctx (Parser.parse_exn "//IP")))

let suite =
  [
    Alcotest.test_case "logical op lists" `Quick test_logical_ops;
    Alcotest.test_case "names and wire words" `Quick test_names;
    Alcotest.test_case "choose reasons and no-tree fallback" `Quick test_choose_reasons;
    Alcotest.test_case "fig3 cost-based pick (Algorithm 4)" `Quick test_fig3_cost_choice;
    Alcotest.test_case "plan.* counters" `Quick test_choose_counters;
    Alcotest.test_case "describe and to_json" `Quick test_describe_and_json;
    Alcotest.test_case "compile/execute = query_basic" `Quick test_compile_execute_equals_query;
    Alcotest.test_case "compile rejects k <= 0" `Quick test_compile_rejects_bad_k;
  ]
