(* Server subsystem tests: the LRU cache as a standalone structure, the
   wire protocol codecs, dispatch against an in-process server (no
   transport), batching through the executor, and the end-to-end
   amortization property the subsystem exists for — the second identical
   query is served from the prepared-artifact cache without rebuilding
   the block tree. *)

module Json = Uxsm_util.Json
module Locks = Uxsm_util.Locks
module Executor = Uxsm_exec.Executor
module Obs = Uxsm_obs.Obs
module Serialize = Uxsm_mapping.Serialize
module Mapping_set = Uxsm_mapping.Mapping_set
module Plan = Uxsm_plan.Plan
module Lru = Uxsm_server.Lru
module Protocol = Uxsm_server.Protocol
module Catalog = Uxsm_server.Catalog
module Server = Uxsm_server.Server

(* ------------------------------- LRU ------------------------------ *)

let test_lru_capacity_bounds () =
  (match Lru.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 must be rejected");
  let c = Lru.create ~capacity:3 in
  Alcotest.(check int) "capacity recorded" 3 (Lru.capacity c);
  for i = 1 to 10 do
    Lru.put c i (i * i)
  done;
  Alcotest.(check int) "population bounded" 3 (Lru.length c);
  Alcotest.(check (list int)) "newest three survive, MRU first" [ 10; 9; 8 ] (Lru.keys c);
  Alcotest.(check int) "seven evictions" 7 (Lru.stats c).Lru.evictions

let test_lru_eviction_order () =
  let c = Lru.create ~capacity:3 in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  Lru.put c "c" 3;
  (* Touch "a": it becomes MRU, so the next eviction takes "b". *)
  Alcotest.(check (option int)) "hit a" (Some 1) (Lru.find c "a");
  Lru.put c "d" 4;
  Alcotest.(check bool) "b evicted" false (Lru.mem c "b");
  Alcotest.(check (list string)) "recency order" [ "d"; "a"; "c" ] (Lru.keys c);
  (* Replacing a key promotes it without growing the population. *)
  Lru.put c "c" 33;
  Alcotest.(check (list string)) "replace promotes" [ "c"; "d"; "a" ] (Lru.keys c);
  Alcotest.(check int) "no growth on replace" 3 (Lru.length c);
  Alcotest.(check (option int)) "replaced value visible" (Some 33) (Lru.find c "c");
  (* remove is not an eviction. *)
  let evs = (Lru.stats c).Lru.evictions in
  Lru.remove c "d";
  Alcotest.(check int) "removed" 2 (Lru.length c);
  Alcotest.(check int) "remove not counted" evs (Lru.stats c).Lru.evictions

(* Regression for the counter-atomicity contract: the structure is
   single-owner (one lock per catalog shard), but [Lru.stats] is read
   lock-free by the stats endpoint while the owner mutates. The counters
   must stay exact and monotone under that race. *)
let test_lru_concurrent_stats () =
  let c = Lru.create ~capacity:8 in
  let lock = Locks.create ~name:"test.lru.owner" ~rank:Locks.rank_latch in
  let ops = 5_000 in
  let n_workers = 4 in
  let worker seed () =
    for i = 1 to ops do
      let k = (i * 7 + seed) mod 32 in
      Locks.lock lock;
      (match Lru.find c k with
      | None -> Lru.put c k (k * k)
      | Some _ -> ());
      Locks.unlock lock
    done
  in
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  let observer =
    Domain.spawn (fun () ->
        let last = ref Lru.zero_stats in
        while not (Atomic.get stop) do
          let s = Lru.stats c in
          if
            s.Lru.hits < !last.Lru.hits
            || s.Lru.misses < !last.Lru.misses
            || s.Lru.evictions < !last.Lru.evictions
          then Atomic.incr violations;
          last := s
        done)
  in
  let workers = List.init n_workers (fun s -> Domain.spawn (worker s)) in
  List.iter Domain.join workers;
  Atomic.set stop true;
  Domain.join observer;
  Alcotest.(check int) "lock-free reads never saw counters go backwards" 0
    (Atomic.get violations);
  let s = Lru.stats c in
  Alcotest.(check int) "every find accounted exactly once" (n_workers * ops)
    (s.Lru.hits + s.Lru.misses);
  (* Aggregation across shards is plain addition. *)
  let doubled = Lru.add_stats s s in
  Alcotest.(check int) "add_stats sums" (2 * (s.Lru.hits + s.Lru.misses))
    (doubled.Lru.hits + doubled.Lru.misses);
  Alcotest.(check int) "zero_stats is the identity" s.Lru.hits
    (Lru.add_stats Lru.zero_stats s).Lru.hits

let test_lru_counters () =
  let c = Lru.create ~capacity:2 in
  Alcotest.(check (option int)) "miss on empty" None (Lru.find c 1);
  Lru.put c 1 10;
  ignore (Lru.find c 1);
  ignore (Lru.find c 1);
  ignore (Lru.find c 2);
  let s = Lru.stats c in
  Alcotest.(check int) "hits" 2 s.Lru.hits;
  Alcotest.(check int) "misses" 2 s.Lru.misses;
  Alcotest.(check bool) "mem is silent" true (Lru.mem c 1 && not (Lru.mem c 2));
  Alcotest.(check int) "mem did not count" 2 (Lru.stats c).Lru.hits;
  Lru.clear c;
  Alcotest.(check int) "cleared" 0 (Lru.length c);
  Alcotest.(check int) "counters survive clear" 2 (Lru.stats c).Lru.hits

(* ----------------------------- protocol --------------------------- *)

let parse_ok line =
  match Protocol.parse_line line with
  | Ok env -> env
  | Error e -> Alcotest.failf "unexpected parse error on %s: %s" line e.Protocol.message

let parse_err line =
  match Protocol.parse_line line with
  | Ok _ -> Alcotest.failf "expected a parse error on %s" line
  | Error e -> e.Protocol.message

let contains ~needle hay =
  let n = String.length needle in
  let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_protocol_parse () =
  let env = parse_ok {|{"op":"ping","id":7}|} in
  Alcotest.(check string) "op" "ping" (Protocol.op_name env.Protocol.req);
  Alcotest.(check bool) "id echoed" true (env.Protocol.id = Some (Json.Int 7));
  (match (parse_ok {|{"op":"query","corpus":"c","query":"a/b"}|}).Protocol.req with
  | Protocol.Query { corpus; pattern; h; tau; k; evaluator } ->
    Alcotest.(check string) "corpus" "c" corpus;
    Alcotest.(check string) "pattern" "a/b" pattern;
    Alcotest.(check int) "default h" Protocol.default_h h;
    Alcotest.(check (float 0.0)) "default tau" Protocol.default_tau tau;
    Alcotest.(check bool) "no k" true (k = None);
    Alcotest.(check string) "default evaluator" "auto" (Plan.force_to_string evaluator)
  | _ -> Alcotest.fail "expected Query");
  (match (parse_ok {|{"op":"query_topk","corpus":"c","query":"a","k":3,"h":7,"tau":0.5}|}).Protocol.req with
  | Protocol.Query { h = 7; tau = 0.5; k = Some 3; _ } -> ()
  | _ -> Alcotest.fail "expected parameterized Query");
  (match (parse_ok {|{"op":"register","name":"d","dataset":"D1","seed":9}|}).Protocol.req with
  | Protocol.Register { name = "d"; spec = Protocol.From_dataset (d, 9); _ } ->
    Alcotest.(check string) "dataset resolved" "D1" d.Uxsm_workload.Dataset.id
  | _ -> Alcotest.fail "expected Register from dataset");
  (* Pure/barrier classification drives batching. *)
  Alcotest.(check bool) "query is pure" true
    (Protocol.is_pure (parse_ok {|{"op":"stats"}|}).Protocol.req);
  Alcotest.(check bool) "register is a barrier" false
    (Protocol.is_pure (parse_ok {|{"op":"register","name":"x","dataset":"D1"}|}).Protocol.req);
  Alcotest.(check bool) "shutdown is a barrier" false
    (Protocol.is_pure (parse_ok {|{"op":"shutdown"}|}).Protocol.req)

let test_protocol_errors () =
  Alcotest.(check bool) "names missing field" true
    (contains ~needle:{|"corpus"|} (parse_err {|{"op":"match"}|}));
  Alcotest.(check bool) "names unknown op" true
    (contains ~needle:"unknown op" (parse_err {|{"op":"frobnicate"}|}));
  Alcotest.(check bool) "rejects non-objects" true
    (contains ~needle:"not a JSON object" (parse_err {|[1,2]|}));
  Alcotest.(check bool) "rejects bad JSON" true
    (contains ~needle:"malformed JSON" (parse_err "{"));
  Alcotest.(check bool) "rejects bad tau" true
    (contains ~needle:"tau" (parse_err {|{"op":"query","corpus":"c","query":"a","tau":1.5}|}));
  Alcotest.(check bool) "rejects unknown dataset" true
    (contains ~needle:"unknown dataset"
       (parse_err {|{"op":"register","name":"x","dataset":"D99"}|}));
  Alcotest.(check bool) "rejects missing k" true
    (contains ~needle:{|"k"|} (parse_err {|{"op":"query_topk","corpus":"c","query":"a"}|}))

let test_protocol_round_trip () =
  List.iter
    (fun line ->
      let env = parse_ok line in
      let env' =
        match Protocol.parse (Protocol.to_json env) with
        | Ok e -> e
        | Error e -> Alcotest.failf "re-parse failed: %s" e.Protocol.message
      in
      Alcotest.(check string) "op survives" (Protocol.op_name env.Protocol.req)
        (Protocol.op_name env'.Protocol.req);
      Alcotest.(check bool) "id survives" true (env.Protocol.id = env'.Protocol.id))
    [
      {|{"op":"ping"}|};
      {|{"op":"register","name":"x","dataset":"D2","seed":3,"doc_nodes":50,"id":"r1"}|};
      {|{"op":"match","corpus":"x"}|};
      {|{"op":"mappings","corpus":"x","h":12}|};
      {|{"op":"query","corpus":"x","query":"a//b","h":5,"tau":0.3,"id":[1,2]}|};
      {|{"op":"query_topk","corpus":"x","query":"a","k":2}|};
      {|{"op":"explain","corpus":"x","query":"a/b"}|};
      {|{"op":"save","corpus":"x","h":9}|};
      {|{"op":"stats"}|};
      {|{"op":"shutdown","id":null}|};
    ]

(* --------------------- update codec (deltas) ----------------------- *)

module Matching = Uxsm_mapping.Matching
module Schema = Uxsm_schema.Schema

let test_protocol_update_parse () =
  (match
     (parse_ok
        {|{"op":"update","corpus":"c","set":[{"source":"a.b","target":"x.y","score":0.5}],"remove":[{"source":"a.c","target":"x.z"}],"add_source_elements":[{"parent":"a","name":"n"}],"add_target_elements":[{"parent":"x","name":"m"}]}|})
       .Protocol.req
   with
  | Protocol.Update { corpus = "c"; delta } ->
    Alcotest.(check bool) "set entry" true
      (delta.Matching.set_scores = [ ("a.b", "x.y", 0.5) ]);
    Alcotest.(check bool) "remove entry" true (delta.Matching.remove_corrs = [ ("a.c", "x.z") ]);
    Alcotest.(check bool) "source growth" true (delta.Matching.add_source = [ ("a", "n") ]);
    Alcotest.(check bool) "target growth" true (delta.Matching.add_target = [ ("x", "m") ])
  | _ -> Alcotest.fail "expected Update");
  (* Omitted arrays mean empty; a delta with nothing at all is an error. *)
  (match (parse_ok {|{"op":"update","corpus":"c","remove":[{"source":"a","target":"b"}]}|}).Protocol.req with
  | Protocol.Update { delta; _ } ->
    Alcotest.(check bool) "only remove populated" true
      (delta.Matching.set_scores = [] && delta.Matching.add_source = []
      && delta.Matching.add_target = [])
  | _ -> Alcotest.fail "expected Update");
  Alcotest.(check bool) "update is a barrier" false
    (Protocol.is_pure (parse_ok {|{"op":"update","corpus":"c","set":[{"source":"a","target":"b","score":0.1}]}|}).Protocol.req);
  (* Field-naming parse errors, same style as the other ops. *)
  Alcotest.(check bool) "empty delta named" true
    (contains ~needle:{|need at least one of "set"|}
       (parse_err {|{"op":"update","corpus":"c"}|}));
  Alcotest.(check bool) "missing score named" true
    (contains ~needle:{|field "set" entries: missing field "score"|}
       (parse_err {|{"op":"update","corpus":"c","set":[{"source":"a","target":"b"}]}|}));
  Alcotest.(check bool) "non-string source named" true
    (contains ~needle:{|field "remove" entries: field "source" is not a string|}
       (parse_err {|{"op":"update","corpus":"c","remove":[{"source":7,"target":"b"}]}|}));
  Alcotest.(check bool) "non-array set named" true
    (contains ~needle:{|field "set" is not an array|}
       (parse_err {|{"op":"update","corpus":"c","set":{"source":"a"}}|}));
  Alcotest.(check bool) "missing corpus named" true
    (contains ~needle:{|"corpus"|}
       (parse_err {|{"op":"update","set":[{"source":"a","target":"b","score":0.1}]}|}))

(* Random deltas encode and decode to the same request — including the
   empty-arrays-as-absence convention. *)
let gen_update_env =
  let open QCheck.Gen in
  let name = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  let path = map2 (fun a b -> a ^ "." ^ b) name name in
  let score = map (fun k -> float_of_int k /. 1000.0) (int_range 1 1000) in
  let* corpus = name in
  let* set = list_size (int_range 0 3) (triple path path score) in
  let* remove = list_size (int_range 0 3) (pair path path) in
  let* add_source = list_size (int_range 0 2) (pair path name) in
  let* add_target = list_size (int_range 0 2) (pair path name) in
  return
    {
      Protocol.id = None;
      req =
        Protocol.Update
          {
            corpus;
            delta = { Matching.set_scores = set; remove_corrs = remove; add_source; add_target };
          };
    }

let prop_update_round_trip =
  QCheck.Test.make ~count:300 ~name:"update codec: parse (to_json env) = env"
    (QCheck.make gen_update_env ~print:(fun env -> Json.to_string (Protocol.to_json env)))
    (fun env ->
      match env.Protocol.req with
      | Protocol.Update { delta; _ } when Matching.delta_is_empty delta ->
        true (* an empty delta does not encode to a parseable update; skip *)
      | req -> (
        match Protocol.parse (Protocol.to_json env) with
        | Error _ -> false
        | Ok env' -> env'.Protocol.req = req && env'.Protocol.id = None))

let test_overloaded_response_shape () =
  let r = Protocol.overloaded_response ~id:(Json.Int 9) () in
  (match (Json.member "ok" r, Json.member "error" r) with
  | Some (Json.Bool false), Some (Json.String e) ->
    Alcotest.(check bool) "error text says overloaded" true (contains ~needle:"overloaded" e)
  | _ -> Alcotest.failf "not an error response: %s" (Json.to_string r));
  Alcotest.(check bool) "id echoed" true (Json.member "id" r = Some (Json.Int 9));
  Alcotest.(check bool) "structurally recognizable" true (Protocol.is_overloaded_response r);
  Alcotest.(check bool) "plain errors are not overloads" false
    (Protocol.is_overloaded_response (Protocol.error_response "overloaded-looking text"));
  Alcotest.(check bool) "id is optional" true
    (Protocol.is_overloaded_response (Protocol.overloaded_response ()))

(* ------------------------- dispatch helpers ----------------------- *)

(* A small corpus registered from serialized mapping-set text: the paper's
   Figure 3 running example, which exercises the Serialize path of
   register. *)
let fig3_text = Serialize.mapping_set_to_string Fixtures.fig3_mset

let register_line name =
  Printf.sprintf {|{"op":"register","name":%s,"mapping_set":%s}|}
    (Json.to_string (Json.String name))
    (Json.to_string (Json.String fig3_text))

let response_of_line srv line =
  match Json.of_string (Server.handle_line srv line) with
  | Ok j -> j
  | Error e -> Alcotest.failf "response is not JSON: %s" e

let assert_ok what j =
  match Json.member "ok" j with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.failf "%s: expected ok response, got %s" what (Json.to_string j)

let assert_error what j =
  match (Json.member "ok" j, Json.member "error" j) with
  | Some (Json.Bool false), Some (Json.String _) -> ()
  | _ -> Alcotest.failf "%s: expected error response, got %s" what (Json.to_string j)

let int_member name j =
  match Option.bind (Json.member name j) Json.to_int with
  | Some v -> v
  | None -> Alcotest.failf "missing int field %S in %s" name (Json.to_string j)

let counter_value stats_resp name =
  match Option.bind (Json.member "counters" stats_resp) (Json.member name) with
  | Some (Json.Int v) -> v
  | _ -> 0

let test_dispatch_basic () =
  let srv = Server.create ~cache_entries:16 () in
  assert_ok "register" (response_of_line srv (register_line "fig3"));
  let ping = response_of_line srv {|{"op":"ping","id":"p1"}|} in
  assert_ok "ping" ping;
  Alcotest.(check bool) "ping echoes id" true (Json.member "id" ping = Some (Json.String "p1"));
  let m = response_of_line srv {|{"op":"match","corpus":"fig3"}|} in
  assert_ok "match" m;
  Alcotest.(check int) "fig1 capacity" 10 (int_member "capacity" m);
  let maps = response_of_line srv {|{"op":"mappings","corpus":"fig3","h":5}|} in
  assert_ok "mappings" maps;
  Alcotest.(check int) "five mappings" 5 (int_member "count" maps);
  let ex = response_of_line srv {|{"op":"explain","corpus":"fig3","query":"ORDER//ICN","h":5}|} in
  assert_ok "explain" ex;
  Alcotest.(check bool) "explain reports relevant mappings" true
    (int_member "relevant_mappings" ex > 0);
  (* save returns text the Serialize module can load back. *)
  let save = response_of_line srv {|{"op":"save","corpus":"fig3","h":5}|} in
  assert_ok "save" save;
  (match Option.bind (Json.member "text" save) Json.to_string_opt with
  | None -> Alcotest.fail "save carries no text"
  | Some text -> (
    match Serialize.mapping_set_of_string text with
    | Error e -> Alcotest.failf "saved text does not load: %s" e
    | Ok mset -> Alcotest.(check int) "saved set size" 5 (Mapping_set.size mset)))

(* stats_reset: zeroes the Obs window so a load generator can open a
   clean measurement window; it is a barrier (not pure), so in a
   pipelined batch everything sent before it is counted before the
   reset and everything after lands in the fresh window. *)
let test_stats_reset () =
  Obs.reset ();
  let srv = Server.create ~cache_entries:16 () in
  assert_ok "register" (response_of_line srv (register_line "rst"));
  for _ = 1 to 3 do
    assert_ok "ping" (response_of_line srv {|{"op":"ping"}|})
  done;
  assert_ok "mappings" (response_of_line srv {|{"op":"mappings","corpus":"rst","h":5}|});
  let before = response_of_line srv {|{"op":"stats"}|} in
  Alcotest.(check bool) "window populated before reset" true
    (counter_value before "server.requests" >= 5);
  let reset = response_of_line srv {|{"op":"stats_reset","id":"w0"}|} in
  assert_ok "stats_reset" reset;
  Alcotest.(check bool) "reset reply says so" true
    (Json.member "reset" reset = Some (Json.Bool true));
  Alcotest.(check bool) "reset echoes id" true
    (Json.member "id" reset = Some (Json.String "w0"));
  let after = response_of_line srv {|{"op":"stats"}|} in
  (* Only the reset itself and this stats request can be in the new
     window, however the wrapper orders its counting. *)
  Alcotest.(check bool) "window cleared" true (counter_value after "server.requests" <= 2);
  Alcotest.(check bool) "reset is a pipeline barrier" false
    (Protocol.is_pure Protocol.Stats_reset);
  (* The op round-trips through the codec like any other. *)
  match Protocol.parse_line {|{"op":"stats_reset"}|} with
  | Error e -> Alcotest.failf "stats_reset does not parse: %s" e.Protocol.message
  | Ok env ->
    Alcotest.(check string) "op name" "stats_reset" (Protocol.op_name env.Protocol.req);
    (match Protocol.parse (Protocol.to_json env) with
    | Ok env' ->
      Alcotest.(check bool) "codec round-trip" true (env'.Protocol.req = Protocol.Stats_reset)
    | Error e -> Alcotest.failf "stats_reset does not re-parse: %s" e.Protocol.message)

let test_dispatch_errors_never_crash () =
  let srv = Server.create () in
  assert_error "garbage" (response_of_line srv "this is not json");
  assert_error "non-object" (response_of_line srv "[1,2,3]");
  assert_error "unknown op" (response_of_line srv {|{"op":"nope"}|});
  assert_error "unknown corpus" (response_of_line srv {|{"op":"match","corpus":"ghost"}|});
  assert_error "bad register text"
    (response_of_line srv {|{"op":"register","name":"x","mapping_set":"garbage"}|});
  (* A failed registration must not create the corpus. *)
  assert_error "corpus not half-created" (response_of_line srv {|{"op":"match","corpus":"x"}|});
  assert_ok "register still works" (response_of_line srv (register_line "x"));
  assert_error "bad query pattern"
    (response_of_line srv {|{"op":"query","corpus":"x","query":"[[["}|});
  let id_err = response_of_line srv {|{"op":"match","id":42}|} in
  assert_error "missing corpus" id_err;
  Alcotest.(check bool) "error echoes id" true (Json.member "id" id_err = Some (Json.Int 42))

(* -------------------- end-to-end amortization --------------------- *)

let test_query_amortization () =
  Obs.reset ();
  let srv = Server.create ~cache_entries:16 () in
  assert_ok "register" (response_of_line srv (register_line "fig3"));
  let q = {|{"op":"query","corpus":"fig3","query":"ORDER//ICN","h":5,"tau":0.3}|} in
  let r1 = Server.handle_line srv q in
  let stats1 = response_of_line srv {|{"op":"stats"}|} in
  let r2 = Server.handle_line srv q in
  let stats2 = response_of_line srv {|{"op":"stats"}|} in
  assert_ok "first query" (Option.get (Result.to_option (Json.of_string r1)));
  (* Identical requests produce byte-identical answers... *)
  Alcotest.(check string) "identical responses" r1 r2;
  let relevant = int_member "relevant" (response_of_line srv q) in
  Alcotest.(check bool) "query matched some mappings" true (relevant > 0);
  (* ...and the second one is served from the prepared-artifact cache:
     the block tree was built exactly once. *)
  Alcotest.(check int) "one block-tree build after first query" 1
    (counter_value stats1 "blocktree.builds");
  Alcotest.(check int) "still one build after second query" 1
    (counter_value stats2 "blocktree.builds");
  Alcotest.(check bool) "second query hit the cache" true
    (counter_value stats2 "server.cache.hits" > counter_value stats1 "server.cache.hits");
  (* The cache view in stats agrees. *)
  (match Json.member "cache" stats2 with
  | Some cache ->
    Alcotest.(check bool) "cache hits visible" true (int_member "hits" cache > 0);
    Alcotest.(check bool) "tree artifact cached" true
      (match Option.bind (Json.member "keys" cache) Json.to_list with
      | Some keys ->
        List.exists
          (function Json.String s -> contains ~needle:"tree/fig3" s | _ -> false)
          keys
      | None -> false)
  | None -> Alcotest.fail "stats carries no cache section")

let test_cache_eviction_rebuilds () =
  (* A capacity-2 cache cannot hold matching + doc + mset + tree + plan at
     once, so artifacts are rebuilt after eviction — answers stay
     identical, only the work repeats. A repeated identical query executes
     its cached plan (which pins its own context), so a *different* plan
     key is what forces the evicted artifacts to rebuild. *)
  Obs.reset ();
  let srv = Server.create ~cache_entries:2 () in
  assert_ok "register" (response_of_line srv (register_line "fig3"));
  let q = {|{"op":"query","corpus":"fig3","query":"ORDER//ICN","h":5}|} in
  let r1 = Server.handle_line srv q in
  let r2 = Server.handle_line srv q in
  Alcotest.(check string) "answers survive eviction" r1 r2;
  (* The cached plan pins its context: no rebuild for the repeat. *)
  let stats_before = response_of_line srv {|{"op":"stats"}|} in
  Alcotest.(check int) "repeat executed the cached plan, one build"
    1 (counter_value stats_before "blocktree.builds");
  (* A forced evaluator is a different plan key; compiling it must rebuild
     the evicted tree. *)
  let qb = {|{"op":"query","corpus":"fig3","query":"ORDER//ICN","h":5,"evaluator":"basic"}|} in
  let r3 = response_of_line srv qb in
  Alcotest.(check bool) "forced plan answers agree" true
    (Json.member "answers" r3
    = Option.bind (Result.to_option (Json.of_string r1)) (Json.member "answers"));
  let stats = response_of_line srv {|{"op":"stats"}|} in
  (match Json.member "cache" stats with
  | Some cache ->
    Alcotest.(check int) "population bounded" 2 (int_member "entries" cache);
    Alcotest.(check bool) "evictions happened" true (int_member "evictions" cache > 0)
  | None -> Alcotest.fail "stats carries no cache section");
  Alcotest.(check bool) "tree rebuilt after eviction" true
    (counter_value stats "blocktree.builds" >= 2)

(* ---------------------- incremental updates ----------------------- *)

(* The fig3 corpus exposes known paths: re-score Order.BP ~ ORDER.IP. *)
let update_line =
  {|{"op":"update","corpus":"u","set":[{"source":"Order.BP","target":"ORDER.IP","score":0.9}]}|}

let test_update_dispatch () =
  Obs.reset ();
  let srv = Server.create ~cache_entries:16 () in
  assert_ok "register" (response_of_line srv (register_line "u"));
  let q = {|{"op":"query","corpus":"u","query":"ORDER//ICN","h":5,"tau":0.3}|} in
  assert_ok "warm query" (response_of_line srv q);
  let r = response_of_line srv update_line in
  assert_ok "update" r;
  (* The warm query cached an mset, a tree and a plan; the update patches
     the first two in place and drops only the plan. *)
  Alcotest.(check int) "mset patched" 1 (int_member "msets_patched" r);
  Alcotest.(check int) "tree patched" 1 (int_member "trees_patched" r);
  Alcotest.(check int) "plan invalidated" 1 (int_member "plans_invalidated" r);
  Alcotest.(check bool) "doc untouched without schema growth" true
    (Json.member "doc_rebuilt" r = Some (Json.Bool false));
  Alcotest.(check int) "capacity unchanged by a re-score" 10 (int_member "capacity" r);
  let r_incr = Server.handle_line srv q in
  (* The update is visible in the stats counters, and the patch re-ranked
     only the touched component (fig1's graph has three). *)
  let stats = response_of_line srv {|{"op":"stats"}|} in
  Alcotest.(check int) "catalog.updates" 1 (counter_value stats "catalog.updates");
  Alcotest.(check bool) "some components re-ranked" true
    (counter_value stats "partition.components_reranked" > 0);
  Alcotest.(check bool) "untouched components reused" true
    (counter_value stats "partition.components_reused"
    > counter_value stats "partition.components_reranked");
  (* A second server applies the same delta cold — no cached artifacts to
     patch — and must produce byte-identical answers from scratch. *)
  let srv2 = Server.create ~cache_entries:16 () in
  assert_ok "register2" (response_of_line srv2 (register_line "u"));
  let r2 = response_of_line srv2 update_line in
  assert_ok "update cold" r2;
  Alcotest.(check int) "nothing cached to patch" 0 (int_member "msets_patched" r2);
  Alcotest.(check string) "incremental = from-scratch answers" (Server.handle_line srv2 q) r_incr;
  (* Updating an unknown corpus or an empty delta is a clean error. *)
  assert_error "unknown corpus"
    (response_of_line srv
       {|{"op":"update","corpus":"ghost","set":[{"source":"a","target":"b","score":0.1}]}|});
  assert_error "bad path"
    (response_of_line srv
       {|{"op":"update","corpus":"u","set":[{"source":"No.Such","target":"ORDER.IP","score":0.1}]}|})

let test_update_with_schema_growth () =
  let srv = Server.create ~cache_entries:16 () in
  assert_ok "register" (response_of_line srv (register_line "u"));
  let q = {|{"op":"query","corpus":"u","query":"ORDER//ICN","h":5}|} in
  assert_ok "warm (builds the doc)" (response_of_line srv q);
  (* Grow the source schema (Order.SP is the rightmost spine) and attach a
     correspondence to the new element in the same delta. *)
  let grow =
    {|{"op":"update","corpus":"u","add_source_elements":[{"parent":"Order.SP","name":"SCN"}],"set":[{"source":"Order.SP.SCN","target":"ORDER.SP.SCN","score":0.7}]}|}
  in
  let r = response_of_line srv grow in
  assert_ok "growing update" r;
  Alcotest.(check int) "source grew" 10 (int_member "source_elements" r);
  Alcotest.(check bool) "doc rebuilt for the grown schema" true
    (Json.member "doc_rebuilt" r = Some (Json.Bool true));
  Alcotest.(check int) "capacity grew" 11 (int_member "capacity" r);
  (* Same growth applied cold gives byte-identical answers. *)
  let srv2 = Server.create ~cache_entries:16 () in
  assert_ok "register2" (response_of_line srv2 (register_line "u"));
  assert_ok "grow cold" (response_of_line srv2 grow);
  Alcotest.(check string) "incremental = from-scratch answers"
    (Server.handle_line srv2 q) (Server.handle_line srv q)

let test_update_survives_eviction () =
  (* A capacity-2 cache evicts the patched artifacts; the rebuild replays
     the stored delta, so answers keep matching a server that never
     evicted anything. *)
  let srv = Server.create ~cache_entries:2 () in
  let big = Server.create ~cache_entries:16 () in
  List.iter
    (fun s ->
      assert_ok "register" (response_of_line s (register_line "u"));
      assert_ok "update" (response_of_line s update_line))
    [ srv; big ];
  let q = {|{"op":"query","corpus":"u","query":"ORDER//ICN","h":5}|} in
  let want = Server.handle_line big q in
  Alcotest.(check string) "post-update answers" want (Server.handle_line srv q);
  (* Thrash the small cache with other plan keys, then re-ask. *)
  assert_ok "other plan"
    (response_of_line srv {|{"op":"query","corpus":"u","query":"ORDER//SCN","h":5}|});
  assert_ok "forced plan"
    (response_of_line srv
       {|{"op":"query","corpus":"u","query":"ORDER//ICN","h":5,"evaluator":"basic"}|});
  Alcotest.(check string) "answers survive eviction + replay" want (Server.handle_line srv q);
  (* The update also survives a save/load round-trip of the mapping set. *)
  let save = response_of_line srv {|{"op":"save","corpus":"u","h":5}|} in
  assert_ok "save" save;
  match Option.bind (Json.member "text" save) Json.to_string_opt with
  | None -> Alcotest.fail "save carries no text"
  | Some text -> (
    match Serialize.mapping_set_of_string text with
    | Error e -> Alcotest.failf "saved text does not load: %s" e
    | Ok mset -> (
      let m = Mapping_set.matching mset in
      match
        Matching.score m
          (Option.get (Schema.find_by_path (Matching.source m) "Order.BP"))
          (Option.get (Schema.find_by_path (Matching.target m) "ORDER.IP"))
      with
      | Some s -> Alcotest.(check (float 1e-9)) "re-scored corr saved" 0.9 s
      | None -> Alcotest.fail "re-scored correspondence missing from saved set"))

(* ---------------------- evaluator selection ----------------------- *)

let test_query_evaluator_field () =
  let srv = Server.create ~cache_entries:16 () in
  assert_ok "register" (response_of_line srv (register_line "fig3"));
  let reply ev =
    response_of_line srv
      (Printf.sprintf
         {|{"op":"query","corpus":"fig3","query":"ORDER//ICN","h":5%s}|}
         (match ev with None -> "" | Some e -> Printf.sprintf {|,"evaluator":%S|} e))
  in
  let echoed j =
    match Option.bind (Json.member "evaluator" j) Json.to_string_opt with
    | Some s -> s
    | None -> Alcotest.failf "query reply carries no evaluator: %s" (Json.to_string j)
  in
  (* Forced evaluators echo back and answers do not depend on the choice. *)
  let rb = reply (Some "basic") and rt = reply (Some "tree") and ra = reply None in
  Alcotest.(check string) "forced basic echoed" "basic" (echoed rb);
  Alcotest.(check string) "forced tree echoed" "tree" (echoed rt);
  Alcotest.(check bool) "auto echoes the chosen wire word" true
    (List.mem (echoed ra) [ "basic"; "tree" ]);
  Alcotest.(check bool) "answers agree across evaluators" true
    (Json.member "answers" rb = Json.member "answers" rt
    && Json.member "answers" rb = Json.member "answers" ra);
  (* Unknown values get the structured field error, naming the field. *)
  let bad =
    response_of_line srv
      {|{"op":"query","corpus":"fig3","query":"ORDER//ICN","h":5,"evaluator":"fast"}|}
  in
  assert_error "unknown evaluator" bad;
  (match Json.member "error" bad with
  | Some (Json.String e) ->
    Alcotest.(check bool) "error names the evaluator field" true (contains ~needle:"evaluator" e)
  | _ -> Alcotest.fail "no error text");
  (* query_topk takes the field too. *)
  let topk =
    response_of_line srv
      {|{"op":"query_topk","corpus":"fig3","query":"ORDER//ICN","h":5,"k":2,"evaluator":"basic"}|}
  in
  assert_ok "query_topk with evaluator" topk;
  Alcotest.(check string) "topk echoes the forced word" "basic" (echoed topk);
  (* Compiled plans are visible in the cache keys. *)
  (match Option.bind (Json.member "cache" (response_of_line srv {|{"op":"stats"}|}))
           (Json.member "keys")
   with
  | Some (Json.List keys) ->
    Alcotest.(check bool) "plan keys cached" true
      (List.exists
         (function Json.String s -> contains ~needle:"plan/fig3" s | _ -> false)
         keys)
  | _ -> Alcotest.fail "stats carries no cache keys")

let test_explain_carries_plan () =
  let srv = Server.create ~cache_entries:16 () in
  assert_ok "register" (response_of_line srv (register_line "fig3"));
  let ex = response_of_line srv {|{"op":"explain","corpus":"fig3","query":"//IP//ICN","h":5}|} in
  assert_ok "explain" ex;
  match Json.member "plan" ex with
  | Some plan ->
    (match Option.bind (Json.member "evaluator" plan) Json.to_string_opt with
    | Some ev -> Alcotest.(check bool) "plan names its evaluator" true
                   (List.mem ev [ "per_mapping"; "per_block" ])
    | None -> Alcotest.fail "plan carries no evaluator");
    (match Json.member "ops" plan with
    | Some (Json.List ops) -> Alcotest.(check bool) "plan lists its ops" true (List.length ops >= 5)
    | _ -> Alcotest.fail "plan carries no ops")
  | None -> Alcotest.failf "explain reply carries no plan: %s" (Json.to_string ex)

(* --------------------------- batching ----------------------------- *)

let test_handle_lines_batching () =
  let lines srv =
    [
      register_line "fig3";
      {|{"op":"ping","id":1}|};
      {|{"op":"query","corpus":"fig3","query":"ORDER//ICN","h":5,"id":2}|};
      {|{"op":"mappings","corpus":"fig3","h":5,"id":3}|};
      "not json";
      {|{"op":"query_topk","corpus":"fig3","query":"ORDER//ICN","h":5,"k":2,"id":4}|};
      {|{"op":"stats","id":5}|};
    ]
    |> Server.handle_lines srv
  in
  let seq = lines (Server.create ~cache_entries:16 ()) in
  Alcotest.(check int) "one response per line" 7 (List.length seq);
  (* The same batch through a domain pool: responses arrive in request
     order with identical payloads (stats differs: it reads live global
     counters, which other suites and the pool itself perturb). *)
  let par = lines (Server.create ~cache_entries:16 ~exec:(Executor.domains 3) ()) in
  List.iteri
    (fun i (a, b) ->
      if i <> 6 then Alcotest.(check string) (Printf.sprintf "line %d identical" i) a b)
    (List.combine seq par);
  (* Shutdown inside a batch still answers everything (drain). *)
  let srv = Server.create () in
  let resps = Server.handle_lines srv [ {|{"op":"shutdown"}|}; {|{"op":"ping"}|} ] in
  Alcotest.(check int) "drained batch" 2 (List.length resps);
  Alcotest.(check bool) "server stopping" true (Server.stopping srv)

(* ------------------------- stdio transport ------------------------ *)

let test_serve_channels () =
  let script =
    String.concat "\n"
      [ register_line "fig3"; {|{"op":"ping"}|}; {|{"op":"query","corpus":"fig3","query":"ORDER//ICN","h":5}|}; {|{"op":"shutdown"}|}; {|{"op":"ping"}|} ]
    ^ "\n"
  in
  let in_path = Filename.temp_file "uxsm_srv" ".in" in
  let out_path = Filename.temp_file "uxsm_srv" ".out" in
  let oc = open_out in_path in
  output_string oc script;
  close_out oc;
  let ic = open_in in_path and oc = open_out out_path in
  let srv = Server.create () in
  Server.serve_channels srv ic oc;
  close_in ic;
  close_out oc;
  let ic = open_in out_path in
  let rec slurp acc =
    match input_line ic with
    | l -> slurp (l :: acc)
    | exception End_of_file -> List.rev acc
  in
  let replies = slurp [] in
  close_in ic;
  Sys.remove in_path;
  Sys.remove out_path;
  (* The ping after shutdown is not served: the transport drained and
     stopped. *)
  Alcotest.(check int) "four replies" 4 (List.length replies);
  List.iter
    (fun r ->
      match Json.of_string r with
      | Ok j -> assert_ok "scripted reply" j
      | Error e -> Alcotest.failf "bad reply %s: %s" r e)
    replies;
  Alcotest.(check bool) "stopped" true (Server.stopping srv)

(* ---------------------- catalog shard safety ---------------------- *)

let mixed_requests ~corpus ~tag n =
  List.init n (fun j ->
      let id = Printf.sprintf {|"%s-%d"|} tag j in
      match j mod 4 with
      | 0 -> Printf.sprintf {|{"op":"ping","id":%s}|} id
      | 1 ->
        Printf.sprintf {|{"op":"query","corpus":"%s","query":"ORDER//ICN","h":5,"id":%s}|}
          corpus id
      | 2 -> Printf.sprintf {|{"op":"mappings","corpus":"%s","h":5,"id":%s}|} corpus id
      | _ -> Printf.sprintf {|{"op":"match","corpus":"%s","id":%s}|} corpus id)

let test_catalog_concurrent_shards () =
  let srv = Server.create ~cache_entries:8 () in
  assert_ok "register A" (response_of_line srv (register_line "corpA"));
  assert_ok "register B" (response_of_line srv (register_line "corpB"));
  Alcotest.(check int) "one shard per corpus" 2 (Catalog.shard_count (Server.catalog srv));
  let reqs corpus = mixed_requests ~corpus ~tag:corpus 20 in
  (* Sequential replay first; concurrent domains must reproduce it
     byte-for-byte (artifact caches only change who does the work). *)
  let expected corpus = List.map (Server.handle_line srv) (reqs corpus) in
  let exp_a = expected "corpA" and exp_b = expected "corpB" in
  let run corpus = Domain.spawn (fun () -> List.map (Server.handle_line srv) (reqs corpus)) in
  let spawned = [ run "corpA"; run "corpB"; run "corpA"; run "corpB" ] in
  let got = List.map Domain.join spawned in
  List.iteri
    (fun di replies ->
      let exp = if di mod 2 = 0 then exp_a else exp_b in
      List.iteri
        (fun j (e, g) ->
          Alcotest.(check string) (Printf.sprintf "domain %d reply %d" di j) e g)
        (List.combine exp replies))
    got;
  (* The monitoring reads raced the traffic without a shard lock; totals
     must still be coherent afterwards. *)
  let s = Catalog.cache_stats (Server.catalog srv) in
  Alcotest.(check bool) "shard-summed stats coherent" true
    (s.Lru.hits >= 0 && s.Lru.misses > 0 && Catalog.cache_length (Server.catalog srv) <= 16)

(* ---------------------- contention attribution -------------------- *)

let test_exec_contention_attribution () =
  Obs.reset ();
  let busy = Obs.counter "exec.sequential_busy" in
  let contended = Obs.counter "server.exec_contended" in
  let v = Server.record_exec_contention (fun () -> Obs.add busy 3; 17) in
  Alcotest.(check int) "result passes through" 17 v;
  Alcotest.(check int) "busy delta mirrored" 3 (Obs.value contended);
  ignore (Server.record_exec_contention (fun () -> ()));
  Alcotest.(check int) "quiet call adds nothing" 3 (Obs.value contended);
  (try Server.record_exec_contention (fun () -> Obs.incr busy; failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "mirrored on the exceptional path too" 4 (Obs.value contended)

(* -------------------- concurrent socket service ------------------- *)

let start_server ?(max_queue = 256) ?exec ?(corpora = [ "corpA"; "corpB" ]) endpoints =
  let srv = Server.create ~cache_entries:16 ?exec () in
  List.iter (fun c -> assert_ok ("register " ^ c) (response_of_line srv (register_line c))) corpora;
  let addrs = ref [] in
  let m = Locks.create ~name:"test.ready" ~rank:Locks.rank_latch in
  let cond = Locks.cond () and up = ref false in
  let th =
    Thread.create
      (fun () ->
        Server.serve ~max_queue
          ~ready:(fun a ->
            Locks.lock m;
            addrs := a;
            up := true;
            Locks.signal cond;
            Locks.unlock m)
          srv endpoints)
      ()
  in
  Locks.lock m;
  while not !up do
    Locks.wait cond m
  done;
  Locks.unlock m;
  (srv, !addrs, th)

let connect addr =
  let fd =
    match addr with
    | Unix.ADDR_UNIX _ -> Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
    | Unix.ADDR_INET _ -> Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0
  in
  Unix.connect fd addr;
  fd

let send_lines fd lines =
  let oc = Unix.out_channel_of_descr fd in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  flush oc

let exchange fd lines =
  send_lines fd lines;
  let ic = Unix.in_channel_of_descr fd in
  List.map (fun _ -> input_line ic) lines

let parse_reply what line =
  match Json.of_string line with
  | Ok j -> j
  | Error e -> Alcotest.failf "%s: reply is not one JSON line (%s): %s" what e line

let id_of j =
  match Json.member "id" j with
  | Some v -> Json.to_string v
  | None -> Alcotest.failf "reply carries no id: %s" (Json.to_string j)

(* The tentpole acceptance test: N concurrent clients on mixed corpora,
   every reply routed to the requester in send order with payloads
   byte-identical to a sequential replay of the same requests. *)
let run_stress what ~exec endpoints =
  Obs.reset ();
  let srv, addrs, th = start_server ~exec endpoints in
  let addr = List.hd addrs in
  let n_clients = 4 and per_client = 16 in
  let requests ci =
    mixed_requests
      ~corpus:(if ci mod 2 = 0 then "corpA" else "corpB")
      ~tag:(Printf.sprintf "c%d" ci) per_client
  in
  let results = Array.make n_clients [] in
  let clients =
    List.init n_clients (fun ci ->
        Thread.create
          (fun () ->
            let fd = connect addr in
            results.(ci) <- exchange fd (requests ci);
            Unix.close fd)
          ())
  in
  List.iter Thread.join clients;
  (* Live stats, taken while the service is still up. *)
  let fd = connect addr in
  let stats = parse_reply "stats" (List.hd (exchange fd [ {|{"op":"stats"}|} ])) in
  Unix.close fd;
  Server.request_stop srv;
  Thread.join th;
  (* Differential: a fresh sequential server answering the same scripts. *)
  let ref_srv = Server.create ~cache_entries:16 () in
  assert_ok "register A" (response_of_line ref_srv (register_line "corpA"));
  assert_ok "register B" (response_of_line ref_srv (register_line "corpB"));
  Array.iteri
    (fun ci replies ->
      let expected = List.map (Server.handle_line ref_srv) (requests ci) in
      Alcotest.(check int)
        (Printf.sprintf "%s: client %d got every reply" what ci)
        per_client (List.length replies);
      List.iteri
        (fun j (e, g) ->
          Alcotest.(check string) (Printf.sprintf "%s: client %d reply %d" what ci j) e g)
        (List.combine expected replies))
    results;
  (* Latency histograms made it to the stats endpoint with quantiles. *)
  assert_ok "stats" stats;
  (match Json.member "histograms" stats with
  | Some (Json.Assoc hs) ->
    List.iter
      (fun op ->
        let name = Printf.sprintf "server.%s.latency" op in
        match List.assoc_opt name hs with
        | Some h ->
          Alcotest.(check bool) (name ^ " has quantiles") true
            (Json.member "p50" h <> None && Json.member "p95" h <> None
            && Json.member "p99" h <> None
            && int_member "count" h > 0)
        | None -> Alcotest.failf "%s: stats missing histogram %s" what name)
      [ "ping"; "query"; "mappings"; "match" ]
  | _ -> Alcotest.failf "%s: stats carries no histograms section" what);
  (* Service gauges. *)
  match Json.member "server" stats with
  | Some s ->
    Alcotest.(check bool) (what ^ ": connections counted") true
      (int_member "connections_opened" s >= n_clients);
    Alcotest.(check int) (what ^ ": queue capacity reported") 256
      (int_member "queue_capacity" s);
    Alcotest.(check int) (what ^ ": nothing rejected under default bound") 0
      (int_member "overloaded_rejections" s)
  | None -> Alcotest.failf "%s: stats carries no server section" what

let test_tcp_stress () =
  run_stress "tcp" ~exec:(Executor.domains 3) [ Server.Tcp ("127.0.0.1", 0) ]

let test_unix_stress () =
  let path = Filename.temp_file "uxsm_srv" ".sock" in
  Sys.remove path;
  run_stress "unix" ~exec:Executor.sequential [ Server.Unix_socket path ];
  Alcotest.(check bool) "socket file removed on drain" false (Sys.file_exists path)

(* Graceful drain under load: stop lands while clients are mid-flood.
   Every reply that arrives is a complete JSON line answering an admitted
   request, in send order per connection, and every connection ends in
   EOF with the server thread joining. *)
let test_drain_mid_load () =
  (* The queue must be able to hold every flooded request: an overload
     rejection here would be legitimate backpressure, not a drain bug,
     and it would (correctly) break the in-order-prefix property this
     test pins down. *)
  let n_clients = 3 and warmup = 5 and flood = 100 in
  let srv, addrs, th =
    start_server
      ~max_queue:(n_clients * (warmup + flood))
      ~corpora:[] [ Server.Tcp ("127.0.0.1", 0) ]
  in
  let addr = List.hd addrs in
  let warmed = Atomic.make 0 in
  let results = Array.make n_clients [] in
  let clients =
    List.init n_clients (fun ci ->
        Thread.create
          (fun () ->
            let fd = connect addr in
            let ping j = Printf.sprintf {|{"op":"ping","id":"d%d-%d"}|} ci j in
            let first = exchange fd (List.init warmup ping) in
            List.iter (fun r -> assert_ok "warmup ping" (parse_reply "warmup" r)) first;
            Atomic.incr warmed;
            send_lines fd (List.init flood (fun j -> ping (warmup + j)));
            let ic = Unix.in_channel_of_descr fd in
            let rec drain acc =
              match input_line ic with
              | l -> drain (l :: acc)
              | exception End_of_file -> List.rev acc
            in
            results.(ci) <- drain [];
            Unix.close fd)
          ())
  in
  while Atomic.get warmed < n_clients do
    Thread.yield ()
  done;
  Server.request_stop srv;
  List.iter Thread.join clients;
  Thread.join th;
  Array.iteri
    (fun ci replies ->
      (* Replies to the flood are a prefix of what was sent: the reader
         admits in order and stops between lines, never inside one. *)
      List.iteri
        (fun j r ->
          let json = parse_reply "drain reply" r in
          assert_ok "drained reply" json;
          Alcotest.(check string)
            (Printf.sprintf "client %d drained reply %d routed in order" ci j)
            (Printf.sprintf {|"d%d-%d"|} ci (warmup + j))
            (id_of json))
        replies;
      Alcotest.(check bool) "no reply invented" true (List.length replies <= flood))
    results

(* Backpressure: a queue of one and a register barrier hogging the
   dispatcher force overload rejections; every line still gets exactly
   one reply, correlated by id. *)
let test_admission_overload () =
  Obs.reset ();
  let srv, addrs, th = start_server ~max_queue:1 ~corpora:[] [ Server.Tcp ("127.0.0.1", 0) ] in
  let addr = List.hd addrs in
  let flood = 200 in
  let lines =
    Printf.sprintf {|{"op":"register","name":"corpA","mapping_set":%s,"id":"reg"}|}
      (Json.to_string (Json.String fig3_text))
    :: List.init flood (fun j -> Printf.sprintf {|{"op":"ping","id":"f-%d"}|} j)
  in
  let fd = connect addr in
  let replies = List.map (parse_reply "overload reply") (exchange fd lines) in
  Unix.close fd;
  let reg, pings = List.partition (fun j -> id_of j = {|"reg"|}) replies in
  (match reg with
  | [ r ] -> assert_ok "the admitted register" r
  | _ -> Alcotest.fail "register answered exactly once");
  Alcotest.(check int) "one reply per ping" flood (List.length pings);
  let rejected = List.filter Protocol.is_overloaded_response pings in
  Alcotest.(check bool) "the full queue rejected some pings" true (rejected <> []);
  List.iter
    (fun j ->
      if not (Protocol.is_overloaded_response j) then assert_ok "admitted ping" j)
    pings;
  let ids = List.sort_uniq String.compare (List.map id_of pings) in
  Alcotest.(check int) "ids all distinct and echoed" flood (List.length ids);
  (* The service recovers once the queue drains. *)
  let fd = connect addr in
  let after = parse_reply "after" (List.hd (exchange fd [ {|{"op":"ping","id":"after"}|} ])) in
  assert_ok "post-overload ping served" after;
  Unix.close fd;
  Server.request_stop srv;
  Thread.join th;
  Alcotest.(check bool) "rejections counted" true
    (Obs.value (Obs.counter "server.overloaded") > 0)

let suite =
  [
    Alcotest.test_case "LRU capacity bounds" `Quick test_lru_capacity_bounds;
    Alcotest.test_case "LRU counters exact under concurrency" `Quick test_lru_concurrent_stats;
    Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "LRU hit/miss counters" `Quick test_lru_counters;
    Alcotest.test_case "protocol parsing" `Quick test_protocol_parse;
    Alcotest.test_case "protocol errors name fields" `Quick test_protocol_errors;
    Alcotest.test_case "protocol round-trip" `Quick test_protocol_round_trip;
    Alcotest.test_case "update codec: parse + field-naming errors" `Quick
      test_protocol_update_parse;
    QCheck_alcotest.to_alcotest prop_update_round_trip;
    Alcotest.test_case "dispatch endpoints" `Quick test_dispatch_basic;
    Alcotest.test_case "update patches warm caches (e2e)" `Quick test_update_dispatch;
    Alcotest.test_case "update grows schemas, rebuilds the doc" `Quick
      test_update_with_schema_growth;
    Alcotest.test_case "updates survive eviction via delta replay" `Quick
      test_update_survives_eviction;
    Alcotest.test_case "stats_reset opens a fresh window" `Quick test_stats_reset;
    Alcotest.test_case "malformed input never crashes" `Quick test_dispatch_errors_never_crash;
    Alcotest.test_case "identical queries amortize (e2e)" `Quick test_query_amortization;
    Alcotest.test_case "eviction rebuilds, answers unchanged" `Quick test_cache_eviction_rebuilds;
    Alcotest.test_case "evaluator field on query/query_topk" `Quick test_query_evaluator_field;
    Alcotest.test_case "explain replies carry the plan" `Quick test_explain_carries_plan;
    Alcotest.test_case "pipelined batches across backends" `Quick test_handle_lines_batching;
    Alcotest.test_case "stdio transport drains on shutdown" `Quick test_serve_channels;
    Alcotest.test_case "overloaded response shape" `Quick test_overloaded_response_shape;
    Alcotest.test_case "catalog shards serve domains concurrently" `Quick
      test_catalog_concurrent_shards;
    Alcotest.test_case "executor contention attributed to serving" `Quick
      test_exec_contention_attribution;
    Alcotest.test_case "TCP multi-client stress (differential)" `Quick test_tcp_stress;
    Alcotest.test_case "Unix-socket multi-client stress (differential)" `Quick
      test_unix_stress;
    Alcotest.test_case "graceful drain mid-load" `Quick test_drain_mid_load;
    Alcotest.test_case "bounded admission queue rejects with overloaded" `Quick
      test_admission_overload;
  ]
