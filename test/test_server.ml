(* Server subsystem tests: the LRU cache as a standalone structure, the
   wire protocol codecs, dispatch against an in-process server (no
   transport), batching through the executor, and the end-to-end
   amortization property the subsystem exists for — the second identical
   query is served from the prepared-artifact cache without rebuilding
   the block tree. *)

module Json = Uxsm_util.Json
module Executor = Uxsm_exec.Executor
module Obs = Uxsm_obs.Obs
module Serialize = Uxsm_mapping.Serialize
module Mapping_set = Uxsm_mapping.Mapping_set
module Plan = Uxsm_plan.Plan
module Lru = Uxsm_server.Lru
module Protocol = Uxsm_server.Protocol
module Catalog = Uxsm_server.Catalog
module Server = Uxsm_server.Server

(* ------------------------------- LRU ------------------------------ *)

let test_lru_capacity_bounds () =
  (match Lru.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 must be rejected");
  let c = Lru.create ~capacity:3 in
  Alcotest.(check int) "capacity recorded" 3 (Lru.capacity c);
  for i = 1 to 10 do
    Lru.put c i (i * i)
  done;
  Alcotest.(check int) "population bounded" 3 (Lru.length c);
  Alcotest.(check (list int)) "newest three survive, MRU first" [ 10; 9; 8 ] (Lru.keys c);
  Alcotest.(check int) "seven evictions" 7 (Lru.stats c).Lru.evictions

let test_lru_eviction_order () =
  let c = Lru.create ~capacity:3 in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  Lru.put c "c" 3;
  (* Touch "a": it becomes MRU, so the next eviction takes "b". *)
  Alcotest.(check (option int)) "hit a" (Some 1) (Lru.find c "a");
  Lru.put c "d" 4;
  Alcotest.(check bool) "b evicted" false (Lru.mem c "b");
  Alcotest.(check (list string)) "recency order" [ "d"; "a"; "c" ] (Lru.keys c);
  (* Replacing a key promotes it without growing the population. *)
  Lru.put c "c" 33;
  Alcotest.(check (list string)) "replace promotes" [ "c"; "d"; "a" ] (Lru.keys c);
  Alcotest.(check int) "no growth on replace" 3 (Lru.length c);
  Alcotest.(check (option int)) "replaced value visible" (Some 33) (Lru.find c "c");
  (* remove is not an eviction. *)
  let evs = (Lru.stats c).Lru.evictions in
  Lru.remove c "d";
  Alcotest.(check int) "removed" 2 (Lru.length c);
  Alcotest.(check int) "remove not counted" evs (Lru.stats c).Lru.evictions

let test_lru_counters () =
  let c = Lru.create ~capacity:2 in
  Alcotest.(check (option int)) "miss on empty" None (Lru.find c 1);
  Lru.put c 1 10;
  ignore (Lru.find c 1);
  ignore (Lru.find c 1);
  ignore (Lru.find c 2);
  let s = Lru.stats c in
  Alcotest.(check int) "hits" 2 s.Lru.hits;
  Alcotest.(check int) "misses" 2 s.Lru.misses;
  Alcotest.(check bool) "mem is silent" true (Lru.mem c 1 && not (Lru.mem c 2));
  Alcotest.(check int) "mem did not count" 2 (Lru.stats c).Lru.hits;
  Lru.clear c;
  Alcotest.(check int) "cleared" 0 (Lru.length c);
  Alcotest.(check int) "counters survive clear" 2 (Lru.stats c).Lru.hits

(* ----------------------------- protocol --------------------------- *)

let parse_ok line =
  match Protocol.parse_line line with
  | Ok env -> env
  | Error e -> Alcotest.failf "unexpected parse error on %s: %s" line e.Protocol.message

let parse_err line =
  match Protocol.parse_line line with
  | Ok _ -> Alcotest.failf "expected a parse error on %s" line
  | Error e -> e.Protocol.message

let contains ~needle hay =
  let n = String.length needle in
  let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_protocol_parse () =
  let env = parse_ok {|{"op":"ping","id":7}|} in
  Alcotest.(check string) "op" "ping" (Protocol.op_name env.Protocol.req);
  Alcotest.(check bool) "id echoed" true (env.Protocol.id = Some (Json.Int 7));
  (match (parse_ok {|{"op":"query","corpus":"c","query":"a/b"}|}).Protocol.req with
  | Protocol.Query { corpus; pattern; h; tau; k; evaluator } ->
    Alcotest.(check string) "corpus" "c" corpus;
    Alcotest.(check string) "pattern" "a/b" pattern;
    Alcotest.(check int) "default h" Protocol.default_h h;
    Alcotest.(check (float 0.0)) "default tau" Protocol.default_tau tau;
    Alcotest.(check bool) "no k" true (k = None);
    Alcotest.(check string) "default evaluator" "auto" (Plan.force_to_string evaluator)
  | _ -> Alcotest.fail "expected Query");
  (match (parse_ok {|{"op":"query_topk","corpus":"c","query":"a","k":3,"h":7,"tau":0.5}|}).Protocol.req with
  | Protocol.Query { h = 7; tau = 0.5; k = Some 3; _ } -> ()
  | _ -> Alcotest.fail "expected parameterized Query");
  (match (parse_ok {|{"op":"register","name":"d","dataset":"D1","seed":9}|}).Protocol.req with
  | Protocol.Register { name = "d"; spec = Protocol.From_dataset (d, 9); _ } ->
    Alcotest.(check string) "dataset resolved" "D1" d.Uxsm_workload.Dataset.id
  | _ -> Alcotest.fail "expected Register from dataset");
  (* Pure/barrier classification drives batching. *)
  Alcotest.(check bool) "query is pure" true
    (Protocol.is_pure (parse_ok {|{"op":"stats"}|}).Protocol.req);
  Alcotest.(check bool) "register is a barrier" false
    (Protocol.is_pure (parse_ok {|{"op":"register","name":"x","dataset":"D1"}|}).Protocol.req);
  Alcotest.(check bool) "shutdown is a barrier" false
    (Protocol.is_pure (parse_ok {|{"op":"shutdown"}|}).Protocol.req)

let test_protocol_errors () =
  Alcotest.(check bool) "names missing field" true
    (contains ~needle:{|"corpus"|} (parse_err {|{"op":"match"}|}));
  Alcotest.(check bool) "names unknown op" true
    (contains ~needle:"unknown op" (parse_err {|{"op":"frobnicate"}|}));
  Alcotest.(check bool) "rejects non-objects" true
    (contains ~needle:"not a JSON object" (parse_err {|[1,2]|}));
  Alcotest.(check bool) "rejects bad JSON" true
    (contains ~needle:"malformed JSON" (parse_err "{"));
  Alcotest.(check bool) "rejects bad tau" true
    (contains ~needle:"tau" (parse_err {|{"op":"query","corpus":"c","query":"a","tau":1.5}|}));
  Alcotest.(check bool) "rejects unknown dataset" true
    (contains ~needle:"unknown dataset"
       (parse_err {|{"op":"register","name":"x","dataset":"D99"}|}));
  Alcotest.(check bool) "rejects missing k" true
    (contains ~needle:{|"k"|} (parse_err {|{"op":"query_topk","corpus":"c","query":"a"}|}))

let test_protocol_round_trip () =
  List.iter
    (fun line ->
      let env = parse_ok line in
      let env' =
        match Protocol.parse (Protocol.to_json env) with
        | Ok e -> e
        | Error e -> Alcotest.failf "re-parse failed: %s" e.Protocol.message
      in
      Alcotest.(check string) "op survives" (Protocol.op_name env.Protocol.req)
        (Protocol.op_name env'.Protocol.req);
      Alcotest.(check bool) "id survives" true (env.Protocol.id = env'.Protocol.id))
    [
      {|{"op":"ping"}|};
      {|{"op":"register","name":"x","dataset":"D2","seed":3,"doc_nodes":50,"id":"r1"}|};
      {|{"op":"match","corpus":"x"}|};
      {|{"op":"mappings","corpus":"x","h":12}|};
      {|{"op":"query","corpus":"x","query":"a//b","h":5,"tau":0.3,"id":[1,2]}|};
      {|{"op":"query_topk","corpus":"x","query":"a","k":2}|};
      {|{"op":"explain","corpus":"x","query":"a/b"}|};
      {|{"op":"save","corpus":"x","h":9}|};
      {|{"op":"stats"}|};
      {|{"op":"shutdown","id":null}|};
    ]

(* ------------------------- dispatch helpers ----------------------- *)

(* A small corpus registered from serialized mapping-set text: the paper's
   Figure 3 running example, which exercises the Serialize path of
   register. *)
let fig3_text = Serialize.mapping_set_to_string Fixtures.fig3_mset

let register_line name =
  Printf.sprintf {|{"op":"register","name":%s,"mapping_set":%s}|}
    (Json.to_string (Json.String name))
    (Json.to_string (Json.String fig3_text))

let response_of_line srv line =
  match Json.of_string (Server.handle_line srv line) with
  | Ok j -> j
  | Error e -> Alcotest.failf "response is not JSON: %s" e

let assert_ok what j =
  match Json.member "ok" j with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.failf "%s: expected ok response, got %s" what (Json.to_string j)

let assert_error what j =
  match (Json.member "ok" j, Json.member "error" j) with
  | Some (Json.Bool false), Some (Json.String _) -> ()
  | _ -> Alcotest.failf "%s: expected error response, got %s" what (Json.to_string j)

let int_member name j =
  match Option.bind (Json.member name j) Json.to_int with
  | Some v -> v
  | None -> Alcotest.failf "missing int field %S in %s" name (Json.to_string j)

let counter_value stats_resp name =
  match Option.bind (Json.member "counters" stats_resp) (Json.member name) with
  | Some (Json.Int v) -> v
  | _ -> 0

let test_dispatch_basic () =
  let srv = Server.create ~cache_entries:16 () in
  assert_ok "register" (response_of_line srv (register_line "fig3"));
  let ping = response_of_line srv {|{"op":"ping","id":"p1"}|} in
  assert_ok "ping" ping;
  Alcotest.(check bool) "ping echoes id" true (Json.member "id" ping = Some (Json.String "p1"));
  let m = response_of_line srv {|{"op":"match","corpus":"fig3"}|} in
  assert_ok "match" m;
  Alcotest.(check int) "fig1 capacity" 10 (int_member "capacity" m);
  let maps = response_of_line srv {|{"op":"mappings","corpus":"fig3","h":5}|} in
  assert_ok "mappings" maps;
  Alcotest.(check int) "five mappings" 5 (int_member "count" maps);
  let ex = response_of_line srv {|{"op":"explain","corpus":"fig3","query":"ORDER//ICN","h":5}|} in
  assert_ok "explain" ex;
  Alcotest.(check bool) "explain reports relevant mappings" true
    (int_member "relevant_mappings" ex > 0);
  (* save returns text the Serialize module can load back. *)
  let save = response_of_line srv {|{"op":"save","corpus":"fig3","h":5}|} in
  assert_ok "save" save;
  (match Option.bind (Json.member "text" save) Json.to_string_opt with
  | None -> Alcotest.fail "save carries no text"
  | Some text -> (
    match Serialize.mapping_set_of_string text with
    | Error e -> Alcotest.failf "saved text does not load: %s" e
    | Ok mset -> Alcotest.(check int) "saved set size" 5 (Mapping_set.size mset)))

let test_dispatch_errors_never_crash () =
  let srv = Server.create () in
  assert_error "garbage" (response_of_line srv "this is not json");
  assert_error "non-object" (response_of_line srv "[1,2,3]");
  assert_error "unknown op" (response_of_line srv {|{"op":"nope"}|});
  assert_error "unknown corpus" (response_of_line srv {|{"op":"match","corpus":"ghost"}|});
  assert_error "bad register text"
    (response_of_line srv {|{"op":"register","name":"x","mapping_set":"garbage"}|});
  (* A failed registration must not create the corpus. *)
  assert_error "corpus not half-created" (response_of_line srv {|{"op":"match","corpus":"x"}|});
  assert_ok "register still works" (response_of_line srv (register_line "x"));
  assert_error "bad query pattern"
    (response_of_line srv {|{"op":"query","corpus":"x","query":"[[["}|});
  let id_err = response_of_line srv {|{"op":"match","id":42}|} in
  assert_error "missing corpus" id_err;
  Alcotest.(check bool) "error echoes id" true (Json.member "id" id_err = Some (Json.Int 42))

(* -------------------- end-to-end amortization --------------------- *)

let test_query_amortization () =
  Obs.reset ();
  let srv = Server.create ~cache_entries:16 () in
  assert_ok "register" (response_of_line srv (register_line "fig3"));
  let q = {|{"op":"query","corpus":"fig3","query":"ORDER//ICN","h":5,"tau":0.3}|} in
  let r1 = Server.handle_line srv q in
  let stats1 = response_of_line srv {|{"op":"stats"}|} in
  let r2 = Server.handle_line srv q in
  let stats2 = response_of_line srv {|{"op":"stats"}|} in
  assert_ok "first query" (Option.get (Result.to_option (Json.of_string r1)));
  (* Identical requests produce byte-identical answers... *)
  Alcotest.(check string) "identical responses" r1 r2;
  let relevant = int_member "relevant" (response_of_line srv q) in
  Alcotest.(check bool) "query matched some mappings" true (relevant > 0);
  (* ...and the second one is served from the prepared-artifact cache:
     the block tree was built exactly once. *)
  Alcotest.(check int) "one block-tree build after first query" 1
    (counter_value stats1 "blocktree.builds");
  Alcotest.(check int) "still one build after second query" 1
    (counter_value stats2 "blocktree.builds");
  Alcotest.(check bool) "second query hit the cache" true
    (counter_value stats2 "server.cache.hits" > counter_value stats1 "server.cache.hits");
  (* The cache view in stats agrees. *)
  (match Json.member "cache" stats2 with
  | Some cache ->
    Alcotest.(check bool) "cache hits visible" true (int_member "hits" cache > 0);
    Alcotest.(check bool) "tree artifact cached" true
      (match Option.bind (Json.member "keys" cache) Json.to_list with
      | Some keys ->
        List.exists
          (function Json.String s -> contains ~needle:"tree/fig3" s | _ -> false)
          keys
      | None -> false)
  | None -> Alcotest.fail "stats carries no cache section")

let test_cache_eviction_rebuilds () =
  (* A capacity-2 cache cannot hold matching + doc + mset + tree + plan at
     once, so artifacts are rebuilt after eviction — answers stay
     identical, only the work repeats. A repeated identical query executes
     its cached plan (which pins its own context), so a *different* plan
     key is what forces the evicted artifacts to rebuild. *)
  Obs.reset ();
  let srv = Server.create ~cache_entries:2 () in
  assert_ok "register" (response_of_line srv (register_line "fig3"));
  let q = {|{"op":"query","corpus":"fig3","query":"ORDER//ICN","h":5}|} in
  let r1 = Server.handle_line srv q in
  let r2 = Server.handle_line srv q in
  Alcotest.(check string) "answers survive eviction" r1 r2;
  (* The cached plan pins its context: no rebuild for the repeat. *)
  let stats_before = response_of_line srv {|{"op":"stats"}|} in
  Alcotest.(check int) "repeat executed the cached plan, one build"
    1 (counter_value stats_before "blocktree.builds");
  (* A forced evaluator is a different plan key; compiling it must rebuild
     the evicted tree. *)
  let qb = {|{"op":"query","corpus":"fig3","query":"ORDER//ICN","h":5,"evaluator":"basic"}|} in
  let r3 = response_of_line srv qb in
  Alcotest.(check bool) "forced plan answers agree" true
    (Json.member "answers" r3
    = Option.bind (Result.to_option (Json.of_string r1)) (Json.member "answers"));
  let stats = response_of_line srv {|{"op":"stats"}|} in
  (match Json.member "cache" stats with
  | Some cache ->
    Alcotest.(check int) "population bounded" 2 (int_member "entries" cache);
    Alcotest.(check bool) "evictions happened" true (int_member "evictions" cache > 0)
  | None -> Alcotest.fail "stats carries no cache section");
  Alcotest.(check bool) "tree rebuilt after eviction" true
    (counter_value stats "blocktree.builds" >= 2)

(* ---------------------- evaluator selection ----------------------- *)

let test_query_evaluator_field () =
  let srv = Server.create ~cache_entries:16 () in
  assert_ok "register" (response_of_line srv (register_line "fig3"));
  let reply ev =
    response_of_line srv
      (Printf.sprintf
         {|{"op":"query","corpus":"fig3","query":"ORDER//ICN","h":5%s}|}
         (match ev with None -> "" | Some e -> Printf.sprintf {|,"evaluator":%S|} e))
  in
  let echoed j =
    match Option.bind (Json.member "evaluator" j) Json.to_string_opt with
    | Some s -> s
    | None -> Alcotest.failf "query reply carries no evaluator: %s" (Json.to_string j)
  in
  (* Forced evaluators echo back and answers do not depend on the choice. *)
  let rb = reply (Some "basic") and rt = reply (Some "tree") and ra = reply None in
  Alcotest.(check string) "forced basic echoed" "basic" (echoed rb);
  Alcotest.(check string) "forced tree echoed" "tree" (echoed rt);
  Alcotest.(check bool) "auto echoes the chosen wire word" true
    (List.mem (echoed ra) [ "basic"; "tree" ]);
  Alcotest.(check bool) "answers agree across evaluators" true
    (Json.member "answers" rb = Json.member "answers" rt
    && Json.member "answers" rb = Json.member "answers" ra);
  (* Unknown values get the structured field error, naming the field. *)
  let bad =
    response_of_line srv
      {|{"op":"query","corpus":"fig3","query":"ORDER//ICN","h":5,"evaluator":"fast"}|}
  in
  assert_error "unknown evaluator" bad;
  (match Json.member "error" bad with
  | Some (Json.String e) ->
    Alcotest.(check bool) "error names the evaluator field" true (contains ~needle:"evaluator" e)
  | _ -> Alcotest.fail "no error text");
  (* query_topk takes the field too. *)
  let topk =
    response_of_line srv
      {|{"op":"query_topk","corpus":"fig3","query":"ORDER//ICN","h":5,"k":2,"evaluator":"basic"}|}
  in
  assert_ok "query_topk with evaluator" topk;
  Alcotest.(check string) "topk echoes the forced word" "basic" (echoed topk);
  (* Compiled plans are visible in the cache keys. *)
  (match Option.bind (Json.member "cache" (response_of_line srv {|{"op":"stats"}|}))
           (Json.member "keys")
   with
  | Some (Json.List keys) ->
    Alcotest.(check bool) "plan keys cached" true
      (List.exists
         (function Json.String s -> contains ~needle:"plan/fig3" s | _ -> false)
         keys)
  | _ -> Alcotest.fail "stats carries no cache keys")

let test_explain_carries_plan () =
  let srv = Server.create ~cache_entries:16 () in
  assert_ok "register" (response_of_line srv (register_line "fig3"));
  let ex = response_of_line srv {|{"op":"explain","corpus":"fig3","query":"//IP//ICN","h":5}|} in
  assert_ok "explain" ex;
  match Json.member "plan" ex with
  | Some plan ->
    (match Option.bind (Json.member "evaluator" plan) Json.to_string_opt with
    | Some ev -> Alcotest.(check bool) "plan names its evaluator" true
                   (List.mem ev [ "per_mapping"; "per_block" ])
    | None -> Alcotest.fail "plan carries no evaluator");
    (match Json.member "ops" plan with
    | Some (Json.List ops) -> Alcotest.(check bool) "plan lists its ops" true (List.length ops >= 5)
    | _ -> Alcotest.fail "plan carries no ops")
  | None -> Alcotest.failf "explain reply carries no plan: %s" (Json.to_string ex)

(* --------------------------- batching ----------------------------- *)

let test_handle_lines_batching () =
  let lines srv =
    [
      register_line "fig3";
      {|{"op":"ping","id":1}|};
      {|{"op":"query","corpus":"fig3","query":"ORDER//ICN","h":5,"id":2}|};
      {|{"op":"mappings","corpus":"fig3","h":5,"id":3}|};
      "not json";
      {|{"op":"query_topk","corpus":"fig3","query":"ORDER//ICN","h":5,"k":2,"id":4}|};
      {|{"op":"stats","id":5}|};
    ]
    |> Server.handle_lines srv
  in
  let seq = lines (Server.create ~cache_entries:16 ()) in
  Alcotest.(check int) "one response per line" 7 (List.length seq);
  (* The same batch through a domain pool: responses arrive in request
     order with identical payloads (stats differs: it reads live global
     counters, which other suites and the pool itself perturb). *)
  let par = lines (Server.create ~cache_entries:16 ~exec:(Executor.domains 3) ()) in
  List.iteri
    (fun i (a, b) ->
      if i <> 6 then Alcotest.(check string) (Printf.sprintf "line %d identical" i) a b)
    (List.combine seq par);
  (* Shutdown inside a batch still answers everything (drain). *)
  let srv = Server.create () in
  let resps = Server.handle_lines srv [ {|{"op":"shutdown"}|}; {|{"op":"ping"}|} ] in
  Alcotest.(check int) "drained batch" 2 (List.length resps);
  Alcotest.(check bool) "server stopping" true (Server.stopping srv)

(* ------------------------- stdio transport ------------------------ *)

let test_serve_channels () =
  let script =
    String.concat "\n"
      [ register_line "fig3"; {|{"op":"ping"}|}; {|{"op":"query","corpus":"fig3","query":"ORDER//ICN","h":5}|}; {|{"op":"shutdown"}|}; {|{"op":"ping"}|} ]
    ^ "\n"
  in
  let in_path = Filename.temp_file "uxsm_srv" ".in" in
  let out_path = Filename.temp_file "uxsm_srv" ".out" in
  let oc = open_out in_path in
  output_string oc script;
  close_out oc;
  let ic = open_in in_path and oc = open_out out_path in
  let srv = Server.create () in
  Server.serve_channels srv ic oc;
  close_in ic;
  close_out oc;
  let ic = open_in out_path in
  let rec slurp acc =
    match input_line ic with
    | l -> slurp (l :: acc)
    | exception End_of_file -> List.rev acc
  in
  let replies = slurp [] in
  close_in ic;
  Sys.remove in_path;
  Sys.remove out_path;
  (* The ping after shutdown is not served: the transport drained and
     stopped. *)
  Alcotest.(check int) "four replies" 4 (List.length replies);
  List.iter
    (fun r ->
      match Json.of_string r with
      | Ok j -> assert_ok "scripted reply" j
      | Error e -> Alcotest.failf "bad reply %s: %s" r e)
    replies;
  Alcotest.(check bool) "stopped" true (Server.stopping srv)

let suite =
  [
    Alcotest.test_case "LRU capacity bounds" `Quick test_lru_capacity_bounds;
    Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "LRU hit/miss counters" `Quick test_lru_counters;
    Alcotest.test_case "protocol parsing" `Quick test_protocol_parse;
    Alcotest.test_case "protocol errors name fields" `Quick test_protocol_errors;
    Alcotest.test_case "protocol round-trip" `Quick test_protocol_round_trip;
    Alcotest.test_case "dispatch endpoints" `Quick test_dispatch_basic;
    Alcotest.test_case "malformed input never crashes" `Quick test_dispatch_errors_never_crash;
    Alcotest.test_case "identical queries amortize (e2e)" `Quick test_query_amortization;
    Alcotest.test_case "eviction rebuilds, answers unchanged" `Quick test_cache_eviction_rebuilds;
    Alcotest.test_case "evaluator field on query/query_topk" `Quick test_query_evaluator_field;
    Alcotest.test_case "explain replies carry the plan" `Quick test_explain_carries_plan;
    Alcotest.test_case "pipelined batches across backends" `Quick test_handle_lines_batching;
    Alcotest.test_case "stdio transport drains on shutdown" `Quick test_serve_channels;
  ]
