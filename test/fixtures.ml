(* Shared fixtures: the paper's running example (Figures 1-3) and small
   random generators used by several suites. *)

module Schema = Uxsm_schema.Schema
module Mapping = Uxsm_mapping.Mapping
module Mapping_set = Uxsm_mapping.Mapping_set
module Matching = Uxsm_mapping.Matching

(* Figure 1(a): the XCBL-style source schema.
   ids: Order=0 BP=1 BOC=2 BCN=3 ROC=4 RCN=5 OOC=6 OCN=7 SP=8 *)
let fig1_source =
  Schema.of_spec
    (Schema.spec "Order"
       [
         Schema.spec "BP"
           [
             Schema.spec "BOC" [ Schema.spec "BCN" [] ];
             Schema.spec "ROC" [ Schema.spec "RCN" [] ];
             Schema.spec "OOC" [ Schema.spec "OCN" [] ];
           ];
         Schema.spec "SP" [];
       ])

(* Figure 1(b): the OpenTrans-style target schema.
   ids: ORDER=0 SP=1 SCN=2 IP=3 ICN=4 *)
let fig1_target =
  Schema.of_spec
    (Schema.spec "ORDER"
       [ Schema.spec "SP" [ Schema.spec "SCN" [] ]; Schema.spec "IP" [ Schema.spec "ICN" [] ] ])

let s_order = 0
let s_bp = 1
let s_bcn = 3
let s_rcn = 5
let s_ocn = 7
let s_sp = 8
let t_order = 0
let t_sp = 1
let t_scn = 2
let t_ip = 3
let t_icn = 4

(* The correspondences drawn in Figure 1 (scores .75/.84/.83/.84) plus the
   extra ones the five mappings of Figure 3 use. *)
let fig1_matching =
  Matching.create ~source:fig1_source ~target:fig1_target
    [
      { source = s_order; target = t_order; score = 0.9 };
      { source = s_bp; target = t_ip; score = 0.75 };
      { source = s_bp; target = t_sp; score = 0.4 };
      { source = s_sp; target = t_ip; score = 0.5 };
      { source = s_bcn; target = t_icn; score = 0.84 };
      { source = s_rcn; target = t_icn; score = 0.83 };
      { source = s_ocn; target = t_icn; score = 0.84 };
      { source = s_bcn; target = t_scn; score = 0.6 };
      { source = s_rcn; target = t_scn; score = 0.55 };
      { source = s_ocn; target = t_scn; score = 0.6 };
    ]

let mk_mapping pairs =
  let score =
    List.fold_left
      (fun acc (x, y) ->
        match Matching.score fig1_matching x y with
        | Some s -> acc +. s
        | None -> acc)
      0.0 pairs
  in
  Mapping.of_pairs ~source:fig1_source ~target:fig1_target ~score pairs

(* Figure 3: the five possible mappings m1..m5. *)
let fig3_m1 = mk_mapping [ (s_order, t_order); (s_bp, t_ip); (s_bcn, t_icn); (s_rcn, t_scn) ]
let fig3_m2 = mk_mapping [ (s_order, t_order); (s_bp, t_ip); (s_bcn, t_icn); (s_ocn, t_scn) ]

let fig3_m3 =
  mk_mapping [ (s_order, t_order); (s_sp, t_ip); (s_rcn, t_icn); (s_ocn, t_scn); (s_bp, t_sp) ]

let fig3_m4 = mk_mapping [ (s_order, t_order); (s_bp, t_ip); (s_rcn, t_icn); (s_bcn, t_scn) ]
let fig3_m5 = mk_mapping [ (s_order, t_order); (s_bp, t_ip); (s_ocn, t_icn); (s_bcn, t_scn) ]

(* The running example's mapping set; equal probabilities as in the paper's
   narrative (each mapping plausible). *)
let fig3_mset =
  Mapping_set.of_mappings fig1_matching
    [ (fig3_m1, 0.2); (fig3_m2, 0.2); (fig3_m3, 0.2); (fig3_m4, 0.2); (fig3_m5, 0.2) ]

(* Figure 2: a source document for Figure 1(a). *)
let fig2_doc_tree =
  let open Uxsm_xml.Tree in
  element "Order"
    [
      element "BP"
        [
          element "BOC" [ leaf "BCN" "Cathy" ];
          element "ROC" [ leaf "RCN" "Bob" ];
          element "OOC" [ leaf "OCN" "Alice" ];
        ];
      element "SP" [];
    ]

let fig2_doc = Uxsm_xml.Doc.of_tree fig2_doc_tree

(* Deterministic random schema generator for property tests: a tree with
   [n] elements and bounded fanout. *)
let random_schema prng ~n =
  if n < 1 then invalid_arg "random_schema";
  let next = ref 0 in
  let fresh prefix =
    incr next;
    Printf.sprintf "%s%d" prefix !next
  in
  let budget = ref (n - 1) in
  let rec grow depth =
    let name = fresh "e" in
    let kids = ref [] in
    let want = Uxsm_util.Prng.int prng 4 in
    for _ = 1 to want do
      if !budget > 0 && depth < 6 then begin
        decr budget;
        kids := grow (depth + 1) :: !kids
      end
    done;
    Schema.spec name (List.rev !kids)
  in
  let root_kids = ref [] in
  let root = fresh "root" in
  while !budget > 0 do
    decr budget;
    root_kids := grow 1 :: !root_kids
  done;
  Schema.of_spec (Schema.spec root (List.rev !root_kids))

(* Random matching over random schemas: distinct correspondences with
   scores in (0, 1]. *)
let random_matching prng ~source_n ~target_n ~corrs =
  let source = random_schema prng ~n:source_n in
  let target = random_schema prng ~n:target_n in
  let seen = Hashtbl.create 16 in
  let cs = ref [] in
  let attempts = corrs * 4 in
  let made = ref 0 in
  let try_once () =
    if !made < corrs then begin
      let x = Uxsm_util.Prng.int prng (Schema.size source) in
      let y = Uxsm_util.Prng.int prng (Schema.size target) in
      if not (Hashtbl.mem seen (x, y)) then begin
        Hashtbl.add seen (x, y) ();
        let score = 0.05 +. Uxsm_util.Prng.float prng 0.95 in
        cs := { Matching.source = x; target = y; score } :: !cs;
        incr made
      end
    end
  in
  for _ = 1 to attempts do
    try_once ()
  done;
  Matching.create ~source ~target !cs

(* Random mapping set: a random matching's top-h mappings. *)
let random_mapping_set prng ~source_n ~target_n ~corrs ~h =
  Mapping_set.generate ~h (random_matching prng ~source_n ~target_n ~corrs)

(* Random instance document conforming to a schema: repeatable elements
   occur 1-3 times; leaves carry a small text vocabulary so that value
   predicates sometimes hit. *)
let random_doc prng schema =
  let vocab = [| "a"; "b"; "c"; "d"; "e" |] in
  let rec instantiate e =
    let kids =
      List.concat_map
        (fun c ->
          let copies = if Schema.repeatable schema c then 1 + Uxsm_util.Prng.int prng 3 else 1 in
          List.init copies (fun _ -> instantiate c))
        (Schema.children schema e)
    in
    let children =
      if kids = [] then [ Uxsm_xml.Tree.text (Uxsm_util.Prng.pick prng vocab) ] else kids
    in
    Uxsm_xml.Tree.element (Schema.label schema e) children
  in
  Uxsm_xml.Doc.of_tree (instantiate (Schema.root schema))

(* Random twig pattern guaranteed resolvable against [schema]: grown from a
   random element, with structurally consistent Child/Descendant branches
   and occasional value predicates on leaves. *)
let random_pattern prng schema =
  let module P = Uxsm_twig.Pattern in
  let vocab = [| "a"; "b"; "c"; "d"; "e" |] in
  let rec grow e depth : P.node =
    let descendants = List.tl (Schema.subtree_elements schema e) in
    let kids = Schema.children schema e in
    let n_branches =
      if depth >= 3 || descendants = [] then 0 else Uxsm_util.Prng.int prng 3
    in
    let branch _ =
      if kids <> [] && Uxsm_util.Prng.bool prng then begin
        let c = Uxsm_util.Prng.pick prng (Array.of_list kids) in
        (P.Child, grow c (depth + 1))
      end
      else begin
        let d = Uxsm_util.Prng.pick prng (Array.of_list descendants) in
        (P.Descendant, grow d (depth + 1))
      end
    in
    let branches = List.init n_branches branch in
    let value =
      if branches = [] && Schema.is_leaf schema e && Uxsm_util.Prng.int prng 4 = 0 then
        Some (Uxsm_util.Prng.pick prng vocab)
      else None
    in
    let label =
      (* occasional wildcard nodes exercise the engines' generic pools *)
      if Uxsm_util.Prng.int prng 8 = 0 then P.wildcard else Schema.label schema e
    in
    match branches with
    | [] -> P.node ?value label
    | [ b ] -> P.node ?value ~next:b label
    | b :: rest -> P.node ?value ~preds:rest ~next:b label
  in
  let all = Array.of_list (Schema.elements schema) in
  let e = Uxsm_util.Prng.pick prng all in
  let axis = if e = Schema.root schema then P.Child else P.Descendant in
  { P.axis; root = grow e 0 }
