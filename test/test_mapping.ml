(* Mapping layer tests: matchings, possible mappings, o-ratio, and
   probabilistic mapping sets. *)

module Schema = Uxsm_schema.Schema
module Matching = Uxsm_mapping.Matching
module Mapping = Uxsm_mapping.Mapping
module Mapping_set = Uxsm_mapping.Mapping_set

let source = Fixtures.fig1_source
let target = Fixtures.fig1_target
let mk = Mapping.of_pairs ~source ~target ~score:1.0

let test_mapping_validation () =
  let fails pairs =
    match mk pairs with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  fails [ (0, 0); (0, 1) ];
  (* source twice *)
  fails [ (0, 0); (1, 0) ];
  (* target twice *)
  fails [ (99, 0) ];
  fails [ (0, 99) ]

let test_mapping_lookups () =
  let m = Fixtures.fig3_m1 in
  Alcotest.(check (option int)) "source_of ICN" (Some Fixtures.s_bcn)
    (Mapping.source_of m Fixtures.t_icn);
  Alcotest.(check (option int)) "target_of BCN" (Some Fixtures.t_icn)
    (Mapping.target_of m Fixtures.s_bcn);
  Alcotest.(check (option int)) "unmapped" None (Mapping.source_of m Fixtures.t_sp);
  Alcotest.(check bool) "covers" true
    (Mapping.covers_targets m [ Fixtures.t_order; Fixtures.t_icn ]);
  Alcotest.(check bool) "does not cover SP" false (Mapping.covers_targets m [ Fixtures.t_sp ]);
  Alcotest.(check int) "size" 4 (Mapping.size m)

let test_o_ratio () =
  (* m1 and m2 share 3 of 5 distinct corrs: o-ratio 3/5. *)
  Alcotest.(check (float 1e-9)) "fig3 m1/m2" 0.6 (Mapping.o_ratio Fixtures.fig3_m1 Fixtures.fig3_m2);
  Alcotest.(check (float 1e-9)) "self" 1.0 (Mapping.o_ratio Fixtures.fig3_m1 Fixtures.fig3_m1);
  Alcotest.(check (float 1e-9)) "symmetric"
    (Mapping.o_ratio Fixtures.fig3_m1 Fixtures.fig3_m3)
    (Mapping.o_ratio Fixtures.fig3_m3 Fixtures.fig3_m1);
  let empty = mk [] in
  Alcotest.(check (float 1e-9)) "both empty" 1.0 (Mapping.o_ratio empty empty);
  Alcotest.(check (float 1e-9)) "empty vs non-empty" 0.0
    (Mapping.o_ratio empty Fixtures.fig3_m1)

let test_equal () =
  let a = mk [ (0, 0); (1, 3) ] and b = mk [ (1, 3); (0, 0) ] and c = mk [ (0, 0) ] in
  Alcotest.(check bool) "order irrelevant" true (Mapping.equal a b);
  Alcotest.(check bool) "different" false (Mapping.equal a c)

let test_matching_validation () =
  let fails corrs =
    match Matching.create ~source ~target corrs with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  fails [ { Matching.source = 0; target = 0; score = 0.0 } ];
  fails [ { Matching.source = 0; target = 0; score = 1.5 } ];
  fails
    [
      { Matching.source = 0; target = 0; score = 0.5 };
      { Matching.source = 0; target = 0; score = 0.6 };
    ]

let test_matching_lookups () =
  let m = Fixtures.fig1_matching in
  Alcotest.(check int) "capacity" 10 (Matching.capacity m);
  Alcotest.(check (option (float 1e-9))) "score" (Some 0.84)
    (Matching.score m Fixtures.s_bcn Fixtures.t_icn);
  Alcotest.(check int) "three candidates for ICN" 3
    (List.length (Matching.corrs_of_target m Fixtures.t_icn));
  Alcotest.(check int) "BP has two targets" 2
    (List.length (Matching.corrs_of_source m Fixtures.s_bp))

let test_mapping_set_of_mappings () =
  let mset = Fixtures.fig3_mset in
  Alcotest.(check int) "size" 5 (Mapping_set.size mset);
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 (Mapping_set.mappings mset) in
  Alcotest.(check (float 1e-9)) "probabilities normalized" 1.0 total;
  Alcotest.(check (float 1e-9)) "uniform" 0.2 (Mapping_set.probability mset 0)

let test_generate_from_matching () =
  let mset = Mapping_set.generate ~h:10 Fixtures.fig1_matching in
  Alcotest.(check bool) "at most 10" true (Mapping_set.size mset <= 10);
  Alcotest.(check bool) "at least 2" true (Mapping_set.size mset >= 2);
  (* probabilities sorted non-increasing, matching the score order *)
  let ps = List.map snd (Mapping_set.mappings mset) in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-12 && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "probabilities non-increasing" true (non_increasing ps);
  (* generate with both methods agrees on scores *)
  let m2 = Mapping_set.generate ~method_:Mapping_set.Murty ~h:10 Fixtures.fig1_matching in
  let scores s = List.map (fun (m, _) -> Mapping.score m) (Mapping_set.mappings s) in
  List.iter2
    (fun a b -> Alcotest.(check (float 1e-9)) "method-independent scores" a b)
    (scores mset) (scores m2)

let test_storage_accounting () =
  let naive = Mapping_set.storage_bytes_naive Fixtures.fig3_mset in
  (* 5 mappings: 8 bytes each + 8 per corr; sizes 4,4,5,4,4 = 21 corrs *)
  Alcotest.(check int) "naive bytes" ((5 * 8) + (21 * 8)) naive

let test_metrics () =
  let module Metrics = Uxsm_mapping.Metrics in
  let mset = Fixtures.fig3_mset in
  (* Uniform over 5 mappings: entropy = log2 5, normalized = 1. *)
  Alcotest.(check (float 1e-9)) "entropy" (Float.log 5.0 /. Float.log 2.0) (Metrics.entropy mset);
  Alcotest.(check (float 1e-9)) "normalized entropy" 1.0 (Metrics.normalized_entropy mset);
  (* ICN: three distinct sources (BCN, RCN, OCN), never unmapped -> 3. *)
  Alcotest.(check int) "ICN ambiguity" 3 (Metrics.target_ambiguity mset Fixtures.t_icn);
  (* ORDER: always Order -> 1. *)
  Alcotest.(check int) "ORDER consensus" 1 (Metrics.target_ambiguity mset Fixtures.t_order);
  (* SP: mapped by m3 only, unmapped by the rest -> 2 choices. *)
  Alcotest.(check int) "SP ambiguity" 2 (Metrics.target_ambiguity mset Fixtures.t_sp);
  let consensus = Metrics.consensus mset in
  let order_choice = List.find (fun (y, _, _) -> y = Fixtures.t_order) consensus in
  (match order_choice with
  | _, x, p ->
    Alcotest.(check int) "ORDER -> Order" Fixtures.s_order x;
    Alcotest.(check (float 1e-9)) "full support" 1.0 p);
  let icn_choice = List.find (fun (y, _, _) -> y = Fixtures.t_icn) consensus in
  (match icn_choice with
  | _, _, p -> Alcotest.(check (float 1e-9)) "ICN majority support 0.4" 0.4 p);
  (* sizes: m1,m2,m4,m5 have 4, m3 has 5 -> expected 4.2 *)
  Alcotest.(check (float 1e-9)) "expected size" 4.2 (Metrics.expected_mapping_size mset);
  let hist = Metrics.ambiguity_histogram mset in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 hist in
  Alcotest.(check int) "histogram covers mapped targets" 5 total

let test_feedback () =
  let module Feedback = Uxsm_mapping.Feedback in
  let module Metrics = Uxsm_mapping.Metrics in
  let mset = Fixtures.fig3_mset in
  (* Confirming ICN ~ BCN keeps m1 and m2 only, renormalized to 1/2. *)
  (match Feedback.condition mset ~target:Fixtures.t_icn (Feedback.Confirmed Fixtures.s_bcn) with
  | None -> Alcotest.fail "should survive"
  | Some conditioned ->
    Alcotest.(check int) "two survivors" 2 (Mapping_set.size conditioned);
    Alcotest.(check (float 1e-9)) "renormalized" 0.5 (Mapping_set.probability conditioned 0);
    (* ICN is now settled. *)
    Alcotest.(check int) "ICN settled" 1 (Metrics.target_ambiguity conditioned Fixtures.t_icn));
  (* Confirming SP unmapped keeps everything but m3. *)
  (match Feedback.condition mset ~target:Fixtures.t_sp Feedback.Unmapped with
  | None -> Alcotest.fail "should survive"
  | Some conditioned -> Alcotest.(check int) "four survivors" 4 (Mapping_set.size conditioned));
  (* A contradiction of every mapping yields None. *)
  (match Feedback.condition mset ~target:Fixtures.t_order Feedback.Unmapped with
  | None -> ()
  | Some _ -> Alcotest.fail "every mapping maps ORDER");
  (* Question ranking: ICN (3-way even split) prunes more than SP (4/1
     split), and settled elements are not asked about. *)
  let qs = Feedback.questions mset in
  Alcotest.(check bool) "ORDER not asked" true
    (not (List.mem_assoc Fixtures.t_order qs));
  let h_icn = List.assoc Fixtures.t_icn qs and h_sp = List.assoc Fixtures.t_sp qs in
  Alcotest.(check bool) "asking ICN leaves less entropy" true (h_icn < h_sp);
  (* Expected entropy after asking is below the current entropy. *)
  Alcotest.(check bool) "information is gained" true (h_icn < Metrics.entropy mset)

(* --------------------- Serialize round trips ---------------------- *)
(* The server's register/save endpoints lean on Serialize, so the format
   is property-tested here: to_string → of_string is the identity on
   random matchings and mapping sets (scores exactly — %.17g round-trips
   every float — probabilities up to renormalization noise). *)

let schemas_equal a b = Schema.to_string a = Schema.to_string b

let prop_matching_round_trip =
  QCheck.Test.make ~count:100 ~name:"Serialize.matching to_string/of_string = id"
    QCheck.(triple (int_range 1 1000000) (int_range 2 25) (int_range 1 30))
    (fun (seed, n, corrs) ->
      let prng = Uxsm_util.Prng.create seed in
      let m = Fixtures.random_matching prng ~source_n:n ~target_n:(1 + (n / 2)) ~corrs in
      match Uxsm_mapping.Serialize.matching_of_string
              (Uxsm_mapping.Serialize.matching_to_string m)
      with
      | Error _ -> false
      | Ok m' ->
        schemas_equal (Matching.source m) (Matching.source m')
        && schemas_equal (Matching.target m) (Matching.target m')
        && Matching.capacity m = Matching.capacity m'
        && List.for_all2
             (fun (a : Matching.corr) (b : Matching.corr) ->
               a.source = b.source && a.target = b.target && Float.equal a.score b.score)
             (Matching.correspondences m)
             (Matching.correspondences m'))

let prop_mapping_set_round_trip =
  QCheck.Test.make ~count:100 ~name:"Serialize.mapping_set to_string/of_string = id"
    QCheck.(pair (int_range 1 1000000) (int_range 1 25))
    (fun (seed, h) ->
      let prng = Uxsm_util.Prng.create seed in
      let mset = Fixtures.random_mapping_set prng ~source_n:12 ~target_n:9 ~corrs:14 ~h in
      match Uxsm_mapping.Serialize.mapping_set_of_string
              (Uxsm_mapping.Serialize.mapping_set_to_string mset)
      with
      | Error _ -> false
      | Ok mset' ->
        schemas_equal (Mapping_set.source mset) (Mapping_set.source mset')
        && schemas_equal (Mapping_set.target mset) (Mapping_set.target mset')
        && Mapping_set.size mset = Mapping_set.size mset'
        && List.for_all2
             (fun (m1, p1) (m2, p2) ->
               Mapping.equal m1 m2
               && Float.equal (Mapping.score m1) (Mapping.score m2)
               && Float.abs (p1 -. p2) <= 1e-12)
             (Mapping_set.mappings mset) (Mapping_set.mappings mset'))

(* ----------------- incremental maintenance (deltas) ---------------- *)

(* Random path-addressed delta over a random matching: re-score some
   correspondences, remove others, add a few new pairs between existing
   elements. Schema growth is exercised by the deterministic test below
   (its rightmost-spine precondition makes random generation awkward). *)
let gen_matching_and_delta =
  let open QCheck.Gen in
  let* seed = int_range 1 1000000 in
  let* corrs = int_range 2 14 in
  let prng = Uxsm_util.Prng.create seed in
  let u = Fixtures.random_matching prng ~source_n:12 ~target_n:9 ~corrs in
  let src = Matching.source u and tgt = Matching.target u in
  let path_of s e = Schema.path_string s e in
  let* fates =
    flatten_l
      (List.map (fun c -> map (fun f -> (c, f)) (int_range 0 2)) (Matching.correspondences u))
  in
  let* scores = flatten_l (List.map (fun _ -> int_range 1 99) fates) in
  let set_existing =
    List.concat
      (List.map2
         (fun ((c : Matching.corr), fate) k ->
           if fate = 1 then
             [ (path_of src c.source, path_of tgt c.target, float_of_int k /. 100.0) ]
           else [])
         fates scores)
  in
  let removes =
    List.filter_map
      (fun ((c : Matching.corr), fate) ->
        if fate = 2 then Some (path_of src c.source, path_of tgt c.target) else None)
      fates
  in
  let* n_new = int_range 0 2 in
  let* added =
    flatten_l
      (List.init n_new (fun _ ->
           let* x = int_range 0 (Schema.size src - 1) in
           let* y = int_range 0 (Schema.size tgt - 1) in
           let* k = int_range 1 99 in
           return (path_of src x, path_of tgt y, float_of_int k /. 100.0)))
  in
  let existing = Hashtbl.create 16 in
  List.iter
    (fun (c : Matching.corr) ->
      Hashtbl.replace existing (path_of src c.source, path_of tgt c.target) ())
    (Matching.correspondences u);
  let added = List.filter (fun (x, y, _) -> not (Hashtbl.mem existing (x, y))) added in
  let delta =
    {
      Matching.set_scores = set_existing @ added;
      remove_corrs = removes;
      add_source = [];
      add_target = [];
    }
  in
  return (u, delta)

let arb_matching_and_delta =
  QCheck.make gen_matching_and_delta ~print:(fun (u, (d : Matching.delta)) ->
      Printf.sprintf "corrs=%d set=[%s] remove=[%s]" (Matching.capacity u)
        (String.concat "; "
           (List.map (fun (x, y, s) -> Printf.sprintf "%s~%s=%.2f" x y s) d.Matching.set_scores))
        (String.concat "; "
           (List.map (fun (x, y) -> Printf.sprintf "%s~%s" x y) d.Matching.remove_corrs)))

let msets_identical a b =
  Mapping_set.size a = Mapping_set.size b
  && List.for_all2
       (fun (m1, p1) (m2, p2) ->
         Mapping.equal m1 m2
         && Float.equal (Mapping.score m1) (Mapping.score m2)
         && Float.equal p1 p2)
       (Mapping_set.mappings a) (Mapping_set.mappings b)

let update_equals_generate ?exec (u, delta) =
  match Matching.apply_delta delta u with
  | Error _ -> true (* e.g. the delta removed every correspondence of a node both sides *)
  | Ok u' ->
    let h = 10 in
    let t = Mapping_set.generate ?exec ~h u in
    let incr = Mapping_set.update ?exec u' t in
    msets_identical incr (Mapping_set.generate ~h u')

let prop_update_equals_generate =
  QCheck.Test.make ~count:200 ~name:"Mapping_set.update = generate on the patched matching"
    arb_matching_and_delta update_equals_generate

let prop_update_equals_generate_domains =
  QCheck.Test.make ~count:50 ~name:"Mapping_set.update = generate, Domains executor"
    arb_matching_and_delta
    (update_equals_generate ~exec:(Uxsm_exec.Executor.domains 3))

let test_apply_delta_grows_schemas () =
  (* r(a, b): the rightmost root-to-leaf spine is r -> b, so both r and b
     accept appended children without renumbering a single existing id. *)
  let s = Schema.of_spec (Schema.spec "r" [ Schema.spec "a" []; Schema.spec "b" [] ]) in
  let u = Matching.create ~source:s ~target:s [ { Matching.source = 1; target = 2; score = 0.5 } ] in
  let delta =
    {
      Matching.set_scores = [ ("r.a", "r.c", 0.9) ];
      remove_corrs = [];
      add_source = [];
      add_target = [ ("r", "c") ];
    }
  in
  (match Matching.apply_delta delta u with
  | Error e -> Alcotest.failf "grow + set should apply: %s" e
  | Ok u' ->
    Alcotest.(check int) "target grew" 4 (Schema.size (Matching.target u'));
    Alcotest.(check int) "source unchanged" 3 (Schema.size (Matching.source u'));
    Alcotest.(check (option int)) "new element addressable" (Some 3)
      (Schema.find_by_path (Matching.target u') "r.c");
    Alcotest.(check int) "both corrs present" 2 (Matching.capacity u');
    (* Incremental mapping sets survive schema growth too. *)
    let t = Mapping_set.generate ~h:5 u in
    Alcotest.(check bool) "update = generate after growth" true
      (msets_identical (Mapping_set.update u' t) (Mapping_set.generate ~h:5 u')));
  (* Appending under a non-spine parent would renumber b — rejected. *)
  let bad =
    { Matching.empty_delta with add_source = [ ("r.a", "x") ] }
  in
  match Matching.apply_delta bad u with
  | Ok _ -> Alcotest.fail "non-spine growth must be rejected"
  | Error e ->
    Alcotest.(check bool) "error names the renumbering" true
      (String.length e > 0)

let test_apply_delta_errors () =
  let u = Fixtures.fig1_matching in
  let err d =
    match Matching.apply_delta d u with
    | Ok _ -> Alcotest.fail "expected Error"
    | Error e -> e
  in
  let has needle hay =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "unknown source path" true
    (has "unknown source path"
       (err { Matching.empty_delta with set_scores = [ ("Nope.Nada", "ORDER.SP.SCN", 0.5) ] }));
  Alcotest.(check bool) "score out of range" true
    (has "must be in (0, 1]"
       (err { Matching.empty_delta with set_scores = [ ("Order.BP", "ORDER.IP", 1.5) ] }));
  Alcotest.(check bool) "removing an absent correspondence" true
    (has "to remove"
       (err { Matching.empty_delta with remove_corrs = [ ("Order.BP.BOC.BCN", "ORDER.SP") ] }))

let test_update_requires_provenance () =
  let t = Fixtures.fig3_mset in
  Alcotest.(check bool) "of_mappings sets have no provenance" true
    (Mapping_set.ranked t = None);
  match Mapping_set.update (Mapping_set.matching t) t with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "update without provenance must raise"

let suite =
  [
    Alcotest.test_case "mapping validation" `Quick test_mapping_validation;
    Alcotest.test_case "mapping lookups" `Quick test_mapping_lookups;
    Alcotest.test_case "o-ratio" `Quick test_o_ratio;
    Alcotest.test_case "mapping equality" `Quick test_equal;
    Alcotest.test_case "matching validation" `Quick test_matching_validation;
    Alcotest.test_case "matching lookups" `Quick test_matching_lookups;
    Alcotest.test_case "mapping set from explicit mappings" `Quick test_mapping_set_of_mappings;
    Alcotest.test_case "generate from matching" `Quick test_generate_from_matching;
    Alcotest.test_case "storage accounting" `Quick test_storage_accounting;
    Alcotest.test_case "uncertainty metrics" `Quick test_metrics;
    Alcotest.test_case "expert feedback" `Quick test_feedback;
    QCheck_alcotest.to_alcotest prop_matching_round_trip;
    QCheck_alcotest.to_alcotest prop_mapping_set_round_trip;
    Alcotest.test_case "apply_delta grows schemas append-only" `Quick
      test_apply_delta_grows_schemas;
    Alcotest.test_case "apply_delta validation errors" `Quick test_apply_delta_errors;
    Alcotest.test_case "update rejects provenance-free sets" `Quick
      test_update_requires_provenance;
    QCheck_alcotest.to_alcotest prop_update_equals_generate;
    QCheck_alcotest.to_alcotest prop_update_equals_generate_domains;
  ]
