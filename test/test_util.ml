(* Utility tests: PRNG determinism and bounds, the float-keyed heap, and
   descriptive statistics. *)

module Prng = Uxsm_util.Prng
module Fheap = Uxsm_util.Fheap
module Stats = Uxsm_util.Stats

let test_prng_determinism () =
  let a = Prng.create 7 and b = Prng.create 7 in
  let xs g = List.init 50 (fun _ -> Prng.int g 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (xs a) (xs b);
  let c = Prng.create 8 in
  Alcotest.(check bool) "different seed differs" true (xs (Prng.create 7) <> xs c)

let test_prng_copy_and_split () =
  let a = Prng.create 3 in
  ignore (Prng.int a 10);
  let b = Prng.copy a in
  Alcotest.(check int) "copy continues identically" (Prng.int a 1000000) (Prng.int b 1000000);
  let parent = Prng.create 3 in
  let child = Prng.split parent in
  Alcotest.(check bool) "split independent-ish" true
    (List.init 20 (fun _ -> Prng.int parent 100) <> List.init 20 (fun _ -> Prng.int child 100))

let prop_prng_int_bounds =
  QCheck.Test.make ~count:500 ~name:"Prng.int in [0, bound)"
    QCheck.(pair (int_range 1 1000000) (int_range 1 10000))
    (fun (seed, bound) ->
      let g = Prng.create seed in
      List.for_all (fun _ ->
          let v = Prng.int g bound in
          v >= 0 && v < bound)
        (List.init 100 Fun.id))

let prop_prng_range =
  QCheck.Test.make ~count:200 ~name:"Prng.range inclusive bounds"
    QCheck.(triple (int_range 1 1000000) (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let g = Prng.create seed in
      let hi = lo + span in
      List.for_all (fun _ ->
          let v = Prng.range g lo hi in
          v >= lo && v <= hi)
        (List.init 50 Fun.id))

let prop_sample_without_replacement =
  QCheck.Test.make ~count:200 ~name:"sample_without_replacement: distinct, sorted, in range"
    QCheck.(triple (int_range 1 1000000) (int_range 0 30) (int_range 0 30))
    (fun (seed, k0, extra) ->
      let g = Prng.create seed in
      let n = k0 + extra in
      let k = k0 in
      let s = Prng.sample_without_replacement g k n in
      List.length s = k
      && List.sort_uniq Int.compare s = s
      && List.for_all (fun x -> x >= 0 && x < n) s)

let test_gaussian () =
  let g = Prng.create 9 in
  let n = 2000 in
  let xs = List.init n (fun _ -> Prng.gaussian g ~mu:5.0 ~sigma:2.0) in
  let mean = List.fold_left ( +. ) 0.0 xs /. float_of_int n in
  Alcotest.(check bool) "mean near mu" true (Float.abs (mean -. 5.0) < 0.2);
  let sd = Stats.stddev xs in
  Alcotest.(check bool) "sd near sigma" true (Float.abs (sd -. 2.0) < 0.3)

let prop_heap_sorts =
  QCheck.Test.make ~count:300 ~name:"Fheap pops in priority order"
    QCheck.(list (QCheck.make (QCheck.Gen.float_range (-100.0) 100.0)))
    (fun xs ->
      let h = Fheap.create () in
      List.iteri (fun i x -> Fheap.push h x i) xs;
      let rec drain acc =
        match Fheap.pop h with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort Float.compare xs)

let test_heap_peek () =
  let h = Fheap.create () in
  Alcotest.(check bool) "empty" true (Fheap.is_empty h);
  Fheap.push h 2.0 "b";
  Fheap.push h 1.0 "a";
  (match Fheap.peek h with
  | Some (1.0, "a") -> ()
  | _ -> Alcotest.fail "peek should be the minimum");
  Alcotest.(check int) "size" 2 (Fheap.size h)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "stddev" 0.0 (Stats.stddev [ 5.0; 5.0 ]);
  Alcotest.(check (float 1e-9)) "p50" 2.0 (Stats.percentile 50.0 [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ]);
  let h = Stats.histogram ~bins:2 [ 0.0; 1.0; 2.0; 3.0 ] in
  Alcotest.(check int) "two bins" 2 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all counted" 4 total

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng copy/split" `Quick test_prng_copy_and_split;
    Alcotest.test_case "heap peek/size" `Quick test_heap_peek;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "gaussian deviates" `Quick test_gaussian;
    q prop_prng_int_bounds;
    q prop_prng_range;
    q prop_sample_without_replacement;
    q prop_heap_sorts;
  ]
