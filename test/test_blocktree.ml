(* Block tree tests: the paper's running example (Figures 4-5) plus
   property tests of Definition 2 and lossless compression. *)

module Schema = Uxsm_schema.Schema
module Mapping_set = Uxsm_mapping.Mapping_set
module Block = Uxsm_blocktree.Block
module Block_tree = Uxsm_blocktree.Block_tree

let fig_tree () =
  Block_tree.build
    ~params:{ Block_tree.tau = 0.4; max_b = 500; max_f = 500 }
    Fixtures.fig3_mset

let block_key (b : Block.t) =
  (Array.to_list b.corrs, Array.to_list b.mappings)

let check_blocks name expected got =
  (* lint: allow poly-compare — block keys are pairs of scalar lists; structural order is fine for set equality *)
  let norm l = List.sort compare (List.map block_key l) in
  Alcotest.(check bool) name true (norm expected = norm got)

let test_leaf_blocks_icn () =
  let t = fig_tree () in
  (* Figure 4(a): b1 = {(BCN,ICN)} m1,m2 and b2 = {(RCN,ICN)} m3,m4 are
     c-blocks; {(OCN,ICN)} has one mapping only. *)
  let open Fixtures in
  check_blocks "blocks at ICN"
    [
      Block.create ~anchor:t_icn ~corrs:[ (s_bcn, t_icn) ] ~mappings:[ 0; 1 ];
      Block.create ~anchor:t_icn ~corrs:[ (s_rcn, t_icn) ] ~mappings:[ 2; 3 ];
    ]
    (Block_tree.blocks_at t t_icn)

let test_leaf_blocks_scn () =
  let t = fig_tree () in
  (* Figure 5: {(OCN,SCN)} m2,m3 and {(BCN,SCN)} m4,m5. *)
  let open Fixtures in
  check_blocks "blocks at SCN"
    [
      Block.create ~anchor:t_scn ~corrs:[ (s_ocn, t_scn) ] ~mappings:[ 1; 2 ];
      Block.create ~anchor:t_scn ~corrs:[ (s_bcn, t_scn) ] ~mappings:[ 3; 4 ];
    ]
    (Block_tree.blocks_at t t_scn)

let test_non_leaf_blocks_ip () =
  let t = fig_tree () in
  (* Figure 5: the only c-block at IP is {(BP,IP), (BCN,ICN)} for m1,m2. *)
  let open Fixtures in
  check_blocks "blocks at IP"
    [ Block.create ~anchor:t_ip ~corrs:[ (s_bp, t_ip); (s_bcn, t_icn) ] ~mappings:[ 0; 1 ] ]
    (Block_tree.blocks_at t t_ip)

let test_no_blocks_at_sp_and_order () =
  let t = fig_tree () in
  let open Fixtures in
  Alcotest.(check int) "no blocks at SP" 0 (List.length (Block_tree.blocks_at t t_sp));
  (* Lemma 2: SP has no c-block, so ORDER cannot have one either. *)
  Alcotest.(check int) "no blocks at ORDER" 0 (List.length (Block_tree.blocks_at t t_order))

let test_hash_table () =
  let t = fig_tree () in
  let open Fixtures in
  (* Figure 5(b): entries for ORDER.IP, ORDER.IP.ICN, ORDER.SP.SCN. *)
  Alcotest.(check (option int)) "ORDER.IP" (Some t_ip) (Block_tree.lookup_path t "ORDER.IP");
  Alcotest.(check (option int)) "ORDER.IP.ICN" (Some t_icn) (Block_tree.lookup_path t "ORDER.IP.ICN");
  Alcotest.(check (option int)) "ORDER.SP.SCN" (Some t_scn) (Block_tree.lookup_path t "ORDER.SP.SCN");
  Alcotest.(check (option int)) "no entry for ORDER" None (Block_tree.lookup_path t "ORDER");
  Alcotest.(check (option int)) "no entry for ORDER.SP" None (Block_tree.lookup_path t "ORDER.SP")

let test_total_blocks_and_validation () =
  let t = fig_tree () in
  Alcotest.(check int) "5 c-blocks in total" 5 (Block_tree.n_blocks t);
  match Block_tree.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_threshold_rounding () =
  (* tau * |M| = 0.4 * 5 = 2 exactly; threshold must be 2, not 3. *)
  let t = fig_tree () in
  Alcotest.(check int) "threshold" 2 (Block_tree.threshold t);
  (* With tau just above 2/5 the pairs no longer qualify. *)
  let t' =
    Block_tree.build ~params:{ Block_tree.tau = 0.41; max_b = 500; max_f = 500 } Fixtures.fig3_mset
  in
  Alcotest.(check int) "threshold 3 kills all pair blocks" 0 (Block_tree.n_blocks t')

let test_compression_is_lossless () =
  let t = fig_tree () in
  (* m1's compressed form must contain the IP block (covering BP~IP and
     BCN~ICN), the SCN leaf block is not applicable to m1 (m1 maps RCN~SCN,
     a singleton group), so RCN~SCN and Order~ORDER remain residual. *)
  let items = Block_tree.compressed_corrs_of_mapping t 0 in
  let blocks = List.filter (function `Block _ -> true | `Corr _ -> false) items in
  Alcotest.(check int) "m1 uses one block pointer" 1 (List.length blocks);
  let corrs = List.filter (function `Corr _ -> true | `Block _ -> false) items in
  Alcotest.(check int) "m1 keeps two residual corrs" 2 (List.length corrs)

let test_compression_ratio_positive () =
  let t = fig_tree () in
  let r = Block_tree.compression_ratio t in
  Alcotest.(check bool) "storage accounting is sane" true (r > -1.0 && r < 1.0)

let test_max_b_caps_non_leaf_blocks () =
  let t =
    Block_tree.build ~params:{ Block_tree.tau = 0.4; max_b = 0; max_f = 500 } Fixtures.fig3_mset
  in
  (* max_b = 0 forbids non-leaf blocks; the four leaf blocks survive. *)
  Alcotest.(check int) "leaf blocks only" 4 (Block_tree.n_blocks t);
  Alcotest.(check int) "no IP block" 0 (List.length (Block_tree.blocks_at t Fixtures.t_ip))

(* Property: on random mapping sets, the built tree always validates. *)
let prop_random_tree_validates =
  QCheck.Test.make ~count:60 ~name:"random block trees validate (Definition 2 + lossless)"
    QCheck.(triple (int_range 1 1000000) (int_range 2 30) (QCheck.make (QCheck.Gen.float_range 0.05 0.9)))
    (fun (seed, h, tau) ->
      let prng = Uxsm_util.Prng.create seed in
      let mset =
        Fixtures.random_mapping_set prng ~source_n:25 ~target_n:15 ~corrs:20 ~h
      in
      let tree = Block_tree.build ~params:{ Block_tree.tau; max_b = 200; max_f = 200 } mset in
      match Block_tree.validate tree with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_report e)

(* Property: every block's mapping set is maximal at leaf level — adding any
   other mapping would break b.C ⊆ m. *)
let prop_leaf_blocks_maximal =
  QCheck.Test.make ~count:60 ~name:"leaf blocks contain every mapping sharing the corr"
    QCheck.(pair (int_range 1 1000000) (int_range 2 25))
    (fun (seed, h) ->
      let prng = Uxsm_util.Prng.create seed in
      let mset = Fixtures.random_mapping_set prng ~source_n:20 ~target_n:12 ~corrs:15 ~h in
      let tree = Block_tree.build ~params:{ Block_tree.tau = 0.2; max_b = 200; max_f = 200 } mset in
      let target = Mapping_set.target mset in
      let leaf_ok y =
        List.for_all
          (fun (b : Block.t) ->
            List.for_all
              (fun i ->
                Block.mem_mapping b i
                || not (Block.subset_of_mapping b (Mapping_set.mapping mset i)))
              (List.init (Mapping_set.size mset) Fun.id))
          (Block_tree.blocks_at tree y)
      in
      List.for_all leaf_ok (Schema.leaves target))

(* -------------------- incremental rebuild (update) ------------------ *)

module Matching = Uxsm_mapping.Matching

(* Identity of two trees, order included: the update contract is "same tree
   as a from-scratch build", not merely "equivalent blocks". *)
let trees_identical a b =
  let tgt = Mapping_set.target (Block_tree.mapping_set a) in
  Block_tree.threshold a = Block_tree.threshold b
  && Block_tree.n_blocks a = Block_tree.n_blocks b
  && List.for_all
       (fun y ->
         List.map block_key (Block_tree.blocks_at a y)
         = List.map block_key (Block_tree.blocks_at b y))
       (List.init (Schema.size tgt) Fun.id)
  && Block_tree.storage_bytes a = Block_tree.storage_bytes b

(* Random re-score/remove/add deltas over a random matching, pushed through
   the whole incremental stack: Mapping_set.update for the new set, then
   Block_tree.update against a from-scratch build of the same set. *)
let gen_update_case =
  let open QCheck.Gen in
  let* seed = int_range 1 1000000 in
  let* h = int_range 2 12 in
  let* tau_k = int_range 1 8 in
  let prng = Uxsm_util.Prng.create seed in
  let u = Fixtures.random_matching prng ~source_n:14 ~target_n:10 ~corrs:12 in
  let src = Matching.source u and tgt = Matching.target u in
  let* fates =
    flatten_l
      (List.map (fun c -> map (fun f -> (c, f)) (int_range 0 2)) (Matching.correspondences u))
  in
  let* scores = flatten_l (List.map (fun _ -> int_range 1 99) fates) in
  let path_of s e = Schema.path_string s e in
  let set =
    List.concat
      (List.map2
         (fun ((c : Matching.corr), fate) k ->
           if fate = 1 then
             [ (path_of src c.source, path_of tgt c.target, float_of_int k /. 100.0) ]
           else [])
         fates scores)
  in
  let remove =
    List.filter_map
      (fun ((c : Matching.corr), fate) ->
        if fate = 2 then Some (path_of src c.source, path_of tgt c.target) else None)
      fates
  in
  let delta = { Matching.set_scores = set; remove_corrs = remove; add_source = []; add_target = [] } in
  return (u, delta, h, 0.1 *. float_of_int tau_k)

let arb_update_case =
  QCheck.make gen_update_case ~print:(fun (u, (d : Matching.delta), h, tau) ->
      Printf.sprintf "corrs=%d set=%d remove=%d h=%d tau=%.1f" (Matching.capacity u)
        (List.length d.Matching.set_scores)
        (List.length d.Matching.remove_corrs)
        h tau)

let prop_update_equals_build =
  QCheck.Test.make ~count:150 ~name:"Block_tree.update = build on the new set; validates"
    arb_update_case (fun (u, delta, h, tau) ->
      match Matching.apply_delta delta u with
      | Error _ -> true
      | Ok u' ->
        let params = { Block_tree.tau; max_b = 200; max_f = 200 } in
        let mset = Mapping_set.generate ~h u in
        let mset' = Mapping_set.update u' mset in
        let old = Block_tree.build ~params mset in
        let incr = Block_tree.update ~old mset' in
        let fresh = Block_tree.build ~params mset' in
        (match Block_tree.validate incr with
        | Error e -> QCheck.Test.fail_report e
        | Ok () -> trees_identical incr fresh))

let test_update_reuses_untouched_subtrees () =
  (* Re-score within one component of fig1: the SP subtree of the target
     never changes support, so the update path must report reused nodes
     through the Obs counters while producing the from-scratch tree. *)
  let module Obs = Uxsm_obs.Obs in
  let u = Fixtures.fig1_matching in
  let mset = Mapping_set.generate ~h:5 u in
  let old = Block_tree.build ~params:{ Block_tree.tau = 0.4; max_b = 500; max_f = 500 } mset in
  let delta =
    {
      Matching.set_scores = [ ("Order.BP", "ORDER.IP", 0.9) ];
      remove_corrs = [];
      add_source = [];
      add_target = [];
    }
  in
  let u' = match Matching.apply_delta delta u with Ok u' -> u' | Error e -> Alcotest.fail e in
  let mset' = Mapping_set.update u' mset in
  let updates = Obs.counter "blocktree.updates" in
  let u0 = Obs.value updates in
  let incr = Block_tree.update ~old mset' in
  Alcotest.(check int) "went through the update path" 1 (Obs.value updates - u0);
  Alcotest.(check bool) "identical to from-scratch" true
    (trees_identical incr
       (Block_tree.build ~params:{ Block_tree.tau = 0.4; max_b = 500; max_f = 500 } mset'));
  match Block_tree.validate incr with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_update_falls_back_when_capped () =
  (* A tree truncated by MAX_B cannot donate subtrees; update must fall
     back to a full rebuild and still produce the right tree. *)
  let t = Block_tree.build ~params:{ Block_tree.tau = 0.4; max_b = 0; max_f = 500 } Fixtures.fig3_mset in
  Alcotest.(check bool) "cap recorded" true (Block_tree.caps_hit t)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "Figure 4(a): leaf blocks at ICN" `Quick test_leaf_blocks_icn;
    Alcotest.test_case "Figure 5: leaf blocks at SCN" `Quick test_leaf_blocks_scn;
    Alcotest.test_case "Figure 5: non-leaf block at IP" `Quick test_non_leaf_blocks_ip;
    Alcotest.test_case "Lemma 2: no blocks at SP/ORDER" `Quick test_no_blocks_at_sp_and_order;
    Alcotest.test_case "Figure 5(b): hash table" `Quick test_hash_table;
    Alcotest.test_case "five blocks total; validates" `Quick test_total_blocks_and_validation;
    Alcotest.test_case "threshold rounding at tau*|M| integral" `Quick test_threshold_rounding;
    Alcotest.test_case "mapping compression on m1" `Quick test_compression_is_lossless;
    Alcotest.test_case "compression ratio in range" `Quick test_compression_ratio_positive;
    Alcotest.test_case "MAX_B caps non-leaf blocks" `Quick test_max_b_caps_non_leaf_blocks;
    q prop_random_tree_validates;
    q prop_leaf_blocks_maximal;
    Alcotest.test_case "update reuses untouched subtrees" `Quick
      test_update_reuses_untouched_subtrees;
    Alcotest.test_case "capped trees fall back on update" `Quick
      test_update_falls_back_when_capped;
    q prop_update_equals_build;
  ]
