(* Robustness batch: fuzzing all parsers (they must return Error, never
   crash), and cross-cutting invariants that tie parameters to structure
   (tau monotonicity, top-k limits, Murty prefix stability). *)

module Schema = Uxsm_schema.Schema
module Mapping_set = Uxsm_mapping.Mapping_set
module Murty = Uxsm_assignment.Murty
module Block_tree = Uxsm_blocktree.Block_tree
module Ptq = Uxsm_ptq.Ptq

let gen_garbage =
  let open QCheck.Gen in
  let chars = "<>/&\"'[]()=. \n\tabcXYZ123;:-#!" in
  let* n = int_range 0 60 in
  let* ixs = flatten_l (List.init n (fun _ -> int_range 0 (String.length chars - 1))) in
  return (String.init n (fun i -> chars.[List.nth ixs i]))

let arb_garbage = QCheck.make gen_garbage ~print:(Printf.sprintf "%S")

let total_parser name parse =
  QCheck.Test.make ~count:500 ~name arb_garbage (fun s ->
      match parse s with
      | Ok _ | Error _ -> true)

let prop_xml_parser_total = total_parser "XML parser never crashes on garbage" Uxsm_xml.Parser.parse

let prop_pattern_parser_total =
  total_parser "pattern parser never crashes on garbage" Uxsm_twig.Pattern_parser.parse

let prop_schema_text_total = total_parser "schema text parser never crashes" Schema.of_string

let prop_xsd_total =
  total_parser "XSD importer never crashes" (fun s -> Uxsm_schema.Xsd.of_xsd_string s)

let prop_serialize_total =
  total_parser "matching deserializer never crashes" Uxsm_mapping.Serialize.matching_of_string

let prop_mapping_set_deserialize_total =
  total_parser "mapping-set deserializer never crashes"
    Uxsm_mapping.Serialize.mapping_set_of_string

(* With unbounded MAX_B/MAX_F, raising tau can only remove c-blocks. *)
let prop_blocks_monotone_in_tau =
  QCheck.Test.make ~count:60 ~name:"#c-blocks is non-increasing in tau"
    QCheck.(pair (int_range 1 1000000) (int_range 3 20))
    (fun (seed, h) ->
      let prng = Uxsm_util.Prng.create seed in
      let mset = Fixtures.random_mapping_set prng ~source_n:20 ~target_n:12 ~corrs:16 ~h in
      let count tau =
        Block_tree.n_blocks
          (Block_tree.build ~params:{ Block_tree.tau; max_b = 100000; max_f = 100000 } mset)
      in
      let counts = List.map count [ 0.05; 0.2; 0.4; 0.6; 0.8 ] in
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b && non_increasing rest
        | _ -> true
      in
      non_increasing counts)

(* top-k with k = |M| is exactly the full query. *)
let prop_topk_full_equals_query =
  QCheck.Test.make ~count:60 ~name:"top-k at k=|M| equals the full PTQ"
    QCheck.(pair (int_range 1 1000000) (int_range 2 12))
    (fun (seed, h) ->
      let prng = Uxsm_util.Prng.create seed in
      let mset = Fixtures.random_mapping_set prng ~source_n:12 ~target_n:8 ~corrs:10 ~h in
      let doc = Fixtures.random_doc prng (Mapping_set.source mset) in
      let tree = Block_tree.build mset in
      let ctx = Ptq.context ~tree ~mset ~doc () in
      let pattern = Fixtures.random_pattern prng (Mapping_set.target mset) in
      let full = Ptq.query_tree ctx pattern in
      let topk = Ptq.query_topk ctx ~k:(Mapping_set.size mset) pattern in
      List.length full = List.length topk
      && List.for_all2
           (fun (a : Ptq.answer) (b : Ptq.answer) ->
             a.mapping_id = b.mapping_id && a.bindings = b.bindings)
           full topk)

(* Growing h only appends solutions: top(h1) scores prefix top(h2). *)
let prop_murty_prefix_stable =
  QCheck.Test.make ~count:100 ~name:"Murty top-h scores are prefix-stable in h"
    QCheck.(pair (int_range 1 1000000) (int_range 1 10))
    (fun (seed, h1) ->
      let prng = Uxsm_util.Prng.create seed in
      let mset = Fixtures.random_mapping_set prng ~source_n:10 ~target_n:8 ~corrs:10 ~h:2 in
      let g = Uxsm_mapping.Matching.to_bipartite (Mapping_set.matching mset) in
      let h2 = h1 + 1 + Uxsm_util.Prng.int prng 10 in
      let scores h = List.map (fun (s : Murty.solution) -> s.score) (Murty.top ~h g) in
      let s1 = scores h1 and s2 = scores h2 in
      List.for_all2 Float.equal s1 (List.filteri (fun i _ -> i < List.length s1) s2))

(* Aggregate COUNT: defined mass equals the relevant probability mass. *)
let prop_count_mass =
  QCheck.Test.make ~count:60 ~name:"aggregate COUNT mass = relevant mass"
    QCheck.(pair (int_range 1 1000000) (int_range 2 12))
    (fun (seed, h) ->
      let prng = Uxsm_util.Prng.create seed in
      let mset = Fixtures.random_mapping_set prng ~source_n:12 ~target_n:8 ~corrs:10 ~h in
      let doc = Fixtures.random_doc prng (Mapping_set.source mset) in
      let ctx = Ptq.context ~mset ~doc () in
      let pattern = Fixtures.random_pattern prng (Mapping_set.target mset) in
      let relevant_mass =
        List.fold_left
          (fun acc (a : Ptq.answer) -> acc +. a.probability)
          0.0 (Ptq.query_basic ctx pattern)
      in
      let r = Uxsm_ptq.Aggregate.count ctx pattern in
      let mass =
        List.fold_left (fun acc (_, p) -> acc +. p) r.Uxsm_ptq.Aggregate.undefined_mass
          r.Uxsm_ptq.Aggregate.distribution
      in
      Float.abs (mass -. relevant_mass) < 1e-9)

let prop_keyword_limit =
  QCheck.Test.make ~count:60 ~name:"keyword interpretations respect the limit"
    QCheck.(pair (int_range 1 1000000) (int_range 1 8))
    (fun (seed, limit) ->
      let prng = Uxsm_util.Prng.create seed in
      let schema = Fixtures.random_schema prng ~n:20 in
      let terms = [ "e"; "1" ] in
      List.length (Uxsm_ptq.Keyword.interpretations ~limit schema terms) <= limit)

(* Prob_doc.randomize keeps every conditional probability within bounds and
   marginals multiply along root paths. *)
let prop_prob_doc_bounds =
  QCheck.Test.make ~count:100 ~name:"Prob_doc.randomize bounds and marginals"
    QCheck.(pair (int_range 1 1000000) (int_range 2 25))
    (fun (seed, n) ->
      let prng = Uxsm_util.Prng.create seed in
      let schema = Fixtures.random_schema prng ~n in
      let doc = Fixtures.random_doc prng schema in
      let pd = Uxsm_xml.Prob_doc.randomize ~prng ~p_min:0.5 ~p_max:0.9 doc in
      List.for_all
        (fun v ->
          let c = Uxsm_xml.Prob_doc.cond_prob pd v in
          (* lint: allow float-eq — the root's conditional probability is set to exactly 1.0 *)
          let ok_cond = if v = 0 then c = 1.0 else c >= 0.5 && c <= 0.9 in
          let expected_marginal =
            match Uxsm_xml.Doc.parent doc v with
            | None -> 1.0
            | Some p -> Uxsm_xml.Prob_doc.marginal_prob pd p *. c
          in
          ok_cond
          && Float.abs (Uxsm_xml.Prob_doc.marginal_prob pd v -. expected_marginal) < 1e-9)
        (List.init (Uxsm_xml.Doc.size doc) Fun.id))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    q prop_xml_parser_total;
    q prop_pattern_parser_total;
    q prop_schema_text_total;
    q prop_xsd_total;
    q prop_serialize_total;
    q prop_mapping_set_deserialize_total;
    q prop_blocks_monotone_in_tau;
    q prop_topk_full_equals_query;
    q prop_murty_prefix_stable;
    q prop_count_mass;
    q prop_keyword_limit;
    q prop_prob_doc_bounds;
  ]
