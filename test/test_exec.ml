(* Tests for the execution layer: Executor semantics (ordering, nesting,
   exceptions), domain-safety of the Obs sinks under parallel fan-out, and
   the differential properties the refactor promises — the Domains backend
   returns bit-identical results to Sequential on all three parallelized
   sites (PTQ evaluation, per-component top-h ranking, matcher scoring). *)

module Executor = Uxsm_exec.Executor
module Obs = Uxsm_obs.Obs
module Schema = Uxsm_schema.Schema
module Matching = Uxsm_mapping.Matching
module Mapping_set = Uxsm_mapping.Mapping_set
module Block_tree = Uxsm_blocktree.Block_tree
module Partition = Uxsm_assignment.Partition
module Murty = Uxsm_assignment.Murty
module Coma = Uxsm_matcher.Coma
module Ptq = Uxsm_ptq.Ptq

let par = Executor.domains 3

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* The suite runs with UXSM_PAR_THRESHOLD=0 (see test/main.ml); gate tests
   set their own threshold and always restore the suite-wide zero. *)
let with_threshold v f =
  Unix.putenv "UXSM_PAR_THRESHOLD" v;
  Fun.protect ~finally:(fun () -> Unix.putenv "UXSM_PAR_THRESHOLD" "0") f

(* ------------------------- Executor semantics --------------------- *)

let test_construction () =
  Alcotest.(check int) "sequential is one job" 1 (Executor.jobs Executor.sequential);
  Alcotest.(check int) "domains carries its size" 4 (Executor.jobs (Executor.domains 4));
  Alcotest.(check string) "sequential name" "sequential"
    (Executor.backend_name Executor.sequential);
  Alcotest.(check string) "domains name" "domains" (Executor.backend_name (Executor.domains 2));
  Alcotest.(check bool) "of_jobs 1 is sequential" false
    (Executor.is_parallel (Executor.of_jobs 1));
  Alcotest.(check bool) "of_jobs 4 is parallel" true (Executor.is_parallel (Executor.of_jobs 4));
  Alcotest.(check bool) "domains 1 never spawns" false (Executor.is_parallel (Executor.domains 1));
  Alcotest.check_raises "of_jobs rejects zero"
    (Invalid_argument "Executor.of_jobs: jobs must be >= 1") (fun () ->
      ignore (Executor.of_jobs 0));
  Alcotest.check_raises "domains rejects zero"
    (Invalid_argument "Executor.domains: pool size must be >= 1") (fun () ->
      ignore (Executor.domains 0))

let test_jobs_of_env () =
  (* UXSM_JOBS is the --jobs default across the CLI and bench; an unset,
     malformed or out-of-range value falls back to the given default. *)
  let with_env v f =
    (match v with Some s -> Unix.putenv "UXSM_JOBS" s | None -> Unix.putenv "UXSM_JOBS" "");
    Fun.protect ~finally:(fun () -> Unix.putenv "UXSM_JOBS" "") f
  in
  with_env (Some "4") (fun () ->
      Alcotest.(check int) "UXSM_JOBS=4" 4 (Executor.jobs_of_env ()));
  with_env (Some " 3 ") (fun () ->
      Alcotest.(check int) "whitespace tolerated" 3 (Executor.jobs_of_env ()));
  with_env (Some "0") (fun () ->
      Alcotest.(check int) "zero rejected" 1 (Executor.jobs_of_env ()));
  with_env (Some "-2") (fun () ->
      Alcotest.(check int) "negative rejected" 1 (Executor.jobs_of_env ()));
  with_env (Some "many") (fun () ->
      Alcotest.(check int) "garbage rejected" 5 (Executor.jobs_of_env ~default:5 ()));
  with_env None (fun () ->
      Alcotest.(check int) "empty value falls back" 2 (Executor.jobs_of_env ~default:2 ()))

let test_jobs_of_env_warns () =
  (* A rejected UXSM_JOBS must not be silently coerced: the fallback stays,
     but one warning names the offending value so operator typos surface. *)
  let with_env v f =
    Unix.putenv "UXSM_JOBS" v;
    Fun.protect ~finally:(fun () -> Unix.putenv "UXSM_JOBS" "") f
  in
  let warnings = ref [] in
  let warn m = warnings := m :: !warnings in
  with_env "four" (fun () ->
      Alcotest.(check int) "typo falls back to default" 3
        (Executor.jobs_of_env ~default:3 ~warn ());
      Alcotest.(check int) "exactly one warning" 1 (List.length !warnings);
      Alcotest.(check bool) "warning names the rejected value" true
        (contains (List.hd !warnings) "\"four\""));
  with_env "0" (fun () ->
      Alcotest.(check int) "zero falls back" 1 (Executor.jobs_of_env ~warn ());
      Alcotest.(check bool) "zero is warned about too" true
        (contains (List.hd !warnings) "\"0\""));
  with_env "-2" (fun () ->
      ignore (Executor.jobs_of_env ~warn ());
      Alcotest.(check int) "three warnings so far" 3 (List.length !warnings));
  let before = List.length !warnings in
  with_env "4" (fun () ->
      Alcotest.(check int) "valid value accepted" 4 (Executor.jobs_of_env ~warn ()));
  with_env "" (fun () ->
      Alcotest.(check int) "unset stays silent" 1 (Executor.jobs_of_env ~warn ()));
  Alcotest.(check int) "no warning for valid or unset values" before (List.length !warnings);
  (* CLI precedence: the env var only seeds the --jobs default (the bench
     and every subcommand initialize the option with [jobs_of_env]); an
     explicit flag overwrites it even when the env var is valid. *)
  with_env "2" (fun () ->
      let jobs = ref (Executor.jobs_of_env ~warn ()) in
      Alcotest.(check int) "env seeds the default" 2 !jobs;
      jobs := 4 (* --jobs 4 parsed *);
      Alcotest.(check int) "explicit flag beats the env var" 4
        (Executor.jobs (Executor.of_jobs !jobs)))

let test_map_ordering () =
  let input = Array.init 500 Fun.id in
  let f i = (i * i) - (3 * i) in
  let seq = Executor.map_array Executor.sequential f input in
  List.iter
    (fun pool ->
      let got = Executor.map_array (Executor.domains pool) f input in
      Alcotest.(check bool)
        (Printf.sprintf "map_array pool=%d is index-ordered" pool)
        true (got = seq))
    [ 2; 3; 8 ];
  let l = List.init 101 string_of_int in
  Alcotest.(check (list string)) "map_list preserves order" (List.map (fun s -> s ^ "!") l)
    (Executor.map_list par (fun s -> s ^ "!") l);
  Alcotest.(check (list string)) "empty and singleton inputs survive" [ "x!" ]
    (Executor.map_list par (fun s -> s ^ "!") [ "x" ]);
  Alcotest.(check bool) "empty array" true (Executor.map_array par f [||] = [||])

let test_map_reduce_deterministic () =
  (* String concatenation is non-commutative: any out-of-order fold would
     produce a different result. *)
  let input = Array.init 64 Fun.id in
  let expect = Array.fold_left (fun acc i -> acc ^ string_of_int i) "" input in
  Alcotest.(check string) "fold sees index order" expect
    (Executor.map_reduce par ~map:string_of_int ~fold:( ^ ) ~init:"" input)

exception Boom of int

let test_exceptions_propagate () =
  let input = Array.init 100 Fun.id in
  (* The raise lands mid-chunk (chunks cover several consecutive indices),
     so this also exercises the abort path inside a chunk. *)
  (match Executor.map_array par (fun i -> if i = 57 then raise (Boom i) else i) input with
  | _ -> Alcotest.fail "expected the worker exception to re-raise"
  | exception Boom 57 -> ());
  (* The pool workers park again and are reusable after a failure. *)
  Alcotest.(check bool) "executor still works after a failure" true
    (Executor.map_array par Fun.id input = input)

(* The raise site the backtrace must keep pointing at. *)
let[@inline never] deep_raise () = raise (Boom 99)

let test_exception_backtrace_preserved () =
  (* Regression: the executor used to re-raise with bare [raise], which
     rewrites the backtrace to the executor's own re-raise line. The catch
     site now captures the worker's raw backtrace and restores it with
     [Printexc.raise_with_backtrace], so the original raise site survives
     a Domains run. *)
  let previously = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  Fun.protect
    ~finally:(fun () -> Printexc.record_backtrace previously)
    (fun () ->
      let input = Array.init 64 Fun.id in
      match Executor.map_array par (fun i -> if i = 13 then deep_raise () else i) input with
      | _ -> Alcotest.fail "expected the worker exception to re-raise"
      | exception Boom 99 ->
        let bt = Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ()) in
        Alcotest.(check bool)
          (Printf.sprintf "backtrace keeps the original raise site (got: %s)" bt)
          true
          (contains bt "test_exec"))

let test_nested_fanout_degrades () =
  (* A parallel map whose items issue parallel maps themselves must not
     spawn recursively — and must still compute the right thing. *)
  let nested = Obs.counter "exec.nested_sequential" in
  let spawned = Obs.counter "exec.domains_spawned" in
  let n0 = Obs.value nested and s0 = Obs.value spawned in
  let w0 = Executor.pool_width () in
  let inner i = Executor.map_list par (fun j -> i + j) [ 1; 2; 3 ] in
  let got = Executor.map_list par inner [ 10; 20; 30; 40 ] in
  Alcotest.(check bool) "nested results correct" true
    (got = [ [ 11; 12; 13 ]; [ 21; 22; 23 ]; [ 31; 32; 33 ]; [ 41; 42; 43 ] ]);
  Alcotest.(check bool) "inner fan-outs degraded to sequential" true (Obs.value nested > n0);
  (* Only the outer call may have grown the pool (to at most two helpers
     for [domains 3]); the nested calls never spawn. *)
  Alcotest.(check bool) "no recursive spawning" true
    (Obs.value spawned - s0 <= max 0 (2 - w0))

(* ------------------------- warm pool lifecycle -------------------- *)

let test_warm_pool_reuse () =
  let spawned = Obs.counter "exec.domains_spawned" in
  let parallel = Obs.counter "exec.parallel_calls" in
  let tasks = Obs.counter "exec.tasks" in
  let chunks = Obs.counter "exec.chunks" in
  let input = Array.init 300 Fun.id in
  let f i = (i * 7) - 1 in
  let expect = Array.map f input in
  (* The first call may grow the pool; every later call must reuse it. *)
  ignore (Executor.map_array par f input);
  let s1 = Obs.value spawned and p1 = Obs.value parallel in
  let t1 = Obs.value tasks and k1 = Obs.value chunks in
  let w1 = Executor.pool_width () in
  Alcotest.(check bool) "pool is warm after a parallel call" true (w1 >= 1);
  for _ = 1 to 5 do
    Alcotest.(check bool) "warm-call results correct" true
      (Executor.map_array par f input = expect)
  done;
  Alcotest.(check int) "exec.domains_spawned stays flat across warm calls" s1
    (Obs.value spawned);
  Alcotest.(check int) "pool width unchanged" w1 (Executor.pool_width ());
  Alcotest.(check int) "five more parallel calls" (p1 + 5) (Obs.value parallel);
  Alcotest.(check int) "every item accounted as a task" (t1 + (5 * 300)) (Obs.value tasks);
  Alcotest.(check bool) "work was handed out in chunks, not per item" true
    (Obs.value chunks - k1 < 5 * 300 && Obs.value chunks > k1)

let test_cost_gate () =
  let gate = Obs.counter "exec.sequential_by_gate" in
  let spawned = Obs.counter "exec.domains_spawned" in
  let parallel = Obs.counter "exec.parallel_calls" in
  let input = Array.init 64 Fun.id in
  let f i = i + 1 in
  let expect = Array.map f input in
  with_threshold "1000000" (fun () ->
      Alcotest.(check (float 0.0)) "threshold read from the environment" 1000000.0
        (Executor.parallel_threshold ());
      let g0 = Obs.value gate and s0 = Obs.value spawned and p0 = Obs.value parallel in
      Alcotest.(check bool) "gated call computes the same result" true
        (Executor.map_array ~cost_hint:999.0 par f input = expect);
      Alcotest.(check int) "below-threshold hint degrades to sequential" (g0 + 1)
        (Obs.value gate);
      Alcotest.(check int) "no spawns for a gated call" s0 (Obs.value spawned);
      Alcotest.(check int) "no parallel call for a gated call" p0 (Obs.value parallel);
      Alcotest.(check bool) "above-threshold hint fans out" true
        (Executor.map_array ~cost_hint:2e6 par f input = expect);
      Alcotest.(check int) "the fan-out is a parallel call" (p0 + 1) (Obs.value parallel);
      Alcotest.(check int) "the gate counter is untouched above threshold" (g0 + 1)
        (Obs.value gate);
      let p1 = Obs.value parallel in
      Alcotest.(check bool) "hint-less calls are never gated" true
        (Executor.map_array par f input = expect);
      Alcotest.(check int) "hint-less call fanned out" (p1 + 1) (Obs.value parallel))

let test_shutdown_and_rewarm () =
  ignore (Executor.map_array par Fun.id (Array.init 100 Fun.id));
  Alcotest.(check bool) "pool warm before shutdown" true (Executor.pool_width () > 0);
  Executor.shutdown ();
  Alcotest.(check int) "shutdown joins every worker" 0 (Executor.pool_width ());
  Executor.shutdown ();
  (* idempotent *)
  let spawned = Obs.counter "exec.domains_spawned" in
  let s0 = Obs.value spawned in
  let input = Array.init 50 Fun.id in
  Alcotest.(check bool) "pool re-warms transparently after shutdown" true
    (Executor.map_array par string_of_int input = Array.map string_of_int input);
  Alcotest.(check bool) "re-warming spawned fresh workers" true
    (Obs.value spawned > s0 && Executor.pool_width () > 0)

let prop_chunked_map_eq_sequential =
  (* Chunk boundaries move with the item count and pool width; whatever the
     combination, the merged result is bit-identical to Array.map. *)
  QCheck.Test.make ~count:300 ~name:"map_array chunked Domains = Sequential (any size x pool)"
    QCheck.(triple (int_range 0 257) (int_range 2 9) small_int)
    (fun (len, pool, salt) ->
      let arr = Array.init len (fun i -> i + salt) in
      let f x = (x * 31) lxor (x lsr 2) in
      Executor.map_array (Executor.domains pool) f arr = Array.map f arr)

(* ----------------------- Obs under parallelism -------------------- *)

let test_parallel_counter_totals () =
  Obs.reset ();
  let c = Obs.counter "test.exec_counter" in
  let s = Obs.span "test.exec_span" in
  let items = Array.init 200 Fun.id in
  let work i =
    Obs.time s (fun () ->
        Obs.incr c;
        Obs.add c 2;
        i)
  in
  let seq = Executor.map_array Executor.sequential work items in
  let seq_count = Obs.value c and seq_spans = Obs.span_count s in
  Obs.reset ();
  let got = Executor.map_array (Executor.domains 4) work items in
  Alcotest.(check bool) "results identical" true (got = seq);
  Alcotest.(check int) "counter total = sequential total" seq_count (Obs.value c);
  Alcotest.(check int) "span count = sequential count" seq_spans (Obs.span_count s);
  Alcotest.(check int) "3 bumps per item" (3 * Array.length items) (Obs.value c)

(* --------------------- differential: Partition -------------------- *)

let solutions_identical xs ys =
  List.length xs = List.length ys
  && List.for_all2
       (fun (a : Murty.solution) (b : Murty.solution) ->
         a.pairs = b.pairs && Float.equal a.score b.score)
       xs ys

let prop_partition_domains_eq_sequential =
  QCheck.Test.make ~count:150 ~name:"Partition.top Domains = Sequential (scores and pairs)"
    Test_assignment.arb_graph (fun g ->
      solutions_identical
        (Partition.top ~h:25 g)
        (Partition.top ~exec:par ~h:25 g))

(* ------------------------ differential: PTQ ----------------------- *)

let answers_identical (xs : Ptq.answer list) (ys : Ptq.answer list) =
  List.length xs = List.length ys
  && List.for_all2
       (fun (x : Ptq.answer) (y : Ptq.answer) ->
         x.mapping_id = y.mapping_id
         && Float.equal x.probability y.probability
         && x.bindings = y.bindings)
       xs ys

let prop_ptq_domains_eq_sequential =
  QCheck.Test.make ~count:60 ~name:"PTQ Domains = Sequential (basic, tree and top-k)"
    QCheck.(triple (int_range 1 1000000) (int_range 2 15) (int_range 1 6))
    (fun (seed, h, k) ->
      let prng = Uxsm_util.Prng.create seed in
      let mset = Fixtures.random_mapping_set prng ~source_n:14 ~target_n:10 ~corrs:14 ~h in
      let tree = Block_tree.build ~params:{ Block_tree.tau = 0.3; max_b = 100; max_f = 100 } mset in
      let doc = Fixtures.random_doc prng (Mapping_set.source mset) in
      let pattern = Fixtures.random_pattern prng (Mapping_set.target mset) in
      let ctx_seq = Ptq.context ~tree ~mset ~doc () in
      let ctx_par = Ptq.context ~exec:par ~tree ~mset ~doc () in
      answers_identical (Ptq.query_basic ctx_seq pattern) (Ptq.query_basic ctx_par pattern)
      && answers_identical (Ptq.query_tree ctx_seq pattern) (Ptq.query_tree ctx_par pattern)
      && answers_identical
           (Ptq.query_topk ctx_seq ~k pattern)
           (Ptq.query_topk ctx_par ~k pattern))

let prop_plan_execution_eq_query_basic =
  (* The tentpole differential: every way of executing a compiled plan —
     both physical operators, cost-chosen or forced, sequential or with
     domain fan-out — returns the seed query_basic answers bit-identically,
     including under top-k pruning. *)
  QCheck.Test.make ~count:60 ~name:"plan execution (all evaluators x executors) = query_basic"
    QCheck.(triple (int_range 1 1000000) (int_range 2 15) (int_range 1 6))
    (fun (seed, h, k) ->
      let prng = Uxsm_util.Prng.create seed in
      let mset = Fixtures.random_mapping_set prng ~source_n:14 ~target_n:10 ~corrs:14 ~h in
      let tree = Block_tree.build ~params:{ Block_tree.tau = 0.3; max_b = 100; max_f = 100 } mset in
      let doc = Fixtures.random_doc prng (Mapping_set.source mset) in
      let pattern = Fixtures.random_pattern prng (Mapping_set.target mset) in
      let ctxs =
        [
          Uxsm_ptq.Ptq.context ~tree ~mset ~doc ();
          Uxsm_ptq.Ptq.context ~exec:par ~tree ~mset ~doc ();
        ]
      in
      let expect = Ptq.query_basic (List.hd ctxs) pattern in
      let expect_topk = Ptq.query_topk (List.hd ctxs) ~k pattern in
      List.for_all
        (fun ctx ->
          List.for_all
            (fun force ->
              answers_identical expect (Ptq.execute (Ptq.compile ~force ctx pattern))
              && answers_identical expect_topk (Ptq.execute (Ptq.compile ~force ~k ctx pattern)))
            [ `Auto; `Basic; `Tree ])
        ctxs)

let prop_ptq_counter_totals =
  QCheck.Test.make ~count:30 ~name:"PTQ counter totals Domains = Sequential"
    QCheck.(pair (int_range 1 1000000) (int_range 2 12))
    (fun (seed, h) ->
      let prng = Uxsm_util.Prng.create seed in
      let mset = Fixtures.random_mapping_set prng ~source_n:12 ~target_n:8 ~corrs:10 ~h in
      let doc = Fixtures.random_doc prng (Mapping_set.source mset) in
      let pattern = Fixtures.random_pattern prng (Mapping_set.target mset) in
      let totals exec =
        Obs.reset ();
        ignore (Ptq.query_basic (Ptq.context ~exec ~mset ~doc ()) pattern);
        List.filter
          (fun (name, _) -> String.length name >= 4 && String.sub name 0 4 = "ptq.")
          (Obs.counters ())
      in
      totals Executor.sequential = totals par)

(* ------------------------ differential: Coma ---------------------- *)

let corrs_identical a b =
  let l1 = Matching.correspondences a and l2 = Matching.correspondences b in
  List.length l1 = List.length l2
  && List.for_all2
       (fun (c1 : Matching.corr) (c2 : Matching.corr) ->
         c1.source = c2.source && c1.target = c2.target && Float.equal c1.score c2.score)
       l1 l2

let prop_coma_domains_eq_sequential =
  QCheck.Test.make ~count:25 ~name:"Coma Domains = Sequential (correspondence lists)"
    QCheck.(triple (int_range 1 1000000) (int_range 5 25) (int_range 5 25))
    (fun (seed, ns, nt) ->
      let prng = Uxsm_util.Prng.create seed in
      let source = Fixtures.random_schema prng ~n:ns in
      let target = Fixtures.random_schema prng ~n:nt in
      corrs_identical (Coma.run ~source ~target ()) (Coma.run ~exec:par ~source ~target ())
      && corrs_identical
           (Coma.run_with_capacity ~strategy:Coma.Fragment ~capacity:8 ~source ~target ())
           (Coma.run_with_capacity ~exec:par ~strategy:Coma.Fragment ~capacity:8 ~source
              ~target ()))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "executor construction" `Quick test_construction;
    Alcotest.test_case "UXSM_JOBS default" `Quick test_jobs_of_env;
    Alcotest.test_case "UXSM_JOBS rejection warns" `Quick test_jobs_of_env_warns;
    Alcotest.test_case "map ordering across backends" `Quick test_map_ordering;
    Alcotest.test_case "map_reduce folds in index order" `Quick test_map_reduce_deterministic;
    Alcotest.test_case "worker exceptions propagate" `Quick test_exceptions_propagate;
    Alcotest.test_case "worker backtrace survives re-raise" `Quick
      test_exception_backtrace_preserved;
    Alcotest.test_case "nested fan-out degrades to sequential" `Quick
      test_nested_fanout_degrades;
    Alcotest.test_case "warm pool reuse across bulk calls" `Quick test_warm_pool_reuse;
    Alcotest.test_case "cost gate degrades small jobs" `Quick test_cost_gate;
    Alcotest.test_case "shutdown joins and the pool re-warms" `Quick test_shutdown_and_rewarm;
    Alcotest.test_case "Obs totals under parallel fan-out" `Quick test_parallel_counter_totals;
    q prop_chunked_map_eq_sequential;
    q prop_partition_domains_eq_sequential;
    q prop_ptq_domains_eq_sequential;
    q prop_plan_execution_eq_query_basic;
    q prop_ptq_counter_totals;
    q prop_coma_domains_eq_sequential;
  ]
