(* Locks subsystem tests: the ranked-mutex API, the runtime lock-order
   witness (held-rank stacks, Count/Raise modes, the violations counter),
   exception safety of [with_lock], [try_lock]'s exemption from the order
   check, the executor's contended-submitter fallback, and the PR 7
   multi-client server stress re-run with the witness in [Raise] mode —
   the dynamic half of the acceptance criterion whose static half is the
   linter's [lock-order] rule (DESIGN.md §15). *)

module Locks = Uxsm_util.Locks
module Executor = Uxsm_exec.Executor
module Obs = Uxsm_obs.Obs

(* Every test restores the process-global witness mode on exit — the rest
   of the suite must keep running under whatever UXSM_LOCK_WITNESS chose. *)
let with_mode m f =
  let saved = Locks.mode () in
  Locks.set_mode m;
  Fun.protect ~finally:(fun () -> Locks.set_mode saved) f

let mk name rank = Locks.create ~name ~rank

(* ----------------------------- basics ------------------------------ *)

let test_create_validation () =
  (match mk "bad" 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rank 0 must be rejected");
  (match mk "bad" (-3) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative rank must be rejected");
  let l = mk "test.basic" 7 in
  Alcotest.(check string) "name recorded" "test.basic" (Locks.name l);
  Alcotest.(check int) "rank recorded" 7 (Locks.rank l)

let test_rank_table_ascending () =
  (* The canonical ranks must stay strictly ordered along the documented
     acquisition chains (DESIGN.md §15): pool < catalog map < shard <
     queue < connection write < dataset memos < loadgen < latches <
     worker mailboxes < registry. *)
  let chain =
    [ Locks.rank_pool; Locks.rank_catalog_map; Locks.rank_shard; Locks.rank_queue;
      Locks.rank_conn_write; Locks.rank_dataset_mset; Locks.rank_dataset_matching;
      Locks.rank_loadgen; Locks.rank_latch; Locks.rank_worker_mailbox; Locks.rank_registry ]
  in
  let rec strictly_ascending = function
    | a :: (b :: _ as rest) -> a < b && strictly_ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "rank table strictly ascending" true (strictly_ascending chain)

(* ------------------------- rank enforcement ------------------------ *)

let test_rank_enforcement_raise () =
  with_mode Locks.Raise @@ fun () ->
  Locks.reset_violations ();
  let a = mk "test.a" 10 and b = mk "test.b" 20 and c = mk "test.c" 5 in
  (* Ascending chain is silent. *)
  Locks.lock a;
  Locks.lock b;
  Alcotest.(check int) "ascending chain clean" 0 (Locks.violations ());
  (* Descending acquisition raises at the acquisition site, before the
     mutex is taken — [c] stays free. *)
  let contains sub =
    let n = String.length sub in
    fun s ->
      let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
      go 0
  in
  (match Locks.lock c with
  | exception Locks.Order_violation msg ->
    Alcotest.(check bool) "message names the acquired lock" true (contains "test.c" msg);
    Alcotest.(check bool) "message names the held lock" true (contains "test.b" msg)
  | () -> Alcotest.fail "descending lock must raise under Raise");
  Alcotest.(check int) "violation counted" 1 (Locks.violations ());
  Alcotest.(check bool) "refused lock left free" true (Locks.try_lock c);
  Locks.unlock c;
  (* Equal rank is also an inversion (covers self-deadlock: relocking a
     held lock finds its own rank on the stack). *)
  let b2 = mk "test.b2" 20 in
  (match Locks.lock b2 with
  | exception Locks.Order_violation _ -> ()
  | () -> Alcotest.fail "equal-rank lock must raise under Raise");
  (match Locks.lock b with
  | exception Locks.Order_violation _ -> ()
  | () -> Alcotest.fail "self-relock must raise under Raise");
  Locks.unlock b;
  Locks.unlock a;
  Locks.reset_violations ();
  Alcotest.(check int) "reset clears the counter" 0 (Locks.violations ())

let test_rank_enforcement_count () =
  with_mode Locks.Count @@ fun () ->
  Locks.reset_violations ();
  let a = mk "test.hi" 40 and b = mk "test.lo" 10 in
  Locks.lock a;
  (* Count mode records the inversion but still acquires, so production
     traffic keeps flowing while the counter surfaces the bug. *)
  Locks.lock b;
  Alcotest.(check int) "inversion counted" 1 (Locks.violations ());
  Alcotest.(check (list (pair string int)))
    "both locks held, innermost first"
    [ ("test.lo", 10); ("test.hi", 40) ]
    (Locks.held ());
  Locks.unlock b;
  Locks.unlock a;
  Locks.reset_violations ()

(* -------------------------- witness stack -------------------------- *)

let test_witness_stack () =
  with_mode Locks.Count @@ fun () ->
  let outer = mk "test.outer" 10 and inner = mk "test.inner" 20 in
  Alcotest.(check (list (pair string int))) "empty at rest" [] (Locks.held ());
  Locks.with_lock outer (fun () ->
      Alcotest.(check (list (pair string int)))
        "outer held" [ ("test.outer", 10) ] (Locks.held ());
      Locks.with_lock inner (fun () ->
          Alcotest.(check (list (pair string int)))
            "nested, innermost first"
            [ ("test.inner", 20); ("test.outer", 10) ]
            (Locks.held ())));
  Alcotest.(check (list (pair string int))) "empty after release" [] (Locks.held ());
  (* Off mode reports nothing: held() must not allocate stacks that no
     acquisition will ever pop. *)
  Locks.set_mode Locks.Off;
  Locks.with_lock outer (fun () ->
      Alcotest.(check (list (pair string int))) "off mode reports nothing" [] (Locks.held ()))

let test_with_lock_exception_safety () =
  with_mode Locks.Raise @@ fun () ->
  let l = mk "test.exn" 10 in
  (match Locks.with_lock l (fun () -> failwith "boom") with
  | exception Failure msg -> Alcotest.(check string) "exception propagates" "boom" msg
  | () -> Alcotest.fail "body exception must propagate");
  Alcotest.(check (list (pair string int))) "stack popped on raise" [] (Locks.held ());
  Alcotest.(check bool) "mutex released on raise" true (Locks.try_lock l);
  Locks.unlock l

(* ---------------------------- try_lock ----------------------------- *)

let test_try_lock_semantics () =
  with_mode Locks.Raise @@ fun () ->
  Locks.reset_violations ();
  let hi = mk "test.try.hi" 40 and lo = mk "test.try.lo" 10 in
  Locks.lock hi;
  (* A non-blocking acquire is exempt from the order check even when it
     inverts the ranks: it cannot be the blocking edge of a deadlock. *)
  Alcotest.(check bool) "out-of-order try_lock succeeds" true (Locks.try_lock lo);
  Alcotest.(check int) "no violation recorded for try_lock" 0 (Locks.violations ());
  (* ... but a successful try_lock joins the stack, so later blocking
     acquisitions are checked against it. *)
  Alcotest.(check (list (pair string int)))
    "try_lock joins the stack"
    [ ("test.try.lo", 10); ("test.try.hi", 40) ]
    (Locks.held ());
  let mid = mk "test.try.mid" 20 in
  (match Locks.lock mid with
  | exception Locks.Order_violation _ -> ()
  | () -> Alcotest.fail "blocking lock above a try_lock'd rank must still raise");
  Locks.unlock lo;
  Locks.unlock hi;
  (* try_lock on a lock held by another thread fails without touching the
     caller's stack. *)
  let contested = mk "test.try.contested" 10 in
  Locks.lock contested;
  let saw = ref None in
  let th = Thread.create (fun () -> saw := Some (Locks.try_lock contested)) () in
  Thread.join th;
  Alcotest.(check (option bool)) "contested try_lock fails" (Some false) !saw;
  Locks.unlock contested;
  Locks.reset_violations ()

(* ------------------------------ wait ------------------------------- *)

let test_wait_requires_innermost () =
  with_mode Locks.Raise @@ fun () ->
  Locks.reset_violations ();
  let a = mk "test.wait.a" 10 and b = mk "test.wait.b" 70 in
  let cv = Locks.cond () in
  (* Waiting on [a] while [b] is held innermost would re-acquire [a]
     beneath [b] on wakeup — the witness refuses before blocking. *)
  Locks.lock a;
  Locks.lock b;
  (match Locks.wait cv a with
  | exception Locks.Order_violation _ -> ()
  | () -> Alcotest.fail "wait on non-innermost lock must raise");
  Locks.unlock b;
  Locks.unlock a;
  (* Waiting without holding the lock at all is caught the same way
     (Condition.wait on an unheld mutex is undefined behaviour). *)
  (match Locks.wait cv a with
  | exception Locks.Order_violation _ -> ()
  | () -> Alcotest.fail "wait without holding must raise");
  Locks.reset_violations ()

(* ------------------ executor contended submitter ------------------- *)

(* Regression for the [Locks.try_lock pool_lock] migration: while one
   domain drives the pool, a second submitter must fall back to
   sequential execution (correct results, [exec.sequential_busy] bumped)
   instead of blocking on — or racing for — the workers. *)
let test_executor_busy_fallback () =
  let c_busy = Obs.counter "exec.sequential_busy" in
  let exec = Executor.domains 2 in
  let started = Atomic.make false and release = Atomic.make false in
  let holder =
    Domain.spawn (fun () ->
        Executor.map_array exec
          (fun i ->
            Atomic.set started true;
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done;
            i * 2)
          [| 1; 2 |])
  in
  (* Once any job runs, the holder owns pool_lock for the whole bulk call. *)
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  let before = Obs.value c_busy in
  let r = Executor.map_array exec (fun i -> i + 1) [| 1; 2; 3 |] in
  Alcotest.(check (array int)) "fallback results correct" [| 2; 3; 4 |] r;
  Alcotest.(check bool) "sequential_busy counted" true (Obs.value c_busy > before);
  Atomic.set release true;
  let held_r = Domain.join holder in
  Alcotest.(check (array int)) "pool holder results correct" [| 2; 4 |] held_r

(* -------------------- server stress under witness ------------------ *)

(* The PR 7 tentpole acceptance test re-run with the witness raising on
   any inversion: 4 concurrent clients on mixed corpora against a 4-way
   pool, replies byte-identical to a sequential replay. A single
   out-of-rank acquisition anywhere in the server, catalog, dataset or
   executor paths raises in the offending thread and fails the run. *)
let test_server_stress_witness_raise () =
  with_mode Locks.Raise @@ fun () ->
  Locks.reset_violations ();
  Test_server.run_stress "witness-raise"
    ~exec:(Executor.domains 4)
    [ Test_server.Server.Tcp ("127.0.0.1", 0) ];
  Alcotest.(check int) "zero order violations under stress" 0 (Locks.violations ())

(* --------------------------- properties ---------------------------- *)

let prop_ascending_clean =
  QCheck.Test.make ~count:100 ~name:"ascending rank chains never violate"
    QCheck.(list_of_size Gen.(1 -- 8) (int_range 1 1000))
    (fun ranks ->
      let ranks = List.sort_uniq Int.compare ranks in
      let locks = List.mapi (fun i r -> mk (Printf.sprintf "test.q%d" i) r) ranks in
      with_mode Locks.Raise (fun () ->
          List.iter Locks.lock locks;
          (* Innermost (highest rank) first, like every Fun.protect chain. *)
          List.iter Locks.unlock (List.rev locks);
          Locks.held () = []))

let prop_inversion_caught =
  QCheck.Test.make ~count:100 ~name:"every rank inversion is caught"
    QCheck.(pair (int_range 1 1000) (int_range 1 1000))
    (fun (r1, r2) ->
      let lo = min r1 r2 and hi = max r1 r2 in
      let a = mk "test.p.hi" hi and b = mk "test.p.lo" lo in
      with_mode Locks.Raise (fun () ->
          Locks.reset_violations ();
          Locks.lock a;
          let caught =
            (* Equal ranks invert too: r >= held is the refusal condition. *)
            match Locks.lock b with
            | exception Locks.Order_violation _ -> true
            | () ->
              Locks.unlock b;
              false
          in
          Locks.unlock a;
          let n = Locks.violations () in
          Locks.reset_violations ();
          caught && n = 1))

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "create validates ranks" `Quick test_create_validation;
    Alcotest.test_case "canonical rank table ascending" `Quick test_rank_table_ascending;
    Alcotest.test_case "rank enforcement (Raise)" `Quick test_rank_enforcement_raise;
    Alcotest.test_case "rank enforcement (Count)" `Quick test_rank_enforcement_count;
    Alcotest.test_case "witness held-stack" `Quick test_witness_stack;
    Alcotest.test_case "with_lock exception safety" `Quick test_with_lock_exception_safety;
    Alcotest.test_case "try_lock semantics" `Quick test_try_lock_semantics;
    Alcotest.test_case "wait requires innermost" `Quick test_wait_requires_innermost;
    Alcotest.test_case "executor busy-submitter fallback" `Quick test_executor_busy_fallback;
    Alcotest.test_case "server stress, witness raising" `Quick test_server_stress_witness_raise;
    q prop_ascending_clean;
    q prop_inversion_caught;
  ]
