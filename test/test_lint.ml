(* uxsm-lint analyzer tests: one fixture per rule (positive, negative and
   annotated-suppression), annotation grammar, baseline matching and
   exit-code behavior. Fixtures are analyzed as in-memory strings — no
   temporary files. *)

module Lint = Uxsm_lint_core.Lint_core
module Json = Uxsm_util.Json

(* Fixture annotations are assembled at runtime: the repo's own lint pass
   scans source lines textually, and a literal marker inside these string
   literals would read as a (stale) annotation of this file. *)
let allow = "lint:" ^ " allow"

let lib_ctx =
  { Lint.file = "lib/fake/fake.ml"; scope = Lint.Lib; executor_reachable = true }

let bench_ctx =
  { Lint.file = "bench/fake.ml"; scope = Lint.Bench; executor_reachable = true }

let unreachable_ctx = { lib_ctx with Lint.executor_reachable = false }

let rules fs = List.map (fun f -> f.Lint.rule) fs
let lines fs = List.map (fun f -> f.Lint.line) fs
let active fs = List.filter (fun f -> f.Lint.suppressed = None && not f.Lint.baselined) fs

let check_rules what expected fs =
  Alcotest.(check (list string)) what expected (rules fs)

(* ------------------------------ R1 ------------------------------ *)

let test_r1_positive () =
  let fs = Lint.analyze lib_ctx "let x = 1\nlet tbl = Hashtbl.create 16\n" in
  check_rules "hashtbl flagged" [ "domain-unsafe" ] fs;
  Alcotest.(check (list int)) "on line 2" [ 2 ] (lines fs);
  Alcotest.(check string) "error in lib" "error"
    (Lint.severity_name (List.hd fs).Lint.severity);
  check_rules "ref flagged" [ "domain-unsafe" ] (Lint.analyze lib_ctx "let r = ref []\n");
  check_rules "buffer flagged" [ "domain-unsafe" ]
    (Lint.analyze lib_ctx "let b = Buffer.create 80\n")

let test_r1_negative () =
  check_rules "Atomic is safe" []
    (Lint.analyze lib_ctx "let c = Atomic.make 0\n");
  check_rules "DLS is safe" []
    (Lint.analyze lib_ctx "let k = Domain.DLS.new_key (fun () -> 0)\n");
  check_rules "function-local state is fine" []
    (Lint.analyze lib_ctx "let f () =\n  let t = Hashtbl.create 4 in\n  Hashtbl.length t\n");
  check_rules "unreachable module exempt" []
    (Lint.analyze unreachable_ctx "let tbl = Hashtbl.create 16\n")

let test_r1_mutable_record () =
  let src = "type t = { mutable n : int }\nlet global = { n = 0 }\n" in
  let fs = Lint.analyze lib_ctx src in
  check_rules "mutable-record literal flagged" [ "domain-unsafe" ] fs;
  Alcotest.(check (list int)) "on the binding line" [ 2 ] (lines fs);
  check_rules "immutable record fine" []
    (Lint.analyze lib_ctx "type t = { n : int }\nlet global = { n = 0 }\n")

let test_r1_random () =
  check_rules "global Random flagged" [ "domain-unsafe" ]
    (Lint.analyze lib_ctx "let roll () = Random.int 6\n");
  check_rules "Random.State is fine" []
    (Lint.analyze lib_ctx "let roll st = Random.State.int st 6\n");
  check_rules "global Random ignored when unreachable" []
    (Lint.analyze unreachable_ctx "let roll () = Random.int 6\n")

let test_r1_suppression () =
  let src =
    "(* " ^ allow ^ " domain-unsafe — test table, guarded elsewhere *)\n\
     let tbl = Hashtbl.create 16\n"
  in
  let fs = Lint.analyze lib_ctx src in
  check_rules "finding still reported" [ "domain-unsafe" ] fs;
  Alcotest.(check (option string)) "carries the reason"
    (Some "test table, guarded elsewhere") (List.hd fs).Lint.suppressed;
  Alcotest.(check int) "suppressed error does not fail" 0 (Lint.exit_code fs);
  let same_line =
    "let tbl = Hashtbl.create 16 (* " ^ allow ^ " domain-unsafe - same line *)\n"
  in
  Alcotest.(check int) "same-line annotation works" 0
    (Lint.exit_code (Lint.analyze lib_ctx same_line))

let test_r1_driver_severity () =
  let fs = Lint.analyze bench_ctx "let quota = ref 0.3\n" in
  check_rules "driver ref reported" [ "domain-unsafe" ] fs;
  Alcotest.(check string) "as a warning" "warning"
    (Lint.severity_name (List.hd fs).Lint.severity);
  Alcotest.(check int) "warnings never fail" 0 (Lint.exit_code fs)

(* ------------------------------ R2 ------------------------------ *)

let test_r2_fold () =
  let bad = "let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []\n" in
  let fs = Lint.analyze lib_ctx bad in
  check_rules "unsorted fold flagged" [ "unsorted-fold" ] fs;
  Alcotest.(check int) "fails in lib" 1 (Lint.exit_code fs);
  check_rules "piped into sort is fine" []
    (Lint.analyze lib_ctx
       "let keys tbl =\n\
       \  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare\n");
  check_rules "sort applied directly is fine" []
    (Lint.analyze lib_ctx
       "let keys tbl =\n\
       \  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])\n");
  check_rules "scalar accumulator is fine" []
    (Lint.analyze lib_ctx "let n tbl = Hashtbl.fold (fun _ _ acc -> acc + 1) tbl 0\n");
  let annotated =
    "(* " ^ allow ^ " unsorted-fold — consumer sorts later *)\n\
     let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []\n"
  in
  Alcotest.(check int) "annotated fold passes" 0
    (Lint.exit_code (Lint.analyze lib_ctx annotated))

let test_r2_iter () =
  let fs = Lint.analyze lib_ctx "let dump tbl f = Hashtbl.iter f tbl\n" in
  check_rules "iter reported" [ "nondet-iter" ] fs;
  Alcotest.(check string) "as a warning" "warning"
    (Lint.severity_name (List.hd fs).Lint.severity);
  let annotated =
    "(* " ^ allow ^ " nondet-iter — effect is order-independent *)\n\
     let dump tbl f = Hashtbl.iter f tbl\n"
  in
  Alcotest.(check (option string)) "annotation suppresses"
    (Some "effect is order-independent")
    (List.hd (Lint.analyze lib_ctx annotated)).Lint.suppressed

let test_poly_compare () =
  let fs = Lint.analyze lib_ctx "let f xs = List.sort compare xs\n" in
  check_rules "bare compare flagged" [ "poly-compare" ] fs;
  Alcotest.(check int) "fails in lib" 1 (Lint.exit_code fs);
  check_rules "Stdlib.compare flagged too" [ "poly-compare" ]
    (Lint.analyze lib_ctx "let f xs = Array.sort Stdlib.compare xs\n");
  check_rules "List.merge flagged" [ "poly-compare" ]
    (Lint.analyze lib_ctx "let f a b = List.merge compare a b\n");
  check_rules "sort_uniq flagged" [ "poly-compare" ]
    (Lint.analyze lib_ctx "let f xs = List.sort_uniq compare xs\n");
  check_rules "typed comparator is fine" []
    (Lint.analyze lib_ctx "let f xs = List.sort String.compare xs\n");
  check_rules "custom comparator is fine" []
    (Lint.analyze lib_ctx "let f xs = List.sort (fun a b -> compare a b) xs\n");
  check_rules "compare outside a sort is fine" []
    (Lint.analyze lib_ctx "let eq a b = compare a b = 0\n");
  let fs = Lint.analyze bench_ctx "let f xs = List.sort compare xs\n" in
  Alcotest.(check string) "warning outside lib" "warning"
    (Lint.severity_name (List.hd fs).Lint.severity);
  let annotated =
    "(* " ^ allow ^ " poly-compare — structural order is the dedup key *)\n\
     let f xs = List.sort_uniq compare xs\n"
  in
  Alcotest.(check int) "annotated passes" 0
    (Lint.exit_code (Lint.analyze lib_ctx annotated))

let test_r2_float_eq () =
  check_rules "float literal compare flagged" [ "float-eq" ]
    (Lint.analyze lib_ctx "let is_unit p = p = 1.0\n");
  check_rules "<> flagged too" [ "float-eq" ]
    (Lint.analyze lib_ctx "let not_unit p = p <> 1.0\n");
  check_rules "int compare is fine" []
    (Lint.analyze lib_ctx "let is_one n = n = 1\n");
  check_rules "Float.equal is fine" []
    (Lint.analyze lib_ctx "let is_unit p = Float.equal p 1.0\n")

(* ------------------------------ R3 ------------------------------ *)

let test_r3_catch_all () =
  let fs = Lint.analyze lib_ctx "let f g = try g () with _ -> 0\n" in
  check_rules "wildcard handler flagged" [ "catch-all" ] fs;
  Alcotest.(check int) "fails" 1 (Lint.exit_code fs);
  check_rules "explicit exception is fine" []
    (Lint.analyze lib_ctx "let f g = try g () with Not_found -> 0\n");
  check_rules "guarded wildcard is selective" []
    (Lint.analyze lib_ctx "let f g c = try g () with _ when c -> 0\n");
  Alcotest.(check int) "annotated catch-all passes" 0
    (Lint.exit_code
       (Lint.analyze lib_ctx
          ("(* " ^ allow ^ " catch-all — last-resort logging wrapper *)\n\
            let f g = try g () with _ -> 0\n")))

let test_r3_obj_magic () =
  check_rules "Obj.magic flagged" [ "obj-magic" ]
    (Lint.analyze lib_ctx "let cast x = Obj.magic x\n");
  check_rules "Obj.repr not flagged" []
    (Lint.analyze lib_ctx "let r x = Obj.repr x\n")

let test_r3_stdout_print () =
  check_rules "print_endline in lib flagged" [ "stdout-print" ]
    (Lint.analyze lib_ctx "let f () = print_endline \"hi\"\n");
  check_rules "Printf.printf in lib flagged" [ "stdout-print" ]
    (Lint.analyze lib_ctx "let f x = Printf.printf \"%d\" x\n");
  check_rules "eprintf is fine" []
    (Lint.analyze lib_ctx "let f x = Printf.eprintf \"%d\" x\n");
  check_rules "printing from a driver is fine" []
    (Lint.analyze bench_ctx "let f () = print_endline \"hi\"\n")

let test_r3_missing_mli () =
  (match Lint.mli_finding ~ml_file:"lib/x/y.ml" ~has_mli:false ~scope:Lint.Lib with
  | Some f ->
    Alcotest.(check string) "rule id" "missing-mli" f.Lint.rule;
    Alcotest.(check string) "is an error" "error" (Lint.severity_name f.Lint.severity)
  | None -> Alcotest.fail "expected a missing-mli finding");
  Alcotest.(check bool) "mli present" true
    (Lint.mli_finding ~ml_file:"lib/x/y.ml" ~has_mli:true ~scope:Lint.Lib = None);
  Alcotest.(check bool) "executables need no mli" true
    (Lint.mli_finding ~ml_file:"bin/m.ml" ~has_mli:false ~scope:Lint.Bin = None)

(* ------------------------- infrastructure ------------------------- *)

let test_bad_annotation () =
  let fs = Lint.analyze lib_ctx ("(* " ^ allow ^ " *)\nlet x = 1\n") in
  check_rules "missing rule and reason" [ "bad-annotation" ] fs;
  let fs = Lint.analyze lib_ctx ("(* " ^ allow ^ " domain-unsafe *)\nlet x = 1\n") in
  check_rules "missing reason" [ "bad-annotation" ] fs;
  Alcotest.(check int) "malformed annotations only warn" 0 (Lint.exit_code fs);
  (* A wrong rule id parses but suppresses nothing. *)
  let fs =
    Lint.analyze lib_ctx
      ("(* " ^ allow ^ " nondet-iter — wrong rule *)\nlet tbl = Hashtbl.create 4\n")
  in
  Alcotest.(check int) "mismatched rule does not suppress" 1 (Lint.exit_code fs)

let test_multi_rule_positions () =
  let src =
    "let tbl = Hashtbl.create 16\n\
     let keys () = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []\n\
     let f g = try g () with _ -> 0\n"
  in
  let fs = Lint.analyze lib_ctx src in
  Alcotest.(check (list (pair string int)))
    "rules with line numbers, in position order"
    [ ("domain-unsafe", 1); ("unsorted-fold", 2); ("catch-all", 3) ]
    (List.map (fun f -> (f.Lint.rule, f.Lint.line)) fs)

let test_parse_error () =
  let fs = Lint.analyze lib_ctx "let let let\n" in
  check_rules "unparseable file reported" [ "parse-error" ] fs;
  Alcotest.(check int) "and fails" 1 (Lint.exit_code fs)

let test_baseline () =
  let fs = Lint.analyze lib_ctx "let tbl = Hashtbl.create 16\n" in
  let grandfathered =
    Lint.apply_baseline [ ("domain-unsafe", "lib/fake/fake.ml", 1) ] fs
  in
  Alcotest.(check bool) "entry marked baselined" true
    (List.for_all (fun f -> f.Lint.baselined) grandfathered);
  Alcotest.(check int) "baselined error passes" 0 (Lint.exit_code grandfathered);
  let miss = Lint.apply_baseline [ ("domain-unsafe", "lib/fake/fake.ml", 99) ] fs in
  Alcotest.(check int) "wrong line does not match" 1 (Lint.exit_code miss);
  match
    Lint.baseline_of_json
      (Result.get_ok
         (Json.of_string
            {|{"findings":[{"rule":"domain-unsafe","file":"lib/a.ml","line":3}]}|}))
  with
  | Ok entries ->
    Alcotest.(check (list (triple string string int)))
      "baseline decodes" [ ("domain-unsafe", "lib/a.ml", 3) ] entries
  | Error e -> Alcotest.fail e

let test_json_report () =
  let fs =
    Lint.analyze lib_ctx
      ("(* " ^ allow ^ " nondet-iter — covered *)\n\
        let dump tbl f = Hashtbl.iter f tbl\n\
        let tbl2 = Hashtbl.create 4\n")
  in
  let j = Lint.to_json fs in
  let summary = Option.get (Json.member "summary" j) in
  Alcotest.(check (option int)) "one error"
    (Some 1) (Option.bind (Json.member "errors" summary) Json.to_int);
  Alcotest.(check (option int)) "one suppressed"
    (Some 1) (Option.bind (Json.member "suppressed" summary) Json.to_int);
  let findings = Option.get (Option.bind (Json.member "findings" j) Json.to_list) in
  Alcotest.(check int) "all findings serialized" (List.length fs) (List.length findings);
  Alcotest.(check bool) "round-trips through the parser" true
    (Json.of_string (Json.to_string j) = Ok j)

(* ------------------- order-stability regressions ------------------- *)

(* The R2 sites fixed in this PR: outputs that grew out of a Hashtbl must
   not depend on hash-traversal order. Feeding permuted inputs through the
   public API must give identical results. *)

let mk_answer id p bindings =
  { Uxsm_ptq.Ptq.mapping_id = id; probability = p; bindings }

let test_consolidate_order_stable () =
  let b1 = [ [| 1; 2 |] ] and b2 = [ [| 2; 3 |] ] and b3 = [ [| 0; 9 |] ] in
  (* Three answer groups, two of them tied on probability. *)
  let answers = [ mk_answer 0 0.25 b2; mk_answer 1 0.25 b1; mk_answer 2 0.5 b3 ] in
  let permuted = [ mk_answer 2 0.5 b3; mk_answer 1 0.25 b1; mk_answer 0 0.25 b2 ] in
  let c1 = Uxsm_ptq.Ptq.consolidate answers in
  let c2 = Uxsm_ptq.Ptq.consolidate permuted in
  Alcotest.(check bool) "identical under input permutation" true (c1 = c2);
  match c1 with
  | [ (g1, _); (g2, _); (g3, _) ] ->
    Alcotest.(check bool) "highest probability first" true (g1 = b3);
    Alcotest.(check bool) "ties ordered by binding key" true
      (g2 = b1 && g3 = b2)
  | _ -> Alcotest.failf "expected 3 groups, got %d" (List.length c1)

let test_marginals_order_stable () =
  let a = [| 1; 2 |] and b = [| 2; 3 |] in
  let answers = [ mk_answer 0 0.5 [ b; a ]; mk_answer 1 0.5 [ a ] ] in
  let m = Uxsm_ptq.Ptq.marginals answers in
  match m with
  | [ (first, p1); (second, p2) ] ->
    (* lint: allow float-eq — 0.5 + 0.5 is exact in binary floating point *)
    Alcotest.(check bool) "higher mass first" true (first = a && p1 = 1.0);
    (* lint: allow float-eq — the marginal is the untouched input probability *)
    Alcotest.(check bool) "then by binding" true (second = b && p2 = 0.5)
  | _ -> Alcotest.failf "expected 2 marginals, got %d" (List.length m)

let test_components_order_stable () =
  let edges = [ (0, 0, 0.9); (1, 1, 0.8); (2, 2, 0.7); (0, 1, 0.5) ] in
  let g1 = Uxsm_assignment.Bipartite.create ~n_left:3 ~n_right:3 edges in
  let g2 = Uxsm_assignment.Bipartite.create ~n_left:3 ~n_right:3 (List.rev edges) in
  let comps g =
    List.map (fun (c : Uxsm_assignment.Partition.component) -> (c.lefts, c.rights))
      (Uxsm_assignment.Partition.components g)
  in
  Alcotest.(check bool) "components independent of edge order" true (comps g1 = comps g2);
  let tops g =
    List.map (fun (s : Uxsm_assignment.Murty.solution) -> (s.pairs, s.score))
      (Uxsm_assignment.Partition.top ~h:5 g)
  in
  Alcotest.(check bool) "top-h independent of edge order" true (tops g1 = tops g2)

let test_catalog_corpora_sorted () =
  let text =
    Uxsm_mapping.Serialize.mapping_set_to_string Fixtures.fig3_mset
  in
  let cat = Uxsm_server.Catalog.create ~exec:Uxsm_exec.Executor.sequential () in
  List.iter
    (fun name ->
      match
        Uxsm_server.Catalog.register cat ~name ~doc_seed:1
          (Uxsm_server.Protocol.From_mapping_set_text text)
      with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "register %s: %s" name e)
    [ "zeta"; "alpha"; "midway" ];
  Alcotest.(check (list string)) "corpora listed in name order"
    [ "alpha"; "midway"; "zeta" ]
    (List.map fst (Uxsm_server.Catalog.corpora cat))

let test_aggregate_distribution_sorted () =
  let ctx = Ptq_helpers.fig_ctx () in
  let q = Uxsm_twig.Pattern_parser.parse_exn "ORDER/SP" in
  let r = Uxsm_ptq.Aggregate.count ctx q in
  let rec sorted = function
    | (v1, p1) :: ((v2, p2) :: _ as rest) ->
      (p1 > p2 || (p1 = p2 && v1 < v2)) && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "distribution sorted by (probability desc, value asc)" true
    (sorted r.Uxsm_ptq.Aggregate.distribution)

let suite =
  [
    Alcotest.test_case "R1: top-level mutable state flagged" `Quick test_r1_positive;
    Alcotest.test_case "R1: safe constructs pass" `Quick test_r1_negative;
    Alcotest.test_case "R1: mutable record literal" `Quick test_r1_mutable_record;
    Alcotest.test_case "R1: global Random state" `Quick test_r1_random;
    Alcotest.test_case "R1: annotation suppresses" `Quick test_r1_suppression;
    Alcotest.test_case "R1: driver scope is a warning" `Quick test_r1_driver_severity;
    Alcotest.test_case "R2: unsorted Hashtbl.fold" `Quick test_r2_fold;
    Alcotest.test_case "R2: Hashtbl.iter warns" `Quick test_r2_iter;
    Alcotest.test_case "R2: float equality" `Quick test_r2_float_eq;
    Alcotest.test_case "R2: polymorphic compare as sort comparator" `Quick
      test_poly_compare;
    Alcotest.test_case "R3: catch-all handler" `Quick test_r3_catch_all;
    Alcotest.test_case "R3: Obj.magic" `Quick test_r3_obj_magic;
    Alcotest.test_case "R3: stdout print in lib" `Quick test_r3_stdout_print;
    Alcotest.test_case "R3: missing mli" `Quick test_r3_missing_mli;
    Alcotest.test_case "annotation grammar errors" `Quick test_bad_annotation;
    Alcotest.test_case "rule ids and line numbers" `Quick test_multi_rule_positions;
    Alcotest.test_case "parse error is a finding" `Quick test_parse_error;
    Alcotest.test_case "baseline grandfathers findings" `Quick test_baseline;
    Alcotest.test_case "json report and summary" `Quick test_json_report;
    Alcotest.test_case "regression: consolidate order-stable" `Quick
      test_consolidate_order_stable;
    Alcotest.test_case "regression: marginals order-stable" `Quick
      test_marginals_order_stable;
    Alcotest.test_case "regression: partition components order-stable" `Quick
      test_components_order_stable;
    Alcotest.test_case "regression: catalog corpora sorted" `Quick
      test_catalog_corpora_sorted;
    Alcotest.test_case "regression: aggregate distribution sorted" `Quick
      test_aggregate_distribution_sorted;
  ]
