(* Loadgen subsystem tests: profile codec and validation, deterministic
   sampling (identical seeds → identical request streams), A/B regression
   detection semantics, and the closed/open-loop runner end-to-end
   against an in-process TCP server. *)

module Json = Uxsm_util.Json
module Locks = Uxsm_util.Locks
module Obs = Uxsm_obs.Obs
module Bench_json = Uxsm_obs.Bench_json
module Loadgen = Uxsm_workload.Loadgen
module Profile = Loadgen.Profile
module Sampler = Loadgen.Sampler
module Ab = Loadgen.Ab
module Runner = Loadgen.Runner
module Server = Uxsm_server.Server

(* ------------------------------ profiles -------------------------- *)

let base_profile =
  {|{
    "id": "t",
    "corpora": [
      { "name": "a", "dataset": "D1" },
      { "name": "b", "dataset": "D2", "seed": 7 }
    ],
    "zipf_s": 1.0,
    "templates": [
      { "op": "query", "pattern": "Order//LineNo", "h": 5, "tau": 0.2, "weight": 2.0 },
      { "op": "query_topk", "pattern": "Order/DeliverTo/Contact/EMail", "h": 5, "k": 3 },
      { "op": "mappings", "h": 5 },
      { "op": "ping", "weight": 0.5 }
    ],
    "arrival": { "mode": "closed", "clients": 2 },
    "warmup_seconds": 0.0,
    "duration_seconds": 1.0,
    "plan_cache": "warm",
    "seed": 11
  }|}

let profile_exn s =
  match Profile.of_string s with
  | Ok p -> p
  | Error e -> Alcotest.failf "profile rejected: %s" e

let test_profile_roundtrip () =
  let p = profile_exn base_profile in
  Alcotest.(check string) "id" "t" p.Profile.p_id;
  Alcotest.(check int) "clients" 2 (Profile.clients p);
  Alcotest.(check string) "mode" "closed" (Profile.mode_name p);
  Alcotest.(check string) "plan cache" "warm" (Profile.plan_cache_name p);
  Alcotest.(check bool) "no target rps in closed mode" true (Profile.target_rps p = None);
  Alcotest.(check (list string)) "distinct ops, sorted"
    [ "mappings"; "ping"; "query"; "query_topk" ] (Profile.ops p);
  (* A bare "query" template with a "k" lands on the topk endpoint. *)
  Alcotest.(check bool) "k forces query_topk" true
    (List.exists (fun t -> t.Profile.t_op = "query_topk" && t.Profile.t_k = Some 3)
       p.Profile.p_templates);
  (* Encode → decode restores the profile exactly. *)
  match Profile.of_json (Profile.to_json p) with
  | Error e -> Alcotest.failf "re-decode rejected: %s" e
  | Ok p' -> Alcotest.(check bool) "to_json/of_json round-trip" true (p = p')

let test_profile_validation () =
  let patch field value =
    match Json.of_string base_profile with
    | Error e -> Alcotest.failf "base profile JSON: %s" e
    | Ok (Json.Assoc fields) ->
      Json.to_string (Json.Assoc ((field, value) :: List.remove_assoc field fields))
    | Ok _ -> Alcotest.fail "base profile is not an object"
  in
  let rejected what s =
    match Profile.of_string s with
    | Ok _ -> Alcotest.failf "%s: expected rejection" what
    | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: error is descriptive (%s)" what e)
        true
        (String.length e > 10)
  in
  rejected "not json" "nonsense";
  rejected "empty id" (patch "id" (Json.String " "));
  rejected "no corpora" (patch "corpora" (Json.List []));
  rejected "duplicate corpus names"
    (patch "corpora"
       (Json.List
          [
            Json.Assoc [ ("name", Json.String "a"); ("dataset", Json.String "D1") ];
            Json.Assoc [ ("name", Json.String "a"); ("dataset", Json.String "D2") ];
          ]));
  rejected "unknown dataset"
    (patch "corpora"
       (Json.List [ Json.Assoc [ ("name", Json.String "a"); ("dataset", Json.String "D99") ] ]));
  rejected "no templates" (patch "templates" (Json.List []));
  rejected "unparseable pattern"
    (patch "templates"
       (Json.List [ Json.Assoc [ ("op", Json.String "query"); ("pattern", Json.String "[[[") ] ]));
  rejected "query_topk without k"
    (patch "templates"
       (Json.List
          [ Json.Assoc [ ("op", Json.String "query_topk"); ("pattern", Json.String "A//B") ] ]));
  rejected "zero total weight"
    (patch "templates"
       (Json.List
          [ Json.Assoc [ ("op", Json.String "ping"); ("weight", Json.Float 0.0) ] ]));
  rejected "bad evaluator"
    (patch "templates"
       (Json.List
          [
            Json.Assoc
              [
                ("op", Json.String "query");
                ("pattern", Json.String "A//B");
                ("evaluator", Json.String "warp");
              ];
          ]));
  rejected "bad arrival mode" (patch "arrival" (Json.Assoc [ ("mode", Json.String "burst") ]));
  rejected "open mode needs positive rps"
    (patch "arrival"
       (Json.Assoc [ ("mode", Json.String "open"); ("rps", Json.Float 0.0) ]));
  rejected "zero clients"
    (patch "arrival"
       (Json.Assoc [ ("mode", Json.String "closed"); ("clients", Json.Int 0) ]));
  rejected "bad plan_cache" (patch "plan_cache" (Json.String "lukewarm"));
  rejected "zero duration" (patch "duration_seconds" (Json.Float 0.0));
  rejected "negative warmup" (patch "warmup_seconds" (Json.Float (-1.0)))

let test_committed_profiles_load () =
  List.iter
    (fun (path, mode, cache) ->
      match Profile.load path with
      | Error e -> Alcotest.failf "%s rejected: %s" path e
      | Ok p ->
        Alcotest.(check string) (path ^ " mode") mode (Profile.mode_name p);
        Alcotest.(check string) (path ^ " plan cache") cache (Profile.plan_cache_name p))
    [
      ("../bench/profiles/smoke.json", "closed", "warm");
      ("../bench/profiles/open_mix.json", "open", "cold");
    ]

(* ------------------------------ sampling -------------------------- *)

let test_sampler_deterministic () =
  let p = profile_exn base_profile in
  let draw stream n =
    let s = Sampler.create ~stream p in
    List.init n (fun _ ->
        let rq = Sampler.next s in
        (Json.to_string rq.Sampler.rq_body, Sampler.interarrival s ~rps:50.0))
  in
  (* The satellite guarantee: equal (seed, stream) → equal request and
     inter-arrival streams, byte for byte. *)
  Alcotest.(check bool) "identical seeds give identical streams" true
    (draw 0 200 = draw 0 200);
  Alcotest.(check bool) "stream 1 reproducible too" true (draw 1 200 = draw 1 200);
  Alcotest.(check bool) "distinct streams diverge" false
    (List.map fst (draw 0 200) = List.map fst (draw 1 200));
  let reseeded =
    Profile.of_json
      (match Profile.to_json p with
      | Json.Assoc fields -> Json.Assoc (("seed", Json.Int 999) :: List.remove_assoc "seed" fields)
      | j -> j)
  in
  (match reseeded with
  | Ok p' ->
    let s' = Sampler.create ~stream:0 p' in
    let other =
      List.init 200 (fun _ -> Json.to_string (Sampler.next s').Sampler.rq_body)
    in
    Alcotest.(check bool) "different seed diverges" false (List.map fst (draw 0 200) = other)
  | Error e -> Alcotest.failf "reseeded profile rejected: %s" e);
  List.iter
    (fun (_, gap) ->
      Alcotest.(check bool) "inter-arrival gaps are finite and non-negative" true
        (Float.is_finite gap && gap >= 0.0))
    (draw 0 200)

let test_sampler_zipf_popularity () =
  let p = profile_exn base_profile in
  let s = Sampler.create p in
  let counts = Hashtbl.create 4 in
  let total = 3000 in
  for _ = 1 to total do
    let rq = Sampler.next s in
    if rq.Sampler.rq_corpus <> "" then
      Hashtbl.replace counts rq.Sampler.rq_corpus
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts rq.Sampler.rq_corpus))
  done;
  let count c = Option.value ~default:0 (Hashtbl.find_opt counts c) in
  (* zipf_s = 1.0 over two corpora: rank 1 gets 2/3 of the corpus-targeted
     traffic in expectation. Loose bounds keep the test seed-robust. *)
  Alcotest.(check bool) "rank-1 corpus dominates" true (count "a" > count "b");
  Alcotest.(check bool) "rank-2 corpus still sampled" true (count "b" > 0);
  let ratio = float_of_int (count "a") /. float_of_int (max 1 (count "b")) in
  Alcotest.(check bool)
    (Printf.sprintf "ratio near 2 (got %.2f)" ratio)
    true
    (ratio > 1.4 && ratio < 2.8)

let test_sampler_request_shapes () =
  let p = profile_exn base_profile in
  let s = Sampler.create p in
  for _ = 1 to 100 do
    let rq = Sampler.next s in
    match rq.Sampler.rq_op with
    | "ping" -> Alcotest.(check string) "ping has no corpus" "" rq.Sampler.rq_corpus
    | "mappings" | "query" | "query_topk" -> (
      Alcotest.(check bool) "corpus-targeted" true (rq.Sampler.rq_corpus <> "");
      Alcotest.(check bool) "body names the corpus" true
        (Json.member "corpus" rq.Sampler.rq_body = Some (Json.String rq.Sampler.rq_corpus));
      match rq.Sampler.rq_op with
      | "query_topk" ->
        Alcotest.(check bool) "topk carries k" true
          (Json.member "k" rq.Sampler.rq_body <> None)
      | _ -> ())
    | op -> Alcotest.failf "unexpected sampled op %S" op
  done

(* ------------------------------ A/B diff -------------------------- *)

let view_of samples =
  Obs.reset ();
  let h = Obs.histogram "test.loadgen.ab" in
  List.iter (Obs.observe h) samples;
  Obs.histogram_view h

let mk_lg ?(profile = "p") ?(mode = "closed") ?(sent = 1000) ?(errors = 0) ~rps ~latency () =
  {
    Bench_json.lg_profile = profile;
    lg_mode = mode;
    lg_clients = 2;
    lg_target_rps = None;
    lg_warmup_seconds = 0.0;
    lg_window_seconds = 1.0;
    lg_plan_cache = "warm";
    lg_seed = 1;
    lg_sent = sent;
    lg_completed = sent - errors;
    lg_errors = errors;
    lg_overloaded = 0;
    lg_late = 0;
    lg_offered_rps = rps;
    lg_achieved_rps = rps;
    lg_latency = [ ("all", latency) ];
    lg_server = [ ("server.requests", sent) ];
  }

let compare_exn ~tolerance a b =
  match Ab.compare_loadgen ~tolerance a b with
  | Ok r -> r
  | Error e -> Alcotest.failf "comparison refused: %s" e

let test_ab_pass_and_regress () =
  let lat = view_of [ 0.001; 0.002; 0.004; 0.008 ] in
  let a = mk_lg ~rps:100.0 ~latency:lat () in
  (* Identical records: all deltas are zero, nothing regresses. *)
  let r = compare_exn ~tolerance:0.10 a a in
  Alcotest.(check bool) "self-compare passes" false (Ab.regressed r);
  List.iter
    (fun m -> Alcotest.(check (float 1e-9)) (m.Ab.ab_metric ^ " delta") 0.0 m.Ab.ab_delta)
    r.Ab.ab_metrics;
  Alcotest.(check int) "five metrics" 5 (List.length r.Ab.ab_metrics);
  Alcotest.(check bool) "report renders one line per metric" true
    (List.length (Ab.report_lines r) = 6);
  (* Throughput drop beyond tolerance trips the gate... *)
  let slow = mk_lg ~rps:89.0 ~latency:lat () in
  Alcotest.(check bool) "11% throughput drop regresses" true
    (Ab.regressed (compare_exn ~tolerance:0.10 a slow));
  (* ...but a gain never does, whatever its size. *)
  let fast = mk_lg ~rps:250.0 ~latency:lat () in
  Alcotest.(check bool) "improvement passes" false
    (Ab.regressed (compare_exn ~tolerance:0.10 a fast));
  (* Latency inflation regresses even at equal throughput. *)
  let slow_lat = mk_lg ~rps:100.0 ~latency:(view_of [ 0.1; 0.2; 0.4; 0.8 ]) () in
  let r = compare_exn ~tolerance:0.10 a slow_lat in
  Alcotest.(check bool) "latency inflation regresses" true (Ab.regressed r);
  Alcotest.(check bool) "the latency metric is the one flagged" true
    (List.exists (fun m -> m.Ab.ab_worse && m.Ab.ab_metric = "latency_p95") r.Ab.ab_metrics);
  (* Error-rate growth compares as an absolute fraction. *)
  let errs = mk_lg ~errors:200 ~rps:100.0 ~latency:lat () in
  let r = compare_exn ~tolerance:0.10 a errs in
  Alcotest.(check bool) "20% error rate regresses" true (Ab.regressed r);
  Alcotest.(check bool) "error_rate flagged" true
    (List.exists (fun m -> m.Ab.ab_worse && m.Ab.ab_metric = "error_rate") r.Ab.ab_metrics)

let test_ab_tolerance_boundary () =
  let lat = view_of [ 0.001; 0.002 ] in
  let a = mk_lg ~rps:100.0 ~latency:lat () in
  (* Exactly at tolerance passes: the gate is strict-inequality. *)
  let at = mk_lg ~rps:90.0 ~latency:lat () in
  Alcotest.(check bool) "delta == tolerance passes" false
    (Ab.regressed (compare_exn ~tolerance:0.10 a at));
  let just_over = mk_lg ~rps:89.9 ~latency:lat () in
  Alcotest.(check bool) "delta just over tolerance fails" true
    (Ab.regressed (compare_exn ~tolerance:0.10 a just_over));
  (* Zero tolerance means any drop at all fails and equality passes. *)
  Alcotest.(check bool) "zero tolerance, equal records pass" false
    (Ab.regressed (compare_exn ~tolerance:0.0 a a));
  Alcotest.(check bool) "zero tolerance, tiny drop fails" true
    (Ab.regressed (compare_exn ~tolerance:0.0 a (mk_lg ~rps:99.9 ~latency:lat ())))

let test_ab_mismatch_rejected () =
  let lat = view_of [ 0.001 ] in
  let a = mk_lg ~profile:"alpha" ~rps:100.0 ~latency:lat () in
  let b = mk_lg ~profile:"beta" ~rps:100.0 ~latency:lat () in
  (match Ab.compare_loadgen ~tolerance:0.1 a b with
  | Ok _ -> Alcotest.fail "cross-profile comparison must be refused"
  | Error e -> Alcotest.(check bool) "error names both profiles" true
      (String.length e > 0));
  let open_b = mk_lg ~mode:"open" ~rps:100.0 ~latency:lat () in
  (match Ab.compare_loadgen ~tolerance:0.1 a { open_b with Bench_json.lg_profile = "alpha" } with
  | Ok _ -> Alcotest.fail "cross-mode comparison must be refused"
  | Error _ -> ());
  match Ab.compare_loadgen ~tolerance:(-0.5) a a with
  | Ok _ -> Alcotest.fail "negative tolerance must be refused"
  | Error _ -> ()

let test_ab_pick () =
  let lat = view_of [ 0.001 ] in
  let wrap lg = Runner.record ~argv:[] lg in
  let bench =
    {
      Bench_json.r_git_rev = "deadbee";
      r_unix_time = 0.0;
      r_argv = [];
      r_jobs = 1;
      r_executor = "seq";
      r_experiments = [];
      r_kind = "bench";
      r_loadgen = None;
    }
  in
  let runs =
    [
      bench;
      wrap (mk_lg ~profile:"alpha" ~rps:10.0 ~latency:lat ());
      wrap (mk_lg ~profile:"beta" ~rps:20.0 ~latency:lat ());
      wrap (mk_lg ~profile:"alpha" ~rps:30.0 ~latency:lat ());
    ]
  in
  (* The last loadgen record wins; bench records are invisible to pick. *)
  (match Ab.pick runs with
  | Ok lg -> Alcotest.(check string) "last record" "alpha" lg.Bench_json.lg_profile
  | Error e -> Alcotest.failf "pick failed: %s" e);
  (match Ab.pick ~profile:"alpha" runs with
  | Ok lg ->
    Alcotest.(check (float 1e-9)) "last alpha record" 30.0 lg.Bench_json.lg_achieved_rps
  | Error e -> Alcotest.failf "pick alpha failed: %s" e);
  (match Ab.pick ~profile:"beta" runs with
  | Ok lg -> Alcotest.(check (float 1e-9)) "beta record" 20.0 lg.Bench_json.lg_achieved_rps
  | Error e -> Alcotest.failf "pick beta failed: %s" e);
  (match Ab.pick ~profile:"ghost" runs with
  | Ok _ -> Alcotest.fail "unknown profile must not pick"
  | Error _ -> ());
  match Ab.pick [ bench ] with
  | Ok _ -> Alcotest.fail "bench-only file must not pick"
  | Error _ -> ()

(* ------------------------------- runner --------------------------- *)

let start_server () =
  let srv = Server.create ~cache_entries:16 () in
  let port = ref 0 in
  let m = Locks.create ~name:"test.loadgen.ready" ~rank:Locks.rank_latch in
  let cond = Locks.cond () and up = ref false in
  let th =
    Thread.create
      (fun () ->
        Server.serve
          ~ready:(fun addrs ->
            Locks.lock m;
            (match addrs with
            | [ Unix.ADDR_INET (_, p) ] -> port := p
            | _ -> ());
            up := true;
            Locks.signal cond;
            Locks.unlock m)
          srv
          [ Server.Tcp ("127.0.0.1", 0) ])
      ()
  in
  Locks.lock m;
  while not !up do
    Locks.wait cond m
  done;
  Locks.unlock m;
  (srv, !port, th)

let runner_profile arrival =
  Printf.sprintf
    {|{
      "id": "e2e",
      "corpora": [ { "name": "c1", "dataset": "D1" } ],
      "templates": [
        { "op": "query", "pattern": "Order//LineNo", "h": 5, "tau": 0.2, "weight": 2.0 },
        { "op": "mappings", "h": 5 },
        { "op": "ping" }
      ],
      "arrival": %s,
      "warmup_seconds": 0.1,
      "duration_seconds": 0.4,
      "plan_cache": "warm",
      "seed": 3
    }|}
    arrival

let run_e2e arrival =
  let p = profile_exn (runner_profile arrival) in
  let srv, port, th = start_server () in
  let result = Runner.run p (Runner.Tcp ("127.0.0.1", port)) in
  Server.request_stop srv;
  Thread.join th;
  match result with
  | Error e -> Alcotest.failf "runner failed: %s" e
  | Ok lg -> lg

let check_common lg =
  Alcotest.(check string) "profile id recorded" "e2e" lg.Bench_json.lg_profile;
  Alcotest.(check bool) "sent some traffic" true (lg.Bench_json.lg_sent > 0);
  Alcotest.(check bool) "all sends answered" true
    (lg.Bench_json.lg_completed = lg.Bench_json.lg_sent);
  Alcotest.(check int) "no errors" 0 lg.Bench_json.lg_errors;
  Alcotest.(check bool) "window measured" true (lg.Bench_json.lg_window_seconds > 0.0);
  Alcotest.(check bool) "achieved throughput positive" true
    (lg.Bench_json.lg_achieved_rps > 0.0);
  (match List.assoc_opt "all" lg.Bench_json.lg_latency with
  | None -> Alcotest.fail "no merged latency histogram"
  | Some v ->
    Alcotest.(check int) "every completion observed" lg.Bench_json.lg_completed
      v.Obs.hv_count);
  Alcotest.(check bool) "server window captured" true
    (List.mem_assoc "server.requests" lg.Bench_json.lg_server);
  (* The record wraps into a run that passes the validator's checks and
     survives the JSONL codec. *)
  let run = Runner.record ~argv:[ "test" ] lg in
  (match Bench_json.check_run run with
  | Ok () -> ()
  | Error e -> Alcotest.failf "emitted record fails validation: %s" e);
  match Bench_json.run_of_string (Bench_json.run_to_string run) with
  | Error e -> Alcotest.failf "emitted record does not round-trip: %s" e
  | Ok run' -> (
    Alcotest.(check string) "kind survives" "loadgen" run'.Bench_json.r_kind;
    match run'.Bench_json.r_loadgen with
    | None -> Alcotest.fail "loadgen payload lost in round-trip"
    | Some lg' ->
      Alcotest.(check int) "sent survives" lg.Bench_json.lg_sent lg'.Bench_json.lg_sent;
      let count =
        match List.assoc_opt "all" lg'.Bench_json.lg_latency with
        | Some v -> v.Obs.hv_count
        | None -> 0
      in
      Alcotest.(check int) "histogram count survives" lg.Bench_json.lg_completed count)

let test_runner_closed_loop () =
  let lg = run_e2e {|{ "mode": "closed", "clients": 2 }|} in
  Alcotest.(check string) "closed mode" "closed" lg.Bench_json.lg_mode;
  Alcotest.(check int) "two clients" 2 lg.Bench_json.lg_clients;
  Alcotest.(check int) "closed loop is never late" 0 lg.Bench_json.lg_late;
  check_common lg;
  (* A record never regresses against itself. *)
  match Ab.compare_loadgen ~tolerance:0.0 lg lg with
  | Ok r -> Alcotest.(check bool) "self-AB passes at zero tolerance" false (Ab.regressed r)
  | Error e -> Alcotest.failf "self-AB refused: %s" e

let test_runner_open_loop () =
  let lg =
    run_e2e {|{ "mode": "open", "rps": 80.0, "clients": 2, "max_lateness_seconds": 0.5 }|}
  in
  Alcotest.(check string) "open mode" "open" lg.Bench_json.lg_mode;
  Alcotest.(check bool) "target rps recorded" true
    (lg.Bench_json.lg_target_rps = Some 80.0);
  check_common lg;
  Alcotest.(check bool) "offered rate in the target's vicinity" true
    (lg.Bench_json.lg_offered_rps > 8.0 && lg.Bench_json.lg_offered_rps < 400.0)

let test_runner_connection_refused () =
  let p = profile_exn (runner_profile {|{ "mode": "closed", "clients": 1 }|}) in
  (* Port 1 on localhost: nothing listens there. *)
  match Runner.run p (Runner.Tcp ("127.0.0.1", 1)) with
  | Ok _ -> Alcotest.fail "connecting to a dead port must fail"
  | Error e -> Alcotest.(check bool) "error mentions the failure" true (String.length e > 0)

let suite =
  [
    Alcotest.test_case "profile JSON round-trip" `Quick test_profile_roundtrip;
    Alcotest.test_case "profile validation names bad fields" `Quick test_profile_validation;
    Alcotest.test_case "committed profiles load" `Quick test_committed_profiles_load;
    Alcotest.test_case "sampler: equal seeds, equal streams" `Quick test_sampler_deterministic;
    Alcotest.test_case "sampler: zipfian corpus popularity" `Quick test_sampler_zipf_popularity;
    Alcotest.test_case "sampler: request shapes" `Quick test_sampler_request_shapes;
    Alcotest.test_case "ab: pass and regression detection" `Quick test_ab_pass_and_regress;
    Alcotest.test_case "ab: tolerance boundary is strict" `Quick test_ab_tolerance_boundary;
    Alcotest.test_case "ab: mismatched records refused" `Quick test_ab_mismatch_rejected;
    Alcotest.test_case "ab: pick finds the last matching record" `Quick test_ab_pick;
    Alcotest.test_case "runner: closed loop end-to-end" `Quick test_runner_closed_loop;
    Alcotest.test_case "runner: open loop end-to-end" `Quick test_runner_open_loop;
    Alcotest.test_case "runner: connection failure is an error" `Quick
      test_runner_connection_refused;
  ]
