(* Twig substrate tests: pattern parser round-trips, the match engine
   against an exhaustive reference, and the stack-based structural join
   against nested loops. *)

module Doc = Uxsm_xml.Doc
module Schema = Uxsm_schema.Schema
module Pattern = Uxsm_twig.Pattern
module Parser = Uxsm_twig.Pattern_parser
module Matcher = Uxsm_twig.Matcher
module Binding = Uxsm_twig.Binding
module Structural_join = Uxsm_twig.Structural_join

let table3_queries =
  [
    "Order/DeliverTo/Address[./City][./Country]/Street";
    "Order/DeliverTo/Contact/EMail";
    "Order/DeliverTo[./Address/City]/Contact/EMail";
    "Order/POLine[./LineNo]//UP";
    "Order/POLine[./LineNo][.//UP]/Quantity";
    "Order/POLine[./BPID][./LineNo][.//UP]/Quantity";
    "Order[./DeliverTo//Street]/POLine[.//BPID][.//UP]/Quantity";
    "Order[./DeliverTo[.//EMail]//Street]/POLine[.//UP]/Quantity";
    "Order[./Buyer/Contact]/POLine[.//BPID]/Quantity";
    "Order[./Buyer/Contact][./DeliverTo//City]//BPID";
  ]

let test_parser_round_trip () =
  List.iter
    (fun q ->
      match Parser.parse q with
      | Error e -> Alcotest.failf "parse %s: %s" q e
      | Ok p -> Alcotest.(check string) q q (Pattern.to_string p))
    table3_queries

let test_parser_axes_and_values () =
  let p = Parser.parse_exn "//IP//ICN" in
  Alcotest.(check bool) "descendant root" true (p.Pattern.axis = Pattern.Descendant);
  Alcotest.(check int) "two nodes" 2 (Pattern.size p);
  let p2 = Parser.parse_exn "Order/City=\"HK\"" in
  (match (Pattern.nodes p2 : Pattern.node list) with
  | [ _; city ] -> Alcotest.(check (option string)) "value" (Some "HK") city.Pattern.value
  | _ -> Alcotest.fail "expected 2 nodes");
  match Parser.parse "Order/" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing slash should not parse"

let test_matcher_fig2 () =
  let doc = Fixtures.fig2_doc in
  let q = Parser.parse_exn "//BP//BCN" in
  (match Matcher.matches q doc with
  | [ b ] -> Alcotest.(check string) "Cathy" "Cathy" (Doc.text doc b.(1))
  | l -> Alcotest.failf "expected 1 match, got %d" (List.length l));
  let q2 = Parser.parse_exn "Order/BP[./BOC/BCN]/ROC/RCN" in
  Alcotest.(check int) "predicate query matches once" 1 (Matcher.count q2 doc);
  let q3 = Parser.parse_exn "//BCN=\"Cathy\"" in
  Alcotest.(check int) "value predicate hits" 1 (Matcher.count q3 doc);
  let q4 = Parser.parse_exn "//BCN=\"Bob\"" in
  Alcotest.(check int) "value predicate misses" 0 (Matcher.count q4 doc)

let attr_doc =
  let open Uxsm_xml.Tree in
  Doc.of_tree
    (element "r"
       [
         element ~attrs:[ ("id", "1"); ("kind", "x") ] "a" [ leaf "b" "t1" ];
         element ~attrs:[ ("id", "2") ] "a" [ leaf "b" "t2" ];
       ])

let test_wildcards_and_attrs () =
  let q = Parser.parse_exn "r/*/b" in
  Alcotest.(check int) "wildcard step" 2 (Matcher.count q attr_doc);
  let q2 = Parser.parse_exn "//a[@id=\"2\"]/b" in
  (match Matcher.matches q2 attr_doc with
  | [ b ] -> Alcotest.(check string) "attr predicate selects" "t2" (Doc.text attr_doc b.(1))
  | l -> Alcotest.failf "expected 1 match, got %d" (List.length l));
  let q3 = Parser.parse_exn "//a[@id=\"1\"][@kind=\"x\"]" in
  Alcotest.(check int) "conjunction of attrs" 1 (Matcher.count q3 attr_doc);
  let q4 = Parser.parse_exn "//a[@id=\"1\"][@kind=\"y\"]" in
  Alcotest.(check int) "failing attr" 0 (Matcher.count q4 attr_doc);
  let q5 = Parser.parse_exn "//*" in
  Alcotest.(check int) "bare wildcard binds every element" 5 (Matcher.count q5 attr_doc);
  (* all engines agree on attr/wildcard patterns *)
  List.iter
    (fun qs ->
      let q = Parser.parse_exn qs in
      let m = Matcher.matches q attr_doc in
      Alcotest.(check bool) (qs ^ ": join agrees") true
        (Uxsm_twig.Join_matcher.matches q attr_doc = m);
      Alcotest.(check bool) (qs ^ ": twiglist agrees") true
        (Uxsm_twig.Twiglist.matches q attr_doc = m))
    [ "r/*/b"; "//a[@id=\"2\"]/b"; "//*"; "r[./*/b]//b" ]

let test_parser_wildcard_attr_round_trip () =
  List.iter
    (fun qs ->
      match Parser.parse qs with
      | Error e -> Alcotest.failf "parse %s: %s" qs e
      | Ok p -> Alcotest.(check string) qs qs (Pattern.to_string p))
    [ "r/*/b"; "//a[@id=\"2\"]/b"; "//*[@k=\"v\"]"; "a[@x=\"1\"][./b]//c" ]

(* Exhaustive reference: try every assignment of pattern nodes to document
   nodes and keep the consistent ones. Only usable on tiny inputs. *)
let reference_matches (p : Pattern.t) doc =
  let nodes = Array.of_list (Pattern.nodes p) in
  let n = Array.length nodes in
  (* parent link and axis for each pattern node *)
  let parent = Array.make n (-1) in
  let axis = Array.make n Pattern.Child in
  let next = ref 0 in
  let rec walk (node : Pattern.node) self =
    List.iter
      (fun (a, c) ->
        incr next;
        let cid = !next in
        parent.(cid) <- self;
        axis.(cid) <- a;
        walk c cid)
      (Pattern.branches node)
  in
  walk p.Pattern.root 0;
  let ok (b : Binding.t) =
    let structural i =
      if i = 0 then
        match p.Pattern.axis with
        | Pattern.Child -> b.(0) = Doc.root doc
        | Pattern.Descendant -> true
      else
        match axis.(i) with
        | Pattern.Child -> Doc.is_parent doc b.(parent.(i)) b.(i)
        | Pattern.Descendant -> Doc.is_ancestor doc b.(parent.(i)) b.(i)
    in
    let local i =
      (Pattern.is_wildcard nodes.(i)
      || String.equal (nodes.(i)).Pattern.label (Doc.label doc b.(i)))
      && (match (nodes.(i)).Pattern.value with
         | None -> true
         | Some v -> String.equal v (Doc.text doc b.(i)))
      && List.for_all
           (fun (k, want) -> Doc.attr doc b.(i) k = Some want)
           (nodes.(i)).Pattern.attrs
    in
    List.for_all (fun i -> structural i && local i) (List.init n Fun.id)
  in
  let out = ref [] in
  let b = Array.make n 0 in
  let rec assign i =
    if i = n then begin
      if ok b then out := Array.copy b :: !out
    end
    else
      for v = 0 to Doc.size doc - 1 do
        b.(i) <- v;
        assign (i + 1)
      done
  in
  assign 0;
  List.sort Binding.compare !out

let prop_matcher_vs_reference =
  QCheck.Test.make ~count:150 ~name:"matcher agrees with exhaustive reference"
    QCheck.(pair (int_range 1 1000000) (int_range 2 8))
    (fun (seed, n) ->
      let prng = Uxsm_util.Prng.create seed in
      let schema = Fixtures.random_schema prng ~n in
      let doc = Fixtures.random_doc prng schema in
      let pattern = Fixtures.random_pattern prng schema in
      if Pattern.size pattern > 4 || Doc.size doc > 10 then true (* keep reference tractable *)
      else Matcher.matches pattern doc = reference_matches pattern doc)

let prop_join_vs_nested_loops =
  QCheck.Test.make ~count:150 ~name:"stack join = nested-loop join"
    QCheck.(pair (int_range 1 1000000) (int_range 3 40))
    (fun (seed, n) ->
      let prng = Uxsm_util.Prng.create seed in
      let schema = Fixtures.random_schema prng ~n in
      let doc = Fixtures.random_doc prng schema in
      let sample () =
        List.filter (fun _ -> Uxsm_util.Prng.bool prng) (List.init (Doc.size doc) Fun.id)
      in
      let left = sample () and right = sample () in
      let pair_compare (a1, d1) (a2, d2) =
        match Int.compare a1 a2 with 0 -> Int.compare d1 d2 | c -> c
      in
      let check axis =
        let got =
          List.sort pair_compare (Structural_join.node_pairs doc ~axis ~left ~right)
        in
        let expect =
          List.concat_map
            (fun a ->
              List.filter_map
                (fun d ->
                  let rel =
                    match axis with
                    | Pattern.Child -> Doc.is_parent doc a d
                    | Pattern.Descendant -> Doc.is_ancestor doc a d
                  in
                  if rel then Some (a, d) else None)
                right)
            left
          |> List.sort pair_compare
        in
        got = expect
      in
      check Pattern.Child && check Pattern.Descendant)

let prop_parser_round_trip_random =
  QCheck.Test.make ~count:150 ~name:"parse (to_string p) = p"
    QCheck.(pair (int_range 1 1000000) (int_range 2 25))
    (fun (seed, n) ->
      let prng = Uxsm_util.Prng.create seed in
      let schema = Fixtures.random_schema prng ~n in
      let p = Fixtures.random_pattern prng schema in
      match Parser.parse (Pattern.to_string p) with
      | Ok p' -> Pattern.equal p p'
      | Error _ -> false)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    Alcotest.test_case "Table III queries round-trip" `Quick test_parser_round_trip;
    Alcotest.test_case "parser axes and values" `Quick test_parser_axes_and_values;
    Alcotest.test_case "matcher on Figure 2" `Quick test_matcher_fig2;
    Alcotest.test_case "wildcards and attribute predicates" `Quick test_wildcards_and_attrs;
    Alcotest.test_case "wildcard/attr parser round trip" `Quick test_parser_wildcard_attr_round_trip;
    q prop_matcher_vs_reference;
    q prop_join_vs_nested_loops;
    q prop_parser_round_trip_random;
  ]
