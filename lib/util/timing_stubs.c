/* Monotonic clock source for Uxsm_util.Timing.now_mono.
 *
 * Every elapsed-time measurement in the repo goes through this one
 * function: CLOCK_MONOTONIC is immune to NTP steps and manual clock
 * changes, which would otherwise corrupt durations recorded into the
 * committed BENCH_<rev>.json trajectory mid-run. Unix.gettimeofday
 * remains in use only for calendar timestamps (record stamping). */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

#ifdef _WIN32
#include <windows.h>

CAMLprim value uxsm_timing_monotonic_now(value unit)
{
  LARGE_INTEGER freq, count;
  QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&count);
  return caml_copy_double((double)count.QuadPart / (double)freq.QuadPart);
}

#else

CAMLprim value uxsm_timing_monotonic_now(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
}

#endif
