type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* ------------------------------ emitter --------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_literal f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_literal f)
  | String s -> escape_string buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun k item ->
        if k > 0 then Buffer.add_char buf ',';
        emit buf item)
      items;
    Buffer.add_char buf ']'
  | Assoc fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun k (key, value) ->
        if k > 0 then Buffer.add_char buf ',';
        escape_string buf key;
        Buffer.add_char buf ':';
        emit buf value)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* ------------------------------ parser ---------------------------- *)

exception Parse_error of string

type cursor = {
  text : string;
  mutable pos : int;
}

let fail cur fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (Printf.sprintf "at offset %d: %s" cur.pos s))) fmt

let peek cur = if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let rec go () =
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      go ()
    | _ -> ()
  in
  go ()

let expect cur c =
  match peek cur with
  | Some got when got = c -> advance cur
  | Some got -> fail cur "expected %C, found %C" c got
  | None -> fail cur "expected %C, found end of input" c

let literal cur word value =
  let n = String.length word in
  if cur.pos + n <= String.length cur.text && String.sub cur.text cur.pos n = word then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur "expected %s" word

(* Add code point [u] to [buf] as UTF-8. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
      advance cur;
      (match peek cur with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        if cur.pos + 4 >= String.length cur.text then fail cur "truncated \\u escape";
        let hex = String.sub cur.text (cur.pos + 1) 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | Some u ->
          cur.pos <- cur.pos + 4;
          add_utf8 buf u
        | None -> fail cur "bad \\u escape %S" hex)
      | Some c -> fail cur "bad escape \\%C" c
      | None -> fail cur "unterminated escape");
      advance cur;
      go ())
    | Some c ->
      advance cur;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_float = ref false in
  let rec go () =
    match peek cur with
    | Some ('0' .. '9' | '-' | '+') ->
      advance cur;
      go ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance cur;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub cur.text start (cur.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail cur "bad number %S" s
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      (* Out of int range: fall back to float. *)
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail cur "bad number %S" s)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> String (parse_string cur)
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      List []
    end
    else begin
      let items = ref [ parse_value cur ] in
      let rec go () =
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          items := parse_value cur :: !items;
          go ()
        | Some ']' -> advance cur
        | _ -> fail cur "expected ',' or ']'"
      in
      go ();
      List (List.rev !items)
    end
  | Some '{' ->
    advance cur;
    let field () =
      skip_ws cur;
      let key = parse_string cur in
      skip_ws cur;
      expect cur ':';
      (key, parse_value cur)
    in
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Assoc []
    end
    else begin
      let fields = ref [ field () ] in
      let rec go () =
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          fields := field () :: !fields;
          go ()
        | Some '}' -> advance cur
        | _ -> fail cur "expected ',' or '}'"
      in
      go ();
      Assoc (List.rev !fields)
    end
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur "unexpected character %C" c

let of_string text =
  let cur = { text; pos = 0 } in
  try
    let v = parse_value cur in
    skip_ws cur;
    match peek cur with
    | None -> Ok v
    | Some c -> Error (Printf.sprintf "at offset %d: trailing %C after value" cur.pos c)
  with Parse_error msg -> Error msg

(* ----------------------------- accessors -------------------------- *)

let member key = function
  | Assoc fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int = function
  | Int i -> Some i
  | _ -> None

let to_list = function
  | List l -> Some l
  | _ -> None

let to_assoc = function
  | Assoc a -> Some a
  | _ -> None

let to_string_opt = function
  | String s -> Some s
  | _ -> None
