external now_mono : unit -> float = "uxsm_timing_monotonic_now"

let time f =
  let t0 = now_mono () in
  let x = f () in
  let t1 = now_mono () in
  (x, t1 -. t0)

let time_n ?(warmup = 1) n f =
  if n <= 0 then invalid_arg "Timing.time_n: n must be positive";
  for _ = 1 to warmup do
    ignore (f ())
  done;
  let t0 = now_mono () in
  for _ = 1 to n do
    ignore (f ())
  done;
  let t1 = now_mono () in
  (t1 -. t0) /. float_of_int n

let repeat_until ~min_runs ~min_seconds f =
  let t0 = now_mono () in
  let rec loop runs =
    ignore (f ());
    let elapsed = now_mono () -. t0 in
    if runs + 1 >= min_runs && elapsed >= min_seconds then elapsed /. float_of_int (runs + 1)
    else loop (runs + 1)
  in
  loop 0
