(** Minimal JSON tree, emitter and parser.

    The benchmark harness serializes machine-readable run records
    ([BENCH_<rev>.json]) with this module, and tests parse them back; no
    external JSON dependency is used. The representation distinguishes
    integers from floats so counter values survive a round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialization. Floats are printed with enough
    digits to round-trip; non-finite floats are emitted as [null] since JSON
    cannot represent them. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing garbage
    is an error). Numbers without [.], [e] or [E] parse as {!Int}. *)

val member : string -> t -> t option
(** [member key (Assoc ...)] looks a field up; [None] on missing keys or
    non-objects. *)

val to_float : t -> float option
(** Numeric accessor: accepts both {!Int} and {!Float}. *)

val to_int : t -> int option
val to_list : t -> t list option
val to_assoc : t -> (string * t) list option
val to_string_opt : t -> string option
