(* Ranked locks and the runtime lock-order witness. See locks.mli for the
   discipline and DESIGN.md §15 for the rank table. This module is the
   one place in the repo allowed to touch raw [Mutex]/[Condition] (the
   [raw-mutex] lint rule exempts it): everything else goes through [t]. *)

type mode =
  | Off
  | Count
  | Raise

exception Order_violation of string

type t = {
  l_id : int;
  l_name : string;
  l_rank : int;
  l_mutex : Mutex.t;
}

let next_id = Atomic.make 0

let create ~name ~rank =
  if rank <= 0 then invalid_arg "Locks.create: rank must be positive";
  { l_id = Atomic.fetch_and_add next_id 1; l_name = name; l_rank = rank;
    l_mutex = Mutex.create () }

let name l = l.l_name
let rank l = l.l_rank

(* Canonical ranks. The issue sketch ordered mailboxes below the dataset
   caches; the measured acquisition chains (catalog.shard → dataset.* →
   exec.pool[try] → exec.worker) force the mailboxes to be the innermost
   blocking rank instead — see DESIGN.md §15 for the chain inventory. *)
let rank_pool = 10
let rank_catalog_map = 14
let rank_shard = 20
let rank_queue = 24
let rank_conn_write = 30
let rank_dataset_mset = 40
let rank_dataset_matching = 44
let rank_loadgen = 50
let rank_latch = 70
let rank_worker_mailbox = 80
let rank_registry = 90

(* ------------------------------ witness ----------------------------- *)

let mode_of_env () =
  match Sys.getenv_opt "UXSM_LOCK_WITNESS" with
  | None -> Off
  | Some v -> (
    match String.trim (String.lowercase_ascii v) with
    | "" | "0" | "off" -> Off
    | "raise" -> Raise
    | _ -> Count)

let current_mode = Atomic.make (mode_of_env ())
let mode () = Atomic.get current_mode
let set_mode m = Atomic.set current_mode m

let violation_count = Atomic.make 0
let violations () = Atomic.get violation_count
let reset_violations () = Atomic.set violation_count 0

let violation_hook : (string -> unit) Atomic.t = Atomic.make (fun (_ : string) -> ())
let set_violation_hook f = Atomic.set violation_hook f

(* One held-entry stack per (domain, sys-thread): the issue asked for a
   domain-local stack, but the server runs several sys-threads inside the
   main domain (readers, dispatcher) and their interleaved acquisitions
   would corrupt a per-domain stack — so the key is the pair. Stacks are
   only ever pushed/popped by their owning thread; the guard protects the
   table itself. Entries are (lock id, rank, name), innermost first. *)
let stacks_guard = Mutex.create ()

(* lint: allow domain-unsafe — per-thread stack table, looked up under stacks_guard; each stack is touched only by its owning thread *)
let stacks : (int * int, (int * int * string) list ref) Hashtbl.t = Hashtbl.create 64

let my_stack () =
  let key = ((Domain.self () :> int), Thread.id (Thread.self ())) in
  Mutex.lock stacks_guard;
  let r =
    match Hashtbl.find_opt stacks key with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add stacks key r;
      r
  in
  Mutex.unlock stacks_guard;
  r

let held () =
  match mode () with
  | Off -> []
  | Count | Raise -> List.map (fun (_, r, n) -> (n, r)) !(my_stack ())

let report msg raise_it =
  Atomic.incr violation_count;
  (Atomic.get violation_hook) msg;
  if raise_it then raise (Order_violation msg)

(* The order check runs before the blocking [Mutex.lock]: in [Raise] mode
   an inversion surfaces as an exception at the acquisition site rather
   than as a wedged test run. *)
let check_order stack l ~raise_it =
  match List.find_opt (fun (_, r, _) -> r >= l.l_rank) !stack with
  | None -> ()
  | Some (_, hr, hn) ->
    report
      (Printf.sprintf
         "lock-order violation: acquiring %s (rank %d) while holding %s (rank %d)"
         l.l_name l.l_rank hn hr)
      raise_it

let push stack l = stack := (l.l_id, l.l_rank, l.l_name) :: !stack

let pop stack l =
  let rec remove = function
    | [] -> []
    | (id, _, _) :: rest when id = l.l_id -> rest
    | e :: rest -> e :: remove rest
  in
  stack := remove !stack

let lock l =
  (match mode () with
  | Off -> Mutex.lock l.l_mutex
  | m ->
    let st = my_stack () in
    check_order st l ~raise_it:(m = Raise);
    Mutex.lock l.l_mutex;
    push st l)

let unlock l =
  (match mode () with
  | Off -> ()
  | Count | Raise -> pop (my_stack ()) l);
  Mutex.unlock l.l_mutex

(* No order check: a non-blocking acquire cannot be the blocking edge of
   a deadlock cycle. On success the lock still joins the stack, so later
   blocking acquisitions are checked against it. *)
let try_lock l =
  if Mutex.try_lock l.l_mutex then begin
    (match mode () with
    | Off -> ()
    | Count | Raise -> push (my_stack ()) l);
    true
  end
  else false

let with_lock l f =
  lock l;
  Fun.protect ~finally:(fun () -> unlock l) f

(* --------------------------- conditions ----------------------------- *)

type cond = Condition.t

let cond () = Condition.create ()

(* Waiting re-acquires [l] when signalled; if [l] is not the innermost
   held lock, that re-acquisition happens beneath a higher held rank —
   the same inversion [lock] guards against — so the witness requires
   top-of-stack. The stack is left unchanged across the wait: it is
   thread-private and the thread is blocked for the whole gap. *)
let wait c l =
  (match mode () with
  | Off -> ()
  | m -> (
    match !(my_stack ()) with
    | (id, _, _) :: _ when id = l.l_id -> ()
    | (_, hr, hn) :: _ ->
      report
        (Printf.sprintf
           "lock-order violation: waiting on %s (rank %d) while %s (rank %d) is held \
            innermost"
           l.l_name l.l_rank hn hr)
        (m = Raise)
    | [] ->
      report
        (Printf.sprintf "lock-order violation: waiting on %s without holding it" l.l_name)
        (m = Raise)));
  Condition.wait c l.l_mutex

let signal = Condition.signal
let broadcast = Condition.broadcast
