let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty list";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = List.sort Float.compare xs in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let idx = max 0 (min (n - 1) (rank - 1)) in
  arr.(idx)

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: xs -> List.fold_left max x xs

let histogram ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  match xs with
  | [] -> [||]
  | _ ->
    let lo = minimum xs and hi = maximum xs in
    let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
    let counts = Array.make bins 0 in
    let assign x =
      let i = int_of_float ((x -. lo) /. width) in
      let i = max 0 (min (bins - 1) i) in
      counts.(i) <- counts.(i) + 1
    in
    List.iter assign xs;
    Array.mapi
      (fun i c ->
        let b_lo = lo +. (float_of_int i *. width) in
        (b_lo, b_lo +. width, c))
      counts
