(** Wall-clock timing helpers used by the benchmark harness and the CLI.

    All elapsed-time measurement is monotonic: an NTP step or manual clock
    change mid-run cannot corrupt a duration. Use [Unix.gettimeofday] /
    [Unix.time] only for calendar {e timestamps} (e.g. stamping a bench
    record), never for differences. *)

val now_mono : unit -> float
(** Seconds on the system's monotonic clock, from an arbitrary epoch: only
    differences between two [now_mono] readings are meaningful. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    monotonic seconds. *)

val time_n : ?warmup:int -> int -> (unit -> 'a) -> float
(** [time_n ?warmup n f] runs [f] [warmup] times (default 1) unmeasured, then
    [n] times measured, and returns the mean seconds per run. *)

val repeat_until : min_runs:int -> min_seconds:float -> (unit -> 'a) -> float
(** [repeat_until ~min_runs ~min_seconds f] keeps running [f] until both at
    least [min_runs] runs have happened and at least [min_seconds] wall time
    has elapsed; returns mean seconds per run. Keeps fast benches precise and
    slow benches bounded. *)
