(** Ranked, named mutexes with an optional runtime lock-order witness.

    Every lock in this repo is created through this module with a {e name}
    (for diagnostics) and an integer {e rank}. The process-wide discipline
    is: a thread may only block on a lock whose rank is strictly greater
    than every rank it already holds. Acquisition in ascending rank order
    makes a cycle in the waits-for graph impossible, so the discipline
    rules out deadlock by construction. The static analyzer
    ([tools/lint], rule [lock-order]) proves the discipline over the call
    graph; the runtime witness below checks it on real executions — the
    two detectors are designed to catch the same bug independently.

    The canonical rank order (documented with rationale in DESIGN.md §15):

    {ul
    {- 10 [exec.pool] — warm-pool growth/submission/shutdown}
    {- 14 [catalog.map] — corpus-name → shard map}
    {- 20 [catalog.shard] — per-corpus artifact cache and builds}
    {- 24 [server.queue] — bounded admission queue}
    {- 30 [server.conn] — per-connection write serialization}
    {- 40 [dataset.mset] — memoized paper-dataset mapping sets}
    {- 44 [dataset.matching] — memoized paper-dataset matchings}
    {- 50 [loadgen.outstanding] — open-loop in-flight request table}
    {- 70 [latch] — one-shot startup/ready latches (drivers, tests)}
    {- 80 [exec.worker] — per-worker mailbox (innermost: taken during
       fan-out, which can happen under catalog and dataset locks)}
    {- 90 [obs.registry] — metrics handle registry (leaf)}}

    {b Witness.} When [UXSM_LOCK_WITNESS] is set (any value but [0]; the
    value [raise] selects {!Raise}), every thread keeps a stack of the
    ranks it holds. A blocking acquisition that breaks ascending order
    counts a violation (mirrored into the [locks.order_violations] Obs
    counter via {!set_violation_hook}) and, under {!Raise}, raises
    {!Order_violation} {e before} blocking — so a test run surfaces the
    inversion instead of deadlocking on it. With the witness off, lock
    operations cost one extra atomic load over a raw [Mutex]. *)

type t
(** A named, ranked mutual-exclusion lock. *)

val create : name:string -> rank:int -> t
(** [create ~name ~rank] makes a fresh unlocked lock. [rank] must be
    positive. Prefer the [rank_*] constants below; a new lock class gets a
    new constant and a DESIGN.md §15 row, not an ad-hoc number. *)

val name : t -> string
val rank : t -> int

val lock : t -> unit
(** Blocking acquire. Under the witness, checks rank order against the
    calling thread's held stack first ({!Raise} mode raises before
    blocking). Not re-entrant, as with [Mutex.lock]. *)

val unlock : t -> unit

val try_lock : t -> bool
(** Non-blocking acquire; [true] on success. A [try_lock] is exempt from
    the order check — it cannot contribute the blocking edge of a
    deadlock cycle — but on success the lock {e does} join the held stack
    and constrains later blocking acquisitions. This is the submission
    path of [Uxsm_exec.Executor]: fan-out under a catalog or dataset lock
    is legal precisely because the pool lock is only ever tried, never
    waited for. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** [with_lock l f] runs [f ()] with [l] held; the lock is released on
    return and on raise. *)

(** {1 Condition variables}

    Conditions pair with a specific lock at each wait. Under the witness,
    waiting requires the lock to be the {e innermost} held lock: waiting
    on an outer lock would re-acquire it beneath a higher-held rank. *)

type cond

val cond : unit -> cond
val wait : cond -> t -> unit
(** [wait c l] atomically releases [l] and blocks until signalled, then
    re-acquires [l]. The caller must hold [l]. *)

val signal : cond -> unit
val broadcast : cond -> unit

(** {1 Canonical ranks} *)

val rank_pool : int
val rank_catalog_map : int
val rank_shard : int
val rank_queue : int
val rank_conn_write : int
val rank_dataset_mset : int
val rank_dataset_matching : int
val rank_loadgen : int
val rank_latch : int
val rank_worker_mailbox : int
val rank_registry : int

(** {1 Witness control} *)

type mode =
  | Off  (** no tracking; the default without [UXSM_LOCK_WITNESS] *)
  | Count  (** track stacks, count violations, never raise *)
  | Raise  (** as [Count], plus raise {!Order_violation} at the site *)

exception Order_violation of string

val mode : unit -> mode

val set_mode : mode -> unit
(** Programmatic override of the [UXSM_LOCK_WITNESS] environment choice;
    tests use [set_mode Raise] around a scenario. Takes effect for
    acquisitions that begin after the call. *)

val violations : unit -> int
(** Total order violations observed since start (or {!reset_violations}),
    across all threads and modes. *)

val reset_violations : unit -> unit

val set_violation_hook : (string -> unit) -> unit
(** [set_violation_hook f] has every violation also call [f message];
    [Uxsm_obs.Obs] installs a hook at load time that bumps the
    [locks.order_violations] counter so services expose the witness
    through their normal stats surface. The hook runs with the violation
    already counted and must not itself take ranked locks. *)

val held : unit -> (string * int) list
(** The calling thread's held (name, rank) stack, innermost first. Empty
    when the witness is off; for tests and diagnostics. *)
