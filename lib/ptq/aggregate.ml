module Doc = Uxsm_xml.Doc
module Pattern = Uxsm_twig.Pattern
module Binding = Uxsm_twig.Binding

type t = {
  per_mapping : (int * float * float option) list;
  distribution : (float * float) list;
  undefined_mass : float;
  expected : float option;
}

(* The block tree accelerates aggregates exactly as it does plain PTQs. *)
let answers ctx pattern = Ptq.query ctx pattern

let numeric_values ctx ~node (bindings : Binding.t list) =
  List.filter_map
    (fun (b : Binding.t) ->
      if b.(node) < 0 then None
      else
        float_of_string_opt (Doc.text (Ptq.source_doc ctx) b.(node)))
    bindings

let build per_mapping =
  let tbl : (float, float) Hashtbl.t = Hashtbl.create 16 in
  let undefined = ref 0.0 in
  List.iter
    (fun (_, p, v) ->
      match v with
      | Some v ->
        let prev = try Hashtbl.find tbl v with Not_found -> 0.0 in
        Hashtbl.replace tbl v (prev +. p)
      | None -> undefined := !undefined +. p)
    per_mapping;
  let distribution =
    Hashtbl.fold (fun v p acc -> (v, p) :: acc) tbl []
    |> List.sort (fun (v1, p1) (v2, p2) ->
           (* Values are unique table keys; breaking probability ties on
              them keeps the distribution order independent of hash
              traversal. *)
           match Float.compare p2 p1 with
           | 0 -> Float.compare v1 v2
           | c -> c)
  in
  let defined_mass = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 distribution in
  let expected =
    if defined_mass <= 0.0 then None
    else
      Some
        (List.fold_left (fun acc (v, p) -> acc +. (v *. p)) 0.0 distribution /. defined_mass)
  in
  { per_mapping; distribution; undefined_mass = !undefined; expected }

let eval ctx pattern aggregate =
  build
    (List.map
       (fun (a : Ptq.answer) -> (a.mapping_id, a.probability, aggregate a.bindings))
       (answers ctx pattern))

let count ctx pattern =
  eval ctx pattern (fun bindings -> Some (float_of_int (List.length bindings)))

let fold_values f init ctx ~node pattern =
  eval ctx pattern (fun bindings ->
      match numeric_values ctx ~node bindings with
      | [] -> None
      | vs -> Some (List.fold_left f init vs))

let sum ctx ~node pattern =
  eval ctx pattern (fun bindings ->
      Some (List.fold_left ( +. ) 0.0 (numeric_values ctx ~node bindings)))

let minimum ctx ~node pattern = fold_values min infinity ctx ~node pattern
let maximum ctx ~node pattern = fold_values max neg_infinity ctx ~node pattern

let average ctx ~node pattern =
  eval ctx pattern (fun bindings ->
      match numeric_values ctx ~node bindings with
      | [] -> None
      | vs -> Some (List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs)))
