module Schema = Uxsm_schema.Schema
module Pattern = Uxsm_twig.Pattern

let contains_ci hay needle =
  let hay = String.lowercase_ascii hay and needle = String.lowercase_ascii needle in
  let nh = String.length hay and nn = String.length needle in
  nn = 0
  ||
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let element_candidates schema term =
  List.filter (fun e -> contains_ci (Schema.label schema e) term) (Schema.elements schema)

let lca schema elems =
  let rec ancestors e acc =
    match Schema.parent schema e with
    | None -> e :: acc
    | Some p -> ancestors p (e :: acc)
  in
  match elems with
  | [] -> Schema.root schema
  | first :: rest ->
    (* Common prefix of root-to-element chains. *)
    let chains = List.map (fun e -> ancestors e []) (first :: rest) in
    let rec common prefix chains =
      let heads = List.map (function [] -> None | h :: _ -> Some h) chains in
      match heads with
      | Some h :: _ when List.for_all (fun x -> x = Some h) heads ->
        common (Some h) (List.map List.tl chains)
      | _ -> prefix
    in
    (match common None chains with
    | Some e -> e
    | None -> Schema.root schema)

let pattern_for schema picks =
  let anchor = lca schema picks in
  let branch e = (Pattern.Descendant, Pattern.node (Schema.label schema e)) in
  let branches = List.map branch (List.filter (fun e -> e <> anchor) picks) in
  let root =
    match branches with
    | [] -> Pattern.node (Schema.label schema anchor)
    | [ b ] -> Pattern.node ~next:b (Schema.label schema anchor)
    | b :: rest -> Pattern.node ~preds:rest ~next:b (Schema.label schema anchor)
  in
  let axis = if anchor = Schema.root schema then Pattern.Child else Pattern.Descendant in
  { Pattern.axis; root }

let interpretations ?(limit = 16) schema terms =
  let candidate_sets = List.map (element_candidates schema) terms in
  if List.exists (fun l -> l = []) candidate_sets then []
  else begin
    (* Enumerate pick combinations breadth-first up to the limit. *)
    let combos =
      List.fold_left
        (fun acc cands ->
          List.concat_map (fun picks -> List.map (fun c -> c :: picks) cands) acc
          |> List.filteri (fun i _ -> i < limit * 8))
        [ [] ] candidate_sets
      |> List.map List.rev
    in
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun picks ->
        let p = pattern_for schema (List.sort_uniq Int.compare picks) in
        let key = Pattern.to_string p in
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.add seen key ();
          Some p
        end)
      combos
    |> List.filteri (fun i _ -> i < limit)
  end

type hit = {
  pattern : Pattern.t;
  answers : (Uxsm_twig.Binding.t list * float) list;
}

let search ?limit ctx terms =
  let target = Uxsm_mapping.Mapping_set.target (Ptq.mapping_set ctx) in
  List.filter_map
    (fun pattern ->
      let answers = Ptq.consolidate (Ptq.query ctx pattern) in
      if List.for_all (fun (bs, _) -> bs = []) answers then None
      else Some { pattern; answers })
    (interpretations ?limit target terms)
