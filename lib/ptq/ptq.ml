module Schema = Uxsm_schema.Schema
module Doc = Uxsm_xml.Doc
module Pattern = Uxsm_twig.Pattern
module Binding = Uxsm_twig.Binding
module Matcher = Uxsm_twig.Matcher
module Structural_join = Uxsm_twig.Structural_join
module Mapping = Uxsm_mapping.Mapping
module Mapping_set = Uxsm_mapping.Mapping_set
module Block = Uxsm_blocktree.Block
module Block_tree = Uxsm_blocktree.Block_tree
module Obs = Uxsm_obs.Obs
module Executor = Uxsm_exec.Executor
module Plan = Uxsm_plan.Plan

(* Observability: evaluation cost drivers, shared with the bench harness and
   the CLI [stats] subcommand. [explain] reports deltas of these counters. *)
let c_queries = Obs.counter "ptq.queries"
let c_rewrites = Obs.counter "ptq.rewrites"
let c_matcher = Obs.counter "ptq.matcher_invocations"
let c_blocks_used = Obs.counter "ptq.blocks_used"
let c_shared = Obs.counter "ptq.shared_evaluations"
let c_direct = Obs.counter "ptq.direct_evaluations"
let c_decomp = Obs.counter "ptq.decompositions"
let c_joins = Obs.counter "ptq.joins"
let c_join_pairs = Obs.counter "ptq.join_pairs"
let c_executions = Obs.counter "plan.executions"
let s_basic = Obs.span "ptq.query_basic"
let s_tree = Obs.span "ptq.query_tree"

type context = {
  mset : Mapping_set.t;
  doc : Doc.t;
  target_doc : Doc.t;  (* target schema, indexed for resolution *)
  tree : Block_tree.t option;
  exec : Executor.t;
}

let context ?(exec = Executor.sequential) ?tree ~mset ~doc () =
  let target_doc = Doc.of_tree (Schema.to_xml_tree (Mapping_set.target mset)) in
  { mset; doc; target_doc; tree; exec }

let executor ctx = ctx.exec

let mapping_set ctx = ctx.mset
let source_doc ctx = ctx.doc

type answer = {
  mapping_id : int;
  probability : float;
  bindings : Binding.t list;
}

(* Pre-indexed pattern: pre-order node arrays; a subquery rooted at id [q]
   occupies the contiguous id range [q, q + sizes.(q)). *)
type indexed = {
  pattern : Pattern.t;
  nodes : Pattern.node array;
  sizes : int array;
  branch_ids : (Pattern.axis * int) array array;
  n : int;
}

let index_pattern (p : Pattern.t) =
  let nodes = Array.of_list (Pattern.nodes p) in
  let n = Array.length nodes in
  let sizes = Array.make n 0 in
  let branch_ids = Array.make n [||] in
  let next = ref 0 in
  let rec go (node : Pattern.node) =
    let id = !next in
    incr next;
    let kids = List.map (fun (a, c) -> (a, go c)) (Pattern.branches node) in
    branch_ids.(id) <- Array.of_list kids;
    sizes.(id) <- !next - id;
    id
  in
  ignore (go p.Pattern.root);
  { pattern = p; nodes; sizes; branch_ids; n }

(* The subquery rooted at pattern node [q], as a standalone pattern. Its
   local pre-order ids are the global ids shifted by [q]. *)
let subpattern idx q = { Pattern.axis = Pattern.Descendant; root = idx.nodes.(q) }

let globalize idx q (local : Binding.t) =
  let g = Binding.unbound idx.n in
  Array.iteri (fun j v -> if v >= 0 then g.(q + j) <- v) local;
  g

let sub_resolution idx q (resolution : Resolve.t) = Array.sub resolution q idx.sizes.(q)

(* Rewrite the subquery rooted at [q] through [lookup] and match it on the
   source document, returning global bindings. *)
let rewrite_and_match ctx idx q resolution ~at_top ~lookup =
  let source = Mapping_set.source ctx.mset in
  let pat = subpattern idx q in
  let res = sub_resolution idx q resolution in
  Obs.incr c_rewrites;
  match Rewrite.through ~source ~pattern:pat ~resolution:res ~at_top ~lookup with
  | None -> []
  | Some pat_s ->
    Obs.incr c_matcher;
    List.map (globalize idx q) (Matcher.matches pat_s ctx.doc)

let lookup_of_mapping m y = Mapping.source_of m y

(* Does mapping [m] cover every element of [resolution]? *)
let covers m (resolution : Resolve.t) =
  Array.for_all (fun y -> Mapping.source_of m y <> None) resolution

let resolutions_of ctx pattern = Resolve.against_doc pattern ctx.target_doc

let filter_mappings ctx pattern =
  let resolutions = resolutions_of ctx pattern in
  List.filter
    (fun i ->
      let m = Mapping_set.mapping ctx.mset i in
      List.exists (covers m) resolutions)
    (List.init (Mapping_set.size ctx.mset) Fun.id)

let dedupe_bindings l = List.sort_uniq Binding.compare l

let answers_of_table ctx per_mapping ids =
  List.map
    (fun i ->
      {
        mapping_id = i;
        probability = Mapping_set.probability ctx.mset i;
        bindings =
          (match Hashtbl.find_opt per_mapping i with
          | None -> []
          | Some l -> dedupe_bindings l);
      })
    ids

(* Which resolutions (as indices into [res]) each mapping covers, as an
   ascending-id assoc list; mappings covering none are omitted. Both
   evaluators consume this table, and {!query_topk} computes it exactly once
   — ranking and restricted evaluation share the same coverage pass. *)
let coverage_of ctx (res : Resolve.t array) =
  let cov = ref [] in
  for i = Mapping_set.size ctx.mset - 1 downto 0 do
    let m = Mapping_set.mapping ctx.mset i in
    let covered = ref [] in
    for r = Array.length res - 1 downto 0 do
      if covers m res.(r) then covered := r :: !covered
    done;
    if !covered <> [] then cov := (i, !covered) :: !cov
  done;
  !cov

(* Algorithm 3 over a precomputed coverage table. Mappings are independent
   of each other (the context is read-only during evaluation), so the outer
   loop fans out on the context's executor; results come back in coverage
   order, so answers are identical across backends. [cost_hint] is the
   plan's per-mapping estimate in node-visit units — the executor's cost
   gate keeps evaluations too small to amortize a pool dispatch
   sequential. *)
let query_basic_cov ?cost_hint ctx idx (res : Resolve.t array) cov =
  Obs.time s_basic (fun () ->
      let per_mapping : (int, Binding.t list) Hashtbl.t = Hashtbl.create 64 in
      let evaluated =
        Executor.map_list ?cost_hint ctx.exec
          (fun (i, covered) ->
            let m = Mapping_set.mapping ctx.mset i in
            Obs.add c_direct (List.length covered);
            let bindings =
              List.concat_map
                (fun r ->
                  rewrite_and_match ctx idx 0 res.(r) ~at_top:true
                    ~lookup:(lookup_of_mapping m))
                covered
            in
            (i, bindings))
          cov
      in
      List.iter (fun (i, bindings) -> Hashtbl.replace per_mapping i bindings) evaluated;
      answers_of_table ctx per_mapping (List.map fst cov))

type stats = {
  resolutions : int;
  relevant_mappings : int;
  blocks_used : int;
  shared_evaluations : int;
  direct_evaluations : int;
  decompositions : int;
  joins : int;
  plan : Plan.t;  (* the physical plan the run executed *)
}

(* Algorithm 4: one subtree evaluation per c-block; decomposition plus
   stack joins elsewhere. [eval] returns, per mapping id, the bindings of
   the subquery rooted at [q] (positions unconstrained unless [at_top]). *)
let eval_with_tree ctx tree idx resolution ~mids =
  let source = Mapping_set.source ctx.mset in
  let mapping i = Mapping_set.mapping ctx.mset i in
  let rec eval q ~at_top mids : (int, Binding.t list) Hashtbl.t =
    let out = Hashtbl.create (List.length mids) in
    let t_elem = resolution.(q) in
    let blocks = Block_tree.blocks_at tree t_elem in
    if blocks <> [] then begin
      (* query_subtree: one evaluation per block, shared by its mappings. *)
      let remaining = ref mids in
      List.iter
        (fun (b : Block.t) ->
          let mine, rest = List.partition (Block.mem_mapping b) !remaining in
          remaining := rest;
          if mine <> [] then begin
            Obs.incr c_blocks_used;
            Obs.incr c_shared;
            let bindings =
              rewrite_and_match ctx idx q resolution ~at_top ~lookup:(Block.source_of b)
            in
            List.iter (fun i -> Hashtbl.replace out i bindings) mine
          end)
        blocks;
      List.iter
        (fun i ->
          Obs.incr c_direct;
          let bindings =
            rewrite_and_match ctx idx q resolution ~at_top
              ~lookup:(lookup_of_mapping (mapping i))
          in
          Hashtbl.replace out i bindings)
        !remaining;
      out
    end
    else if Array.length idx.branch_ids.(q) = 0 then begin
      (* Leaf subquery: evaluate directly per mapping. *)
      List.iter
        (fun i ->
          Obs.incr c_direct;
          let bindings =
            rewrite_and_match ctx idx q resolution ~at_top
              ~lookup:(lookup_of_mapping (mapping i))
          in
          Hashtbl.replace out i bindings)
        mids;
      out
    end
    else begin
      (* split_query: root-only subquery q0, then one subquery per branch,
         joined per mapping with the stack join. *)
      Obs.incr c_decomp;
      let root_value = idx.nodes.(q).Pattern.value in
      let root_attrs = idx.nodes.(q).Pattern.attrs in
      let child_tables =
        Array.map (fun (_, cid) -> (cid, eval cid ~at_top:false mids)) idx.branch_ids.(q)
      in
      List.iter
        (fun i ->
          let m = mapping i in
          let x_parent = Mapping.source_of m resolution.(q) in
          let r0 =
            match x_parent with
            | None -> []
            | Some x ->
              let pat0 =
                {
                  Pattern.axis =
                    (if at_top && x = Schema.root source then Pattern.Child
                     else Pattern.Descendant);
                  root =
                    {
                      Pattern.label = Schema.label source x;
                      anchor = Some (Schema.path_string source x);
                      value = root_value;
                      attrs = root_attrs;
                      preds = [];
                      next = None;
                    };
                }
              in
              List.map
                (fun (local : Binding.t) ->
                  let g = Binding.unbound idx.n in
                  g.(q) <- local.(0);
                  g)
                (Matcher.matches pat0 ctx.doc)
          in
          let join acc (cid, table) =
            match acc with
            | [] -> []
            | _ -> (
              let rj = try Hashtbl.find table i with Not_found -> [] in
              match (x_parent, Mapping.source_of m resolution.(cid)) with
              | Some xp, Some xc -> (
                match Rewrite.axis_for source ~parent_src:xp ~child_src:xc with
                | None -> []
                | Some axis ->
                  Obs.incr c_joins;
                  let joined =
                    Structural_join.join_bindings ctx.doc ~axis ~left:acc ~left_col:q
                      ~right:rj ~right_col:cid
                  in
                  Obs.add c_join_pairs (List.length joined);
                  joined)
              | _, _ -> [])
          in
          let result = Array.fold_left join r0 child_tables in
          Hashtbl.replace out i result)
        mids;
      out
    end
  in
  eval 0 ~at_top:true mids

(* Algorithm 4 over a precomputed coverage table: one [eval_with_tree] per
   resolution, restricted to the mappings that cover it. [cost_hint] is
   the plan's per-block estimate, gating the fan-out like in
   [query_basic_cov]. *)
let query_tree_cov ?cost_hint ctx idx (res : Resolve.t array) cov =
  let tree =
    match ctx.tree with
    | Some t -> t
    | None -> invalid_arg "Ptq.query_tree: context has no block tree"
  in
  Obs.time s_tree (fun () ->
      let per_mapping : (int, Binding.t list) Hashtbl.t = Hashtbl.create 64 in
      (* Resolutions are independent (tree, mapping set and document are
         read-only), so they fan out on the executor; the per-mapping merge
         below runs sequentially in resolution order, reproducing the
         sequential accumulation exactly. *)
      let tables =
        Executor.map_array ?cost_hint ctx.exec
          (fun r ->
            let mids =
              List.filter_map
                (fun (i, covered) -> if List.mem r covered then Some i else None)
                cov
            in
            if mids = [] then None else Some (mids, eval_with_tree ctx tree idx res.(r) ~mids))
          (Array.init (Array.length res) Fun.id)
      in
      Array.iter
        (function
          | None -> ()
          | Some (mids, table) ->
            List.iter
              (fun i ->
                let bindings = try Hashtbl.find table i with Not_found -> [] in
                let prev = try Hashtbl.find per_mapping i with Not_found -> [] in
                Hashtbl.replace per_mapping i (bindings @ prev))
              mids)
        tables;
      answers_of_table ctx per_mapping (List.map fst cov))

(* ------------------------- plan compilation ------------------------ *)

(* A compiled query: the shared resolve/coverage prefix of the logical
   pipeline, materialized once, plus the physical plan the cost model
   chose. [execute] replays only the evaluate/merge suffix, so a cached
   plan (the server catalog keeps them) amortizes resolution and coverage
   across repeated executions. *)
type plan = {
  p_ctx : context;
  p_idx : indexed;
  p_res : Resolve.t array;
  p_cov : (int * int list) list;  (* the table handed to the evaluator *)
  p_phys : Plan.t;
}

let take k l = List.filteri (fun i _ -> i < k) l

(* Top-k pruning over the coverage table (Definition 5): keep the k most
   probable relevant mappings, preserving the table's mapping-id order.
   The evaluators never re-test [covers], and non-selected mappings are
   dropped before any rewrite work. *)
let prune_topk ctx ~k cov =
  let by_prob =
    List.sort
      (fun (i, _) (j, _) ->
        Float.compare (Mapping_set.probability ctx.mset j) (Mapping_set.probability ctx.mset i))
      cov
  in
  let keep = take k by_prob in
  let keep_set = Hashtbl.create k in
  List.iter (fun (i, _) -> Hashtbl.replace keep_set i ()) keep;
  List.filter (fun (i, _) -> Hashtbl.mem keep_set i) cov

let compile ?(force = `Auto) ?k ctx pattern =
  (match k with
  | Some k when k <= 0 -> invalid_arg "Ptq.query_topk: k must be positive"
  | _ -> ());
  (match (force, ctx.tree) with
  | `Tree, None -> invalid_arg "Ptq.query_tree: context has no block tree"
  | _ -> ());
  let idx = index_pattern pattern in
  let res = Array.of_list (resolutions_of ctx pattern) in
  (* One resolve and one coverage pass serve the relevance filter, the
     probability ranking, the cost model and the restricted evaluation. *)
  let cov = coverage_of ctx res in
  let relevant = List.length cov in
  let cov =
    match k with
    | None -> cov
    | Some k -> prune_topk ctx ~k cov
  in
  let phys =
    Plan.choose ?tree:ctx.tree ?k ~force ~n_mappings:(Mapping_set.size ctx.mset)
      ~pattern ~resolutions:res ~coverage:cov ~relevant ()
  in
  { p_ctx = ctx; p_idx = idx; p_res = res; p_cov = cov; p_phys = phys }

let physical p = p.p_phys

let execute p =
  Obs.incr c_queries;
  Obs.incr c_executions;
  (* The cost model already sized this exact evaluation for the evaluator
     choice; the same units feed the executor's parallelism gate. *)
  let cost = p.p_phys.Plan.cost in
  match p.p_phys.Plan.evaluator with
  | Plan.Per_mapping ->
    query_basic_cov ~cost_hint:cost.Plan.per_mapping p.p_ctx p.p_idx p.p_res p.p_cov
  | Plan.Per_block ->
    let cost_hint =
      match cost.Plan.per_block with
      | Some c -> c
      | None -> cost.Plan.per_mapping
    in
    query_tree_cov ~cost_hint p.p_ctx p.p_idx p.p_res p.p_cov

let query ?(force = `Auto) ctx pattern = execute (compile ~force ctx pattern)
let query_basic ctx pattern = query ~force:`Basic ctx pattern
let query_tree ctx pattern = query ~force:`Tree ctx pattern
let query_topk ?(force = `Auto) ctx ~k pattern = execute (compile ~force ~k ctx pattern)

let marginals answers =
  let tbl : (Binding.t, float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let prev = try Hashtbl.find tbl b with Not_found -> 0.0 in
          Hashtbl.replace tbl b (prev +. a.probability))
        a.bindings)
    answers;
  Hashtbl.fold (fun b p acc -> (b, p) :: acc) tbl []
  |> List.sort (fun (b1, p1) (b2, p2) ->
         match Float.compare p2 p1 with
         | 0 -> Binding.compare b1 b2
         | c -> c)

let consolidate answers =
  let tbl : (Binding.t list, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let prev = try Hashtbl.find tbl a.bindings with Not_found -> 0.0 in
      Hashtbl.replace tbl a.bindings (prev +. a.probability))
    answers;
  Hashtbl.fold (fun b p acc -> (b, p) :: acc) tbl []
  |> List.sort (fun (b1, p1) (b2, p2) ->
         (* The probability sort alone is not total: equal-probability
            groups would surface in hash-traversal order. Binding lists are
            unique table keys, so comparing them makes the order stable. *)
         match Float.compare p2 p1 with
         | 0 -> List.compare Binding.compare b1 b2
         | c -> c)

(* EXPLAIN as counter deltas: the query bumps the shared Obs counters; the
   executor joins its workers before returning, so before/after differences
   are exact for any backend as long as no other query runs concurrently.
   Working from a compiled plan means resolution and coverage happen
   exactly once — the stats reuse the plan's materialized prefix instead of
   re-resolving the pattern. *)
let explain_plan (p : plan) =
  let grab () =
    ( Obs.value c_blocks_used,
      Obs.value c_shared,
      Obs.value c_direct,
      Obs.value c_decomp,
      Obs.value c_joins )
  in
  let b0, s0, d0, de0, j0 = grab () in
  let answers = execute p in
  let b1, s1, d1, de1, j1 = grab () in
  ( {
      resolutions = Array.length p.p_res;
      relevant_mappings = List.length answers;
      blocks_used = b1 - b0;
      shared_evaluations = s1 - s0;
      direct_evaluations = d1 - d0;
      decompositions = de1 - de0;
      joins = j1 - j0;
      plan = p.p_phys;
    },
    answers )

let explain ?(force = `Auto) ctx pattern = explain_plan (compile ~force ctx pattern)

let binding_texts ctx pattern (b : Binding.t) =
  let labels = Pattern.labels pattern in
  List.concat
    (List.mapi
       (fun i label -> if b.(i) >= 0 then [ (label, Doc.text ctx.doc b.(i)) ] else [])
       labels)
