(** Probabilistic twig queries (Section IV).

    A PTQ is a twig pattern over the target schema, answered on a document
    conforming to the source schema, under a set of possible mappings: the
    result pairs each relevant mapping's matches with the mapping's
    probability (Definition 4).

    Two evaluators are provided: {!query_basic} (Algorithm 3 — rewrite and
    match once per mapping) and {!query_tree} (Algorithm 4 — one evaluation
    per c-block shared by many mappings, recursive decomposition and
    stack-based structural joins elsewhere). They return identical answers;
    only speed differs. {!query_topk} evaluates only the k most probable
    relevant mappings (Definition 5).

    Every query is compiled to a {!Uxsm_plan.Plan} — the shared
    resolve/coverage prefix runs once, a cost model fed by block-tree
    statistics picks the physical evaluator (overridable with [~force]),
    and {!execute} replays the evaluate/merge suffix. {!compile} exposes
    the compiled form so callers (the server catalog, the CLI) can cache
    and re-execute plans without repeating resolution. *)

type context

val context :
  ?exec:Uxsm_exec.Executor.t ->
  ?tree:Uxsm_blocktree.Block_tree.t ->
  mset:Uxsm_mapping.Mapping_set.t ->
  doc:Uxsm_xml.Doc.t ->
  unit ->
  context
(** [context ~mset ~doc ()] prepares evaluation state: the indexed target
    schema for query resolution and (optionally) a block tree for
    Algorithm 4. [doc] must conform to the mapping set's source schema.

    [exec] (default [Sequential]) schedules the embarrassingly-parallel
    outer loops of evaluation — per mapping in {!query_basic}, per
    resolution in {!query_tree} — over a pool of domains. The context is
    read-only during evaluation, and results merge in a fixed order, so
    answers are identical for every backend (a tested property). *)

val executor : context -> Uxsm_exec.Executor.t
(** The execution backend the context evaluates queries with. *)

val mapping_set : context -> Uxsm_mapping.Mapping_set.t

val source_doc : context -> Uxsm_xml.Doc.t
(** The document the context evaluates queries on. *)

type answer = {
  mapping_id : int;  (** index into the mapping set *)
  probability : float;  (** [p_i] *)
  bindings : Uxsm_twig.Binding.t list;
      (** [R_i]: matches of the rewritten query in the source document,
          deduplicated, in document order. May be empty (the mapping is
          relevant but the pattern does not occur). *)
}

val filter_mappings : context -> Uxsm_twig.Pattern.t -> int list
(** Relevant mappings: those with a correspondence for every query node
    under at least one resolution (Algorithm 3 Step 1). *)

type plan
(** A compiled query: the materialized resolve/coverage prefix plus the
    chosen physical plan. Pins its context (mapping set, document, block
    tree), so a cached plan stays executable after cache evictions
    elsewhere. *)

val compile :
  ?force:Uxsm_plan.Plan.force ->
  ?k:int ->
  context ->
  Uxsm_twig.Pattern.t ->
  plan
(** Resolve the pattern, compute the coverage table (pruned to the [k]
    most probable relevant mappings when [k] is given), and pick the
    physical evaluator — the cost model decides under [`Auto] (the
    default); [`Basic] / [`Tree] force Algorithm 3 / 4. Raises
    [Invalid_argument] for [~force:`Tree] on a context without a block
    tree, or [k <= 0]. *)

val execute : plan -> answer list
(** Run the plan's evaluate/merge suffix. Answers in mapping-id order,
    byte-identical across evaluators and execution backends (tested
    property). Re-executing a plan repeats no resolution or coverage
    work. *)

val physical : plan -> Uxsm_plan.Plan.t
(** The chosen physical plan (evaluator, cost estimates, pipeline). *)

val query_basic : context -> Uxsm_twig.Pattern.t -> answer list
(** Algorithm 3 ([compile ~force:`Basic] + {!execute}). Answers in
    mapping-id order. *)

val query_tree : context -> Uxsm_twig.Pattern.t -> answer list
(** Algorithm 4 ([compile ~force:`Tree] + {!execute}); requires the
    context to hold a block tree (raises [Invalid_argument] otherwise).
    Answers in mapping-id order. *)

val query_topk :
  ?force:Uxsm_plan.Plan.force -> context -> k:int -> Uxsm_twig.Pattern.t -> answer list
(** Top-k PTQ: evaluates only the [k] most probable relevant mappings,
    with the cost-chosen evaluator (or [force]d one). *)

val query : ?force:Uxsm_plan.Plan.force -> context -> Uxsm_twig.Pattern.t -> answer list
(** One-shot [compile] + {!execute}. Under the default [`Auto] the cost
    model picks the evaluator per query; all choices return identical
    answers. *)

val marginals : answer list -> (Uxsm_twig.Binding.t * float) list
(** Per-match marginal probabilities: each distinct document match with the
    total probability of the mappings whose answer set contains it, sorted
    by decreasing probability. (The consolidated view groups whole answer
    {e sets}; this groups individual matches.) *)

val consolidate : answer list -> (Uxsm_twig.Binding.t list * float) list
(** Merge answers with identical match sets, summing probabilities — the
    presentation of the introduction's example
    [{("Cathy", 0.3), ("Bob", 0.3), ("Alice", 0.2)}]. Sorted by
    decreasing probability. *)

val binding_texts :
  context -> Uxsm_twig.Pattern.t -> Uxsm_twig.Binding.t -> (string * string) list
(** For presentation: each query node's label paired with the text content
    of the document node it matched. *)

(** Evaluation statistics of one query run — how much work the block tree
    saved (its "EXPLAIN"), plus the plan that ran. *)
type stats = {
  resolutions : int;  (** schema resolutions of the query *)
  relevant_mappings : int;  (** mappings surviving filter_mappings *)
  blocks_used : int;  (** c-blocks whose mapping set intersected the run *)
  shared_evaluations : int;
      (** twig evaluations executed once per block and reused *)
  direct_evaluations : int;
      (** per-mapping rewrite+match executions (subqueries included) *)
  decompositions : int;  (** split_query events (no block at the node) *)
  joins : int;  (** stack-join invocations *)
  plan : Uxsm_plan.Plan.t;  (** the physical plan the run executed *)
}

val explain : ?force:Uxsm_plan.Plan.force -> context -> Uxsm_twig.Pattern.t -> stats * answer list
(** Compile (resolving and covering exactly once), execute, and report
    what the run did. The answers equal the plain query's. *)

val explain_plan : plan -> stats * answer list
(** {!explain} for an already compiled plan — what the server uses so a
    cached plan's explain repeats no compilation work. *)
