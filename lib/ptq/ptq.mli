(** Probabilistic twig queries (Section IV).

    A PTQ is a twig pattern over the target schema, answered on a document
    conforming to the source schema, under a set of possible mappings: the
    result pairs each relevant mapping's matches with the mapping's
    probability (Definition 4).

    Two evaluators are provided: {!query_basic} (Algorithm 3 — rewrite and
    match once per mapping) and {!query_tree} (Algorithm 4 — one evaluation
    per c-block shared by many mappings, recursive decomposition and
    stack-based structural joins elsewhere). They return identical answers;
    only speed differs. {!query_topk} evaluates only the k most probable
    relevant mappings (Definition 5). *)

type context

val context :
  ?exec:Uxsm_exec.Executor.t ->
  ?tree:Uxsm_blocktree.Block_tree.t ->
  mset:Uxsm_mapping.Mapping_set.t ->
  doc:Uxsm_xml.Doc.t ->
  unit ->
  context
(** [context ~mset ~doc ()] prepares evaluation state: the indexed target
    schema for query resolution and (optionally) a block tree for
    Algorithm 4. [doc] must conform to the mapping set's source schema.

    [exec] (default [Sequential]) schedules the embarrassingly-parallel
    outer loops of evaluation — per mapping in {!query_basic}, per
    resolution in {!query_tree} — over a pool of domains. The context is
    read-only during evaluation, and results merge in a fixed order, so
    answers are identical for every backend (a tested property). *)

val executor : context -> Uxsm_exec.Executor.t
(** The execution backend the context evaluates queries with. *)

val mapping_set : context -> Uxsm_mapping.Mapping_set.t

val source_doc : context -> Uxsm_xml.Doc.t
(** The document the context evaluates queries on. *)

type answer = {
  mapping_id : int;  (** index into the mapping set *)
  probability : float;  (** [p_i] *)
  bindings : Uxsm_twig.Binding.t list;
      (** [R_i]: matches of the rewritten query in the source document,
          deduplicated, in document order. May be empty (the mapping is
          relevant but the pattern does not occur). *)
}

val filter_mappings : context -> Uxsm_twig.Pattern.t -> int list
(** Relevant mappings: those with a correspondence for every query node
    under at least one resolution (Algorithm 3 Step 1). *)

val query_basic : context -> Uxsm_twig.Pattern.t -> answer list
(** Algorithm 3. Answers in mapping-id order. *)

val query_tree : context -> Uxsm_twig.Pattern.t -> answer list
(** Algorithm 4; requires the context to hold a block tree (raises
    [Invalid_argument] otherwise). Answers in mapping-id order. *)

val query_topk : context -> k:int -> Uxsm_twig.Pattern.t -> answer list
(** Top-k PTQ: evaluates only the [k] most probable relevant mappings, with
    the block tree when available. *)

val query : context -> Uxsm_twig.Pattern.t -> answer list
(** {!query_tree} when the context has a block tree, {!query_basic}
    otherwise. *)

val marginals : answer list -> (Uxsm_twig.Binding.t * float) list
(** Per-match marginal probabilities: each distinct document match with the
    total probability of the mappings whose answer set contains it, sorted
    by decreasing probability. (The consolidated view groups whole answer
    {e sets}; this groups individual matches.) *)

val consolidate : answer list -> (Uxsm_twig.Binding.t list * float) list
(** Merge answers with identical match sets, summing probabilities — the
    presentation of the introduction's example
    [{("Cathy", 0.3), ("Bob", 0.3), ("Alice", 0.2)}]. Sorted by
    decreasing probability. *)

val binding_texts :
  context -> Uxsm_twig.Pattern.t -> Uxsm_twig.Binding.t -> (string * string) list
(** For presentation: each query node's label paired with the text content
    of the document node it matched. *)

(** Evaluation statistics of one {!query_tree} run — how much work the
    block tree saved (its "EXPLAIN"). *)
type stats = {
  resolutions : int;  (** schema resolutions of the query *)
  relevant_mappings : int;  (** mappings surviving filter_mappings *)
  blocks_used : int;  (** c-blocks whose mapping set intersected the run *)
  shared_evaluations : int;
      (** twig evaluations executed once per block and reused *)
  direct_evaluations : int;
      (** per-mapping rewrite+match executions (subqueries included) *)
  decompositions : int;  (** split_query events (no block at the node) *)
  joins : int;  (** stack-join invocations *)
}

val explain : context -> Uxsm_twig.Pattern.t -> stats * answer list
(** Run {!query_tree} (or {!query_basic} without a tree) and report what it
    did. The answers equal the plain query's. *)
