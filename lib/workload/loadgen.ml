module Json = Uxsm_util.Json
module Prng = Uxsm_util.Prng
module Timing = Uxsm_util.Timing
module Obs = Uxsm_obs.Obs
module Bench_json = Uxsm_obs.Bench_json

(* ------------------------------ profiles -------------------------- *)

module Profile = struct
  type arrival =
    | Closed of { clients : int }
    | Open of { rps : float; clients : int; max_lateness : float }

  type template = {
    t_op : string;
    t_pattern : string;
    t_h : int;
    t_tau : float;
    t_k : int option;
    t_evaluator : string;
    t_weight : float;
    t_corrs : int;
  }

  type corpus = {
    c_name : string;
    c_dataset : string;
    c_seed : int;
  }

  type plan_cache =
    | Warm
    | Cold

  type t = {
    p_id : string;
    p_description : string;
    p_corpora : corpus list;
    p_zipf_s : float;
    p_templates : template list;
    p_arrival : arrival;
    p_warmup_s : float;
    p_duration_s : float;
    p_plan_cache : plan_cache;
    p_seed : int;
  }

  exception Fail of string

  let failf fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

  let field name j =
    match Json.member name j with
    | Some v -> v
    | None -> failf "missing field %S" name

  let get what conv name j =
    match conv (field name j) with
    | Some v -> v
    | None -> failf "field %S is not %s" name what

  let opt ~default conv what name j =
    match Json.member name j with
    | None -> default
    | Some v -> (
      match conv v with
      | Some x -> x
      | None -> failf "field %S is not %s" name what)

  let str = get "a string" Json.to_string_opt
  let num = get "a number" Json.to_float
  let items = get "an array" Json.to_list

  let template_of_json j =
    let k =
      match Json.member "k" j with
      | None | Some Json.Null -> None
      | Some v -> (
        match Json.to_int v with
        | Some k when k >= 1 -> Some k
        | _ -> failf "template field \"k\" must be an integer >= 1")
    in
    let op =
      match (opt ~default:"query" Json.to_string_opt "a string" "op" j, k) with
      | "query", Some _ -> "query_topk"
      | op, _ -> op
    in
    let t =
      {
        t_op = op;
        t_pattern = opt ~default:"" Json.to_string_opt "a string" "pattern" j;
        t_h = opt ~default:100 Json.to_int "an integer" "h" j;
        t_tau = opt ~default:0.2 Json.to_float "a number" "tau" j;
        t_k = k;
        t_evaluator = opt ~default:"auto" Json.to_string_opt "a string" "evaluator" j;
        t_weight = opt ~default:1.0 Json.to_float "a number" "weight" j;
        t_corrs = opt ~default:1 Json.to_int "an integer" "corrs" j;
      }
    in
    (match t.t_op with
    | "query" | "query_topk" | "mappings" | "ping" | "update" -> ()
    | op ->
      failf
        "template op %S is not one of \"query\", \"query_topk\", \"mappings\", \"ping\", \
         \"update\""
        op);
    (match t.t_op with
    | "query" | "query_topk" -> (
      (match Uxsm_twig.Pattern_parser.parse t.t_pattern with
      | Ok _ -> ()
      | Error e -> failf "template pattern %S does not parse: %s" t.t_pattern e);
      match (t.t_op, t.t_k) with
      | "query_topk", None -> failf "template op \"query_topk\" needs field \"k\""
      | _ -> ())
    | _ -> ());
    (match t.t_evaluator with
    | "auto" | "basic" | "tree" -> ()
    | e -> failf "template evaluator %S is not one of \"auto\", \"basic\", \"tree\"" e);
    if t.t_corrs < 1 then failf "template field \"corrs\" must be >= 1";
    if t.t_h < 1 then failf "template field \"h\" must be >= 1";
    if not (t.t_tau > 0.0 && t.t_tau <= 1.0) then failf "template field \"tau\" must be in (0, 1]";
    if (not (Float.is_finite t.t_weight)) || t.t_weight < 0.0 then
      failf "template field \"weight\" must be finite and >= 0";
    t

  let corpus_of_json j =
    let c =
      {
        c_name = str "name" j;
        c_dataset = str "dataset" j;
        c_seed = opt ~default:42 Json.to_int "an integer" "seed" j;
      }
    in
    if String.trim c.c_name = "" then failf "corpus name must be non-empty";
    (match Dataset.find c.c_dataset with
    | Some _ -> ()
    | None -> failf "corpus %S: unknown dataset %S (D1..D10)" c.c_name c.c_dataset);
    c

  let arrival_of_json j =
    match str "mode" j with
    | "closed" ->
      let clients = get "an integer" Json.to_int "clients" j in
      if clients < 1 then failf "arrival field \"clients\" must be >= 1";
      Closed { clients }
    | "open" ->
      let rps = num "rps" j in
      let clients = opt ~default:1 Json.to_int "an integer" "clients" j in
      let max_lateness = opt ~default:1.0 Json.to_float "a number" "max_lateness_seconds" j in
      if (not (Float.is_finite rps)) || rps <= 0.0 then failf "arrival field \"rps\" must be positive";
      if clients < 1 then failf "arrival field \"clients\" must be >= 1";
      if (not (Float.is_finite max_lateness)) || max_lateness <= 0.0 then
        failf "arrival field \"max_lateness_seconds\" must be positive";
      Open { rps; clients; max_lateness }
    | m -> failf "arrival mode %S is not \"closed\" or \"open\"" m

  let of_json j =
    try
      let p =
        {
          p_id = str "id" j;
          p_description = opt ~default:"" Json.to_string_opt "a string" "description" j;
          p_corpora = List.map corpus_of_json (items "corpora" j);
          p_zipf_s = opt ~default:1.0 Json.to_float "a number" "zipf_s" j;
          p_templates = List.map template_of_json (items "templates" j);
          p_arrival = arrival_of_json (field "arrival" j);
          p_warmup_s = opt ~default:0.0 Json.to_float "a number" "warmup_seconds" j;
          p_duration_s = num "duration_seconds" j;
          p_plan_cache =
            (match opt ~default:"warm" Json.to_string_opt "a string" "plan_cache" j with
            | "warm" -> Warm
            | "cold" -> Cold
            | pc -> failf "field \"plan_cache\" %S is not \"warm\" or \"cold\"" pc);
          p_seed = opt ~default:42 Json.to_int "an integer" "seed" j;
        }
      in
      if String.trim p.p_id = "" then failf "field \"id\" must be non-empty";
      if p.p_corpora = [] then failf "field \"corpora\" must be non-empty";
      let names = List.map (fun c -> c.c_name) p.p_corpora in
      if List.length (List.sort_uniq String.compare names) <> List.length names then
        failf "corpus names must be distinct";
      if (not (Float.is_finite p.p_zipf_s)) || p.p_zipf_s < 0.0 then
        failf "field \"zipf_s\" must be finite and >= 0";
      if p.p_templates = [] then failf "field \"templates\" must be non-empty";
      if not (List.fold_left (fun acc t -> acc +. t.t_weight) 0.0 p.p_templates > 0.0) then
        failf "total template weight must be positive";
      if (not (Float.is_finite p.p_warmup_s)) || p.p_warmup_s < 0.0 then
        failf "field \"warmup_seconds\" must be finite and >= 0";
      if (not (Float.is_finite p.p_duration_s)) || p.p_duration_s <= 0.0 then
        failf "field \"duration_seconds\" must be positive";
      Ok p
    with Fail msg -> Error msg

  let template_to_json t =
    Json.Assoc
      ([ ("op", Json.String t.t_op) ]
      @ (match t.t_op with
        | "query" | "query_topk" -> [ ("pattern", Json.String t.t_pattern) ]
        | _ -> [])
      @ [ ("h", Json.Int t.t_h); ("tau", Json.Float t.t_tau) ]
      @ (match t.t_k with None -> [] | Some k -> [ ("k", Json.Int k) ])
      @ [ ("evaluator", Json.String t.t_evaluator); ("weight", Json.Float t.t_weight) ]
      (* only the update op reads "corrs"; omitting it elsewhere keeps the
         rendering of pre-existing profiles unchanged *)
      @ (match t.t_op with "update" -> [ ("corrs", Json.Int t.t_corrs) ] | _ -> []))

  let to_json p =
    Json.Assoc
      [
        ("id", Json.String p.p_id);
        ("description", Json.String p.p_description);
        ("seed", Json.Int p.p_seed);
        ("zipf_s", Json.Float p.p_zipf_s);
        ( "corpora",
          Json.List
            (List.map
               (fun c ->
                 Json.Assoc
                   [
                     ("name", Json.String c.c_name);
                     ("dataset", Json.String c.c_dataset);
                     ("seed", Json.Int c.c_seed);
                   ])
               p.p_corpora) );
        ("templates", Json.List (List.map template_to_json p.p_templates));
        ( "arrival",
          match p.p_arrival with
          | Closed { clients } ->
            Json.Assoc [ ("mode", Json.String "closed"); ("clients", Json.Int clients) ]
          | Open { rps; clients; max_lateness } ->
            Json.Assoc
              [
                ("mode", Json.String "open");
                ("rps", Json.Float rps);
                ("clients", Json.Int clients);
                ("max_lateness_seconds", Json.Float max_lateness);
              ] );
        ("warmup_seconds", Json.Float p.p_warmup_s);
        ("duration_seconds", Json.Float p.p_duration_s);
        ( "plan_cache",
          Json.String
            (match p.p_plan_cache with
            | Warm -> "warm"
            | Cold -> "cold") );
      ]

  let of_string s =
    match Json.of_string s with
    | Error e -> Error (Printf.sprintf "profile is not valid JSON: %s" e)
    | Ok j -> of_json j

  let load path =
    match open_in path with
    | exception Sys_error e -> Error e
    | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      of_string s

  let clients p =
    match p.p_arrival with
    | Closed { clients } | Open { clients; _ } -> clients

  let mode_name p =
    match p.p_arrival with
    | Closed _ -> "closed"
    | Open _ -> "open"

  let plan_cache_name p =
    match p.p_plan_cache with
    | Warm -> "warm"
    | Cold -> "cold"

  let target_rps p =
    match p.p_arrival with
    | Closed _ -> None
    | Open { rps; _ } -> Some rps

  let ops p = List.sort_uniq String.compare (List.map (fun t -> t.t_op) p.p_templates)
end

(* ------------------------------ sampling -------------------------- *)

module Sampler = struct
  type request = {
    rq_op : string;
    rq_corpus : string;
    rq_body : Json.t;
  }

  type t = {
    s_prng : Prng.t;
    s_corpora : string array;  (* popularity rank order *)
    s_corpus_cum : float array;  (* cumulative zipf weights *)
    s_templates : Profile.template array;
    s_template_cum : float array;
    s_corpus_spec : (string * (string * int)) list;  (* name -> (dataset id, seed) *)
    s_corr_paths : (string, (string * string) array) Hashtbl.t;
        (* corpus -> correspondence (source path, target path) pairs, built
           lazily on the first update draw for that corpus (Dataset.matching
           is memoized, so the matcher runs once per (dataset, seed) per
           process, not per sampler) *)
  }

  let cumulative weights =
    let acc = ref 0.0 in
    Array.map
      (fun w ->
        acc := !acc +. w;
        !acc)
      weights

  (* Smallest index whose cumulative weight exceeds [x]; [x] is drawn in
     [0, total), so the scan always lands. *)
  let pick_cum cum x =
    let n = Array.length cum in
    let rec go i = if i >= n - 1 || x < cum.(i) then i else go (i + 1) in
    go 0

  let create ?(stream = 0) (p : Profile.t) =
    (* Stream derivation: child [stream] of one parent generator, so
       distinct clients draw independent sequences while (seed, stream)
       fully determines each. *)
    let parent = Prng.create p.Profile.p_seed in
    let rec child i = if i = 0 then Prng.split parent else (ignore (Prng.split parent); child (i - 1)) in
    let prng = child (max 0 stream) in
    let corpora = Array.of_list (List.map (fun c -> c.Profile.c_name) p.Profile.p_corpora) in
    let zipf =
      Array.init (Array.length corpora) (fun i ->
          (* Rank 1 is the head of the corpora list. *)
          Float.pow (float_of_int (i + 1)) (-.p.Profile.p_zipf_s))
    in
    let templates = Array.of_list p.Profile.p_templates in
    let weights = Array.map (fun t -> t.Profile.t_weight) templates in
    {
      s_prng = prng;
      s_corpora = corpora;
      s_corpus_cum = cumulative zipf;
      s_templates = templates;
      s_template_cum = cumulative weights;
      s_corpus_spec =
        List.map
          (fun c -> (c.Profile.c_name, (c.Profile.c_dataset, c.Profile.c_seed)))
          p.Profile.p_corpora;
      s_corr_paths = Hashtbl.create 4;
    }

  (* The (source path, target path) pairs a corpus' update templates draw
     from: exactly the correspondences the server's registration computes
     for the same (dataset, seed), so every sampled re-score names an
     existing correspondence. *)
  let corr_paths s corpus =
    match Hashtbl.find_opt s.s_corr_paths corpus with
    | Some a -> a
    | None ->
      let id, seed = List.assoc corpus s.s_corpus_spec in
      let d = Option.get (Dataset.find id) in  (* validated at profile load *)
      let m = Dataset.matching ~seed d in
      let module Matching = Uxsm_mapping.Matching in
      let module Schema = Uxsm_schema.Schema in
      let src = Matching.source m and tgt = Matching.target m in
      let a =
        Array.of_list
          (List.map
             (fun (c : Matching.corr) ->
               (Schema.path_string src c.Matching.source, Schema.path_string tgt c.Matching.target))
             (Matching.correspondences m))
      in
      Hashtbl.add s.s_corr_paths corpus a;
      a

  let body s ~corpus (t : Profile.template) =
    match t.Profile.t_op with
    | "ping" -> (Json.Assoc [ ("op", Json.String "ping") ], "")
    | "update" ->
      (* Re-score only: the correspondence set, the schemas and every
         component partition stay fixed, so a long run neither grows the
         corpus nor invalidates the sampled path universe. Scores land in
         [0.01, 1) ⊂ (0, 1]. *)
      let paths = corr_paths s corpus in
      let entries =
        List.init
          (min t.Profile.t_corrs (Array.length paths))
          (fun _ ->
            let src, tgt = paths.(Prng.int s.s_prng (Array.length paths)) in
            let score = 0.01 +. Prng.float s.s_prng 0.99 in
            Json.Assoc
              [
                ("source", Json.String src);
                ("target", Json.String tgt);
                ("score", Json.Float score);
              ])
      in
      ( Json.Assoc
          [
            ("op", Json.String "update");
            ("corpus", Json.String corpus);
            ("set", Json.List entries);
          ],
        corpus )
    | "mappings" ->
      ( Json.Assoc
          [
            ("op", Json.String "mappings");
            ("corpus", Json.String corpus);
            ("h", Json.Int t.Profile.t_h);
          ],
        corpus )
    | _ ->
      ( Json.Assoc
          ([
             ("op", Json.String t.Profile.t_op);
             ("corpus", Json.String corpus);
             ("query", Json.String t.Profile.t_pattern);
             ("h", Json.Int t.Profile.t_h);
             ("tau", Json.Float t.Profile.t_tau);
           ]
          @ (match t.Profile.t_k with None -> [] | Some k -> [ ("k", Json.Int k) ])
          @
          match t.Profile.t_evaluator with
          | "auto" -> []
          | e -> [ ("evaluator", Json.String e) ]),
        corpus )

  let next s =
    let total_c = s.s_corpus_cum.(Array.length s.s_corpus_cum - 1) in
    let corpus = s.s_corpora.(pick_cum s.s_corpus_cum (Prng.float s.s_prng total_c)) in
    let total_t = s.s_template_cum.(Array.length s.s_template_cum - 1) in
    let t = s.s_templates.(pick_cum s.s_template_cum (Prng.float s.s_prng total_t)) in
    let body, corpus = body s ~corpus t in
    { rq_op = t.Profile.t_op; rq_corpus = corpus; rq_body = body }

  let interarrival s ~rps =
    (* Exponential deviate; [Prng.float] is in [0, bound), so [1 - u] is
       never zero and the log is finite. *)
    let u = Prng.float s.s_prng 1.0 in
    -.Float.log (1.0 -. u) /. rps
end

(* ------------------------------ A/B diff -------------------------- *)

module Ab = struct
  type metric = {
    ab_metric : string;
    ab_a : float;
    ab_b : float;
    ab_delta : float;
    ab_worse : bool;
  }

  type report = {
    ab_profile : string;
    ab_tolerance : float;
    ab_metrics : metric list;
  }

  let rel_delta a b = if a > 0.0 then (b -. a) /. a else if b > 0.0 then infinity else 0.0

  (* A delta exactly at the tolerance passes: the gate trips only on
     strictly-worse-than-tolerated runs. *)
  let metric ~tolerance ~bad name a b =
    let delta = rel_delta a b in
    let worse =
      match bad with
      | `Lower -> -.delta > tolerance
      | `Higher -> delta > tolerance
    in
    { ab_metric = name; ab_a = a; ab_b = b; ab_delta = delta; ab_worse = worse }

  let empty_view = { Obs.hv_count = 0; hv_sum = 0.0; hv_buckets = []; hv_overflow = 0 }

  let all_latency (lg : Bench_json.loadgen) =
    match List.assoc_opt "all" lg.Bench_json.lg_latency with
    | Some v -> v
    | None -> empty_view

  let error_rate (lg : Bench_json.loadgen) =
    float_of_int lg.Bench_json.lg_errors /. float_of_int (max lg.Bench_json.lg_sent 1)

  let compare_loadgen ~tolerance (a : Bench_json.loadgen) (b : Bench_json.loadgen) =
    if (not (Float.is_finite tolerance)) || tolerance < 0.0 then
      Error "tolerance must be finite and >= 0"
    else if a.Bench_json.lg_profile <> b.Bench_json.lg_profile then
      Error
        (Printf.sprintf "profile mismatch: %S vs %S — records are not comparable"
           a.Bench_json.lg_profile b.Bench_json.lg_profile)
    else if a.Bench_json.lg_mode <> b.Bench_json.lg_mode then
      Error
        (Printf.sprintf "arrival-mode mismatch: %S vs %S — records are not comparable"
           a.Bench_json.lg_mode b.Bench_json.lg_mode)
    else begin
      let va = all_latency a and vb = all_latency b in
      let quantile name q =
        metric ~tolerance ~bad:`Higher name (Obs.quantile va q) (Obs.quantile vb q)
      in
      (* Error rates compare as an absolute fraction of requests: relative
         deltas on near-zero rates would trip the gate on a single stray
         error. *)
      let ea = error_rate a and eb = error_rate b in
      let err =
        {
          ab_metric = "error_rate";
          ab_a = ea;
          ab_b = eb;
          ab_delta = eb -. ea;
          ab_worse = eb -. ea > tolerance;
        }
      in
      Ok
        {
          ab_profile = a.Bench_json.lg_profile;
          ab_tolerance = tolerance;
          ab_metrics =
            [
              metric ~tolerance ~bad:`Lower "throughput_rps" a.Bench_json.lg_achieved_rps
                b.Bench_json.lg_achieved_rps;
              quantile "latency_p50" 0.50;
              quantile "latency_p95" 0.95;
              quantile "latency_p99" 0.99;
              err;
            ];
        }
    end

  let regressed r = List.exists (fun m -> m.ab_worse) r.ab_metrics

  let pick ?profile runs =
    let matches (r : Bench_json.run) =
      r.Bench_json.r_kind = "loadgen"
      &&
      match (r.Bench_json.r_loadgen, profile) with
      | None, _ -> false
      | Some _, None -> true
      | Some lg, Some id -> lg.Bench_json.lg_profile = id
    in
    match List.rev (List.filter matches runs) with
    | { Bench_json.r_loadgen = Some lg; _ } :: _ -> Ok lg
    | _ ->
      Error
        (match profile with
        | None -> "no loadgen record found"
        | Some id -> Printf.sprintf "no loadgen record for profile %S found" id)

  let report_lines r =
    Printf.sprintf "profile %s (tolerance %.1f%%)" r.ab_profile (100.0 *. r.ab_tolerance)
    :: List.map
         (fun m ->
           let delta =
             if Float.is_finite m.ab_delta then
               Printf.sprintf "%+7.1f%%" (100.0 *. m.ab_delta)
             else "     inf"
           in
           Printf.sprintf "  %-14s A %12.6f   B %12.6f   delta %s   %s" m.ab_metric m.ab_a
             m.ab_b delta
             (if m.ab_worse then "REGRESSION" else "ok"))
         r.ab_metrics
end

(* ------------------------------- runner --------------------------- *)

module Runner = struct
  type target =
    | Tcp of string * int
    | Unix_socket of string

  exception Fail of string

  let failf fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

  (* ------------------------- line transport ------------------------ *)

  let write_all fd s =
    let n = String.length s in
    let rec go off = if off < n then go (off + Unix.write_substring fd s off (n - off)) in
    go 0

  let write_line fd line = write_all fd (line ^ "\n")

  (* Raw line reader over a file descriptor: [select]-bounded reads keep
     open-loop receivers responsive at phase boundaries (an [in_channel]
     would buffer past what [select] can see). *)
  type line_reader = {
    lr_fd : Unix.file_descr;
    lr_buf : Buffer.t;
    mutable lr_lines : string list;
    lr_chunk : Bytes.t;
  }

  let line_reader fd =
    { lr_fd = fd; lr_buf = Buffer.create 4096; lr_lines = []; lr_chunk = Bytes.create 65536 }

  let pop_lines buf =
    let s = Buffer.contents buf in
    match String.rindex_opt s '\n' with
    | None -> []
    | Some i ->
      Buffer.clear buf;
      Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
      String.split_on_char '\n' (String.sub s 0 i)
      |> List.filter (fun l -> String.trim l <> "")

  (* Next complete line, waiting at most [timeout] seconds. [None] on
     timeout; raises [End_of_file] when the server closed the
     connection. *)
  let read_line r ~timeout =
    match r.lr_lines with
    | l :: rest ->
      r.lr_lines <- rest;
      Some l
    | [] ->
      let deadline = Timing.now_mono () +. timeout in
      let rec pump () =
        let left = deadline -. Timing.now_mono () in
        if left <= 0.0 then None
        else
          match Unix.select [ r.lr_fd ] [] [] (Float.min left 0.25) with
          | [], _, _ -> pump ()
          | _ -> (
            let n = Unix.read r.lr_fd r.lr_chunk 0 (Bytes.length r.lr_chunk) in
            if n = 0 then raise End_of_file;
            Buffer.add_subbytes r.lr_buf r.lr_chunk 0 n;
            match pop_lines r.lr_buf with
            | [] -> pump ()
            | l :: rest ->
              r.lr_lines <- rest;
              Some l)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump ()
      in
      pump ()

  (* ------------------------- connections --------------------------- *)

  type conn = {
    cn_fd : Unix.file_descr;
    cn_reader : line_reader;
  }

  let connect target =
    let fd, addr =
      match target with
      | Unix_socket path -> (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
      | Tcp (host, port) ->
        let addr =
          match Unix.inet_addr_of_string host with
          | a -> a
          | exception Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
            | _ | (exception Not_found) -> failf "cannot resolve host %S" host)
        in
        (Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0, Unix.ADDR_INET (addr, port))
    in
    (match Unix.connect fd addr with
    | () -> ()
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      failf "cannot connect: %s" (Unix.error_message e));
    { cn_fd = fd; cn_reader = line_reader fd }

  let close conn = try Unix.close conn.cn_fd with Unix.Unix_error _ -> ()

  (* Control-channel request/reply with a generous bound: registration of
     an XCBL-sized corpus runs the matcher. *)
  let control_timeout = 300.0

  let request conn body =
    write_line conn.cn_fd (Json.to_string body);
    match read_line conn.cn_reader ~timeout:control_timeout with
    | None -> failf "server did not answer a control request within %.0fs" control_timeout
    | Some line -> (
      match Json.of_string line with
      | Error e -> failf "malformed control reply: %s" e
      | Ok j ->
        if Json.member "ok" j = Some (Json.Bool true) then j
        else
          failf "control request failed: %s"
            (match Json.member "error" j with
            | Some (Json.String m) -> m
            | _ -> line))

  let register_corpora conn (p : Profile.t) =
    List.iter
      (fun (c : Profile.corpus) ->
        ignore
          (request conn
             (Json.Assoc
                [
                  ("op", Json.String "register");
                  ("name", Json.String c.Profile.c_name);
                  ("dataset", Json.String c.Profile.c_dataset);
                  ("seed", Json.Int c.Profile.c_seed);
                ])))
      p.Profile.p_corpora

  let server_counters conn =
    match Json.member "counters" (request conn (Json.Assoc [ ("op", Json.String "stats") ])) with
    | Some (Json.Assoc cs) ->
      List.filter_map
        (fun (n, v) ->
          match Json.to_int v with
          | Some i -> Some (n, i)
          | None -> None)
        cs
    | _ -> []

  (* --------------------------- accounting -------------------------- *)

  type counters = {
    k_sent : int Atomic.t;
    k_completed : int Atomic.t;
    k_errors : int Atomic.t;
    k_overloaded : int Atomic.t;
    k_late : int Atomic.t;
  }

  let fresh_counters () =
    {
      k_sent = Atomic.make 0;
      k_completed = Atomic.make 0;
      k_errors = Atomic.make 0;
      k_overloaded = Atomic.make 0;
      k_late = Atomic.make 0;
    }

  type hists = {
    hs_per_op : (string * Obs.histogram) list;
    hs_all : Obs.histogram;
  }

  let resolve_hists (p : Profile.t) =
    {
      hs_per_op = List.map (fun op -> (op, Obs.histogram ("loadgen." ^ op ^ ".latency"))) (Profile.ops p);
      hs_all = Obs.histogram "loadgen.all.latency";
    }

  let classify line =
    match Json.of_string line with
    | Error _ -> `Err
    | Ok j ->
      if Json.member "overloaded" j = Some (Json.Bool true) then `Overloaded
      else if Json.member "ok" j = Some (Json.Bool true) then `Ok
      else `Err

  let observe ~measure hists op dt =
    if measure then begin
      (match List.assoc_opt op hists.hs_per_op with
      | Some h -> Obs.observe h dt
      | None -> ());
      Obs.observe hists.hs_all dt
    end

  let add_id n body =
    match body with
    | Json.Assoc fields -> Json.Assoc (("id", Json.Int n) :: fields)
    | j -> j

  (* How long a worker waits for one reply before giving the server up. *)
  let reply_timeout = 120.0

  (* ------------------------- closed loop --------------------------- *)

  (* One synchronous send/await loop per connection: the next request
     leaves when the previous reply lands, so concurrency equals the
     client count. In-flight requests at the deadline complete. *)
  let closed_worker ~sampler ~conn ~deadline ~measure ~counters ~hists ~next_id () =
    let rec loop () =
      if Timing.now_mono () < deadline then begin
        let rq = Sampler.next sampler in
        incr next_id;
        let line = Json.to_string (add_id !next_id rq.Sampler.rq_body) in
        let t0 = Timing.now_mono () in
        write_line conn.cn_fd line;
        if measure then Atomic.incr counters.k_sent;
        match read_line conn.cn_reader ~timeout:reply_timeout with
        | None -> if measure then Atomic.incr counters.k_errors
        | Some reply ->
          let dt = Timing.now_mono () -. t0 in
          (if measure then
             match classify reply with
             | `Ok ->
               Atomic.incr counters.k_completed;
               observe ~measure hists rq.Sampler.rq_op dt
             | `Overloaded -> Atomic.incr counters.k_overloaded
             | `Err -> Atomic.incr counters.k_errors);
          loop ()
      end
    in
    try loop ()
    with
    | End_of_file | Unix.Unix_error _ ->
      (* A dropped connection mid-window is an error observation, not a
         run failure. *)
      if measure then Atomic.incr counters.k_errors

  (* -------------------------- open loop ---------------------------- *)

  type open_state = {
    os_lock : Uxsm_util.Locks.t;
    os_outstanding : (int, string * float) Hashtbl.t;  (* id -> (op, scheduled at) *)
    os_sender_done : bool Atomic.t;
  }

  (* Pipelined sender at the connection's share of the target rate.
     Latency is charged from the *scheduled* arrival, and arrivals that
     cannot leave within the lateness bound are dropped and counted, so a
     stalled server cannot hide queueing delay (bounded coordinated
     omission). Drops still advance the sampler, keeping the request
     stream a deterministic function of (seed, stream). *)
  let open_sender ~sampler ~conn ~start ~deadline ~rate ~max_lateness ~measure ~counters ~state
      ~next_id () =
    let t = ref (start +. Sampler.interarrival sampler ~rps:rate) in
    (try
       while !t < deadline do
         let now = Timing.now_mono () in
         if !t > now then Thread.delay (!t -. now);
         let now = Timing.now_mono () in
         if now -. !t > max_lateness then begin
           ignore (Sampler.next sampler);
           if measure then Atomic.incr counters.k_late
         end
         else begin
           let rq = Sampler.next sampler in
           incr next_id;
           Uxsm_util.Locks.lock state.os_lock;
           Hashtbl.replace state.os_outstanding !next_id (rq.Sampler.rq_op, !t);
           Uxsm_util.Locks.unlock state.os_lock;
           write_line conn.cn_fd (Json.to_string (add_id !next_id rq.Sampler.rq_body));
           if measure then Atomic.incr counters.k_sent
         end;
         t := !t +. Sampler.interarrival sampler ~rps:rate
       done
     with Unix.Unix_error _ -> if measure then Atomic.incr counters.k_errors);
    Atomic.set state.os_sender_done true

  (* Matches replies to sends by id (rejections may overtake admitted
     replies); drains until the sender finished and nothing is
     outstanding, or the drain deadline expires — whatever is still
     unanswered then counts as errors. *)
  let open_receiver ~conn ~drain_deadline ~measure ~counters ~hists ~state () =
    let outstanding_count () =
      Uxsm_util.Locks.with_lock state.os_lock (fun () ->
          Hashtbl.length state.os_outstanding)
    in
    let take id =
      Uxsm_util.Locks.with_lock state.os_lock (fun () ->
          let entry = Hashtbl.find_opt state.os_outstanding id in
          (match entry with
          | Some _ -> Hashtbl.remove state.os_outstanding id
          | None -> ());
          entry)
    in
    let lose_remaining () =
      if measure then begin
        let n = outstanding_count () in
        if n > 0 then
          for _ = 1 to n do
            Atomic.incr counters.k_errors
          done
      end;
      Uxsm_util.Locks.with_lock state.os_lock (fun () ->
          Hashtbl.reset state.os_outstanding)
    in
    let rec loop () =
      if Atomic.get state.os_sender_done && outstanding_count () = 0 then ()
      else if Timing.now_mono () > drain_deadline then lose_remaining ()
      else
        match read_line conn.cn_reader ~timeout:0.25 with
        | None -> loop ()
        | Some reply ->
          (let matched =
             match Json.of_string reply with
             | Error _ -> None
             | Ok j -> (
               match Json.member "id" j with
               | Some idj -> Option.bind (Json.to_int idj) take
               | None -> None)
           in
           match matched with
           | None -> ()  (* unmatched line: a reply to a pre-window send *)
           | Some (op, sched) ->
             let dt = Timing.now_mono () -. sched in
             if measure then (
               match classify reply with
               | `Ok ->
                 Atomic.incr counters.k_completed;
                 observe ~measure hists op dt
               | `Overloaded -> Atomic.incr counters.k_overloaded
               | `Err -> Atomic.incr counters.k_errors));
          loop ()
        | exception End_of_file -> lose_remaining ()
        | exception Unix.Unix_error _ -> lose_remaining ()
    in
    loop ()

  (* ---------------------------- phases ----------------------------- *)

  type client = {
    cl_conn : conn;
    cl_sampler : Sampler.t;
    cl_next_id : int ref;  (* ids stay unique per connection across phases *)
  }

  let drain_grace = 30.0

  (* Run one phase (warmup or measurement) of the profile's arrival model
     across all clients; returns once every worker thread retired. *)
  let run_phase (p : Profile.t) ~clients ~measure ~duration ~counters ~hists =
    let start = Timing.now_mono () in
    let deadline = start +. duration in
    match p.Profile.p_arrival with
    | Profile.Closed _ ->
      let threads =
        List.map
          (fun cl ->
            Thread.create
              (closed_worker ~sampler:cl.cl_sampler ~conn:cl.cl_conn ~deadline ~measure
                 ~counters ~hists ~next_id:cl.cl_next_id)
              ())
          clients
      in
      List.iter Thread.join threads
    | Profile.Open { rps; clients = n_conns; max_lateness } ->
      let rate = rps /. float_of_int n_conns in
      let pairs =
        List.map
          (fun cl ->
            let state =
              {
                os_lock =
                  Uxsm_util.Locks.create ~name:"loadgen.outstanding"
                    ~rank:Uxsm_util.Locks.rank_loadgen;
                os_outstanding = Hashtbl.create 64;
                os_sender_done = Atomic.make false;
              }
            in
            let sender =
              Thread.create
                (open_sender ~sampler:cl.cl_sampler ~conn:cl.cl_conn ~start ~deadline ~rate
                   ~max_lateness ~measure ~counters ~state ~next_id:cl.cl_next_id)
                ()
            in
            let receiver =
              Thread.create
                (open_receiver ~conn:cl.cl_conn ~drain_deadline:(deadline +. drain_grace)
                   ~measure ~counters ~hists ~state)
                ()
            in
            (sender, receiver))
          clients
      in
      List.iter
        (fun (s, r) ->
          Thread.join s;
          Thread.join r)
        pairs

  (* ----------------------------- run ------------------------------- *)

  let latency_views (p : Profile.t) hists =
    let views =
      List.filter_map
        (fun (op, h) ->
          let v = Obs.histogram_view h in
          if v.Obs.hv_count = 0 then None else Some (op, v))
        (("all", hists.hs_all) :: hists.hs_per_op)
    in
    ignore p;
    List.sort (fun (a, _) (b, _) -> String.compare a b) views

  let run ?(log = fun _ -> ()) (p : Profile.t) target =
    match
      let ctrl = connect target in
      Fun.protect
        ~finally:(fun () -> close ctrl)
        (fun () ->
          log (Printf.sprintf "registering %d corpora" (List.length p.Profile.p_corpora));
          register_corpora ctrl p;
          let n = Profile.clients p in
          let clients =
            List.init n (fun i ->
                { cl_conn = connect target; cl_sampler = Sampler.create ~stream:i p; cl_next_id = ref 0 })
          in
          Fun.protect
            ~finally:(fun () -> List.iter (fun cl -> close cl.cl_conn) clients)
            (fun () ->
              let hists = resolve_hists p in
              if p.Profile.p_warmup_s > 0.0 then begin
                log (Printf.sprintf "warmup: %.1fs" p.Profile.p_warmup_s);
                run_phase p ~clients ~measure:false ~duration:p.Profile.p_warmup_s
                  ~counters:(fresh_counters ()) ~hists
              end;
              (match p.Profile.p_plan_cache with
              | Profile.Warm -> ()
              | Profile.Cold ->
                (* Re-registering replaces each corpus' spec and drops every
                   cached artifact, so the window measures cold builds. *)
                log "cold plan cache: re-registering corpora";
                register_corpora ctrl p);
              (* Window barrier: every worker is quiescent here, so the
                 reset cleanly separates warmup from measurement on both
                 sides of the wire. *)
              ignore (request ctrl (Json.Assoc [ ("op", Json.String "stats_reset") ]));
              Obs.reset ();
              let counters = fresh_counters () in
              log (Printf.sprintf "measuring: %.1fs (%s)" p.Profile.p_duration_s
                     (Profile.mode_name p));
              let t0 = Timing.now_mono () in
              run_phase p ~clients ~measure:true ~duration:p.Profile.p_duration_s ~counters ~hists;
              let window = Timing.now_mono () -. t0 in
              let server = server_counters ctrl in
              let sent = Atomic.get counters.k_sent in
              let completed = Atomic.get counters.k_completed in
              let late = Atomic.get counters.k_late in
              {
                Bench_json.lg_profile = p.Profile.p_id;
                lg_mode = Profile.mode_name p;
                lg_clients = n;
                lg_target_rps = Profile.target_rps p;
                lg_warmup_seconds = p.Profile.p_warmup_s;
                lg_window_seconds = window;
                lg_plan_cache = Profile.plan_cache_name p;
                lg_seed = p.Profile.p_seed;
                lg_sent = sent;
                lg_completed = completed;
                lg_errors = Atomic.get counters.k_errors;
                lg_overloaded = Atomic.get counters.k_overloaded;
                lg_late = late;
                lg_offered_rps = float_of_int (sent + late) /. window;
                lg_achieved_rps = float_of_int completed /. window;
                lg_latency = latency_views p hists;
                lg_server = server;
              }))
    with
    | lg -> Ok lg
    | exception Fail msg -> Error msg
    | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

  let record ~argv lg =
    {
      Bench_json.r_git_rev = Bench_json.git_rev ();
      r_unix_time = Unix.time ();
      r_argv = argv;
      r_jobs = lg.Bench_json.lg_clients;
      r_executor = "loadgen";
      r_experiments = [];
      r_kind = "loadgen";
      r_loadgen = Some lg;
    }

  let summary_lines (lg : Bench_json.loadgen) =
    let q name v = Printf.sprintf "%s %.2fms" name (1000.0 *. v) in
    let all = Ab.all_latency lg in
    [
      Printf.sprintf "profile %s: %s loop, %d client(s), %s plan cache, seed %d"
        lg.Bench_json.lg_profile lg.Bench_json.lg_mode lg.Bench_json.lg_clients
        lg.Bench_json.lg_plan_cache lg.Bench_json.lg_seed;
      Printf.sprintf "window %.2fs: offered %.1f rps, achieved %.1f rps%s"
        lg.Bench_json.lg_window_seconds lg.Bench_json.lg_offered_rps
        lg.Bench_json.lg_achieved_rps
        (match lg.Bench_json.lg_target_rps with
        | None -> ""
        | Some r -> Printf.sprintf " (target %.1f rps)" r);
      Printf.sprintf "requests: sent %d, completed %d, errors %d, overloaded %d, late %d"
        lg.Bench_json.lg_sent lg.Bench_json.lg_completed lg.Bench_json.lg_errors
        lg.Bench_json.lg_overloaded lg.Bench_json.lg_late;
      Printf.sprintf "latency (all ops): %s  %s  %s"
        (q "p50" (Obs.quantile all 0.50))
        (q "p95" (Obs.quantile all 0.95))
        (q "p99" (Obs.quantile all 0.99));
    ]
end
