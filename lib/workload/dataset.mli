(** The ten schema-matching datasets of Table II.

    Each dataset is a (source style, target style, COMA++ option, capacity)
    tuple; {!matching} generates both schemas and runs the matcher tuned to
    the paper's correspondence count. The paper's measured o-ratios are
    carried for comparison in the experiment reports. *)

type t = {
  id : string;  (** "D1" .. "D10" *)
  source : Standards.style;
  target : Standards.style;
  strategy : Uxsm_matcher.Coma.strategy;  (** Table II's "opt": c / f *)
  capacity : int;  (** Table II's "Cap." *)
  paper_o_ratio : float;  (** Table II's measured o-ratio *)
}

val all : t list
(** D1..D10 in order. *)

val find : string -> t option

val d7 : t
(** The paper's default analysis dataset (XCBL → Apertum, capacity 226). *)

val matching : ?seed:int -> ?exec:Uxsm_exec.Executor.t -> t -> Uxsm_mapping.Matching.t
(** Generate the dataset's matching (memoized per [(id, seed)] — schema
    generation is cheap but XCBL-sized matcher runs are not). [exec]
    (default sequential) parallelizes the matcher's pair scoring; it is not
    part of the cache key because every backend yields identical results. *)

val mapping_set :
  ?seed:int ->
  ?method_:Uxsm_mapping.Mapping_set.method_ ->
  ?exec:Uxsm_exec.Executor.t ->
  h:int ->
  t ->
  Uxsm_mapping.Mapping_set.t
(** The dataset's top-h possible mappings (memoized like {!matching},
    [exec] likewise excluded from the key). *)
