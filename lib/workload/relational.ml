module Schema = Uxsm_schema.Schema
module Prng = Uxsm_util.Prng

(* lint: allow domain-unsafe — constant lookup table, never written *)
let table_concepts =
  [|
    ([ "order" ], [ [ "order"; "id" ]; [ "order"; "date" ]; [ "buyer"; "id" ]; [ "total"; "amount" ]; [ "currency" ]; [ "status" ] ]);
    ([ "buyer" ], [ [ "buyer"; "id" ]; [ "name" ]; [ "email" ]; [ "phone" ]; [ "city" ]; [ "country" ] ]);
    ([ "seller" ], [ [ "seller"; "id" ]; [ "name" ]; [ "email" ]; [ "city" ]; [ "rate" ] ]);
    ([ "order"; "line" ], [ [ "line"; "id" ]; [ "order"; "id" ]; [ "part"; "id" ]; [ "quantity" ]; [ "unit"; "price" ]; [ "discount" ] ]);
    ([ "part" ], [ [ "part"; "id" ]; [ "name" ]; [ "description" ]; [ "weight" ]; [ "price" ] ]);
    ([ "invoice" ], [ [ "invoice"; "id" ]; [ "order"; "id" ]; [ "amount" ]; [ "due"; "date" ]; [ "terms" ] ]);
    ([ "delivery" ], [ [ "delivery"; "id" ]; [ "order"; "id" ]; [ "street" ]; [ "city" ]; [ "zip" ]; [ "country" ]; [ "date" ] ]);
    ([ "payment" ], [ [ "payment"; "id" ]; [ "invoice"; "id" ]; [ "method" ]; [ "amount" ]; [ "date" ] ]);
    ([ "tax" ], [ [ "tax"; "id" ]; [ "category" ]; [ "rate" ]; [ "amount" ] ]);
    ([ "warehouse" ], [ [ "warehouse"; "id" ]; [ "location" ]; [ "region" ]; [ "capacity" ] ]);
    ([ "contract" ], [ [ "contract"; "id" ]; [ "seller"; "id" ]; [ "terms" ]; [ "start"; "date" ]; [ "end"; "date" ] ]);
    ([ "carrier" ], [ [ "carrier"; "id" ]; [ "name" ]; [ "phone" ]; [ "rate" ] ]);
  |]

let render variant tokens =
  Vocab.render Vocab.Camel (List.map (Vocab.pick_synonym ~variant) tokens)

let generate ?(seed = 42) ?(tables = 12) ?(columns = 8) ~variant ~name () =
  let prng = Prng.create (seed + variant) in
  let n_tables = min tables (Array.length table_concepts) in
  let table i =
    let table_tokens, cols = table_concepts.(i) in
    let keep = List.filteri (fun j _ -> j < columns) cols in
    (* drop a random column now and then so the two sides differ *)
    let keep =
      List.filter (fun _ -> Prng.int prng 8 <> 0) keep
      |> fun l -> if l = [] then [ List.hd cols ] else l
    in
    Schema.spec (render variant table_tokens)
      (List.map (fun c -> Schema.spec (render variant c) []) keep)
  in
  Schema.of_spec (Schema.spec name (List.init n_tables table))

let matching ?(seed = 42) ?(tables = 12) ?(columns = 8) () =
  let source = generate ~seed ~tables ~columns ~variant:1 ~name:"SourceDB" () in
  let target = generate ~seed:(seed + 1) ~tables ~columns ~variant:2 ~name:"TargetDB" () in
  Uxsm_matcher.Coma.run ~source ~target ()
