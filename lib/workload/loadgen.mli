(** Load generation against a live [uxsm serve]: workload profiles, a
    seeded deterministic request sampler, the closed/open-loop driver, and
    A/B regression comparison of recorded runs.

    A {e profile} (a JSON file, committed under [bench/profiles/])
    describes a traffic mix: corpora drawn from the Table II datasets with
    zipfian popularity, a weighted pool of request templates (PTQ patterns
    × h × τ × k × evaluator, plus [ping]/[mappings] control ops), an
    arrival model (closed-loop with N concurrent clients, or open-loop at
    a target request rate with bounded lateness), warmup/measurement
    phases, and a cold or warm plan-cache mode. {!Runner.run} replays the
    profile against a server over TCP or a Unix socket and returns a
    {!Uxsm_obs.Bench_json.loadgen} payload — offered vs achieved
    throughput, per-op client-side latency histograms, error/overload
    counts and the server-side counter window — which the CLI appends to
    the [BENCH_<rev>.json] trajectory as a ["loadgen"]-kind record.
    {!Ab} diffs two such records and flags regressions beyond a noise
    tolerance; CI runs it as a smoke gate.

    Everything here is deterministic from the profile seed: two runs of
    the same profile issue byte-identical request streams per client
    (server timing, not request content, is the only variable). No global
    [Random] state is used — every stochastic choice draws from an
    explicit {!Uxsm_util.Prng}. *)

module Profile : sig
  (** Arrival model of a profile. *)
  type arrival =
    | Closed of { clients : int }
        (** [clients] concurrent connections, each sending its next
            request as soon as the previous reply arrives. *)
    | Open of { rps : float; clients : int; max_lateness : float }
        (** Poisson arrivals at [rps] requests/second spread over
            [clients] pipelined connections; an arrival that cannot be
            sent within [max_lateness] seconds of its schedule is dropped
            and counted as late (bounding coordinated omission), and
            latency is measured from the {e scheduled} arrival time. *)

  type template = {
    t_op : string;
        (** ["query"], ["query_topk"], ["mappings"], ["ping"] or ["update"] *)
    t_pattern : string;  (** twig pattern (Table III syntax); [""] for non-query ops *)
    t_h : int;
    t_tau : float;
    t_k : int option;  (** forces the [query_topk] endpoint *)
    t_evaluator : string;  (** ["auto"], ["basic"] or ["tree"] *)
    t_weight : float;  (** relative sampling weight, >= 0 *)
    t_corrs : int;
        (** [update] only (JSON field ["corrs"], default 1): how many
            correspondences each sampled update re-scores. Updates are
            re-score-only — sampled from the corpus' own correspondence
            set with fresh scores in [(0, 1]] — so a long run never grows
            schemas or removes edges, and stays deterministic in
            [(seed, stream)]. *)
  }

  type corpus = {
    c_name : string;  (** server-side corpus name *)
    c_dataset : string;  (** Table II dataset id, ["D1"].. ["D10"] *)
    c_seed : int;  (** generation seed passed to [register] *)
  }

  type plan_cache =
    | Warm  (** warmup traffic populates the server caches before measuring *)
    | Cold
        (** every corpus is re-registered after warmup, invalidating all
            cached artifacts, so the window measures cold plan builds *)

  type t = {
    p_id : string;
    p_description : string;
    p_corpora : corpus list;
        (** popularity rank order: the first corpus is the most popular *)
    p_zipf_s : float;  (** zipf exponent; 0 = uniform popularity *)
    p_templates : template list;
    p_arrival : arrival;
    p_warmup_s : float;
    p_duration_s : float;  (** measurement window length *)
    p_plan_cache : plan_cache;
    p_seed : int;
  }

  val of_json : Uxsm_util.Json.t -> (t, string) result
  (** Decode and validate: known datasets, parseable patterns, a positive
      total template weight, positive duration/rps, and so on. Errors name
      the offending field. *)

  val to_json : t -> Uxsm_util.Json.t
  (** [of_json (to_json p)] restores [p]. *)

  val of_string : string -> (t, string) result

  val load : string -> (t, string) result
  (** Read and decode a file. *)

  val clients : t -> int
  val mode_name : t -> string
  (** ["closed"] or ["open"] *)

  val plan_cache_name : t -> string
  (** ["warm"] or ["cold"] *)

  val target_rps : t -> float option
  (** [Some rps] in open-loop mode *)

  val ops : t -> string list
  (** Distinct template op names, sorted. *)
end

module Sampler : sig
  (** One sampled request: the wire op name, the corpus it targets
      ([""] for corpus-less ops), and the request object (without an
      ["id"] — the runner assigns those). *)
  type request = {
    rq_op : string;
    rq_corpus : string;
    rq_body : Uxsm_util.Json.t;
  }

  type t

  val create : ?stream:int -> Profile.t -> t
  (** A deterministic sampler for client [stream] (default 0). Samplers
      created from equal [(profile seed, stream)] pairs produce equal
      request sequences; distinct streams are statistically independent
      (derived via {!Uxsm_util.Prng.split}). *)

  val next : t -> request
  (** Draw a corpus (zipfian over the profile's rank order) and a template
      (weighted), and render the request. *)

  val interarrival : t -> rps:float -> float
  (** Next exponential inter-arrival gap in seconds for a Poisson process
      at [rps]; used by the open-loop sender. Draws from the same stream,
      so the (request, gap) sequence is deterministic too. *)
end

module Ab : sig
  (** Regression comparison of two loadgen records for the same profile. *)

  type metric = {
    ab_metric : string;  (** ["throughput_rps"], ["latency_p50"], ... *)
    ab_a : float;  (** baseline value *)
    ab_b : float;  (** candidate value *)
    ab_delta : float;
        (** signed relative delta [(b - a) / a]; [infinity] when [a = 0]
            and [b > 0], [0] when both are 0 *)
    ab_worse : bool;
        (** [true] when the delta exceeds the tolerance in the metric's
            bad direction (lower throughput, higher latency or error
            rate). A delta {e equal} to the tolerance passes. *)
  }

  type report = {
    ab_profile : string;
    ab_tolerance : float;
    ab_metrics : metric list;
  }

  val compare_loadgen :
    tolerance:float ->
    Uxsm_obs.Bench_json.loadgen ->
    Uxsm_obs.Bench_json.loadgen ->
    (report, string) result
  (** [compare_loadgen ~tolerance a b] diffs candidate [b] against
      baseline [a]: achieved throughput, p50/p95/p99 of the merged
      ["all"] latency histogram, and the error rate (errors / sent,
      compared as an absolute fraction against the tolerance). [Error]
      when the records belong to different profiles or arrival modes —
      such a pair is not comparable. [tolerance] must be >= 0. *)

  val regressed : report -> bool
  (** [true] iff any metric is worse than tolerated. *)

  val pick :
    ?profile:string ->
    Uxsm_obs.Bench_json.run list ->
    (Uxsm_obs.Bench_json.loadgen, string) result
  (** The {e last} loadgen-kind record of a parsed trajectory file
      (optionally restricted to a profile id) — the record an A/B gate
      compares. [Error] when none matches. *)

  val report_lines : report -> string list
  (** Human-readable rendering, one metric per line. *)
end

module Runner : sig
  type target =
    | Tcp of string * int
    | Unix_socket of string

  val run :
    ?log:(string -> unit) ->
    Profile.t ->
    target ->
    (Uxsm_obs.Bench_json.loadgen, string) result
  (** Replay the profile against a live server: connect, register the
      profile's corpora, run the warmup phase, open the measurement
      window with a [stats_reset] barrier (after re-registering when the
      plan-cache mode is {!Profile.Cold}), drive the arrival model for
      the configured duration, drain, and read the server's [stats]
      window. Latencies are observed into process-local
      [loadgen.<op>.latency] {!Uxsm_obs.Obs} histograms (reset at window
      start). [log] receives progress lines (default: silent).

      [Error] on connection failure, a failed registration, or a refused
      [stats_reset]; mid-run connection loss surfaces as error counts,
      not failure. *)

  val record : argv:string list -> Uxsm_obs.Bench_json.loadgen -> Uxsm_obs.Bench_json.run
  (** Wrap a runner result as an appendable ["loadgen"]-kind run record
      ([r_jobs] = client count, [r_executor] = ["loadgen"]). *)

  val summary_lines : Uxsm_obs.Bench_json.loadgen -> string list
  (** Human-readable run summary (throughput, quantiles, error counts). *)
end
