module Coma = Uxsm_matcher.Coma

type t = {
  id : string;
  source : Standards.style;
  target : Standards.style;
  strategy : Coma.strategy;
  capacity : int;
  paper_o_ratio : float;
}

let all =
  [
    { id = "D1"; source = Standards.excel; target = Standards.noris; strategy = Coma.Fragment; capacity = 30; paper_o_ratio = 0.79 };
    { id = "D2"; source = Standards.excel; target = Standards.paragon; strategy = Coma.Context; capacity = 47; paper_o_ratio = 0.63 };
    { id = "D3"; source = Standards.excel; target = Standards.paragon; strategy = Coma.Fragment; capacity = 31; paper_o_ratio = 0.57 };
    { id = "D4"; source = Standards.noris; target = Standards.paragon; strategy = Coma.Context; capacity = 41; paper_o_ratio = 0.64 };
    { id = "D5"; source = Standards.noris; target = Standards.paragon; strategy = Coma.Fragment; capacity = 21; paper_o_ratio = 0.53 };
    { id = "D6"; source = Standards.opentrans; target = Standards.apertum; strategy = Coma.Context; capacity = 77; paper_o_ratio = 0.87 };
    { id = "D7"; source = Standards.xcbl; target = Standards.apertum; strategy = Coma.Context; capacity = 226; paper_o_ratio = 0.84 };
    { id = "D8"; source = Standards.xcbl; target = Standards.cidx; strategy = Coma.Context; capacity = 127; paper_o_ratio = 0.82 };
    { id = "D9"; source = Standards.xcbl; target = Standards.opentrans; strategy = Coma.Context; capacity = 619; paper_o_ratio = 0.91 };
    { id = "D10"; source = Standards.opentrans; target = Standards.xcbl; strategy = Coma.Context; capacity = 619; paper_o_ratio = 0.91 };
  ]

let find id = List.find_opt (fun d -> String.equal d.id id) all

let d7 =
  match find "D7" with
  | Some d -> d
  | None -> assert false

(* The memo tables are process-global so concurrent callers (the server
   dispatches batches of pure requests across domains) must serialize
   around them. Each table gets its own lock; [mapping_set] calls
   [matching] while holding its own, so the nesting is always
   mset (40) → matching (44), in rank order. Holding the lock across the
   miss path means a concurrent
   request for the same dataset waits instead of duplicating the work. *)
let matching_lock =
  Uxsm_util.Locks.create ~name:"dataset.matching" ~rank:Uxsm_util.Locks.rank_dataset_matching

(* lint: allow domain-unsafe — guarded by matching_lock *)
let matching_cache : (string * int, Uxsm_mapping.Matching.t) Hashtbl.t = Hashtbl.create 16

(* [exec] is deliberately absent from the cache keys below: every backend
   produces bit-identical results (see Uxsm_exec.Executor), so a hit cached
   under one backend is a valid answer under any other. *)
let matching ?(seed = 42) ?(exec = Uxsm_exec.Executor.sequential) d =
  Uxsm_util.Locks.with_lock matching_lock @@ fun () ->
  match Hashtbl.find_opt matching_cache (d.id, seed) with
  | Some m -> m
  | None ->
    let source = Standards.generate ~seed d.source in
    let target = Standards.generate ~seed d.target in
    let m =
      Coma.run_with_capacity ~exec ~strategy:d.strategy ~capacity:d.capacity ~source ~target ()
    in
    Hashtbl.add matching_cache (d.id, seed) m;
    m

let mset_lock =
  Uxsm_util.Locks.create ~name:"dataset.mset" ~rank:Uxsm_util.Locks.rank_dataset_mset

(* lint: allow domain-unsafe — guarded by mset_lock *)
let mset_cache : (string * int * int * bool, Uxsm_mapping.Mapping_set.t) Hashtbl.t =
  Hashtbl.create 16

let mapping_set ?(seed = 42) ?(method_ = Uxsm_mapping.Mapping_set.Partitioned)
    ?(exec = Uxsm_exec.Executor.sequential) ~h d =
  let key = (d.id, seed, h, method_ = Uxsm_mapping.Mapping_set.Partitioned) in
  Uxsm_util.Locks.with_lock mset_lock @@ fun () ->
  match Hashtbl.find_opt mset_cache key with
  | Some s -> s
  | None ->
    let s = Uxsm_mapping.Mapping_set.generate ~method_ ~exec ~h (matching ~seed ~exec d) in
    Hashtbl.add mset_cache key s;
    s
