type casing =
  | Camel
  | UpperSnake
  | Lower
  | LowerSnake

let capitalize s =
  if s = "" then s
  else String.make 1 (Char.uppercase_ascii s.[0]) ^ String.sub s 1 (String.length s - 1)

let render casing tokens =
  match casing with
  | Camel -> String.concat "" (List.map capitalize tokens)
  | UpperSnake -> String.concat "_" (List.map String.uppercase_ascii tokens)
  | Lower -> String.concat "" tokens
  | LowerSnake -> String.concat "_" tokens

(* Alternatives per canonical token; kept consistent with
   Name_sim.default_pairs so renamings remain discoverable. *)
let synonym_table =
  [
    ("buyer", [ "buyer"; "customer"; "purchaser" ]);
    ("seller", [ "seller"; "supplier"; "vendor" ]);
    ("order", [ "order"; "purchase"; "po" ]);
    ("id", [ "id"; "identifier"; "code"; "number" ]);
    ("quantity", [ "quantity"; "qty" ]);
    ("amount", [ "amount"; "total" ]);
    ("price", [ "price"; "cost" ]);
    ("contact", [ "contact"; "party" ]);
    ("street", [ "street"; "road" ]);
    ("zip", [ "zip"; "postcode"; "postal" ]);
    ("email", [ "email"; "mail" ]);
    ("phone", [ "phone"; "telephone" ]);
    ("invoice", [ "invoice"; "bill" ]);
    ("deliver", [ "deliver"; "ship" ]);
    ("delivery", [ "delivery"; "shipping" ]);
    ("line", [ "line"; "item" ]);
    ("date", [ "date"; "day" ]);
    ("country", [ "country"; "nation" ]);
    ("name", [ "name"; "label" ]);
  ]

let synonym_alternatives token =
  match List.assoc_opt token synonym_table with
  | Some l -> l
  | None -> [ token ]

let pick_synonym ~variant token =
  let alts = synonym_alternatives token in
  List.nth alts (variant mod List.length alts)

(* lint: allow domain-unsafe — constant lookup table, never written *)
let filler_pool =
  [|
    "attachment"; "remark"; "note"; "reference"; "transport"; "routing"; "terms"; "allowance";
    "charge"; "schedule"; "period"; "validity"; "language"; "currency"; "rate"; "category";
    "classification"; "dimension"; "weight"; "volume"; "packaging"; "marking"; "hazard";
    "customs"; "duty"; "region"; "district"; "location"; "site"; "dock"; "warehouse"; "batch";
    "serial"; "revision"; "version"; "status"; "priority"; "channel"; "medium"; "account";
    "ledger"; "budget"; "authorization"; "approval"; "signature"; "certificate"; "license";
    "agreement"; "contract"; "clause"; "condition"; "exception"; "history"; "audit"; "detail";
    "header"; "group"; "list"; "entry"; "record"; "field"; "section"; "segment"; "component";
    "extension"; "custom"; "user"; "agent"; "broker"; "carrier"; "forwarder"; "consignee";
    "payer"; "payee"; "beneficiary"; "guarantor"; "insurer"; "policy"; "claim"; "settlement";
  |]

(* Each style draws from a 35-token window into the pool; windows of
   different styles overlap partially, so some filler matches exist across
   standards without crowding out the renamed core concepts. *)
let filler_tokens ?(slice = 0) prng =
  let width = 35 in
  let offset = slice * 15 mod Array.length filler_pool in
  let pick () =
    let i = (offset + Uxsm_util.Prng.int prng width) mod Array.length filler_pool in
    filler_pool.(i)
  in
  let n = 2 + Uxsm_util.Prng.int prng 2 in
  List.init n (fun _ -> pick ())

(* lint: allow domain-unsafe — constant lookup table, never written *)
let city_names =
  [| "HongKong"; "London"; "Berlin"; "Paris"; "Tokyo"; "Boston"; "Seattle"; "Milan"; "Oslo"; "Delhi" |]

(* lint: allow domain-unsafe — constant lookup table, never written *)
let person_names =
  [| "Cathy"; "Bob"; "Alice"; "David"; "Erin"; "Frank"; "Grace"; "Henry"; "Ivy"; "Jack" |]

(* lint: allow domain-unsafe — constant lookup table, never written *)
let street_names =
  [| "Pokfulam Road"; "Main Street"; "High Street"; "Elm Avenue"; "Oak Lane"; "Bay Road" |]

(* lint: allow domain-unsafe — constant lookup table, never written *)
let country_names = [| "China"; "UK"; "Germany"; "France"; "Japan"; "USA"; "Italy"; "Norway" |]

(* lint: allow domain-unsafe — constant lookup table, never written *)
let words =
  [|
    "standard"; "express"; "fragile"; "bulk"; "priority"; "economy"; "sample"; "repeat";
    "urgent"; "deferred"; "partial"; "complete";
  |]
