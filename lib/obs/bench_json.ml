module Json = Uxsm_util.Json

type measurement = {
  m_name : string;
  m_seconds_per_run : float;
}

type experiment = {
  e_id : string;
  e_title : string;
  e_params : (string * Json.t) list;
  e_wall_seconds : float;
  e_measurements : measurement list;
  e_counters : (string * int) list;
  e_spans : (string * (int * float)) list;
  e_histograms : (string * Obs.hist_view) list;
}

type loadgen = {
  lg_profile : string;
  lg_mode : string;
  lg_clients : int;
  lg_target_rps : float option;
  lg_warmup_seconds : float;
  lg_window_seconds : float;
  lg_plan_cache : string;
  lg_seed : int;
  lg_sent : int;
  lg_completed : int;
  lg_errors : int;
  lg_overloaded : int;
  lg_late : int;
  lg_offered_rps : float;
  lg_achieved_rps : float;
  lg_latency : (string * Obs.hist_view) list;
  lg_server : (string * int) list;
}

type run = {
  r_git_rev : string;
  r_unix_time : float;
  r_argv : string list;
  r_jobs : int;
  r_executor : string;
  r_experiments : experiment list;
  r_kind : string;
  r_loadgen : loadgen option;
}

let experiment ?(params = []) ?(measurements = []) ?snapshot ~id ~title ~wall_seconds () =
  let snap =
    match snapshot with
    | Some s -> Obs.nonzero s
    | None -> { Obs.snap_counters = []; snap_spans = []; snap_histograms = [] }
  in
  {
    e_id = id;
    e_title = title;
    e_params = params;
    e_wall_seconds = wall_seconds;
    e_measurements = measurements;
    e_counters = snap.Obs.snap_counters;
    e_spans = snap.Obs.snap_spans;
    e_histograms = snap.Obs.snap_histograms;
  }

(* ------------------------------ to JSON --------------------------- *)

let measurement_to_json m =
  Json.Assoc [ ("name", Json.String m.m_name); ("seconds_per_run", Json.Float m.m_seconds_per_run) ]

let hist_view_to_json (v : Obs.hist_view) =
  Json.Assoc
    [
      ("count", Json.Int v.Obs.hv_count);
      ("sum", Json.Float v.Obs.hv_sum);
      ( "buckets",
        Json.List
          (List.map
             (fun (b, c) -> Json.List [ Json.Float b; Json.Int c ])
             v.Obs.hv_buckets) );
      ("overflow", Json.Int v.Obs.hv_overflow);
    ]

let experiment_to_json e =
  Json.Assoc
    ([
       ("id", Json.String e.e_id);
       ("title", Json.String e.e_title);
       ("params", Json.Assoc e.e_params);
       ("wall_seconds", Json.Float e.e_wall_seconds);
       ("measurements", Json.List (List.map measurement_to_json e.e_measurements));
       ("counters", Json.Assoc (List.map (fun (n, v) -> (n, Json.Int v)) e.e_counters));
       ( "spans",
         Json.Assoc
           (List.map
              (fun (n, (c, s)) ->
                (n, Json.Assoc [ ("count", Json.Int c); ("seconds", Json.Float s) ]))
              e.e_spans) );
     ]
    (* Absent when empty, so pre-histogram records and new ones with no
       histogram traffic stay byte-for-byte in the old shape. *)
    @
    match e.e_histograms with
    | [] -> []
    | hs -> [ ("histograms", Json.Assoc (List.map (fun (n, v) -> (n, hist_view_to_json v)) hs)) ])

let loadgen_to_json lg =
  Json.Assoc
    ([
       ("profile", Json.String lg.lg_profile);
       ("mode", Json.String lg.lg_mode);
       ("clients", Json.Int lg.lg_clients);
     ]
    @ (match lg.lg_target_rps with
      | None -> []
      | Some r -> [ ("target_rps", Json.Float r) ])
    @ [
        ("warmup_seconds", Json.Float lg.lg_warmup_seconds);
        ("window_seconds", Json.Float lg.lg_window_seconds);
        ("plan_cache", Json.String lg.lg_plan_cache);
        ("seed", Json.Int lg.lg_seed);
        ("sent", Json.Int lg.lg_sent);
        ("completed", Json.Int lg.lg_completed);
        ("errors", Json.Int lg.lg_errors);
        ("overloaded", Json.Int lg.lg_overloaded);
        ("late", Json.Int lg.lg_late);
        ("offered_rps", Json.Float lg.lg_offered_rps);
        ("achieved_rps", Json.Float lg.lg_achieved_rps);
        ( "latency",
          Json.Assoc (List.map (fun (n, v) -> (n, hist_view_to_json v)) lg.lg_latency) );
        ("server", Json.Assoc (List.map (fun (n, v) -> (n, Json.Int v)) lg.lg_server));
      ])

let run_to_json r =
  Json.Assoc
    ([
       ("git_rev", Json.String r.r_git_rev);
       ("unix_time", Json.Float r.r_unix_time);
       ("argv", Json.List (List.map (fun a -> Json.String a) r.r_argv));
       ("jobs", Json.Int r.r_jobs);
       ("executor", Json.String r.r_executor);
       ("experiments", Json.List (List.map experiment_to_json r.r_experiments));
     ]
    (* Kind and payload are omitted for plain bench records so pre-loadgen
       records round-trip byte-identically. *)
    @ (match r.r_kind with
      | "bench" -> []
      | k -> [ ("kind", Json.String k) ])
    @
    match r.r_loadgen with
    | None -> []
    | Some lg -> [ ("loadgen", loadgen_to_json lg) ])

let run_to_string r = Json.to_string (run_to_json r)

(* ----------------------------- from JSON -------------------------- *)

exception Fail of string

let failf fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

let field name j =
  match Json.member name j with
  | Some v -> v
  | None -> failf "missing field %S" name

let get what conv name j =
  match conv (field name j) with
  | Some v -> v
  | None -> failf "field %S is not a %s" name what

let str = get "string" Json.to_string_opt
let num = get "number" Json.to_float
let items = get "array" Json.to_list
let fields = get "object" Json.to_assoc

let measurement_of_json j =
  { m_name = str "name" j; m_seconds_per_run = num "seconds_per_run" j }

let span_of_json name j =
  (name, (get "int" Json.to_int "count" j, num "seconds" j))

let hist_view_of_json name j =
  let bucket = function
    | Json.List [ b; c ] -> (
      match (Json.to_float b, Json.to_int c) with
      | Some b, Some c -> (b, c)
      | _ -> failf "histogram %S has a malformed bucket" name)
    | _ -> failf "histogram %S has a malformed bucket" name
  in
  {
    Obs.hv_count = get "int" Json.to_int "count" j;
    hv_sum = num "sum" j;
    hv_buckets = List.map bucket (items "buckets" j);
    hv_overflow = get "int" Json.to_int "overflow" j;
  }

let experiment_of_json j =
  {
    e_id = str "id" j;
    e_title = str "title" j;
    e_params = fields "params" j;
    e_wall_seconds = num "wall_seconds" j;
    e_measurements = List.map measurement_of_json (items "measurements" j);
    e_counters =
      List.map
        (fun (n, v) ->
          match Json.to_int v with
          | Some i -> (n, i)
          | None -> failf "counter %S is not an int" n)
        (fields "counters" j);
    e_spans = List.map (fun (n, v) -> span_of_json n v) (fields "spans" j);
    e_histograms =
      (* Optional: records written before histograms existed carry none. *)
      (match Json.member "histograms" j with
      | None -> []
      | Some h -> (
        match Json.to_assoc h with
        | Some hs -> List.map (fun (n, v) -> (n, hist_view_of_json n v)) hs
        | None -> failf "field \"histograms\" is not an object"));
  }

(* Executor fields are optional on parse: pre-executor records (PR 1's
   baseline among them) carry neither, and can only have run sequentially. *)
let opt_field ~default conv name j =
  match Json.member name j with
  | None -> default
  | Some v -> (
    match conv v with
    | Some x -> x
    | None -> failf "field %S has the wrong type" name)

let int_assoc what name j =
  List.map
    (fun (n, v) ->
      match Json.to_int v with
      | Some i -> (n, i)
      | None -> failf "%s %S is not an int" what n)
    (fields name j)

let loadgen_of_json j =
  {
    lg_profile = str "profile" j;
    lg_mode = str "mode" j;
    lg_clients = get "int" Json.to_int "clients" j;
    lg_target_rps =
      (match Json.member "target_rps" j with
      | None -> None
      | Some v -> (
        match Json.to_float v with
        | Some f -> Some f
        | None -> failf "field \"target_rps\" is not a number"));
    lg_warmup_seconds = num "warmup_seconds" j;
    lg_window_seconds = num "window_seconds" j;
    lg_plan_cache = str "plan_cache" j;
    lg_seed = get "int" Json.to_int "seed" j;
    lg_sent = get "int" Json.to_int "sent" j;
    lg_completed = get "int" Json.to_int "completed" j;
    lg_errors = get "int" Json.to_int "errors" j;
    lg_overloaded = get "int" Json.to_int "overloaded" j;
    lg_late = get "int" Json.to_int "late" j;
    lg_offered_rps = num "offered_rps" j;
    lg_achieved_rps = num "achieved_rps" j;
    lg_latency = List.map (fun (n, v) -> (n, hist_view_of_json n v)) (fields "latency" j);
    lg_server = int_assoc "server counter" "server" j;
  }

let run_of_json j =
  try
    Ok
      {
        r_git_rev = str "git_rev" j;
        r_unix_time = num "unix_time" j;
        r_jobs = opt_field ~default:1 Json.to_int "jobs" j;
        r_executor = opt_field ~default:"sequential" Json.to_string_opt "executor" j;
        r_argv =
          List.map
            (fun a ->
              match Json.to_string_opt a with
              | Some s -> s
              | None -> failf "argv entry is not a string")
            (items "argv" j);
        r_experiments = List.map experiment_of_json (items "experiments" j);
        r_kind = opt_field ~default:"bench" Json.to_string_opt "kind" j;
        r_loadgen =
          (match Json.member "loadgen" j with
          | None -> None
          | Some lj -> Some (loadgen_of_json lj));
      }
  with Fail msg -> Error msg

(* ---------------------------- invariants -------------------------- *)

(* The shared Obs histogram scale has 41 finite buckets; a view keeps only
   the nonzero ones, so any well-formed view has at most that many. *)
let max_hist_buckets = 41

let check_hist name (v : Obs.hist_view) =
  if v.Obs.hv_count < 0 then failf "histogram %S: negative count" name;
  if v.Obs.hv_overflow < 0 then failf "histogram %S: negative overflow" name;
  if List.length v.Obs.hv_buckets > max_hist_buckets then
    failf "histogram %S: %d buckets exceeds the %d-bucket scale" name
      (List.length v.Obs.hv_buckets) max_hist_buckets;
  let mass =
    List.fold_left
      (fun acc (bound, c) ->
        if c < 0 then failf "histogram %S: negative bucket count" name;
        if not (Float.is_finite bound) then failf "histogram %S: non-finite bucket bound" name;
        acc + c)
      0 v.Obs.hv_buckets
  in
  let rec ascending = function
    | (b1, _) :: ((b2, _) :: _ as rest) ->
      if b1 >= b2 then failf "histogram %S: bucket bounds not strictly ascending" name;
      ascending rest
    | _ -> ()
  in
  ascending v.Obs.hv_buckets;
  if mass + v.Obs.hv_overflow < v.Obs.hv_count then
    failf "histogram %S: bucket mass %d + overflow %d below count %d" name mass
      v.Obs.hv_overflow v.Obs.hv_count

let check_loadgen lg =
  if String.trim lg.lg_profile = "" then failf "loadgen: empty profile id";
  (match lg.lg_mode with
  | "closed" | "open" -> ()
  | m -> failf "loadgen: unknown mode %S" m);
  (match lg.lg_plan_cache with
  | "warm" | "cold" -> ()
  | p -> failf "loadgen: unknown plan_cache %S" p);
  if lg.lg_clients < 1 then failf "loadgen: clients must be >= 1";
  List.iter
    (fun (what, v) -> if v < 0 then failf "loadgen: negative %s" what)
    [
      ("sent", lg.lg_sent); ("completed", lg.lg_completed); ("errors", lg.lg_errors);
      ("overloaded", lg.lg_overloaded); ("late", lg.lg_late);
    ];
  List.iter
    (fun (what, v) ->
      if not (Float.is_finite v) || v < 0.0 then failf "loadgen: %s must be finite and >= 0" what)
    [
      ("warmup_seconds", lg.lg_warmup_seconds); ("offered_rps", lg.lg_offered_rps);
      ("achieved_rps", lg.lg_achieved_rps);
    ];
  if not (Float.is_finite lg.lg_window_seconds) || lg.lg_window_seconds <= 0.0 then
    failf "loadgen: window_seconds must be positive";
  (match lg.lg_target_rps with
  | Some r when (not (Float.is_finite r)) || r <= 0.0 -> failf "loadgen: target_rps must be positive"
  | _ -> ());
  if lg.lg_completed > lg.lg_sent then failf "loadgen: completed exceeds sent";
  List.iter (fun (n, v) -> check_hist n v) lg.lg_latency

(* The incremental-maintenance ablation carries its own invariants: the
   whole point of the delta path is that it beats a full rebuild while
   re-ranking fewer components than exist, so a record claiming otherwise
   is evidence of a broken run (or a regression) and must not land as a
   baseline. *)
let check_abl_update e =
  let m name =
    List.find_opt (fun m -> m.m_name = name) e.e_measurements
  in
  List.iter
    (fun meas ->
      match String.index_opt meas.m_name '-' with
      | Some i when String.sub meas.m_name i (String.length meas.m_name - i) = "-incr" -> (
        let id = String.sub meas.m_name 0 i in
        match m (id ^ "-full") with
        | None -> failf "abl_update: %S has no matching %S" meas.m_name (id ^ "-full")
        | Some full ->
          if meas.m_seconds_per_run >= full.m_seconds_per_run then
            failf "abl_update: incremental %S (%g s) not faster than full rebuild (%g s)" id
              meas.m_seconds_per_run full.m_seconds_per_run)
      | _ -> ())
    e.e_measurements;
  List.iter
    (fun (name, v) ->
      match String.index_opt name '_' with
      | Some i when String.sub name i (String.length name - i) = "_reranked" -> (
        let id = String.sub name 0 i in
        let reranked =
          match v with
          | Json.Int n -> n
          | _ -> failf "abl_update: param %S is not an int" name
        in
        match List.assoc_opt (id ^ "_components") e.e_params with
        | Some (Json.Int total) ->
          if reranked >= total then
            failf "abl_update: %s re-ranked %d of %d components — not incremental" id reranked
              total
        | _ -> failf "abl_update: param %S has no matching %S" name (id ^ "_components"))
      | _ -> ())
    e.e_params

let check_run r =
  try
    (match (r.r_kind, r.r_loadgen) with
    | "loadgen", None -> failf "loadgen record without a \"loadgen\" payload"
    | "loadgen", Some lg -> check_loadgen lg
    | "bench", Some _ -> failf "bench record with a \"loadgen\" payload"
    | "bench", None ->
      List.iter (fun e -> if e.e_id = "abl_update" then check_abl_update e) r.r_experiments
    | k, _ -> failf "unknown record kind %S" k);
    Ok ()
  with Fail msg -> Error msg

let run_of_string text =
  match Json.of_string text with
  | Error e -> Error e
  | Ok j -> run_of_json j

let runs_of_lines text =
  (* Line numbers are 1-based over the raw file, blank lines included, so
     an error message points at the actual line of the JSONL file. *)
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest when String.trim line = "" -> go acc (lineno + 1) rest
    | line :: rest -> (
      match run_of_string line with
      | Ok r -> go (r :: acc) (lineno + 1) rest
      | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go [] 1 lines

let append_to_file ~path r =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (run_to_string r);
  output_char oc '\n';
  close_out oc

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let rev = try input_line ic with End_of_file -> "" in
    match (Unix.close_process_in ic, rev) with
    | Unix.WEXITED 0, rev when rev <> "" -> rev
    | _ -> "unknown"
  with Unix.Unix_error _ | Sys_error _ -> "unknown"
