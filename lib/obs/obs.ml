(* Domain-safe sinks: counter values and completed-span accumulators are
   atomics (one lock-free fetch-and-add per event, no per-event locking);
   the in-flight state of a span — re-entrancy depth and outermost start
   time — is per-domain, so concurrent [time] calls on the same span from
   different domains time independently and only their completed durations
   meet in the shared accumulators. The registry itself is touched rarely
   (handle resolution, snapshots, reset) and is guarded by one mutex. *)

type counter = {
  c_name : string;
  c_value : int Atomic.t;
}

(* Per-domain in-flight state of one span. *)
type span_local = {
  mutable depth : int;  (* re-entrancy depth, to avoid double counting *)
  mutable started : float;  (* start of the outermost active [time] *)
}

type span = {
  s_name : string;
  s_count : int Atomic.t;
  s_seconds : float Atomic.t;
  s_local : span_local Domain.DLS.key;
}

module Locks = Uxsm_util.Locks

let registry_lock = Locks.create ~name:"obs.registry" ~rank:Locks.rank_registry

(* lint: allow domain-unsafe — registry tables are only touched under registry_lock *)
let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32

(* lint: allow domain-unsafe — registry tables are only touched under registry_lock *)
let spans_tbl : (string, span) Hashtbl.t = Hashtbl.create 16

let with_registry f = Locks.with_lock registry_lock f

let counter name =
  with_registry @@ fun () ->
  match Hashtbl.find_opt counters_tbl name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = Atomic.make 0 } in
    Hashtbl.add counters_tbl name c;
    c

let incr c = Atomic.incr c.c_value

(* The lock witness's violation counter, surfaced through the normal
   metrics pipeline: CI and the stats endpoint gate on it staying zero.
   Installed at load time so any program that links the Obs layer (every
   driver in this repo) gets the mirror for free. The hook body touches
   only the counter's atomic — no ranked lock is taken on the violation
   path. *)
let c_lock_violations = { c_name = "locks.order_violations"; c_value = Atomic.make 0 }

let () =
  Hashtbl.add counters_tbl c_lock_violations.c_name c_lock_violations;
  Locks.set_violation_hook (fun _ -> Atomic.incr c_lock_violations.c_value)

let add c n =
  if n < 0 then invalid_arg "Obs.add: counters only count up";
  ignore (Atomic.fetch_and_add c.c_value n)

let value c = Atomic.get c.c_value
let name c = c.c_name

let span name =
  with_registry @@ fun () ->
  match Hashtbl.find_opt spans_tbl name with
  | Some s -> s
  | None ->
    let s =
      {
        s_name = name;
        s_count = Atomic.make 0;
        s_seconds = Atomic.make 0.0;
        s_local = Domain.DLS.new_key (fun () -> { depth = 0; started = 0.0 });
      }
    in
    Hashtbl.add spans_tbl name s;
    s

(* Span durations are elapsed-time measurements: the monotonic clock keeps
   them immune to NTP steps mid-run. *)
let now () = Uxsm_util.Timing.now_mono ()

(* [Atomic] has no float fetch-and-add; a CAS loop is enough for the rare
   outermost-span completion (never on the per-event fast path). *)
let atomic_add_float a x =
  let rec go () =
    let old = Atomic.get a in
    if not (Atomic.compare_and_set a old (old +. x)) then go ()
  in
  go ()

let time s f =
  let l = Domain.DLS.get s.s_local in
  if l.depth = 0 then l.started <- now ();
  l.depth <- l.depth + 1;
  let finish () =
    l.depth <- l.depth - 1;
    Atomic.incr s.s_count;
    if l.depth = 0 then atomic_add_float s.s_seconds (now () -. l.started)
  in
  match f () with
  | x ->
    finish ();
    x
  | exception e ->
    finish ();
    raise e

let span_count s = Atomic.get s.s_count
let span_seconds s = Atomic.get s.s_seconds

(* ----------------------------- histograms -------------------------- *)
(* Fixed log-2 buckets shared by every histogram: upper bounds 2^-20 ..
   2^20 (roughly 1µs .. 12 days when the unit is seconds, or 0..10^6 for
   dimensionless gauges such as queue depths), plus one overflow bucket.
   Fixed bounds make concurrent observation a single fetch-and-add per
   event and make any two views mergeable bucket-by-bucket. *)

let hist_bucket_count = 41

(* lint: allow domain-unsafe — write-once bucket-bound table, read-only after init *)
let hist_bounds = Array.init hist_bucket_count (fun i -> 2.0 ** float_of_int (i - 20))

let bucket_index v =
  let rec go i =
    if i >= hist_bucket_count then hist_bucket_count (* overflow *)
    else if v <= hist_bounds.(i) then i
    else go (i + 1)
  in
  go 0

type histogram = {
  h_name : string;
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
  h_buckets : int Atomic.t array;  (* hist_bucket_count + 1: last = overflow *)
}

(* lint: allow domain-unsafe — registry table is only touched under registry_lock *)
let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16

let histogram name =
  with_registry @@ fun () ->
  match Hashtbl.find_opt histograms_tbl name with
  | Some h -> h
  | None ->
    let h =
      {
        h_name = name;
        h_count = Atomic.make 0;
        h_sum = Atomic.make 0.0;
        h_buckets = Array.init (hist_bucket_count + 1) (fun _ -> Atomic.make 0);
      }
    in
    Hashtbl.add histograms_tbl name h;
    h

let observe h v =
  Atomic.incr h.h_count;
  atomic_add_float h.h_sum v;
  ignore (Atomic.fetch_and_add h.h_buckets.(bucket_index v) 1)

let histogram_name h = h.h_name
let histogram_count h = Atomic.get h.h_count

type hist_view = {
  hv_count : int;
  hv_sum : float;
  hv_buckets : (float * int) list;
  hv_overflow : int;
}

let histogram_view h =
  (* Count first: a concurrent [observe] between the two reads can only
     make buckets sum to ≥ hv_count, never lose an observed event. *)
  let count = Atomic.get h.h_count in
  let sum = Atomic.get h.h_sum in
  let buckets = ref [] in
  for i = hist_bucket_count - 1 downto 0 do
    let c = Atomic.get h.h_buckets.(i) in
    if c > 0 then buckets := (hist_bounds.(i), c) :: !buckets
  done;
  {
    hv_count = count;
    hv_sum = sum;
    hv_buckets = !buckets;
    hv_overflow = Atomic.get h.h_buckets.(hist_bucket_count);
  }

let merge_views a b =
  let rec merge xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | (bx, cx) :: xs', (by, cy) :: ys' ->
      let c = Float.compare bx by in
      if c = 0 then (bx, cx + cy) :: merge xs' ys'
      else if c < 0 then (bx, cx) :: merge xs' ys
      else (by, cy) :: merge xs ys'
  in
  {
    hv_count = a.hv_count + b.hv_count;
    hv_sum = a.hv_sum +. b.hv_sum;
    hv_buckets = merge a.hv_buckets b.hv_buckets;
    hv_overflow = a.hv_overflow + b.hv_overflow;
  }

let quantile view q =
  if view.hv_count = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int view.hv_count in
    let rec walk cumulative = function
      | [] ->
        (* Rank falls in the overflow bucket: report the scale's edge. *)
        (match List.rev view.hv_buckets with
        | (bound, _) :: _ -> bound
        | [] -> hist_bounds.(hist_bucket_count - 1))
      | (bound, c) :: rest ->
        let cumulative' = cumulative +. float_of_int c in
        if cumulative' >= rank then begin
          (* Interpolate inside the bucket; its lower edge is bound/2 by
             the log-2 construction (0 would be exact only for the very
             first bucket — close enough for an estimate). *)
          let lo = bound /. 2.0 in
          let frac =
            if c = 0 then 1.0
            else Float.max 0.0 (Float.min 1.0 ((rank -. cumulative) /. float_of_int c))
          in
          lo +. (frac *. (bound -. lo))
        end
        else walk cumulative' rest
    in
    walk 0.0 view.hv_buckets
  end

let reset () =
  with_registry @@ fun () ->
  (* lint: allow nondet-iter — zeroing every counter is order-independent *)
  Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters_tbl;
  let t = now () in
  (* lint: allow nondet-iter — resetting each span touches only that span *)
  Hashtbl.iter
    (fun _ s ->
      Atomic.set s.s_count 0;
      Atomic.set s.s_seconds 0.0;
      (* In-flight state is execution state, not accounting state: depth
         must survive a reset or the matching [finish] of an active [time]
         would drive it negative and corrupt every later measurement. For a
         span active in the calling domain, restart its clock so only
         post-reset time is attributed. (In-flight spans of other domains
         cannot be reached from here; they contribute their full duration
         when they finish.) *)
      let l = Domain.DLS.get s.s_local in
      if l.depth > 0 then l.started <- t)
    spans_tbl;
  (* lint: allow nondet-iter — zeroing every histogram is order-independent *)
  Hashtbl.iter
    (fun _ h ->
      Atomic.set h.h_count 0;
      Atomic.set h.h_sum 0.0;
      Array.iter (fun b -> Atomic.set b 0) h.h_buckets)
    histograms_tbl

let sorted_assoc fold tbl =
  Hashtbl.fold fold tbl [] |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters () =
  with_registry @@ fun () ->
  sorted_assoc (fun name c acc -> (name, Atomic.get c.c_value) :: acc) counters_tbl

let spans () =
  with_registry @@ fun () ->
  sorted_assoc
    (fun name s acc -> (name, (Atomic.get s.s_count, Atomic.get s.s_seconds)) :: acc)
    spans_tbl

let histograms () =
  with_registry @@ fun () ->
  sorted_assoc (fun name h acc -> (name, histogram_view h) :: acc) histograms_tbl

type snapshot = {
  snap_counters : (string * int) list;
  snap_spans : (string * (int * float)) list;
  snap_histograms : (string * hist_view) list;
}

let snapshot () =
  { snap_counters = counters (); snap_spans = spans (); snap_histograms = histograms () }

let nonzero snap =
  {
    snap_counters = List.filter (fun (_, v) -> v <> 0) snap.snap_counters;
    snap_spans = List.filter (fun (_, (n, _)) -> n <> 0) snap.snap_spans;
    snap_histograms = List.filter (fun (_, v) -> v.hv_count <> 0) snap.snap_histograms;
  }

let pp_snapshot fmt snap =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (n, v) -> Format.fprintf fmt "%-42s %12d@ " n v) snap.snap_counters;
  List.iter
    (fun (n, (c, s)) -> Format.fprintf fmt "%-42s %12d %10.3fms@ " n c (1000.0 *. s))
    snap.snap_spans;
  List.iter
    (fun (n, v) ->
      Format.fprintf fmt "%-42s %12d p50=%.3fms p95=%.3fms p99=%.3fms@ " n v.hv_count
        (1000.0 *. quantile v 0.50) (1000.0 *. quantile v 0.95)
        (1000.0 *. quantile v 0.99))
    snap.snap_histograms;
  Format.fprintf fmt "@]"
