(* Domain-safe sinks: counter values and completed-span accumulators are
   atomics (one lock-free fetch-and-add per event, no per-event locking);
   the in-flight state of a span — re-entrancy depth and outermost start
   time — is per-domain, so concurrent [time] calls on the same span from
   different domains time independently and only their completed durations
   meet in the shared accumulators. The registry itself is touched rarely
   (handle resolution, snapshots, reset) and is guarded by one mutex. *)

type counter = {
  c_name : string;
  c_value : int Atomic.t;
}

(* Per-domain in-flight state of one span. *)
type span_local = {
  mutable depth : int;  (* re-entrancy depth, to avoid double counting *)
  mutable started : float;  (* start of the outermost active [time] *)
}

type span = {
  s_name : string;
  s_count : int Atomic.t;
  s_seconds : float Atomic.t;
  s_local : span_local Domain.DLS.key;
}

let registry_mutex = Mutex.create ()

(* lint: allow domain-unsafe — registry tables are only touched under registry_mutex *)
let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32

(* lint: allow domain-unsafe — registry tables are only touched under registry_mutex *)
let spans_tbl : (string, span) Hashtbl.t = Hashtbl.create 16

let with_registry f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let counter name =
  with_registry @@ fun () ->
  match Hashtbl.find_opt counters_tbl name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = Atomic.make 0 } in
    Hashtbl.add counters_tbl name c;
    c

let incr c = Atomic.incr c.c_value

let add c n =
  if n < 0 then invalid_arg "Obs.add: counters only count up";
  ignore (Atomic.fetch_and_add c.c_value n)

let value c = Atomic.get c.c_value
let name c = c.c_name

let span name =
  with_registry @@ fun () ->
  match Hashtbl.find_opt spans_tbl name with
  | Some s -> s
  | None ->
    let s =
      {
        s_name = name;
        s_count = Atomic.make 0;
        s_seconds = Atomic.make 0.0;
        s_local = Domain.DLS.new_key (fun () -> { depth = 0; started = 0.0 });
      }
    in
    Hashtbl.add spans_tbl name s;
    s

(* Span durations are elapsed-time measurements: the monotonic clock keeps
   them immune to NTP steps mid-run. *)
let now () = Uxsm_util.Timing.now_mono ()

(* [Atomic] has no float fetch-and-add; a CAS loop is enough for the rare
   outermost-span completion (never on the per-event fast path). *)
let atomic_add_float a x =
  let rec go () =
    let old = Atomic.get a in
    if not (Atomic.compare_and_set a old (old +. x)) then go ()
  in
  go ()

let time s f =
  let l = Domain.DLS.get s.s_local in
  if l.depth = 0 then l.started <- now ();
  l.depth <- l.depth + 1;
  let finish () =
    l.depth <- l.depth - 1;
    Atomic.incr s.s_count;
    if l.depth = 0 then atomic_add_float s.s_seconds (now () -. l.started)
  in
  match f () with
  | x ->
    finish ();
    x
  | exception e ->
    finish ();
    raise e

let span_count s = Atomic.get s.s_count
let span_seconds s = Atomic.get s.s_seconds

let reset () =
  with_registry @@ fun () ->
  (* lint: allow nondet-iter — zeroing every counter is order-independent *)
  Hashtbl.iter (fun _ c -> Atomic.set c.c_value 0) counters_tbl;
  let t = now () in
  (* lint: allow nondet-iter — resetting each span touches only that span *)
  Hashtbl.iter
    (fun _ s ->
      Atomic.set s.s_count 0;
      Atomic.set s.s_seconds 0.0;
      (* In-flight state is execution state, not accounting state: depth
         must survive a reset or the matching [finish] of an active [time]
         would drive it negative and corrupt every later measurement. For a
         span active in the calling domain, restart its clock so only
         post-reset time is attributed. (In-flight spans of other domains
         cannot be reached from here; they contribute their full duration
         when they finish.) *)
      let l = Domain.DLS.get s.s_local in
      if l.depth > 0 then l.started <- t)
    spans_tbl

let sorted_assoc fold tbl =
  Hashtbl.fold fold tbl [] |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters () =
  with_registry @@ fun () ->
  sorted_assoc (fun name c acc -> (name, Atomic.get c.c_value) :: acc) counters_tbl

let spans () =
  with_registry @@ fun () ->
  sorted_assoc
    (fun name s acc -> (name, (Atomic.get s.s_count, Atomic.get s.s_seconds)) :: acc)
    spans_tbl

type snapshot = {
  snap_counters : (string * int) list;
  snap_spans : (string * (int * float)) list;
}

let snapshot () = { snap_counters = counters (); snap_spans = spans () }

let nonzero snap =
  {
    snap_counters = List.filter (fun (_, v) -> v <> 0) snap.snap_counters;
    snap_spans = List.filter (fun (_, (n, _)) -> n <> 0) snap.snap_spans;
  }

let pp_snapshot fmt snap =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (n, v) -> Format.fprintf fmt "%-42s %12d@ " n v) snap.snap_counters;
  List.iter
    (fun (n, (c, s)) -> Format.fprintf fmt "%-42s %12d %10.3fms@ " n c (1000.0 *. s))
    snap.snap_spans;
  Format.fprintf fmt "@]"
