type counter = {
  c_name : string;
  mutable c_value : int;
}

type span = {
  s_name : string;
  mutable s_count : int;
  mutable s_seconds : float;
  mutable s_depth : int;  (* re-entrancy depth, to avoid double counting *)
  mutable s_started : float;  (* start of the outermost active [time] *)
}

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32
let spans_tbl : (string, span) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters_tbl name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.add counters_tbl name c;
    c

let incr c = c.c_value <- c.c_value + 1

let add c n =
  if n < 0 then invalid_arg "Obs.add: counters only count up";
  c.c_value <- c.c_value + n

let value c = c.c_value
let name c = c.c_name

let span name =
  match Hashtbl.find_opt spans_tbl name with
  | Some s -> s
  | None ->
    let s = { s_name = name; s_count = 0; s_seconds = 0.0; s_depth = 0; s_started = 0.0 } in
    Hashtbl.add spans_tbl name s;
    s

let now () = Unix.gettimeofday ()

let time s f =
  if s.s_depth = 0 then s.s_started <- now ();
  s.s_depth <- s.s_depth + 1;
  let finish () =
    s.s_depth <- s.s_depth - 1;
    s.s_count <- s.s_count + 1;
    if s.s_depth = 0 then s.s_seconds <- s.s_seconds +. (now () -. s.s_started)
  in
  match f () with
  | x ->
    finish ();
    x
  | exception e ->
    finish ();
    raise e

let span_count s = s.s_count
let span_seconds s = s.s_seconds

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters_tbl;
  Hashtbl.iter
    (fun _ s ->
      s.s_count <- 0;
      s.s_seconds <- 0.0;
      s.s_depth <- 0)
    spans_tbl

let sorted_assoc fold tbl =
  Hashtbl.fold fold tbl [] |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters () = sorted_assoc (fun name c acc -> (name, c.c_value) :: acc) counters_tbl
let spans () = sorted_assoc (fun name s acc -> (name, (s.s_count, s.s_seconds)) :: acc) spans_tbl

type snapshot = {
  snap_counters : (string * int) list;
  snap_spans : (string * (int * float)) list;
}

let snapshot () = { snap_counters = counters (); snap_spans = spans () }

let nonzero snap =
  {
    snap_counters = List.filter (fun (_, v) -> v <> 0) snap.snap_counters;
    snap_spans = List.filter (fun (_, (n, _)) -> n <> 0) snap.snap_spans;
  }

let pp_snapshot fmt snap =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (n, v) -> Format.fprintf fmt "%-42s %12d@ " n v) snap.snap_counters;
  List.iter
    (fun (n, (c, s)) -> Format.fprintf fmt "%-42s %12d %10.3fms@ " n c (1000.0 *. s))
    snap.snap_spans;
  Format.fprintf fmt "@]"
