(** Machine-readable benchmark records.

    One bench invocation produces one {!run}: the git revision it measured,
    the experiments it executed, and for each experiment its wall time, its
    named point measurements (seconds per run, from the harness) and the
    {!Obs} counter/span snapshot accumulated while it ran. Runs are appended
    to [BENCH_<rev>.json] as one JSON object per line (JSON Lines), so the
    trajectory of a branch is a diffable, append-only log.

    This lives in the library (not in [bench/]) so tests can round-trip the
    exact serialization the harness emits. *)

type measurement = {
  m_name : string;
  m_seconds_per_run : float;
}

type experiment = {
  e_id : string;  (** harness section id, e.g. ["fig9a"] *)
  e_title : string;
  e_params : (string * Uxsm_util.Json.t) list;  (** experiment parameters *)
  e_wall_seconds : float;  (** wall time of the whole section *)
  e_measurements : measurement list;  (** in emission order *)
  e_counters : (string * int) list;  (** nonzero {!Obs} counters *)
  e_spans : (string * (int * float)) list;  (** nonzero spans: count, seconds *)
  e_histograms : (string * Obs.hist_view) list;
      (** nonzero {!Obs} histograms (e.g. server latency distributions);
          records written before histograms existed parse as []. The JSON
          field is omitted when empty, so old records round-trip
          byte-identically. *)
}

type loadgen = {
  lg_profile : string;  (** profile id, the AB-comparison key *)
  lg_mode : string;  (** arrival model: ["closed"] or ["open"] *)
  lg_clients : int;  (** concurrent connections driving the server *)
  lg_target_rps : float option;  (** open-loop offered rate; [None] when closed *)
  lg_warmup_seconds : float;  (** configured warmup phase length *)
  lg_window_seconds : float;  (** measured wall length of the measurement window *)
  lg_plan_cache : string;  (** ["warm"] or ["cold"] *)
  lg_seed : int;  (** sampler seed the request streams derive from *)
  lg_sent : int;  (** requests written to the server inside the window *)
  lg_completed : int;  (** [ok: true] replies received *)
  lg_errors : int;  (** error replies (excluding overload rejections) plus lost requests *)
  lg_overloaded : int;  (** structured [overloaded] backpressure rejections *)
  lg_late : int;  (** open-loop arrivals dropped for exceeding the lateness bound *)
  lg_offered_rps : float;  (** (sent + late) / window *)
  lg_achieved_rps : float;  (** completed / window *)
  lg_latency : (string * Obs.hist_view) list;
      (** client-side per-op latency histograms, keyed by op name plus the
          merged ["all"]; same fixed bucket scale as every {!Obs} histogram *)
  lg_server : (string * int) list;
      (** server-side counter deltas over the window (the [stats] reply
          after a window-opening [stats_reset]) *)
}
(** One load-generator run against a live server: the workload
    configuration that produced it and the client-side measurements. *)

type run = {
  r_git_rev : string;
  r_unix_time : float;  (** seconds since the epoch at run start *)
  r_argv : string list;
  r_jobs : int;  (** executor pool size the run was measured with (1 = sequential) *)
  r_executor : string;  (** executor backend name, e.g. ["sequential"], ["domains"] *)
  r_experiments : experiment list;
  r_kind : string;  (** record kind: ["bench"] (harness experiments) or ["loadgen"] *)
  r_loadgen : loadgen option;  (** present exactly when [r_kind = "loadgen"] *)
}
(** Records written before the executor fields existed parse with
    [r_jobs = 1] and [r_executor = "sequential"] — the only configuration
    those runs could have used. Records written before the loadgen kind
    existed parse with [r_kind = "bench"] and [r_loadgen = None], and
    re-serialize byte-identically (the new fields are omitted for bench
    records). *)

val experiment :
  ?params:(string * Uxsm_util.Json.t) list ->
  ?measurements:measurement list ->
  ?snapshot:Obs.snapshot ->
  id:string ->
  title:string ->
  wall_seconds:float ->
  unit ->
  experiment
(** Constructor; the snapshot is filtered through {!Obs.nonzero}. *)

val run_to_json : run -> Uxsm_util.Json.t
val run_of_json : Uxsm_util.Json.t -> (run, string) result

val check_run : run -> (unit, string) result
(** Structural invariants beyond what parsing enforces, used by
    [bench/validate.exe]. A ["loadgen"] record must carry its payload (and
    a ["bench"] record must not), with a known mode and plan-cache value,
    at least one client, non-negative counts and rates, a positive
    measurement window, and well-formed latency histograms (strictly
    ascending bucket bounds on the shared 41-bucket scale, non-negative
    counts, bucket mass covering the total count). *)

val run_to_string : run -> string
(** Single line, no trailing newline. *)

val run_of_string : string -> (run, string) result

val runs_of_lines : string -> (run list, string) result
(** Parse a whole JSON-Lines file content (blank lines skipped). A
    malformed record fails with its 1-based line number and the offending
    field, e.g. ["line 3: field \"jobs\" is not a number"]. *)

val append_to_file : path:string -> run -> unit
(** Append [run_to_string run] plus a newline to [path], creating it if
    missing. *)

val git_rev : unit -> string
(** Short revision of the working tree's HEAD, or ["unknown"] outside a git
    checkout. *)
