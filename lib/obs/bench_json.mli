(** Machine-readable benchmark records.

    One bench invocation produces one {!run}: the git revision it measured,
    the experiments it executed, and for each experiment its wall time, its
    named point measurements (seconds per run, from the harness) and the
    {!Obs} counter/span snapshot accumulated while it ran. Runs are appended
    to [BENCH_<rev>.json] as one JSON object per line (JSON Lines), so the
    trajectory of a branch is a diffable, append-only log.

    This lives in the library (not in [bench/]) so tests can round-trip the
    exact serialization the harness emits. *)

type measurement = {
  m_name : string;
  m_seconds_per_run : float;
}

type experiment = {
  e_id : string;  (** harness section id, e.g. ["fig9a"] *)
  e_title : string;
  e_params : (string * Uxsm_util.Json.t) list;  (** experiment parameters *)
  e_wall_seconds : float;  (** wall time of the whole section *)
  e_measurements : measurement list;  (** in emission order *)
  e_counters : (string * int) list;  (** nonzero {!Obs} counters *)
  e_spans : (string * (int * float)) list;  (** nonzero spans: count, seconds *)
  e_histograms : (string * Obs.hist_view) list;
      (** nonzero {!Obs} histograms (e.g. server latency distributions);
          records written before histograms existed parse as []. The JSON
          field is omitted when empty, so old records round-trip
          byte-identically. *)
}

type run = {
  r_git_rev : string;
  r_unix_time : float;  (** seconds since the epoch at run start *)
  r_argv : string list;
  r_jobs : int;  (** executor pool size the run was measured with (1 = sequential) *)
  r_executor : string;  (** executor backend name, e.g. ["sequential"], ["domains"] *)
  r_experiments : experiment list;
}
(** Records written before the executor fields existed parse with
    [r_jobs = 1] and [r_executor = "sequential"] — the only configuration
    those runs could have used. *)

val experiment :
  ?params:(string * Uxsm_util.Json.t) list ->
  ?measurements:measurement list ->
  ?snapshot:Obs.snapshot ->
  id:string ->
  title:string ->
  wall_seconds:float ->
  unit ->
  experiment
(** Constructor; the snapshot is filtered through {!Obs.nonzero}. *)

val run_to_json : run -> Uxsm_util.Json.t
val run_of_json : Uxsm_util.Json.t -> (run, string) result

val run_to_string : run -> string
(** Single line, no trailing newline. *)

val run_of_string : string -> (run, string) result

val runs_of_lines : string -> (run list, string) result
(** Parse a whole JSON-Lines file content (blank lines skipped). A
    malformed record fails with its 1-based line number and the offending
    field, e.g. ["line 3: field \"jobs\" is not a number"]. *)

val append_to_file : path:string -> run -> unit
(** Append [run_to_string run] plus a newline to [path], creating it if
    missing. *)

val git_rev : unit -> string
(** Short revision of the working tree's HEAD, or ["unknown"] outside a git
    checkout. *)
