(** Lightweight observability: named counters and wall-clock spans behind a
    global registry.

    Hot paths (block-tree construction, PTQ evaluation, top-h ranking) bump
    pre-resolved {!counter} handles — one lock-free atomic [int] each, no
    hashing and no locking per event — while the registry supports {!reset}
    and deterministic {!snapshot}s for the benchmark harness, the CLI
    [stats] subcommand and tests. The [EXPLAIN]-style statistics of
    [Ptq.explain] are deltas of these counters.

    {b Domain safety.} Every sink is safe under concurrent use from
    multiple OCaml 5 domains (the [Uxsm_exec.Executor] backends): counter
    values and completed-span accumulators are atomics, a span's in-flight
    state (re-entrancy depth, outermost start time) is per-domain, and the
    registry itself — handle resolution, {!snapshot}, {!reset} — is
    mutex-guarded. Counter totals after a parallel run equal the
    sequential run's totals; only the interleaving of increments differs.
    Counter values are monotonically non-decreasing between {!reset}s. *)

type counter

val counter : string -> counter
(** [counter name] returns the registered counter for [name], creating it at
    zero on first use. Handles obtained for equal names alias the same
    cell, so they are normally bound once at module initialization. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** [add c n] requires [n >= 0]; raises [Invalid_argument] otherwise
    (counters only count up — see the monotonicity contract above). *)

val value : counter -> int
val name : counter -> string

type span

val span : string -> span
(** Like {!counter}, for a named wall-clock span. *)

val time : span -> (unit -> 'a) -> 'a
(** [time s f] runs [f], attributing its wall time to [s]. Spans nest:
    distinct spans accumulate independently, and re-entering the {e same}
    span recursively {e in the same domain} accumulates only the outermost
    duration (no double counting). Concurrent [time] calls on one span from
    different domains are independent outermost activations; each
    contributes its own duration, so a span's seconds can exceed wall time
    under parallelism (CPU-seconds semantics). Exceptions propagate; the
    elapsed time is still recorded. *)

val span_count : span -> int
(** Completed [time] invocations since the last {!reset}. *)

val span_seconds : span -> float
(** Accumulated wall seconds since the last {!reset}. *)

val reset : unit -> unit
(** Zero every registered counter and span. Registration survives, so
    handles stay valid and snapshots keep a stable shape.

    Safe while a span is active: the active [time]'s re-entrancy depth is
    untouched (it is execution state, not accounting state), and a span
    active in the {e calling} domain restarts its clock so only post-reset
    time is attributed when it finishes. A span in flight on {e another}
    domain contributes its full duration on completion. *)

val counters : unit -> (string * int) list
(** Every registered counter with its value, sorted by name. *)

val spans : unit -> (string * (int * float)) list
(** Every registered span as [(name, (count, seconds))], sorted by name. *)

type snapshot = {
  snap_counters : (string * int) list;  (** sorted by name *)
  snap_spans : (string * (int * float)) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot
(** A consistent read of the registry (taken under the registry lock);
    individual values are atomic reads. *)

val nonzero : snapshot -> snapshot
(** Drop zero counters and zero-count spans — the interesting part of a
    snapshot after a run. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
(** Human-readable rendering, one line per entry. *)
