(** Lightweight observability: named counters and wall-clock spans behind a
    global registry.

    Hot paths (block-tree construction, PTQ evaluation, top-h ranking) bump
    pre-resolved {!counter} handles — one lock-free atomic [int] each, no
    hashing and no locking per event — while the registry supports {!reset}
    and deterministic {!snapshot}s for the benchmark harness, the CLI
    [stats] subcommand and tests. The [EXPLAIN]-style statistics of
    [Ptq.explain] are deltas of these counters.

    {b Domain safety.} Every sink is safe under concurrent use from
    multiple OCaml 5 domains (the [Uxsm_exec.Executor] backends): counter
    values and completed-span accumulators are atomics, a span's in-flight
    state (re-entrancy depth, outermost start time) is per-domain, and the
    registry itself — handle resolution, {!snapshot}, {!reset} — is
    mutex-guarded. Counter totals after a parallel run equal the
    sequential run's totals; only the interleaving of increments differs.
    Counter values are monotonically non-decreasing between {!reset}s. *)

type counter

val counter : string -> counter
(** [counter name] returns the registered counter for [name], creating it at
    zero on first use. Handles obtained for equal names alias the same
    cell, so they are normally bound once at module initialization. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** [add c n] requires [n >= 0]; raises [Invalid_argument] otherwise
    (counters only count up — see the monotonicity contract above). *)

val value : counter -> int
val name : counter -> string

type span

val span : string -> span
(** Like {!counter}, for a named wall-clock span. *)

val time : span -> (unit -> 'a) -> 'a
(** [time s f] runs [f], attributing its wall time to [s]. Spans nest:
    distinct spans accumulate independently, and re-entering the {e same}
    span recursively {e in the same domain} accumulates only the outermost
    duration (no double counting). Concurrent [time] calls on one span from
    different domains are independent outermost activations; each
    contributes its own duration, so a span's seconds can exceed wall time
    under parallelism (CPU-seconds semantics). Exceptions propagate; the
    elapsed time is still recorded. *)

val span_count : span -> int
(** Completed [time] invocations since the last {!reset}. *)

val span_seconds : span -> float
(** Accumulated wall seconds since the last {!reset}. *)

type histogram

val histogram : string -> histogram
(** Like {!counter}, for a named fixed-bucket histogram. Every histogram
    shares one log-2 bucket scale (upper bounds [2^-20 .. 2^20], plus an
    overflow bucket), so any two histograms — or views of the same
    histogram taken on different domains — merge bucket-by-bucket. The
    server uses them for request latencies in seconds
    ([server.<op>.latency]) and dimensionless gauges (queue depth). *)

val observe : histogram -> float -> unit
(** Record one observation: one atomic count, one atomic sum update, one
    atomic bucket increment — safe from any domain, no locking. Values
    at or below the smallest bound land in the first bucket; values above
    the largest bound land in the overflow bucket. *)

val histogram_name : histogram -> string

val histogram_count : histogram -> int
(** Observations since the last {!reset}. *)

type hist_view = {
  hv_count : int;  (** total observations *)
  hv_sum : float;  (** sum of observed values *)
  hv_buckets : (float * int) list;
      (** [(upper_bound, count)] for each nonzero finite bucket, in
          ascending bound order *)
  hv_overflow : int;  (** observations above the largest finite bound *)
}

val histogram_view : histogram -> hist_view
(** A consistent-enough concurrent read: the count is read first, so a
    racing {!observe} can only surface in the buckets, never vanish. *)

val merge_views : hist_view -> hist_view -> hist_view
(** Bucket-wise sum — valid because all histograms share one scale. *)

val quantile : hist_view -> float -> float
(** [quantile v q] estimates the [q]-quantile ([0..1], clamped) by linear
    interpolation inside the bucket containing the rank; the error is
    bounded by the log-2 bucket width (under 2x). [0.0] on an empty view;
    ranks falling in the overflow bucket report the largest finite
    bound. *)

val reset : unit -> unit
(** Zero every registered counter, span and histogram. Registration
    survives, so handles stay valid and snapshots keep a stable shape.

    Safe while a span is active: the active [time]'s re-entrancy depth is
    untouched (it is execution state, not accounting state), and a span
    active in the {e calling} domain restarts its clock so only post-reset
    time is attributed when it finishes. A span in flight on {e another}
    domain contributes its full duration on completion. *)

val counters : unit -> (string * int) list
(** Every registered counter with its value, sorted by name. *)

val spans : unit -> (string * (int * float)) list
(** Every registered span as [(name, (count, seconds))], sorted by name. *)

val histograms : unit -> (string * hist_view) list
(** Every registered histogram with its current view, sorted by name. *)

type snapshot = {
  snap_counters : (string * int) list;  (** sorted by name *)
  snap_spans : (string * (int * float)) list;  (** sorted by name *)
  snap_histograms : (string * hist_view) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot
(** A consistent read of the registry (taken under the registry lock);
    individual values are atomic reads. *)

val nonzero : snapshot -> snapshot
(** Drop zero counters, zero-count spans and empty histograms — the
    interesting part of a snapshot after a run. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
(** Human-readable rendering, one line per entry. *)
