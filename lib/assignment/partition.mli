(** Divide-and-conquer top-h assignment (the paper's Algorithm 5).

    A schema matching's bipartite graph is typically sparse, so it splits
    into many small connected components ("partitions"). The top-h
    assignments of the whole graph are obtained by ranking each component
    independently ({!Murty.top}) and merging the per-component lists with a
    heap — per-component rank beyond [h] can never contribute to the global
    top-h, which is what makes the merge sound. *)

type component = {
  lefts : int list;  (** left nodes of the component, ascending *)
  rights : int list;  (** right nodes of the component, ascending *)
  edges : (int * int * float) list;  (** edges, in global indices *)
}

val components : Bipartite.t -> component list
(** Maximal connected components of the correspondence graph that contain at
    least one edge (isolated nodes never affect scores). Deterministic
    order: by smallest left node. *)

val merge : h:int -> Murty.solution list -> Murty.solution list -> Murty.solution list
(** [merge ~h xs ys] — top-h combinations (concatenated pairs, summed
    scores) of two non-increasing solution lists, non-increasing. Exposed
    for testing. *)

val top :
  ?exec:Uxsm_exec.Executor.t ->
  ?order:[ `Index | `Degree ] ->
  h:int ->
  Bipartite.t ->
  Murty.solution list
(** Same contract as {!Murty.top} — identical score sequence — but computed
    component-wise. [exec] (default [Sequential]) ranks the components on a
    pool of domains; the heap merge runs sequentially in component order,
    so the result is identical for every backend (a tested property). *)
