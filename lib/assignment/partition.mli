(** Divide-and-conquer top-h assignment (the paper's Algorithm 5).

    A schema matching's bipartite graph is typically sparse, so it splits
    into many small connected components ("partitions"). The top-h
    assignments of the whole graph are obtained by ranking each component
    independently ({!Murty.top}) and merging the per-component lists with a
    heap — per-component rank beyond [h] can never contribute to the global
    top-h, which is what makes the merge sound. *)

type component = {
  lefts : int list;  (** left nodes of the component, ascending *)
  rights : int list;  (** right nodes of the component, ascending *)
  edges : (int * int * float) list;  (** edges, in global indices *)
}

val components : Bipartite.t -> component list
(** Maximal connected components of the correspondence graph that contain at
    least one edge (isolated nodes never affect scores). Deterministic
    order: by smallest left node. *)

val merge : h:int -> Murty.solution list -> Murty.solution list -> Murty.solution list
(** [merge ~h xs ys] — top-h combinations (concatenated pairs, summed
    scores) of two non-increasing solution lists, non-increasing. Exposed
    for testing. *)

val top :
  ?exec:Uxsm_exec.Executor.t ->
  ?order:[ `Index | `Degree ] ->
  h:int ->
  Bipartite.t ->
  Murty.solution list
(** Same contract as {!Murty.top} — identical score sequence — but computed
    component-wise. [exec] (default [Sequential]) ranks the components on a
    pool of domains; the heap merge runs sequentially in component order,
    so the result is identical for every backend (a tested property). *)

(** {1 Incremental maintenance}

    Correspondence updates touch only some connected components, so only
    those components need re-ranking before the heap merge re-folds over
    cached per-component lists. *)

type ranked
(** Reusable ranking state: the graph, per-component Murty lists (keyed by
    the component's ordered edge list) and the merged top-h. Plain data —
    no closures — so a catalog can own one per cached mapping set. *)

type delta = {
  d_set : (int * int * float) list;
      (** edges to add or re-score, as [(left, right, weight)] *)
  d_remove : (int * int) list;  (** edges to drop *)
  d_n_left : int;  (** left size {e after} the delta (schemas only grow) *)
  d_n_right : int;  (** right size after the delta *)
}

val rank :
  ?exec:Uxsm_exec.Executor.t ->
  ?order:[ `Index | `Degree ] ->
  h:int ->
  Bipartite.t ->
  ranked
(** Rank every component and merge, keeping the per-component lists for
    later {!apply_delta} calls. [solutions (rank ~h g) = top ~h g] always.
    Raises [Invalid_argument] when [h <= 0]. *)

val solutions : ranked -> Murty.solution list
(** The merged global top-h, non-increasing. *)

val graph : ranked -> Bipartite.t
(** The graph this state ranks. *)

val ranked_h : ranked -> int
val ranked_components : ranked -> int

val delta_of_graphs : old:Bipartite.t -> Bipartite.t -> delta
(** The delta that rewrites [old]'s edge list into the new graph's, in the
    {!Bipartite.apply_edge_delta} algebra. When the new graph was itself
    produced by that algebra (the matching layer's [apply_delta]),
    applying the result reconstructs its edge list {e exactly}, order
    included. *)

val apply_delta : ?exec:Uxsm_exec.Executor.t -> delta -> ranked -> ranked
(** Apply a delta: rebuild the edge list via {!Bipartite.apply_edge_delta},
    recompute the component index, re-rank {e only} components whose edge
    list changed (cached lists cover the rest — membership, order and
    weights all equal means the cached ranking is exactly a fresh one),
    and resume the heap merge from the deepest cached prefix: the fold
    is left-associative, so a delta confined to component [k] replays
    prefixes [0..k-1] verbatim and re-merges only from [k] on. Bumps
    [partition.components_reranked] / [partition.components_reused];
    re-ranked components run on [exec] with a [~cost_hint] covering only
    the miss work. The result equals [rank ~h] of the patched graph (a
    tested property). *)
