(** Weighted bipartite graphs for the top-h mapping problem.

    Left nodes model source-schema elements, right nodes target-schema
    elements, and edges scored correspondences. Per the paper (Section V),
    every left node may also stay unassigned — the solvers model this with an
    implicit zero-weight {e image} node per left node, so a "solution" is an
    injective partial map from left to right. *)

type t

val create : n_left:int -> n_right:int -> (int * int * float) list -> t
(** [create ~n_left ~n_right edges] builds a graph from [(left, right,
    weight)] triples. Raises [Invalid_argument] on out-of-range indices,
    negative weights, or duplicate [(left, right)] pairs. *)

val n_left : t -> int
val n_right : t -> int
val n_edges : t -> int

val edges : t -> (int * int * float) list
(** All edges, in insertion order. *)

val apply_edge_delta :
  set:(int * int * float) list ->
  remove:(int * int) list ->
  (int * int * float) list ->
  (int * int * float) list
(** The delta algebra over edge lists, shared by every incremental-
    maintenance layer so edge {e order} — which Murty-based ranking is
    sensitive to — is rewritten one way everywhere. Removals apply
    first. A [set] of an existing [(left, right)] pair re-scores it in
    place (position preserved); a [set] of a new pair appends it at the
    end, in first-occurrence order of [set] (later duplicates only
    override the score). A pair both removed and set is appended.
    Removals of absent pairs are ignored here — callers that care
    validate before applying. *)

val adj : t -> int -> (int * float) array
(** Real (non-image) out-edges of a left node. *)

val radj : t -> int -> (int * float) array
(** In-edges of a right node, as [(left, weight)]. *)

val weight : t -> int -> int -> float option
(** Weight of a specific edge, if present. *)

val max_weight : t -> float
(** Largest edge weight; [0.] if the graph has no edges. *)
