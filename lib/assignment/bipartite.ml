type t = {
  n_left : int;
  n_right : int;
  adj : (int * float) array array;
  radj : (int * float) array array;
  edges : (int * int * float) list;
  max_weight : float;
}

let create ~n_left ~n_right edge_list =
  if n_left < 0 || n_right < 0 then invalid_arg "Bipartite.create: negative size";
  let seen = Hashtbl.create (List.length edge_list) in
  let check (i, j, w) =
    if i < 0 || i >= n_left then invalid_arg "Bipartite.create: left index out of range";
    if j < 0 || j >= n_right then invalid_arg "Bipartite.create: right index out of range";
    if w < 0.0 then invalid_arg "Bipartite.create: negative weight";
    if Hashtbl.mem seen (i, j) then invalid_arg "Bipartite.create: duplicate edge";
    Hashtbl.add seen (i, j) ()
  in
  List.iter check edge_list;
  let adj_l = Array.make n_left [] in
  let radj_l = Array.make n_right [] in
  let add (i, j, w) =
    adj_l.(i) <- (j, w) :: adj_l.(i);
    radj_l.(j) <- (i, w) :: radj_l.(j)
  in
  List.iter add edge_list;
  let max_weight = List.fold_left (fun acc (_, _, w) -> max acc w) 0.0 edge_list in
  {
    n_left;
    n_right;
    adj = Array.map (fun l -> Array.of_list (List.rev l)) adj_l;
    radj = Array.map (fun l -> Array.of_list (List.rev l)) radj_l;
    edges = edge_list;
    max_weight;
  }

(* The one shared definition of how a delta rewrites an edge list. Both
   the matching layer (path-level deltas) and the partition layer
   (index-level deltas) funnel through this, so the two can never
   disagree about edge order — which matters because Murty's solution
   enumeration, and hence byte-identical incremental maintenance, is
   sensitive to adjacency order. Removals apply first; a re-scored edge
   keeps its position; a genuinely new edge is appended at the end in
   first-occurrence order of [set] (a later duplicate only overrides the
   score). An edge that is both removed and set ends up appended. *)
let apply_edge_delta ~set ~remove edge_list =
  let removed = Hashtbl.create (List.length remove + 1) in
  List.iter (fun p -> Hashtbl.replace removed p ()) remove;
  let upsert = Hashtbl.create (List.length set + 1) in
  List.iter (fun (i, j, w) -> Hashtbl.replace upsert (i, j) w) set;
  let kept =
    List.filter_map
      (fun (i, j, w) ->
        if Hashtbl.mem removed (i, j) then None
        else
          match Hashtbl.find_opt upsert (i, j) with
          | Some w' ->
            Hashtbl.remove upsert (i, j);
            Some (i, j, w')
          | None -> Some (i, j, w))
      edge_list
  in
  let appended =
    List.filter_map
      (fun (i, j, _) ->
        match Hashtbl.find_opt upsert (i, j) with
        | Some w ->
          Hashtbl.remove upsert (i, j);
          Some (i, j, w)
        | None -> None)
      set
  in
  kept @ appended

let n_left t = t.n_left
let n_right t = t.n_right
let n_edges t = List.length t.edges
let edges t = t.edges
let adj t i = t.adj.(i)
let radj t j = t.radj.(j)

let weight t i j =
  let arr = t.adj.(i) in
  let n = Array.length arr in
  let rec find k =
    if k >= n then None
    else
      let j', w = arr.(k) in
      if j' = j then Some w else find (k + 1)
  in
  find 0

let max_weight t = t.max_weight
