module Obs = Uxsm_obs.Obs

(* Observability: how much the component decomposition buys. *)
let c_runs = Obs.counter "partition.runs"
let c_components = Obs.counter "partition.components"
let c_component_edges = Obs.counter "partition.component_edges"
let c_merges = Obs.counter "partition.merges"
let s_top = Obs.span "partition.top"

type component = {
  lefts : int list;
  rights : int list;
  edges : (int * int * float) list;
}

(* Union-find over left nodes [0, nl) and right nodes [nl, nl + nr). *)
let components g =
  let nl = Bipartite.n_left g in
  let nr = Bipartite.n_right g in
  let parent = Array.init (nl + nr) Fun.id in
  let rec find x = if parent.(x) = x then x else find parent.(x) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(max ra rb) <- min ra rb
  in
  List.iter (fun (i, j, _) -> union i (nl + j)) (Bipartite.edges g);
  let by_root : (int, (int * int * float) list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ((i, _, _) as e) ->
      let r = find i in
      let prev = try Hashtbl.find by_root r with Not_found -> [] in
      Hashtbl.replace by_root r (e :: prev))
    (Bipartite.edges g);
  let component_of_edges edges =
    let ls = ref [] and rs = ref [] in
    let module IS = Set.Make (Int) in
    let lset = ref IS.empty and rset = ref IS.empty in
    List.iter
      (fun (i, j, _) ->
        lset := IS.add i !lset;
        rset := IS.add j !rset)
      edges;
    ls := IS.elements !lset;
    rs := IS.elements !rset;
    { lefts = !ls; rights = !rs; edges = List.rev edges }
  in
  Hashtbl.fold (fun root edges acc -> (root, component_of_edges edges) :: acc) by_root []
  |> List.sort (fun (r1, _) (r2, _) -> Int.compare r1 r2)
  |> List.map snd

let empty_solution : Murty.solution = { pairs = []; score = 0.0 }

let merge ~h xs ys =
  Obs.incr c_merges;
  match (xs, ys) with
  | [], _ | _, [] -> []
  | _ ->
    let xa = Array.of_list xs and ya = Array.of_list ys in
    let nx = Array.length xa and ny = Array.length ya in
    let heap = Uxsm_util.Fheap.create () in
    let seen = Hashtbl.create 64 in
    let push ix iy =
      if ix < nx && iy < ny && not (Hashtbl.mem seen (ix, iy)) then begin
        Hashtbl.add seen (ix, iy) ();
        let s = xa.(ix).Murty.score +. ya.(iy).Murty.score in
        Uxsm_util.Fheap.push heap (-.s) (ix, iy)
      end
    in
    push 0 0;
    let out = ref [] in
    let count = ref 0 in
    let rec drain () =
      if !count < h then
        match Uxsm_util.Fheap.pop heap with
        | None -> ()
        | Some (neg_s, (ix, iy)) ->
          let combined : Murty.solution =
            { pairs = List.merge compare xa.(ix).Murty.pairs ya.(iy).Murty.pairs; score = -.neg_s }
          in
          out := combined :: !out;
          incr count;
          push (ix + 1) iy;
          push ix (iy + 1);
          drain ()
    in
    drain ();
    List.rev !out

let top ?(exec = Uxsm_exec.Executor.sequential) ?order ~h g =
  if h <= 0 then []
  else
    Obs.time s_top @@ fun () ->
    let comps = components g in
    Obs.incr c_runs;
    Obs.add c_components (List.length comps);
    List.iter (fun c -> Obs.add c_component_edges (List.length c.edges)) comps;
    let local_top comp =
      (* Re-index the component to a compact bipartite, rank it, and map the
         solutions back to global indices. *)
      let l_of = Hashtbl.create 16 and r_of = Hashtbl.create 16 in
      let l_back = Array.of_list comp.lefts and r_back = Array.of_list comp.rights in
      List.iteri (fun k i -> Hashtbl.replace l_of i k) comp.lefts;
      List.iteri (fun k j -> Hashtbl.replace r_of j k) comp.rights;
      let edges =
        List.map (fun (i, j, w) -> (Hashtbl.find l_of i, Hashtbl.find r_of j, w)) comp.edges
      in
      let sub =
        Bipartite.create ~n_left:(Array.length l_back) ~n_right:(Array.length r_back) edges
      in
      Murty.top ?order ~h sub
      |> List.map (fun (s : Murty.solution) ->
             {
               Murty.pairs = List.map (fun (i, j) -> (l_back.(i), r_back.(j))) s.pairs;
               score = s.score;
             })
    in
    (* Components rank independently on the executor; the heap merge is
       order-sensitive, so it folds sequentially over the per-component
       lists in component order — the same fold Sequential performs.
       The cost hint sizes the whole ranking job for the executor's gate:
       Murty's warm-restart work per component grows with the solutions
       requested and the edges branched over, so h * total-edges is the
       job's size in rough node-visit-equivalent units. *)
    let total_edges = List.fold_left (fun acc c -> acc + List.length c.edges) 0 comps in
    let cost_hint = float_of_int h *. float_of_int total_edges in
    (* lint: allow blocking-under-lock — reachable under Dataset's memo locks; the fan-out never blocks on the pool (try_lock or sequential fallback) and the jobs are pure compute, so the hold is bounded by the ranking work itself *)
    let ranked = Uxsm_exec.Executor.map_list ~cost_hint exec local_top comps in
    List.fold_left (fun acc local -> merge ~h acc local) [ empty_solution ] ranked
