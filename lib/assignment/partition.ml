module Obs = Uxsm_obs.Obs

(* Observability: how much the component decomposition buys, and — for the
   incremental path — how much of a delta's work the component cache
   absorbs. *)
let c_runs = Obs.counter "partition.runs"
let c_components = Obs.counter "partition.components"
let c_component_edges = Obs.counter "partition.component_edges"
let c_merges = Obs.counter "partition.merges"
let c_delta_applies = Obs.counter "partition.delta_applies"
let c_components_reranked = Obs.counter "partition.components_reranked"
let c_components_reused = Obs.counter "partition.components_reused"
let s_top = Obs.span "partition.top"
let s_apply_delta = Obs.span "partition.apply_delta"

type component = {
  lefts : int list;
  rights : int list;
  edges : (int * int * float) list;
}

(* Union-find over left nodes [0, nl) and right nodes [nl, nl + nr). *)
let components g =
  let nl = Bipartite.n_left g in
  let nr = Bipartite.n_right g in
  let parent = Array.init (nl + nr) Fun.id in
  let rec find x = if parent.(x) = x then x else find parent.(x) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(max ra rb) <- min ra rb
  in
  List.iter (fun (i, j, _) -> union i (nl + j)) (Bipartite.edges g);
  let by_root : (int, (int * int * float) list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ((i, _, _) as e) ->
      let r = find i in
      let prev = try Hashtbl.find by_root r with Not_found -> [] in
      Hashtbl.replace by_root r (e :: prev))
    (Bipartite.edges g);
  let component_of_edges edges =
    let ls = ref [] and rs = ref [] in
    let module IS = Set.Make (Int) in
    let lset = ref IS.empty and rset = ref IS.empty in
    List.iter
      (fun (i, j, _) ->
        lset := IS.add i !lset;
        rset := IS.add j !rset)
      edges;
    ls := IS.elements !lset;
    rs := IS.elements !rset;
    { lefts = !ls; rights = !rs; edges = List.rev edges }
  in
  Hashtbl.fold (fun root edges acc -> (root, component_of_edges edges) :: acc) by_root []
  |> List.sort (fun (r1, _) (r2, _) -> Int.compare r1 r2)
  |> List.map snd

let empty_solution : Murty.solution = { pairs = []; score = 0.0 }

let pair_compare (i1, j1) (i2, j2) =
  match Int.compare i1 i2 with
  | 0 -> Int.compare j1 j2
  | c -> c

let merge ~h xs ys =
  Obs.incr c_merges;
  match (xs, ys) with
  | [], _ | _, [] -> []
  | _ ->
    let xa = Array.of_list xs and ya = Array.of_list ys in
    let nx = Array.length xa and ny = Array.length ya in
    let heap = Uxsm_util.Fheap.create () in
    let seen = Hashtbl.create 64 in
    let push ix iy =
      if ix < nx && iy < ny && not (Hashtbl.mem seen (ix, iy)) then begin
        Hashtbl.add seen (ix, iy) ();
        let s = xa.(ix).Murty.score +. ya.(iy).Murty.score in
        Uxsm_util.Fheap.push heap (-.s) (ix, iy)
      end
    in
    push 0 0;
    let out = ref [] in
    let count = ref 0 in
    let rec drain () =
      if !count < h then
        match Uxsm_util.Fheap.pop heap with
        | None -> ()
        | Some (neg_s, (ix, iy)) ->
          let combined : Murty.solution =
            {
              pairs = List.merge pair_compare xa.(ix).Murty.pairs ya.(iy).Murty.pairs;
              score = -.neg_s;
            }
          in
          out := combined :: !out;
          incr count;
          push (ix + 1) iy;
          push ix (iy + 1);
          drain ()
    in
    drain ();
    List.rev !out

(* The reusable per-component state. Plain data throughout — no closures —
   so the catalog can own one per cached mapping set and a future session
   could serialize it. [rk_locals] holds, per component in component
   order, the component's ordered edge list (the reuse key) and its local
   top-h solution list mapped back to global indices. *)
type ranked = {
  rk_h : int;
  rk_order : [ `Index | `Degree ] option;
  rk_graph : Bipartite.t;
  rk_locals : ((int * int * float) list * Murty.solution list) list;
  rk_prefixes : Murty.solution list list;
      (* rk_prefixes nth i = the merge fold over locals 0..i, so the last
         prefix is rk_merged. The fold is left-associative and
         order-sensitive, so a delta confined to component k can replay
         prefix k-1 verbatim and re-merge only the suffix from k on. *)
  rk_merged : Murty.solution list;
}

type delta = {
  d_set : (int * int * float) list;
  d_remove : (int * int) list;
  d_n_left : int;
  d_n_right : int;
}

let local_top ?order ~h comp =
  (* Re-index the component to a compact bipartite, rank it, and map the
     solutions back to global indices. *)
  let l_of = Hashtbl.create 16 and r_of = Hashtbl.create 16 in
  let l_back = Array.of_list comp.lefts and r_back = Array.of_list comp.rights in
  List.iteri (fun k i -> Hashtbl.replace l_of i k) comp.lefts;
  List.iteri (fun k j -> Hashtbl.replace r_of j k) comp.rights;
  let edges =
    List.map (fun (i, j, w) -> (Hashtbl.find l_of i, Hashtbl.find r_of j, w)) comp.edges
  in
  let sub =
    Bipartite.create ~n_left:(Array.length l_back) ~n_right:(Array.length r_back) edges
  in
  Murty.top ?order ~h sub
  |> List.map (fun (s : Murty.solution) ->
         {
           Murty.pairs = List.map (fun (i, j) -> (l_back.(i), r_back.(j))) s.pairs;
           score = s.score;
         })

(* Rank the components of [g], reusing any component whose ordered edge
   list is found in [cache] (a hit means identical member nodes and
   weights, so the cached global-index solution list is exactly what a
   fresh ranking would produce). Misses rank on the executor; the heap
   merge is order-sensitive, so it folds sequentially over the
   per-component lists in component order — the same fold Sequential
   performs. The cost hint sizes only the miss work for the executor's
   gate: Murty's warm-restart work per component grows with the solutions
   requested and the edges branched over, so h * miss-edges is the job's
   size in rough node-visit-equivalent units. *)
let rank_components ~exec ~order ~h ~cache ~reuse g =
  let comps = components g in
  Obs.incr c_runs;
  Obs.add c_components (List.length comps);
  List.iter (fun c -> Obs.add c_component_edges (List.length c.edges)) comps;
  let tagged = List.map (fun c -> (c, Hashtbl.find_opt cache c.edges)) comps in
  let misses = List.filter_map (function c, None -> Some c | _ -> None) tagged in
  let miss_edges = List.fold_left (fun acc c -> acc + List.length c.edges) 0 misses in
  let cost_hint = float_of_int h *. float_of_int miss_edges in
  (* lint: allow blocking-under-lock — reachable under Dataset's memo locks; the fan-out never blocks on the pool (try_lock or sequential fallback) and the jobs are pure compute, so the hold is bounded by the ranking work itself *)
  let fresh = Uxsm_exec.Executor.map_list ~cost_hint exec (local_top ?order ~h) misses in
  let rec stitch tagged fresh =
    match (tagged, fresh) with
    | [], [] -> []
    | (c, Some cached) :: rest, _ -> (c.edges, cached) :: stitch rest fresh
    | (c, None) :: rest, local :: fresh' -> (c.edges, local) :: stitch rest fresh'
    | _ -> assert false
  in
  let locals = stitch tagged fresh in
  (* The merge fold is left-associative, so any leading run of components
     whose keys match [reuse] position by position replays exactly — a
     cache hit on the same key yields the identical local list, hence the
     identical merge step. Resume the fold from the last surviving
     prefix. *)
  let old_locals, old_prefixes = reuse in
  let rec survive kept olds oldps news =
    match (olds, oldps, news) with
    | (ok, _) :: olds', p :: oldps', (nk, _) :: news' when ok = nk ->
      survive (p :: kept) olds' oldps' news'
    | _ -> (kept, news)
  in
  let kept_rev, rest = survive [] old_locals old_prefixes locals in
  let start = match kept_rev with [] -> [ empty_solution ] | p :: _ -> p in
  let rec refold acc prefixes = function
    | [] -> prefixes
    | (_, local) :: tl ->
      let acc' = merge ~h acc local in
      refold acc' (acc' :: prefixes) tl
  in
  let prefixes_rev = refold start kept_rev rest in
  let merged = match prefixes_rev with [] -> [ empty_solution ] | m :: _ -> m in
  (locals, List.rev prefixes_rev, merged, List.length misses)

let rank ?(exec = Uxsm_exec.Executor.sequential) ?order ~h g =
  if h <= 0 then invalid_arg "Partition.rank: h must be >= 1";
  Obs.time s_top @@ fun () ->
  let no_reuse = Hashtbl.create 1 in
  let locals, prefixes, merged, _ =
    rank_components ~exec ~order ~h ~cache:no_reuse ~reuse:([], []) g
  in
  {
    rk_h = h;
    rk_order = order;
    rk_graph = g;
    rk_locals = locals;
    rk_prefixes = prefixes;
    rk_merged = merged;
  }

let solutions r = r.rk_merged
let graph r = r.rk_graph
let ranked_h r = r.rk_h
let ranked_components r = List.length r.rk_locals

let top ?(exec = Uxsm_exec.Executor.sequential) ?order ~h g =
  if h <= 0 then [] else solutions (rank ~exec ?order ~h g)

let delta_of_graphs ~old g' =
  let old_tbl = Hashtbl.create 64 in
  List.iter (fun (i, j, w) -> Hashtbl.replace old_tbl (i, j) w) (Bipartite.edges old);
  let new_tbl = Hashtbl.create 64 in
  List.iter (fun (i, j, _) -> Hashtbl.replace new_tbl (i, j) ()) (Bipartite.edges g');
  let set =
    List.filter
      (fun (i, j, w) ->
        match Hashtbl.find_opt old_tbl (i, j) with
        | Some w0 -> not (Float.equal w0 w)
        | None -> true)
      (Bipartite.edges g')
  in
  let remove =
    List.filter_map
      (fun (i, j, _) -> if Hashtbl.mem new_tbl (i, j) then None else Some (i, j))
      (Bipartite.edges old)
  in
  {
    d_set = set;
    d_remove = remove;
    d_n_left = Bipartite.n_left g';
    d_n_right = Bipartite.n_right g';
  }

let apply_delta ?(exec = Uxsm_exec.Executor.sequential) d r =
  Obs.time s_apply_delta @@ fun () ->
  Obs.incr c_delta_applies;
  let edges =
    Bipartite.apply_edge_delta ~set:d.d_set ~remove:d.d_remove (Bipartite.edges r.rk_graph)
  in
  let g = Bipartite.create ~n_left:d.d_n_left ~n_right:d.d_n_right edges in
  let cache = Hashtbl.create (List.length r.rk_locals) in
  List.iter (fun (key, local) -> Hashtbl.replace cache key local) r.rk_locals;
  let locals, prefixes, merged, reranked =
    rank_components ~exec ~order:r.rk_order ~h:r.rk_h ~cache
      ~reuse:(r.rk_locals, r.rk_prefixes) g
  in
  Obs.add c_components_reranked reranked;
  Obs.add c_components_reused (List.length locals - reranked);
  { r with rk_graph = g; rk_locals = locals; rk_prefixes = prefixes; rk_merged = merged }
