module Obs = Uxsm_obs.Obs

(* Observability: ranking cost drivers (solver work and queue pressure). *)
let c_solves = Obs.counter "murty.solves"
let c_augments = Obs.counter "murty.augments"
let c_expansions = Obs.counter "murty.expansions"
let c_queue_trims = Obs.counter "murty.queue_trims"
let s_top = Obs.span "murty.top"

type solution = {
  pairs : (int * int) list;
  score : float;
}

let solutions_equal a b =
  Float.equal a.score b.score && a.pairs = b.pairs

type node = {
  fixed : (int * int) list;  (* committed (left, extright) pairs *)
  excluded : (int * int) list;  (* forbidden (left, extright) pairs *)
  st : Solver.state;
  score : float;
}

(* Priority queue of subproblems ordered by best score, with a hard capacity:
   once k solutions have been delivered, only the best (h - k) queued
   subproblems can ever be popped, so worse entries are dropped to bound
   memory (each entry carries O(n) arrays). *)
module Q = Set.Make (struct
  type t = float * int

  let compare (s1, u1) (s2, u2) =
    match Float.compare s1 s2 with
    | 0 -> Int.compare u1 u2
    | c -> c
end)

let solution_of g node =
  let pairs = ref [] in
  let assignment = Solver.assignment g node.st in
  Array.iteri (fun i j -> if j >= 0 then pairs := (i, j) :: !pairs) assignment;
  { pairs = List.rev !pairs; score = node.score }

(* Left nodes whose solution edge is worth excluding, in partition order. *)
let partition_candidates g order node =
  let committed = Hashtbl.create 16 in
  List.iter (fun (i, _) -> Hashtbl.replace committed i ()) node.fixed;
  let excluded_keys = Hashtbl.create 16 in
  List.iter (fun (i, extj) -> Hashtbl.replace excluded_keys (Solver.encode g i extj) ()) node.excluded;
  let nr = Bipartite.n_right g in
  let alternatives i extj =
    (* Real edges of [i], other than its current one, not yet excluded. *)
    Array.to_list (Bipartite.adj g i)
    |> List.filter (fun (j, _) -> j <> extj && not (Hashtbl.mem excluded_keys (Solver.encode g i j)))
    |> List.length
  in
  let candidates = ref [] in
  (* Partition on source-side edges only: a real mapping is fully determined
     by the choices of the sources, so branching on padding (mirror) edges
     would enumerate duplicate mappings. *)
  for i = Bipartite.n_left g - 1 downto 0 do
    if not (Hashtbl.mem committed i) then begin
      let extj = Solver.matched_ext node.st i in
      let is_image = extj >= nr in
      let alt = alternatives i extj in
      (* Excluding an image edge is only feasible when a real alternative
         exists; excluding a real edge always leaves the image fallback
         (unless that image was itself excluded, checked by the solver). *)
      if (not is_image) || alt > 0 then candidates := (i, extj, alt) :: !candidates
    end
  done;
  match order with
  | `Index -> !candidates
  | `Degree ->
    List.stable_sort (fun (_, _, a1) (_, _, a2) -> Int.compare a1 a2) !candidates

let expand g order resolve node push =
  let cs = Solver.no_constraints g in
  List.iter
    (fun (i, extj) ->
      cs.committed_l.(i) <- true;
      cs.committed_r.(extj) <- true)
    node.fixed;
  List.iter
    (fun (i, extj) -> Hashtbl.replace cs.forbidden (Solver.encode g i extj) ())
    node.excluded;
  let fixed_prefix = ref node.fixed in
  let emit (i, extj, _alt) =
    let key = Solver.encode g i extj in
    Hashtbl.replace cs.forbidden key ();
    let solved =
      match resolve with
      | `Warm ->
        Obs.incr c_augments;
        let st = Solver.copy node.st in
        Solver.unmatch st i;
        if Solver.augment g cs st i then Some st else None
      | `Cold ->
        Obs.incr c_solves;
        let st = Solver.init g in
        List.iter (fun (fi, fj) -> Solver.force st fi fj) !fixed_prefix;
        if Solver.solve g cs st then Some st else None
    in
    (match solved with
    | Some st ->
      let score = Solver.score g st in
      push { fixed = !fixed_prefix; excluded = (i, extj) :: node.excluded; st; score }
    | None -> ());
    Hashtbl.remove cs.forbidden key;
    (* This solution edge becomes part of the fixed prefix for subsequent
       children (Murty's partitioning). *)
    fixed_prefix := (i, extj) :: !fixed_prefix;
    cs.committed_l.(i) <- true;
    cs.committed_r.(extj) <- true
  in
  List.iter emit (partition_candidates g order node)

let top ?(order = `Degree) ?(resolve = `Warm) ~h g =
  if h <= 0 then []
  else
    Obs.time s_top @@ fun () ->
    let root_st = Solver.init g in
    let root_cs = Solver.no_constraints g in
    Obs.incr c_solves;
    let solved = Solver.solve g root_cs root_st in
    assert solved;
    (* image edges make the root always feasible *)
    let root = { fixed = []; excluded = []; st = root_st; score = Solver.score g root_st } in
    let payloads : (int, node) Hashtbl.t = Hashtbl.create 64 in
    let next_uid = ref 0 in
    let queue = ref Q.empty in
    let push node =
      let uid = !next_uid in
      incr next_uid;
      Hashtbl.replace payloads uid node;
      queue := Q.add (node.score, uid) !queue
    in
    let trim cap =
      while Q.cardinal !queue > cap do
        Obs.incr c_queue_trims;
        let ((_, uid) as worst) = Q.min_elt !queue in
        queue := Q.remove worst !queue;
        Hashtbl.remove payloads uid
      done
    in
    push root;
    let results = ref [] in
    let delivered = ref 0 in
    while !delivered < h && not (Q.is_empty !queue) do
      let ((_, uid) as best) = Q.max_elt !queue in
      queue := Q.remove best !queue;
      let node = Hashtbl.find payloads uid in
      Hashtbl.remove payloads uid;
      results := solution_of g node :: !results;
      incr delivered;
      if !delivered < h then begin
        Obs.incr c_expansions;
        expand g order resolve node push;
        trim (h - !delivered)
      end
    done;
    List.rev !results
