(** The block tree (Section III): a compact representation of a set of
    possible mappings.

    The tree mirrors the target schema; each node carries the c-blocks
    anchored there. Construction is the bottom-up post-order pass of
    Algorithms 1–2: leaf blocks come from grouping mappings by their
    correspondence for that element ([init_block]); non-leaf blocks combine
    one candidate block of the node with one c-block per child (Lemma 1),
    bounded by [max_b] created non-leaf blocks and [max_f] failed
    combination attempts. A hash table [H] maps target paths with at least
    one c-block to their node, and a mapping-compression pass replaces block
    correspondences inside mappings by block pointers. *)

type params = {
  tau : float;  (** confidence threshold τ — a c-block needs [≥ τ·|M|] mappings *)
  max_b : int;  (** MAX_B: cap on non-leaf c-blocks created *)
  max_f : int;  (** MAX_F: cap on failed block-combination attempts per node *)
}

val default_params : params
(** The paper's defaults: [tau = 0.2], [max_b = 500], [max_f = 500]. *)

type t

val build : ?params:params -> Uxsm_mapping.Mapping_set.t -> t
(** Algorithm 1. *)

val update : old:t -> Uxsm_mapping.Mapping_set.t -> t
(** [update ~old mset'] — the tree [build ~params:(params old) mset']
    computed incrementally: target elements whose c-blocks lost or gained
    support (some mapping's source choice for them changed, or they are
    new) are rebuilt together with their ancestors, while every other
    node's block list — and hence its {!node_stats}, and the plan costs
    derived from them — is spliced in unchanged from [old]. The
    compression pass reruns wholesale (it is a cheap pure function of the
    node lists). Falls back to a full rebuild, same result, when subtree
    reuse cannot reproduce the from-scratch tree: [old] was truncated by
    a MAX_B/MAX_F cap, the budget runs out during the replay, [|M|] or
    the threshold changed, or old target ids are not stable in the new
    target schema. The result is always identical to the from-scratch
    build, and {!validate} passes on it (tested properties). *)

val caps_hit : t -> bool
(** A MAX_B/MAX_F cap truncated this build ([update] on such a tree falls
    back to a full rebuild). *)

val mapping_set : t -> Uxsm_mapping.Mapping_set.t
val params : t -> params

val threshold : t -> int
(** [⌈τ·|M|⌉] — the minimum mapping count of a c-block. *)

val blocks_at : t -> Uxsm_schema.Schema.element -> Block.t list
(** C-blocks anchored at a target element (the node's linked list). *)

val has_blocks : t -> Uxsm_schema.Schema.element -> bool

val lookup_path : t -> string -> Uxsm_schema.Schema.element option
(** The hash table [H]: ['.']-joined target path → block-tree node, present
    only for nodes holding at least one c-block. *)

val all_blocks : t -> Block.t list
(** Every c-block, grouped by node in pre-order. *)

val n_blocks : t -> int

val block_sizes : t -> int list
(** Correspondence counts of all c-blocks (Figure 9(c)'s distribution). *)

val storage_bytes : t -> int
(** Accounting for the compressed representation: block contents, hash
    table, and the compressed mappings (block pointers + residual
    correspondences), on the same cost model as
    {!Uxsm_mapping.Mapping_set.storage_bytes_naive}. *)

val compression_ratio : t -> float
(** [1 - storage_bytes / storage_bytes_naive] (Figure 9(a)). *)

val compressed_corrs_of_mapping : t -> int -> [ `Block of Block.t | `Corr of int * int ] list
(** The compressed form of mapping [i]: block pointers plus residual
    correspondences. Concatenating the block correspondences with the
    residuals reconstructs the mapping exactly (tested property). *)

type node_stats = {
  ns_blocks : int;  (** c-blocks anchored at the node *)
  ns_mean_mappings : float;
      (** mean mappings per c-block at the node (the local sharing factor
          f); [0.] when the node has no blocks *)
}

val node_stats : t -> Uxsm_schema.Schema.element -> node_stats
(** Per-node sharing statistics, the input of the query planner's cost
    model ({!Uxsm_plan.Plan}). *)

type stats = {
  st_blocks : int;  (** total c-blocks in the tree *)
  st_mean_mappings : float;  (** mean mappings per c-block, tree-wide *)
  st_threshold : int;  (** [⌈τ·|M|⌉] *)
  st_mappings : int;  (** [|M|] *)
}

val stats : t -> stats
(** Tree-wide sharing statistics (block count, mean mapping-sharing
    factor). *)

val validate : t -> (unit, string) result
(** Check Definition 2 for every stored block, plus hash-table consistency
    and lossless mapping compression. *)

val pp_stats : Format.formatter -> t -> unit
