module Schema = Uxsm_schema.Schema
module Mapping = Uxsm_mapping.Mapping
module Mapping_set = Uxsm_mapping.Mapping_set
module Obs = Uxsm_obs.Obs

(* Observability: construction cost drivers (see DESIGN.md, metrics layer). *)
let c_builds = Obs.counter "blocktree.builds"
let c_candidates = Obs.counter "blocktree.candidates_tried"
let c_abandoned = Obs.counter "blocktree.intersections_abandoned"
let c_max_b_hits = Obs.counter "blocktree.max_b_hits"
let c_max_f_hits = Obs.counter "blocktree.max_f_hits"
let c_claims = Obs.counter "blocktree.compression_claims"
let s_build = Obs.span "blocktree.build"

(* Incremental maintenance: how much of an update the subtree reuse buys. *)
let c_updates = Obs.counter "blocktree.updates"
let c_nodes_reused = Obs.counter "blocktree.update.nodes_reused"
let c_nodes_rebuilt = Obs.counter "blocktree.update.nodes_rebuilt"
let c_full_rebuilds = Obs.counter "blocktree.update.full_rebuilds"
let s_update = Obs.span "blocktree.update"

type params = {
  tau : float;
  max_b : int;
  max_f : int;
}

let default_params = { tau = 0.2; max_b = 500; max_f = 500 }

type compressed_item = [ `Block of Block.t | `Corr of int * int ]

type t = {
  mset : Mapping_set.t;
  prms : params;
  threshold : int;
  nodes : Block.t list array;
  hash : (string, Schema.element) Hashtbl.t;
  compressed : compressed_item list array;
  caps_hit : bool;
      (* a MAX_B/MAX_F cap truncated this build; such a tree's node lists
         depend on global construction order, so [update] rebuilds from
         scratch instead of splicing subtrees *)
}

(* |b.M| >= tau * |M|, computed robustly against float noise. *)
let threshold_of tau m = max 1 (int_of_float (ceil ((tau *. float_of_int m) -. 1e-9)))

(* Intersection of two sorted id arrays, with early abandon once the result
   cannot reach [atleast] elements. *)
let intersect ~atleast a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (min na nb) 0 in
  let rec go ia ib k =
    if ia >= na || ib >= nb then k
    else if k + min (na - ia) (nb - ib) < atleast then begin
      Obs.incr c_abandoned;
      -1
    end
    else if a.(ia) = b.(ib) then begin
      out.(k) <- a.(ia);
      go (ia + 1) (ib + 1) (k + 1)
    end
    else if a.(ia) < b.(ib) then go (ia + 1) ib k
    else go ia (ib + 1) k
  in
  let k = go 0 0 0 in
  if k < 0 || k < atleast then None else Some (Array.sub out 0 k)

exception Break
exception Fallback

let corr_compare (s1, t1) (s2, t2) =
  match Int.compare s1 s2 with
  | 0 -> Int.compare t1 t2
  | c -> c

(* Core construction (Algorithms 1 and 2), shared by [build] and
   [update]. [reuse y = Some blocks] splices a previously built node in
   unchanged — the incremental path passes clean subtrees here; the full
   build passes [fun _ -> None]. In strict-caps mode (update), running
   into MAX_B — or splicing a reused non-leaf node once the global block
   budget is spent — raises [Fallback]: cap truncation couples every
   node's list to global construction order, so only a full rebuild
   reproduces the from-scratch result then. MAX_F stays per-node in both
   modes and needs no special casing. *)
let build_core ~params ~strict_caps ~reuse mset =
  let target = Mapping_set.target mset in
  let m = Mapping_set.size mset in
  let thr = threshold_of params.tau m in
  let nodes = Array.make (Schema.size target) [] in
  let hash = Hashtbl.create 64 in
  let count = ref 0 in
  (* global cap on non-leaf c-blocks (Algorithm 1's [count]) *)
  let capped = ref false in

  (* Group the mappings by their correspondence for target element [y];
     groups of at least [thr] mappings become single-correspondence
     candidate blocks (the paper's init_block). *)
  let init_block y =
    let groups : (int, int list) Hashtbl.t = Hashtbl.create 8 in
    for i = m - 1 downto 0 do
      match Mapping.source_of (Mapping_set.mapping mset i) y with
      | None -> ()
      | Some s ->
        let prev = try Hashtbl.find groups s with Not_found -> [] in
        Hashtbl.replace groups s (i :: prev)
    done;
    Hashtbl.fold
      (fun s ids acc ->
        if List.length ids >= thr then
          Block.create ~anchor:y ~corrs:[ (s, y) ] ~mappings:ids :: acc
        else acc)
      groups []
    |> List.sort (fun (a : Block.t) b -> corr_compare a.corrs.(0) b.corrs.(0))
  in

  (* Algorithm 2: combine each candidate block of [y] with one c-block per
     child; a combination survives when the mapping sets intersect in at
     least [thr] ids (Lemma 1). *)
  let gen_non_leaf y kids =
    let own = init_block y in
    if own = [] then 0
    else begin
      let num_trial = ref 0 in
      let created = ref [] in
      let count_new = ref 0 in
      let child_lists = List.map (fun k -> nodes.(k)) kids in
      let try_combination (b : Block.t) (tuple : Block.t list) =
        Obs.incr c_candidates;
        let ids =
          List.fold_left
            (fun acc (cb : Block.t) ->
              match acc with
              | None -> None
              | Some ids -> intersect ~atleast:thr ids cb.mappings)
            (Some b.mappings) tuple
        in
        (match ids with
        | Some ids when !count < params.max_b ->
          let corrs =
            Array.to_list b.corrs
            @ List.concat_map (fun (cb : Block.t) -> Array.to_list cb.corrs) tuple
          in
          created :=
            Block.create ~anchor:y ~corrs ~mappings:(Array.to_list ids) :: !created;
          incr count_new;
          incr count
        | Some _ | None -> incr num_trial);
        if !count >= params.max_b then begin
          if strict_caps then raise Fallback;
          Obs.incr c_max_b_hits;
          capped := true;
          raise Break
        end;
        if !num_trial >= params.max_f then begin
          Obs.incr c_max_f_hits;
          capped := true;
          raise Break
        end
      in
      let rec tuples acc = function
        | [] -> List.iter (fun b -> try_combination b (List.rev acc)) own
        | blocks :: rest -> List.iter (fun cb -> tuples (cb :: acc) rest) blocks
      in
      (* Enumerate child tuples outermost and the node's own candidates
         innermost so every candidate gets a chance before the caps hit. *)
      (try tuples [] child_lists with Break -> ());
      nodes.(y) <- List.rev !created;
      !count_new
    end
  in

  let rec construct y =
    let kids = Schema.children target y in
    let n_created =
      match reuse y with
      | Some blocks ->
        (* A clean subtree: every descendant is clean too, so the
           recursion below splices each of their lists as well. Non-leaf
           blocks were counted towards MAX_B by the build being replayed,
           so account for them here — and fall back when the budget is
           spent, since a from-scratch build would truncate. *)
        List.iter (fun k -> ignore (construct k)) kids;
        nodes.(y) <- blocks;
        let n = List.length blocks in
        if kids <> [] && n > 0 then begin
          if !count >= params.max_b then raise Fallback;
          count := !count + n;
          if !count >= params.max_b then raise Fallback
        end;
        n
      | None ->
        if kids = [] then begin
          let blocks = init_block y in
          nodes.(y) <- blocks;
          List.length blocks
        end
        else begin
          let kid_counts = List.map construct kids in
          if List.exists (fun c -> c = 0) kid_counts then 0 else gen_non_leaf y kids
        end
    in
    if n_created > 0 then Hashtbl.replace hash (Schema.path_string target y) y;
    n_created
  in
  ignore (construct (Schema.root target));

  (* Mapping compression (Algorithm 1 Step 5): pre-order over the tree;
     replace each mapping's correspondences covered by a block with a
     pointer to that block. Pre-order means the largest (highest-anchored)
     blocks win. A pure function of the node lists and the mapping set, so
     the incremental path reruns it wholesale. *)
  let compressed = Array.make m [] in
  let covered = Array.make_matrix m (Schema.size target) false in
  let compress_at y =
    let claim (b : Block.t) id =
      let free = Array.for_all (fun (_, t_el) -> not covered.(id).(t_el)) b.corrs in
      if free then begin
        Obs.incr c_claims;
        Array.iter (fun (_, t_el) -> covered.(id).(t_el) <- true) b.corrs;
        compressed.(id) <- `Block b :: compressed.(id)
      end
    in
    List.iter (fun (b : Block.t) -> Array.iter (claim b) b.mappings) nodes.(y)
  in
  List.iter compress_at (Schema.elements target);
  for id = 0 to m - 1 do
    let residual =
      List.filter_map
        (fun (s, t_el) -> if covered.(id).(t_el) then None else Some (`Corr (s, t_el)))
        (Mapping.pairs (Mapping_set.mapping mset id))
    in
    compressed.(id) <- List.rev compressed.(id) @ residual
  done;

  { mset; prms = params; threshold = thr; nodes; hash; compressed; caps_hit = !capped }

let no_reuse _ = None
let build_impl ~params mset = build_core ~params ~strict_caps:false ~reuse:no_reuse mset

let build ?(params = default_params) mset =
  if params.tau <= 0.0 || params.tau > 1.0 then invalid_arg "Block_tree.build: tau out of (0,1]";
  Obs.incr c_builds;
  Obs.time s_build (fun () -> build_impl ~params mset)

(* ------------------------ incremental update ---------------------- *)

let update ~old mset' =
  Obs.incr c_updates;
  Obs.time s_update @@ fun () ->
  let params = old.prms in
  let full () =
    Obs.incr c_full_rebuilds;
    build_impl ~params mset'
  in
  let target' = Mapping_set.target mset' in
  let target_old = Mapping_set.target old.mset in
  let m = Mapping_set.size mset' in
  let n_old = Schema.size target_old and n_new = Schema.size target' in
  (* Old pre-order ids must survive in the new target: same labels and
     parents for every old id, new elements only appended. The matching
     layer's append-only schema growth guarantees this, but [update]
     re-checks so an arbitrary mapping set degrades to a full rebuild
     instead of a wrong tree. *)
  let ids_stable =
    n_new >= n_old
    && List.for_all
         (fun y ->
           Schema.label target' y = Schema.label target_old y
           && Schema.parent target' y = Schema.parent target_old y)
         (List.init n_old Fun.id)
  in
  if
    old.caps_hit
    || m <> Mapping_set.size old.mset
    || threshold_of params.tau m <> old.threshold
    || not ids_stable
  then full ()
  else begin
    (* A target element is dirty when any mapping's choice of source for
       it changed (its c-blocks lost or gained support), or it is new.
       Blocks cover exactly their anchor's subtree, so a node is reusable
       iff its whole subtree is clean — closing the dirty set over
       ancestors makes "not dirty" mean exactly that. *)
    let dirty = Array.make n_new false in
    for y = n_old to n_new - 1 do
      dirty.(y) <- true
    done;
    for y = 0 to n_old - 1 do
      let i = ref 0 in
      while (not dirty.(y)) && !i < m do
        if
          not
            (Mapping.same_source_at
               (Mapping_set.mapping old.mset !i)
               (Mapping_set.mapping mset' !i)
               y)
        then dirty.(y) <- true;
        incr i
      done
    done;
    let initially_dirty = List.filter (fun y -> dirty.(y)) (List.init n_new Fun.id) in
    List.iter
      (fun y ->
        let rec up y =
          match Schema.parent target' y with
          | Some p ->
            dirty.(p) <- true;
            up p
          | None -> ()
        in
        up y)
      initially_dirty;
    let reused = ref 0 and rebuilt = ref 0 in
    let reuse y =
      if y < n_old && not dirty.(y) then begin
        incr reused;
        Some old.nodes.(y)
      end
      else begin
        incr rebuilt;
        None
      end
    in
    match build_core ~params ~strict_caps:true ~reuse mset' with
    | t ->
      Obs.add c_nodes_reused !reused;
      Obs.add c_nodes_rebuilt !rebuilt;
      t
    | exception Fallback -> full ()
  end

let caps_hit t = t.caps_hit

let mapping_set t = t.mset
let params t = t.prms
let threshold t = t.threshold
let blocks_at t y = t.nodes.(y)
let has_blocks t y = t.nodes.(y) <> []
let lookup_path t p = Hashtbl.find_opt t.hash p

let all_blocks t =
  List.concat_map (fun y -> t.nodes.(y)) (Schema.elements (Mapping_set.target t.mset))

let n_blocks t = List.length (all_blocks t)

let block_sizes t = List.map Block.n_corrs (all_blocks t)

let compressed_corrs_of_mapping t i = t.compressed.(i)

(* Cost-model statistics (consumed by Uxsm_plan): block counts and the mean
   mapping-sharing factor f, per node and tree-wide. Both walk the already
   materialized node lists, so they are cheap enough to recompute per query
   compilation. *)

type node_stats = {
  ns_blocks : int;
  ns_mean_mappings : float;
}

let node_stats t y =
  match t.nodes.(y) with
  | [] -> { ns_blocks = 0; ns_mean_mappings = 0.0 }
  | bs ->
    let n = List.length bs in
    let total = List.fold_left (fun acc b -> acc + Block.n_mappings b) 0 bs in
    { ns_blocks = n; ns_mean_mappings = float_of_int total /. float_of_int n }

type stats = {
  st_blocks : int;
  st_mean_mappings : float;
  st_threshold : int;
  st_mappings : int;
}

let stats t =
  let bs = all_blocks t in
  let n = List.length bs in
  let total = List.fold_left (fun acc (b : Block.t) -> acc + Block.n_mappings b) 0 bs in
  {
    st_blocks = n;
    st_mean_mappings =
      (if n = 0 then 0.0 else float_of_int total /. float_of_int n);
    st_threshold = t.threshold;
    st_mappings = Mapping_set.size t.mset;
  }

let storage_bytes t =
  let block_bytes (b : Block.t) = 16 + (8 * Block.n_corrs b) + (4 * Block.n_mappings b) in
  let blocks = List.fold_left (fun acc b -> acc + block_bytes b) 0 (all_blocks t) in
  let hash = 16 * Hashtbl.length t.hash in
  let mappings =
    Array.fold_left
      (fun acc items -> acc + 8 + (8 * List.length items))
      0 t.compressed
  in
  blocks + hash + mappings

let compression_ratio t =
  let naive = Mapping_set.storage_bytes_naive t.mset in
  if naive = 0 then 0.0 else 1.0 -. (float_of_int (storage_bytes t) /. float_of_int naive)

let validate t =
  let target = Mapping_set.target t.mset in
  let check_block y acc (b : Block.t) =
    match acc with
    | Error _ as e -> e
    | Ok () ->
      if b.anchor <> y then Error "block stored at a node that is not its anchor"
      else Block.validate ~target ~mset:t.mset ~threshold:t.threshold b
  in
  let check_node acc y =
    match acc with
    | Error _ as e -> e
    | Ok () -> (
      match List.fold_left (check_block y) (Ok ()) t.nodes.(y) with
      | Error _ as e -> e
      | Ok () ->
        let path = Schema.path_string target y in
        let in_hash = Hashtbl.find_opt t.hash path = Some y in
        if t.nodes.(y) <> [] && not in_hash then
          Error (Printf.sprintf "node %s has blocks but no hash entry" path)
        else Ok ())
  in
  match List.fold_left check_node (Ok ()) (Schema.elements target) with
  | Error _ as e -> e
  | Ok () ->
    (* Lossless compression: block pointers + residuals reconstruct each
       mapping exactly. *)
    let reconstruct items =
      List.concat_map
        (function
          | `Block (b : Block.t) -> Array.to_list b.corrs
          | `Corr (s, t_el) -> [ (s, t_el) ])
        items
      |> List.sort corr_compare
    in
    let check_mapping acc i =
      match acc with
      | Error _ as e -> e
      | Ok () ->
        let original = List.sort corr_compare (Mapping.pairs (Mapping_set.mapping t.mset i)) in
        if reconstruct t.compressed.(i) = original then Ok ()
        else Error (Printf.sprintf "mapping %d does not decompress to its original form" i)
    in
    List.fold_left check_mapping (Ok ()) (List.init (Mapping_set.size t.mset) Fun.id)

let pp_stats fmt t =
  let sizes = block_sizes t in
  let n = List.length sizes in
  let avg =
    if n = 0 then 0.0
    else float_of_int (List.fold_left ( + ) 0 sizes) /. float_of_int n
  in
  Format.fprintf fmt
    "@[<v>c-blocks: %d@ threshold: %d mappings@ avg block size: %.2f corrs@ largest block: %d corrs@ compression ratio: %.2f%%@]"
    n t.threshold avg
    (List.fold_left max 0 sizes)
    (100.0 *. compression_ratio t)
