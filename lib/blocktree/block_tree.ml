module Schema = Uxsm_schema.Schema
module Mapping = Uxsm_mapping.Mapping
module Mapping_set = Uxsm_mapping.Mapping_set
module Obs = Uxsm_obs.Obs

(* Observability: construction cost drivers (see DESIGN.md, metrics layer). *)
let c_builds = Obs.counter "blocktree.builds"
let c_candidates = Obs.counter "blocktree.candidates_tried"
let c_abandoned = Obs.counter "blocktree.intersections_abandoned"
let c_max_b_hits = Obs.counter "blocktree.max_b_hits"
let c_max_f_hits = Obs.counter "blocktree.max_f_hits"
let c_claims = Obs.counter "blocktree.compression_claims"
let s_build = Obs.span "blocktree.build"

type params = {
  tau : float;
  max_b : int;
  max_f : int;
}

let default_params = { tau = 0.2; max_b = 500; max_f = 500 }

type compressed_item = [ `Block of Block.t | `Corr of int * int ]

type t = {
  mset : Mapping_set.t;
  prms : params;
  threshold : int;
  nodes : Block.t list array;
  hash : (string, Schema.element) Hashtbl.t;
  compressed : compressed_item list array;
}

(* |b.M| >= tau * |M|, computed robustly against float noise. *)
let threshold_of tau m = max 1 (int_of_float (ceil ((tau *. float_of_int m) -. 1e-9)))

(* Intersection of two sorted id arrays, with early abandon once the result
   cannot reach [atleast] elements. *)
let intersect ~atleast a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (min na nb) 0 in
  let rec go ia ib k =
    if ia >= na || ib >= nb then k
    else if k + min (na - ia) (nb - ib) < atleast then begin
      Obs.incr c_abandoned;
      -1
    end
    else if a.(ia) = b.(ib) then begin
      out.(k) <- a.(ia);
      go (ia + 1) (ib + 1) (k + 1)
    end
    else if a.(ia) < b.(ib) then go (ia + 1) ib k
    else go ia (ib + 1) k
  in
  let k = go 0 0 0 in
  if k < 0 || k < atleast then None else Some (Array.sub out 0 k)

exception Break

let build_impl ~params mset =
  let target = Mapping_set.target mset in
  let m = Mapping_set.size mset in
  let thr = threshold_of params.tau m in
  let nodes = Array.make (Schema.size target) [] in
  let hash = Hashtbl.create 64 in
  let count = ref 0 in
  (* global cap on non-leaf c-blocks (Algorithm 1's [count]) *)

  (* Group the mappings by their correspondence for target element [y];
     groups of at least [thr] mappings become single-correspondence
     candidate blocks (the paper's init_block). *)
  let init_block y =
    let groups : (int, int list) Hashtbl.t = Hashtbl.create 8 in
    for i = m - 1 downto 0 do
      match Mapping.source_of (Mapping_set.mapping mset i) y with
      | None -> ()
      | Some s ->
        let prev = try Hashtbl.find groups s with Not_found -> [] in
        Hashtbl.replace groups s (i :: prev)
    done;
    Hashtbl.fold
      (fun s ids acc ->
        if List.length ids >= thr then
          Block.create ~anchor:y ~corrs:[ (s, y) ] ~mappings:ids :: acc
        else acc)
      groups []
    |> List.sort (fun (a : Block.t) b -> compare a.corrs.(0) b.corrs.(0))
  in

  (* Algorithm 2: combine each candidate block of [y] with one c-block per
     child; a combination survives when the mapping sets intersect in at
     least [thr] ids (Lemma 1). *)
  let gen_non_leaf y kids =
    let own = init_block y in
    if own = [] then 0
    else begin
      let num_trial = ref 0 in
      let created = ref [] in
      let count_new = ref 0 in
      let child_lists = List.map (fun k -> nodes.(k)) kids in
      let try_combination (b : Block.t) (tuple : Block.t list) =
        Obs.incr c_candidates;
        let ids =
          List.fold_left
            (fun acc (cb : Block.t) ->
              match acc with
              | None -> None
              | Some ids -> intersect ~atleast:thr ids cb.mappings)
            (Some b.mappings) tuple
        in
        (match ids with
        | Some ids when !count < params.max_b ->
          let corrs =
            Array.to_list b.corrs
            @ List.concat_map (fun (cb : Block.t) -> Array.to_list cb.corrs) tuple
          in
          created :=
            Block.create ~anchor:y ~corrs ~mappings:(Array.to_list ids) :: !created;
          incr count_new;
          incr count
        | Some _ | None -> incr num_trial);
        if !count >= params.max_b then begin
          Obs.incr c_max_b_hits;
          raise Break
        end;
        if !num_trial >= params.max_f then begin
          Obs.incr c_max_f_hits;
          raise Break
        end
      in
      let rec tuples acc = function
        | [] -> List.iter (fun b -> try_combination b (List.rev acc)) own
        | blocks :: rest -> List.iter (fun cb -> tuples (cb :: acc) rest) blocks
      in
      (* Enumerate child tuples outermost and the node's own candidates
         innermost so every candidate gets a chance before the caps hit. *)
      (try tuples [] child_lists with Break -> ());
      nodes.(y) <- List.rev !created;
      !count_new
    end
  in

  let rec construct y =
    let kids = Schema.children target y in
    let n_created =
      if kids = [] then begin
        let blocks = init_block y in
        nodes.(y) <- blocks;
        List.length blocks
      end
      else begin
        let kid_counts = List.map construct kids in
        if List.exists (fun c -> c = 0) kid_counts then 0 else gen_non_leaf y kids
      end
    in
    if n_created > 0 then Hashtbl.replace hash (Schema.path_string target y) y;
    n_created
  in
  ignore (construct (Schema.root target));

  (* Mapping compression (Algorithm 1 Step 5): pre-order over the tree;
     replace each mapping's correspondences covered by a block with a
     pointer to that block. Pre-order means the largest (highest-anchored)
     blocks win. *)
  let compressed = Array.make m [] in
  let covered = Array.make_matrix m (Schema.size target) false in
  let compress_at y =
    let claim (b : Block.t) id =
      let free = Array.for_all (fun (_, t_el) -> not covered.(id).(t_el)) b.corrs in
      if free then begin
        Obs.incr c_claims;
        Array.iter (fun (_, t_el) -> covered.(id).(t_el) <- true) b.corrs;
        compressed.(id) <- `Block b :: compressed.(id)
      end
    in
    List.iter (fun (b : Block.t) -> Array.iter (claim b) b.mappings) nodes.(y)
  in
  List.iter compress_at (Schema.elements target);
  for id = 0 to m - 1 do
    let residual =
      List.filter_map
        (fun (s, t_el) -> if covered.(id).(t_el) then None else Some (`Corr (s, t_el)))
        (Mapping.pairs (Mapping_set.mapping mset id))
    in
    compressed.(id) <- List.rev compressed.(id) @ residual
  done;

  { mset; prms = params; threshold = thr; nodes; hash; compressed }

let build ?(params = default_params) mset =
  if params.tau <= 0.0 || params.tau > 1.0 then invalid_arg "Block_tree.build: tau out of (0,1]";
  Obs.incr c_builds;
  Obs.time s_build (fun () -> build_impl ~params mset)

let mapping_set t = t.mset
let params t = t.prms
let threshold t = t.threshold
let blocks_at t y = t.nodes.(y)
let has_blocks t y = t.nodes.(y) <> []
let lookup_path t p = Hashtbl.find_opt t.hash p

let all_blocks t =
  List.concat_map (fun y -> t.nodes.(y)) (Schema.elements (Mapping_set.target t.mset))

let n_blocks t = List.length (all_blocks t)

let block_sizes t = List.map Block.n_corrs (all_blocks t)

let compressed_corrs_of_mapping t i = t.compressed.(i)

(* Cost-model statistics (consumed by Uxsm_plan): block counts and the mean
   mapping-sharing factor f, per node and tree-wide. Both walk the already
   materialized node lists, so they are cheap enough to recompute per query
   compilation. *)

type node_stats = {
  ns_blocks : int;
  ns_mean_mappings : float;
}

let node_stats t y =
  match t.nodes.(y) with
  | [] -> { ns_blocks = 0; ns_mean_mappings = 0.0 }
  | bs ->
    let n = List.length bs in
    let total = List.fold_left (fun acc b -> acc + Block.n_mappings b) 0 bs in
    { ns_blocks = n; ns_mean_mappings = float_of_int total /. float_of_int n }

type stats = {
  st_blocks : int;
  st_mean_mappings : float;
  st_threshold : int;
  st_mappings : int;
}

let stats t =
  let bs = all_blocks t in
  let n = List.length bs in
  let total = List.fold_left (fun acc (b : Block.t) -> acc + Block.n_mappings b) 0 bs in
  {
    st_blocks = n;
    st_mean_mappings =
      (if n = 0 then 0.0 else float_of_int total /. float_of_int n);
    st_threshold = t.threshold;
    st_mappings = Mapping_set.size t.mset;
  }

let storage_bytes t =
  let block_bytes (b : Block.t) = 16 + (8 * Block.n_corrs b) + (4 * Block.n_mappings b) in
  let blocks = List.fold_left (fun acc b -> acc + block_bytes b) 0 (all_blocks t) in
  let hash = 16 * Hashtbl.length t.hash in
  let mappings =
    Array.fold_left
      (fun acc items -> acc + 8 + (8 * List.length items))
      0 t.compressed
  in
  blocks + hash + mappings

let compression_ratio t =
  let naive = Mapping_set.storage_bytes_naive t.mset in
  if naive = 0 then 0.0 else 1.0 -. (float_of_int (storage_bytes t) /. float_of_int naive)

let validate t =
  let target = Mapping_set.target t.mset in
  let check_block y acc (b : Block.t) =
    match acc with
    | Error _ as e -> e
    | Ok () ->
      if b.anchor <> y then Error "block stored at a node that is not its anchor"
      else Block.validate ~target ~mset:t.mset ~threshold:t.threshold b
  in
  let check_node acc y =
    match acc with
    | Error _ as e -> e
    | Ok () -> (
      match List.fold_left (check_block y) (Ok ()) t.nodes.(y) with
      | Error _ as e -> e
      | Ok () ->
        let path = Schema.path_string target y in
        let in_hash = Hashtbl.find_opt t.hash path = Some y in
        if t.nodes.(y) <> [] && not in_hash then
          Error (Printf.sprintf "node %s has blocks but no hash entry" path)
        else Ok ())
  in
  match List.fold_left check_node (Ok ()) (Schema.elements target) with
  | Error _ as e -> e
  | Ok () ->
    (* Lossless compression: block pointers + residuals reconstruct each
       mapping exactly. *)
    let reconstruct items =
      List.concat_map
        (function
          | `Block (b : Block.t) -> Array.to_list b.corrs
          | `Corr (s, t_el) -> [ (s, t_el) ])
        items
      |> List.sort compare
    in
    let check_mapping acc i =
      match acc with
      | Error _ as e -> e
      | Ok () ->
        let original = List.sort compare (Mapping.pairs (Mapping_set.mapping t.mset i)) in
        if reconstruct t.compressed.(i) = original then Ok ()
        else Error (Printf.sprintf "mapping %d does not decompress to its original form" i)
    in
    List.fold_left check_mapping (Ok ()) (List.init (Mapping_set.size t.mset) Fun.id)

let pp_stats fmt t =
  let sizes = block_sizes t in
  let n = List.length sizes in
  let avg =
    if n = 0 then 0.0
    else float_of_int (List.fold_left ( + ) 0 sizes) /. float_of_int n
  in
  Format.fprintf fmt
    "@[<v>c-blocks: %d@ threshold: %d mappings@ avg block size: %.2f corrs@ largest block: %d corrs@ compression ratio: %.2f%%@]"
    n t.threshold avg
    (List.fold_left max 0 sizes)
    (100.0 *. compression_ratio t)
