type t = {
  doc : Doc.t;
  cond : float array;  (* existence probability given the parent exists *)
  marginal : float array;
}

let compute_marginals doc cond =
  Array.mapi
    (fun v p ->
      match Doc.parent doc v with
      | None -> p
      | Some _ ->
        (* pre-order ids: parents precede children, so a left-to-right fold
           would work; recompute explicitly to stay obviously correct *)
        let rec up v acc =
          match Doc.parent doc v with
          | None -> acc
          | Some parent -> up parent (acc *. cond.(parent))
        in
        up v p)
    cond

let of_probs doc probs =
  if Array.length probs <> Doc.size doc then invalid_arg "Prob_doc.of_probs: wrong length";
  Array.iter
    (fun p -> if p < 0.0 || p > 1.0 then invalid_arg "Prob_doc.of_probs: probability out of range")
    probs;
  (* lint: allow float-eq — the root must carry exactly 1.0; no tolerance is intended *)
  if probs.(Doc.root doc) <> 1.0 then invalid_arg "Prob_doc.of_probs: root must have probability 1";
  { doc; cond = Array.copy probs; marginal = compute_marginals doc probs }

let deterministic doc = of_probs doc (Array.make (Doc.size doc) 1.0)

let randomize ~prng ?(p_min = 0.7) ?(p_max = 1.0) doc =
  if p_min < 0.0 || p_max > 1.0 || p_min > p_max then invalid_arg "Prob_doc.randomize";
  let probs =
    Array.init (Doc.size doc) (fun v ->
        if v = Doc.root doc then 1.0
        else p_min +. Uxsm_util.Prng.float prng (p_max -. p_min))
  in
  of_probs doc probs

let doc t = t.doc
let cond_prob t v = t.cond.(v)
let marginal_prob t v = t.marginal.(v)

let coexistence_prob t nodes =
  (* Union of root paths, then product of conditional probabilities. *)
  let closure = Hashtbl.create 16 in
  let rec add v =
    if not (Hashtbl.mem closure v) then begin
      Hashtbl.add closure v ();
      match Doc.parent t.doc v with
      | None -> ()
      | Some p -> add p
    end
  in
  List.iter add nodes;
  Hashtbl.fold (fun v () acc -> acc *. t.cond.(v)) closure 1.0
