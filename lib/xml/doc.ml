type node = int

type t = {
  tree : Tree.t array;  (* original subtree per node, for re-extraction *)
  labels : string array;
  parent : int array;
  children : int array array;
  post : int array;
  sub_end : int array;
  level : int array;
  text : string array;
  attrs : (string * string) list array;
  by_label : (string, int list) Hashtbl.t;  (* stored reversed, exposed in order *)
  by_path : (string, int list) Hashtbl.t;  (* '.'-joined label paths, reversed *)
}

let of_tree root_tree =
  (match root_tree with
  | Tree.Element _ -> ()
  | Tree.Text _ -> invalid_arg "Doc.of_tree: root must be an element");
  let n = Tree.node_count root_tree in
  let tree = Array.make n root_tree in
  let labels = Array.make n "" in
  let parent = Array.make n (-1) in
  let children = Array.make n [||] in
  let post = Array.make n 0 in
  let sub_end = Array.make n 0 in
  let level = Array.make n 0 in
  let text = Array.make n "" in
  let attrs = Array.make n [] in
  let by_label = Hashtbl.create 64 in
  let by_path = Hashtbl.create 64 in
  let paths = Array.make n "" in
  let next_pre = ref 0 in
  let next_post = ref 0 in
  (* Explicit recursion keeps pre/post assignment obviously correct; document
     depth is bounded by schema depth so stack use is fine. *)
  let rec index parent_id depth t =
    match t with
    | Tree.Text _ -> None
    | Tree.Element e ->
      let id = !next_pre in
      incr next_pre;
      tree.(id) <- t;
      labels.(id) <- e.name;
      parent.(id) <- parent_id;
      level.(id) <- depth;
      text.(id) <- Tree.text_content t;
      attrs.(id) <- e.attrs;
      paths.(id) <- (if parent_id < 0 then e.name else paths.(parent_id) ^ "." ^ e.name);
      let prev = try Hashtbl.find by_label e.name with Not_found -> [] in
      Hashtbl.replace by_label e.name (id :: prev);
      let prev_p = try Hashtbl.find by_path paths.(id) with Not_found -> [] in
      Hashtbl.replace by_path paths.(id) (id :: prev_p);
      let kids = List.filter_map (index id (depth + 1)) e.children in
      children.(id) <- Array.of_list kids;
      sub_end.(id) <- !next_pre - 1;
      post.(id) <- !next_post;
      incr next_post;
      Some id
  in
  ignore (index (-1) 0 root_tree);
  { tree; labels; parent; children; post; sub_end; level; text; attrs; by_label; by_path }

let root _ = 0
let size t = Array.length t.labels
let label t i = t.labels.(i)
let parent t i = if t.parent.(i) < 0 then None else Some t.parent.(i)
let children t i = Array.to_list t.children.(i)
let level t i = t.level.(i)
let post t i = t.post.(i)
let subtree_end t i = t.sub_end.(i)
let text t i = t.text.(i)
let attrs t i = t.attrs.(i)
let attr t i name = List.assoc_opt name t.attrs.(i)
let is_ancestor t a b = a < b && t.post.(a) > t.post.(b)
let is_parent t a b = t.parent.(b) = a

let nodes_with_label t l =
  match Hashtbl.find_opt t.by_label l with
  | None -> []
  | Some ids -> List.rev ids

let nodes_with_path t p =
  match Hashtbl.find_opt t.by_path p with
  | None -> []
  | Some ids -> List.rev ids

let labels t =
  Hashtbl.fold (fun l _ acc -> l :: acc) t.by_label [] |> List.sort String.compare

let subtree t i = t.tree.(i)

let path t i =
  let rec up acc i = if i < 0 then acc else up (t.labels.(i) :: acc) t.parent.(i) in
  up [] i
