(** The long-lived `uxsm serve` query service.

    One server value holds a {!Catalog.t} (corpora + artifact LRU) and
    dispatches {!Protocol} requests against it. Three layers are exposed,
    innermost first, so tests can exercise dispatch without any transport:

    - {!handle_request} / {!handle_line}: one request → one response.
      Malformed or failing requests produce [{"ok": false, "error": ...}];
      this layer never raises.
    - {!handle_lines}: a pipelined batch. Runs of consecutive {e pure}
      requests (see {!Protocol.is_pure}) are fanned out through the
      server's {!Uxsm_exec.Executor} — on a multi-domain server,
      independent requests overlap, and each request's own fan-out
      degrades to sequential via the executor's nested-fanout guard.
      [Register] and [Shutdown] act as barriers. Responses are returned
      in request order regardless of backend. A lone request bypasses the
      pool so it keeps its per-request parallelism.
    - {!serve_channels} / {!serve_unix}: the stdio and Unix-domain-socket
      transports (line-delimited JSON both ways). The socket transport
      dispatches every chunk of pipelined lines as one batch.

    Every request is wrapped in an [Uxsm_obs] span
    ([server.op.<endpoint>]) and counted ([server.requests],
    [server.errors], transport bytes, connections); the [stats] endpoint
    serves these counters together with the cache and catalog state. *)

type t

val create : ?cache_entries:int -> ?exec:Uxsm_exec.Executor.t -> unit -> t
(** [exec] defaults to sequential; [cache_entries] to the catalog
    default. *)

val catalog : t -> Catalog.t

val stopping : t -> bool
(** [true] once a [shutdown] request was served or {!request_stop} was
    called; transports drain in-flight requests and then return. *)

val request_stop : t -> unit
(** Signal-handler-safe: flips an atomic flag, nothing else. *)

val handle_request : t -> Protocol.envelope -> Uxsm_util.Json.t
val handle_line : t -> string -> string

val handle_lines : t -> string list -> string list
(** Batch dispatch; one response line per request line, in order. *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Read request lines until EOF or shutdown, replying (and flushing)
    after each line. *)

val serve_unix : t -> socket_path:string -> unit
(** Bind a Unix domain socket (replacing a stale file), then accept one
    connection at a time until {!stopping}; the socket file is removed on
    return. Within a connection, all complete lines available are handled
    as one batch. A shutdown request answers every request received so
    far, then closes the listener. SIGINT/SIGTERM handlers are installed
    for the duration and drain the same way. *)
