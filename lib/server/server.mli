(** The long-lived `uxsm serve` query service.

    One server value holds a {!Catalog.t} (corpora + per-corpus artifact
    LRU shards) and dispatches {!Protocol} requests against it. Layers
    are exposed innermost first, so tests can exercise dispatch without
    any transport:

    - {!handle_request} / {!handle_line}: one request → one response.
      Malformed or failing requests produce [{"ok": false, "error": ...}];
      this layer never raises.
    - {!handle_lines}: a pipelined batch. Runs of consecutive {e pure}
      requests (see {!Protocol.is_pure}) are fanned out through the
      server's {!Uxsm_exec.Executor} — on a multi-domain server,
      independent requests overlap, and each request's own fan-out
      degrades to sequential via the executor's nested-fanout guard.
      [Register] and [Shutdown] act as barriers. Responses are returned
      in request order regardless of backend. A lone request bypasses the
      pool so it keeps its per-request parallelism.
    - {!serve_channels}: the stdio transport (line-delimited JSON both
      ways, one request at a time).
    - {!serve} / {!serve_unix} / {!serve_tcp}: the concurrent socket
      service — any mix of Unix-domain and TCP listeners on one accept
      loop. Each accepted connection gets a reader sys-thread that admits
      complete lines into one {e bounded} dispatch queue shared by all
      connections; a single dispatcher thread drains the queue in batches
      and fans runs of pure requests across the warm domain pool. When
      the queue is full, the reader rejects the line immediately with
      {!Protocol.overloaded_response} (echoing its ["id"]) without
      executing it. Admitted requests from one connection are answered in
      the order they were sent; overload rejections may overtake admitted
      replies — clients correlate by ["id"]. SIGINT/SIGTERM request a
      stop and the service drains: readers retire, every admitted request
      is answered, connections close, the listeners are cleaned up.
      Because the catalog is sharded per corpus, concurrent clients
      working on different corpora do not serialize on one cache lock.

    Every request is wrapped in an [Uxsm_obs] span
    ([server.op.<endpoint>]) and counted ([server.requests],
    [server.errors], transport bytes, connections), and its wall-clock
    latency is recorded in a [server.<op>.latency] histogram; the [stats]
    endpoint serves counters, spans, histogram quantiles (p50/p95/p99)
    and live service gauges (active connections, queue depth/capacity,
    overload rejections, executor contention) together with the cache
    and catalog state. The [stats_reset] endpoint zeroes the Obs
    counters, spans and histograms — a measurement-window barrier for
    load generators (see {!Protocol.request} for its exact pipeline and
    cross-connection semantics). *)

type t

val create : ?cache_entries:int -> ?exec:Uxsm_exec.Executor.t -> unit -> t
(** [exec] defaults to sequential; [cache_entries] to the catalog
    default (per corpus shard). *)

val catalog : t -> Catalog.t

val stopping : t -> bool
(** [true] once a [shutdown] request was served or {!request_stop} was
    called; transports drain in-flight requests and then return. *)

val request_stop : t -> unit
(** Signal-handler-safe: flips an atomic flag, nothing else. *)

val handle_request : t -> Protocol.envelope -> Uxsm_util.Json.t
val handle_line : t -> string -> string

val handle_lines : t -> string list -> string list
(** Batch dispatch; one response line per request line, in order. *)

val record_exec_contention : (unit -> 'a) -> 'a
(** Run [f] and mirror the delta of the executor's
    [exec.sequential_busy] counter across the call into
    [server.exec_contended] — the server-attributed count of fan-outs
    that degraded to sequential because another domain was driving the
    pool. Used around every dispatcher fan-out; exposed for tests. *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Read request lines until EOF or shutdown, replying (and flushing)
    after each line. *)

(** A listening endpoint for {!serve}. *)
type endpoint =
  | Unix_socket of string  (** socket file path; a stale file is replaced *)
  | Tcp of string * int  (** host (name or dotted quad) and port; port 0 = ephemeral *)

val serve : ?max_queue:int -> ?ready:(Unix.sockaddr list -> unit) -> t -> endpoint list -> unit
(** Bind every endpoint, then accept and serve concurrently until
    {!stopping} (see the module docs for the connection model). Returns
    after the drain completes; socket files are unlinked and signal
    handlers restored. [max_queue] (default 256, must be >= 1) bounds the
    shared admission queue. [ready] is called once with the bound
    addresses (in endpoint order) after listening starts — tests use it
    with [Tcp (host, 0)] to learn the ephemeral port.

    @raise Invalid_argument on an empty endpoint list or non-positive
    [max_queue]. *)

val serve_unix : ?max_queue:int -> t -> socket_path:string -> unit
(** [serve] on a single Unix-domain socket. *)

val serve_tcp : ?max_queue:int -> ?ready:(int -> unit) -> t -> host:string -> port:int -> unit
(** [serve] on a single TCP listener; [ready] receives the bound port. *)
