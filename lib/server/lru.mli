(** Bounded least-recently-used cache with hit/miss/eviction accounting.

    The structure itself (hash table over a doubly-linked recency list) is
    single-owner: the caller must hold a lock around every structural
    operation — the catalog holds one mutex per corpus shard. The
    hit/miss/eviction counters, however, are atomics, so {!stats} is exact
    even when read concurrently with traffic on other shards (or, for the
    monitoring path, without the owner's lock at all).

    {!find} and {!put} are O(1); when an insertion pushes the population
    over {!capacity}, least-recently-used entries are dropped and counted
    as evictions. Keys are compared with structural equality, so tuples of
    strings, ints and floats — the catalog's artifact keys — work as is. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int
(** Current population; always [<= capacity t]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup that promotes the entry to most-recently-used and counts one
    hit or one miss. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Pure membership probe: no promotion, no counter traffic. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Pure lookup: no promotion, no counter traffic. Maintenance passes
    (the catalog's in-place artifact patching) read through this so they
    do not skew recency or the demand hit/miss accounting. *)

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace, leaving the entry most-recently-used. Evicts from
    the LRU end if the cache would exceed its capacity. *)

val remove : ('k, 'v) t -> 'k -> unit
(** Drop an entry if present (not counted as an eviction). *)

val clear : ('k, 'v) t -> unit
(** Drop every entry. Counters are cumulative and survive a [clear]. *)

val keys : ('k, 'v) t -> 'k list
(** All keys, most-recently-used first. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
}

val stats : ('k, 'v) t -> stats
(** Cumulative since {!create}; safe to read from any domain (atomic
    counter reads, no structural access). *)

val add_stats : stats -> stats -> stats
(** Component-wise sum — aggregating per-shard stats into a catalog
    total. *)

val zero_stats : stats
