(** The server's prepared-artifact catalog: named corpora plus one shared
    LRU cache of everything derived from them.

    A corpus is registered from a {!Protocol.source_spec} (a Table II
    dataset, serialized matching text, or serialized mapping-set text) and
    is stored as that cheap spec; every derived artifact — the scored
    matching, the generated source document, each top-h mapping set, each
    (h, τ) block tree — lives in the LRU under a structured {!key}, so the
    expensive pipeline runs once per key and repeat queries are served from
    cache. An evicted artifact is rebuilt deterministically from the spec
    on next use (same seed, same algorithms), so eviction affects latency,
    never answers.

    All operations are safe under concurrent use from multiple domains (a
    single internal lock; artifact builds run under it, so concurrent
    requests for the same key build once and the loser waits). *)

type plan_key = {
  pk_corpus : string;
  pk_pattern : string;  (** the query's wire text *)
  pk_h : int;
  pk_tau : float;
  pk_k : int option;
  pk_force : Uxsm_plan.Plan.force;
      (** forced and auto plans for the same query are distinct entries *)
}

type key =
  | K_matching of string  (** corpus name *)
  | K_doc of string
  | K_mset of string * int  (** corpus, h *)
  | K_tree of string * int * float  (** corpus, h, τ *)
  | K_plan of plan_key  (** compiled query plan *)

val key_string : key -> string
(** Stable rendering for the [stats] endpoint, e.g.
    ["tree/orders/h=100/tau=0.2"] or
    ["plan/orders/h=100/tau=0.2/k=3//IP//ICN"]. *)

type t

val create : ?cache_entries:int -> exec:Uxsm_exec.Executor.t -> unit -> t
(** [cache_entries] (default 64) bounds the artifact LRU. [exec] schedules
    the parallelizable stages of artifact builds (matcher scoring, top-h
    ranking) — query evaluation receives it from the server, not from
    here. *)

val executor : t -> Uxsm_exec.Executor.t

val register :
  t ->
  name:string ->
  doc_seed:int ->
  ?doc_nodes:int ->
  Protocol.source_spec ->
  (Uxsm_mapping.Matching.t * Uxsm_xml.Doc.t, string) result
(** Validate the spec by building (and caching) its matching and document.
    Re-registering a name replaces the spec and invalidates every cached
    artifact of that corpus. *)

val corpora : t -> (string * string) list
(** Registered corpora as [(name, spec description)], sorted by name. *)

val matching : t -> string -> (Uxsm_mapping.Matching.t, string) result
(** [Error] when the corpus is unknown or its spec no longer builds. *)

val doc : t -> string -> (Uxsm_xml.Doc.t, string) result

val mapping_set : t -> string -> h:int -> (Uxsm_mapping.Mapping_set.t, string) result

val prepared :
  t ->
  string ->
  h:int ->
  tau:float ->
  (Uxsm_mapping.Mapping_set.t * Uxsm_blocktree.Block_tree.t, string) result
(** The full pipeline product for one (corpus, h, τ): the top-h mapping set
    and its block tree (built with the CLI's MAX_B = MAX_F = 500). *)

val plan :
  t ->
  string ->
  pattern:string ->
  h:int ->
  tau:float ->
  k:int option ->
  force:Uxsm_plan.Plan.force ->
  (Uxsm_ptq.Ptq.plan, string) result
(** The compiled plan for one (corpus, pattern, h, τ, k, evaluator) — the
    prepared-statement analogue. Parses the pattern, assembles the
    evaluation context from the cached artifacts, compiles through the
    cost model, and caches the result; repeat queries call
    {!Uxsm_ptq.Ptq.execute} on the cached plan directly. [Error] on
    unknown corpus, unparsable pattern, or an impossible [force]. *)

val cache_length : t -> int
val cache_capacity : t -> int
val cache_stats : t -> Lru.stats
val cache_keys : t -> key list
(** Most-recently-used first. *)
