(** The server's prepared-artifact catalog: named corpora plus one shared
    LRU cache of everything derived from them.

    A corpus is registered from a {!Protocol.source_spec} (a Table II
    dataset, serialized matching text, or serialized mapping-set text) and
    is stored as that cheap spec; every derived artifact — the scored
    matching, the generated source document, each top-h mapping set, each
    (h, τ) block tree — lives in the LRU under a structured {!key}, so the
    expensive pipeline runs once per key and repeat queries are served from
    cache. An evicted artifact is rebuilt deterministically from the spec
    on next use (same seed, same algorithms), so eviction affects latency,
    never answers.

    {b Concurrency: per-corpus shards.} The catalog is sharded by corpus:
    each corpus owns a shard holding its spec, its own LRU (capacity
    [cache_entries] {e per corpus}) and its own mutex. Every cache key
    names exactly one corpus, so concurrent clients querying different
    corpora build and hit cache in parallel; requests for the same corpus
    serialize on that shard only (same-key builds still run once — the
    loser waits). The global lock guards only the name → shard map and is
    never held across a build, so lock acquisition never nests and cannot
    deadlock. Monitoring reads ({!cache_stats}, {!cache_length},
    {!corpora}) use atomic counters/spec cells and stay responsive while a
    shard is mid-build; {!cache_keys} briefly takes each shard lock. *)

type plan_key = {
  pk_corpus : string;
  pk_pattern : string;  (** the query's wire text *)
  pk_h : int;
  pk_tau : float;
  pk_k : int option;
  pk_force : Uxsm_plan.Plan.force;
      (** forced and auto plans for the same query are distinct entries *)
}

type key =
  | K_matching of string  (** corpus name *)
  | K_doc of string
  | K_mset of string * int  (** corpus, h *)
  | K_tree of string * int * float  (** corpus, h, τ *)
  | K_plan of plan_key  (** compiled query plan *)

val key_string : key -> string
(** Stable rendering for the [stats] endpoint, e.g.
    ["tree/orders/h=100/tau=0.2"] or
    ["plan/orders/h=100/tau=0.2/k=3//IP//ICN"]. *)

type t

val create : ?cache_entries:int -> exec:Uxsm_exec.Executor.t -> unit -> t
(** [cache_entries] (default 64) bounds each corpus shard's artifact LRU
    (a per-corpus budget: total population is bounded by
    [corpora × cache_entries]). [exec] schedules the parallelizable stages
    of artifact builds (matcher scoring, top-h ranking) — query evaluation
    receives it from the server, not from here. *)

val executor : t -> Uxsm_exec.Executor.t

val register :
  t ->
  name:string ->
  doc_seed:int ->
  ?doc_nodes:int ->
  Protocol.source_spec ->
  (Uxsm_mapping.Matching.t * Uxsm_xml.Doc.t, string) result
(** Validate the spec by building (and caching) its matching and document.
    Re-registering a name replaces the spec and invalidates every cached
    artifact of that corpus. *)

val corpora : t -> (string * string) list
(** Registered corpora as [(name, spec description)], sorted by name. *)

type update_stats = {
  u_capacity : int;  (** correspondence count after the delta *)
  u_source_elements : int;
  u_target_elements : int;
  u_msets_patched : int;  (** cached mapping sets re-ranked incrementally *)
  u_trees_patched : int;  (** cached block trees rebuilt subtree-wise *)
  u_plans_invalidated : int;  (** prepared plans dropped (recompiled on next use) *)
  u_doc_rebuilt : bool;  (** the generated document was regenerated (source schema grew) *)
}

val update :
  t -> name:string -> Uxsm_mapping.Matching.delta -> (update_stats, string) result
(** Apply an incremental delta to a registered corpus. The matching is
    patched via {!Uxsm_mapping.Matching.apply_delta}; every cached mapping
    set is re-ranked through {!Uxsm_mapping.Mapping_set.update} (only the
    connected components the delta touches are re-enumerated), every
    cached block tree through {!Uxsm_blocktree.Block_tree.update} (only
    dirty subtrees rebuilt), and the generated document is regenerated
    only when the delta grew the source schema. Prepared plans of the
    corpus are dropped rather than patched — compilation is cheap and a
    plan pins its entire stale context. The delta is appended to the
    corpus entry, so an artifact evicted later rebuilds to the maintained
    state (spec + replay), never the original one.

    Runs entirely under the corpus' shard lock with compute-then-commit
    discipline: a rejected delta ([Error]) leaves the corpus and its cache
    exactly as they were. Concurrent traffic on other corpora is not
    serialized against an update. *)

val matching : t -> string -> (Uxsm_mapping.Matching.t, string) result
(** [Error] when the corpus is unknown or its spec no longer builds. *)

val doc : t -> string -> (Uxsm_xml.Doc.t, string) result

val mapping_set : t -> string -> h:int -> (Uxsm_mapping.Mapping_set.t, string) result

val prepared :
  t ->
  string ->
  h:int ->
  tau:float ->
  (Uxsm_mapping.Mapping_set.t * Uxsm_blocktree.Block_tree.t, string) result
(** The full pipeline product for one (corpus, h, τ): the top-h mapping set
    and its block tree (built with the CLI's MAX_B = MAX_F = 500). *)

val plan :
  t ->
  string ->
  pattern:string ->
  h:int ->
  tau:float ->
  k:int option ->
  force:Uxsm_plan.Plan.force ->
  (Uxsm_ptq.Ptq.plan, string) result
(** The compiled plan for one (corpus, pattern, h, τ, k, evaluator) — the
    prepared-statement analogue. Parses the pattern, assembles the
    evaluation context from the cached artifacts, compiles through the
    cost model, and caches the result; repeat queries call
    {!Uxsm_ptq.Ptq.execute} on the cached plan directly. [Error] on
    unknown corpus, unparsable pattern, or an impossible [force]. *)

val cache_length : t -> int
(** Total population across all shards (lock-free monitoring read). *)

val cache_capacity : t -> int
(** The per-corpus shard capacity (the [cache_entries] given at
    creation). *)

val cache_stats : t -> Lru.stats
(** Hit/miss/eviction totals summed across shards (atomic reads; exact
    even while shards serve traffic). *)

val cache_keys : t -> key list
(** Keys grouped by corpus (corpus names ascending), most-recently-used
    first within each corpus. *)

val shard_count : t -> int
(** Number of corpus shards (includes shards whose registration
    failed and that hold no corpus). *)
