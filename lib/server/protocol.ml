module Json = Uxsm_util.Json
module Dataset = Uxsm_workload.Dataset

type source_spec =
  | From_dataset of Dataset.t * int
  | From_matching_text of string
  | From_mapping_set_text of string

type request =
  | Ping
  | Register of {
      name : string;
      spec : source_spec;
      doc_seed : int;
      doc_nodes : int option;
    }
  | Match of { corpus : string }
  | Mappings of { corpus : string; h : int }
  | Query of {
      corpus : string;
      pattern : string;
      h : int;
      tau : float;
      k : int option;
      evaluator : Uxsm_plan.Plan.force;
    }
  | Explain of { corpus : string; pattern : string; h : int; tau : float }
  | Save of { corpus : string; h : int; path : string option }
  | Update of { corpus : string; delta : Uxsm_mapping.Matching.delta }
  | Stats
  | Stats_reset
  | Shutdown

type envelope = {
  id : Json.t option;
  req : request;
}

let default_h = 100
let default_tau = 0.2
let default_doc_seed = 7

let op_name = function
  | Ping -> "ping"
  | Register _ -> "register"
  | Match _ -> "match"
  | Mappings _ -> "mappings"
  | Query { k = Some _; _ } -> "query_topk"
  | Query _ -> "query"
  | Explain _ -> "explain"
  | Save _ -> "save"
  | Update _ -> "update"
  | Stats -> "stats"
  | Stats_reset -> "stats_reset"
  | Shutdown -> "shutdown"

let is_pure = function
  | Register _ | Update _ | Stats_reset | Shutdown -> false
  | Ping | Match _ | Mappings _ | Query _ | Explain _ | Save _ | Stats -> true

(* ------------------------------ decoding -------------------------- *)

exception Fail of string

let failf fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

let opt_field conv what op name j =
  match Json.member name j with
  | None | Some Json.Null -> None
  | Some v -> (
    match conv v with
    | Some x -> Some x
    | None -> failf "%s: field %S is not %s" op name what)

let req_field conv what op name j =
  match opt_field conv what op name j with
  | Some x -> x
  | None -> failf "%s: missing field %S" op name

let str_opt = opt_field Json.to_string_opt "a string"
let str = req_field Json.to_string_opt "a string"
let int_opt = opt_field Json.to_int "an integer"
let float_opt = opt_field Json.to_float "a number"

let positive op name = function
  | Some n when n < 1 -> failf "%s: field %S must be >= 1" op name
  | v -> v

let h_of op j = Option.value ~default:default_h (positive op "h" (int_opt op "h" j))

let tau_of op j =
  match float_opt op "tau" j with
  | None -> default_tau
  | Some t when t > 0.0 && t <= 1.0 -> t
  | Some _ -> failf "%s: field \"tau\" must be in (0, 1]" op

let corpus_of op j = str op "corpus" j
let pattern_of op j = str op "query" j

let evaluator_of op j =
  match str_opt op "evaluator" j with
  | None -> `Auto
  | Some s -> (
    match Uxsm_plan.Plan.force_of_string s with
    | Some f -> f
    | None -> failf "%s: field \"evaluator\" must be one of \"basic\", \"tree\", \"auto\"" op)

let register_of j =
  let op = "register" in
  let name = str op "name" j in
  let sources =
    List.filter_map Fun.id
      [
        Option.map
          (fun id ->
            match Dataset.find id with
            | Some d ->
              let seed = Option.value ~default:42 (int_opt op "seed" j) in
              From_dataset (d, seed)
            | None -> failf "%s: unknown dataset %S (D1..D10)" op id)
          (str_opt op "dataset" j);
        Option.map (fun t -> From_matching_text t) (str_opt op "matching" j);
        Option.map (fun t -> From_mapping_set_text t) (str_opt op "mapping_set" j);
      ]
  in
  match sources with
  | [ spec ] ->
    Register
      {
        name;
        spec;
        doc_seed = Option.value ~default:default_doc_seed (int_opt op "doc_seed" j);
        doc_nodes = positive op "doc_nodes" (int_opt op "doc_nodes" j);
      }
  | [] -> failf "%s: need one of \"dataset\", \"matching\", \"mapping_set\"" op
  | _ -> failf "%s: fields \"dataset\", \"matching\", \"mapping_set\" are exclusive" op

(* An update's delta arrives as four optional arrays of small objects:
   {"set":[{"source":PATH,"target":PATH,"score":X}...],
    "remove":[{"source":PATH,"target":PATH}...],
    "add_source_elements":[{"parent":PATH,"name":NAME}...],
    "add_target_elements":[...]}. Paths use the '.'-joined path_string
   format; an entirely empty delta is rejected rather than silently
   acknowledged. *)
let update_of j =
  let op = "update" in
  let corpus = corpus_of op j in
  let entries name =
    match Json.member name j with
    | None | Some Json.Null -> []
    | Some (Json.List items) -> items
    | Some _ -> failf "%s: field %S is not an array" op name
  in
  let entry_str name item field =
    match Json.member field item with
    | Some (Json.String s) -> s
    | Some _ -> failf "%s: field %S entries: field %S is not a string" op name field
    | None -> failf "%s: field %S entries: missing field %S" op name field
  in
  let set =
    List.map
      (fun item ->
        let score =
          match Json.member "score" item with
          | Some v -> (
            match Json.to_float v with
            | Some f -> f
            | None -> failf "%s: field \"set\" entries: field \"score\" is not a number" op)
          | None -> failf "%s: field \"set\" entries: missing field \"score\"" op
        in
        (entry_str "set" item "source", entry_str "set" item "target", score))
      (entries "set")
  in
  let remove =
    List.map
      (fun item -> (entry_str "remove" item "source", entry_str "remove" item "target"))
      (entries "remove")
  in
  let adds name =
    List.map
      (fun item -> (entry_str name item "parent", entry_str name item "name"))
      (entries name)
  in
  let delta =
    {
      Uxsm_mapping.Matching.set_scores = set;
      remove_corrs = remove;
      add_source = adds "add_source_elements";
      add_target = adds "add_target_elements";
    }
  in
  if Uxsm_mapping.Matching.delta_is_empty delta then
    failf
      "%s: need at least one of \"set\", \"remove\", \"add_source_elements\", \
       \"add_target_elements\""
      op;
  Update { corpus; delta }

let request_of_json j =
  match str "request" "op" j with
  | "ping" -> Ping
  | "register" -> register_of j
  | "match" -> Match { corpus = corpus_of "match" j }
  | "mappings" -> Mappings { corpus = corpus_of "mappings" j; h = h_of "mappings" j }
  | "query" ->
    let op = "query" in
    Query
      { corpus = corpus_of op j; pattern = pattern_of op j; h = h_of op j; tau = tau_of op j;
        k = None; evaluator = evaluator_of op j }
  | "query_topk" ->
    let op = "query_topk" in
    let k =
      match positive op "k" (int_opt op "k" j) with
      | Some k -> k
      | None -> failf "%s: missing field \"k\"" op
    in
    Query
      { corpus = corpus_of op j; pattern = pattern_of op j; h = h_of op j; tau = tau_of op j;
        k = Some k; evaluator = evaluator_of op j }
  | "explain" ->
    let op = "explain" in
    Explain
      { corpus = corpus_of op j; pattern = pattern_of op j; h = h_of op j; tau = tau_of op j }
  | "save" ->
    let op = "save" in
    Save { corpus = corpus_of op j; h = h_of op j; path = str_opt op "path" j }
  | "update" -> update_of j
  | "stats" -> Stats
  | "stats_reset" -> Stats_reset
  | "shutdown" -> Shutdown
  | op -> failf "unknown op %S" op

type parse_error = { err_id : Json.t option; message : string }

let parse j =
  match j with
  | Json.Assoc _ -> (
    let err_id = Json.member "id" j in
    try Ok { id = err_id; req = request_of_json j }
    with Fail msg -> Error { err_id; message = msg })
  | _ -> Error { err_id = None; message = "request is not a JSON object" }

let parse_line line =
  match Json.of_string line with
  | Error e -> Error { err_id = None; message = Printf.sprintf "malformed JSON: %s" e }
  | Ok j -> parse j

(* ------------------------------ encoding -------------------------- *)

let to_json { id; req } =
  let id_field = match id with None -> [] | Some v -> [ ("id", v) ] in
  let fields =
    match req with
    | Ping -> []
    | Register { name; spec; doc_seed; doc_nodes } ->
      [ ("name", Json.String name) ]
      @ (match spec with
        | From_dataset (d, seed) -> [ ("dataset", Json.String d.Dataset.id); ("seed", Json.Int seed) ]
        | From_matching_text t -> [ ("matching", Json.String t) ]
        | From_mapping_set_text t -> [ ("mapping_set", Json.String t) ])
      @ [ ("doc_seed", Json.Int doc_seed) ]
      @ (match doc_nodes with None -> [] | Some n -> [ ("doc_nodes", Json.Int n) ])
    | Match { corpus } -> [ ("corpus", Json.String corpus) ]
    | Mappings { corpus; h } -> [ ("corpus", Json.String corpus); ("h", Json.Int h) ]
    | Query { corpus; pattern; h; tau; k; evaluator } ->
      [ ("corpus", Json.String corpus); ("query", Json.String pattern); ("h", Json.Int h);
        ("tau", Json.Float tau) ]
      @ (match k with None -> [] | Some k -> [ ("k", Json.Int k) ])
      @ (match evaluator with
        | `Auto -> []  (* the default round-trips as absence *)
        | (`Basic | `Tree) as f ->
          [ ("evaluator", Json.String (Uxsm_plan.Plan.force_to_string f)) ])
    | Explain { corpus; pattern; h; tau } ->
      [ ("corpus", Json.String corpus); ("query", Json.String pattern); ("h", Json.Int h);
        ("tau", Json.Float tau) ]
    | Save { corpus; h; path } ->
      [ ("corpus", Json.String corpus); ("h", Json.Int h) ]
      @ (match path with None -> [] | Some p -> [ ("path", Json.String p) ])
    | Update { corpus; delta } ->
      let pair_entries f l =
        Json.List (List.map f l)
      in
      [ ("corpus", Json.String corpus) ]
      @ (match delta.Uxsm_mapping.Matching.set_scores with
        | [] -> []  (* empty arrays round-trip as absence *)
        | l ->
          [ ( "set",
              pair_entries
                (fun (s, t, w) ->
                  Json.Assoc
                    [ ("source", Json.String s); ("target", Json.String t);
                      ("score", Json.Float w) ])
                l ) ])
      @ (match delta.Uxsm_mapping.Matching.remove_corrs with
        | [] -> []
        | l ->
          [ ( "remove",
              pair_entries
                (fun (s, t) ->
                  Json.Assoc [ ("source", Json.String s); ("target", Json.String t) ])
                l ) ])
      @ (let adds name l =
           match l with
           | [] -> []
           | l ->
             [ ( name,
                 pair_entries
                   (fun (p, n) ->
                     Json.Assoc [ ("parent", Json.String p); ("name", Json.String n) ])
                   l ) ]
         in
         adds "add_source_elements" delta.Uxsm_mapping.Matching.add_source
         @ adds "add_target_elements" delta.Uxsm_mapping.Matching.add_target)
    | Stats | Stats_reset | Shutdown -> []
  in
  Json.Assoc (id_field @ (("op", Json.String (op_name req)) :: fields))

let ok_response ?id fields =
  let id_field = match id with None -> [] | Some v -> [ ("id", v) ] in
  Json.Assoc (id_field @ (("ok", Json.Bool true) :: fields))

let error_response ?id msg =
  let id_field = match id with None -> [] | Some v -> [ ("id", v) ] in
  Json.Assoc (id_field @ [ ("ok", Json.Bool false); ("error", Json.String msg) ])

let overloaded_response ?id () =
  let id_field = match id with None -> [] | Some v -> [ ("id", v) ] in
  Json.Assoc
    (id_field
    @ [
        ("ok", Json.Bool false);
        ("error", Json.String "overloaded: admission queue full, retry later");
        ("overloaded", Json.Bool true);
      ])

let is_overloaded_response j = Json.member "overloaded" j = Some (Json.Bool true)
