(** The `uxsm serve` wire protocol: one JSON object per line in each
    direction (JSON Lines), parsed and emitted with {!Uxsm_util.Json}.

    Every request is an object with an ["op"] field naming the endpoint,
    op-specific parameters, and an optional ["id"] of any JSON type that is
    echoed verbatim in the response, so pipelining clients can correlate
    replies. Every response carries ["ok"] — [true] with op-specific
    payload fields, or [false] with a human-readable ["error"]. Malformed
    input is answered with an error response, never a dropped connection.

    The grammar is documented in DESIGN.md §10. *)

(** How a corpus' matching is obtained at registration time. *)
type source_spec =
  | From_dataset of Uxsm_workload.Dataset.t * int
      (** Table II dataset and generation seed: the matcher runs on the
          dataset's schema pair. *)
  | From_matching_text of string
      (** [uxsm-matching v1] text ({!Uxsm_mapping.Serialize}). *)
  | From_mapping_set_text of string
      (** [uxsm-mappings v1] text; the embedded matching is used and top-h
          sets are re-derived per requested [h]. *)

type request =
  | Ping
  | Register of {
      name : string;
      spec : source_spec;
      doc_seed : int;  (** seed for the generated source document *)
      doc_nodes : int option;  (** target node count; [None] = generator default *)
    }
  | Match of { corpus : string }
  | Mappings of { corpus : string; h : int }
  | Query of {
      corpus : string;
      pattern : string;  (** twig query, Table III syntax *)
      h : int;
      tau : float;
      k : int option;  (** [Some k] is the [query_topk] endpoint *)
      evaluator : Uxsm_plan.Plan.force;
          (** optional ["evaluator"] field, ["basic"] / ["tree"] /
              ["auto"]; absent means [`Auto] (cost-based choice) *)
    }
  | Explain of { corpus : string; pattern : string; h : int; tau : float }
  | Save of { corpus : string; h : int; path : string option }
  | Update of { corpus : string; delta : Uxsm_mapping.Matching.delta }
      (** Incremental corpus maintenance: apply a correspondence/element
          delta to a registered corpus, patching its cached artifacts in
          place (see {!Catalog.update}) instead of evicting them. On the
          wire the delta is four optional arrays:
          ["set"] ([{"source","target","score"}] objects — re-score or
          add correspondences, paths in the ['.']-joined path format),
          ["remove"] ([{"source","target"}]),
          ["add_source_elements"] / ["add_target_elements"]
          ([{"parent","name"}] — append-only schema growth). An entirely
          empty delta is a parse error. {b Barrier semantics}: like
          [Register], the op is not pure, so pipelined requests before it
          see the old corpus and requests after it see the patched one. *)
  | Stats
  | Stats_reset
      (** Zero every process-global [Uxsm_obs] counter, span and histogram
          so a measurement window (e.g. a load-generator run after its
          warmup phase) starts from a clean slate. {b Barrier semantics}:
          like [Register], the op is not pure, so within a pipeline every
          request admitted before it completes (and is counted) before the
          reset executes, and every later request lands in the fresh
          window. The state is process-global — concurrent traffic on
          {e other} connections that is still in flight when the reset
          runs is split across the boundary; a load generator must quiesce
          its own workers before issuing it. Cache hit/miss/eviction
          totals and live gauges are not [Obs] state and are unaffected.
          The reset request's own latency observation is the first sample
          of the new window. *)
  | Shutdown

type envelope = {
  id : Uxsm_util.Json.t option;  (** echoed verbatim when present *)
  req : request;
}

val default_h : int
(** 100 — the paper's default [|M|]. *)

val default_tau : float
(** 0.2 — the paper's default confidence threshold. *)

val op_name : request -> string
(** The wire name: ["ping"], ["register"], ["match"], ["mappings"],
    ["query"], ["query_topk"], ["explain"], ["save"], ["update"],
    ["stats"], ["stats_reset"], ["shutdown"]. *)

val is_pure : request -> bool
(** [true] when the request neither mutates server-global state nor stops
    the server, so a batch of them may be dispatched concurrently.
    [Register], [Update], [Stats_reset] and [Shutdown] are the
    barriers. *)

type parse_error = {
  err_id : Uxsm_util.Json.t option;
      (** the request's ["id"], when the line was at least a JSON object —
          echoed in the error response so pipelining clients can correlate
          failures too *)
  message : string;
}

val parse : Uxsm_util.Json.t -> (envelope, parse_error) result
(** Decode a request object. Errors name the offending field, e.g.
    ["register: missing field \"name\""]. *)

val parse_line : string -> (envelope, parse_error) result
(** {!parse} composed with JSON parsing of one line. *)

val to_json : envelope -> Uxsm_util.Json.t
(** Encode a request; [parse (to_json e)] restores [e] (up to dataset
    identity for [From_dataset]). Used by the client and tests. *)

val ok_response : ?id:Uxsm_util.Json.t -> (string * Uxsm_util.Json.t) list -> Uxsm_util.Json.t
(** [{"id": id?, "ok": true, ...fields}]. *)

val error_response : ?id:Uxsm_util.Json.t -> string -> Uxsm_util.Json.t
(** [{"id": id?, "ok": false, "error": msg}]. *)

val overloaded_response : ?id:Uxsm_util.Json.t -> unit -> Uxsm_util.Json.t
(** The structured backpressure reply:
    [{"id": id?, "ok": false, "error": "overloaded: ...",
    "overloaded": true}]. Sent by the transport (not dispatch) when the
    admission queue is full; the request was {e not} executed and is safe
    to retry. *)

val is_overloaded_response : Uxsm_util.Json.t -> bool
(** [true] iff the response carries ["overloaded": true] — how clients
    distinguish backpressure from request errors. *)
