module Executor = Uxsm_exec.Executor
module Obs = Uxsm_obs.Obs
module Matching = Uxsm_mapping.Matching
module Mapping_set = Uxsm_mapping.Mapping_set
module Serialize = Uxsm_mapping.Serialize
module Block_tree = Uxsm_blocktree.Block_tree
module Dataset = Uxsm_workload.Dataset
module Gen_doc = Uxsm_workload.Gen_doc
module Plan = Uxsm_plan.Plan
module Ptq = Uxsm_ptq.Ptq

(* Cache traffic is also mirrored into the metrics layer so `stats` (and
   bench records, if a server ever runs under the harness) can report it
   alongside the pipeline counters. *)
let c_hits = Obs.counter "server.cache.hits"
let c_misses = Obs.counter "server.cache.misses"
let c_evictions = Obs.counter "server.cache.evictions"
let s_build = Obs.span "server.artifact_build"

type plan_key = {
  pk_corpus : string;
  pk_pattern : string;
  pk_h : int;
  pk_tau : float;
  pk_k : int option;
  pk_force : Plan.force;
}

type key =
  | K_matching of string
  | K_doc of string
  | K_mset of string * int
  | K_tree of string * int * float
  | K_plan of plan_key

let key_string = function
  | K_matching c -> Printf.sprintf "matching/%s" c
  | K_doc c -> Printf.sprintf "doc/%s" c
  | K_mset (c, h) -> Printf.sprintf "mset/%s/h=%d" c h
  | K_tree (c, h, tau) -> Printf.sprintf "tree/%s/h=%d/tau=%g" c h tau
  | K_plan p ->
    Printf.sprintf "plan/%s/h=%d/tau=%g%s%s/%s" p.pk_corpus p.pk_h p.pk_tau
      (match p.pk_k with None -> "" | Some k -> Printf.sprintf "/k=%d" k)
      (match p.pk_force with
      | `Auto -> ""
      | f -> Printf.sprintf "/ev=%s" (Plan.force_to_string f))
      p.pk_pattern

type artifact =
  | A_matching of Matching.t
  | A_doc of Uxsm_xml.Doc.t
  | A_mset of Mapping_set.t
  | A_tree of Mapping_set.t * Block_tree.t
      (** the tree pins its mapping set so a cached tree answers queries
          even after the standalone mapping-set entry was evicted *)
  | A_plan of Ptq.plan
      (** a compiled query plan; it pins its whole evaluation context
          (mapping set, block tree, documents), so executions survive the
          eviction of the artifacts it was compiled from *)

type entry = {
  spec : Protocol.source_spec;
  doc_seed : int;
  doc_nodes : int option;
}

type t = {
  exec : Executor.t;
  corpora : (string, entry) Hashtbl.t;
  cache : (key, artifact) Lru.t;
  lock : Mutex.t;
}

let create ?(cache_entries = 64) ~exec () =
  {
    exec;
    corpora = Hashtbl.create 8;
    cache = Lru.create ~capacity:cache_entries;
    lock = Mutex.create ();
  }

let executor t = t.exec

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

exception Fail of string

let failf fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

let spec_description = function
  | Protocol.From_dataset (d, seed) -> Printf.sprintf "dataset %s (seed %d)" d.Dataset.id seed
  | Protocol.From_matching_text _ -> "matching text"
  | Protocol.From_mapping_set_text _ -> "mapping-set text"

(* ----------------------- cached artifact access -------------------- *)
(* The [_locked] builders assume the catalog lock is held; the eviction
   counter is reconciled after every cache write. *)

let mirror_evictions t before =
  let after = (Lru.stats t.cache).Lru.evictions in
  if after > before then Obs.add c_evictions (after - before)

let cache_get t key =
  match Lru.find t.cache key with
  | Some a ->
    Obs.incr c_hits;
    Some a
  | None ->
    Obs.incr c_misses;
    None

let cache_put t key a =
  let before = (Lru.stats t.cache).Lru.evictions in
  Lru.put t.cache key a;
  mirror_evictions t before

let entry_locked t name =
  match Hashtbl.find_opt t.corpora name with
  | Some e -> e
  | None -> failf "unknown corpus %S (register it first)" name

let build_matching t (e : entry) =
  match e.spec with
  | Protocol.From_dataset (d, seed) -> Dataset.matching ~seed ~exec:t.exec d
  | Protocol.From_matching_text text -> (
    match Serialize.matching_of_string text with
    | Ok m -> m
    | Error msg -> failf "bad matching text: %s" msg)
  | Protocol.From_mapping_set_text text -> (
    match Serialize.mapping_set_of_string text with
    | Ok mset -> Mapping_set.matching mset
    | Error msg -> failf "bad mapping-set text: %s" msg)

let matching_locked t name =
  let key = K_matching name in
  match cache_get t key with
  | Some (A_matching m) -> m
  | _ ->
    let e = entry_locked t name in
    let m = Obs.time s_build (fun () -> build_matching t e) in
    cache_put t key (A_matching m);
    m

let doc_locked t name =
  let key = K_doc name in
  match cache_get t key with
  | Some (A_doc d) -> d
  | _ ->
    let e = entry_locked t name in
    let source = Matching.source (matching_locked t name) in
    let d =
      Obs.time s_build (fun () ->
          match e.doc_nodes with
          | Some n -> Gen_doc.generate ~seed:e.doc_seed ~target_nodes:n source
          | None -> Gen_doc.generate ~seed:e.doc_seed source)
    in
    cache_put t key (A_doc d);
    d

let mset_locked t name ~h =
  let key = K_mset (name, h) in
  match cache_get t key with
  | Some (A_mset s) -> s
  | _ ->
    let m = matching_locked t name in
    let s = Obs.time s_build (fun () -> Mapping_set.generate ~exec:t.exec ~h m) in
    cache_put t key (A_mset s);
    s

let tree_locked t name ~h ~tau =
  let key = K_tree (name, h, tau) in
  match cache_get t key with
  | Some (A_tree (s, tr)) -> (s, tr)
  | _ ->
    let s = mset_locked t name ~h in
    let tr =
      Obs.time s_build (fun () ->
          Block_tree.build ~params:{ Block_tree.tau; max_b = 500; max_f = 500 } s)
    in
    cache_put t key (A_tree (s, tr));
    (s, tr)

(* A compiled plan pins mapping set, tree and documents, so repeated
   queries skip pattern parsing, resolution, coverage and the cost model,
   not just artifact construction. The key includes the forced evaluator:
   a forced plan and the auto plan for the same query are distinct
   artifacts. *)
let plan_locked t name ~pattern ~h ~tau ~k ~force =
  let key = K_plan { pk_corpus = name; pk_pattern = pattern; pk_h = h; pk_tau = tau;
                     pk_k = k; pk_force = force }
  in
  match cache_get t key with
  | Some (A_plan p) -> p
  | _ ->
    let q =
      match Uxsm_twig.Pattern_parser.parse pattern with
      | Ok q -> q
      | Error e -> failf "bad query %S: %s" pattern e
    in
    let mset, tree = tree_locked t name ~h ~tau in
    let doc = doc_locked t name in
    let ctx = Ptq.context ~exec:t.exec ~tree ~mset ~doc () in
    let p = Obs.time s_build (fun () -> Ptq.compile ~force ?k ctx q) in
    cache_put t key (A_plan p);
    p

(* ------------------------------ public API ------------------------- *)

let wrap f = try Ok (f ()) with Fail msg -> Error msg | Invalid_argument msg -> Error msg

let corpus_of_key = function
  | K_matching c | K_doc c | K_mset (c, _) | K_tree (c, _, _) -> c
  | K_plan p -> p.pk_corpus

let register t ~name ~doc_seed ?doc_nodes spec =
  wrap (fun () ->
      with_lock t (fun () ->
          (* Replacing a spec must not leave stale derivations behind. *)
          let previous = Hashtbl.find_opt t.corpora name in
          if previous <> None then
            List.iter
              (fun k -> if corpus_of_key k = name then Lru.remove t.cache k)
              (Lru.keys t.cache);
          Hashtbl.replace t.corpora name { spec; doc_seed; doc_nodes };
          try
            let m = matching_locked t name in
            let d = doc_locked t name in
            (m, d)
          with e ->
            (* A spec that does not build must not shadow the old corpus
               (or register at all), nor leave partial derivations cached. *)
            List.iter
              (fun k -> if corpus_of_key k = name then Lru.remove t.cache k)
              (Lru.keys t.cache);
            (match previous with
            | Some p -> Hashtbl.replace t.corpora name p
            | None -> Hashtbl.remove t.corpora name);
            raise e))

let corpora t =
  with_lock t (fun () ->
      Hashtbl.fold (fun name e acc -> (name, spec_description e.spec) :: acc) t.corpora []
      (* Corpus names are unique table keys, so this key alone is total. *)
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let matching t name = wrap (fun () -> with_lock t (fun () -> matching_locked t name))
let doc t name = wrap (fun () -> with_lock t (fun () -> doc_locked t name))
let mapping_set t name ~h = wrap (fun () -> with_lock t (fun () -> mset_locked t name ~h))

let prepared t name ~h ~tau =
  wrap (fun () -> with_lock t (fun () -> tree_locked t name ~h ~tau))

let plan t name ~pattern ~h ~tau ~k ~force =
  wrap (fun () -> with_lock t (fun () -> plan_locked t name ~pattern ~h ~tau ~k ~force))

let cache_length t = with_lock t (fun () -> Lru.length t.cache)
let cache_capacity t = Lru.capacity t.cache
let cache_stats t = with_lock t (fun () -> Lru.stats t.cache)
let cache_keys t = with_lock t (fun () -> Lru.keys t.cache)
