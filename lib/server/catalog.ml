module Executor = Uxsm_exec.Executor
module Locks = Uxsm_util.Locks
module Obs = Uxsm_obs.Obs
module Matching = Uxsm_mapping.Matching
module Mapping_set = Uxsm_mapping.Mapping_set
module Serialize = Uxsm_mapping.Serialize
module Block_tree = Uxsm_blocktree.Block_tree
module Dataset = Uxsm_workload.Dataset
module Gen_doc = Uxsm_workload.Gen_doc
module Plan = Uxsm_plan.Plan
module Ptq = Uxsm_ptq.Ptq

(* Cache traffic is also mirrored into the metrics layer so `stats` (and
   bench records, if a server ever runs under the harness) can report it
   alongside the pipeline counters. *)
let c_hits = Obs.counter "server.cache.hits"
let c_misses = Obs.counter "server.cache.misses"
let c_evictions = Obs.counter "server.cache.evictions"
let s_build = Obs.span "server.artifact_build"

(* Incremental maintenance traffic (the `update` request). *)
let c_updates = Obs.counter "catalog.updates"
let c_upd_msets = Obs.counter "catalog.update.msets_patched"
let c_upd_trees = Obs.counter "catalog.update.trees_patched"
let c_upd_plans = Obs.counter "catalog.update.plans_invalidated"
let c_upd_docs = Obs.counter "catalog.update.docs_rebuilt"
let s_update = Obs.span "catalog.update"

type plan_key = {
  pk_corpus : string;
  pk_pattern : string;
  pk_h : int;
  pk_tau : float;
  pk_k : int option;
  pk_force : Plan.force;
}

type key =
  | K_matching of string
  | K_doc of string
  | K_mset of string * int
  | K_tree of string * int * float
  | K_plan of plan_key

let key_string = function
  | K_matching c -> Printf.sprintf "matching/%s" c
  | K_doc c -> Printf.sprintf "doc/%s" c
  | K_mset (c, h) -> Printf.sprintf "mset/%s/h=%d" c h
  | K_tree (c, h, tau) -> Printf.sprintf "tree/%s/h=%d/tau=%g" c h tau
  | K_plan p ->
    Printf.sprintf "plan/%s/h=%d/tau=%g%s%s/%s" p.pk_corpus p.pk_h p.pk_tau
      (match p.pk_k with None -> "" | Some k -> Printf.sprintf "/k=%d" k)
      (match p.pk_force with
      | `Auto -> ""
      | f -> Printf.sprintf "/ev=%s" (Plan.force_to_string f))
      p.pk_pattern

type artifact =
  | A_matching of Matching.t
  | A_doc of Uxsm_xml.Doc.t
  | A_mset of Mapping_set.t
  | A_tree of Mapping_set.t * Block_tree.t
      (** the tree pins its mapping set so a cached tree answers queries
          even after the standalone mapping-set entry was evicted *)
  | A_plan of Ptq.plan
      (** a compiled query plan; it pins its whole evaluation context
          (mapping set, block tree, documents), so executions survive the
          eviction of the artifacts it was compiled from *)

type entry = {
  spec : Protocol.source_spec;
  doc_seed : int;
  doc_nodes : int option;
  deltas : Matching.delta list;
      (* updates applied since registration, in order; an evicted matching
         rebuilds from the spec and replays these, so eviction-rebuild
         reproduces the maintained corpus, not the original one *)
}

(* One shard per corpus. Every cache key names exactly one corpus, so a
   corpus's artifacts, its spec and the lock that guards their
   construction live together: concurrent clients querying different
   corpora touch different shards and never serialize against each other.
   The spec is an atomic (readable by the corpora listing without the
   shard lock); the LRU structure is owned by [sh_lock]. *)
type shard = {
  sh_lock : Locks.t;
  sh_cache : (key, artifact) Lru.t;
  sh_entry : entry option Atomic.t;
}

type t = {
  exec : Executor.t;
  lock : Locks.t;  (** guards [shards] (the name → shard map), nothing else *)
  shards : (string, shard) Hashtbl.t;
  cache_entries : int;  (** per-shard LRU capacity *)
}

let create ?(cache_entries = 64) ~exec () =
  { exec; lock = Locks.create ~name:"catalog.map" ~rank:Locks.rank_catalog_map;
    shards = Hashtbl.create 8; cache_entries }

let executor t = t.exec

(* Lock protocol: the global [t.lock] is only ever taken on its own (shard
   lookup/creation, shard enumeration) and released before any shard lock
   is acquired — the ranks (catalog.map=14 < catalog.shard=20) encode the
   one legal nesting direction should that ever change. Artifact builds
   run under the owning shard's lock only: concurrent requests for the
   same corpus build once (the loser waits), requests for different
   corpora build in parallel. *)
let with_lock = Locks.with_lock

let shard_find t name = with_lock t.lock (fun () -> Hashtbl.find_opt t.shards name)

let shard_find_or_create t name =
  with_lock t.lock (fun () ->
      match Hashtbl.find_opt t.shards name with
      | Some sh -> sh
      | None ->
        let sh =
          {
            sh_lock =
              Locks.create ~name:("catalog.shard." ^ name) ~rank:Locks.rank_shard;
            sh_cache = Lru.create ~capacity:t.cache_entries;
            sh_entry = Atomic.make None;
          }
        in
        Hashtbl.add t.shards name sh;
        sh)

(* Shards sorted by corpus name — the deterministic enumeration order every
   aggregate below uses. *)
let shards_sorted t =
  with_lock t.lock (fun () ->
      Hashtbl.fold (fun name sh acc -> (name, sh) :: acc) t.shards []
      (* Corpus names are unique table keys, so this key alone is total. *)
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

exception Fail of string

let failf fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

let spec_description = function
  | Protocol.From_dataset (d, seed) -> Printf.sprintf "dataset %s (seed %d)" d.Dataset.id seed
  | Protocol.From_matching_text _ -> "matching text"
  | Protocol.From_mapping_set_text _ -> "mapping-set text"

(* ----------------------- cached artifact access -------------------- *)
(* The [_locked] builders assume the owning shard's lock is held; the
   eviction counter is reconciled after every cache write. *)

let mirror_evictions sh before =
  let after = (Lru.stats sh.sh_cache).Lru.evictions in
  if after > before then Obs.add c_evictions (after - before)

let cache_get sh key =
  match Lru.find sh.sh_cache key with
  | Some a ->
    Obs.incr c_hits;
    Some a
  | None ->
    Obs.incr c_misses;
    None

let cache_put sh key a =
  let before = (Lru.stats sh.sh_cache).Lru.evictions in
  Lru.put sh.sh_cache key a;
  mirror_evictions sh before

let entry_locked sh name =
  match Atomic.get sh.sh_entry with
  | Some e -> e
  | None -> failf "unknown corpus %S (register it first)" name

let build_matching t (e : entry) =
  let base =
    match e.spec with
    | Protocol.From_dataset (d, seed) -> Dataset.matching ~seed ~exec:t.exec d
    | Protocol.From_matching_text text -> (
      match Serialize.matching_of_string text with
      | Ok m -> m
      | Error msg -> failf "bad matching text: %s" msg)
    | Protocol.From_mapping_set_text text -> (
      match Serialize.mapping_set_of_string text with
      | Ok mset -> Mapping_set.matching mset
      | Error msg -> failf "bad mapping-set text: %s" msg)
  in
  List.fold_left
    (fun m d ->
      match Matching.apply_delta d m with
      | Ok m -> m
      | Error msg -> failf "replaying a stored update failed: %s" msg)
    base e.deltas

let matching_locked t sh name =
  let key = K_matching name in
  match cache_get sh key with
  | Some (A_matching m) -> m
  | _ ->
    let e = entry_locked sh name in
    let m = Obs.time s_build (fun () -> build_matching t e) in
    cache_put sh key (A_matching m);
    m

let doc_locked t sh name =
  let key = K_doc name in
  match cache_get sh key with
  | Some (A_doc d) -> d
  | _ ->
    let e = entry_locked sh name in
    let source = Matching.source (matching_locked t sh name) in
    let d =
      Obs.time s_build (fun () ->
          match e.doc_nodes with
          | Some n -> Gen_doc.generate ~seed:e.doc_seed ~target_nodes:n source
          | None -> Gen_doc.generate ~seed:e.doc_seed source)
    in
    cache_put sh key (A_doc d);
    d

let mset_locked t sh name ~h =
  let key = K_mset (name, h) in
  match cache_get sh key with
  | Some (A_mset s) -> s
  | _ ->
    let m = matching_locked t sh name in
    let s = Obs.time s_build (fun () -> Mapping_set.generate ~exec:t.exec ~h m) in
    cache_put sh key (A_mset s);
    s

let tree_locked t sh name ~h ~tau =
  let key = K_tree (name, h, tau) in
  match cache_get sh key with
  | Some (A_tree (s, tr)) -> (s, tr)
  | _ ->
    let s = mset_locked t sh name ~h in
    let tr =
      Obs.time s_build (fun () ->
          Block_tree.build ~params:{ Block_tree.tau; max_b = 500; max_f = 500 } s)
    in
    cache_put sh key (A_tree (s, tr));
    (s, tr)

(* A compiled plan pins mapping set, tree and documents, so repeated
   queries skip pattern parsing, resolution, coverage and the cost model,
   not just artifact construction. The key includes the forced evaluator:
   a forced plan and the auto plan for the same query are distinct
   artifacts. *)
let plan_locked t sh name ~pattern ~h ~tau ~k ~force =
  let key = K_plan { pk_corpus = name; pk_pattern = pattern; pk_h = h; pk_tau = tau;
                     pk_k = k; pk_force = force }
  in
  match cache_get sh key with
  | Some (A_plan p) -> p
  | _ ->
    let q =
      match Uxsm_twig.Pattern_parser.parse pattern with
      | Ok q -> q
      | Error e -> failf "bad query %S: %s" pattern e
    in
    let mset, tree = tree_locked t sh name ~h ~tau in
    let doc = doc_locked t sh name in
    let ctx = Ptq.context ~exec:t.exec ~tree ~mset ~doc () in
    let p = Obs.time s_build (fun () -> Ptq.compile ~force ?k ctx q) in
    cache_put sh key (A_plan p);
    p

(* ------------------------------ public API ------------------------- *)

let wrap f = try Ok (f ()) with Fail msg -> Error msg | Invalid_argument msg -> Error msg

(* Look the shard up (brief global lock), then build under its own lock;
   an unknown corpus has no shard and fails without touching any lock a
   builder could be holding. *)
let with_shard t name f =
  match shard_find t name with
  | None -> failf "unknown corpus %S (register it first)" name
  | Some sh -> with_lock sh.sh_lock (fun () -> f sh)

let register t ~name ~doc_seed ?doc_nodes spec =
  wrap (fun () ->
      let sh = shard_find_or_create t name in
      with_lock sh.sh_lock (fun () ->
          (* Replacing a spec must not leave stale derivations behind; the
             whole shard cache belongs to this corpus, so clear it. *)
          let previous = Atomic.get sh.sh_entry in
          if previous <> None then Lru.clear sh.sh_cache;
          Atomic.set sh.sh_entry (Some { spec; doc_seed; doc_nodes; deltas = [] });
          try
            let m = matching_locked t sh name in
            let d = doc_locked t sh name in
            (m, d)
          with e ->
            (* A spec that does not build must not shadow the old corpus
               (or register at all), nor leave partial derivations cached. *)
            Lru.clear sh.sh_cache;
            Atomic.set sh.sh_entry previous;
            raise e))

type update_stats = {
  u_capacity : int;
  u_source_elements : int;
  u_target_elements : int;
  u_msets_patched : int;
  u_trees_patched : int;
  u_plans_invalidated : int;
  u_doc_rebuilt : bool;
}

(* Apply a delta to a registered corpus, patching every cached artifact in
   place instead of evicting it. Two phases under the shard lock: a patch
   phase that computes every replacement artifact (raising on a bad delta
   with the cache untouched), then a non-raising commit phase that swaps
   the replacements in, appends the delta to the entry (so an eviction
   rebuild replays it) and drops the corpus' prepared plans — the only
   artifacts not worth patching, since compilation is cheap next to the
   derivations and a plan pins its whole stale context. *)
let update t ~name delta =
  wrap (fun () ->
      with_shard t name (fun sh ->
          Obs.time s_update @@ fun () ->
          if Matching.delta_is_empty delta then failf "update %S: empty delta" name;
          let e = entry_locked sh name in
          let m_old = matching_locked t sh name in
          let m_new =
            match Matching.apply_delta delta m_old with
            | Ok m -> m
            | Error msg -> failf "update %S: %s" name msg
          in
          let source_grew =
            Uxsm_schema.Schema.size (Matching.source m_new)
            <> Uxsm_schema.Schema.size (Matching.source m_old)
          in
          let keys = Lru.keys sh.sh_cache in
          let patched_msets =
            List.filter_map
              (fun key ->
                match key with
                | K_mset (_, h) -> (
                  match Lru.peek sh.sh_cache key with
                  | Some (A_mset s) ->
                    Some
                      (h, key, Obs.time s_build (fun () -> Mapping_set.update ~exec:t.exec m_new s))
                  | _ -> None)
                | _ -> None)
              keys
          in
          let patched_trees =
            List.filter_map
              (fun key ->
                match key with
                | K_tree (_, h, _) -> (
                  match Lru.peek sh.sh_cache key with
                  | Some (A_tree (s, tr)) ->
                    (* Share the standalone mset patch of the same [h] when
                       there is one (they are the same object after a
                       cache-warm build); otherwise patch the pinned one. *)
                    let s' =
                      match List.find_opt (fun (h', _, _) -> h' = h) patched_msets with
                      | Some (_, _, s') -> s'
                      | None ->
                        Obs.time s_build (fun () -> Mapping_set.update ~exec:t.exec m_new s)
                    in
                    Some (key, s', Obs.time s_build (fun () -> Block_tree.update ~old:tr s'))
                  | _ -> None)
                | _ -> None)
              keys
          in
          (* The generated document depends only on the source schema (and
             the entry's seed), so it is rebuilt only when the delta grew
             that schema. *)
          let doc' =
            if source_grew && List.exists (function K_doc _ -> true | _ -> false) keys then
              Some
                (Obs.time s_build (fun () ->
                     let source = Matching.source m_new in
                     match e.doc_nodes with
                     | Some n -> Gen_doc.generate ~seed:e.doc_seed ~target_nodes:n source
                     | None -> Gen_doc.generate ~seed:e.doc_seed source))
            else None
          in
          let plan_keys = List.filter (function K_plan _ -> true | _ -> false) keys in
          (* Commit. *)
          Atomic.set sh.sh_entry (Some { e with deltas = e.deltas @ [ delta ] });
          cache_put sh (K_matching name) (A_matching m_new);
          List.iter (fun (_, key, s') -> cache_put sh key (A_mset s')) patched_msets;
          List.iter (fun (key, s', tr') -> cache_put sh key (A_tree (s', tr'))) patched_trees;
          (match doc' with Some d -> cache_put sh (K_doc name) (A_doc d) | None -> ());
          List.iter (fun k -> Lru.remove sh.sh_cache k) plan_keys;
          Obs.incr c_updates;
          Obs.add c_upd_msets (List.length patched_msets);
          Obs.add c_upd_trees (List.length patched_trees);
          Obs.add c_upd_plans (List.length plan_keys);
          if doc' <> None then Obs.incr c_upd_docs;
          {
            u_capacity = Matching.capacity m_new;
            u_source_elements = Uxsm_schema.Schema.size (Matching.source m_new);
            u_target_elements = Uxsm_schema.Schema.size (Matching.target m_new);
            u_msets_patched = List.length patched_msets;
            u_trees_patched = List.length patched_trees;
            u_plans_invalidated = List.length plan_keys;
            u_doc_rebuilt = doc' <> None;
          }))

let corpora t =
  (* Spec reads are atomic, so the listing never blocks behind a shard
     mid-build; shards whose registration failed (entry [None]) are
     invisible. *)
  List.filter_map
    (fun (name, sh) ->
      Option.map (fun e -> (name, spec_description e.spec)) (Atomic.get sh.sh_entry))
    (shards_sorted t)

let matching t name = wrap (fun () -> with_shard t name (fun sh -> matching_locked t sh name))
let doc t name = wrap (fun () -> with_shard t name (fun sh -> doc_locked t sh name))

let mapping_set t name ~h =
  wrap (fun () -> with_shard t name (fun sh -> mset_locked t sh name ~h))

let prepared t name ~h ~tau =
  wrap (fun () -> with_shard t name (fun sh -> tree_locked t sh name ~h ~tau))

let plan t name ~pattern ~h ~tau ~k ~force =
  wrap (fun () ->
      with_shard t name (fun sh -> plan_locked t sh name ~pattern ~h ~tau ~k ~force))

(* Monitoring reads. Stats are atomic counter sums; length is a per-shard
   O(1) population read. Neither takes shard locks, so the stats endpoint
   stays responsive while a shard is mid-build. *)

let cache_length t =
  List.fold_left (fun acc (_, sh) -> acc + Lru.length sh.sh_cache) 0 (shards_sorted t)

let cache_capacity t = t.cache_entries

let cache_stats t =
  List.fold_left
    (fun acc (_, sh) -> Lru.add_stats acc (Lru.stats sh.sh_cache))
    Lru.zero_stats (shards_sorted t)

(* Keys walk each shard's recency list, which mutates under traffic, so
   this one does take each shard lock (briefly, per shard). *)
let cache_keys t =
  List.concat_map
    (fun (_, sh) -> with_lock sh.sh_lock (fun () -> Lru.keys sh.sh_cache))
    (shards_sorted t)

let shard_count t = with_lock t.lock (fun () -> Hashtbl.length t.shards)
